// Fairshare demonstrates multi-user scheduling on the shared-coprocessor
// cluster: user "batch" floods the queue with a long campaign while user
// "interactive" submits small bursts. With Condor-style fair-share
// matchmaking the interactive user's jobs are served by accumulated usage,
// not arrival order — the fairness dimension the paper's related work
// surveys (delay scheduling, Quincy, weighted max-min) without the paper
// itself needing it for its single-user experiments.
//
//	go run ./examples/fairshare
package main

import (
	"fmt"

	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/core"
	"phishare/internal/job"
	"phishare/internal/metrics"
	"phishare/internal/rng"
	"phishare/internal/sim"
	"phishare/internal/units"
)

func main() {
	for _, fair := range []bool{false, true} {
		batchWait, interactiveWait, jain := run(fair)
		mode := "FIFO (fair-share off)"
		if fair {
			mode = "fair-share"
		}
		fmt.Printf("%-22s batch wait %6.1fs   interactive wait %6.1fs   Jain usage index %.2f\n",
			mode, batchWait.Seconds(), interactiveWait.Seconds(), jain)
	}
	fmt.Println("\nfair-share serves the light user promptly at negligible cost to the campaign.")
}

func run(fairShare bool) (batchWait, interactiveWait units.Tick, jain float64) {
	eng := sim.New()
	eng.MaxSteps = 100_000_000
	clu := cluster.New(eng, cluster.Config{Nodes: 4, UseCosmic: true, Seed: 7})
	pool := condor.NewPool(eng, clu, core.New(core.Config{}),
		condor.Config{FairShare: fairShare})

	// The batch campaign, submitted up front.
	batch := job.GenerateTableOneSet(160, rng.New(7).Fork("batch"))
	pool.SubmitAs("batch", batch, 0)

	// Interactive bursts of 4 jobs every 2 minutes (IDs offset to keep the
	// combined set unique).
	interactive := job.GenerateTableOneSet(24, rng.New(8).Fork("interactive"))
	for _, j := range interactive {
		j.ID += 1000
	}
	for i := 0; i < len(interactive); i += 4 {
		i := i
		eng.At(units.Tick(i/4)*2*units.Minute, func() {
			pool.SubmitAs("interactive", interactive[i:i+4], 0)
		})
	}
	eng.Run()

	var bSum, iSum units.Tick
	var bN, iN int
	for _, q := range pool.Jobs() {
		wait := q.StartTime - q.SubmitTime
		if q.User == "interactive" {
			iSum += wait
			iN++
		} else {
			bSum += wait
			bN++
		}
	}
	jain = metrics.JainIndex([]float64{
		float64(pool.Usage("batch")) / float64(len(batch)),
		float64(pool.Usage("interactive")) / float64(len(interactive)),
	})
	return bSum / units.Tick(bN), iSum / units.Tick(iN), jain
}
