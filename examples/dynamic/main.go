// Dynamic extends the paper beyond its static formulation: jobs arrive as
// a Poisson process and the three scheduling stacks run continuously on the
// evolving queue. Sweeping the offered load exposes a crossover: at light
// load a dedicated coprocessor answers fastest, but once the exclusive
// stack saturates, the sharing schedulers' extra throughput keeps response
// times bounded — the dynamic scenario the paper's Limitations section
// anticipates.
//
//	go run ./examples/dynamic [-jobs 400]
package main

import (
	"flag"
	"fmt"
	"os"

	"phishare/internal/experiments"
)

func main() {
	jobs := flag.Int("jobs", 400, "number of arrivals per load level")
	flag.Parse()

	rows := experiments.Dynamic(
		experiments.Options{Seed: 42, Nodes: 8},
		experiments.DynamicConfig{Jobs: *jobs},
	)
	experiments.WriteDynamic(os.Stdout, rows)

	// Locate the crossover: the lightest load where MCCK answers faster
	// than MC.
	for _, load := range []float64{0.5, 0.8, 1.1, 1.4} {
		var mc, mcck experiments.DynamicRow
		for _, r := range rows {
			if r.Load == load {
				switch r.Policy {
				case experiments.PolicyMC:
					mc = r
				case experiments.PolicyMCCK:
					mcck = r
				}
			}
		}
		if mcck.MeanResponse < mc.MeanResponse {
			fmt.Printf("crossover: from load %.2f upward, MCCK responds %.1fx faster than MC\n",
				load, float64(mc.MeanResponse)/float64(mcck.MeanResponse))
			return
		}
	}
	fmt.Println("no crossover in the swept range (MC unsaturated throughout)")
}
