// Makespan reproduces the paper's Table II workflow as a library example:
// run the same 1000-instance Table I job set under MC, MCC, and MCCK on an
// 8-node cluster, then search for each sharing configuration's footprint —
// the smallest cluster that still matches the baseline makespan.
//
//	go run ./examples/makespan [-jobs 1000] [-nodes 8]
package main

import (
	"flag"
	"fmt"

	"phishare/internal/experiments"
	"phishare/internal/job"
	"phishare/internal/metrics"
	"phishare/internal/rng"
	"phishare/internal/units"
)

func main() {
	njobs := flag.Int("jobs", 1000, "Table I job instances")
	nodes := flag.Int("nodes", 8, "reference cluster size")
	flag.Parse()

	jobs := job.GenerateTableOneSet(*njobs, rng.New(42).Fork("tableI"))

	fmt.Printf("%d jobs on %d nodes:\n\n", len(jobs), *nodes)
	fmt.Printf("%-6s %10s %10s %11s %10s\n", "config", "makespan", "reduction", "footprint", "fp-reduc")

	var baseline units.Tick
	for _, policy := range experiments.Policies() {
		res := experiments.Run(experiments.RunConfig{
			Policy: policy, Nodes: *nodes, Jobs: jobs, Seed: 42,
		})
		if policy == experiments.PolicyMC {
			baseline = res.Makespan
			fmt.Printf("%-6s %9.0fs %10s %11s %10s\n", policy, res.Makespan.Seconds(), "-", "-", "-")
			continue
		}
		red := metrics.Reduction(baseline, res.Makespan)
		fp, ok := experiments.Footprint(experiments.RunConfig{
			Policy: policy, Jobs: jobs, Seed: 42, Nodes: 1,
		}, baseline, *nodes)
		fpCol, fprCol := "n/a", "n/a"
		if ok {
			fpCol = fmt.Sprintf("%d nodes", fp)
			fprCol = fmt.Sprintf("%.1f%%", (1-float64(fp)/float64(*nodes))*100)
		}
		fmt.Printf("%-6s %9.0fs %9.1f%% %11s %10s\n",
			policy, res.Makespan.Seconds(), red*100, fpCol, fprCol)
	}
	fmt.Printf("\npaper Table II: MC 3568s; MCC 2611s (27%%), 6 nodes; MCCK 2183s (39%%), 5 nodes\n")
}
