// Offload reproduces the paper's Fig. 1 literally: the vector-add offload
// pragma expressed as a COI program, compiled (lowered) to a schedulable
// job, and executed on the simulated Xeon Phi — DMA, kernel, and host
// phases all visible in the trace.
//
//	go run ./examples/offload
package main

import (
	"fmt"
	"os"

	"phishare/internal/cluster"
	"phishare/internal/coi"
	"phishare/internal/runner"
	"phishare/internal/sim"
	"phishare/internal/trace"
	"phishare/internal/units"
)

func main() {
	// Fig. 1: c[i] = a[i] + b[i] over SIZE elements. 256 MB per array,
	// a 2-second kernel on 120 threads.
	prog := coi.VectorAdd(256, 2*units.Second, 120)

	fmt.Println("the Fig. 1 offload program, as the compiler lowers it:")
	for _, s := range prog.Stmts {
		fmt.Println("   ", s)
	}

	j, err := prog.Lower(1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nlowered job: %v (declared %v / %v)\n", j.Name, j.Mem, j.Threads)
	for i, p := range j.Phases {
		switch {
		case p.TransferIn > 0 || p.TransferOut > 0:
			fmt.Printf("  phase %d: %v %v, %v threads, DMA in %v out %v\n",
				i, p.Kind, p.Duration, p.Threads, p.TransferIn, p.TransferOut)
		case p.Threads > 0:
			fmt.Printf("  phase %d: %v %v, %v threads\n", i, p.Kind, p.Duration, p.Threads)
		default:
			fmt.Printf("  phase %d: %v %v\n", i, p.Kind, p.Duration)
		}
	}

	// Execute two instances concurrently on one coprocessor: their
	// 120-thread kernels overlap (the Fig. 3 effect) while their DMA
	// shares the PCIe link.
	eng := sim.New()
	clu := cluster.New(eng, cluster.Config{Nodes: 1, UseCosmic: true, Seed: 1})
	rec := trace.NewRecorder()
	clu.Units[0].Device.Trace = rec

	var makespan units.Tick
	for id := 1; id <= 2; id++ {
		inst, err := prog.Lower(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runner.Run(clu.Units[0], inst, func(runner.Result) {
			if eng.Now() > makespan {
				makespan = eng.Now()
			}
		})
	}
	eng.Run()

	fmt.Printf("\ntwo concurrent instances on one Xeon Phi:\n")
	fmt.Print(rec.Render(72, 240))
	fmt.Printf("makespan %.2f s (kernels overlap; DMA shares the 6 GB/s link)\n",
		makespan.Seconds())
}
