// Quickstart: build a small Xeon Phi cluster, submit a mixed job set, and
// compare the exclusive-device baseline (MC) against the sharing-aware
// knapsack scheduler (MCCK).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/core"
	"phishare/internal/job"
	"phishare/internal/rng"
	"phishare/internal/scheduler"
	"phishare/internal/sim"
)

func main() {
	// 100 instances of the paper's Table I applications (K-means, Monte
	// Carlo, molecular dynamics, SGEMM, and the NPB CFD solvers).
	jobs := job.GenerateTableOneSet(100, rng.New(7).Fork("tableI"))
	fmt.Printf("submitting %d jobs, %.0f s of sequential work\n\n",
		len(jobs), job.TotalSequentialTime(jobs).Seconds())

	// Baseline: MPSS + Condor, one job per coprocessor at a time.
	mc := simulate(jobs, scheduler.NewExclusive(), false)

	// The paper's system: COSMIC node middleware + the knapsack cluster
	// scheduler packing jobs onto each Phi for maximum concurrency.
	mcck := simulate(jobs, core.New(core.Config{}), true)

	fmt.Printf("%-22s %10s %12s\n", "configuration", "makespan", "utilization")
	fmt.Printf("%-22s %9.0fs %11.1f%%\n", "MC (exclusive)", mc.makespan, mc.utilization*100)
	fmt.Printf("%-22s %9.0fs %11.1f%%\n", "MCCK (sharing-aware)", mcck.makespan, mcck.utilization*100)
	fmt.Printf("\nmakespan reduction: %.1f%%\n", (1-mcck.makespan/mc.makespan)*100)
}

type outcome struct {
	makespan    float64
	utilization float64
}

// simulate wires the pieces together: a discrete-event engine, a 4-node
// cluster (one 8 GB / 240-thread Xeon Phi each), a Condor pool with the
// chosen policy, and the job set submitted at t=0.
func simulate(jobs []*job.Job, policy condor.Policy, useCosmic bool) outcome {
	eng := sim.New()
	clu := cluster.New(eng, cluster.Config{Nodes: 4, UseCosmic: useCosmic, Seed: 7})
	pool := condor.NewPool(eng, clu, policy, condor.Config{})
	pool.Submit(jobs)
	eng.Run()
	if !pool.Done() {
		panic("jobs left behind")
	}
	return outcome{
		makespan:    pool.Makespan().Seconds(),
		utilization: clu.AvgCoreUtilization(pool.Makespan()),
	}
}
