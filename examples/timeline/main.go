// Timeline renders the paper's Figs. 2–3: how two offload jobs share one
// Xeon Phi. With maximal (240-thread) offloads, COSMIC serializes kernels
// but host gaps interleave; with partial (120-thread) offloads the kernels
// overlap outright. Both beat running the jobs back to back.
//
//	go run ./examples/timeline
package main

import (
	"fmt"

	"phishare/internal/cluster"
	"phishare/internal/job"
	"phishare/internal/runner"
	"phishare/internal/sim"
	"phishare/internal/trace"
	"phishare/internal/units"
)

func main() {
	fmt.Println("Fig. 2 — two jobs whose offloads use all 240 hardware threads:")
	share(240)
	fmt.Println("Fig. 3 — two jobs whose offloads use 120 threads (50%):")
	share(120)
}

// mkJob builds the illustrative jobs: J1 with two offloads, J2 with three,
// separated by host phases, as drawn in the paper.
func mkJob(id int, name string, threads units.Threads, offloads int) *job.Job {
	j := &job.Job{
		ID: id, Name: name, Workload: "figure",
		Mem: 1000, Threads: threads, ActualPeakMem: 900,
	}
	j.Phases = append(j.Phases, job.Phase{Kind: job.HostPhase, Duration: 2 * units.Second})
	for i := 0; i < offloads; i++ {
		j.Phases = append(j.Phases,
			job.Phase{Kind: job.OffloadPhase, Duration: 3 * units.Second, Threads: threads},
			job.Phase{Kind: job.HostPhase, Duration: 2 * units.Second})
	}
	return j
}

func share(threads units.Threads) {
	eng := sim.New()
	clu := cluster.New(eng, cluster.Config{Nodes: 1, UseCosmic: true, Seed: 1})
	rec := trace.NewRecorder()
	clu.Units[0].Device.Trace = rec

	j1 := mkJob(1, "J1", threads, 2)
	j2 := mkJob(2, "J2", threads, 3)
	var makespan units.Tick
	for _, j := range []*job.Job{j1, j2} {
		runner.Run(clu.Units[0], j, func(r runner.Result) {
			if eng.Now() > makespan {
				makespan = eng.Now()
			}
		})
	}
	eng.Run()

	fmt.Print(rec.Render(72, 240))
	seq := j1.SequentialTime() + j2.SequentialTime()
	fmt.Printf("concurrent makespan: %4.0f s\n", makespan.Seconds())
	fmt.Printf("sequential makespan: %4.0f s  (saving %.0f%%)\n\n",
		seq.Seconds(), (1-float64(makespan)/float64(seq))*100)
}
