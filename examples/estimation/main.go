// Estimation demonstrates the automatic resource estimator — the tool the
// paper's §IV-B anticipates ("this could be relaxed with tools that
// automatically estimate jobs' resource requirements"). Jobs arrive with no
// user declarations; the estimator starts each workload class conservative
// (a whole device), learns class peaks from completions, and rewrites
// pending jobs' declarations so sharing resumes.
//
//	go run ./examples/estimation [-jobs 400]
package main

import (
	"flag"
	"fmt"
	"os"

	"phishare/internal/estimator"
	"phishare/internal/experiments"
	"phishare/internal/job"
	"phishare/internal/rng"
)

func main() {
	jobs := flag.Int("jobs", 400, "Table I job instances")
	flag.Parse()

	// First, show what the estimator learns from a handful of completions.
	est := estimator.New(estimator.Config{})
	sample := job.GenerateTableOneSet(30, rng.New(1).Fork("tableI"))
	for _, j := range sample {
		est.ObserveCompletion(j.Workload, j.ActualPeakMem, j.MaxOffloadThreads())
	}
	fmt.Println("class models after 30 observed completions:")
	fmt.Print(est.Describe())
	fmt.Println()

	// Then the full experiment: conservative vs learned vs oracle.
	rows := experiments.Estimation(experiments.Options{
		Seed: 42, Nodes: 8, RealJobs: *jobs,
	})
	experiments.WriteEstimation(os.Stdout, rows)

	conservative, estimated, oracle := rows[0], rows[1], rows[2]
	recovered := float64(conservative.Makespan-estimated.Makespan) /
		float64(conservative.Makespan-oracle.Makespan) * 100
	fmt.Printf("the estimator recovered %.0f%% of the oracle's improvement without\n", recovered)
	fmt.Printf("any user declarations (%d container kills while learning)\n", estimated.Crashes)
}
