// Custompolicy shows how to plug a new cluster-level scheduler into the
// Condor layer: a best-fit-memory policy that places each job on the
// matching machine with the least leftover declared memory (classic
// bin-packing best-fit). It implements condor.Policy in ~40 lines and is
// compared against the paper's three stacks on the Table I mix — the
// extension path a downstream user of this library would take.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"

	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/core"
	"phishare/internal/job"
	"phishare/internal/rng"
	"phishare/internal/scheduler"
	"phishare/internal/sim"
	"phishare/internal/units"
)

// BestFit packs each job onto the machine where it fits most tightly,
// leaving big holes intact for big jobs. Node-level safety still comes
// from COSMIC, exactly as for MCC.
type BestFit struct{}

func (*BestFit) Name() string { return "BestFit" }

func (*BestFit) MachineRequirements() string {
	return "TARGET." + condor.AttrRequestPhiMemory + " <= MY." + condor.AttrPhiFreeMemory
}

func (*BestFit) PrepareJobAd(q *condor.QueuedJob) {
	q.Ad.MustSetExpr("Requirements",
		"TARGET."+condor.AttrPhiFreeMemory+" >= MY."+condor.AttrRequestPhiMemory)
}

func (*BestFit) PreNegotiation(*condor.Pool) {}

func (*BestFit) Select(_ *condor.Pool, q *condor.QueuedJob, candidates []*condor.Machine) int {
	best, bestLeft := -1, units.MB(1<<30)
	for i, m := range candidates {
		if left := m.FreeMem - q.Job.Mem; left < bestLeft {
			best, bestLeft = i, left
		}
	}
	return best
}

func (*BestFit) PostNegotiation(*condor.Pool) {}

func main() {
	jobs := job.GenerateTableOneSet(400, rng.New(42).Fork("tableI"))

	stacks := []struct {
		name   string
		policy condor.Policy
		cosmic bool
	}{
		{"MC", scheduler.NewExclusive(), false},
		{"MCC", scheduler.NewRandomPack(rng.New(42)), true},
		{"BestFit", &BestFit{}, true},
		{"MCCK", core.New(core.Config{}), true},
	}

	fmt.Printf("%-8s %10s %12s\n", "policy", "makespan", "utilization")
	var base units.Tick
	for _, s := range stacks {
		eng := sim.New()
		eng.MaxSteps = 200_000_000
		clu := cluster.New(eng, cluster.Config{Nodes: 8, UseCosmic: s.cosmic, Seed: 42})
		pool := condor.NewPool(eng, clu, s.policy, condor.Config{})
		pool.Submit(jobs)
		eng.Run()
		if !pool.Done() {
			panic(s.name + " left jobs behind")
		}
		makespan := pool.Makespan()
		if s.name == "MC" {
			base = makespan
		}
		fmt.Printf("%-8s %9.0fs %11.1f%%   (%.1f%% vs MC)\n",
			s.name, makespan.Seconds(),
			clu.AvgCoreUtilization(makespan)*100,
			(1-float64(makespan)/float64(base))*100)
	}
	fmt.Println("\nbest-fit beats random placement on memory efficiency but lacks the")
	fmt.Println("knapsack's thread awareness — the dimension the paper shows matters.")
}
