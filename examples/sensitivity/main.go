// Sensitivity sweeps the four Fig. 7 resource distributions (uniform,
// normal, low-skew, high-skew) across the three cluster configurations —
// the paper's Fig. 8 — and prints how the sharing gain depends on the job
// mix: many small jobs share well; a mix dominated by maximal-resource jobs
// leaves little concurrency to exploit.
//
//	go run ./examples/sensitivity [-jobs 400] [-nodes 8]
package main

import (
	"flag"
	"fmt"

	"phishare/internal/experiments"
	"phishare/internal/metrics"
	"phishare/internal/workload"
)

func main() {
	njobs := flag.Int("jobs", 400, "synthetic jobs per distribution")
	nodes := flag.Int("nodes", 8, "cluster size")
	flag.Parse()

	fmt.Printf("%-10s %9s %9s %9s %10s %10s\n",
		"dist", "MC", "MCC", "MCCK", "MCC gain", "MCCK gain")
	for _, dist := range workload.Distributions() {
		jobs := workload.Generate(workload.Config{Dist: dist, N: *njobs, Seed: 42})
		mc := experiments.Run(experiments.RunConfig{Policy: experiments.PolicyMC, Nodes: *nodes, Jobs: jobs, Seed: 42})
		mcc := experiments.Run(experiments.RunConfig{Policy: experiments.PolicyMCC, Nodes: *nodes, Jobs: jobs, Seed: 42})
		mcck := experiments.Run(experiments.RunConfig{Policy: experiments.PolicyMCCK, Nodes: *nodes, Jobs: jobs, Seed: 42})
		fmt.Printf("%-10s %8.0fs %8.0fs %8.0fs %9.1f%% %9.1f%%\n",
			dist,
			mc.Makespan.Seconds(), mcc.Makespan.Seconds(), mcck.Makespan.Seconds(),
			metrics.Reduction(mc.Makespan, mcc.Makespan)*100,
			metrics.Reduction(mc.Makespan, mcck.Makespan)*100)
	}
	fmt.Println("\npaper (Fig. 8): large gains for uniform/normal/low-skew; the high-skew")
	fmt.Println("mix of maximal-resource jobs leaves the least sharing opportunity.")
}
