// Package phishare's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (one benchmark per artifact; see DESIGN.md's
// experiment index) plus micro-benchmarks of the hot components. Results
// beyond time/op are attached as custom metrics: makespans in seconds,
// reductions in percent, footprints in nodes.
//
// The macro-benchmarks run each experiment at a reduced-but-faithful scale
// by default so `go test -bench=.` completes in minutes; run cmd/phibench
// for the full paper-scale report.
package phishare

import (
	"fmt"
	"testing"

	"phishare/internal/classad"
	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/experiments"
	"phishare/internal/job"
	"phishare/internal/knapsack"
	"phishare/internal/obs"
	"phishare/internal/rng"
	"phishare/internal/scheduler"
	"phishare/internal/sim"
	"phishare/internal/units"
	"phishare/internal/workload"
)

// benchOptions is the reduced scale used by the macro-benchmarks.
func benchOptions() experiments.Options {
	return experiments.Options{Seed: 42, Nodes: 8, RealJobs: 400, SyntheticJobs: 200}
}

// BenchmarkMotivationUtilization regenerates E1 (§III): exclusive-policy
// core utilization on the real mix and the synthetic distributions.
func BenchmarkMotivationUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Motivation(benchOptions())
		b.ReportMetric(r.Real*100, "real-util-%")
		b.ReportMetric(r.Synthetic[workload.LowSkew]*100, "lowskew-util-%")
		b.ReportMetric(r.Synthetic[workload.HighSkew]*100, "highskew-util-%")
	}
}

// BenchmarkTable2Makespan regenerates E2 (Table II): makespan and footprint
// for MC/MCC/MCCK on the Table I mix.
func BenchmarkTable2Makespan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(benchOptions())
		b.ReportMetric(r.Rows[0].Makespan.Seconds(), "MC-s")
		b.ReportMetric(r.Rows[1].Makespan.Seconds(), "MCC-s")
		b.ReportMetric(r.Rows[2].Makespan.Seconds(), "MCCK-s")
		b.ReportMetric(r.Rows[2].Reduction*100, "MCCK-red-%")
		b.ReportMetric(float64(r.Rows[2].Footprint), "MCCK-footprint")
	}
}

// BenchmarkFig7Distributions regenerates E3 (Fig. 7): the synthetic
// resource histograms.
func BenchmarkFig7Distributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(benchOptions())
		b.ReportMetric(r.Histograms[2].MeanLevel(), "lowskew-mean")
		b.ReportMetric(r.Histograms[3].MeanLevel(), "highskew-mean")
	}
}

// BenchmarkFig8Sensitivity regenerates E4 (Fig. 8): makespan across the
// four resource distributions.
func BenchmarkFig8Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(benchOptions())
		for _, row := range r.Rows {
			b.ReportMetric(row.MCCK.Seconds(), row.Dist.String()+"-MCCK-s")
		}
	}
}

// BenchmarkFig9ClusterSize regenerates E5 (Fig. 9): makespan versus cluster
// size for each distribution.
func BenchmarkFig9ClusterSize(b *testing.B) {
	o := benchOptions()
	o.SyntheticJobs = 120
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(o)
		s := r.Series[1] // normal
		b.ReportMetric(s.MCCK[0].Seconds(), "normal-2node-MCCK-s")
		b.ReportMetric(s.MCCK[len(s.MCCK)-1].Seconds(), "normal-8node-MCCK-s")
	}
}

// BenchmarkTable3Footprint regenerates E6 (Table III): footprint per
// distribution.
func BenchmarkTable3Footprint(b *testing.B) {
	o := benchOptions()
	o.SyntheticJobs = 120
	for i := 0; i < b.N; i++ {
		r := experiments.Table3(o)
		for _, row := range r.Rows {
			b.ReportMetric(float64(row.MCCK), row.Dist.String()+"-MCCK-nodes")
		}
	}
}

// BenchmarkFig10JobPressure regenerates E7 (Fig. 10): constant job
// pressure, jobs scaling with cluster size.
func BenchmarkFig10JobPressure(b *testing.B) {
	o := benchOptions()
	o.SyntheticJobs = 120
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(o)
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(last.MCCK.Seconds(), "8node-MCCK-s")
		b.ReportMetric((1-float64(last.MCCK)/float64(last.MC))*100, "K-vs-MC-%")
	}
}

// BenchmarkFig23Overlap regenerates E8 (Figs. 2–3): the two-job sharing
// timelines and their makespan savings.
func BenchmarkFig23Overlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig23(benchOptions())
		b.ReportMetric((1-float64(r.MaximalMakespan)/float64(r.MaximalSequential))*100, "maximal-save-%")
		b.ReportMetric((1-float64(r.PartialMakespan)/float64(r.PartialSequential))*100, "partial-save-%")
	}
}

// BenchmarkAblationValueFunction regenerates A1: the knapsack value
// function variants.
func BenchmarkAblationValueFunction(b *testing.B) {
	o := benchOptions()
	o.RealJobs = 200
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationValueFunction(o)
		b.ReportMetric(rows[1].Makespan.Seconds(), "eq1-s")
		b.ReportMetric(rows[3].Makespan.Seconds(), "unit-s")
	}
}

// BenchmarkAblationOversubscription regenerates A2: crash and slowdown
// behaviour of the Phi-agnostic stack on raw MPSS devices.
func BenchmarkAblationOversubscription(b *testing.B) {
	o := benchOptions()
	o.RealJobs = 200
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationOversubscription(o)
		b.ReportMetric(float64(rows[0].Crashes), "raw-crashes")
		b.ReportMetric(float64(rows[1].Crashes), "cosmic-crashes")
	}
}

// BenchmarkAblationNegotiationCycle regenerates A3: MCCK's sensitivity to
// the Condor negotiation cycle.
func BenchmarkAblationNegotiationCycle(b *testing.B) {
	o := benchOptions()
	o.SyntheticJobs = 120
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationNegotiationCycle(o)
		b.ReportMetric(rows[0].Makespan.Seconds(), "5s-cycle-s")
		b.ReportMetric(rows[len(rows)-1].Makespan.Seconds(), "60s-cycle-s")
	}
}

// BenchmarkAblationDispatchDiscipline regenerates A4: strict-FIFO versus
// first-fit offload dispatch in COSMIC.
func BenchmarkAblationDispatchDiscipline(b *testing.B) {
	o := benchOptions()
	o.RealJobs = 200
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationDispatchDiscipline(o)
		b.ReportMetric(rows[2].Makespan.Seconds(), "MCCK-fifo-s")
		b.ReportMetric(rows[3].Makespan.Seconds(), "MCCK-firstfit-s")
	}
}

// --- micro-benchmarks of the hot components ---

// BenchmarkKnapsack2D measures the per-device planning DP at the paper's
// scale: a 164-unit memory dimension, 60-unit thread dimension, and a
// 64-job window.
func BenchmarkKnapsack2D(b *testing.B) {
	r := rng.New(9)
	items := make([]knapsack.Item, 64)
	for i := range items {
		th := units.Threads(4 * (6 + r.Intn(55)))
		items[i] = knapsack.Item{
			Mem:     units.MB(300 + r.Intn(3000)),
			Threads: th,
			Value:   knapsack.Eq1Value(th, 240)*knapsack.CountBonusScale(64) + 1,
		}
	}
	cfg := knapsack.Config{MemCapacity: 8192, ThreadCapacity: 240}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knapsack.Solve(cfg, items)
	}
}

// BenchmarkKnapsack1D measures the memory-only DP used by the fill stage.
func BenchmarkKnapsack1D(b *testing.B) {
	r := rng.New(10)
	items := make([]knapsack.Item, 64)
	for i := range items {
		items[i] = knapsack.Item{Mem: units.MB(300 + r.Intn(3000)), Value: int64(1 + r.Intn(1000))}
	}
	cfg := knapsack.Config{MemCapacity: 8192}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knapsack.Solve(cfg, items)
	}
}

// BenchmarkClassAdMatch measures one symmetric matchmaking evaluation, the
// negotiator's inner loop.
func BenchmarkClassAdMatch(b *testing.B) {
	machine := classad.NewAd()
	machine.SetStr("Name", "slot1@node3")
	machine.SetInt("PhiFreeMemory", 4096)
	machine.MustSetExpr("Requirements", "TARGET.RequestPhiMemory <= MY.PhiFreeMemory")
	jobAd := classad.NewAd()
	jobAd.SetInt("RequestPhiMemory", 1250)
	jobAd.MustSetExpr("Requirements", `TARGET.Name == "slot1@node3"`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !classad.Match(machine, jobAd) {
			b.Fatal("match failed")
		}
	}
}

// BenchmarkClassAdParse measures expression parsing (qedit cost).
func BenchmarkClassAdParse(b *testing.B) {
	src := `TARGET.Name == "slot1@node3" && TARGET.PhiFreeMemory >= MY.RequestPhiMemory`
	for i := 0; i < b.N; i++ {
		if _, err := classad.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEngine measures raw event throughput of the discrete-event
// core.
func BenchmarkSimEngine(b *testing.B) {
	eng := sim.New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			eng.After(1, tick)
		}
	}
	b.ResetTimer()
	eng.After(1, tick)
	eng.Run()
}

// BenchmarkEndToEndMCCK measures one complete MCCK simulation (200 jobs,
// 8 nodes) — the unit of every macro experiment.
func BenchmarkEndToEndMCCK(b *testing.B) {
	jobs := job.GenerateTableOneSet(200, rng.New(11).Fork("tableI"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Run(experiments.RunConfig{
			Policy: experiments.PolicyMCCK, Nodes: 8, Jobs: jobs, Seed: 11,
		})
		b.ReportMetric(res.Makespan.Seconds(), "makespan-s")
	}
}

// BenchmarkBigCell measures a cluster an order of magnitude past the
// paper's testbed — 1,000 single-device nodes packing a 100,000-job Table I
// stream under MCC — the scale the parallel simulation core exists for.
// The serial sub-run forces the parallel core off; parallel runs with the
// worker pool at GOMAXPROCS, so a `-cpu 1,2,4` sweep (see `make bench`)
// charts worker scaling directly, and the bit-identical makespan-s metric
// across every sub-run and cpu count is the determinism contract made
// visible in the ledger.
func BenchmarkBigCell(b *testing.B) {
	jobs := job.GenerateTableOneSet(100_000, rng.New(17).Fork("tableI"))
	run := func(b *testing.B, parallel bool) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := experiments.RunConfig{
				Policy: experiments.PolicyMCC, Nodes: 1000, Jobs: jobs, Seed: 17,
				Parallel: &parallel,
			}
			res := experiments.Run(cfg)
			b.ReportMetric(res.Makespan.Seconds(), "makespan-s")
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, false) })
	b.Run("parallel", func(b *testing.B) { run(b, true) })
}

// BenchmarkObsOverhead measures the observability layer against the same
// end-to-end MCCK run as BenchmarkEndToEndMCCK: "disabled" is the baseline
// (no observer attached — every instrumentation site is a nil check),
// "instrumented" attaches the full obs stack (registry, trace, sampler).
// The disabled case is the one the <5% regression gate in BENCH_2.json
// guards; the instrumented case documents the cost of turning it all on.
func BenchmarkObsOverhead(b *testing.B) {
	jobs := job.GenerateTableOneSet(200, rng.New(11).Fork("tableI"))
	run := func(b *testing.B, instrumented bool) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := experiments.RunConfig{
				Policy: experiments.PolicyMCCK, Nodes: 8, Jobs: jobs, Seed: 11,
			}
			if instrumented {
				cfg.Obs = obs.New()
			}
			res := experiments.Run(cfg)
			b.ReportMetric(res.Makespan.Seconds(), "makespan-s")
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("instrumented", func(b *testing.B) { run(b, true) })
}

// BenchmarkObsOverheadParallel is BenchmarkObsOverhead on the 4-worker
// parallel core: the lane-shard trace buffering and canonical flush must
// keep instrumented parallel runs within the same overhead envelope as
// serial ones (the benchjson -gate obs pair-check enforces ≤15%
// instrumented-over-disabled on both). Before the sharded pipeline,
// attaching any sink forced the run serial — this benchmark is the ledger
// evidence that parallel mode now stays on under instrumentation.
func BenchmarkObsOverheadParallel(b *testing.B) {
	jobs := job.GenerateTableOneSet(200, rng.New(11).Fork("tableI"))
	parallel := true
	run := func(b *testing.B, instrumented bool) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := experiments.RunConfig{
				Policy: experiments.PolicyMCCK, Nodes: 8, Jobs: jobs, Seed: 11,
				Parallel: &parallel, Workers: 4,
			}
			if instrumented {
				cfg.Obs = obs.New()
			}
			res := experiments.Run(cfg)
			if !res.Parallel {
				b.Fatal("parallel mode did not engage")
			}
			b.ReportMetric(res.Makespan.Seconds(), "makespan-s")
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("instrumented", func(b *testing.B) { run(b, true) })
}

// BenchmarkDynamicArrivals regenerates E9: response time under Poisson
// arrivals across the load sweep.
func BenchmarkDynamicArrivals(b *testing.B) {
	o := benchOptions()
	o.SyntheticJobs = 150
	for i := 0; i < b.N; i++ {
		rows := experiments.Dynamic(o, experiments.DynamicConfig{})
		for _, r := range rows {
			if r.Load == 1.4 {
				b.ReportMetric(r.MeanResponse.Seconds(), r.Policy+"-resp-s")
			}
		}
	}
}

// BenchmarkEstimation regenerates E10: learned versus conservative versus
// oracle resource declarations.
func BenchmarkEstimation(b *testing.B) {
	o := benchOptions()
	o.RealJobs = 200
	for i := 0; i < b.N; i++ {
		rows := experiments.Estimation(o)
		b.ReportMetric(rows[0].Makespan.Seconds(), "conservative-s")
		b.ReportMetric(rows[1].Makespan.Seconds(), "estimated-s")
		b.ReportMetric(rows[2].Makespan.Seconds(), "oracle-s")
	}
}

// BenchmarkKnapsackGreedyVsDP measures the value-density heuristic on the
// same instance as BenchmarkKnapsack2D, quantifying the complexity gap the
// paper's §IV-C discussion trades against exactness.
func BenchmarkKnapsackGreedyVsDP(b *testing.B) {
	r := rng.New(9)
	items := make([]knapsack.Item, 64)
	for i := range items {
		th := units.Threads(4 * (6 + r.Intn(55)))
		items[i] = knapsack.Item{
			Mem:     units.MB(300 + r.Intn(3000)),
			Threads: th,
			Value:   knapsack.Eq1Value(th, 240)*knapsack.CountBonusScale(64) + 1,
		}
	}
	cfg := knapsack.Config{MemCapacity: 8192, ThreadCapacity: 240}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knapsack.SolveGreedy(cfg, items)
	}
}

// BenchmarkNegotiate measures one isolated matchmaking cycle against a
// prepared queue at several depths, with one machine ad churned per cycle so
// the incremental autocluster path has real invalidation work to do (the
// seven untouched machines answer from their per-cluster verdicts). The
// queue holds unmatchable jobs, so the cycle is pure matchmaking — no claims
// mutate the queue between iterations. The autoclusters=false sub-runs are
// the legacy per-(job, machine) path for comparison.
func BenchmarkNegotiate(b *testing.B) {
	for _, depth := range []int{16, 64, 256} {
		for _, autoclusters := range []bool{true, false} {
			b.Run(fmt.Sprintf("depth=%d/autoclusters=%v", depth, autoclusters), func(b *testing.B) {
				eng := sim.New()
				clu := cluster.New(eng, cluster.Config{Nodes: 8, Seed: 1})
				pool := condor.NewPool(eng, clu, scheduler.NewExclusive(),
					condor.Config{DisableAutoclusters: !autoclusters})
				jobs := make([]*job.Job, depth)
				for i := range jobs {
					jobs[i] = &job.Job{
						ID: i, Name: "bench", Workload: "bench",
						// More memory than any device: never matches, so the
						// queue is identical for every measured cycle.
						Mem:     100_000 + units.MB(i%7)*50,
						Threads: units.Threads(16 + (i%15)*16),
					}
					jobs[i].Phases = []job.Phase{{Kind: job.HostPhase, Duration: units.Second}}
				}
				pool.Submit(jobs)
				machines := pool.Machines()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m := machines[i%len(machines)]
					m.Ad.SetInt(condor.AttrPhiFreeMemory, int64(4000+i%97))
					pool.NegotiateOnce()
				}
			})
		}
	}
	// Sharded scan at the ROADMAP's 10k-node / 100k-job scale: one
	// steady-state matchmaking cycle, shard counts 1/2/4/8. The slot
	// collapse means the scan walks (cycle slots × machines), not (jobs ×
	// machines), and the shards split the machine dimension across
	// sim.Engine.Fanout workers — so on a multi-core host the cycle time
	// drops near-linearly in the shard count until the serial pre-pass and
	// commit phases dominate. On a single-core host the shard counts tie
	// (Fanout runs inline); the sub-benchmarks still pin the absolute cycle
	// cost at scale.
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("pool=10000/jobs=100000/shards=%d", shards), func(b *testing.B) {
			eng := sim.New()
			clu := cluster.New(eng, cluster.Config{Nodes: 10_000, Seed: 1})
			pool := condor.NewPool(eng, clu, scheduler.NewExclusive(),
				condor.Config{NegotiationShards: shards})
			jobs := make([]*job.Job, 100_000)
			for i := range jobs {
				jobs[i] = &job.Job{
					ID: i, Name: "bench", Workload: "bench",
					Mem:     100_000 + units.MB(i%7)*50,
					Threads: units.Threads(16 + (i%15)*16),
				}
				jobs[i].Phases = []job.Phase{{Kind: job.HostPhase, Duration: units.Second}}
			}
			pool.Submit(jobs)
			machines := pool.Machines()
			// Prime one cycle so the measured iterations see the
			// steady-state verdict caches, not the cold-start evaluation.
			pool.NegotiateOnce()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := machines[i%len(machines)]
				m.Ad.SetInt(condor.AttrPhiFreeMemory, int64(4000+i%97))
				pool.NegotiateOnce()
			}
		})
	}
}

// BenchmarkInsertPending measures the pending-queue insert on its worst
// case: every submitted job outranks the whole queue, so the binary search
// replaces a full linear walk from the tail (the insert's tail shift is a
// single memmove under both implementations — the search was the O(n)
// term that made queue building O(n²) at the 100k-job scale).
func BenchmarkInsertPending(b *testing.B) {
	for _, depth := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			eng := sim.New()
			clu := cluster.New(eng, cluster.Config{Nodes: 1, Seed: 1})
			pool := condor.NewPool(eng, clu, scheduler.NewExclusive(), condor.Config{})
			mk := func(id int) *job.Job {
				j := &job.Job{
					ID: id, Name: "bench", Workload: "bench",
					Mem: 100_000, Threads: 60,
				}
				j.Phases = []job.Phase{{Kind: job.HostPhase, Duration: units.Second}}
				return j
			}
			// Prime the queue at priority 0 (pure appends), then submit
			// front-inserting probes at priority 1.
			prime := make([]*job.Job, depth)
			for i := range prime {
				prime[i] = mk(i)
			}
			pool.Submit(prime)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.SubmitWithPriority([]*job.Job{mk(depth + i)}, 1)
			}
		})
	}
}

// BenchmarkAutoclusterSignature measures one job-ad signature rendering —
// the per-job cost of autocluster assignment after a qedit or on first
// arrival — over ads shaped like the scheduler's (request attributes plus a
// requirements expression referencing both sides).
func BenchmarkAutoclusterSignature(b *testing.B) {
	signer := classad.NewSigner()
	ads := make([]*classad.Ad, 64)
	for i := range ads {
		ad := classad.NewAd()
		ad.SetInt(condor.AttrJobID, int64(i))
		ad.SetInt(condor.AttrRequestPhiMemory, int64(200+(i*97)%1800))
		ad.SetInt(condor.AttrRequestPhiThreads, int64(16+(i*53)%224))
		ad.SetInt(condor.AttrRequestPhiDevices, 1)
		ad.MustSetExpr(classad.RequirementsAttr,
			"TARGET."+condor.AttrPhiFreeMemory+" >= MY."+condor.AttrRequestPhiMemory+
				" && TARGET."+condor.AttrPhiFreeDevices+" >= MY."+condor.AttrRequestPhiDevices)
		ads[i] = ad
	}
	roots := []string{
		classad.RequirementsAttr,
		condor.AttrRequestPhiMemory,
		condor.AttrRequestPhiThreads,
		condor.AttrRequestPhiDevices,
		condor.AttrJobPrio,
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = signer.AppendSignature(buf[:0], ads[i%len(ads)], roots)
	}
}

// BenchmarkMillionJob is the streaming engine's headline artifact: 1,000
// heterogeneous nodes serving a full simulated diurnal day of arrivals —
// nonhomogeneous Poisson traffic with bursts, a thousand-tenant Zipf
// population — in emit-and-drop record mode. No job slice, no submit-event
// heap, no record retention: arrivals come off one self-rearming generator
// timer and terminal records fold into online aggregates, so resident
// memory is O(active jobs). The peak-heap-B metric (live heap after forced
// GC, sampled 16× across the run) is the ledger evidence: it must stay
// roughly flat — within 2× — as the day scales 100k → 1M jobs, where the
// retained pipeline would grow it 10×.
func BenchmarkMillionJob(b *testing.B) {
	nodes := 1000
	devices := workload.HeterogeneousPool(23, nodes, nil)
	run := func(b *testing.B, n int) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := experiments.Run(experiments.RunConfig{
				Policy: experiments.PolicyMCC,
				Nodes:  nodes,
				Source: workload.NewDiurnal(workload.DiurnalConfig{
					N:          n,
					Seed:       23,
					BurstCount: 6,
					Tenants:    1000,
				}),
				NodeDevices:   devices,
				Seed:          23,
				Stream:        true,
				MemProbeEvery: n / 16,
			})
			b.ReportMetric(res.Makespan.Seconds(), "makespan-s")
			b.ReportMetric(float64(res.Stream.PeakHeapBytes), "peak-heap-B")
			b.ReportMetric(float64(res.Stream.PeakPending), "peak-pending")
			b.ReportMetric(res.Stream.Stretch, "stretch")
			b.ReportMetric(res.Stream.Fairness*100, "fairness-%")
		}
	}
	b.Run("jobs=100000", func(b *testing.B) { run(b, 100_000) })
	b.Run("jobs=1000000", func(b *testing.B) { run(b, 1_000_000) })
}
