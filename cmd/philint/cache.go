package main

// Findings cache: a warm `make lint` should cost file hashing, not type
// checking. The key is the SHA-256 of every loaded source file's path and
// contents (in deterministic load order), so ANY source edit — including to
// the analyzer itself, whose sources are part of the module walk — produces
// a different key and a cold run. The cached value is the full pre-filter
// findings list; package patterns are applied after loading, so every
// pattern shares one cache entry.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"

	"phishare/internal/analysis"
)

// cacheSchema versions the cached JSON; bump on incompatible changes to the
// Finding shape.
const cacheSchema = "philint-cache-v1"

// cacheEntry is the on-disk cache value.
type cacheEntry struct {
	Schema   string             `json:"schema"`
	Findings []analysis.Finding `json:"findings"`
}

// cacheKey hashes the loaded module's sources. Packages and files arrive in
// deterministic order from LoadModule, so the digest is stable.
func cacheKey(root string, pkgs []*analysis.Package) (string, bool) {
	h := sha256.New()
	h.Write([]byte(cacheSchema + "\n"))
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			name := pkg.Fset.Position(file.Pos()).Filename
			src, err := os.ReadFile(name)
			if err != nil {
				return "", false
			}
			rel, err := filepath.Rel(root, name)
			if err != nil {
				rel = name
			}
			h.Write([]byte(filepath.ToSlash(rel) + "\n"))
			h.Write(src)
			h.Write([]byte{0})
		}
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// cachedFindings returns the cached findings for the current source state,
// if the cache directory holds a matching entry.
func cachedFindings(root, dir string, pkgs []*analysis.Package) ([]analysis.Finding, bool) {
	if dir == "" {
		return nil, false
	}
	key, ok := cacheKey(root, pkgs)
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(cachePath(root, dir), key+".json"))
	if err != nil {
		return nil, false
	}
	var entry cacheEntry
	if err := json.Unmarshal(data, &entry); err != nil || entry.Schema != cacheSchema {
		return nil, false
	}
	// A cached empty list unmarshals as nil; distinguish "hit, clean" from
	// "miss" by the schema check above.
	return entry.Findings, true
}

// writeCache stores the findings under the current source key, pruning
// entries for other keys (one source state is live at a time).
func writeCache(root, dir string, pkgs []*analysis.Package, findings []analysis.Finding) {
	if dir == "" {
		return
	}
	key, ok := cacheKey(root, pkgs)
	if !ok {
		return
	}
	path := cachePath(root, dir)
	if err := os.MkdirAll(path, 0o755); err != nil {
		return
	}
	if entries, err := os.ReadDir(path); err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".json") && e.Name() != key+".json" {
				os.Remove(filepath.Join(path, e.Name()))
			}
		}
	}
	data, err := json.MarshalIndent(cacheEntry{Schema: cacheSchema, Findings: findings}, "", "\t")
	if err != nil {
		return
	}
	// Best-effort: a failed write only costs the next run a re-analysis.
	tmp := filepath.Join(path, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	os.Rename(tmp, filepath.Join(path, key+".json"))
}

// cachePath anchors a relative cache directory at the module root, so the
// gate works from any working directory.
func cachePath(root, dir string) string {
	if filepath.IsAbs(dir) {
		return dir
	}
	return filepath.Join(root, dir)
}
