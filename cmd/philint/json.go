package main

// JSON output (-json): the machine-readable face of the lint gate. The
// schema is pinned by TestPhilintJSONGolden in this package; editors and
// CI annotate from it without scraping the text form.

import (
	"encoding/json"
	"io"
	"path/filepath"

	"phishare/internal/analysis"
)

// jsonSchemaVersion identifies the report shape; consumers should reject
// versions they do not know.
const jsonSchemaVersion = 1

// jsonFinding is one finding with module-root-relative paths (stable across
// checkouts, unlike absolute paths or cwd-relative ones).
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	// Entry is the sim-path entry attribution of a transitive finding;
	// omitted for purely local findings.
	EntryFile string `json:"entryFile,omitempty"`
	EntryLine int    `json:"entryLine,omitempty"`
}

type jsonReport struct {
	Version  int           `json:"version"`
	Count    int           `json:"count"`
	Findings []jsonFinding `json:"findings"`
}

// writeJSON renders the findings as one indented JSON document.
func writeJSON(w io.Writer, root string, findings []analysis.Finding) error {
	report := jsonReport{Version: jsonSchemaVersion, Findings: []jsonFinding{}}
	for _, f := range findings {
		jf := jsonFinding{
			File:    rootRel(root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Rule:    f.Rule,
			Message: f.Message,
		}
		if f.Entry.Filename != "" {
			jf.EntryFile = rootRel(root, f.Entry.Filename)
			jf.EntryLine = f.Entry.Line
		}
		report.Findings = append(report.Findings, jf)
	}
	report.Count = len(report.Findings)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(report)
}

func rootRel(root, file string) string {
	if file == "" || file == "(module)" {
		return file
	}
	rel, err := filepath.Rel(root, file)
	if err != nil {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}
