package main

import (
	"os"
	"path/filepath"
	"testing"

	"phishare/internal/analysis"
)

func writeTempModule(t *testing.T, root, src string) []*analysis.Package {
	t.Helper()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module phishare\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "internal", "core"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "internal", "core", "core.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadModule(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestCacheRoundTrip pins the warm-gate contract: identical sources hit the
// cached findings (including a hit for an EMPTY findings list — the common
// clean-tree case), and any source edit changes the key and misses.
func TestCacheRoundTrip(t *testing.T) {
	root := t.TempDir()
	pkgs := writeTempModule(t, root, "package core\n\nfunc F() int { return 1 }\n")

	if _, ok := cachedFindings(root, ".pc", pkgs); ok {
		t.Fatal("cold cache reported a hit")
	}

	findings := []analysis.Finding{{Rule: "wallclock", Message: "fixture finding"}}
	writeCache(root, ".pc", pkgs, findings)
	got, ok := cachedFindings(root, ".pc", pkgs)
	if !ok || len(got) != 1 || got[0].Rule != "wallclock" {
		t.Fatalf("warm cache: got %v, %v; want the stored finding", got, ok)
	}

	// A clean result must round-trip as a hit too, or clean trees would
	// re-analyze every run.
	writeCache(root, ".pc", pkgs, nil)
	if got, ok := cachedFindings(root, ".pc", pkgs); !ok || len(got) != 0 {
		t.Fatalf("clean-tree cache: got %v, %v; want empty hit", got, ok)
	}

	// Any source edit — this models editing the analyzer itself just as
	// much as editing checked code — must miss.
	pkgs = writeTempModule(t, root, "package core\n\nfunc F() int { return 2 }\n")
	if _, ok := cachedFindings(root, ".pc", pkgs); ok {
		t.Fatal("cache hit after a source edit")
	}
}
