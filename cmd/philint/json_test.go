package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"phishare/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite the golden report file")

// TestPhilintJSONGolden pins the -json report schema (version, count,
// findings with file/line/col/rule/message and optional entry attribution)
// against a checked-in document. CI and editor integrations parse this
// shape; changing it requires bumping jsonSchemaVersion and regenerating.
func TestPhilintJSONGolden(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("work", "phishare")
	findings := []analysis.Finding{
		{
			Pos:     token.Position{Filename: filepath.Join(root, "internal/sim/engine.go"), Line: 41, Column: 9},
			Rule:    "wallclock",
			Message: "call to time.Now reads the wall clock; sim code must use engine ticks",
		},
		{
			Pos:     token.Position{Filename: filepath.Join(root, "internal/classad/eval.go"), Line: 120, Column: 2},
			Rule:    "dettaint",
			Message: "banned nondeterminism source on the sim path: core.Schedule → classad.fold → order-sensitive range over map attrs",
			Entry:   token.Position{Filename: filepath.Join(root, "internal/core/schedule.go"), Line: 33, Column: 14},
		},
	}

	var buf bytes.Buffer
	if err := writeJSON(&buf, root, findings); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	goldenPath := filepath.Join("testdata", "report.golden.json")
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON report mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Structural claims the golden cannot weaken: pinned version, count
	// matching findings, root-relative slash paths, entry omitted when
	// absent.
	var report struct {
		Version  int `json:"version"`
		Count    int `json:"count"`
		Findings []map[string]any
	}
	if err := json.Unmarshal(got, &report); err != nil {
		t.Fatal(err)
	}
	if report.Version != jsonSchemaVersion {
		t.Errorf("version = %d, want %d", report.Version, jsonSchemaVersion)
	}
	if report.Count != len(report.Findings) || report.Count != 2 {
		t.Errorf("count = %d with %d findings, want 2", report.Count, len(report.Findings))
	}
	if f := report.Findings[0]; f["file"] != "internal/sim/engine.go" {
		t.Errorf("paths must be module-root-relative with forward slashes, got %q", f["file"])
	}
	if _, hasEntry := report.Findings[0]["entryFile"]; hasEntry {
		t.Errorf("local finding must omit entryFile")
	}
	if f := report.Findings[1]; f["entryFile"] != "internal/core/schedule.go" || f["entryLine"] != float64(33) {
		t.Errorf("transitive finding lost its entry attribution: %v", f)
	}
}

// TestPhilintJSONEmpty: a clean run must emit findings as an empty array,
// not null — consumers index it unconditionally.
func TestPhilintJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, "/work", nil); err != nil {
		t.Fatal(err)
	}
	var report struct {
		Count    int               `json:"count"`
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if report.Count != 0 || report.Findings == nil || len(report.Findings) != 0 {
		t.Errorf("empty report must have count 0 and a non-null empty findings array, got %s", buf.String())
	}
}
