// Command philint runs the determinism-and-simulation-hygiene analyzer
// suite (internal/analysis) over the module and reports findings in
// file:line: rule: message form, exiting nonzero if any survive the
// per-line //philint:ignore <rule> <reason> suppressions.
//
// Usage:
//
//	go run ./cmd/philint ./...          # whole module (the make lint gate)
//	go run ./cmd/philint ./internal/... # one subtree
//	go run ./cmd/philint -rules         # describe the rules and exit
//
// Test files and the runnable demos under examples/ are outside the
// enforcement scope; everything else in internal/... and cmd/... is
// walked, parsed with the stdlib go/parser, and checked.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"phishare/internal/analysis"
)

func main() {
	rules := flag.Bool("rules", false, "print each rule's name and contract, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: philint [-rules] [packages]\n\npackages default to ./... relative to the module root\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *rules {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.LoadModule(root, flag.Args())
	if err != nil {
		fatal(err)
	}
	findings := analysis.Lint(pkgs, analysis.Analyzers())
	for _, f := range findings {
		// Report paths relative to the invocation directory so the
		// file:line anchors are clickable from the terminal.
		if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "philint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "philint:", err)
	os.Exit(2)
}
