// Command philint runs the determinism-and-simulation-hygiene analyzer
// suite (internal/analysis) over the module and reports findings in
// file:line: rule: message form (or machine-readable JSON with -json),
// exiting nonzero if any survive the per-line
// //philint:ignore <rule> <reason> suppressions.
//
// Usage:
//
//	go run ./cmd/philint ./...          # whole module (the make lint gate)
//	go run ./cmd/philint ./internal/... # report one subtree
//	go run ./cmd/philint -json ./...    # JSON findings on stdout
//	go run ./cmd/philint -rules         # describe the rules and exit
//
// The whole module is always parsed and type-checked — the whole-program
// rules (dettaint, shardsafe, pureselect) follow call chains across package
// boundaries, so a narrower load would silently weaken them. Package
// patterns only scope which findings are REPORTED: a finding is shown when
// its primary position or its entry attribution falls inside a matched
// package.
//
// -cache DIR memoizes a run's findings keyed on the SHA-256 of every loaded
// source file, so a warm `make lint` skips parsing, type checking, and
// analysis entirely. The analyzer's own sources (internal/analysis,
// cmd/philint) are part of the module walk and therefore of the key: editing
// a rule invalidates the cache automatically.
//
// Test files and the runnable demos under examples/ are outside the
// enforcement scope; everything else in internal/... and cmd/... is walked,
// parsed, and checked.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"phishare/internal/analysis"
)

func main() {
	rules := flag.Bool("rules", false, "print each rule's name and contract, then exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	cacheDir := flag.String("cache", "", "directory for the findings cache (empty disables caching)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: philint [-rules] [-json] [-cache dir] [packages]\n\n"+
				"packages scope reporting and default to ./... relative to the module root;\n"+
				"the whole module is always analyzed\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *rules {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		for _, wa := range analysis.WholeAnalyzers() {
			fmt.Printf("%-11s %s\n", wa.Name, wa.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	// Load everything: the whole-program rules need the full module. The
	// argument patterns are validated against the loaded set below and then
	// scope reporting only.
	pkgs, err := analysis.LoadModule(root, nil)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if err := validatePatterns(pkgs, patterns); err != nil {
		fatal(err)
	}

	findings, cached := cachedFindings(root, *cacheDir, pkgs)
	if !cached {
		findings = analysis.LintAll(pkgs, analysis.Analyzers(), analysis.WholeAnalyzers())
		writeCache(root, *cacheDir, pkgs, findings)
	}
	findings = filterByPatterns(root, findings, patterns)

	if *jsonOut {
		if err := writeJSON(os.Stdout, root, findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			// Report paths relative to the invocation directory so the
			// file:line anchors are clickable from the terminal.
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && f.Pos.Filename != "(module)" {
				f.Pos.Filename = rel
			}
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "philint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// validatePatterns rejects a pattern matching no loaded package: a typo'd
// path in the lint gate would otherwise pass vacuously.
func validatePatterns(pkgs []*analysis.Package, patterns []string) error {
	for _, p := range patterns {
		matched := false
		for _, pkg := range pkgs {
			if analysis.MatchesPattern(pkg.Rel, p) {
				matched = true
				break
			}
		}
		if !matched {
			return fmt.Errorf("pattern %q matched no packages", p)
		}
	}
	return nil
}

// filterByPatterns keeps the findings whose primary or entry position falls
// inside a matched package. Module-level pseudo-findings (type errors) are
// always kept.
func filterByPatterns(root string, findings []analysis.Finding, patterns []string) []analysis.Finding {
	if len(patterns) == 0 {
		return findings
	}
	relOf := func(file string) (string, bool) {
		if file == "" || file == "(module)" {
			return "", false
		}
		rel, err := filepath.Rel(root, filepath.Dir(file))
		if err != nil {
			return "", false
		}
		return filepath.ToSlash(rel), true
	}
	var out []analysis.Finding
	for _, f := range findings {
		rel, ok := relOf(f.Pos.Filename)
		if !ok {
			out = append(out, f) // module-level pseudo-finding
			continue
		}
		keep := false
		for _, p := range patterns {
			if analysis.MatchesPattern(rel, p) {
				keep = true
				break
			}
			if erel, eok := relOf(f.Entry.Filename); eok && analysis.MatchesPattern(erel, p) {
				keep = true
				break
			}
		}
		if keep {
			out = append(out, f)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "philint:", err)
	os.Exit(2)
}
