// Command phisched runs a single cluster-scheduling simulation and prints
// its measurements: makespan, utilization, concurrency, and per-policy
// statistics. It is the "run one configuration" tool; cmd/phibench
// regenerates the full evaluation.
//
// Usage:
//
//	phisched -policy MCCK -nodes 8 -jobs 1000 -workload tableI [-seed 42]
//	phisched -policy MCC -workload normal -jobs 400
//	phisched -policy MCCK -dashboard run.html -events events.jsonl -metrics run.prom
//
// Workloads: tableI (the paper's real application mix) or one of the
// synthetic distributions uniform, normal, low-skew, high-skew.
//
// The observability flags (-events, -metrics, -series, -dashboard,
// -eventlog) attach the internal/obs layer to the run and export its
// artifacts; instrumentation never changes simulated outcomes. -perfetto
// exports causal job spans as a Chrome trace-event file for ui.perfetto.dev,
// -critpath writes the critical-path makespan attribution, and
// -stream-events traces arbitrarily large runs in bounded memory by
// streaming JSONL during the run instead of retaining events.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"phishare/internal/condor"
	"phishare/internal/experiments"
	"phishare/internal/job"
	"phishare/internal/obs"
	"phishare/internal/rng"
	"phishare/internal/trace"
	"phishare/internal/units"
	"phishare/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phisched: ")

	var (
		policy   = flag.String("policy", "MCCK", "scheduling policy: MC, MCC, MCCK, Agnostic")
		nodes    = flag.Int("nodes", 8, "cluster size (servers, 1 Xeon Phi each)")
		devices  = flag.Int("devices", 1, "Xeon Phi devices per node")
		njobs    = flag.Int("jobs", 1000, "number of jobs")
		wl       = flag.String("workload", "tableI", "workload: tableI, uniform, normal, low-skew, high-skew")
		input    = flag.String("input", "", "load the job set from a phigen -json file instead of generating one")
		seed     = flag.Int64("seed", 42, "random seed")
		verbose  = flag.Bool("v", false, "print per-workload turnaround breakdown")
		traceOut = flag.String("trace", "", "write the offload trace (CSV) to this file")
		svgOut   = flag.String("svg", "", "write the offload timeline as an SVG Gantt chart")

		eventsOut  = flag.String("events", "", "write the structured trace event stream (JSONL) to this file")
		metricsOut = flag.String("metrics", "", "write the metrics snapshot (Prometheus text format) to this file")
		seriesOut  = flag.String("series", "", "write the sampled time series (CSV) to this file")
		dashOut    = flag.String("dashboard", "", "write a self-contained HTML dashboard to this file")
		sampleSec  = flag.Float64("sample", 5, "time-series sampling period in simulated seconds")
		eventlog   = flag.String("eventlog", "", "write the condor job event log (CSV) to this file")

		perfetto  = flag.String("perfetto", "", "write job spans as a Chrome/Perfetto trace-event JSON file")
		critpath  = flag.String("critpath", "", "write the critical-path makespan attribution (text report) to this file")
		streamOut = flag.String("stream-events", "", "stream trace events (JSONL) to this file during the run without retaining them (bounded memory; disables -events)")
	)
	flag.Parse()

	var jobs []*job.Job
	switch {
	case *input != "":
		f, err := os.Open(*input)
		if err != nil {
			log.Fatal(err)
		}
		jobs, err = job.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		*wl = *input
	case *wl == "tableI":
		jobs = job.GenerateTableOneSet(*njobs, rng.New(*seed).Fork("tableI"))
	default:
		d, err := workload.ParseDistribution(*wl)
		if err != nil {
			log.Fatal(err)
		}
		jobs = workload.Generate(workload.Config{Dist: d, N: *njobs, Seed: *seed})
	}

	var rec *trace.Recorder
	runCfg := experiments.RunConfig{
		Policy:         *policy,
		Nodes:          *nodes,
		DevicesPerNode: *devices,
		Jobs:           jobs,
		Seed:           *seed,
	}
	if *traceOut != "" || *svgOut != "" {
		rec = trace.NewRecorder()
		runCfg.Trace = rec
	}
	var o *obs.Observer
	if *eventsOut != "" || *metricsOut != "" || *seriesOut != "" || *dashOut != "" ||
		*perfetto != "" || *critpath != "" || *streamOut != "" {
		o = obs.New()
		o.SampleInterval = units.Tick(*sampleSec * float64(units.Second))
		runCfg.Obs = o
	}
	// Spans assemble from the live canonical stream, so -perfetto/-critpath
	// work even when -stream-events drops the trace after emission.
	var spanB *obs.SpanBuilder
	if o != nil && (*perfetto != "" || *critpath != "") {
		spanB = obs.NewSpanBuilder()
		o.Trace.AddConsumer(spanB)
	}
	var streamFile *os.File
	var stream *obs.StreamSink
	if o != nil && *streamOut != "" {
		f, err := os.Create(*streamOut)
		if err != nil {
			log.Fatalf("create %s: %v", *streamOut, err)
		}
		streamFile = f
		stream = o.StreamEvents(f)
		*eventsOut = "" // nothing retained to dump post-hoc
	}
	var elog *condor.EventLog
	if *eventlog != "" {
		elog = condor.NewEventLog()
		runCfg.EventLog = elog
	}
	res := experiments.Run(runCfg)

	if stream != nil {
		if err := stream.Err(); err != nil {
			log.Fatalf("stream events: %v", err)
		}
		if err := streamFile.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("streamed %d trace events to %s (buffer high-water %d bytes)",
			stream.Events(), *streamOut, stream.HighWater())
	}

	writeArtifact := func(path, what string, write func(io.Writer) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("create %s: %v", path, err)
		}
		if err := write(f); err != nil {
			log.Fatalf("write %s: %v", what, err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s to %s", what, path)
	}
	if o != nil {
		writeArtifact(*eventsOut, "event stream (JSONL)", o.WriteEvents)
		writeArtifact(*metricsOut, "metrics snapshot (Prometheus)", o.WriteMetrics)
		writeArtifact(*seriesOut, "time series (CSV)", o.WriteSeriesCSV)
		writeArtifact(*dashOut, "dashboard (HTML)", func(w io.Writer) error {
			title := fmt.Sprintf("phisched %s: %d jobs (%s) on %d nodes, seed %d",
				res.Policy, res.JobCount, *wl, *nodes, *seed)
			return o.WriteDashboard(w, title)
		})
	}
	if spanB != nil {
		spans := spanB.Spans()
		writeArtifact(*perfetto, "Perfetto trace (JSON)", func(w io.Writer) error {
			return obs.WriteChromeTrace(w, spans)
		})
		writeArtifact(*critpath, "critical-path attribution", func(w io.Writer) error {
			cp := obs.AnalyzeCriticalPath(spans)
			if cp == nil {
				_, err := io.WriteString(w, "no completed spans; nothing to attribute\n")
				return err
			}
			return cp.WriteText(w)
		})
	}
	if elog != nil {
		writeArtifact(*eventlog, "condor event log (CSV)", elog.WriteCSV)
	}

	if rec != nil && *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			log.Fatalf("create %s: %v", *svgOut, err)
		}
		if err := rec.WriteSVG(f, 240); err != nil {
			log.Fatalf("write svg: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote timeline SVG to %s", *svgOut)
	}

	if rec != nil && *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("create %s: %v", *traceOut, err)
		}
		if err := rec.WriteCSV(f); err != nil {
			log.Fatalf("write trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d offload intervals to %s", len(rec.Intervals()), *traceOut)
		totalThreads := float64(*nodes * *devices * 240)
		fmt.Printf("\ncluster thread occupancy over the run:\n[%s]\n",
			trace.Sparkline(rec.Timeline(64, res.Makespan), totalThreads))
	}

	fmt.Printf("policy           %s\n", res.Policy)
	fmt.Printf("cluster          %d nodes x %d device(s)\n", *nodes, *devices)
	fmt.Printf("jobs             %d (%s)\n", res.JobCount, *wl)
	fmt.Printf("makespan         %.0f s\n", res.Makespan.Seconds())
	fmt.Printf("core utilization %.1f%%\n", res.Utilization*100)
	fmt.Printf("max concurrency  %d jobs/device\n", res.MaxConcurrency)
	fmt.Printf("completed        %d\n", res.Summary.Completed)
	fmt.Printf("failed           %d\n", res.Summary.Failed)
	fmt.Printf("crashes          %d\n", res.Summary.Crashes)
	fmt.Printf("mean wait        %.1f s\n", res.Summary.MeanWait.Seconds())
	fmt.Printf("mean turnaround  %.1f s\n", res.Summary.MeanTurnaround.Seconds())
	fmt.Printf("negotiations     %d\n", res.PoolStats.Negotiations)
	fmt.Printf("qedits           %d\n", res.PoolStats.Qedits)

	if *verbose {
		byWorkload := map[string]int{}
		for _, j := range jobs {
			byWorkload[j.Workload]++
		}
		fmt.Println("\njob mix:")
		for name, count := range byWorkload {
			fmt.Printf("  %-10s %d\n", name, count)
		}
	}
}
