// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON ledger, so benchmark runs can be diffed across PRs
// (the BENCH_<n>.json regression trail; see `make bench`).
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem . | benchjson -o BENCH_1.json -label after
//
// The output file holds one entry per label; re-running with the same -o and
// a different -label merges into the existing file, which is how a single
// BENCH_1.json carries both the "before" and "after" sides of an
// optimization PR. Non-benchmark lines (goos/goarch/cpu headers, PASS/ok
// trailers) are captured into the run's environment block or skipped.
//
// Gate mode turns the ledger into a CI regression fence:
//
//	go test -run '^$' -bench BenchmarkEndToEndMCCK -benchmem -count 3 . \
//	    | benchjson -gate BENCH_5.json -gate-label after
//
// compares the fresh sweep on stdin against the named label of a
// checked-in ledger and exits 1 if any benchmark's ns/op or allocs/op
// regressed by more than -tolerance (default 10%). Repeated -count lines
// are collapsed to their per-metric minimum first, which damps host noise:
// the minimum of several runs estimates the true cost, while a mean would
// absorb scheduler hiccups and flake the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// run is one labelled benchmark sweep.
type run struct {
	// Env echoes the goos/goarch/pkg/cpu header of the sweep.
	Env map[string]string `json:"env,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// metrics: ns/op, B/op, allocs/op, and any b.ReportMetric customs.
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

type benchResult struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		out       = flag.String("o", "", "JSON file to write (merged with existing content); empty writes to stdout")
		label     = flag.String("label", "run", "label for this sweep inside the JSON file (e.g. before, after)")
		gate      = flag.String("gate", "", "ledger file to gate against instead of writing; exit 1 on regression")
		gateLabel = flag.String("gate-label", "after", "ledger label the gate compares against")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional regression in gate mode")
	)
	flag.Parse()

	r := run{Env: map[string]string{}, Benchmarks: map[string]benchResult{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			name, res, err := parseBenchLine(line)
			if err != nil {
				log.Fatalf("parse %q: %v", line, err)
			}
			if prev, ok := r.Benchmarks[name]; ok {
				res = minResult(prev, res) // -count > 1: keep per-metric minima
			}
			r.Benchmarks[name] = res
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			r.Env[k] = strings.TrimSpace(v)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("read stdin: %v", err)
	}
	if len(r.Benchmarks) == 0 {
		log.Fatal("no benchmark lines on stdin (did the -bench regex match anything?)")
	}

	if *gate != "" {
		os.Exit(runGate(*gate, *gateLabel, *tolerance, r))
	}

	// Merge into any existing ledger so one file accumulates labels.
	ledger := map[string]run{}
	if *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &ledger); err != nil {
				log.Fatalf("existing %s is not a benchjson ledger: %v", *out, err)
			}
		}
	}
	ledger[*label] = r

	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d benchmarks under label %q to %s", len(r.Benchmarks), *label, *out)
}

// minResult merges two sweeps of the same benchmark, keeping the minimum of
// every metric the two share (and any metric only one reports).
func minResult(a, b benchResult) benchResult {
	out := benchResult{Iterations: a.Iterations, Metrics: map[string]float64{}}
	if b.Iterations > out.Iterations {
		out.Iterations = b.Iterations
	}
	for k, v := range a.Metrics {
		out.Metrics[k] = v
	}
	for k, v := range b.Metrics {
		if old, ok := out.Metrics[k]; !ok || v < old {
			out.Metrics[k] = v
		}
	}
	return out
}

// gatedMetrics are the regression-fenced series: wall time and allocation
// count. B/op and custom metrics are recorded but not gated — bytes track
// allocs closely, and custom metrics (e.g. makespan-s) are outcome checks
// owned by the test suite, not performance.
var gatedMetrics = []string{"ns/op", "allocs/op"}

// runGate compares the fresh sweep against ledger[label] and returns the
// process exit code: 0 clean, 1 on any regression beyond the tolerance.
func runGate(ledgerPath, label string, tolerance float64, fresh run) int {
	data, err := os.ReadFile(ledgerPath)
	if err != nil {
		log.Fatalf("gate ledger: %v", err)
	}
	ledger := map[string]run{}
	if err := json.Unmarshal(data, &ledger); err != nil {
		log.Fatalf("gate ledger %s: %v", ledgerPath, err)
	}
	base, ok := ledger[label]
	if !ok {
		log.Fatalf("gate ledger %s has no label %q", ledgerPath, label)
	}
	names := make([]string, 0, len(fresh.Benchmarks))
	for name := range fresh.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	compared := 0
	for _, name := range names {
		want, ok := base.Benchmarks[name]
		if !ok {
			log.Printf("%s: not in ledger, skipped", name)
			continue
		}
		got := fresh.Benchmarks[name]
		for _, metric := range gatedMetrics {
			w, okW := want.Metrics[metric]
			g, okG := got.Metrics[metric]
			if !okW || !okG {
				continue
			}
			compared++
			limit := w * (1 + tolerance)
			status := "ok"
			if g > limit {
				status = "REGRESSION"
				failed++
			}
			log.Printf("%s %s: %.6g vs ledger %.6g (limit %.6g) %s", name, metric, g, w, limit, status)
		}
	}
	if compared == 0 {
		log.Print("gate compared nothing: no overlapping benchmarks/metrics")
		return 1
	}
	if failed > 0 {
		log.Printf("gate FAILED: %d metric(s) regressed more than %.0f%%", failed, tolerance*100)
		return 1
	}
	log.Printf("gate clean: %d metric(s) within %.0f%% of %s[%s]", compared, tolerance*100, ledgerPath, label)
	return 0
}

// parseBenchLine splits one result line:
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   2 allocs/op   3.14 custom-metric
//
// into the name (CPU suffix stripped) and its (value, unit) metric pairs.
func parseBenchLine(line string) (string, benchResult, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", benchResult{}, fmt.Errorf("want 'name iters {value unit}...', got %d fields", len(fields))
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", benchResult{}, fmt.Errorf("iterations: %w", err)
	}
	res := benchResult{Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", benchResult{}, fmt.Errorf("metric %s: %w", fields[i+1], err)
		}
		res.Metrics[fields[i+1]] = v
	}
	return name, res, nil
}
