// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON ledger, so benchmark runs can be diffed across PRs
// (the BENCH_<n>.json regression trail; see `make bench`).
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem . | benchjson -o BENCH_1.json -label after
//
// The output file holds one entry per label; re-running with the same -o and
// a different -label merges into the existing file, which is how a single
// BENCH_1.json carries both the "before" and "after" sides of an
// optimization PR. Non-benchmark lines (goos/goarch/cpu headers, PASS/ok
// trailers) are captured into the run's environment block or skipped.
//
// Gate mode turns the ledger into a CI regression fence:
//
//	go test -run '^$' -bench BenchmarkEndToEndMCCK -benchmem -count 3 . \
//	    | benchjson -gate BENCH_5.json -gate-label after
//
// compares the fresh sweep on stdin against the named label of a
// checked-in ledger and exits 1 if any benchmark's ns/op or allocs/op
// regressed by more than -tolerance (default 10%). Repeated -count lines
// are collapsed to their per-metric minimum first, which damps host noise:
// the minimum of several runs estimates the true cost, while a mean would
// absorb scheduler hiccups and flake the gate.
//
// Gate mode also fences observability overhead within the fresh sweep
// itself: wherever it sees an X/disabled and X/instrumented sub-benchmark
// pair, the instrumented leg's ns/op must stay within -obs-tolerance
// (default 15%) of its disabled twin. That is a same-host, same-run
// comparison, so it needs no ledger history and cannot drift with hardware.
// Under -count > 1 the check pairs same-index readings (which ran back to
// back) and takes the smallest ratio, so a load spike hitting one leg of
// one count does not read as instrumentation overhead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// run is one labelled benchmark sweep.
type run struct {
	// Env echoes the goos/goarch/pkg/cpu header of the sweep.
	Env map[string]string `json:"env,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// metrics: ns/op, B/op, allocs/op, and any b.ReportMetric customs.
	Benchmarks map[string]benchResult `json:"benchmarks"`
	// samples keeps each benchmark's per-count ns/op readings in input
	// order (minResult collapses Benchmarks to minima); the obs pair-gate
	// compares temporally adjacent readings, which damps host-load drift
	// that would skew a ratio of two independent minima.
	samples map[string][]float64
}

type benchResult struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		out       = flag.String("o", "", "JSON file to write (merged with existing content); empty writes to stdout")
		label     = flag.String("label", "run", "label for this sweep inside the JSON file (e.g. before, after)")
		gate      = flag.String("gate", "", "ledger file to gate against instead of writing; exit 1 on regression")
		gateLabel = flag.String("gate-label", "after", "ledger label the gate compares against")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional regression in gate mode")
		obsTol    = flag.Float64("obs-tolerance", 0.15, "allowed fractional ns/op overhead of an X/instrumented sub-benchmark over its X/disabled twin in gate mode")
	)
	flag.Parse()

	r := run{Env: map[string]string{}, Benchmarks: map[string]benchResult{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			name, res, err := parseBenchLine(line)
			if err != nil {
				log.Fatalf("parse %q: %v", line, err)
			}
			if ns, ok := res.Metrics["ns/op"]; ok {
				if r.samples == nil {
					r.samples = map[string][]float64{}
				}
				r.samples[name] = append(r.samples[name], ns)
			}
			if prev, ok := r.Benchmarks[name]; ok {
				res = minResult(prev, res) // -count > 1: keep per-metric minima
			}
			r.Benchmarks[name] = res
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			r.Env[k] = strings.TrimSpace(v)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("read stdin: %v", err)
	}
	if len(r.Benchmarks) == 0 {
		log.Fatal("no benchmark lines on stdin (did the -bench regex match anything?)")
	}

	if *gate != "" {
		code := runGate(*gate, *gateLabel, *tolerance, r)
		if runObsGate(*obsTol, r) != 0 {
			code = 1
		}
		os.Exit(code)
	}

	// Merge into any existing ledger so one file accumulates labels.
	ledger := map[string]run{}
	if *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &ledger); err != nil {
				log.Fatalf("existing %s is not a benchjson ledger: %v", *out, err)
			}
		}
	}
	ledger[*label] = r

	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d benchmarks under label %q to %s", len(r.Benchmarks), *label, *out)
}

// minResult merges two sweeps of the same benchmark, keeping the minimum of
// every metric the two share (and any metric only one reports).
func minResult(a, b benchResult) benchResult {
	out := benchResult{Iterations: a.Iterations, Metrics: map[string]float64{}}
	if b.Iterations > out.Iterations {
		out.Iterations = b.Iterations
	}
	for k, v := range a.Metrics {
		out.Metrics[k] = v
	}
	for k, v := range b.Metrics {
		if old, ok := out.Metrics[k]; !ok || v < old {
			out.Metrics[k] = v
		}
	}
	return out
}

// gatedMetrics are the regression-fenced series: wall time, allocation
// count, and the streaming engine's live-heap high-water mark (peak-heap-B,
// reported by BenchmarkMillionJob) — the residency bound is a perf contract,
// so it is fenced like one. B/op and the remaining custom metrics are
// recorded but not gated — bytes track allocs closely, and outcome metrics
// (e.g. makespan-s) are owned by the test suite, not performance.
var gatedMetrics = []string{"ns/op", "allocs/op", "peak-heap-B"}

// runGate compares the fresh sweep against ledger[label] and returns the
// process exit code: 0 clean, 1 on any regression beyond the tolerance.
func runGate(ledgerPath, label string, tolerance float64, fresh run) int {
	data, err := os.ReadFile(ledgerPath)
	if err != nil {
		log.Fatalf("gate ledger: %v", err)
	}
	ledger := map[string]run{}
	if err := json.Unmarshal(data, &ledger); err != nil {
		log.Fatalf("gate ledger %s: %v", ledgerPath, err)
	}
	base, ok := ledger[label]
	if !ok {
		log.Fatalf("gate ledger %s has no label %q", ledgerPath, label)
	}
	names := make([]string, 0, len(fresh.Benchmarks))
	for name := range fresh.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	compared := 0
	for _, name := range names {
		want, ok := base.Benchmarks[name]
		if !ok {
			log.Printf("%s: not in ledger, skipped", name)
			continue
		}
		got := fresh.Benchmarks[name]
		for _, metric := range gatedMetrics {
			if metric == "ns/op" && isObsPairLeg(name, fresh) {
				// The leg's wall time is fenced same-sweep by the obs
				// pair-gate; against the ledger only its allocs/op is
				// meaningful (exact and host-independent). Comparing a
				// noisy instrumented leg to a single recorded ns/op
				// minimum flakes without measuring anything the
				// pair-gate and the macro benchmark don't.
				continue
			}
			w, okW := want.Metrics[metric]
			g, okG := got.Metrics[metric]
			if !okW || !okG {
				continue
			}
			compared++
			limit := w * (1 + tolerance)
			status := "ok"
			if g > limit {
				status = "REGRESSION"
				failed++
			}
			log.Printf("%s %s: %.6g vs ledger %.6g (limit %.6g) %s", name, metric, g, w, limit, status)
		}
	}
	if compared == 0 {
		log.Print("gate compared nothing: no overlapping benchmarks/metrics")
		return 1
	}
	if failed > 0 {
		log.Printf("gate FAILED: %d metric(s) regressed more than %.0f%%", failed, tolerance*100)
		return 1
	}
	log.Printf("gate clean: %d metric(s) within %.0f%% of %s[%s]", compared, tolerance*100, ledgerPath, label)
	return 0
}

// isObsPairLeg reports whether name is one half of an obs overhead pair
// (X/disabled with an X/instrumented twin, or vice versa) present in the
// fresh sweep — the legs whose wall time the pair-gate owns.
func isObsPairLeg(name string, fresh run) bool {
	if base, ok := strings.CutSuffix(name, "/disabled"); ok {
		_, ok := fresh.Benchmarks[base+"/instrumented"]
		return ok
	}
	if base, ok := strings.CutSuffix(name, "/instrumented"); ok {
		_, ok := fresh.Benchmarks[base+"/disabled"]
		return ok
	}
	return false
}

// runObsGate fences instrumentation overhead inside one sweep: for every
// benchmark pair X/disabled and X/instrumented, the instrumented ns/op must
// not exceed disabled × (1 + tolerance). Pairs compare within the same run
// on the same host, so the check holds regardless of where CI executes.
//
// With -count > 1 the gate pairs the i-th disabled reading with the i-th
// instrumented reading and takes the smallest ratio: the two legs of one
// count execute back to back, so pairing by index cancels host-load drift
// that a ratio of two independently chosen minima (possibly many seconds
// apart) would absorb as phantom overhead. Sweeps without such pairs pass
// vacuously.
func runObsGate(tolerance float64, fresh run) int {
	names := make([]string, 0, len(fresh.Benchmarks))
	for name := range fresh.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed, compared := 0, 0
	for _, name := range names {
		base, ok := strings.CutSuffix(name, "/disabled")
		if !ok {
			continue
		}
		if _, ok := fresh.Benchmarks[base+"/instrumented"]; !ok {
			continue
		}
		dis, ins := fresh.samples[name], fresh.samples[base+"/instrumented"]
		n := len(dis)
		if len(ins) < n {
			n = len(ins)
		}
		if n == 0 {
			continue
		}
		best, bestD, bestG := -1.0, 0.0, 0.0
		for i := 0; i < n; i++ {
			if dis[i] <= 0 {
				continue
			}
			if r := ins[i] / dis[i]; best < 0 || r < best {
				best, bestD, bestG = r, dis[i], ins[i]
			}
		}
		if best < 0 {
			continue
		}
		compared++
		status := "ok"
		if best > 1+tolerance {
			status = "OVERHEAD"
			failed++
		}
		log.Printf("%s instrumented ns/op: %.6g vs disabled %.6g (best of %d paired runs, +%.1f%%, limit +%.0f%%) %s",
			base, bestG, bestD, n, 100*(best-1), tolerance*100, status)
	}
	if failed > 0 {
		log.Printf("obs gate FAILED: %d pair(s) exceed %.0f%% instrumentation overhead", failed, tolerance*100)
		return 1
	}
	if compared > 0 {
		log.Printf("obs gate clean: %d pair(s) within %.0f%% of their disabled twins", compared, tolerance*100)
	}
	return 0
}

// parseBenchLine splits one result line:
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   2 allocs/op   3.14 custom-metric
//
// into the name (CPU suffix stripped) and its (value, unit) metric pairs.
func parseBenchLine(line string) (string, benchResult, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", benchResult{}, fmt.Errorf("want 'name iters {value unit}...', got %d fields", len(fields))
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", benchResult{}, fmt.Errorf("iterations: %w", err)
	}
	res := benchResult{Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", benchResult{}, fmt.Errorf("metric %s: %w", fields[i+1], err)
		}
		res.Metrics[fields[i+1]] = v
	}
	return name, res, nil
}
