// Command phigen generates and inspects workload sets: Table I application
// instances, the Fig. 7 synthetic distributions, and diurnal arrival
// streams. It prints a summary table, an ASCII resource histogram for
// synthetics, and can export the set as CSV or replayable JSON.
//
// Generation is streaming end to end: jobs come off a workload.Source one
// at a time and flow through validation, the summary accumulators, the
// histogram and the exporters without the set ever being resident — a
// -jobs 1000000 -json day.json run needs megabytes, not gigabytes.
//
// Usage:
//
//	phigen -workload tableI -jobs 1000
//	phigen -workload high-skew -jobs 400 -csv jobs.csv
//	phigen -workload uniform -diurnal -jobs 100000 -burst 6 -tenants 100 -json day.json
//
// With -diurnal, arrivals follow a day-night Poisson rate curve over
// -horizon-s simulated seconds (burst windows via -burst, a Zipf tenant
// population via -tenants) and the CSV's arrival_ms/tenant columns are
// populated; without it every job arrives at t=0 under the anonymous
// tenant.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"

	"phishare/internal/job"
	"phishare/internal/rng"
	"phishare/internal/units"
	"phishare/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phigen: ")

	var (
		wl       = flag.String("workload", "tableI", "workload: tableI, uniform, normal, low-skew, high-skew")
		njobs    = flag.Int("jobs", 400, "number of jobs")
		seed     = flag.Int64("seed", 42, "random seed")
		diurnal  = flag.Bool("diurnal", false, "generate diurnal Poisson arrivals instead of a t=0 batch (synthetic workloads only)")
		burst    = flag.Float64("burst", 0, "expected traffic bursts per day (with -diurnal)")
		tenants  = flag.Int("tenants", 1, "Zipf-skewed tenant population size (with -diurnal)")
		horizonS = flag.Int64("horizon-s", 86400, "arrival horizon in simulated seconds (with -diurnal)")
		out      = flag.String("csv", "", "export a job summary as CSV to this file")
		jsonOut  = flag.String("json", "", "export the full job set (with phase profiles) as JSON; replayable via phisched -input")
	)
	flag.Parse()

	var src workload.Source
	var hist *workload.Histogram
	switch {
	case *wl == "tableI":
		if *diurnal {
			log.Fatal("-diurnal needs a synthetic workload (uniform, normal, low-skew, high-skew)")
		}
		src = workload.FromSlice(job.GenerateTableOneSet(*njobs, rng.New(*seed).Fork("tableI")))
	default:
		d, err := workload.ParseDistribution(*wl)
		if err != nil {
			log.Fatal(err)
		}
		cfg := workload.Config{Dist: d, N: *njobs, Seed: *seed}
		if *diurnal {
			dc := workload.DiurnalConfig{
				N:          *njobs,
				Seed:       *seed,
				Horizon:    units.Tick(*horizonS) * units.Second,
				Day:        units.Tick(*horizonS) * units.Second,
				BurstCount: *burst,
				Tenants:    *tenants,
				Jobs:       workload.Config{Dist: d},
			}
			src = workload.NewDiurnal(dc)
			// The diurnal generator's thread ceiling differs (224, to fit
			// the smallest heterogeneous device); the histogram only reads
			// the memory axis, which the two generators share.
		} else {
			src = workload.FromSlice(workload.Generate(cfg))
		}
		hist = workload.NewHistogram(d, workload.Config{Dist: d}, 10)
	}

	var csvw *csv.Writer
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		csvw = csv.NewWriter(f)
		if err := csvw.Write([]string{"id", "name", "workload", "mem_mb", "threads",
			"actual_peak_mb", "phases", "seq_ms", "offload_ms", "arrival_ms", "tenant"}); err != nil {
			log.Fatal(err)
		}
	}
	var jw *job.StreamWriter
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		jw, err = job.NewStreamWriter(f)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := jw.Close(); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %d jobs (full profiles) to %s", jw.Count(), *jsonOut)
		}()
	}

	// The single pass: every consumer is incremental.
	sum := newSummary()
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		if err := a.Job.Validate(); err != nil {
			log.Fatalf("generated job %d invalid: %v", a.Job.ID, err)
		}
		sum.add(a)
		if hist != nil {
			hist.Observe(a.Job)
		}
		if csvw != nil {
			rec := []string{
				strconv.Itoa(a.Job.ID), a.Job.Name, a.Job.Workload,
				strconv.Itoa(int(a.Job.Mem)), strconv.Itoa(int(a.Job.Threads)),
				strconv.Itoa(int(a.Job.ActualPeakMem)), strconv.Itoa(len(a.Job.Phases)),
				strconv.FormatInt(int64(a.Job.SequentialTime()), 10),
				strconv.FormatInt(int64(a.Job.OffloadTime()), 10),
				strconv.FormatInt(int64(a.At), 10), a.Tenant,
			}
			if err := csvw.Write(rec); err != nil {
				log.Fatal(err)
			}
		}
		if jw != nil {
			if err := jw.Write(a.Job); err != nil {
				log.Fatal(err)
			}
		}
	}

	sum.print(*diurnal)
	if hist != nil {
		fmt.Printf("\nresource-level histogram (mean %.2f):\n", hist.MeanLevel())
		max := 1
		for _, c := range hist.Bins {
			if c > max {
				max = c
			}
		}
		for i, c := range hist.Bins {
			fmt.Printf("  %.1f-%.1f |%-40s| %d\n", hist.Edges[i], hist.Edges[i+1], bar(c, max), c)
		}
	}
	if csvw != nil {
		csvw.Flush()
		if err := csvw.Error(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d jobs to %s", sum.total, *out)
	}
}

func bar(c, max int) string {
	n := c * 40 / max
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

// summary accumulates the per-workload table and arrival statistics one
// arrival at a time.
type summary struct {
	byWl  map[string]*wlAgg
	order []string

	total      int
	seqTotal   units.Tick
	firstAt    units.Tick
	lastAt     units.Tick
	byTenant   map[string]int
	maxPending int
}

type wlAgg struct {
	count   int
	mem     units.MB
	threads units.Threads
	seq     units.Tick
}

func newSummary() *summary {
	return &summary{byWl: map[string]*wlAgg{}, byTenant: map[string]int{}}
}

func (s *summary) add(a workload.Arrival) {
	j := a.Job
	w, ok := s.byWl[j.Workload]
	if !ok {
		w = &wlAgg{}
		s.byWl[j.Workload] = w
		s.order = append(s.order, j.Workload)
	}
	w.count++
	w.mem += j.Mem
	w.threads += j.Threads
	w.seq += j.SequentialTime()

	if s.total == 0 {
		s.firstAt = a.At
	}
	s.total++
	s.lastAt = a.At
	s.seqTotal += j.SequentialTime()
	if a.Tenant != "" {
		s.byTenant[a.Tenant]++
	}
}

func (s *summary) print(diurnal bool) {
	fmt.Printf("%-10s %6s %10s %10s %12s\n", "workload", "count", "avg mem", "avg thr", "avg seq time")
	for _, name := range s.order {
		a := s.byWl[name]
		fmt.Printf("%-10s %6d %10v %9.0fT %11.1fs\n",
			name, a.count,
			units.MB(int(a.mem)/a.count),
			float64(a.threads)/float64(a.count),
			(a.seq / units.Tick(a.count)).Seconds())
	}
	fmt.Printf("total sequential work: %.0f s across %d jobs\n",
		s.seqTotal.Seconds(), s.total)
	if !diurnal {
		return
	}
	fmt.Printf("arrivals: %.1fs .. %.1fs (%.2f jobs/s mean)\n",
		s.firstAt.Seconds(), s.lastAt.Seconds(),
		float64(s.total)/(s.lastAt-s.firstAt).Seconds())
	if len(s.byTenant) > 1 {
		type tc struct {
			name string
			n    int
		}
		tenants := make([]tc, 0, len(s.byTenant))
		for name, n := range s.byTenant {
			tenants = append(tenants, tc{name, n})
		}
		sort.Slice(tenants, func(i, j int) bool {
			if tenants[i].n != tenants[j].n {
				return tenants[i].n > tenants[j].n
			}
			return tenants[i].name < tenants[j].name
		})
		top := tenants
		if len(top) > 5 {
			top = top[:5]
		}
		fmt.Printf("tenants: %d; heaviest:", len(tenants))
		for _, t := range top {
			fmt.Printf(" %s=%d", t.name, t.n)
		}
		fmt.Println()
	}
}
