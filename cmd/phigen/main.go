// Command phigen generates and inspects workload sets: Table I application
// instances and the Fig. 7 synthetic distributions. It prints a summary
// table, an ASCII resource histogram for synthetics, and can export the
// set as CSV for external tools.
//
// Usage:
//
//	phigen -workload tableI -jobs 1000
//	phigen -workload high-skew -jobs 400 -csv jobs.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"phishare/internal/job"
	"phishare/internal/rng"
	"phishare/internal/units"
	"phishare/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phigen: ")

	var (
		wl      = flag.String("workload", "tableI", "workload: tableI, uniform, normal, low-skew, high-skew")
		njobs   = flag.Int("jobs", 400, "number of jobs")
		seed    = flag.Int64("seed", 42, "random seed")
		out     = flag.String("csv", "", "export a job summary as CSV to this file")
		jsonOut = flag.String("json", "", "export the full job set (with phase profiles) as JSON; replayable via phisched -input")
	)
	flag.Parse()

	var jobs []*job.Job
	var synCfg *workload.Config
	if *wl == "tableI" {
		jobs = job.GenerateTableOneSet(*njobs, rng.New(*seed).Fork("tableI"))
	} else {
		d, err := workload.ParseDistribution(*wl)
		if err != nil {
			log.Fatal(err)
		}
		cfg := workload.Config{Dist: d, N: *njobs, Seed: *seed}
		jobs = workload.Generate(cfg)
		synCfg = &cfg
	}
	if err := job.ValidateAll(jobs); err != nil {
		log.Fatalf("generated job set invalid: %v", err)
	}

	summarize(jobs)
	if synCfg != nil {
		h := workload.BuildHistogram(synCfg.Dist, jobs, *synCfg, 10)
		fmt.Printf("\nresource-level histogram (mean %.2f):\n", h.MeanLevel())
		max := 1
		for _, c := range h.Bins {
			if c > max {
				max = c
			}
		}
		for i, c := range h.Bins {
			fmt.Printf("  %.1f-%.1f |%-40s| %d\n", h.Edges[i], h.Edges[i+1], bar(c, max), c)
		}
	}

	if *out != "" {
		if err := exportCSV(*out, jobs); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d jobs to %s", len(jobs), *out)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := job.WriteJSON(f, jobs); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d jobs (full profiles) to %s", len(jobs), *jsonOut)
	}
}

func bar(c, max int) string {
	n := c * 40 / max
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

func summarize(jobs []*job.Job) {
	type agg struct {
		count   int
		mem     units.MB
		threads units.Threads
		seq     units.Tick
	}
	byWl := map[string]*agg{}
	var order []string
	for _, j := range jobs {
		a, ok := byWl[j.Workload]
		if !ok {
			a = &agg{}
			byWl[j.Workload] = a
			order = append(order, j.Workload)
		}
		a.count++
		a.mem += j.Mem
		a.threads += j.Threads
		a.seq += j.SequentialTime()
	}
	fmt.Printf("%-10s %6s %10s %10s %12s\n", "workload", "count", "avg mem", "avg thr", "avg seq time")
	for _, name := range order {
		a := byWl[name]
		fmt.Printf("%-10s %6d %10v %9.0fT %11.1fs\n",
			name, a.count,
			units.MB(int(a.mem)/a.count),
			float64(a.threads)/float64(a.count),
			(a.seq / units.Tick(a.count)).Seconds())
	}
	fmt.Printf("total sequential work: %.0f s across %d jobs\n",
		job.TotalSequentialTime(jobs).Seconds(), len(jobs))
}

func exportCSV(path string, jobs []*job.Job) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"id", "name", "workload", "mem_mb", "threads", "actual_peak_mb", "phases", "seq_ms", "offload_ms"}); err != nil {
		return err
	}
	for _, j := range jobs {
		rec := []string{
			strconv.Itoa(j.ID), j.Name, j.Workload,
			strconv.Itoa(int(j.Mem)), strconv.Itoa(int(j.Threads)),
			strconv.Itoa(int(j.ActualPeakMem)), strconv.Itoa(len(j.Phases)),
			strconv.FormatInt(int64(j.SequentialTime()), 10),
			strconv.FormatInt(int64(j.OffloadTime()), 10),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
