// Command phibench regenerates every table and figure of the paper's
// evaluation, plus the extensions and ablations listed in DESIGN.md, and
// prints them as text tables (optionally teeing to a file for
// EXPERIMENTS.md, and/or dumping machine-readable JSON).
//
// Usage:
//
//	phibench [-exp all|motivation|table2|fig7|fig8|fig9|table3|fig10|fig23|dynamic|estimation|ablations]
//	         [-seed N] [-nodes N] [-real N] [-syn N] [-shards K] [-o report.txt] [-json results.json]
//
// The defaults are the paper's parameters: 8 nodes, 1000 Table I instances,
// 400 synthetic jobs per distribution, seed 42.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"phishare/internal/experiments"
)

// spec bundles an experiment's runner with its text renderer, so one run
// can feed both the report and the JSON dump.
type spec struct {
	run  func(experiments.Options) any
	text func(io.Writer, any)
}

func specs() (map[string]spec, []string) {
	m := map[string]spec{
		"motivation": {
			run:  func(o experiments.Options) any { return experiments.Motivation(o) },
			text: func(w io.Writer, r any) { experiments.WriteMotivation(w, r.(experiments.MotivationResult)) },
		},
		"table2": {
			run:  func(o experiments.Options) any { return experiments.Table2(o) },
			text: func(w io.Writer, r any) { experiments.WriteTable2(w, r.(experiments.Table2Result)) },
		},
		"table2multi": {
			run:  func(o experiments.Options) any { return experiments.Table2Multi(o, nil) },
			text: func(w io.Writer, r any) { experiments.WriteTable2Multi(w, r.([]experiments.SeedStats)) },
		},
		"fig7": {
			run:  func(o experiments.Options) any { return experiments.Fig7(o) },
			text: func(w io.Writer, r any) { experiments.WriteFig7(w, r.(experiments.Fig7Result)) },
		},
		"fig8": {
			run:  func(o experiments.Options) any { return experiments.Fig8(o) },
			text: func(w io.Writer, r any) { experiments.WriteFig8(w, r.(experiments.Fig8Result)) },
		},
		"fig9": {
			run:  func(o experiments.Options) any { return experiments.Fig9(o) },
			text: func(w io.Writer, r any) { experiments.WriteFig9(w, r.(experiments.Fig9Result)) },
		},
		"table3": {
			run:  func(o experiments.Options) any { return experiments.Table3(o) },
			text: func(w io.Writer, r any) { experiments.WriteTable3(w, r.(experiments.Table3Result)) },
		},
		"fig10": {
			run:  func(o experiments.Options) any { return experiments.Fig10(o) },
			text: func(w io.Writer, r any) { experiments.WriteFig10(w, r.(experiments.Fig10Result)) },
		},
		"fig23": {
			run:  func(o experiments.Options) any { return experiments.Fig23(o) },
			text: func(w io.Writer, r any) { experiments.WriteFig23(w, r.(experiments.Fig23Result)) },
		},
		"dynamic": {
			run:  func(o experiments.Options) any { return experiments.Dynamic(o, experiments.DynamicConfig{}) },
			text: func(w io.Writer, r any) { experiments.WriteDynamic(w, r.([]experiments.DynamicRow)) },
		},
		"estimation": {
			run:  func(o experiments.Options) any { return experiments.Estimation(o) },
			text: func(w io.Writer, r any) { experiments.WriteEstimation(w, r.([]experiments.EstimationRow)) },
		},
		"ablations": {
			run: func(o experiments.Options) any {
				return map[string]any{
					"a1_value_function":      experiments.AblationValueFunction(o),
					"a2_oversubscription":    experiments.AblationOversubscription(o),
					"a3_negotiation_cycle":   experiments.AblationNegotiationCycle(o),
					"a4_dispatch_discipline": experiments.AblationDispatchDiscipline(o),
					"a5_transfer_contention": experiments.AblationTransferContention(o),
					"a6_claim_reuse":         experiments.AblationClaimReuse(o),
				}
			},
			text: func(w io.Writer, r any) {
				m := r.(map[string]any)
				experiments.WriteAblation(w, "A1: knapsack value function (Table I mix)", m["a1_value_function"].([]experiments.AblationRow))
				experiments.WriteOversub(w, m["a2_oversubscription"].([]experiments.OversubRow))
				experiments.WriteCycles(w, m["a3_negotiation_cycle"].([]experiments.CycleRow))
				experiments.WriteAblation(w, "A4: COSMIC dispatch discipline (Table I mix)", m["a4_dispatch_discipline"].([]experiments.AblationRow))
				experiments.WriteTransfer(w, m["a5_transfer_contention"].([]experiments.TransferRow))
				experiments.WriteAblation(w, "A6: claim reuse vs per-job negotiation (Table I mix)", m["a6_claim_reuse"].([]experiments.AblationRow))
			},
		},
	}
	order := []string{"motivation", "table2", "table2multi", "fig7", "fig8", "fig9", "table3", "fig10", "fig23", "dynamic", "estimation", "ablations"}
	return m, order
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("phibench: ")

	var (
		exp     = flag.String("exp", "all", "experiment to run (all or one name; see package docs)")
		seed    = flag.Int64("seed", 42, "experiment seed")
		nodes   = flag.Int("nodes", 8, "reference cluster size")
		real    = flag.Int("real", 1000, "Table I job instances")
		syn     = flag.Int("syn", 400, "synthetic jobs per distribution")
		shards  = flag.Int("shards", 0, "negotiator shard count (0 = serial scan; outcomes are bit-identical either way)")
		out     = flag.String("o", "", "also write the report to this file")
		jsonOut = flag.String("json", "", "write machine-readable results to this file")
		obsDir  = flag.String("obs", "", "run each policy instrumented at the Table II config and write per-policy metric/event/series/dashboard dumps into this directory")

		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
		memProfile   = flag.String("memprofile", "", "write a heap profile (after GC) at exit to this file")
		mutexProfile = flag.String("mutexprofile", "", "write a mutex-contention profile at exit to this file (full sampling; shows parallel-core barrier contention)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("create %s: %v", *cpuProfile, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("start cpu profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote cpu profile to %s", *cpuProfile)
		}()
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
		defer func() {
			f, err := os.Create(*mutexProfile)
			if err != nil {
				log.Fatalf("create %s: %v", *mutexProfile, err)
			}
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				log.Fatalf("write mutex profile: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote mutex profile to %s", *mutexProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatalf("create %s: %v", *memProfile, err)
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("write heap profile: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote heap profile to %s", *memProfile)
		}()
	}

	o := experiments.Options{Seed: *seed, Nodes: *nodes, RealJobs: *real, SyntheticJobs: *syn, Shards: *shards}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("create %s: %v", *out, err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	runners, order := specs()
	selected := order
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			log.Fatalf("unknown experiment %q (want one of: all %s)", *exp, strings.Join(order, " "))
		}
		selected = []string{*exp}
	}

	fmt.Fprintf(w, "phishare experiment report — seed=%d nodes=%d real=%d syn=%d shards=%d\n\n",
		*seed, *nodes, *real, *syn, *shards)
	results := map[string]any{"options": o}
	for _, name := range selected {
		start := time.Now() //philint:ignore wallclock harness timing of the driver itself, not simulation state
		r := runners[name].run(o)
		runners[name].text(w, r)
		if name != "fig23" { // trace recorders are not JSON-friendly
			results[name] = r
		}
		//philint:ignore wallclock harness timing of the driver itself, not simulation state
		log.Printf("%s done in %v", name, time.Since(start).Round(time.Millisecond))
	}

	if *obsDir != "" {
		start := time.Now() //philint:ignore wallclock harness timing of the driver itself, not simulation state
		obsRes, err := experiments.DumpObserved(o, *obsDir)
		if err != nil {
			log.Fatalf("observability dump: %v", err)
		}
		for _, r := range obsRes {
			log.Printf("observed %s: makespan %.0f s, artifacts in %s", r.Policy, r.Makespan.Seconds(), *obsDir)
		}
		//philint:ignore wallclock harness timing of the driver itself, not simulation state
		log.Printf("obs dump done in %v", time.Since(start).Round(time.Millisecond))
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatalf("create %s: %v", *jsonOut, err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			log.Fatalf("encode results: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote JSON results to %s", *jsonOut)
	}
}
