// Command phichaos is the fault-injection swarm: it sweeps seeds × policies
// × fault profiles through the full simulation stack with the invariant
// checker armed, and reports every run whose conservation laws broke.
//
// Usage:
//
//	phichaos [-seeds N] [-seed0 N] [-policies MC,MCC,MCCK]
//	         [-profiles light,heavy] [-jobs N] [-nodes N] [-retries N]
//	         [-diff] [-stream] [-v]
//
// With -diff every cell additionally replays on the reference paths —
// autoclusters, match cache, round memoization and the sparse knapsack
// solver all force-disabled — and any divergence between the two runs'
// job-record streams is a failure: fault injection is the adversarial
// workout for cache invalidation, so the bit-for-bit equivalence claim is
// checked exactly where it is most likely to break.
//
// With -stream the swarm instead runs faulted diurnal cells twice each —
// retained under the invariant checker, then in emit-and-drop streaming
// mode — and any divergence between the two runs' online aggregates
// (summary, per-tenant fairness, stretch, footprint marks) is a failure:
// the adversarial version of the streaming-equivalence guarantee.
//
// Each failure prints a `FAIL seed=N profile=P policy=Q` triple followed by
// the violations; replay one cell with the same workload flags plus
// -seeds 1 -seed0 N -profiles P -policies Q. Exit status 1 when any run
// fails, 0 when the whole swarm is clean.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"phishare/internal/experiments"
	"phishare/internal/faults"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 50, "number of consecutive seeds to sweep")
		seed0    = flag.Int64("seed0", 1, "first seed")
		policies = flag.String("policies", "MC,MCC,MCCK", "comma-separated policies")
		profiles = flag.String("profiles", "light,heavy", "comma-separated fault profiles (none,light,heavy)")
		jobs     = flag.Int("jobs", 18, "Table I jobs per run")
		nodes    = flag.Int("nodes", 3, "cluster nodes per run")
		retries  = flag.Int("retries", 4, "crash retry budget per job")
		diff     = flag.Bool("diff", false, "replay every cell on the reference paths and with the parallel core forced off, diffing outcomes bit-for-bit")
		stream   = flag.Bool("stream", false, "run faulted diurnal cells in streaming record mode and diff their aggregates against checked retained runs")
		verbose  = flag.Bool("v", false, "print progress lines")
	)
	flag.Parse()

	var profs []faults.Profile
	for _, name := range strings.Split(*profiles, ",") {
		p, ok := faults.ProfileByName(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "phichaos: unknown profile %q (want none, light or heavy)\n", name)
			os.Exit(2)
		}
		profs = append(profs, p)
	}

	if *stream {
		scfg := experiments.StreamChaosConfig{
			Seeds:    *seeds,
			Seed0:    *seed0,
			Policies: strings.Split(*policies, ","),
			Profiles: profs,
			Nodes:    *nodes,
			Retries:  *retries,
		}
		if *verbose {
			scfg.Logf = func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			}
		}
		failures := experiments.StreamChaosSwarm(scfg)
		runs := *seeds * len(scfg.Policies) * len(profs)
		if len(failures) == 0 {
			fmt.Printf("phichaos: %d streaming cells clean (%d seeds x %d policies x %d profiles, diurnal cells on %d nodes)\n",
				runs, *seeds, len(scfg.Policies), len(profs), *nodes)
			return
		}
		for _, f := range failures {
			fmt.Println(f)
			fmt.Printf("  replay: phichaos -stream -seeds 1 -seed0 %d -profiles %s -policies %s -nodes %d -retries %d\n",
				f.Seed, f.Profile, f.Policy, *nodes, *retries)
		}
		fmt.Printf("phichaos: %d/%d streaming cells FAILED\n", len(failures), runs)
		os.Exit(1)
	}

	cfg := experiments.ChaosConfig{
		Seeds:         *seeds,
		Seed0:         *seed0,
		Policies:      strings.Split(*policies, ","),
		Profiles:      profs,
		Jobs:          *jobs,
		Nodes:         *nodes,
		Retries:       *retries,
		DiffReference: *diff,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	failures := experiments.ChaosSwarm(cfg)
	runs := *seeds * len(cfg.Policies) * len(profs)
	if len(failures) == 0 {
		mode := ""
		if *diff {
			mode = ", reference-diffed"
		}
		fmt.Printf("phichaos: %d runs clean (%d seeds x %d policies x %d profiles, %d jobs on %d nodes%s)\n",
			runs, *seeds, len(cfg.Policies), len(profs), *jobs, *nodes, mode)
		return
	}
	for _, f := range failures {
		fmt.Println(f)
		fmt.Printf("  replay: phichaos -seeds 1 -seed0 %d -profiles %s -policies %s -jobs %d -nodes %d -retries %d\n",
			f.Seed, f.Profile, f.Policy, *jobs, *nodes, *retries)
	}
	fmt.Printf("phichaos: %d/%d runs FAILED\n", len(failures), runs)
	os.Exit(1)
}
