module phishare

go 1.22
