// Cross-module integration tests: whole-stack invariants that must hold for
// every policy, workload and seed — the properties the paper's system
// guarantees by construction (no resource oversubscription, §IV-B) plus
// scheduling-theory sanity bounds on makespan.
package phishare

import (
	"testing"

	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/core"
	"phishare/internal/experiments"
	"phishare/internal/job"
	"phishare/internal/rng"
	"phishare/internal/scheduler"
	"phishare/internal/sim"
	"phishare/internal/units"
	"phishare/internal/workload"
)

// invariantProbe samples device state throughout a run and records any
// violation of the safety properties.
type invariantProbe struct {
	clu        *cluster.Cluster
	violations []string
}

func (p *invariantProbe) check() {
	for _, u := range p.clu.Units {
		hw := u.Device.Config().HWThreads()
		if u.Device.RunningThreads() > hw {
			p.violations = append(p.violations, "thread oversubscription on "+u.SlotName)
		}
		if u.Cosmic != nil {
			if u.Device.CommittedMemory() > u.Device.Config().Memory {
				p.violations = append(p.violations, "memory oversubscription on "+u.SlotName)
			}
			if free := u.Cosmic.DeclaredFree(); free < 0 {
				p.violations = append(p.violations, "declared reservation overrun on "+u.SlotName)
			}
		}
	}
}

// arm schedules periodic probes for the duration of the run.
func (p *invariantProbe) arm(eng *sim.Engine, until units.Tick, period units.Tick) {
	for t := units.Tick(0); t <= until; t += period {
		eng.At(t, p.check)
	}
}

func buildPolicy(name string, seed int64) (condor.Policy, bool) {
	switch name {
	case "MC":
		return scheduler.NewExclusive(), false
	case "MCC":
		return scheduler.NewRandomPack(rng.New(seed)), true
	case "MCCK":
		return core.New(core.Config{}), true
	}
	panic("unknown policy " + name)
}

// TestSafetyInvariantsAcrossSeeds fuzzes the full stack: across seeds,
// policies and workloads, COSMIC-guarded devices never oversubscribe
// hardware threads or physical memory, and every honest job completes.
func TestSafetyInvariantsAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		for _, policy := range []string{"MC", "MCC", "MCCK"} {
			for _, wl := range []string{"tableI", "high-skew"} {
				var jobs []*job.Job
				if wl == "tableI" {
					jobs = job.GenerateTableOneSet(60, rng.New(seed))
				} else {
					jobs = workload.Generate(workload.Config{Dist: workload.HighSkew, N: 60, Seed: seed})
				}
				eng := sim.New()
				eng.MaxSteps = 50_000_000
				pol, cosmic := buildPolicy(policy, seed)
				clu := cluster.New(eng, cluster.Config{Nodes: 3, UseCosmic: cosmic, Seed: seed})
				pool := condor.NewPool(eng, clu, pol, condor.Config{})
				probe := &invariantProbe{clu: clu}
				probe.arm(eng, 2*units.Hour, 500*units.Millisecond)
				pool.Submit(jobs)
				eng.Run()

				if len(probe.violations) > 0 {
					t.Fatalf("seed=%d %s/%s: %d violations, first: %s",
						seed, policy, wl, len(probe.violations), probe.violations[0])
				}
				for _, q := range pool.Jobs() {
					if q.State != condor.Completed {
						t.Fatalf("seed=%d %s/%s: job %d ended %v",
							seed, policy, wl, q.Job.ID, q.State)
					}
				}
				for _, u := range clu.Units {
					if u.Device.ProcessCount() != 0 || u.Device.RunningThreads() != 0 {
						t.Fatalf("seed=%d %s/%s: device %s not clean after run",
							seed, policy, wl, u.SlotName)
					}
				}
			}
		}
	}
}

// TestMakespanBounds checks scheduling-theory sanity: the measured makespan
// can never beat the critical path (longest job) nor the total-work bound,
// and the exclusive policy can never beat perfect per-device sequential
// packing.
func TestMakespanBounds(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		jobs := job.GenerateTableOneSet(50, rng.New(seed*100))
		nodes := 3
		var longest, total units.Tick
		for _, j := range jobs {
			if s := j.SequentialTime(); s > longest {
				longest = s
			}
			total += j.SequentialTime()
		}
		for _, policy := range []string{"MC", "MCC", "MCCK"} {
			res := experiments.Run(experiments.RunConfig{
				Policy: policy, Nodes: nodes, Jobs: jobs, Seed: seed,
			})
			if res.Makespan < longest {
				t.Errorf("seed=%d %s: makespan %v below critical path %v",
					seed, policy, res.Makespan, longest)
			}
			if policy == "MC" && res.Makespan < total/units.Tick(nodes) {
				t.Errorf("seed=%d MC: makespan %v below the sequential packing bound %v",
					seed, res.Makespan, total/units.Tick(nodes))
			}
		}
	}
}

// TestOrderingHoldsAcrossSeeds verifies the paper's headline ordering —
// MCCK ≤ MCC < MC — is not a single-seed artifact on the real mix.
func TestOrderingHoldsAcrossSeeds(t *testing.T) {
	mcckWins := 0
	const trials = 5
	for seed := int64(10); seed < 10+trials; seed++ {
		jobs := job.GenerateTableOneSet(200, rng.New(seed))
		get := func(policy string) units.Tick {
			return experiments.Run(experiments.RunConfig{
				Policy: policy, Nodes: 4, Jobs: jobs, Seed: seed,
			}).Makespan
		}
		mc, mcc, mcck := get("MC"), get("MCC"), get("MCCK")
		if mcc >= mc {
			t.Errorf("seed=%d: MCC %v not better than MC %v", seed, mcc, mc)
		}
		if mcck >= mc {
			t.Errorf("seed=%d: MCCK %v not better than MC %v", seed, mcck, mc)
		}
		if mcck < mcc {
			mcckWins++
		}
	}
	if mcckWins < trials-1 {
		t.Errorf("MCCK beat MCC in only %d/%d trials", mcckWins, trials)
	}
}

// TestMultiDeviceNodes exercises the paper's general formulation ("N
// identical compute servers each having D Xeon Phi coprocessors"): with
// D=2, both devices on a node are advertised as separate slots, the
// knapsack packs them independently, and everything completes safely.
func TestMultiDeviceNodes(t *testing.T) {
	jobs := job.GenerateTableOneSet(80, rng.New(77))
	eng := sim.New()
	eng.MaxSteps = 50_000_000
	clu := cluster.New(eng, cluster.Config{Nodes: 2, DevicesPerNode: 2, UseCosmic: true, Seed: 77})
	pool := condor.NewPool(eng, clu, core.New(core.Config{}), condor.Config{})
	probe := &invariantProbe{clu: clu}
	probe.arm(eng, 2*units.Hour, units.Second)
	pool.Submit(jobs)
	eng.Run()

	if len(probe.violations) > 0 {
		t.Fatalf("violations: %v", probe.violations[0])
	}
	if clu.DeviceCount() != 4 {
		t.Fatalf("device count %d", clu.DeviceCount())
	}
	used := map[string]bool{}
	for _, q := range pool.Jobs() {
		if q.State != condor.Completed {
			t.Fatalf("job %d state %v", q.Job.ID, q.State)
		}
		used[q.Machine.Name] = true
	}
	if len(used) != 4 {
		t.Errorf("only %d of 4 devices used: %v", len(used), used)
	}

	// Same cluster capacity as 4x1 devices: makespans should be close
	// (same scheduler, same totals).
	res4x1 := experiments.Run(experiments.RunConfig{
		Policy: "MCCK", Nodes: 4, Jobs: jobs, Seed: 77,
	})
	ratio := float64(pool.Makespan()) / float64(res4x1.Makespan)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("2x2 vs 4x1 makespan ratio %.2f, want near 1", ratio)
	}
}

// TestSeedSensitivityOfTable2 verifies the headline reductions are stable
// across workload seeds, not tuned to seed 42.
func TestSeedSensitivityOfTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed Table II sweep")
	}
	for _, seed := range []int64{1, 2, 3} {
		r := experiments.Table2(experiments.Options{
			Seed: seed, Nodes: 8, RealJobs: 400, SyntheticJobs: 100,
		})
		mcc, mcck := r.Rows[1], r.Rows[2]
		if mcc.Reduction < 0.15 || mcc.Reduction > 0.45 {
			t.Errorf("seed=%d: MCC reduction %.2f far from the paper's 27%%", seed, mcc.Reduction)
		}
		if mcck.Reduction < 0.30 || mcck.Reduction > 0.50 {
			t.Errorf("seed=%d: MCCK reduction %.2f far from the paper's 39%%", seed, mcck.Reduction)
		}
		if mcck.Reduction <= mcc.Reduction {
			t.Errorf("seed=%d: MCCK (%.2f) did not beat MCC (%.2f)", seed, mcck.Reduction, mcc.Reduction)
		}
	}
}

// TestLargeClusterStress pushes well past the paper's scale: 32 nodes,
// 3000 mixed jobs under MCCK. Guards against quadratic blowups in the
// negotiator and planner and verifies cleanliness at scale.
func TestLargeClusterStress(t *testing.T) {
	if testing.Short() {
		t.Skip("large-cluster stress")
	}
	jobs := job.GenerateTableOneSet(3000, rng.New(999))
	res := experiments.Run(experiments.RunConfig{
		Policy: "MCCK", Nodes: 32, Jobs: jobs, Seed: 999,
	})
	if res.Summary.Completed != 3000 || res.Summary.Failed != 0 {
		t.Fatalf("summary %+v", res.Summary)
	}
	if res.Utilization < 0.5 {
		t.Errorf("utilization %.2f at scale, want > 0.5", res.Utilization)
	}
	// Rough sanity on the makespan: total sequential work / devices is a
	// floor; 3x that is a generous ceiling for a sharing scheduler.
	floor := job.TotalSequentialTime(jobs) / 32
	if res.Makespan > 3*floor {
		t.Errorf("makespan %v more than 3x the sequential floor %v", res.Makespan, floor)
	}
}
