# Developer and CI entry points. `make ci` is the gate every PR must pass;
# `make bench` maintains the benchmark-regression ledger (BENCH_<n>.json).

GO ?= go

# The PR-numbered benchmark ledger this change-set writes into, and the
# label its numbers land under. A perf PR records its baseline first:
#   make bench BENCH_OUT=BENCH_2.json BENCH_LABEL=before   # on the parent commit
#   make bench BENCH_OUT=BENCH_2.json BENCH_LABEL=after    # on the PR head
BENCH_OUT   ?= BENCH_10.json
BENCH_LABEL ?= after

# The regression suite: the hot-path micro-benchmarks plus the two macro
# benchmarks that exercise the whole stack, the observability
# overhead pairs (disabled must track BenchmarkEndToEndMCCK; instrumented
# documents the cost of full instrumentation, serial and 4-worker parallel),
# and the negotiation sweep (queue depths, autoclusters on/off, and the
# 10k-machine/100k-job sharded cycle over shard counts).
BENCH_RE = ^(BenchmarkKnapsack2D|BenchmarkClassAdMatch|BenchmarkSimEngine|BenchmarkEndToEndMCCK|BenchmarkTable2Makespan|BenchmarkObsOverhead|BenchmarkObsOverheadParallel|BenchmarkNegotiate|BenchmarkInsertPending)$$

# The chaos gate's sweep width: seeds per (policy, profile) cell. The full
# acceptance sweep is 50; CI runs a shorter one under -race to keep the gate
# fast. Override with `make chaos CHAOS_SEEDS=50`. CHAOS_DIFF_SEEDS sizes the
# reference-diff sweep (each of its cells runs twice, once on the dense
# reference solver, so it is narrower).
CHAOS_SEEDS ?= 15
CHAOS_DIFF_SEEDS ?= 10

.PHONY: build vet lint lint-self test race bench benchgate chaos ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# philint (cmd/philint + internal/analysis) enforces the determinism
# contract at the source level: the per-file rules (no math/rand outside
# internal/rng, no wall-clock reads, no order-sensitive map iteration in
# sim-path packages, no float equality in value comparisons, no
# tie-producing sort.Slice in scheduling paths) plus the whole-program
# rules over the type-checked module (dettaint: banned sources reachable
# from sim-path entries through any call chain; shardsafe: Fanout workers
# and lane callbacks write only owned state; pureselect: classad.Match and
# Policy Select implementations are observably pure). Legitimate sites
# carry a per-line `//philint:ignore <rule> <reason>` annotation — for a
# transitive finding, at the offending site or at the sim-path entry.
# The findings cache keys on the SHA-256 of every loaded source file, so a
# warm run costs hashing, not type checking. The machine-readable report
# (.philint-report.json, schema pinned by TestPhilintJSONGolden) is
# written first — even when the gate fails, CI annotation tooling gets
# the findings — and shares the cache, so the enforcing human-format run
# right after is warm. gofmt cleanliness over the whole tree rides along.
lint:
	@$(GO) run ./cmd/philint -cache .philint-cache -json ./... > .philint-report.json || true
	$(GO) run ./cmd/philint -cache .philint-cache ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: these files need formatting:"; echo "$$out"; exit 1; fi

# The analyzer is not above its own law: lint-self reports philint findings
# whose primary or entry position lies in internal/analysis (whole-program
# rules still see the full module). Uncached, so analyzer edits in flight
# are always re-checked.
lint-self:
	$(GO) run ./cmd/philint ./internal/analysis

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The worker counts the big-cell scaling sweep records. Each count lands
# under its own ledger label ($(BENCH_LABEL)-bigcell-cpuN), because benchjson
# collapses repeated names to per-metric minima and would otherwise fold the
# sweep into one number.
BENCH_CPUS ?= 1 2 4

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_RE)' -benchmem -count 1 . \
		| $(GO) run ./cmd/benchjson -o $(BENCH_OUT) -label $(BENCH_LABEL)
	for n in $(BENCH_CPUS); do \
		$(GO) test -run '^$$' -bench '^BenchmarkBigCell$$' -benchmem -benchtime 1x -cpu $$n . \
			| $(GO) run ./cmd/benchjson -o $(BENCH_OUT) -label $(BENCH_LABEL)-bigcell-cpu$$n \
			|| exit 1; \
	done
	$(GO) test -run '^$$' -bench '^BenchmarkMillionJob$$' -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -o $(BENCH_OUT) -label $(BENCH_LABEL)-millionjob

# The obs pair-gate ceiling: how far an X/instrumented leg may run over its
# X/disabled twin. benchjson's own default is 15%, which is the envelope the
# pipeline holds when the collector's GC work runs concurrently with the
# simulation (any multi-core host). CI for this repo runs on a single-CPU
# container where every GC cycle of the retained trace (~7k events, ~1.6 MB
# per end-to-end run) serializes into the measured time — the measured
# floor there is ~+30% serial and ~+35% for the 4-worker parallel pair
# (whose workers also time-slice one CPU), with paired minima observed as
# high as +56% when the gate runs right after the race and chaos legs —
# so the gate allows headroom above that floor here; the instrumented
# legs' allocs/op in the ledger (~+7k over disabled, down from ~+19k
# before the arena pipeline) are the noise-free record of the actual
# per-event cost.
OBS_TOLERANCE ?= 0.60

# The streaming-residency gate leg re-runs BenchmarkMillionJob's 100k cell
# (single -benchtime 1x shots, best of 3) against the ledger's
# after-millionjob label. Its real fence is peak-heap-B — the emit-and-drop
# engine's live-heap high-water mark, which forced-GC sampling keeps stable
# to a few percent, so a slide back toward O(total jobs) residency (10×+)
# trips it immediately. The wider tolerance exists for the leg's ns/op,
# which single-shot runs on a busy one-CPU host can wobble.
STREAM_TOLERANCE ?= 0.25

# Benchmark regression fence: re-measure the end-to-end macro benchmark and
# the observability overhead pairs, and fail if (a) ns/op or allocs/op
# regressed more than 10% against the checked-in ledger's "after" label, or
# (b) any X/instrumented leg runs more than OBS_TOLERANCE over its
# X/disabled twin (the obs pair-gate). The obs pairs' ns/op is fenced only
# by (b) — within one sweep, where host drift cancels — while their
# allocs/op (exact, host-independent) stays under the ledger gate.
# -count 5 lets the gates take per-metric minima (and the pair-gate its
# best paired ratio), which damps host noise without loosening the
# tolerance.
benchgate:
	$(GO) test -run '^$$' -bench '^(BenchmarkEndToEndMCCK|BenchmarkObsOverhead|BenchmarkObsOverheadParallel)$$' -benchmem -count 5 . \
		| $(GO) run ./cmd/benchjson -gate $(BENCH_OUT) -gate-label after -obs-tolerance $(OBS_TOLERANCE)
	$(GO) test -run '^$$' -bench '^BenchmarkMillionJob$$/^jobs=100000$$' -benchmem -benchtime 1x -count 3 . \
		| $(GO) run ./cmd/benchjson -gate $(BENCH_OUT) -gate-label after-millionjob -tolerance $(STREAM_TOLERANCE)

# Fault-injection invariant swarm (see internal/faults): CHAOS_SEEDS seeds ×
# {MC, MCC, MCCK} × {light, heavy} under the invariant checker and the race
# detector. A failure prints a reproducible (seed, profile, policy) triple.
# STREAM_CHAOS_SEEDS sizes the streaming leg: every one of its faulted
# diurnal cells runs twice (checked retained, then emit-and-drop streaming)
# and the online aggregates must match bit for bit.
STREAM_CHAOS_SEEDS ?= 10

chaos:
	CHAOS_SEEDS=$(CHAOS_SEEDS) CHAOS_DIFF_SEEDS=$(CHAOS_DIFF_SEEDS) \
		STREAM_CHAOS_SEEDS=$(STREAM_CHAOS_SEEDS) \
		$(GO) test -race -count 1 \
		-run '^TestInvariantSwarm$$|^TestChaosDiffSwarm$$|^TestStreamChaosSwarm$$' ./internal/experiments

ci: vet build lint race chaos benchgate
