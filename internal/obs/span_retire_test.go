package obs

import (
	"reflect"
	"sort"
	"testing"
)

// retireFixture is a lifecycle stream shaped like the real condor emitter:
// crash and resubmit share a tick (both fire inside jobDone).
//
//	job 1: match → execute → terminate (retires at the terminate)
//	job 2: crash at 800 + same-tick resubmit, second attempt completes
//	job 3: crash at 800, retries exhausted — no resubmit ever comes
//	job 4: aborted by the stall detector
//	job 5: still running at end of stream
func retireFixture() *Trace {
	tr := NewTrace()
	e := tr.Emit
	for _, j := range []int{1, 2, 3, 4, 5} {
		e(0, LayerCondor, "submit", F("job", j))
	}
	e(100, LayerCondor, "match", F("job", 2), F("machine", "slot1@n2"))
	e(100, LayerCondor, "match", F("job", 3), F("machine", "slot1@n3"))
	e(200, LayerCondor, "execute", F("job", 2), F("machine", "slot1@n2"))
	e(200, LayerCondor, "execute", F("job", 3), F("machine", "slot1@n3"))
	e(800, LayerCondor, "crash", F("job", 2), F("machine", "slot1@n2"), F("crashes", 1))
	e(800, LayerCondor, "resubmit", F("job", 2))
	e(800, LayerCondor, "crash", F("job", 3), F("machine", "slot1@n3"), F("crashes", 4))
	e(900, LayerCondor, "match", F("job", 1), F("machine", "slot1@n1"))
	e(950, LayerCondor, "execute", F("job", 1), F("machine", "slot1@n1"))
	e(2000, LayerCondor, "terminate", F("job", 1), F("machine", "slot1@n1"))
	e(2100, LayerCondor, "match", F("job", 2), F("machine", "slot1@n2"))
	e(2200, LayerCondor, "execute", F("job", 2), F("machine", "slot1@n2"))
	e(4000, LayerCondor, "terminate", F("job", 2), F("machine", "slot1@n2"))
	e(4000, LayerCondor, "stall_abort", F("job", 4))
	e(4100, LayerCondor, "match", F("job", 5), F("machine", "slot1@n1"))
	return tr
}

// TestSpanRetire pins the emit-and-drop span pipeline against the retaining
// builder: retired plus still-resident spans must together equal the
// post-hoc set, terminal spans must leave the builder, and a crash followed
// by a same-tick resubmit must NOT retire (the span reopens).
func TestSpanRetire(t *testing.T) {
	retained := SpansFromTrace(retireFixture())

	var retired []*Span
	b := NewSpanBuilder()
	b.Retire = func(s *Span) { retired = append(retired, s) }
	events := retireFixture().Events()
	for _, e := range events {
		b.Consume(e)
	}

	// All four terminal spans are out: jobs 1 and 2 at their terminates,
	// job 4 at its stall_abort, and job 3's crash-failure once the job-1
	// match at t=900 proved no same-tick resubmit was coming.
	if got := len(retired); got != 4 {
		t.Fatalf("retired %d spans before flush, want 4", got)
	}
	b.FlushRetired()
	if got := len(retired); got != 4 {
		t.Fatalf("retired %d spans after flush, want 4", got)
	}

	resident := b.Spans()
	if len(resident) != 1 || resident[0].Job != 5 || resident[0].Outcome != "" {
		t.Fatalf("resident spans = %+v, want only running job 5", resident)
	}

	all := append(append([]*Span{}, retired...), resident...)
	sort.Slice(all, func(i, j int) bool { return all[i].Job < all[j].Job })
	if len(all) != len(retained) {
		t.Fatalf("retire mode yields %d spans total, retaining builder %d", len(all), len(retained))
	}
	for i := range retained {
		if !reflect.DeepEqual(all[i], retained[i]) {
			t.Errorf("job %d span differs:\n  retire:   %+v\n  retained: %+v",
				retained[i].Job, *all[i], *retained[i])
		}
	}

	// Job 2 (crash + same-tick resubmit, then completed) must have retired
	// exactly once, with both attempts attached.
	for _, s := range retired {
		if s.Job == 2 {
			if len(s.Attempts) != 2 || s.Outcome != "completed" {
				t.Errorf("resubmitted span retired wrong: %+v", *s)
			}
		}
	}
}

// TestSpanRetireFlushDrainsFinalCrash covers the end-of-stream corner: a
// crash with no later event stays resident (a same-tick resubmit could
// still arrive) until FlushRetired forces the question.
func TestSpanRetireFlushDrainsFinalCrash(t *testing.T) {
	tr := NewTrace()
	e := tr.Emit
	e(0, LayerCondor, "submit", F("job", 9))
	e(100, LayerCondor, "match", F("job", 9), F("machine", "slot1@n1"))
	e(200, LayerCondor, "execute", F("job", 9), F("machine", "slot1@n1"))
	e(800, LayerCondor, "crash", F("job", 9), F("machine", "slot1@n1"), F("crashes", 4))

	var retired []*Span
	b := NewSpanBuilder()
	b.Retire = func(s *Span) { retired = append(retired, s) }
	for _, ev := range tr.Events() {
		b.Consume(ev)
	}
	if len(retired) != 0 {
		t.Fatalf("final crash retired early: %+v", retired)
	}
	b.FlushRetired()
	if len(retired) != 1 || retired[0].Job != 9 || retired[0].Outcome != "failed" {
		t.Fatalf("flush retired %+v, want job 9 failed", retired)
	}
	if got := b.Spans(); len(got) != 0 {
		t.Fatalf("builder still holds %d spans after flush", len(got))
	}
}
