package obs

import (
	"io"
	"sort"
	"strconv"
	"strings"

	"phishare/internal/units"
)

// Chrome-trace-event export (the JSON format Perfetto and chrome://tracing
// load): each node becomes a process, its host attempts and each coprocessor
// a thread, job attempts and offloads complete ("X") duration events,
// OOM/container kills instant ("i") events. Load the file in
// https://ui.perfetto.dev to scrub through a cell's timeline.
//
// Output is deterministic: processes are sorted by node name, events by
// construction over spans sorted by job id, and the JSON is hand-assembled
// with fixed key order (same policy as Event.AppendJSON).

// WriteChromeTrace renders spans as a Chrome trace-event JSON document.
func WriteChromeTrace(w io.Writer, spans []*Span) error {
	// Collect node → devices. Machines and devices share slot naming
	// ("slotI@nodeJ"); the node is the suffix.
	devs := map[string]map[string]bool{} // node → device set
	node := func(slot string) string {
		if i := strings.IndexByte(slot, '@'); i >= 0 {
			return slot[i+1:]
		}
		return slot
	}
	seen := func(slot string) {
		n := node(slot)
		if devs[n] == nil {
			devs[n] = map[string]bool{}
		}
	}
	for _, s := range spans {
		for _, a := range s.Attempts {
			if a.Machine != "" {
				seen(a.Machine)
			}
			for _, o := range a.Offloads {
				if o.Device != "" {
					seen(o.Device)
					devs[node(o.Device)][o.Device] = true
				}
			}
		}
	}
	nodes := make([]string, 0, len(devs))
	for n := range devs {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	pidOf := map[string]int{}
	type tidKey struct {
		node, dev string
	}
	tidOf := map[tidKey]int{}
	for i, n := range nodes {
		pidOf[n] = i + 1
		ds := make([]string, 0, len(devs[n]))
		for d := range devs[n] {
			ds = append(ds, d)
		}
		sort.Strings(ds)
		tidOf[tidKey{n, ""}] = 1 // host/attempt row
		for j, d := range ds {
			tidOf[tidKey{n, d}] = j + 2
		}
	}

	buf := make([]byte, 0, 4096)
	buf = append(buf, `{"displayTimeUnit":"ms","traceEvents":[`...)
	first := true
	emit := func(b []byte) error {
		if !first {
			if _, err := w.Write([]byte{',', '\n'}); err != nil {
				return err
			}
		} else {
			first = false
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return err
			}
		}
		_, err := w.Write(b)
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}

	meta := func(name string, pid, tid int, arg string) []byte {
		b := append([]byte(nil), `{"ph":"M","name":`...)
		b = appendJSONString(b, name)
		b = append(b, `,"pid":`...)
		b = strconv.AppendInt(b, int64(pid), 10)
		if tid >= 0 {
			b = append(b, `,"tid":`...)
			b = strconv.AppendInt(b, int64(tid), 10)
		}
		b = append(b, `,"args":{"name":`...)
		b = appendJSONString(b, arg)
		return append(b, `}}`...)
	}
	for _, n := range nodes {
		pid := pidOf[n]
		if err := emit(meta("process_name", pid, -1, n)); err != nil {
			return err
		}
		if err := emit(meta("thread_name", pid, 1, "host")); err != nil {
			return err
		}
		ds := make([]string, 0, len(devs[n]))
		for d := range devs[n] {
			ds = append(ds, d)
		}
		sort.Strings(ds)
		for _, d := range ds {
			if err := emit(meta("thread_name", pid, tidOf[tidKey{n, d}], d)); err != nil {
				return err
			}
		}
	}

	us := func(t units.Tick) int64 { return int64(t) * 1000 } // ticks are ms
	complete := func(name, cat string, pid, tid int, start, end units.Tick, args []Field) []byte {
		b := append([]byte(nil), `{"ph":"X","name":`...)
		b = appendJSONString(b, name)
		b = append(b, `,"cat":`...)
		b = appendJSONString(b, cat)
		b = append(b, `,"pid":`...)
		b = strconv.AppendInt(b, int64(pid), 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(tid), 10)
		b = append(b, `,"ts":`...)
		b = strconv.AppendInt(b, us(start), 10)
		b = append(b, `,"dur":`...)
		b = strconv.AppendInt(b, us(end-start), 10)
		b = append(b, `,"args":{`...)
		for i, f := range args {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, f.Key)
			b = append(b, ':')
			b = appendJSONValue(b, f.Val)
		}
		return append(b, `}}`...)
	}
	instant := func(name string, pid, tid int, at units.Tick) []byte {
		b := append([]byte(nil), `{"ph":"i","s":"t","name":`...)
		b = appendJSONString(b, name)
		b = append(b, `,"pid":`...)
		b = strconv.AppendInt(b, int64(pid), 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(tid), 10)
		b = append(b, `,"ts":`...)
		b = strconv.AppendInt(b, us(at), 10)
		return append(b, '}')
	}

	for _, s := range spans {
		jobName := "job " + strconv.FormatInt(s.Job, 10)
		for i, a := range s.Attempts {
			if a.Machine == "" {
				continue
			}
			n := node(a.Machine)
			pid, tid := pidOf[n], tidOf[tidKey{n, ""}]
			end := a.End
			if a.Open || end < 0 {
				continue
			}
			outcome := "completed"
			if a.Crashed {
				outcome = "crashed"
			}
			args := []Field{
				F("machine", a.Machine), F("attempt", i+1),
				F("outcome", outcome), F("queued_ms", a.Match-s.Submit),
			}
			if a.AdmitWait > 0 {
				args = append(args, F("admit_wait_ms", a.AdmitWait))
			}
			if err := emit(complete(jobName, "attempt", pid, tid, a.Match, end, args)); err != nil {
				return err
			}
			for _, o := range a.Offloads {
				if o.Device == "" || (o.Open && end < o.Start) {
					continue
				}
				oEnd := o.End
				if o.Open {
					oEnd = end
				}
				dn := node(o.Device)
				oArgs := []Field{F("threads", o.Threads), F("completed", o.Completed)}
				if o.QueueWait > 0 {
					oArgs = append(oArgs, F("queue_wait_ms", o.QueueWait))
				}
				if err := emit(complete(jobName, "offload", pidOf[dn], tidOf[tidKey{dn, o.Device}], o.Start, oEnd, oArgs)); err != nil {
					return err
				}
			}
			if a.OOMKilled {
				if err := emit(instant(jobName+" OOM-killed", pid, tid, end)); err != nil {
					return err
				}
			}
			if a.ContainerKilled {
				if err := emit(instant(jobName+" container-killed", pid, tid, end)); err != nil {
					return err
				}
			}
		}
	}
	_, err := w.Write([]byte("\n]}\n"))
	return err
}
