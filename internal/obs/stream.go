package obs

import "io"

// StreamSink is a bounded-memory JSONL trace writer: each event is
// serialized into one reusable buffer and written out the moment it reaches
// canonical order, then dropped. Resident memory is the single largest
// serialized event (plus whatever the destination writer buffers), not the
// run length — the property that lets a million-job cell be traced in full.
// HighWater reports the serialization buffer's high-water mark so tests can
// assert the bound.
//
// A StreamSink is registered on a Trace with AddConsumer (usually via
// Observer.StreamEvents, which also switches the trace to emit-and-drop).
// Write errors are sticky: the first error stops further writes and is
// reported by Err, while consumption keeps counting so the simulation is
// never disturbed by a failing sink.
type StreamSink struct {
	w      io.Writer
	buf    []byte
	high   int
	events int64
	err    error
}

// NewStreamSink returns a StreamSink writing JSONL to w.
func NewStreamSink(w io.Writer) *StreamSink {
	return &StreamSink{w: w, buf: make([]byte, 0, 256)}
}

// Consume serializes and writes one event.
func (s *StreamSink) Consume(e Event) {
	s.events++
	s.buf = e.AppendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	if len(s.buf) > s.high {
		s.high = len(s.buf)
	}
	if s.err == nil {
		_, s.err = s.w.Write(s.buf)
	}
}

// Events returns how many events the sink has consumed.
func (s *StreamSink) Events() int64 { return s.events }

// HighWater returns the serialization buffer's high-water mark in bytes —
// the sink's resident-memory bound.
func (s *StreamSink) HighWater() int { return s.high }

// Err returns the first write error, if any.
func (s *StreamSink) Err() error { return s.err }

// StreamEvents attaches a new StreamSink to the Observer's trace and
// switches the trace to emit-and-drop mode: the full event stream goes to w
// as JSONL in canonical order, nothing is retained in memory. Returns nil on
// a nil Observer. Post-hoc consumers of the retained trace (the dashboard's
// makespan panel, WriteJSONL) see no events in this mode; attach streaming
// consumers (SpanBuilder) before the run instead.
func (o *Observer) StreamEvents(w io.Writer) *StreamSink {
	if o == nil {
		return nil
	}
	s := NewStreamSink(w)
	o.Trace.AddConsumer(s)
	o.Trace.SetStreaming(true)
	return s
}
