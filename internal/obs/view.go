package obs

import (
	"phishare/internal/sim"
	"phishare/internal/units"
)

// View is a lane-affine handle on an Observer's trace. Components resolve a
// View once in SetObserver — node-confined components (devices, COSMIC
// managers) pass their node's lane, cross-node machinery (the negotiator,
// the knapsack scheduler, fault injection) passes nil — and emit through it
// from then on. A nil *View drops everything, so the disabled cost at every
// site stays a nil check, exactly like the nil *Observer contract.
//
// The View is what lets instrumented runs stay parallel. An emission from
// inside a parallel epoch window may not touch the shared Trace: it would
// race with other lanes and land out of canonical order. The View instead
// appends the event to its lane's private shard buffer (no locks: one
// writer, the lane's own executor) and records a flush point in the
// executing event's action log via sim.Lane.DeferFlush. The post-window
// canonical walk, which already merges per-lane logs in (time, seq) order,
// drains one buffered event per flush point at the emitting event's exact
// serial position — interleaved with Lane.Global deferrals in emission
// order — so the canonical Trace receives the byte-identical event sequence
// a serial run would have produced. Emissions from serial, barrier, fused
// single-lane-window and walk contexts are already canonically ordered and
// single-threaded, and go straight to the Trace.
//
// Metric instruments need no such machinery: every lane-context instrument
// in the stack carries per-device labels, so each series has exactly one
// writing lane (single-writer contract), integer counters commute, and a
// series' observations arrive in lane order, which within a lane equals
// canonical order. Final registry contents are therefore bit-identical to a
// serial run with instruments written in place.
type View struct {
	o     *Observer
	lane  *sim.Lane
	shard *laneShard
}

// laneShard is one lane's private, pooled event buffer. Appends happen on
// the lane's epoch executor; drains happen one event per flush point on the
// coordinator during the canonical walk, which empties the buffer every
// window (every appended event records a flush point in an executed event's
// action log, and the walk replays all of them).
//
// The event buffer retains its capacity across windows, and field data is
// staged in lane-private blocks that the buffered events keep referencing
// after the drain hands them to the Trace (Trace.EmitOwned) — the block is
// abandoned to the trace rather than copied, so a field is written to the
// heap exactly once on its way from the emitting site to canonical storage.
// Emit sites build their variadic field slices on the stack (Emit copies
// them into the current block rather than keeping the argument slice).
// Blocks start small and double up to fieldChunk, so a mostly-idle lane in
// a huge cell wastes at most a few cache lines of unfilled tail.
type laneShard struct {
	buf    []Event
	pos    int
	high   int     // high-water mark of buffered events, across the run
	blk    []Field // current field block; events own their sub-slices
	blkCap int     // next block capacity (doubles, capped at fieldChunk)
}

// shardBlockMin is the first field-block capacity of a lane shard.
const shardBlockMin = 64

// stage copies fields into the shard's current block and returns the
// block-backed slice, capacity-clipped so later appends can never overlap.
func (sh *laneShard) stage(fields []Field) []Field {
	if len(fields) == 0 {
		return nil
	}
	if cap(sh.blk)-len(sh.blk) < len(fields) {
		c := sh.blkCap * 2
		if c < shardBlockMin {
			c = shardBlockMin
		}
		if c > fieldChunk {
			c = fieldChunk
		}
		if c < len(fields) {
			c = len(fields)
		}
		sh.blkCap = c
		sh.blk = make([]Field, 0, c)
	}
	blk := append(sh.blk, fields...)
	sh.blk = blk
	start := len(blk) - len(fields)
	return blk[start:len(blk):len(blk)]
}

// View resolves a lane-affine emission handle. A nil Observer returns a nil
// View; a nil lane (or the global lane) returns a direct-emitting View for
// cross-node components. Node-lane Views share one shard per lane and
// register the Observer's drain hook on the lane's engine (one Observer per
// engine, the same contract BindSampler has).
func (o *Observer) View(lane *sim.Lane) *View {
	if o == nil {
		return nil
	}
	v := &View{o: o, lane: lane}
	if lane != nil && lane.ID() >= 0 {
		id := lane.ID()
		for len(o.laneShards) <= id {
			o.laneShards = append(o.laneShards, nil)
		}
		sh := o.laneShards[id]
		if sh == nil {
			sh = &laneShard{}
			o.laneShards[id] = sh
		}
		v.shard = sh
		lane.Engine().SetLaneFlush(o.flushLane)
	}
	return v
}

// Emit records one trace event at the View's canonical position. Safe on a
// nil View, but hot paths must guard the call with `if x.obs != nil` so
// field construction is skipped when disabled.
func (v *View) Emit(at units.Tick, layer, kind string, fields ...Field) {
	if v == nil {
		return
	}
	if v.shard != nil && v.lane.EpochLocal() {
		sh := v.shard
		// Stage the fields in the shard's block so the caller's variadic
		// slice stays on its stack.
		sh.buf = append(sh.buf, Event{At: at, Layer: layer, Kind: kind, Fields: sh.stage(fields)})
		if n := len(sh.buf) - sh.pos; n > sh.high {
			sh.high = n
		}
		v.lane.DeferFlush()
		return
	}
	v.o.Trace.Emit(at, layer, kind, fields...)
}

// Observer returns the backing Observer (nil for a nil View). Components use
// it to resolve instrument handles next to their View.
func (v *View) Observer() *Observer {
	if v == nil {
		return nil
	}
	return v.o
}

// flushLane is the engine drain hook: hand the lane's oldest buffered event
// to the canonical Trace. Called by the walk once per recorded flush point,
// on the single-threaded coordinator, in canonical order.
func (o *Observer) flushLane(l *sim.Lane) {
	sh := o.laneShards[l.ID()]
	ev := sh.buf[sh.pos]
	sh.buf[sh.pos] = Event{} // drop the block reference
	sh.pos++
	if sh.pos == len(sh.buf) {
		sh.buf = sh.buf[:0]
		sh.pos = 0
	}
	// The event's fields live in a shard block the trace now takes over;
	// no copy (EmitOwned), the block is simply never rewound.
	o.Trace.EmitOwned(ev)
}

// ShardHighWater reports the largest number of events any lane shard held at
// once across the run — the bound on per-lane buffered observability memory.
// Shards drain completely at every epoch walk, so this is proportional to
// the busiest single window, not to the run length.
func (o *Observer) ShardHighWater() int {
	if o == nil {
		return 0
	}
	max := 0
	for _, sh := range o.laneShards {
		if sh != nil && sh.high > max {
			max = sh.high
		}
	}
	return max
}
