package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"phishare/internal/units"
)

// traceFixture emits a small hand-built lifecycle stream:
//
//	job 1: queue → match on slot1@n1 → admit wait → offload (HOL wait) → done
//	job 2: same machine, matched right after job 1 frees it (blocker chain)
//	job 3: OOM-killed attempt on slot1@n2, resubmitted, completes second try
//	job 4: aborted by the stall detector
func traceFixture() *Trace {
	tr := NewTrace()
	e := tr.Emit
	// job 3 first attempt (earliest activity).
	e(0, LayerCondor, "submit", F("job", 3))
	e(500, LayerCondor, "match", F("job", 3), F("machine", "slot1@n2"))
	e(600, LayerCondor, "execute", F("job", 3), F("machine", "slot1@n2"))
	e(700, LayerPhi, "oom_kill", F("job", 3), F("device", "slot1@n2"))
	e(800, LayerCondor, "crash", F("job", 3), F("machine", "slot1@n2"), F("crashes", 1))
	e(900, LayerCondor, "resubmit", F("job", 3))
	// job 1.
	e(0, LayerCondor, "submit", F("job", 1))
	e(1000, LayerCondor, "match", F("job", 1), F("machine", "slot1@n1"))
	// job 3 second attempt.
	e(1000, LayerCondor, "match", F("job", 3), F("machine", "slot1@n2"))
	e(1100, LayerCondor, "execute", F("job", 1), F("machine", "slot1@n1"))
	e(1100, LayerCondor, "execute", F("job", 3), F("machine", "slot1@n2"))
	e(1150, LayerCosmic, "admitted", F("device", "slot1@n1"), F("job", 1), F("wait_ms", units.Tick(50)))
	e(1800, LayerCosmic, "offload_dispatched", F("device", "slot1@n1"), F("job", 1),
		F("threads", units.Threads(4)), F("wait_ms", units.Tick(200)))
	e(2000, LayerPhi, "offload_start", F("device", "slot1@n1"), F("job", 1), F("threads", units.Threads(4)))
	e(2000, LayerCondor, "terminate", F("job", 3), F("machine", "slot1@n2"))
	e(5000, LayerPhi, "offload_end", F("device", "slot1@n1"), F("job", 1), F("completed", true))
	e(6000, LayerCondor, "terminate", F("job", 1), F("machine", "slot1@n1"))
	// job 2 waits behind job 1.
	e(0, LayerCondor, "submit", F("job", 2))
	e(6100, LayerCondor, "match", F("job", 2), F("machine", "slot1@n1"))
	e(6200, LayerCondor, "execute", F("job", 2), F("machine", "slot1@n1"))
	e(6300, LayerPhi, "offload_start", F("device", "slot1@n1"), F("job", 2), F("threads", units.Threads(8)))
	e(9000, LayerPhi, "offload_end", F("device", "slot1@n1"), F("job", 2), F("completed", true))
	e(9500, LayerCondor, "terminate", F("job", 2), F("machine", "slot1@n1"))
	// job 4 never runs.
	e(0, LayerCondor, "submit", F("job", 4))
	e(9500, LayerCondor, "stall_abort", F("job", 4))
	return tr
}

func TestSpanAssembly(t *testing.T) {
	spans := SpansFromTrace(traceFixture())
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Job != int64(i+1) {
			t.Fatalf("spans not sorted by job: %v", s.Job)
		}
	}

	j1 := spans[0]
	if j1.Outcome != "completed" || j1.End != 6000 || j1.Submit != 0 {
		t.Fatalf("job 1 span: outcome=%q end=%v submit=%v", j1.Outcome, j1.End, j1.Submit)
	}
	if len(j1.Attempts) != 1 {
		t.Fatalf("job 1 attempts: %d", len(j1.Attempts))
	}
	a := j1.Attempts[0]
	if a.Machine != "slot1@n1" || a.Match != 1000 || a.Execute != 1100 || a.End != 6000 || a.Open {
		t.Fatalf("job 1 attempt: %+v", *a)
	}
	if a.AdmitWait != 50 {
		t.Fatalf("job 1 admit wait = %v, want 50", a.AdmitWait)
	}
	if len(a.Offloads) != 1 {
		t.Fatalf("job 1 offloads: %d", len(a.Offloads))
	}
	o := a.Offloads[0]
	if o.Device != "slot1@n1" || o.Start != 2000 || o.End != 5000 || o.Threads != 4 ||
		!o.Completed || o.QueueWait != 200 || o.Open {
		t.Fatalf("job 1 offload: %+v", o)
	}

	j3 := spans[2]
	if len(j3.Attempts) != 2 {
		t.Fatalf("job 3 attempts: %d", len(j3.Attempts))
	}
	if !j3.Attempts[0].Crashed || !j3.Attempts[0].OOMKilled || j3.Attempts[0].End != 800 {
		t.Fatalf("job 3 first attempt: %+v", *j3.Attempts[0])
	}
	if j3.Outcome != "completed" || j3.End != 2000 {
		t.Fatalf("job 3 span: outcome=%q end=%v", j3.Outcome, j3.End)
	}
	if d := j3.Duration(); d != 2000 {
		t.Fatalf("job 3 duration = %v", d)
	}

	if spans[3].Outcome != "stalled" || len(spans[3].Attempts) != 0 {
		t.Fatalf("job 4 span: %+v", *spans[3])
	}
}

// TestSpanBuilderStreaming proves the builder works as a live consumer on an
// emit-and-drop trace: same spans as the retained post-hoc path, while the
// trace itself keeps nothing.
func TestSpanBuilderStreaming(t *testing.T) {
	retained := SpansFromTrace(traceFixture())

	tr := NewTrace()
	b := NewSpanBuilder()
	tr.AddConsumer(b)
	tr.SetStreaming(true)
	for _, e := range traceFixture().Events() {
		tr.Emit(e.At, e.Layer, e.Kind, e.Fields...)
	}
	if tr.Len() != 0 {
		t.Fatalf("streaming trace retained %d events", tr.Len())
	}
	streamed := b.Spans()
	if len(streamed) != len(retained) {
		t.Fatalf("span counts differ: %d streamed, %d retained", len(streamed), len(retained))
	}
	for i := range retained {
		r, s := retained[i], streamed[i]
		if r.Job != s.Job || r.End != s.End || r.Outcome != s.Outcome || len(r.Attempts) != len(s.Attempts) {
			t.Fatalf("span %d differs: retained %+v, streamed %+v", i, *r, *s)
		}
	}
}

func TestCriticalPath(t *testing.T) {
	spans := SpansFromTrace(traceFixture())
	cp := AnalyzeCriticalPath(spans)
	if cp == nil {
		t.Fatal("nil critical path")
	}
	if cp.Makespan != 9500 || cp.TailJob != 2 {
		t.Fatalf("makespan=%v tail=%d, want 9500 / job 2", cp.Makespan, cp.TailJob)
	}

	// The chain must walk job 2 back through its queue wait to blocker job 1,
	// and job 1 matched instantly (qStart 0 < match 1000 → unattributed queue
	// head). Chronological order, no overlaps going backwards.
	if len(cp.Segments) == 0 {
		t.Fatal("empty chain")
	}
	sawJob1, sawQueue := false, false
	for i, s := range cp.Segments {
		if s.End < s.Start {
			t.Fatalf("segment %d inverted: %+v", i, s)
		}
		if i > 0 && s.Start < cp.Segments[i-1].Start {
			t.Fatalf("chain not chronological at %d: %+v after %+v", i, s, cp.Segments[i-1])
		}
		if s.Job == 1 {
			sawJob1 = true
		}
		if s.Job == 2 && s.Kind == "queue" {
			sawQueue = true
			if s.Start != 6000 || s.End != 6100 || s.Where != "slot1@n1" {
				t.Fatalf("job 2 queue segment misattributed: %+v", s)
			}
		}
	}
	if !sawJob1 {
		t.Fatal("blocker job 1 not chained onto the critical path")
	}
	if !sawQueue {
		t.Fatal("job 2's queue wait missing from the chain")
	}

	// Attribution must be internally consistent: shares sum to Covered and
	// fractions to 1, both aggregations agree on the total.
	var kindSum, whereSum units.Tick
	for _, s := range cp.ByKind {
		kindSum += s.Total
	}
	for _, s := range cp.ByWhere {
		whereSum += s.Total
	}
	if kindSum != cp.Covered || whereSum != cp.Covered {
		t.Fatalf("share totals %v / %v, covered %v", kindSum, whereSum, cp.Covered)
	}
	for i := 1; i < len(cp.ByKind); i++ {
		if cp.ByKind[i].Total > cp.ByKind[i-1].Total {
			t.Fatal("ByKind not sorted by descending share")
		}
	}

	// Determinism: same spans, same analysis.
	again := AnalyzeCriticalPath(SpansFromTrace(traceFixture()))
	var b1, b2 bytes.Buffer
	if err := cp.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := again.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("critical-path report not deterministic")
	}
	if b1.Len() == 0 {
		t.Fatal("empty report")
	}

	if AnalyzeCriticalPath(nil) != nil {
		t.Fatal("AnalyzeCriticalPath(nil) should be nil")
	}
}

func TestChromeTraceExport(t *testing.T) {
	spans := SpansFromTrace(traceFixture())
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var procs, attempts, offloads, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procs++
			}
		case "X":
			if ev.Dur < 0 {
				t.Fatalf("negative duration: %+v", ev)
			}
			switch ev.Args["machine"] {
			case nil:
				offloads++
			default:
				attempts++
			}
		case "i":
			instants++
		}
	}
	// Two nodes (n1, n2), 4 closed attempts (j1, j2, j3×2), 2 offloads, one
	// OOM instant.
	if procs != 2 {
		t.Fatalf("process_name events: %d, want 2", procs)
	}
	if attempts != 4 || offloads != 2 {
		t.Fatalf("attempts=%d offloads=%d, want 4/2", attempts, offloads)
	}
	if instants != 1 {
		t.Fatalf("instant events: %d, want 1", instants)
	}

	// ts/dur are microseconds: job 1's offload ran 2000→5000 ms.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "job 1" && ev.Args["machine"] == nil {
			found = true
			if ev.Ts != 2_000_000 || ev.Dur != 3_000_000 {
				t.Fatalf("offload ts/dur = %d/%d µs", ev.Ts, ev.Dur)
			}
		}
	}
	if !found {
		t.Fatal("job 1 offload event missing")
	}

	// Deterministic bytes.
	var again bytes.Buffer
	if err := WriteChromeTrace(&again, SpansFromTrace(traceFixture())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("chrome trace output not deterministic")
	}
}
