// Package obs is the simulated-time observability layer shared by every
// layer of the stack: a metrics registry (counters, gauges, fixed-bucket
// histograms), a structured trace-event stream, and a deterministic
// time-series sampler driven by the sim clock, plus exporters for all three
// (Prometheus text format, JSONL, CSV, and a self-contained HTML dashboard).
//
// Two rules govern the design:
//
//   - Determinism: everything is keyed to simulated time and every exporter
//     emits series in sorted order, so an instrumented run produces
//     byte-identical artifacts on every execution. Instrumentation never
//     mutates simulation state — the regression test in internal/experiments
//     proves a fully instrumented run is bit-identical to a bare one.
//
//   - Nil safety: a nil *Observer, *Registry, *Counter, *Gauge, *Histogram,
//     *Trace, or *Sampler accepts every call as a no-op, so instrumented
//     components pay only a nil check (and allocate nothing) when
//     observability is disabled. Components resolve their instrument handles
//     once at wiring time (SetObserver), never per operation.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v int64 }

// Inc adds one. Safe on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n. Safe on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time float metric.
type Gauge struct{ v float64 }

// Set replaces the value. Safe on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add shifts the value. Safe on a nil gauge.
func (g *Gauge) Add(d float64) {
	if g != nil {
		g.v += d
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket histogram: observations are counted into the
// first bucket whose upper bound is >= the value, with an implicit +Inf
// overflow bucket.
type Histogram struct {
	bounds []float64 // ascending upper bounds
	counts []int64   // len(bounds)+1; last is the +Inf bucket
	sum    float64
	n      int64
}

// Observe records one value. Safe on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean observation (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// seriesMeta records a series' metric family and rendered label pairs.
type seriesMeta struct {
	family string
	labels string // `k="v",k2="v2"` (no braces), empty when unlabelled
}

// Registry holds every metric series of one run. It is single-goroutine,
// like the simulation it instruments; each concurrent simulation owns its
// own registry. A nil *Registry accepts every call and hands out nil
// instruments.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	meta     map[string]seriesMeta
	ftype    map[string]string // family -> counter|gauge|histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		meta:     map[string]seriesMeta{},
		ftype:    map[string]string{},
	}
}

// SeriesName renders a metric family plus alternating label key/value pairs
// as the canonical series identifier, e.g.
// SeriesName("phi_busy_cores", "device", "slot1@node0") =
// `phi_busy_cores{device="slot1@node0"}`. Odd label counts panic.
func SeriesName(name string, labels ...string) string {
	id, _ := seriesID(name, labels)
	return id
}

func seriesID(name string, labels []string) (id, inner string) {
	if len(labels) == 0 {
		return name, ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list for %s: %v", name, labels))
	}
	var sb strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(labels[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(labels[i+1]))
		sb.WriteByte('"')
	}
	inner = sb.String()
	return name + "{" + inner + "}", inner
}

// labelEscaper is built once: a strings.Replacer costs several KB to
// construct, and series IDs are assembled for every instrument resolution
// (and every sampler-probe registration), which made per-call construction
// the single largest allocation source of an instrumented run.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string {
	return labelEscaper.Replace(v)
}

// checkType guards one family against being registered under two metric
// types, which would corrupt the Prometheus export.
func (r *Registry) checkType(family, typ string) {
	if prev, ok := r.ftype[family]; ok && prev != typ {
		panic(fmt.Sprintf("obs: metric family %s registered as both %s and %s", family, prev, typ))
	}
	r.ftype[family] = typ
}

// Counter returns (creating on first use) the counter series for name and
// labels. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	id, inner := seriesID(name, labels)
	if c, ok := r.counters[id]; ok {
		return c
	}
	r.checkType(name, "counter")
	c := &Counter{}
	r.counters[id] = c
	r.meta[id] = seriesMeta{family: name, labels: inner}
	return c
}

// Gauge returns (creating on first use) the gauge series for name and
// labels. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	id, inner := seriesID(name, labels)
	if g, ok := r.gauges[id]; ok {
		return g
	}
	r.checkType(name, "gauge")
	g := &Gauge{}
	r.gauges[id] = g
	r.meta[id] = seriesMeta{family: name, labels: inner}
	return g
}

// Histogram returns (creating on first use) the histogram series for name
// and labels, with the given ascending bucket upper bounds. A nil registry
// returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	id, inner := seriesID(name, labels)
	if h, ok := r.hists[id]; ok {
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending: %v", name, bounds))
		}
	}
	r.checkType(name, "histogram")
	h := &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
	r.hists[id] = h
	r.meta[id] = seriesMeta{family: name, labels: inner}
	return h
}

// CounterValue reads an existing counter series (0 when absent or nil).
func (r *Registry) CounterValue(name string, labels ...string) int64 {
	if r == nil {
		return 0
	}
	id, _ := seriesID(name, labels)
	return r.counters[id].Value()
}

// GaugeValue reads an existing gauge series (0 when absent or nil).
func (r *Registry) GaugeValue(name string, labels ...string) float64 {
	if r == nil {
		return 0
	}
	id, _ := seriesID(name, labels)
	return r.gauges[id].Value()
}

// sortedKeys returns map keys in sorted order — every exporter iterates
// series this way so output is deterministic.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry as a Prometheus text-format (0.0.4)
// snapshot: one # TYPE comment per family, series sorted, histograms as
// cumulative _bucket/_sum/_count triples. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var sb strings.Builder
	emitType := func(family, typ string, seen map[string]bool) {
		if !seen[family] {
			seen[family] = true
			fmt.Fprintf(&sb, "# TYPE %s %s\n", family, typ)
		}
	}
	seen := map[string]bool{}
	for _, id := range sortedKeys(r.counters) {
		m := r.meta[id]
		emitType(m.family, "counter", seen)
		fmt.Fprintf(&sb, "%s %d\n", id, r.counters[id].Value())
	}
	for _, id := range sortedKeys(r.gauges) {
		m := r.meta[id]
		emitType(m.family, "gauge", seen)
		fmt.Fprintf(&sb, "%s %s\n", id, formatFloat(r.gauges[id].Value()))
	}
	for _, id := range sortedKeys(r.hists) {
		m := r.meta[id]
		h := r.hists[id]
		emitType(m.family, "histogram", seen)
		withLe := func(le string) string {
			if m.labels == "" {
				return m.family + `_bucket{le="` + le + `"}`
			}
			return m.family + "_bucket{" + m.labels + `,le="` + le + `"}`
		}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(&sb, "%s %d\n", withLe(formatFloat(b)), cum)
		}
		fmt.Fprintf(&sb, "%s %d\n", withLe("+Inf"), h.n)
		suffix := ""
		if m.labels != "" {
			suffix = "{" + m.labels + "}"
		}
		fmt.Fprintf(&sb, "%s_sum%s %s\n", m.family, suffix, formatFloat(h.sum))
		fmt.Fprintf(&sb, "%s_count%s %d\n", m.family, suffix, h.n)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
