package obs

import (
	"sort"

	"phishare/internal/units"
)

// Causal job spans.
//
// A Span is one job's life reconstructed from the canonical trace stream:
// queue → match → dispatch → admit → offload[i] → complete, with OOM-kill,
// container-kill, crash and resubmit edges from the faults and COSMIC
// layers. The builder is a streaming EventSink, so spans assemble in one
// pass over the canonical stream — they work identically on a retained
// Trace (SpansFromTrace) and on an emit-and-drop streaming run (register
// the builder with Trace.AddConsumer before the run). Because the stream is
// canonically ordered and bit-identical between serial and parallel runs,
// so are the spans.

// Offload is one coprocessor occupancy interval within an attempt.
type Offload struct {
	Device    string     // slot name, e.g. "slot1@node3"
	Start     units.Tick // device occupancy start (after any COSMIC queueing)
	End       units.Tick // occupancy end (completion or abort)
	Threads   int64
	Completed bool
	QueueWait units.Tick // COSMIC HOL wait immediately before Start
	Open      bool       // started but never ended (truncated stream)
}

// Attempt is one match→execution of a job on a machine. A crashed attempt
// ends at the crash; a resubmit opens a new attempt on the next match.
type Attempt struct {
	Machine         string
	Match           units.Tick
	Execute         units.Tick // dispatch latency elapsed, host process starts
	End             units.Tick // terminate or crash instant
	Crashed         bool
	OOMKilled       bool // a phi OOM kill hit this job during the attempt
	ContainerKilled bool // a COSMIC container cap kill hit this job
	AdmitWait       units.Tick
	Offloads        []Offload
	Open            bool // matched but never terminated (truncated stream)
}

// Span is one job's full history.
type Span struct {
	Job      int64
	Submit   units.Tick
	End      units.Tick
	Outcome  string // "completed", "failed", "stalled"; "" while running
	Attempts []*Attempt
}

// Duration is the span's total queue-to-end time.
func (s *Span) Duration() units.Tick { return s.End - s.Submit }

// SpanBuilder assembles spans from trace events. Register it as a consumer
// (Trace.AddConsumer) before the run for streaming assembly, or feed a
// retained trace through SpansFromTrace afterwards.
type SpanBuilder struct {
	jobs map[int64]*Span
	// pendingWait holds a COSMIC offload_dispatched HOL wait that applies
	// to the job's next phi offload_start (the two events are adjacent in
	// causal order; at most one offload per job is in flight).
	pendingWait map[int64]units.Tick

	// Retire, when set, turns the builder into an emit-and-drop pipeline:
	// a finished span is handed to Retire and deleted from the builder
	// instead of accumulating — resident span state becomes O(active jobs),
	// matching the streaming record path. "terminate" and "stall_abort"
	// retire immediately (those outcomes are final). A crash-failed span
	// retires once a strictly later event proves no resubmit reopened it
	// (the reopening resubmit always lands at the crash tick); call
	// FlushRetired at end of stream for failures with no later event.
	// The callback owns the span; the builder keeps no reference.
	Retire func(*Span)
	// crashQ queues crash-failed job ids awaiting the no-resubmit proof
	// above, in crash order. Entries whose span reopened are dropped lazily.
	crashQ []int64
}

// NewSpanBuilder returns an empty builder.
func NewSpanBuilder() *SpanBuilder {
	return &SpanBuilder{
		jobs:        make(map[int64]*Span),
		pendingWait: make(map[int64]units.Tick),
	}
}

// SpansFromTrace builds spans post-hoc from a retained trace. Returns nil
// for a nil or streamed (unretained) trace.
func SpansFromTrace(t *Trace) []*Span {
	if t == nil {
		return nil
	}
	b := NewSpanBuilder()
	for _, e := range t.Events() {
		b.Consume(e)
	}
	return b.Spans()
}

// Spans returns the assembled spans sorted by job id. Safe to call
// mid-stream; open attempts/offloads are marked Open. With a Retire hook
// installed, only still-resident (not yet retired) spans are returned.
func (b *SpanBuilder) Spans() []*Span {
	out := make([]*Span, 0, len(b.jobs))
	for _, s := range b.jobs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out
}

// span returns (creating if needed) the job's span.
func (b *SpanBuilder) span(jobID int64, at units.Tick) *Span {
	s := b.jobs[jobID]
	if s == nil {
		s = &Span{Job: jobID, Submit: at, End: -1}
		b.jobs[jobID] = s
	}
	return s
}

// cur returns the span's open attempt, or nil.
func (s *Span) cur() *Attempt {
	if n := len(s.Attempts); n > 0 && s.Attempts[n-1].Open {
		return s.Attempts[n-1]
	}
	return nil
}

// retireSpan hands a finished span to the Retire hook and forgets it.
func (b *SpanBuilder) retireSpan(jobID int64, s *Span) {
	delete(b.jobs, jobID)
	delete(b.pendingWait, jobID)
	b.Retire(s)
}

// flushCrashed retires crash-failed spans whose failure instant is strictly
// older than now: the canonical stream is time-ordered, so a reopening
// resubmit (which shares the crash tick) can no longer arrive for them.
func (b *SpanBuilder) flushCrashed(now units.Tick) {
	for len(b.crashQ) > 0 {
		id := b.crashQ[0]
		s := b.jobs[id]
		if s == nil || s.Outcome != "failed" {
			// Already retired, or reopened by a resubmit (a re-crash queues
			// its own entry).
			b.crashQ = b.crashQ[1:]
			continue
		}
		if s.End >= now {
			return // could still be reopened at this tick; later entries are no older
		}
		b.crashQ = b.crashQ[1:]
		b.retireSpan(id, s)
	}
}

// FlushRetired retires every resident span with a final outcome — the
// end-of-stream companion to Retire, for crash failures no later event
// could flush. Open (non-terminal) spans stay resident. No-op without a
// Retire hook.
func (b *SpanBuilder) FlushRetired() {
	if b.Retire == nil {
		return
	}
	for len(b.crashQ) > 0 {
		id := b.crashQ[0]
		b.crashQ = b.crashQ[1:]
		if s := b.jobs[id]; s != nil && s.Outcome == "failed" {
			b.retireSpan(id, s)
		}
	}
}

// Consume implements EventSink.
func (b *SpanBuilder) Consume(e Event) {
	jobID, ok := fieldInt(e, "job")
	if !ok {
		return
	}
	if b.Retire != nil {
		b.flushCrashed(e.At)
	}
	switch e.Layer {
	case LayerCondor:
		switch e.Kind {
		case "submit":
			b.span(jobID, e.At).Submit = e.At
		case "match":
			s := b.span(jobID, e.At)
			s.Attempts = append(s.Attempts, &Attempt{
				Machine: fieldString(e, "machine"),
				Match:   e.At, Execute: -1, End: -1, Open: true,
			})
		case "execute":
			if a := b.span(jobID, e.At).cur(); a != nil {
				a.Execute = e.At
			}
		case "crash":
			s := b.span(jobID, e.At)
			if a := s.cur(); a != nil {
				a.End, a.Crashed, a.Open = e.At, true, false
			}
			s.End, s.Outcome = e.At, "failed"
			if b.Retire != nil {
				b.crashQ = append(b.crashQ, jobID)
			}
		case "resubmit":
			s := b.span(jobID, e.At)
			s.End, s.Outcome = -1, ""
		case "terminate":
			s := b.span(jobID, e.At)
			if a := s.cur(); a != nil {
				a.End, a.Open = e.At, false
			}
			s.End, s.Outcome = e.At, "completed"
			if b.Retire != nil {
				b.retireSpan(jobID, s)
			}
		case "stall_abort":
			s := b.span(jobID, e.At)
			s.End, s.Outcome = e.At, "stalled"
			if b.Retire != nil {
				b.retireSpan(jobID, s)
			}
		}
	case LayerCosmic:
		switch e.Kind {
		case "admitted":
			if a := b.span(jobID, e.At).cur(); a != nil {
				if w, ok := fieldTick(e, "wait_ms"); ok {
					a.AdmitWait += w
				}
			}
		case "offload_dispatched":
			if w, ok := fieldTick(e, "wait_ms"); ok {
				b.pendingWait[jobID] = w
			}
		case "container_kill":
			if a := b.span(jobID, e.At).cur(); a != nil {
				a.ContainerKilled = true
			}
		}
	case LayerPhi:
		switch e.Kind {
		case "offload_start":
			a := b.span(jobID, e.At).cur()
			if a == nil {
				return
			}
			threads, _ := fieldInt(e, "threads")
			wait := b.pendingWait[jobID]
			delete(b.pendingWait, jobID)
			a.Offloads = append(a.Offloads, Offload{
				Device: fieldString(e, "device"),
				Start:  e.At, End: -1,
				Threads:   threads,
				QueueWait: wait,
				Open:      true,
			})
		case "offload_end":
			a := b.span(jobID, e.At).cur()
			if a == nil {
				return
			}
			for i := len(a.Offloads) - 1; i >= 0; i-- {
				if o := &a.Offloads[i]; o.Open {
					o.End, o.Open = e.At, false
					o.Completed, _ = fieldBool(e, "completed")
					break
				}
			}
		case "oom_kill":
			if a := b.span(jobID, e.At).cur(); a != nil {
				a.OOMKilled = true
			}
		}
	}
}

// Field extraction helpers. Trace fields carry the emitting site's Go types
// (int job ids, units.Tick waits, units.Threads counts); spans normalize to
// int64/units.Tick.

func fieldInt(e Event, key string) (int64, bool) {
	switch v := e.Field(key).(type) {
	case int:
		return int64(v), true
	case int64:
		return v, true
	case uint64:
		return int64(v), true
	case units.Tick:
		return int64(v), true
	case units.Threads:
		return int64(v), true
	case units.MB:
		return int64(v), true
	case float64:
		return int64(v), true
	}
	return 0, false
}

func fieldTick(e Event, key string) (units.Tick, bool) {
	n, ok := fieldInt(e, key)
	return units.Tick(n), ok
}

func fieldString(e Event, key string) string {
	s, _ := e.Field(key).(string)
	return s
}

func fieldBool(e Event, key string) (bool, bool) {
	v, ok := e.Field(key).(bool)
	return v, ok
}
