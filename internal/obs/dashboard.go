package obs

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"

	"phishare/internal/units"
)

// sparkPalette mirrors internal/trace's colorblind-safe SVG palette so
// dashboards and offload timelines read as one visual family.
var sparkPalette = []string{"#1f77b4", "#2ca02c", "#9467bd", "#8c564b", "#e377c2", "#17becf", "#bcbd22", "#7f7f7f"}

const (
	sparkW = 560
	sparkH = 48
)

// WriteDashboard renders the observer's full state — counters, gauges,
// histograms, sampled time series as SVG sparklines, and an event-count
// breakdown — as one self-contained HTML page. Deterministic: series and
// tables are sorted, so the same run always produces the same bytes.
func (o *Observer) WriteDashboard(w io.Writer, title string) error {
	if o == nil {
		return nil
	}
	var sb strings.Builder
	esc := html.EscapeString
	sb.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&sb, "<title>%s</title>\n", esc(title))
	sb.WriteString(`<style>
body { font-family: sans-serif; font-size: 13px; margin: 24px; color: #222; }
h1 { font-size: 18px; } h2 { font-size: 15px; margin-top: 28px; border-bottom: 1px solid #ddd; padding-bottom: 4px; }
table { border-collapse: collapse; margin: 8px 0; }
th, td { border: 1px solid #ddd; padding: 3px 10px; text-align: left; font-size: 12px; }
th { background: #f5f5f5; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.series { margin: 10px 0; }
.series .name { font-family: monospace; font-size: 12px; }
.series .stats { color: #777; font-size: 11px; margin-left: 8px; }
</style>
</head><body>
`)
	fmt.Fprintf(&sb, "<h1>%s</h1>\n", esc(title))

	smp := o.sampler
	var endT units.Tick
	if smp != nil && len(smp.times) > 0 {
		endT = smp.times[len(smp.times)-1]
	}
	fmt.Fprintf(&sb, "<p>%d metric series &middot; %d trace events &middot; %d samples",
		o.seriesCount(), o.Trace.Len(), smp.Samples())
	if endT > 0 {
		fmt.Fprintf(&sb, " over %.1f simulated seconds", endT.Seconds())
	}
	sb.WriteString("</p>\n")

	o.writeSparklines(&sb)
	o.writeMakespanPanel(&sb)
	o.writeSchedulerCachePanel(&sb)
	o.writeCounterTable(&sb)
	o.writeGaugeTable(&sb)
	o.writeHistogramTable(&sb)
	o.writeEventTable(&sb)

	sb.WriteString("</body></html>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func (o *Observer) seriesCount() int {
	if o.Reg == nil {
		return 0
	}
	return len(o.Reg.counters) + len(o.Reg.gauges) + len(o.Reg.hists)
}

func (o *Observer) writeSparklines(sb *strings.Builder) {
	smp := o.sampler
	if smp == nil || len(smp.rows) == 0 {
		return
	}
	sb.WriteString("<h2>Time series</h2>\n")
	for i, name := range smp.names {
		vals := make([]float64, len(smp.rows))
		minV, maxV := smp.rows[0][i], smp.rows[0][i]
		sum := 0.0
		for j, row := range smp.rows {
			v := row[i]
			vals[j] = v
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
			sum += v
		}
		mean := sum / float64(len(vals))
		last := vals[len(vals)-1]
		fmt.Fprintf(sb, "<div class=\"series\"><span class=\"name\">%s</span>"+
			"<span class=\"stats\">min %s &middot; mean %s &middot; max %s &middot; last %s</span><br>\n",
			html.EscapeString(name), formatFloat(minV), formatFloat(mean), formatFloat(maxV), formatFloat(last))
		writeSparkSVG(sb, vals, sparkPalette[i%len(sparkPalette)])
		sb.WriteString("</div>\n")
	}
}

// writeSparkSVG draws one series as a filled polyline scaled to its own
// [0, max] range (floor of 1 so flat-zero series stay flat lines).
func writeSparkSVG(sb *strings.Builder, vals []float64, color string) {
	maxV := 1.0
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	fmt.Fprintf(sb, `<svg width="%d" height="%d" font-family="sans-serif" font-size="10">`, sparkW, sparkH)
	fmt.Fprintf(sb, `<rect width="%d" height="%d" fill="#fafafa" stroke="#ddd"/>`, sparkW, sparkH)
	step := float64(sparkW-2) / float64(maxInt(len(vals)-1, 1))
	var pts strings.Builder
	for j, v := range vals {
		x := 1 + float64(j)*step
		y := float64(sparkH-2) - v/maxV*float64(sparkH-6)
		fmt.Fprintf(&pts, "%.1f,%.1f ", x, y)
	}
	// Closed area under the line, then the line itself on top.
	fmt.Fprintf(sb, `<polygon points="1,%d %s%.1f,%d" fill="%s" fill-opacity="0.15"/>`,
		sparkH-2, pts.String(), 1+float64(len(vals)-1)*step, sparkH-2, color)
	fmt.Fprintf(sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.2"/>`,
		strings.TrimRight(pts.String(), " "), color)
	sb.WriteString("</svg>\n")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// writeMakespanPanel renders the "Where did the makespan go?" scorecard:
// the critical-path phase attribution assembled from the retained trace's
// job spans. Omitted when the trace holds no condor lifecycle events (a run
// without a pool, or a streamed trace that retained nothing) — dashboards
// for such runs simply lack the panel.
func (o *Observer) writeMakespanPanel(sb *strings.Builder) {
	cp := AnalyzeCriticalPath(SpansFromTrace(o.Trace))
	if cp == nil || len(cp.Segments) == 0 {
		return
	}
	sb.WriteString("<h2>Where did the makespan go?</h2>\n")
	fmt.Fprintf(sb, "<p>Critical path ending at job %d: %.1f simulated seconds, %.1f%% attributed across %d segments.</p>\n",
		cp.TailJob, cp.Makespan.Seconds(), 100*frac(cp.Covered, cp.Makespan), len(cp.Segments))
	sb.WriteString("<table><tr><th>phase</th><th>time</th><th>share</th><th></th></tr>\n")
	for _, s := range cp.ByKind {
		barW := int(s.Frac * 240)
		fmt.Fprintf(sb, "<tr><td>%s</td><td class=\"num\">%.1f s</td><td class=\"num\">%.1f%%</td>"+
			"<td><svg width=\"240\" height=\"12\"><rect width=\"%d\" height=\"12\" fill=\"%s\"/></svg></td></tr>\n",
			html.EscapeString(s.Key), s.Total.Seconds(), 100*s.Frac, barW, sparkPalette[0])
	}
	sb.WriteString("</table>\n")
	if len(cp.ByWhere) > 0 {
		sb.WriteString("<table><tr><th>machine / device on the path</th><th>time</th><th>share</th></tr>\n")
		for i, s := range cp.ByWhere {
			if i >= 8 {
				break
			}
			name := s.Key
			if name == "" {
				name = "(unattributed)"
			}
			fmt.Fprintf(sb, "<tr><td><code>%s</code></td><td class=\"num\">%.1f s</td><td class=\"num\">%.1f%%</td></tr>\n",
				html.EscapeString(name), s.Total.Seconds(), 100*s.Frac)
		}
		sb.WriteString("</table>\n")
	}
}

// writeSchedulerCachePanel renders the matchmaking/allocation fast-path
// scorecard: how much work the autocluster grouping, the dirty-cycle
// short-circuit, the match cache and the knapsack round memo actually
// avoided in this run. Raw counts live in the Counters table below; this
// panel derives the headline ratios. Omitted entirely when none of the
// underlying series exist (e.g. a run that never built a condor pool).
func (o *Observer) writeSchedulerCachePanel(sb *strings.Builder) {
	if o.Reg == nil {
		return
	}
	cnt := func(id string) (int64, bool) {
		c, ok := o.Reg.counters[id]
		if !ok {
			return 0, false
		}
		return c.Value(), true
	}
	type row struct {
		name, detail string
		num, den     int64
		ok           bool
	}
	saved, okSaved := cnt("condor_autocluster_evals_saved_total")
	matches, _ := cnt("condor_matches_total")
	skips, okSkips := cnt("condor_negotiation_skips_total")
	negs, _ := cnt("condor_negotiations_total")
	hits, okHits := cnt("condor_match_cache_hits_total")
	misses, _ := cnt("condor_match_cache_misses_total")
	invs, _ := cnt("condor_match_cache_invalidations_total")
	mHits, okMemo := cnt("core_round_memo_hits_total")
	mMisses, _ := cnt("core_round_memo_misses_total")
	rows := []row{
		{"autocluster evals saved", "Match evaluations answered by a sibling job's verdict", saved, saved + matches, okSaved},
		{"dirty-cycle skips", "negotiation cycles short-circuited as provable no-ops", skips, skips + negs, okSkips},
		{"match-cache hit rate", "cache consultations answered without re-evaluating", hits, hits + misses + invs, okHits},
		{"round-memo hit rate", "knapsack rounds served from the per-cycle memo", mHits, mHits + mMisses, okMemo},
	}
	any := false
	for _, r := range rows {
		any = any || r.ok
	}
	if !any {
		return
	}
	sb.WriteString("<h2>Scheduler caches</h2>\n<table><tr><th>fast path</th><th>saved</th><th>of</th><th>rate</th><th></th></tr>\n")
	for _, r := range rows {
		if !r.ok {
			continue
		}
		rate := "&ndash;"
		if r.den > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*float64(r.num)/float64(r.den))
		}
		fmt.Fprintf(sb, "<tr><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td class=\"num\">%s</td><td>%s</td></tr>\n",
			html.EscapeString(r.name), r.num, r.den, rate, html.EscapeString(r.detail))
	}
	sb.WriteString("</table>\n")
}

func (o *Observer) writeCounterTable(sb *strings.Builder) {
	if o.Reg == nil || len(o.Reg.counters) == 0 {
		return
	}
	sb.WriteString("<h2>Counters</h2>\n<table><tr><th>series</th><th>value</th></tr>\n")
	for _, id := range sortedKeys(o.Reg.counters) {
		fmt.Fprintf(sb, "<tr><td><code>%s</code></td><td class=\"num\">%d</td></tr>\n",
			html.EscapeString(id), o.Reg.counters[id].Value())
	}
	sb.WriteString("</table>\n")
}

func (o *Observer) writeGaugeTable(sb *strings.Builder) {
	if o.Reg == nil || len(o.Reg.gauges) == 0 {
		return
	}
	sb.WriteString("<h2>Gauges (final)</h2>\n<table><tr><th>series</th><th>value</th></tr>\n")
	for _, id := range sortedKeys(o.Reg.gauges) {
		fmt.Fprintf(sb, "<tr><td><code>%s</code></td><td class=\"num\">%s</td></tr>\n",
			html.EscapeString(id), formatFloat(o.Reg.gauges[id].Value()))
	}
	sb.WriteString("</table>\n")
}

func (o *Observer) writeHistogramTable(sb *strings.Builder) {
	if o.Reg == nil || len(o.Reg.hists) == 0 {
		return
	}
	sb.WriteString("<h2>Histograms</h2>\n<table><tr><th>series</th><th>count</th><th>mean</th><th>buckets (&le;bound: n)</th></tr>\n")
	for _, id := range sortedKeys(o.Reg.hists) {
		h := o.Reg.hists[id]
		var bs strings.Builder
		for i, b := range h.bounds {
			if h.counts[i] == 0 {
				continue
			}
			fmt.Fprintf(&bs, "&le;%s: %d&ensp;", formatFloat(b), h.counts[i])
		}
		if h.counts[len(h.bounds)] > 0 {
			fmt.Fprintf(&bs, "+Inf: %d", h.counts[len(h.bounds)])
		}
		fmt.Fprintf(sb, "<tr><td><code>%s</code></td><td class=\"num\">%d</td><td class=\"num\">%.3g</td><td>%s</td></tr>\n",
			html.EscapeString(id), h.n, h.Mean(), bs.String())
	}
	sb.WriteString("</table>\n")
}

func (o *Observer) writeEventTable(sb *strings.Builder) {
	if o.Trace.Len() == 0 {
		return
	}
	counts := map[string]int{}
	for _, e := range o.Trace.Events() {
		counts[e.Layer+"/"+e.Kind]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sb.WriteString("<h2>Trace events</h2>\n<table><tr><th>layer/kind</th><th>count</th></tr>\n")
	for _, k := range keys {
		fmt.Fprintf(sb, "<tr><td><code>%s</code></td><td class=\"num\">%d</td></tr>\n",
			html.EscapeString(k), counts[k])
	}
	sb.WriteString("</table>\n")
}
