package obs

import (
	"fmt"
	"io"
	"sort"

	"phishare/internal/units"
)

// Critical-path analysis: where did the makespan go?
//
// Starting from the job whose end defines the makespan, the analyzer walks
// its last attempt backwards, decomposing it into phase segments (dispatch
// latency, admission wait, host compute, COSMIC offload queueing, device
// occupancy), then follows the job's queue wait back in time. A queue wait
// is blamed on its blocker: the job whose attempt on the matched machine
// finished latest before the match — the completion that freed the capacity
// this job was waiting for — and the walk continues through the blocker's
// own attempt, chaining across jobs until the cluster's start. This blocker
// heuristic is an approximation (negotiation batching means several
// completions can unblock one match), but it is deterministic, cheap, and
// attributes every segment of the timeline to a concrete phase on a
// concrete machine or device.

// Segment is one phase interval on the critical path.
type Segment struct {
	Job   int64
	Kind  string // "queue", "dispatch", "admit-wait", "host", "offload-queue", "offload"
	Where string // machine or device name; "" for unattributed queue time
	Start units.Tick
	End   units.Tick
}

// Duration is the segment's length.
func (s Segment) Duration() units.Tick { return s.End - s.Start }

// Share is one aggregation bucket of critical-path time.
type Share struct {
	Key   string
	Total units.Tick
	Frac  float64 // of the covered critical-path time
}

// CriticalPath is the analyzer's result.
type CriticalPath struct {
	Makespan units.Tick
	TailJob  int64 // the job whose end defines the makespan
	// Segments is the chain in chronological order. Segments cover the
	// timeline from the first chained job's match back at (or near) t=0 up
	// to the makespan; Covered is their summed duration (gaps appear where
	// no blocker could be identified).
	Segments []Segment
	Covered  units.Tick
	// ByKind and ByWhere aggregate segment time by phase kind and by
	// machine/device, sorted by descending share (ties by key).
	ByKind  []Share
	ByWhere []Share
}

// AnalyzeCriticalPath walks the spans of one run. Returns nil if no span
// completed.
func AnalyzeCriticalPath(spans []*Span) *CriticalPath {
	// Tail job: latest End, ties to the smallest job id (deterministic).
	var tail *Span
	for _, s := range spans {
		if s.End < 0 {
			continue
		}
		if tail == nil || s.End > tail.End || (s.End == tail.End && s.Job < tail.Job) {
			tail = s
		}
	}
	if tail == nil {
		return nil
	}
	cp := &CriticalPath{Makespan: tail.End, TailJob: tail.Job}

	// byMachine indexes closed attempts for blocker lookups.
	type done struct {
		span *Span
		att  *Attempt
	}
	byMachine := map[string][]done{}
	for _, s := range spans {
		for _, a := range s.Attempts {
			if !a.Open && a.Machine != "" && a.End >= 0 {
				byMachine[a.Machine] = append(byMachine[a.Machine], done{s, a})
			}
		}
	}

	var chain []Segment // built newest-first, reversed at the end
	visited := map[int64]bool{}
	cur, att := tail, tail.Attempts[len(tail.Attempts)-1]
	for cur != nil && !visited[cur.Job] {
		visited[cur.Job] = true
		chain = append(chain, attemptSegments(cur.Job, att)...)

		// Queue wait behind this attempt: from the job's submit (or its
		// previous attempt's crash) to the match.
		qStart := cur.Submit
		for i, a := range cur.Attempts {
			if a == att && i > 0 {
				qStart = cur.Attempts[i-1].End
				break
			}
		}
		if att.Match <= qStart {
			break // matched instantly; nothing upstream of this job
		}

		// Blocker: latest attempt on the same machine ending in
		// (qStart, match]; ties to the smallest job id.
		var blk *done
		for _, d := range byMachine[att.Machine] {
			if d.span == cur || d.att.End <= qStart || d.att.End > att.Match || visited[d.span.Job] {
				continue
			}
			if blk == nil || d.att.End > blk.att.End ||
				(d.att.End == blk.att.End && d.span.Job < blk.span.Job) {
				d := d
				blk = &d
			}
		}
		if blk == nil {
			chain = append(chain, Segment{
				Job: cur.Job, Kind: "queue", Where: att.Machine,
				Start: qStart, End: att.Match,
			})
			break
		}
		// The wait from the blocker's completion to this match is
		// negotiation/queue latency; before that, the blocker itself is the
		// critical work.
		chain = append(chain, Segment{
			Job: cur.Job, Kind: "queue", Where: att.Machine,
			Start: blk.att.End, End: att.Match,
		})
		cur, att = blk.span, blk.att
	}

	// Reverse into chronological order and aggregate.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	cp.Segments = chain
	kind := map[string]units.Tick{}
	where := map[string]units.Tick{}
	for _, s := range chain {
		if d := s.Duration(); d > 0 {
			cp.Covered += d
			kind[s.Kind] += d
			where[s.Where] += d
		}
	}
	cp.ByKind = shares(kind, cp.Covered)
	cp.ByWhere = shares(where, cp.Covered)
	return cp
}

// attemptSegments decomposes one attempt into segments, newest first.
func attemptSegments(jobID int64, a *Attempt) []Segment {
	end := a.End
	if end < 0 {
		return nil
	}
	// Build forward, then reverse.
	var fwd []Segment
	add := func(kind, where string, start, end units.Tick) {
		if end > start {
			fwd = append(fwd, Segment{Job: jobID, Kind: kind, Where: where, Start: start, End: end})
		}
	}
	exec := a.Execute
	if exec < 0 {
		exec = a.Match
	}
	add("dispatch", a.Machine, a.Match, exec)
	pos := exec
	if a.AdmitWait > 0 {
		add("admit-wait", a.Machine, pos, pos+a.AdmitWait)
		pos += a.AdmitWait
	}
	for i := range a.Offloads {
		o := &a.Offloads[i]
		oEnd := o.End
		if o.Open {
			oEnd = end
		}
		qStart := o.Start - o.QueueWait
		add("host", a.Machine, pos, qStart)
		add("offload-queue", o.Device, qStart, o.Start)
		add("offload", o.Device, o.Start, oEnd)
		if oEnd > pos {
			pos = oEnd
		}
	}
	add("host", a.Machine, pos, end)
	for i, j := 0, len(fwd)-1; i < j; i, j = i+1, j-1 {
		fwd[i], fwd[j] = fwd[j], fwd[i]
	}
	return fwd
}

// shares converts an aggregation map into a sorted Share list.
func shares(m map[string]units.Tick, total units.Tick) []Share {
	out := make([]Share, 0, len(m))
	for k, v := range m {
		sh := Share{Key: k, Total: v}
		if total > 0 {
			sh.Frac = float64(v) / float64(total)
		}
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// WriteText renders the attribution and chain as a human-readable report.
func (cp *CriticalPath) WriteText(w io.Writer) error {
	if cp == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "critical path: makespan %.1f s, tail job %d, covered %.1f s (%.1f%%)\n",
		cp.Makespan.Seconds(), cp.TailJob, cp.Covered.Seconds(),
		100*frac(cp.Covered, cp.Makespan)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "where did the makespan go?\n"); err != nil {
		return err
	}
	for _, s := range cp.ByKind {
		if _, err := fmt.Fprintf(w, "  %5.1f%%  %-14s %.1f s\n", 100*s.Frac, s.Key, s.Total.Seconds()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "busiest machines/devices on the path:\n"); err != nil {
		return err
	}
	for i, s := range cp.ByWhere {
		if i >= 8 {
			break
		}
		name := s.Key
		if name == "" {
			name = "(unattributed)"
		}
		if _, err := fmt.Fprintf(w, "  %5.1f%%  %-22s %.1f s\n", 100*s.Frac, name, s.Total.Seconds()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "chain (%d segments, chronological):\n", len(cp.Segments)); err != nil {
		return err
	}
	for _, s := range cp.Segments {
		where := s.Where
		if where != "" {
			where = " @ " + where
		}
		if _, err := fmt.Fprintf(w, "  [%10.1f .. %10.1f s] job %-6d %-14s%s\n",
			s.Start.Seconds(), s.End.Seconds(), s.Job, s.Kind, where); err != nil {
			return err
		}
	}
	return nil
}

func frac(a, b units.Tick) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
