package obs

import (
	"io"

	"phishare/internal/sim"
	"phishare/internal/units"
)

// Layer names used by the stack's emitters.
const (
	LayerCondor = "condor"
	LayerCore   = "core"
	LayerCosmic = "cosmic"
	LayerPhi    = "phi"
	LayerFaults = "faults"
)

// DefaultSampleInterval is the time-series sampling period used when an
// Observer does not override it: 5 simulated seconds, fine enough to
// resolve negotiation cycles (default 20 s) and offload lifetimes.
const DefaultSampleInterval = 5 * units.Second

// Observer bundles one run's observability state: the metrics registry, the
// structured event trace, and (once bound to an engine) the time-series
// sampler. Components accept an Observer via SetObserver and resolve their
// instrument handles once; a nil *Observer hands out nil instruments and
// drops events, so the disabled cost at every site is a nil check.
type Observer struct {
	Reg   *Registry
	Trace *Trace
	// SampleInterval is the sampler period; zero takes
	// DefaultSampleInterval.
	SampleInterval units.Tick
	sampler        *Sampler
	// laneShards are the per-lane event buffers behind lane-affine Views
	// (see view.go), indexed by lane ID so the per-event drain hook avoids
	// a map lookup. An Observer reused across a sweep of runs re-uses the
	// shard at a colliding lane ID, which is safe: the event buffer drains
	// completely every walk and field blocks are append-only with
	// capacity-clipped hand-offs, so runs can never overwrite each other's
	// data. Always drained between epochs.
	laneShards []*laneShard
}

// New returns an Observer with a fresh registry and trace.
func New() *Observer {
	return &Observer{Reg: NewRegistry(), Trace: NewTrace()}
}

// Counter resolves a counter series. Safe on a nil observer (returns a nil
// no-op counter).
func (o *Observer) Counter(name string, labels ...string) *Counter {
	if o == nil {
		return nil
	}
	return o.Reg.Counter(name, labels...)
}

// Gauge resolves a gauge series. Safe on a nil observer.
func (o *Observer) Gauge(name string, labels ...string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Reg.Gauge(name, labels...)
}

// Histogram resolves a histogram series. Safe on a nil observer.
func (o *Observer) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Reg.Histogram(name, bounds, labels...)
}

// Emit records one trace event. Safe on a nil observer, but hot paths must
// guard the call with `if x.obs != nil` so field construction is skipped
// when disabled.
func (o *Observer) Emit(at units.Tick, layer, kind string, fields ...Field) {
	if o == nil {
		return
	}
	o.Trace.Emit(at, layer, kind, fields...)
}

// BindSampler creates the run's sampler on eng at SampleInterval. Returns
// nil on a nil observer. Rebinding to the same engine returns the existing
// sampler; a different engine means a new run, so the sampler is replaced
// (an Observer reused across a sweep — e.g. Footprint — keeps only the last
// run's series, while metrics and events accumulate). The caller registers
// probes and then calls Start on the returned sampler.
func (o *Observer) BindSampler(eng *sim.Engine) *Sampler {
	if o == nil {
		return nil
	}
	if o.sampler == nil || o.sampler.eng != eng {
		iv := o.SampleInterval
		if iv <= 0 {
			iv = DefaultSampleInterval
		}
		o.sampler = NewSampler(eng, iv)
	}
	return o.sampler
}

// Sampler returns the bound sampler (nil before BindSampler or on a nil
// observer).
func (o *Observer) Sampler() *Sampler {
	if o == nil {
		return nil
	}
	return o.sampler
}

// WriteMetrics writes the Prometheus text-format snapshot.
func (o *Observer) WriteMetrics(w io.Writer) error {
	if o == nil {
		return nil
	}
	return o.Reg.WritePrometheus(w)
}

// WriteEvents writes the JSONL event stream.
func (o *Observer) WriteEvents(w io.Writer) error {
	if o == nil {
		return nil
	}
	return o.Trace.WriteJSONL(w)
}

// WriteSeriesCSV writes the sampled time series as CSV (nothing if no
// sampler was bound).
func (o *Observer) WriteSeriesCSV(w io.Writer) error {
	if o == nil {
		return nil
	}
	return o.sampler.WriteCSV(w)
}
