package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"phishare/internal/sim"
	"phishare/internal/units"
)

// Sampler records registered probe functions at a fixed simulated-time
// interval, producing aligned time series for CSV export and dashboard
// sparklines.
//
// Determinism: sampler ticks are ordinary engine events, and probes are
// read-only, so attaching a sampler cannot change simulated outcomes. Ticks
// consume insertion-sequence numbers, but the (time, seq) event order is
// total and seq is monotonic in scheduling order, so the relative order of
// every pre-existing event pair is preserved. Each tick reschedules itself
// only while other events remain queued (Engine.Pending > 0 after the tick
// pops); once the simulation's own queue drains, the sampler stops and
// Engine.Run terminates exactly as it would have without it.
type Sampler struct {
	eng      *sim.Engine
	interval units.Tick
	names    []string
	fns      []func() float64
	times    []units.Tick
	rows     [][]float64
	started  bool
}

// NewSampler builds a sampler that ticks every interval on eng. Probes are
// added with Probe; nothing is scheduled until Start.
func NewSampler(eng *sim.Engine, interval units.Tick) *Sampler {
	if eng == nil {
		panic("obs: NewSampler requires an engine")
	}
	if interval <= 0 {
		panic(fmt.Sprintf("obs: sample interval must be positive, got %v", interval))
	}
	return &Sampler{eng: eng, interval: interval}
}

// Probe registers a named read-only series source. Must be called before
// Start. Safe on a nil sampler.
func (s *Sampler) Probe(name string, fn func() float64) {
	if s == nil {
		return
	}
	if s.started {
		panic("obs: Probe after Start")
	}
	s.names = append(s.names, name)
	s.fns = append(s.fns, fn)
}

// Start records an initial sample at the current sim time and schedules the
// periodic tick. A nil sampler, or one with no probes, does nothing.
func (s *Sampler) Start() {
	if s == nil || len(s.fns) == 0 || s.started {
		return
	}
	s.started = true
	s.record()
	s.eng.After(s.interval, s.tick)
}

func (s *Sampler) tick() {
	s.record()
	// Reschedule only while the simulation itself still has work queued;
	// when this tick was the last event, the run is over.
	if s.eng.Pending() > 0 {
		s.eng.After(s.interval, s.tick)
	}
}

func (s *Sampler) record() {
	row := make([]float64, len(s.fns))
	for i, fn := range s.fns {
		row[i] = fn()
	}
	s.times = append(s.times, s.eng.Now())
	s.rows = append(s.rows, row)
}

// Names returns the registered series names in registration order.
func (s *Sampler) Names() []string {
	if s == nil {
		return nil
	}
	return s.names
}

// Times returns the sample timestamps.
func (s *Sampler) Times() []units.Tick {
	if s == nil {
		return nil
	}
	return s.times
}

// Samples returns the number of recorded sample rows.
func (s *Sampler) Samples() int {
	if s == nil {
		return 0
	}
	return len(s.rows)
}

// Series returns the recorded values for the named probe (nil if unknown).
func (s *Sampler) Series(name string) []float64 {
	if s == nil {
		return nil
	}
	for i, n := range s.names {
		if n == name {
			vals := make([]float64, len(s.rows))
			for j, row := range s.rows {
				vals[j] = row[i]
			}
			return vals
		}
	}
	return nil
}

// WriteCSV writes the sampled series as one wide CSV: a time_ms column
// followed by one column per probe in registration order. A nil sampler
// writes nothing.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	var sb strings.Builder
	sb.WriteString("time_ms")
	for _, n := range s.names {
		sb.WriteByte(',')
		sb.WriteString(csvQuote(n))
	}
	sb.WriteByte('\n')
	for i, t := range s.times {
		sb.WriteString(strconv.FormatInt(int64(t), 10))
		for _, v := range s.rows[i] {
			sb.WriteByte(',')
			sb.WriteString(formatFloat(v))
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// csvQuote quotes a header cell when it contains CSV metacharacters —
// series names like `phi_busy_cores{device="mic0@node1"}` contain commas
// and quotes.
func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
