package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"phishare/internal/sim"
	"phishare/internal/units"
)

func TestNilSafety(t *testing.T) {
	// Every instrument, and the observer itself, must accept calls as nil.
	var o *Observer
	o.Counter("x").Inc()
	o.Gauge("y").Set(3)
	o.Histogram("z", []float64{1}).Observe(2)
	o.Emit(0, "condor", "noop")
	if o.BindSampler(sim.New()) != nil {
		t.Fatal("nil observer must bind a nil sampler")
	}
	var smp *Sampler
	smp.Probe("p", func() float64 { return 0 })
	smp.Start()
	var buf bytes.Buffer
	for _, err := range []error{o.WriteMetrics(&buf), o.WriteEvents(&buf), o.WriteSeriesCSV(&buf), o.WriteDashboard(&buf, "t")} {
		if err != nil {
			t.Fatalf("nil writer errored: %v", err)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("nil observer wrote %d bytes", buf.Len())
	}

	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram stats")
	}
	var r *Registry
	if r.Counter("a") != nil || r.Gauge("b") != nil || r.Histogram("c", nil) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	var tr *Trace
	tr.Emit(0, "l", "k")
	if tr.Len() != 0 || tr.Count("l", "k") != 0 {
		t.Fatal("nil trace recorded")
	}
	var v *View
	v.Emit(0, "l", "k", F("a", 1))
	if v.Observer() != nil {
		t.Fatal("nil view must report a nil observer")
	}
	if o.View(nil) != nil {
		t.Fatal("nil observer must hand out a nil view")
	}
}

func TestDisabledInstrumentsAllocateNothing(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var v *View
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(2)
		// A disabled component holds a nil View; the emit site's guard
		// (`if x.obs != nil`) is what keeps the fields from being built,
		// but even an unguarded nil-View Emit with pre-boxed values must
		// not allocate.
		v.Emit(0, LayerPhi, "noop")
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocated %.1f per op", allocs)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "policy", "MCCK")
	c.Inc()
	c.Add(4)
	if got := r.CounterValue("jobs_total", "policy", "MCCK"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("jobs_total", "policy", "MCCK") != c {
		t.Fatal("same series must return same counter")
	}
	if r.Counter("jobs_total", "policy", "MC") == c {
		t.Fatal("different labels must return a fresh series")
	}

	g := r.Gauge("queue_depth")
	g.Set(7)
	g.Add(-2)
	if got := r.GaugeValue("queue_depth"); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}

	h := r.Histogram("wait_seconds", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 12, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if h.Sum() != 116.5 {
		t.Fatalf("hist sum = %v", h.Sum())
	}
	// Buckets: <=1 gets {0.5, 1}, <=5 gets {3}, <=10 none, +Inf {12, 100}.
	want := []int64{2, 1, 0, 2}
	for i, w := range want {
		if h.counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.counts[i], w)
		}
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("registering family under two types must panic")
		}
	}()
	r.Gauge("m")
}

func TestSeriesName(t *testing.T) {
	if got := SeriesName("up"); got != "up" {
		t.Fatalf("unlabelled = %q", got)
	}
	got := SeriesName("phi_busy_cores", "device", `mic"0\x`)
	want := `phi_busy_cores{device="mic\"0\\x"}`
	if got != want {
		t.Fatalf("labelled = %q, want %q", got, want)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "cache", "match").Add(3)
	r.Gauge("depth").Set(2.5)
	h := r.Histogram("wait_seconds", []float64{1, 10}, "device", "mic0")
	h.Observe(0.5)
	h.Observe(4)
	h.Observe(40)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	// Counters, then gauges, then histograms; series sorted within each.
	want := `# TYPE hits_total counter
hits_total{cache="match"} 3
# TYPE depth gauge
depth 2.5
# TYPE wait_seconds histogram
wait_seconds_bucket{device="mic0",le="1"} 1
wait_seconds_bucket{device="mic0",le="10"} 2
wait_seconds_bucket{device="mic0",le="+Inf"} 3
wait_seconds_sum{device="mic0"} 44.5
wait_seconds_count{device="mic0"} 3
`
	if got != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", got, want)
	}
}

func TestTraceJSONL(t *testing.T) {
	tr := NewTrace()
	tr.Emit(1500, LayerCondor, "match", F("job", 7), F("machine", `slot"1`))
	tr.Emit(2000, LayerCore, "knapsack",
		F("picked_jobs", []int{1, 2}), F("fastpath", true), F("value", int64(9)),
		F("mem_mb", units.MB(512)), F("threads", units.Threads(8)), F("speed", 0.75))
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	want0 := `{"time_ms":1500,"layer":"condor","kind":"match","job":7,"machine":"slot\"1"}`
	if lines[0] != want0 {
		t.Fatalf("line 0 = %s, want %s", lines[0], want0)
	}
	// Every line must be independently parseable JSON.
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, ln)
		}
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatal(err)
	}
	if m["fastpath"] != true || m["speed"] != 0.75 || m["mem_mb"] != float64(512) {
		t.Fatalf("typed fields mangled: %v", m)
	}
	if tr.Count(LayerCondor, "match") != 1 || tr.Count(LayerCore, "") != 1 {
		t.Fatal("Count mismatch")
	}
	if tr.Events()[0].Field("job") != 7 {
		t.Fatal("Field lookup failed")
	}
}

func TestSamplerDeterministicTicksAndTermination(t *testing.T) {
	eng := sim.New()
	var busy float64
	// A fake workload: busy 0→3→1→0 over 30 s.
	eng.At(0, func() { busy = 3 })
	eng.At(12*units.Second, func() { busy = 1 })
	eng.At(30*units.Second, func() { busy = 0 })

	s := NewSampler(eng, 5*units.Second)
	s.Probe("busy", func() float64 { return busy })
	s.Start()
	end := eng.Run() // must terminate: sampler stops once the queue drains

	if end < 30*units.Second {
		t.Fatalf("run ended at %v, before workload", end)
	}
	// Samples at 0,5,...,30 plus one final tick already queued when the
	// 30 s event fired; the sampler must not extend the run indefinitely.
	if s.Samples() < 7 {
		t.Fatalf("too few samples: %d", s.Samples())
	}
	if end > 40*units.Second {
		t.Fatalf("sampler kept engine alive until %v", end)
	}
	// The initial sample fires before the engine runs (busy still 0); the
	// 5 s tick sees 3, the 15 s tick sees 1, the final tick sees 0.
	got := s.Series("busy")
	if got[0] != 0 || got[1] != 3 || got[3] != 1 || got[len(got)-1] != 0 {
		t.Fatalf("series = %v", got)
	}
	times := s.Times()
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] != 5*units.Second {
			t.Fatalf("irregular tick at %d: %v", i, times)
		}
	}
}

func TestSamplerCSV(t *testing.T) {
	eng := sim.New()
	eng.At(6*units.Second, func() {})
	s := NewSampler(eng, 5*units.Second)
	s.Probe("a", func() float64 { return 1.5 })
	s.Probe(SeriesName("b", "device", "mic0"), func() float64 { return 2 })
	s.Start()
	eng.Run()

	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(&buf)
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("sampler CSV is not parseable: %v", err)
	}
	if recs[0][0] != "time_ms" || recs[0][1] != "a" || recs[0][2] != `b{device="mic0"}` {
		t.Fatalf("header = %v", recs[0])
	}
	if recs[1][0] != "0" || recs[1][1] != "1.5" || recs[1][2] != "2" {
		t.Fatalf("row 1 = %v", recs[1])
	}
	if len(recs) < 2 {
		t.Fatalf("no data rows")
	}
}

func TestDashboard(t *testing.T) {
	o := New()
	o.Counter("condor_matches_total").Add(12)
	o.Counter("condor_autocluster_evals_saved_total").Add(36)
	o.Counter("core_round_memo_hits_total").Add(9)
	o.Counter("core_round_memo_misses_total").Add(3)
	o.Gauge("cosmic_offload_queue_depth", "device", "mic0").Set(4)
	o.Histogram("phi_speed", []float64{0.5, 1}).Observe(0.8)
	o.Emit(100, LayerPhi, "oom_kill", F("job", 3))
	eng := sim.New()
	eng.At(11*units.Second, func() {})
	o.SampleInterval = 5 * units.Second
	smp := o.BindSampler(eng)
	smp.Probe("busy", func() float64 { return 2 })
	smp.Start()
	eng.Run()

	var buf bytes.Buffer
	if err := o.WriteDashboard(&buf, "test run"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "<title>test run</title>",
		"condor_matches_total", `cosmic_offload_queue_depth{device=&#34;mic0&#34;}`,
		"phi_speed", "phi/oom_kill", "<svg", "polyline",
		// The scheduler-caches scorecard derives its ratios from the raw
		// counters: 36 saved of 48 candidate evals, 9 memo hits of 12.
		"Scheduler caches", "autocluster evals saved", "round-memo hit rate", "75.0%",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	// Deterministic bytes: rendering twice must be identical.
	var buf2 bytes.Buffer
	if err := o.WriteDashboard(&buf2, "test run"); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("dashboard output is not deterministic")
	}
}

func TestObserverSampleIntervalDefault(t *testing.T) {
	o := New()
	eng := sim.New()
	smp := o.BindSampler(eng)
	if smp.interval != DefaultSampleInterval {
		t.Fatalf("interval = %v", smp.interval)
	}
	if o.BindSampler(eng) != smp {
		t.Fatal("BindSampler must be idempotent for the same engine")
	}
	// A different engine is a different run: the sampler is replaced so the
	// observer can be reused across a sweep (e.g. experiments.Footprint).
	if o.BindSampler(sim.New()) == smp {
		t.Fatal("BindSampler must replace the sampler for a new engine")
	}
}
