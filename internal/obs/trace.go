package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"phishare/internal/units"
)

// Field is one key/value attribute of a trace event. Fields keep their
// emission order (they are not sorted), so an event serializes exactly as
// the emitting site wrote it.
type Field struct {
	Key string
	Val any
}

// F builds a Field.
func F(key string, val any) Field { return Field{Key: key, Val: val} }

// Event is one structured trace event on the simulated timeline.
type Event struct {
	At     units.Tick // simulated time, ms
	Layer  string     // emitting layer: condor, core, cosmic, phi
	Kind   string     // event kind within the layer, e.g. "negotiation_start"
	Fields []Field
}

// Field returns the value of the named field (nil when absent).
func (e Event) Field(key string) any {
	for _, f := range e.Fields {
		if f.Key == key {
			return f.Val
		}
	}
	return nil
}

// AppendJSON appends the event as one JSON object. Keys time_ms, layer and
// kind come first, then the fields in emission order.
func (e Event) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"time_ms":`...)
	buf = strconv.AppendInt(buf, int64(e.At), 10)
	buf = append(buf, `,"layer":`...)
	buf = appendJSONString(buf, e.Layer)
	buf = append(buf, `,"kind":`...)
	buf = appendJSONString(buf, e.Kind)
	for _, f := range e.Fields {
		buf = append(buf, ',')
		buf = appendJSONString(buf, f.Key)
		buf = append(buf, ':')
		buf = appendJSONValue(buf, f.Val)
	}
	return append(buf, '}')
}

func appendJSONString(buf []byte, s string) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// json.Marshal on a string never fails; keep the exporter total anyway.
		return append(buf, `"?"`...)
	}
	return append(buf, b...)
}

func appendJSONValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, "null"...)
	case bool:
		return strconv.AppendBool(buf, x)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case float64:
		return append(buf, formatFloat(x)...)
	case string:
		return appendJSONString(buf, x)
	case units.Tick:
		return strconv.AppendInt(buf, int64(x), 10)
	case units.MB:
		return strconv.AppendInt(buf, int64(x), 10)
	case units.Threads:
		return strconv.AppendInt(buf, int64(x), 10)
	case []int:
		buf = append(buf, '[')
		for i, n := range x {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendInt(buf, int64(n), 10)
		}
		return append(buf, ']')
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return appendJSONString(buf, fmt.Sprint(v))
		}
		return append(buf, b...)
	}
}

// EventSink consumes trace events the moment they reach canonical order.
// Consumers registered on a Trace see every event exactly once, in the
// bit-identical order a serial run would emit them (the View/shard machinery
// guarantees this for parallel runs). Streaming writers (StreamSink) and the
// span builder (SpanBuilder) are EventSinks.
//
// The Event's Fields slice is owned by the trace: in streaming mode it is a
// reused scratch buffer valid only for the duration of Consume. Sinks that
// retain field data must copy the values out (both shipped sinks do).
type EventSink interface {
	Consume(Event)
}

// Trace accumulates structured events in canonical emission order. A nil
// *Trace drops every Emit. With AddConsumer, events are additionally handed
// to streaming consumers as they arrive; with SetStreaming(true) the trace
// stops retaining events after consumers have seen them, bounding resident
// memory for arbitrarily long runs (emit-and-drop).
type Trace struct {
	// chunks holds the retained events in fixed-capacity blocks. Chunking
	// beats one growing slice on hot paths: appends never copy earlier
	// events, and no 2×-growth garbage accrues behind the live array —
	// a full end-to-end run emits thousands of events, and the abandoned
	// growth copies were the single largest GC burden of instrumentation.
	chunks [][]Event
	n      int
	// flat caches the flattened view handed out by Events(); invalidated
	// on Emit, rebuilt lazily (post-run readers pay one copy, the hot
	// emit path pays nothing).
	flat []Event
	// farena holds retained events' Field data in fixed-capacity blocks.
	// Emit copies the caller's variadic fields here instead of keeping the
	// argument slice, so the slice never escapes at the emitting site —
	// the per-event []Field allocation at every instrumented hot path
	// becomes a stack frame, and only the amortized arena blocks hit the
	// heap.
	farena [][]Field
	// scratch is the streaming-mode field buffer, reused across events
	// (nothing is retained, so consumers see a slice valid only for the
	// duration of Consume — both shipped sinks read it synchronously).
	scratch   []Field
	consumers []EventSink
	streaming bool
	emitted   int64
}

// traceChunk is the per-block event capacity: big enough to amortize the
// block allocations, small enough that short traces stay cheap.
// fieldChunk sizes the field-arena blocks the same way.
const (
	traceChunk = 1024
	fieldChunk = 4096
)

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// AddConsumer registers a streaming consumer. Safe on a nil trace (no-op).
func (t *Trace) AddConsumer(c EventSink) {
	if t == nil {
		return
	}
	t.consumers = append(t.consumers, c)
}

// SetStreaming switches the trace to emit-and-drop: events still reach every
// registered consumer in canonical order, but are not retained, so a
// million-event run holds O(1) trace memory. WriteJSONL then writes nothing;
// attach a StreamSink to keep the JSONL stream.
func (t *Trace) SetStreaming(on bool) {
	if t == nil {
		return
	}
	t.streaming = on
}

// Streaming reports whether the trace is in emit-and-drop mode.
func (t *Trace) Streaming() bool { return t != nil && t.streaming }

// Emit appends one event. Safe on a nil trace, but callers on hot paths
// should guard with a nil check so the variadic fields are never built
// when tracing is off.
func (t *Trace) Emit(at units.Tick, layer, kind string, fields ...Field) {
	if t == nil {
		return
	}
	t.emitted++
	// Copy the fields out of the argument slice before anything retains
	// them: the caller's variadic slice then provably does not escape, so
	// every guarded emit site builds it on the stack.
	var fs []Field
	if t.streaming {
		t.scratch = append(t.scratch[:0], fields...)
		fs = t.scratch
	} else {
		fs = t.retainFields(fields)
	}
	t.ingest(Event{At: at, Layer: layer, Kind: kind, Fields: fs})
}

// EmitOwned ingests an event whose Fields the caller permanently cedes to
// the trace. Lane shards hand their block-backed events over this way,
// skipping the defensive copy Emit must make for borrowed argument slices.
func (t *Trace) EmitOwned(e Event) {
	if t == nil {
		return
	}
	t.emitted++
	t.ingest(e)
}

func (t *Trace) ingest(e Event) {
	for _, c := range t.consumers {
		c.Consume(e)
	}
	if t.streaming {
		return
	}
	if len(t.chunks) == 0 || len(t.chunks[len(t.chunks)-1]) == traceChunk {
		t.chunks = append(t.chunks, make([]Event, 0, traceChunk))
	}
	last := len(t.chunks) - 1
	t.chunks[last] = append(t.chunks[last], e)
	t.n++
	t.flat = nil
}

// retainFields copies fields into the arena and returns the arena-backed
// slice, capacity-clipped so a later event's append can never overlap it.
func (t *Trace) retainFields(fields []Field) []Field {
	if len(fields) == 0 {
		return nil
	}
	last := len(t.farena) - 1
	if last < 0 || cap(t.farena[last])-len(t.farena[last]) < len(fields) {
		c := fieldChunk
		if len(fields) > c {
			c = len(fields)
		}
		t.farena = append(t.farena, make([]Field, 0, c))
		last++
	}
	blk := append(t.farena[last], fields...)
	t.farena[last] = blk
	start := len(blk) - len(fields)
	return blk[start:len(blk):len(blk)]
}

// Emitted returns the total number of events emitted, including events
// dropped after consumption in streaming mode (0 for nil).
func (t *Trace) Emitted() int64 {
	if t == nil {
		return 0
	}
	return t.emitted
}

// Len returns the number of recorded events (0 for nil).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Events returns the recorded events in emission order (shared slice;
// callers must not mutate). The flattened view is built on first use after
// the last Emit and cached, so repeated post-run readers share one copy.
func (t *Trace) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	if t.flat == nil {
		t.flat = make([]Event, 0, t.n)
		for _, c := range t.chunks {
			t.flat = append(t.flat, c...)
		}
	}
	return t.flat
}

// Count returns how many events match layer (and kind, unless empty).
func (t *Trace) Count(layer, kind string) int {
	if t == nil {
		return 0
	}
	n := 0
	for _, c := range t.chunks {
		for _, e := range c {
			if e.Layer == layer && (kind == "" || e.Kind == kind) {
				n++
			}
		}
	}
	return n
}

// WriteJSONL streams the trace as one JSON object per line. A nil trace
// writes nothing.
func (t *Trace) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	buf := make([]byte, 0, 256)
	for _, c := range t.chunks {
		for _, e := range c {
			buf = e.AppendJSON(buf[:0])
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}
