package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"phishare/internal/units"
)

// Field is one key/value attribute of a trace event. Fields keep their
// emission order (they are not sorted), so an event serializes exactly as
// the emitting site wrote it.
type Field struct {
	Key string
	Val any
}

// F builds a Field.
func F(key string, val any) Field { return Field{Key: key, Val: val} }

// Event is one structured trace event on the simulated timeline.
type Event struct {
	At     units.Tick // simulated time, ms
	Layer  string     // emitting layer: condor, core, cosmic, phi
	Kind   string     // event kind within the layer, e.g. "negotiation_start"
	Fields []Field
}

// Field returns the value of the named field (nil when absent).
func (e Event) Field(key string) any {
	for _, f := range e.Fields {
		if f.Key == key {
			return f.Val
		}
	}
	return nil
}

// AppendJSON appends the event as one JSON object. Keys time_ms, layer and
// kind come first, then the fields in emission order.
func (e Event) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"time_ms":`...)
	buf = strconv.AppendInt(buf, int64(e.At), 10)
	buf = append(buf, `,"layer":`...)
	buf = appendJSONString(buf, e.Layer)
	buf = append(buf, `,"kind":`...)
	buf = appendJSONString(buf, e.Kind)
	for _, f := range e.Fields {
		buf = append(buf, ',')
		buf = appendJSONString(buf, f.Key)
		buf = append(buf, ':')
		buf = appendJSONValue(buf, f.Val)
	}
	return append(buf, '}')
}

func appendJSONString(buf []byte, s string) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// json.Marshal on a string never fails; keep the exporter total anyway.
		return append(buf, `"?"`...)
	}
	return append(buf, b...)
}

func appendJSONValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, "null"...)
	case bool:
		return strconv.AppendBool(buf, x)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case float64:
		return append(buf, formatFloat(x)...)
	case string:
		return appendJSONString(buf, x)
	case units.Tick:
		return strconv.AppendInt(buf, int64(x), 10)
	case units.MB:
		return strconv.AppendInt(buf, int64(x), 10)
	case units.Threads:
		return strconv.AppendInt(buf, int64(x), 10)
	case []int:
		buf = append(buf, '[')
		for i, n := range x {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendInt(buf, int64(n), 10)
		}
		return append(buf, ']')
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return appendJSONString(buf, fmt.Sprint(v))
		}
		return append(buf, b...)
	}
}

// Trace accumulates structured events in emission order (which, on a
// single-goroutine sim engine, is causal simulated-time order). A nil
// *Trace drops every Emit.
type Trace struct {
	events []Event
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Emit appends one event. Safe on a nil trace, but callers on hot paths
// should guard with a nil check so the variadic fields are never built
// when tracing is off.
func (t *Trace) Emit(at units.Tick, layer, kind string, fields ...Field) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{At: at, Layer: layer, Kind: kind, Fields: fields})
}

// Len returns the number of recorded events (0 for nil).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded events (shared slice; callers must not
// mutate).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Count returns how many events match layer (and kind, unless empty).
func (t *Trace) Count(layer, kind string) int {
	if t == nil {
		return 0
	}
	n := 0
	for _, e := range t.events {
		if e.Layer == layer && (kind == "" || e.Kind == kind) {
			n++
		}
	}
	return n
}

// WriteJSONL streams the trace as one JSON object per line. A nil trace
// writes nothing.
func (t *Trace) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	buf := make([]byte, 0, 256)
	for _, e := range t.events {
		buf = e.AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
