// Package runner executes a job's phase profile against a coprocessor: the
// role of Condor's starter process plus the host-side application itself.
// Host phases simply consume time (the paper assumes no host contention,
// §V-A); offload phases go through the device unit — COSMIC-managed or raw.
package runner

import (
	"phishare/internal/cluster"
	"phishare/internal/job"
	"phishare/internal/phi"
	"phishare/internal/sim"
	"phishare/internal/units"
)

// Outcome reports how a job ended.
type Outcome int

const (
	// Completed: all phases ran.
	Completed Outcome = iota
	// Crashed: the device or COSMIC killed the job's process.
	Crashed
)

func (o Outcome) String() string {
	if o == Completed {
		return "completed"
	}
	return "crashed"
}

// Result describes a finished job execution.
type Result struct {
	Outcome Outcome
	// KillReason is meaningful only for Crashed outcomes.
	KillReason phi.KillReason
}

// Run executes j on unit and calls done exactly once when the job completes
// or crashes. The job's process is created when the device admits it:
// immediately under raw MPSS, or once its declared memory fits under
// COSMIC's node-level admission (during which the job occupies its Condor
// slot but makes no progress — the §V cost of memory-oblivious placement).
//
// Everything the runner schedules — host phases, DMA continuations — rides
// the unit's node lane; done may fire from lane context, so a caller whose
// completion handling touches cross-node state must defer it with
// unit.Lane.Global.
func Run(unit *cluster.DeviceUnit, j *job.Job, done func(Result)) {
	e := &exec{eng: unit.Lane, unit: unit, j: j, done: done}
	unit.Admit(j, func(p *phi.Process) {
		e.proc = p
		e.proc.OnKill = e.onKill
		if !e.proc.Alive() {
			// Killed synchronously during attach (container/OOM); onKill
			// will fire on the deferred notification.
			return
		}
		e.step()
	})
}

type exec struct {
	eng  *sim.Lane
	unit *cluster.DeviceUnit
	j    *job.Job
	done func(Result)

	proc     *phi.Process
	idx      int
	finished bool
}

func (e *exec) step() {
	if e.finished || !e.proc.Alive() {
		return
	}
	if e.idx >= len(e.j.Phases) {
		e.finish(Result{Outcome: Completed})
		return
	}
	p := e.j.Phases[e.idx]
	e.idx++
	switch p.Kind {
	case job.HostPhase:
		e.eng.After(p.Duration, e.step)
	case job.OffloadPhase:
		// The offload pragma's full sequence: DMA the in() buffers across
		// the node's PCIe link, run the kernel, DMA the out() buffers back.
		// Zero-size transfers short-circuit inside the link.
		e.transfer(p.TransferIn, func() {
			e.unit.Offload(e.proc, p.Threads, p.Duration, func(o phi.OffloadOutcome) {
				if o == phi.OffloadCompleted {
					e.transfer(p.TransferOut, e.step)
				}
				// Aborted offloads are followed by the process's kill
				// notification, which terminates the run via onKill.
			})
		})
	default:
		panic("runner: invalid phase kind in " + e.j.Name)
	}
}

// transfer moves size MB over the node link and continues with next,
// unless the job has meanwhile finished or been killed.
func (e *exec) transfer(size units.MB, next func()) {
	if size == 0 || e.unit.Link == nil {
		next()
		return
	}
	e.unit.Link.Transfer(size, func() {
		if e.finished || !e.proc.Alive() {
			return
		}
		next()
	})
}

func (e *exec) onKill(reason phi.KillReason) {
	if e.finished {
		return
	}
	e.finished = true
	e.done(Result{Outcome: Crashed, KillReason: reason})
}

func (e *exec) finish(r Result) {
	if e.finished {
		return
	}
	e.finished = true
	e.unit.Detach(e.proc)
	e.done(r)
}
