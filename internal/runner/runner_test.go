package runner

import (
	"testing"

	"phishare/internal/cluster"
	"phishare/internal/job"
	"phishare/internal/phi"
	"phishare/internal/sim"
	"phishare/internal/units"
)

func mkCluster(t *testing.T, cosmic bool) (*sim.Engine, *cluster.DeviceUnit) {
	t.Helper()
	eng := sim.New()
	c := cluster.New(eng, cluster.Config{Nodes: 1, UseCosmic: cosmic})
	return eng, c.Units[0]
}

func profileJob(id int, mem, actual units.MB, threads units.Threads) *job.Job {
	return &job.Job{
		ID: id, Name: "p", Workload: "test",
		Mem: mem, Threads: threads, ActualPeakMem: actual,
		Phases: []job.Phase{
			{Kind: job.HostPhase, Duration: 1000},
			{Kind: job.OffloadPhase, Duration: 2000, Threads: threads},
			{Kind: job.HostPhase, Duration: 500},
			{Kind: job.OffloadPhase, Duration: 1500, Threads: threads},
			{Kind: job.HostPhase, Duration: 500},
		},
	}
}

func TestRunCompletesSequentially(t *testing.T) {
	eng, u := mkCluster(t, true)
	j := profileJob(1, 500, 450, 120)
	var res Result
	var end units.Tick
	Run(u, j, func(r Result) { res = r; end = eng.Now() })
	eng.Run()
	if res.Outcome != Completed {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if end != j.SequentialTime() {
		t.Errorf("ended at %v, want sequential time %v", end, j.SequentialTime())
	}
	if u.Device.ProcessCount() != 0 {
		t.Error("process not detached after completion")
	}
}

func TestTwoMaximalJobsInterleave(t *testing.T) {
	// The Fig. 2 scenario: two jobs whose offloads each need all 240
	// threads share a device under COSMIC. Offloads serialize, but host
	// gaps overlap, so the concurrent makespan beats the sequential sum.
	eng, u := mkCluster(t, true)
	mk := func(id int) *job.Job {
		return &job.Job{
			ID: id, Name: "max", Workload: "test",
			Mem: 1000, Threads: 240, ActualPeakMem: 900,
			Phases: []job.Phase{
				{Kind: job.HostPhase, Duration: 2000},
				{Kind: job.OffloadPhase, Duration: 3000, Threads: 240},
				{Kind: job.HostPhase, Duration: 2000},
				{Kind: job.OffloadPhase, Duration: 3000, Threads: 240},
				{Kind: job.HostPhase, Duration: 1000},
			},
		}
	}
	j1, j2 := mk(1), mk(2)
	doneCount := 0
	var last units.Tick
	for _, j := range []*job.Job{j1, j2} {
		j := j
		Run(u, j, func(r Result) {
			if r.Outcome != Completed {
				t.Errorf("%s crashed", j.Name)
			}
			doneCount++
			last = eng.Now()
		})
	}
	eng.Run()
	if doneCount != 2 {
		t.Fatalf("completed %d jobs", doneCount)
	}
	seqSum := j1.SequentialTime() + j2.SequentialTime()
	if last >= seqSum {
		t.Errorf("concurrent makespan %v not better than sequential sum %v", last, seqSum)
	}
	if u.Device.RunningThreads() != 0 {
		t.Error("threads leaked")
	}
}

func TestTwoPartialJobsOverlapBetter(t *testing.T) {
	// Fig. 3: two 120-thread jobs overlap their offloads fully; the
	// concurrent makespan approaches a single job's sequential time.
	eng, u := mkCluster(t, true)
	mk := func(id int) *job.Job {
		return &job.Job{
			ID: id, Name: "half", Workload: "test",
			Mem: 1000, Threads: 120, ActualPeakMem: 900,
			Phases: []job.Phase{
				{Kind: job.HostPhase, Duration: 1000},
				{Kind: job.OffloadPhase, Duration: 3000, Threads: 120},
				{Kind: job.HostPhase, Duration: 1000},
				{Kind: job.OffloadPhase, Duration: 3000, Threads: 120},
			},
		}
	}
	j1, j2 := mk(1), mk(2)
	var last units.Tick
	for _, j := range []*job.Job{j1, j2} {
		Run(u, j, func(r Result) { last = eng.Now() })
	}
	eng.Run()
	if last != j1.SequentialTime() {
		t.Errorf("concurrent makespan %v, want %v (full overlap)", last, j1.SequentialTime())
	}
}

func TestCrashedJobReportsKillReason(t *testing.T) {
	eng, u := mkCluster(t, true)
	j := profileJob(1, 500, 800, 120) // misestimates memory
	var res Result
	got := 0
	Run(u, j, func(r Result) { res = r; got++ })
	eng.Run()
	if got != 1 {
		t.Fatalf("done called %d times", got)
	}
	if res.Outcome != Crashed || res.KillReason != phi.KillContainer {
		t.Errorf("result %+v, want container crash", res)
	}
}

func TestCrashDuringHostPhaseRaw(t *testing.T) {
	// Raw mode: job A sits in a host phase while B's commit OOMs the card;
	// if A is the victim it must report a crash exactly once.
	eng, u := mkCluster(t, false)
	big := func(id int) *job.Job {
		return &job.Job{
			ID: id, Name: "big", Workload: "test",
			Mem: 5000, Threads: 60, ActualPeakMem: 5000,
			Phases: []job.Phase{
				{Kind: job.HostPhase, Duration: 4000},
				{Kind: job.OffloadPhase, Duration: 2000, Threads: 60},
			},
		}
	}
	counts := map[int]int{}
	crashes := 0
	for i := 0; i < 3; i++ {
		i := i
		Run(u, big(i), func(r Result) {
			counts[i]++
			if r.Outcome == Crashed {
				crashes++
			}
		})
	}
	eng.Run()
	for id, n := range counts {
		if n != 1 {
			t.Errorf("job %d reported %d times", id, n)
		}
	}
	// 3 x 5 GB on an 8 GB card must kill at least one process eventually.
	if crashes == 0 {
		t.Error("no crashes despite 15 GB committed on an 8 GB card")
	}
	if len(counts) != 3 {
		t.Errorf("only %d jobs reported", len(counts))
	}
}

func TestRunSingleHostPhaseJob(t *testing.T) {
	eng, u := mkCluster(t, true)
	j := &job.Job{
		ID: 1, Name: "h", Workload: "t", Mem: 100, Threads: 60, ActualPeakMem: 90,
		Phases: []job.Phase{{Kind: job.HostPhase, Duration: 700}},
	}
	var end units.Tick
	Run(u, j, func(Result) { end = eng.Now() })
	eng.Run()
	if end != 700 {
		t.Errorf("host-only job ended at %v", end)
	}
}

func TestManyJobsAllComplete(t *testing.T) {
	eng, u := mkCluster(t, true)
	done := 0
	for i := 0; i < 12; i++ {
		Run(u, profileJob(i, 400, 350, 60), func(r Result) {
			if r.Outcome != Completed {
				t.Errorf("job crashed: %+v", r)
			}
			done++
		})
	}
	eng.Run()
	if done != 12 {
		t.Errorf("%d/12 jobs completed", done)
	}
	if u.Device.ProcessCount() != 0 || u.Device.RunningThreads() != 0 {
		t.Error("device not clean after all jobs")
	}
}

func TestOffloadTransfersExtendRuntime(t *testing.T) {
	// An offload with 600 MB in and 600 MB out on a 6 GB/s link adds
	// 200 ms to the phase sequence.
	eng, u := mkCluster(t, true)
	j := &job.Job{
		ID: 1, Name: "xfer", Workload: "test",
		Mem: 1000, Threads: 120, ActualPeakMem: 900,
		Phases: []job.Phase{
			{Kind: job.OffloadPhase, Duration: 1000, Threads: 120,
				TransferIn: 600, TransferOut: 600},
		},
	}
	var end units.Tick
	Run(u, j, func(Result) { end = eng.Now() })
	eng.Run()
	if end != 1200 {
		t.Errorf("job with transfers ended at %v, want 1200", end)
	}
}

func TestConcurrentTransfersContend(t *testing.T) {
	// Two jobs transferring 600 MB in simultaneously share the link:
	// each takes 200 ms before its kernel starts; kernels (120 threads)
	// then overlap. Total 200 + 1000 = 1200.
	eng, u := mkCluster(t, true)
	mk := func(id int) *job.Job {
		return &job.Job{
			ID: id, Name: "xfer", Workload: "test",
			Mem: 1000, Threads: 120, ActualPeakMem: 900,
			Phases: []job.Phase{
				{Kind: job.OffloadPhase, Duration: 1000, Threads: 120, TransferIn: 600},
			},
		}
	}
	var last units.Tick
	for i := 0; i < 2; i++ {
		Run(u, mk(i), func(Result) {
			if eng.Now() > last {
				last = eng.Now()
			}
		})
	}
	eng.Run()
	if last != 1200 {
		t.Errorf("contended jobs finished at %v, want 1200", last)
	}
}

func TestTransferVictimDoesNotContinue(t *testing.T) {
	// A job that dies at offload admission (memory container) after its
	// in-transfer completes must not start its kernel — and must report
	// exactly one crash.
	eng, u := mkCluster(t, true)
	j := &job.Job{
		ID: 1, Name: "doomed", Workload: "test",
		Mem: 500, Threads: 60, ActualPeakMem: 800, // underestimate
		Phases: []job.Phase{
			{Kind: job.OffloadPhase, Duration: 1000, Threads: 60, TransferIn: 600},
		},
	}
	var res Result
	count := 0
	Run(u, j, func(r Result) { res = r; count++ })
	eng.Run()
	if count != 1 || res.Outcome != Crashed || res.KillReason != phi.KillContainer {
		t.Errorf("result %+v (count %d)", res, count)
	}
	if u.Device.Stats().OffloadsStarted != 0 {
		t.Error("kernel started despite container kill at admission")
	}
	if u.Link.Stats().Transfers != 1 {
		t.Errorf("in-transfer count %d, want 1 (DMA happens before the kill)", u.Link.Stats().Transfers)
	}
}

func TestRunKilledAtAdmissionReportsOnce(t *testing.T) {
	// A job whose declared memory exceeds the device entirely is rejected
	// by COSMIC's container creation; the runner must report one crash.
	eng, u := mkCluster(t, true)
	j := &job.Job{
		ID: 1, Name: "huge", Workload: "test",
		Mem: 9999, Threads: 60, ActualPeakMem: 9000,
		Phases: []job.Phase{{Kind: job.OffloadPhase, Duration: 100, Threads: 60}},
	}
	count := 0
	var res Result
	Run(u, j, func(r Result) { res = r; count++ })
	eng.Run()
	if count != 1 || res.Outcome != Crashed {
		t.Errorf("result %+v count %d", res, count)
	}
}

func TestRunBlockedAdmissionEventuallyRuns(t *testing.T) {
	// Two 5 GB jobs: the second waits at admission until the first exits,
	// then runs to completion.
	eng, u := mkCluster(t, true)
	mk := func(id int) *job.Job {
		return &job.Job{
			ID: id, Name: "big", Workload: "test",
			Mem: 5000, Threads: 60, ActualPeakMem: 4500,
			Phases: []job.Phase{{Kind: job.OffloadPhase, Duration: 1000, Threads: 60}},
		}
	}
	var ends []units.Tick
	for i := 0; i < 2; i++ {
		Run(u, mk(i), func(r Result) {
			if r.Outcome != Completed {
				t.Errorf("job %d crashed", i)
			}
			ends = append(ends, eng.Now())
		})
	}
	eng.Run()
	if len(ends) != 2 {
		t.Fatalf("completions %d", len(ends))
	}
	if ends[0] != 1000 || ends[1] != 2000 {
		t.Errorf("ends %v, want [1000 2000] (admission serialized)", ends)
	}
}

func TestRunOutcomeStrings(t *testing.T) {
	if Completed.String() != "completed" || Crashed.String() != "crashed" {
		t.Error("outcome strings wrong")
	}
}
