// Package condor simulates the HTCondor subset the paper's system is built
// on (§II-D, §IV-D1): a central manager (collector + negotiator), machine
// and job ClassAds, periodic FIFO matchmaking, claims, and shadow/starter
// dispatch latency.
//
// Scheduling policy is pluggable. The three cluster software configurations
// of the evaluation map onto policies:
//
//   - MC   (MPSS+Condor): exclusive device allocation (package scheduler)
//   - MCC  (+COSMIC): random packing subject to declared memory (scheduler)
//   - MCCK (+knapsack cluster scheduler): the paper's contribution
//     (package core), integrating exactly as described — it edits pending
//     jobs' Requirements via condor_qedit-style rewrites and waits for the
//     next negotiation cycle to take effect.
package condor

import (
	"fmt"
	"sort"
	"strings"

	"phishare/internal/classad"
	"phishare/internal/cluster"
	"phishare/internal/job"
	"phishare/internal/metrics"
	"phishare/internal/obs"
	"phishare/internal/runner"
	"phishare/internal/sim"
	"phishare/internal/units"
)

// Well-known ClassAd attribute names used across the system. Machines
// advertise Phi resources (obtained from micinfo in the real system); jobs
// advertise their requests.
const (
	AttrName               = "Name"
	AttrPhiDevices         = "PhiDevices"
	AttrPhiFreeDevices     = "PhiFreeDevices"
	AttrPhiMemory          = "PhiMemory"
	AttrPhiFreeMemory      = "PhiFreeMemory"
	AttrPhiThreads         = "PhiThreads"
	AttrPhiResidentThreads = "PhiResidentThreads"
	AttrResidentJobs       = "ResidentJobs"
	AttrJobID              = "JobId"
	AttrRequestPhiMemory   = "RequestPhiMemory"
	AttrRequestPhiThreads  = "RequestPhiThreads"
	AttrRequestPhiDevices  = "RequestPhiDevices"
	AttrHostSlots          = "HostSlots"
	AttrJobPrio            = "JobPrio"
)

// JobState tracks a queued job through its lifecycle.
type JobState int

const (
	// Idle: pending in the schedd queue, waiting to be matched.
	Idle JobState = iota
	// Dispatched: matched and claimed; in shadow/starter transfer or
	// running on its machine.
	Dispatched
	// Completed: finished successfully.
	Completed
	// Failed: crashed more times than the retry budget allows.
	Failed
)

func (s JobState) String() string {
	switch s {
	case Idle:
		return "idle"
	case Dispatched:
		return "dispatched"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// QueuedJob is a job in the schedd queue together with its ClassAd and
// lifecycle bookkeeping.
type QueuedJob struct {
	Job *job.Job
	Ad  *classad.Ad

	// Priority orders matchmaking: higher first, FIFO within a level
	// (Condor's JobPrio). Zero by default.
	Priority int
	// User is the submitting user, for fair-share scheduling (Condor's
	// user priorities). Empty means the anonymous default user.
	User string

	State      JobState
	SubmitTime units.Tick
	StartTime  units.Tick // first dispatch
	EndTime    units.Tick
	Crashes    int
	Machine    *Machine // current/last machine
	started    bool
	// runStart is when the job's *current* execution began. StartTime keeps
	// first-start semantics for wait/response metrics; fair-share usage must
	// accrue per run, or a crashed-and-resubmitted job would charge its first
	// run's interval (plus the idle re-queue gap) to its user twice.
	runStart units.Tick
}

// Machine is one advertised slot: a device unit plus its ClassAd and the
// collector-side resource bookkeeping (free declared memory, resident
// declared threads).
type Machine struct {
	Name string
	Unit *cluster.DeviceUnit
	Ad   *classad.Ad

	FreeMem         units.MB
	ResidentThreads units.Threads
	Resident        []*QueuedJob
	MaxResident     int
	// HostSlots is the machine's resident-job capacity (from Config).
	HostSlots int
	// Offline marks a lost node: the negotiator skips it entirely (its
	// startd stopped advertising). Set and cleared by the fault layer; a
	// machine going offline does not by itself evict residents — the device
	// failure that accompanies a node loss does that.
	Offline bool
}

// AtCapacity reports whether every host slot is claimed.
func (m *Machine) AtCapacity() bool { return len(m.Resident) >= m.HostSlots }

// FreeSlots is the number of unclaimed host slots.
func (m *Machine) FreeSlots() int {
	n := m.HostSlots - len(m.Resident)
	if n < 0 {
		return 0
	}
	return n
}

// updateAd refreshes the advertised resource levels (the periodic startd →
// collector ClassAd update, applied eagerly here).
func (m *Machine) updateAd() {
	free := 0
	if len(m.Resident) == 0 {
		free = 1
	}
	m.Ad.SetInt(AttrPhiFreeDevices, int64(free))
	m.Ad.SetInt(AttrPhiFreeMemory, int64(m.FreeMem))
	m.Ad.SetInt(AttrPhiResidentThreads, int64(m.ResidentThreads))
	m.Ad.SetInt(AttrResidentJobs, int64(len(m.Resident)))
}

// ExternalPolicy is implemented by policies that run as an external module
// outside the Condor negotiator (the paper's transparent add-on, §IV-D1):
// they react to collector updates, compute placements, and push qedits back
// before matchmaking can proceed. ExtraDelay is that reaction time; it is
// added to every negotiation trigger and is the integration overhead the
// paper observes ("having to wait for Condor's scheduling cycle", Fig. 8).
type ExternalPolicy interface {
	ExtraDelay() units.Tick
}

// Policy is the pluggable cluster-level scheduling behaviour.
type Policy interface {
	// Name identifies the configuration (e.g. "MC", "MCC", "MCCK").
	Name() string
	// MachineRequirements is the Requirements expression installed on every
	// machine ad — the node-side admission guard. Return "true" for an
	// oversubscription-agnostic cluster (the §III strawman).
	MachineRequirements() string
	// PrepareJobAd populates a job's ad (including its initial
	// Requirements) at submission time.
	PrepareJobAd(q *QueuedJob)
	// PreNegotiation runs at the start of each negotiation cycle, before
	// matchmaking; MCCK computes its knapsack plan here and applies it as
	// one batch of qedits.
	PreNegotiation(p *Pool)
	// Select chooses among machines whose ads matched the job; return -1
	// to leave the job idle this cycle. candidates is non-empty.
	Select(p *Pool, q *QueuedJob, candidates []*Machine) int
	// PostNegotiation runs after matchmaking, for policies that want to
	// observe the cycle's outcome.
	PostNegotiation(p *Pool)
}

// Config tunes the Condor mechanics.
type Config struct {
	// NegotiationCycle is the periodic matchmaking interval. HTCondor's
	// NEGOTIATOR_INTERVAL defaults to 60 s, but negotiation is also
	// triggered by queue activity; with completion-triggered cycles
	// (NotifyDelay) the period mostly bounds staleness. Default 10 s.
	NegotiationCycle units.Tick
	// NotifyDelay is the lag between a completion/submission and the
	// negotiation it triggers (collector update propagation). Default 2 s.
	NotifyDelay units.Tick
	// DispatchLatency models the shadow/starter handshake and input file
	// transfer between match and job start. Default 1 s.
	DispatchLatency units.Tick
	// MaxRetries resubmits a crashed job up to this many times before
	// marking it Failed. Default 0 (crashes are terminal).
	MaxRetries int
	// StallLimit aborts the run after this many consecutive empty
	// negotiations with an idle cluster, failing unmatchable jobs instead
	// of looping forever. Default 5.
	StallLimit int
	// ClaimReuse lets a machine whose job just finished immediately start
	// the first pending job that matches it, without waiting for the next
	// negotiation cycle — HTCondor's claim leasing. It removes most of the
	// per-job scheduling latency (ablation A6). Off by default: the
	// paper-faithful configuration pays the negotiation path on every job.
	ClaimReuse bool
	// FairShare enables user-level fair-share matchmaking: each cycle,
	// pending jobs are scanned in ascending order of their user's
	// accumulated device time, so a user who just submitted five jobs is
	// not starved behind another's backlog of hundreds (Condor's user
	// priorities; cf. the fairness-centric schedulers in the paper's
	// related work). Off by default — the paper's experiments are
	// single-user.
	FairShare bool
	// HostSlots caps concurrently resident jobs per machine: every job's
	// host portion occupies a Condor slot on the node's Xeon processors
	// (§IV-D1: "each host processor on a compute node is represented as a
	// slot... only one job can run on one slot at a time"). The paper's
	// servers have two 8-core host Xeons; an offload job keeps roughly a
	// socket busy, so the default is 4 slots per device. Default 4.
	HostSlots int
	// DisableMatchCache forces every matchmaking pair through the full
	// classad.Match expression evaluation instead of the ad-version match
	// cache. The cached and uncached negotiators are semantically identical
	// (the cache keys on both ads' mutation counters, so a stale entry is
	// impossible); the flag exists so the determinism regression can prove
	// that by running the full stack both ways.
	DisableMatchCache bool
}

func (c Config) withDefaults() Config {
	if c.NegotiationCycle == 0 {
		c.NegotiationCycle = 10 * units.Second
	}
	if c.NotifyDelay == 0 {
		c.NotifyDelay = 2 * units.Second
	}
	if c.DispatchLatency == 0 {
		c.DispatchLatency = 1 * units.Second
	}
	if c.StallLimit == 0 {
		c.StallLimit = 5
	}
	if c.HostSlots == 0 {
		c.HostSlots = 4
	}
	return c
}

// Stats counts pool activity.
type Stats struct {
	Negotiations int
	Matches      int
	Qedits       int
	Resubmits    int
	Stalled      int // jobs failed by the stall breaker
	ClaimReuses  int // dispatches that skipped negotiation (Config.ClaimReuse)
	// NegotiationRestarts counts cycles aborted and rescheduled by an
	// injected negotiator fault (NegotiationFaults.CycleRestart).
	NegotiationRestarts int
}

// NegotiationFaults lets the fault layer (internal/faults) perturb the
// negotiator: TriggerDelay returns extra latency added to each negotiation
// trigger (collector update jitter), and CycleRestart is consulted at the
// top of each cycle — returning ok=true aborts the cycle and reschedules it
// after the returned delay (a negotiator crash/restart). A nil Pool.NegFaults
// disables both, costing one nil check per trigger and cycle.
type NegotiationFaults interface {
	TriggerDelay() units.Tick
	CycleRestart() (units.Tick, bool)
}

// Pool is the Condor pool: central manager plus the machine inventory.
type Pool struct {
	eng    *sim.Engine
	clu    *cluster.Cluster
	cfg    Config
	policy Policy

	machines []*Machine
	jobs     []*QueuedJob
	pending  []*QueuedJob
	inFlight int // dispatched but not yet terminal

	negGen       uint64
	negScheduled bool
	nextNegAt    units.Tick
	emptyCycles  int
	makespan     units.Tick
	stats        Stats

	// matchCache memoizes classad.Match per (machine, job) pair, keyed by
	// both ads' mutation counters. The negotiator's O(pending × machines)
	// scan re-evaluates only pairs whose ads changed since the last cycle:
	// a machine ad changes on claim/release (updateAd), a job ad on qedit
	// or resubmission, so a long idle backlog against a stable machine
	// costs two map probes per cycle instead of two expression-tree walks.
	// Entries are evicted when a job reaches a terminal state.
	matchCache map[matchKey]matchVal
	// candScratch is the candidates slice reused across every pending job
	// of every cycle (it was re-grown from nil per job before).
	candScratch []*Machine

	// usage accumulates per-user device time (claim duration) for
	// fair-share ordering.
	usage map[string]units.Tick

	// OnTerminal, if set, is invoked whenever a job reaches Completed or
	// Failed — the hook external tooling (e.g. the resource estimator
	// extension) uses to observe outcomes as they happen.
	OnTerminal func(*QueuedJob)
	// NegFaults, if set, injects negotiator perturbations (see
	// NegotiationFaults). Nil in every non-chaos run.
	NegFaults NegotiationFaults
	// Log, if set, records job lifecycle events (HTCondor's user log).
	Log *EventLog

	// Observability (SetObserver). Instrument handles are resolved once at
	// wiring time; every hot-path site pays a nil check when disabled.
	obs           *obs.Observer
	obsCacheHit   *obs.Counter
	obsCacheMiss  *obs.Counter
	obsCacheInv   *obs.Counter
	obsNeg        *obs.Counter
	obsMatch      *obs.Counter
	obsQedit      *obs.Counter
	obsCycleGap   *obs.Histogram
	lastNegAt     units.Tick
	hasNegotiated bool
}

// matchKey identifies one matchmaking pair for the match cache.
type matchKey struct {
	m *Machine
	q *QueuedJob
}

// matchVal is a memoized Match result, valid while both ads' versions hold.
type matchVal struct {
	mv, jv uint64
	ok     bool
}

// match is the cached equivalent of classad.Match(m.Ad, q.Ad).
func (p *Pool) match(m *Machine, q *QueuedJob) bool {
	if p.cfg.DisableMatchCache {
		// No cache, no cache counters: the observability test asserts every
		// cache series stays zero in this configuration.
		return classad.Match(m.Ad, q.Ad)
	}
	k := matchKey{m, q}
	mv, jv := m.Ad.Version(), q.Ad.Version()
	if v, hit := p.matchCache[k]; hit {
		if v.mv == mv && v.jv == jv {
			p.obsCacheHit.Inc()
			return v.ok
		}
		p.obsCacheInv.Inc() // present but stale: an ad mutated since caching
	} else {
		p.obsCacheMiss.Inc()
	}
	ok := classad.Match(m.Ad, q.Ad)
	p.matchCache[k] = matchVal{mv: mv, jv: jv, ok: ok}
	return ok
}

// forgetJob evicts a terminal job's match-cache entries; the pair can never
// be consulted again, so the entries would only leak.
func (p *Pool) forgetJob(q *QueuedJob) {
	if p.cfg.DisableMatchCache {
		return
	}
	for _, m := range p.machines {
		delete(p.matchCache, matchKey{m, q})
	}
}

// NewPool builds a pool over the cluster with the given policy.
func NewPool(eng *sim.Engine, clu *cluster.Cluster, policy Policy, cfg Config) *Pool {
	p := &Pool{eng: eng, clu: clu, cfg: cfg.withDefaults(), policy: policy,
		usage:      map[string]units.Tick{},
		matchCache: map[matchKey]matchVal{}}
	for _, unit := range clu.Units {
		m := &Machine{
			Name:      unit.SlotName,
			Unit:      unit,
			Ad:        classad.NewAd(),
			FreeMem:   unit.Device.Config().Memory,
			HostSlots: p.cfg.HostSlots,
		}
		m.Ad.SetStr(AttrName, m.Name)
		m.Ad.SetInt(AttrPhiDevices, 1)
		m.Ad.SetInt(AttrHostSlots, int64(m.HostSlots))
		m.Ad.SetInt(AttrPhiMemory, int64(unit.Device.Config().Memory))
		m.Ad.SetInt(AttrPhiThreads, int64(unit.Device.Config().HWThreads()))
		m.Ad.MustSetExpr(classad.RequirementsAttr, policy.MachineRequirements())
		m.updateAd()
		p.machines = append(p.machines, m)
	}
	return p
}

// SetObserver attaches the observability layer and resolves the pool's
// instrument handles. Call before Submit; a nil observer leaves the pool
// uninstrumented (all handles nil, all emissions skipped).
func (p *Pool) SetObserver(o *obs.Observer) {
	p.obs = o
	p.obsCacheHit = o.Counter("condor_match_cache_hits_total")
	p.obsCacheMiss = o.Counter("condor_match_cache_misses_total")
	p.obsCacheInv = o.Counter("condor_match_cache_invalidations_total")
	p.obsNeg = o.Counter("condor_negotiations_total")
	p.obsMatch = o.Counter("condor_matches_total")
	p.obsQedit = o.Counter("condor_qedits_total")
	p.obsCycleGap = o.Histogram("condor_negotiation_gap_seconds",
		[]float64{1, 2, 5, 10, 20, 30, 60, 120})
}

// Machines exposes the machine inventory (fixed order).
func (p *Pool) Machines() []*Machine { return p.machines }

// Pending returns the idle jobs in FIFO order. The slice is shared; policies
// must not reorder it.
func (p *Pool) Pending() []*QueuedJob { return p.pending }

// Jobs returns every submitted job.
func (p *Pool) Jobs() []*QueuedJob { return p.jobs }

// Stats returns activity counters.
func (p *Pool) Stats() Stats { return p.stats }

// Policy returns the installed scheduling policy.
func (p *Pool) Policy() Policy { return p.policy }

// Makespan is the completion time of the last terminal job.
func (p *Pool) Makespan() units.Tick { return p.makespan }

// Config returns the (defaulted) pool configuration.
func (p *Pool) Config() Config { return p.cfg }

// Now returns the current simulated time (for policies and samplers that
// hold a pool but not its engine).
func (p *Pool) Now() units.Tick { return p.eng.Now() }

// InFlight returns the number of dispatched, not-yet-terminal jobs.
func (p *Pool) InFlight() int { return p.inFlight }

// Submit enqueues jobs at the current time (priority 0) and triggers
// negotiation.
func (p *Pool) Submit(jobs []*job.Job) { p.SubmitWithPriority(jobs, 0) }

// SubmitWithPriority enqueues jobs with the given matchmaking priority
// (Condor's JobPrio: higher is served first; FIFO within a level).
func (p *Pool) SubmitWithPriority(jobs []*job.Job, priority int) {
	p.SubmitAs("", jobs, priority)
}

// SubmitAs enqueues jobs on behalf of user, for fair-share accounting.
func (p *Pool) SubmitAs(user string, jobs []*job.Job, priority int) {
	for _, j := range jobs {
		q := &QueuedJob{Job: j, Ad: classad.NewAd(), SubmitTime: p.eng.Now(),
			Priority: priority, User: user}
		q.Ad.SetInt(AttrJobID, int64(j.ID))
		q.Ad.SetInt(AttrRequestPhiMemory, int64(j.Mem))
		q.Ad.SetInt(AttrRequestPhiThreads, int64(j.Threads))
		q.Ad.SetInt(AttrRequestPhiDevices, 1)
		q.Ad.SetInt(AttrJobPrio, int64(priority))
		p.policy.PrepareJobAd(q)
		p.jobs = append(p.jobs, q)
		p.insertPending(q)
		p.record(EventSubmit, q, "")
	}
	p.requestNegotiation(p.cfg.NotifyDelay)
}

// insertPending keeps the pending queue ordered by (priority desc, arrival)
// so the FIFO scan of negotiate respects priorities.
func (p *Pool) insertPending(q *QueuedJob) {
	i := len(p.pending)
	for i > 0 && p.pending[i-1].Priority < q.Priority {
		i--
	}
	p.pending = append(p.pending, nil)
	copy(p.pending[i+1:], p.pending[i:])
	p.pending[i] = q
}

// Qedit rewrites a pending job's Requirements, the condor_qedit integration
// point the knapsack scheduler uses to pin jobs to slots (§IV-D1).
func (p *Pool) Qedit(q *QueuedJob, requirements string) {
	if err := q.Ad.SetExpr(classad.RequirementsAttr, requirements); err != nil {
		panic(fmt.Sprintf("condor: qedit of job %d: %v", q.Job.ID, err))
	}
	p.stats.Qedits++
	p.obsQedit.Inc()
	if p.obs != nil {
		p.obs.Emit(p.eng.Now(), obs.LayerCondor, "qedit",
			obs.F("job", q.Job.ID), obs.F("requirements", requirements))
	}
}

// requestNegotiation schedules a negotiation after delay, keeping only the
// earliest outstanding request. External policies add their reaction time.
func (p *Pool) requestNegotiation(delay units.Tick) {
	if ext, ok := p.policy.(ExternalPolicy); ok {
		delay += ext.ExtraDelay()
	}
	if p.NegFaults != nil {
		delay += p.NegFaults.TriggerDelay()
	}
	at := p.eng.Now() + delay
	if p.negScheduled && p.nextNegAt <= at {
		return
	}
	p.negGen++
	gen := p.negGen
	p.negScheduled = true
	p.nextNegAt = at
	p.eng.At(at, func() {
		if gen != p.negGen {
			return // superseded by an earlier request
		}
		p.negScheduled = false
		p.negotiate()
	})
}

// negotiate runs one matchmaking cycle: policy pre-hook, FIFO scan of
// pending jobs against machine ads, claims and dispatches, policy post-hook.
func (p *Pool) negotiate() {
	if p.NegFaults != nil {
		if delay, restart := p.NegFaults.CycleRestart(); restart {
			// Negotiator died at cycle start: nothing was matched, the cycle
			// re-runs after the restart delay.
			p.stats.NegotiationRestarts++
			if p.obs != nil {
				p.obs.Emit(p.eng.Now(), obs.LayerCondor, "negotiation_restart",
					obs.F("delay_ms", delay))
			}
			p.requestNegotiation(delay)
			return
		}
	}
	p.stats.Negotiations++
	p.obsNeg.Inc()
	if p.obs != nil {
		now := p.eng.Now()
		if p.hasNegotiated {
			p.obsCycleGap.Observe((now - p.lastNegAt).Seconds())
		}
		p.lastNegAt = now
		p.hasNegotiated = true
		p.obs.Emit(now, obs.LayerCondor, "negotiation_start",
			obs.F("cycle", p.stats.Negotiations),
			obs.F("pending", len(p.pending)),
			obs.F("in_flight", p.inFlight))
	}
	p.policy.PreNegotiation(p)

	if p.cfg.FairShare {
		// Least-served users first; stable, so priority and arrival order
		// survive within each user.
		sort.SliceStable(p.pending, func(i, j int) bool {
			return p.usage[p.pending[i].User] < p.usage[p.pending[j].User]
		})
	}

	matched := 0
	still := p.pending[:0] // in-place filter: write index trails read index
	if cap(p.candScratch) < len(p.machines) {
		p.candScratch = make([]*Machine, 0, len(p.machines))
	}
	for _, q := range p.pending {
		candidates := p.candScratch[:0]
		for _, m := range p.machines {
			// A machine with no free host slot cannot accept any job,
			// whatever the ads say: the starter has nowhere to run. An
			// offline machine's startd is not advertising at all.
			if m.Offline || m.AtCapacity() {
				continue
			}
			if p.match(m, q) {
				candidates = append(candidates, m)
			}
		}
		idx := -1
		if len(candidates) > 0 {
			idx = p.policy.Select(p, q, candidates)
		}
		if idx < 0 || idx >= len(candidates) {
			still = append(still, q)
			continue
		}
		p.claim(q, candidates[idx])
		matched++
	}
	for i := len(still); i < len(p.pending); i++ {
		p.pending[i] = nil // drop matched-job references past the new length
	}
	p.pending = still
	p.stats.Matches += matched

	p.policy.PostNegotiation(p)

	if p.obs != nil {
		p.obs.Emit(p.eng.Now(), obs.LayerCondor, "negotiation_end",
			obs.F("cycle", p.stats.Negotiations),
			obs.F("matched", matched),
			obs.F("pending", len(p.pending)))
	}

	if matched == 0 && p.inFlight == 0 && !p.anyOffline() {
		// An empty cycle while a node is down is not evidence of an
		// unmatchable job — the repair may make it matchable again — so it
		// does not count toward the stall limit.
		p.emptyCycles++
	} else {
		p.emptyCycles = 0
	}
	if p.emptyCycles >= p.cfg.StallLimit {
		// Nothing can ever match the rest (e.g. a job larger than any
		// device): fail them rather than negotiate forever.
		for _, q := range p.pending {
			q.State = Failed
			q.EndTime = p.eng.Now()
			p.noteEnd(q.EndTime)
			p.stats.Stalled++
			p.record(EventStallAbort, q, "")
			if p.obs != nil {
				p.obs.Emit(p.eng.Now(), obs.LayerCondor, "stall_abort",
					obs.F("job", q.Job.ID))
			}
			p.forgetJob(q)
			if p.OnTerminal != nil {
				p.OnTerminal(q)
			}
		}
		p.pending = nil
		return
	}
	if len(p.pending) > 0 {
		p.requestNegotiation(p.cfg.NegotiationCycle)
	}
}

// anyOffline reports whether any machine is currently marked Offline.
func (p *Pool) anyOffline() bool {
	for _, m := range p.machines {
		if m.Offline {
			return true
		}
	}
	return false
}

// PokeNegotiation requests a negotiation cycle after the standard notify
// delay. The fault layer calls it when a repaired node comes back, so idle
// jobs do not wait out the full periodic cycle to rediscover it.
func (p *Pool) PokeNegotiation() {
	if len(p.pending) > 0 {
		p.requestNegotiation(p.cfg.NotifyDelay)
	}
}

// claim reserves the machine's advertised resources and dispatches the job
// through the shadow/starter path.
func (p *Pool) claim(q *QueuedJob, m *Machine) {
	q.State = Dispatched
	q.Machine = m
	m.FreeMem -= q.Job.Mem
	m.ResidentThreads += q.Job.Threads
	m.Resident = append(m.Resident, q)
	if len(m.Resident) > m.MaxResident {
		m.MaxResident = len(m.Resident)
	}
	m.updateAd()
	p.inFlight++
	p.record(EventMatch, q, m.Name)
	p.obsMatch.Inc()
	if p.obs != nil {
		p.obs.Emit(p.eng.Now(), obs.LayerCondor, "match",
			obs.F("job", q.Job.ID), obs.F("machine", m.Name),
			obs.F("free_mem_mb", m.FreeMem),
			obs.F("resident", len(m.Resident)))
	}

	p.eng.After(p.cfg.DispatchLatency, func() {
		if !q.started {
			q.started = true
			q.StartTime = p.eng.Now()
		}
		q.runStart = p.eng.Now()
		p.record(EventExecute, q, m.Name)
		runner.Run(p.eng, m.Unit, q.Job, func(r runner.Result) {
			p.jobDone(q, m, r)
		})
	})
}

// jobDone releases the claim and either retires or resubmits the job.
func (p *Pool) jobDone(q *QueuedJob, m *Machine, r runner.Result) {
	p.usage[q.User] += p.eng.Now() - q.runStart
	m.FreeMem += q.Job.Mem
	m.ResidentThreads -= q.Job.Threads
	for i, x := range m.Resident {
		if x == q {
			m.Resident = append(m.Resident[:i], m.Resident[i+1:]...)
			break
		}
	}
	m.updateAd()
	p.inFlight--

	if r.Outcome == runner.Crashed {
		q.Crashes++
		p.record(EventCrash, q, m.Name)
		if q.Crashes <= p.cfg.MaxRetries {
			q.State = Idle
			p.policy.PrepareJobAd(q) // reset Requirements for a fresh match
			p.insertPending(q)
			p.stats.Resubmits++
			p.record(EventResubmit, q, "")
			p.requestNegotiation(p.cfg.NotifyDelay)
			return
		}
		q.State = Failed
	} else {
		q.State = Completed
		p.record(EventTerminate, q, m.Name)
	}
	q.EndTime = p.eng.Now()
	p.noteEnd(q.EndTime)
	p.forgetJob(q)
	if p.OnTerminal != nil {
		p.OnTerminal(q)
	}
	if p.cfg.ClaimReuse {
		p.reuseClaim(m)
	}
	if len(p.pending) > 0 {
		p.requestNegotiation(p.cfg.NotifyDelay)
	}
}

// reuseClaim hands the vacated machine to the first pending job that
// matches it, skipping the negotiation round trip (Condor claim leasing).
func (p *Pool) reuseClaim(m *Machine) {
	if m.Offline || m.AtCapacity() {
		return
	}
	for i, q := range p.pending {
		if p.match(m, q) {
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			p.stats.ClaimReuses++
			p.claim(q, m)
			return
		}
	}
}

func (p *Pool) noteEnd(t units.Tick) {
	if t > p.makespan {
		p.makespan = t
	}
}

// Done reports whether every submitted job reached a terminal state.
func (p *Pool) Done() bool {
	for _, q := range p.jobs {
		if q.State != Completed && q.State != Failed {
			return false
		}
	}
	return true
}

// Records converts the job queue into metrics records.
func (p *Pool) Records() []metrics.JobRecord {
	recs := make([]metrics.JobRecord, 0, len(p.jobs))
	for _, q := range p.jobs {
		rec := metrics.JobRecord{
			ID:         q.Job.ID,
			Workload:   q.Job.Workload,
			SubmitTime: q.SubmitTime,
			StartTime:  q.StartTime,
			EndTime:    q.EndTime,
			Completed:  q.State == Completed,
			Crashes:    q.Crashes,
		}
		if q.Machine != nil {
			rec.Machine = q.Machine.Name
		}
		recs = append(recs, rec)
	}
	return recs
}

// Usage returns the user's accumulated device time (fair-share metric).
func (p *Pool) Usage(user string) units.Tick { return p.usage[user] }

// Status renders a condor_status-style table of the pool: one line per
// machine with its residency and advertised resources, then queue totals.
func (p *Pool) Status() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %6s %6s %10s %10s\n", "Name", "Jobs", "Slots", "FreeMem", "ResThreads")
	for _, m := range p.machines {
		fmt.Fprintf(&sb, "%-16s %6d %6d %10v %10v\n",
			m.Name, len(m.Resident), m.HostSlots, m.FreeMem, m.ResidentThreads)
	}
	idle, running, completed, failed := 0, 0, 0, 0
	for _, q := range p.jobs {
		switch q.State {
		case Idle:
			idle++
		case Dispatched:
			running++
		case Completed:
			completed++
		case Failed:
			failed++
		}
	}
	fmt.Fprintf(&sb, "jobs: %d idle, %d running, %d completed, %d failed\n",
		idle, running, completed, failed)
	return sb.String()
}

// MaxConcurrency returns the peak number of jobs resident on any machine.
func (p *Pool) MaxConcurrency() int {
	max := 0
	for _, m := range p.machines {
		if m.MaxResident > max {
			max = m.MaxResident
		}
	}
	return max
}
