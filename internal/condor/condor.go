// Package condor simulates the HTCondor subset the paper's system is built
// on (§II-D, §IV-D1): a central manager (collector + negotiator), machine
// and job ClassAds, periodic FIFO matchmaking, claims, and shadow/starter
// dispatch latency.
//
// Scheduling policy is pluggable. The three cluster software configurations
// of the evaluation map onto policies:
//
//   - MC   (MPSS+Condor): exclusive device allocation (package scheduler)
//   - MCC  (+COSMIC): random packing subject to declared memory (scheduler)
//   - MCCK (+knapsack cluster scheduler): the paper's contribution
//     (package core), integrating exactly as described — it edits pending
//     jobs' Requirements via condor_qedit-style rewrites and waits for the
//     next negotiation cycle to take effect.
package condor

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"phishare/internal/classad"
	"phishare/internal/cluster"
	"phishare/internal/job"
	"phishare/internal/metrics"
	"phishare/internal/obs"
	"phishare/internal/runner"
	"phishare/internal/sim"
	"phishare/internal/units"
)

// Well-known ClassAd attribute names used across the system. Machines
// advertise Phi resources (obtained from micinfo in the real system); jobs
// advertise their requests.
const (
	AttrName               = "Name"
	AttrPhiDevices         = "PhiDevices"
	AttrPhiFreeDevices     = "PhiFreeDevices"
	AttrPhiMemory          = "PhiMemory"
	AttrPhiFreeMemory      = "PhiFreeMemory"
	AttrPhiThreads         = "PhiThreads"
	AttrPhiResidentThreads = "PhiResidentThreads"
	AttrResidentJobs       = "ResidentJobs"
	AttrJobID              = "JobId"
	AttrRequestPhiMemory   = "RequestPhiMemory"
	AttrRequestPhiThreads  = "RequestPhiThreads"
	AttrRequestPhiDevices  = "RequestPhiDevices"
	AttrHostSlots          = "HostSlots"
	AttrJobPrio            = "JobPrio"
)

// JobState tracks a queued job through its lifecycle.
type JobState int

const (
	// Idle: pending in the schedd queue, waiting to be matched.
	Idle JobState = iota
	// Dispatched: matched and claimed; in shadow/starter transfer or
	// running on its machine.
	Dispatched
	// Completed: finished successfully.
	Completed
	// Failed: crashed more times than the retry budget allows.
	Failed
)

func (s JobState) String() string {
	switch s {
	case Idle:
		return "idle"
	case Dispatched:
		return "dispatched"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// QueuedJob is a job in the schedd queue together with its ClassAd and
// lifecycle bookkeeping.
type QueuedJob struct {
	Job *job.Job
	Ad  *classad.Ad

	// Priority orders matchmaking: higher first, FIFO within a level
	// (Condor's JobPrio). Zero by default.
	Priority int
	// User is the submitting user, for fair-share scheduling (Condor's
	// user priorities). Empty means the anonymous default user.
	User string

	State      JobState
	SubmitTime units.Tick
	StartTime  units.Tick // first dispatch
	EndTime    units.Tick
	Crashes    int
	Machine    *Machine // current/last machine
	started    bool
	// runStart is when the job's *current* execution began. StartTime keeps
	// first-start semantics for wait/response metrics; fair-share usage must
	// accrue per run, or a crashed-and-resubmitted job would charge its first
	// run's interval (plus the idle re-queue gap) to its user twice.
	runStart units.Tick

	// Autocluster membership cache (see Pool.autoclusterOf): acID is valid
	// while the ad's version still equals acVer.
	acID  int
	acVer uint64
	acOK  bool
	// qeditStr/qeditVer remember the last Requirements expression installed
	// by Qedit and the ad version it produced, so re-applying the identical
	// expression (MCCK re-pins the same plan every cycle in steady state)
	// can skip the mutation and keep the match caches warm.
	qeditStr string
	qeditVer uint64
}

// Machine is one advertised slot: a device unit plus its ClassAd and the
// collector-side resource bookkeeping (free declared memory, resident
// declared threads).
type Machine struct {
	Name string
	Unit *cluster.DeviceUnit
	Ad   *classad.Ad

	FreeMem         units.MB
	ResidentThreads units.Threads
	Resident        []*QueuedJob
	MaxResident     int
	// HostSlots is the machine's resident-job capacity (from Config).
	HostSlots int
	// Offline marks a lost node: the negotiator skips it entirely (its
	// startd stopped advertising). Set and cleared by the fault layer
	// through Pool.SetOffline (which also wakes the dirty-cycle tracker); a
	// machine going offline does not by itself evict residents — the device
	// failure that accompanies a node loss does that.
	Offline bool

	// acVals memoizes Match verdicts against this machine per autocluster,
	// indexed by acID − Pool.acBase (a dense array beats a hashed map on
	// the negotiation hot path). Truncated whenever the signature table is
	// wholesale cleared; see Pool.autoclusterOf. During a sharded scan the
	// array is written only by the machine's own shard worker
	// (machine-exclusive state), which is what lets shards share it safely.
	acVals []acVal
	// claimGen stamps the negotiation cycle (Pool.cacheGen) whose commit
	// phase last claimed this machine. The sharded commit re-validates a
	// snapshot candidate against its live ad iff it carries the current
	// cycle's stamp — any other machine's ad is untouched since the scan.
	claimGen uint64
}

// AtCapacity reports whether every host slot is claimed.
func (m *Machine) AtCapacity() bool { return len(m.Resident) >= m.HostSlots }

// FreeSlots is the number of unclaimed host slots.
func (m *Machine) FreeSlots() int {
	n := m.HostSlots - len(m.Resident)
	if n < 0 {
		return 0
	}
	return n
}

// updateAd refreshes the advertised resource levels (the periodic startd →
// collector ClassAd update, applied eagerly here).
func (m *Machine) updateAd() {
	free := 0
	if len(m.Resident) == 0 {
		free = 1
	}
	m.Ad.SetInt(AttrPhiFreeDevices, int64(free))
	m.Ad.SetInt(AttrPhiFreeMemory, int64(m.FreeMem))
	m.Ad.SetInt(AttrPhiResidentThreads, int64(m.ResidentThreads))
	m.Ad.SetInt(AttrResidentJobs, int64(len(m.Resident)))
}

// ExternalPolicy is implemented by policies that run as an external module
// outside the Condor negotiator (the paper's transparent add-on, §IV-D1):
// they react to collector updates, compute placements, and push qedits back
// before matchmaking can proceed. ExtraDelay is that reaction time; it is
// added to every negotiation trigger and is the integration overhead the
// paper observes ("having to wait for Condor's scheduling cycle", Fig. 8).
type ExternalPolicy interface {
	ExtraDelay() units.Tick
}

// Policy is the pluggable cluster-level scheduling behaviour.
type Policy interface {
	// Name identifies the configuration (e.g. "MC", "MCC", "MCCK").
	Name() string
	// MachineRequirements is the Requirements expression installed on every
	// machine ad — the node-side admission guard. Return "true" for an
	// oversubscription-agnostic cluster (the §III strawman).
	MachineRequirements() string
	// PrepareJobAd populates a job's ad (including its initial
	// Requirements) at submission time.
	PrepareJobAd(q *QueuedJob)
	// PreNegotiation runs at the start of each negotiation cycle, before
	// matchmaking; MCCK computes its knapsack plan here and applies it as
	// one batch of qedits.
	PreNegotiation(p *Pool)
	// Select chooses among machines whose ads matched the job; return -1
	// to leave the job idle this cycle. candidates is non-empty.
	Select(p *Pool, q *QueuedJob, candidates []*Machine) int
	// PostNegotiation runs after matchmaking, for policies that want to
	// observe the cycle's outcome.
	PostNegotiation(p *Pool)
}

// Config tunes the Condor mechanics.
type Config struct {
	// NegotiationCycle is the periodic matchmaking interval. HTCondor's
	// NEGOTIATOR_INTERVAL defaults to 60 s, but negotiation is also
	// triggered by queue activity; with completion-triggered cycles
	// (NotifyDelay) the period mostly bounds staleness. Default 10 s.
	NegotiationCycle units.Tick
	// NotifyDelay is the lag between a completion/submission and the
	// negotiation it triggers (collector update propagation). Default 2 s.
	NotifyDelay units.Tick
	// DispatchLatency models the shadow/starter handshake and input file
	// transfer between match and job start. Default 1 s.
	DispatchLatency units.Tick
	// MaxRetries resubmits a crashed job up to this many times before
	// marking it Failed. Default 0 (crashes are terminal).
	MaxRetries int
	// StallLimit aborts the run after this many consecutive empty
	// negotiations with an idle cluster, failing unmatchable jobs instead
	// of looping forever. Default 5.
	StallLimit int
	// ClaimReuse lets a machine whose job just finished immediately start
	// the first pending job that matches it, without waiting for the next
	// negotiation cycle — HTCondor's claim leasing. It removes most of the
	// per-job scheduling latency (ablation A6). Off by default: the
	// paper-faithful configuration pays the negotiation path on every job.
	ClaimReuse bool
	// FairShare enables user-level fair-share matchmaking: each cycle,
	// pending jobs are scanned in ascending order of their user's
	// accumulated device time, so a user who just submitted five jobs is
	// not starved behind another's backlog of hundreds (Condor's user
	// priorities; cf. the fairness-centric schedulers in the paper's
	// related work). Off by default — the paper's experiments are
	// single-user.
	FairShare bool
	// HostSlots caps concurrently resident jobs per machine: every job's
	// host portion occupies a Condor slot on the node's Xeon processors
	// (§IV-D1: "each host processor on a compute node is represented as a
	// slot... only one job can run on one slot at a time"). The paper's
	// servers have two 8-core host Xeons; an offload job keeps roughly a
	// socket busy, so the default is 4 slots per device. Default 4.
	HostSlots int
	// DisableMatchCache forces every matchmaking pair through the full
	// classad.Match expression evaluation instead of the ad-version match
	// cache. The cached and uncached negotiators are semantically identical
	// (the cache keys on both ads' mutation counters, so a stale entry is
	// impossible); the flag exists so the determinism regression can prove
	// that by running the full stack both ways. It also disables
	// autoclusters, which are a grouping layer over the same cache.
	DisableMatchCache bool
	// DisableAutoclusters routes matchmaking through the legacy
	// per-(machine, job) cache and disables the dirty-cycle short-circuit
	// and qedit identity elision, i.e. the negotiator behaves exactly as it
	// did before autocluster grouping. Like DisableMatchCache, it exists so
	// the equivalence regression (and the chaos swarm's diff mode) can prove
	// the grouped and ungrouped negotiators produce bit-identical outcomes.
	DisableAutoclusters bool
	// NegotiationShards partitions the machine inventory into this many
	// contiguous shards and runs each negotiation cycle's matchmaking scan
	// concurrently — one shard per worker, between sim event barriers
	// (sim.Engine.Fanout) — against the cycle-start resource snapshot.
	// Claims are then committed serially in canonical (priority, arrival)
	// job order with candidates assembled in (shard, machine) order, and any
	// machine a commit-phase claim dirtied is re-validated against its live
	// ad before being offered again, so sharded and unsharded outcomes are
	// bit-identical (TestShardedNegotiationBitIdentical).
	//
	// The equivalence holds for any policy whose machine Requirements are
	// monotone under claims (a claim can only shrink the set of jobs a
	// machine matches — true of every shipped policy: claims only consume
	// free memory, devices, threads and slots). A policy whose machine ads
	// could start matching a job *because* of a claim would need the serial
	// scan.
	//
	// 0 (the default) keeps the serial scan; 1 exercises the sharded path on
	// a single shard (for equivalence tests); K > 1 is clamped to the
	// machine count. Sharding rides the autocluster snapshot, so
	// DisableMatchCache or DisableAutoclusters force the serial scan
	// regardless.
	NegotiationShards int
}

// Lookahead returns the smallest delay by which node-confined activity can
// cause a cross-node event under this (defaulted) configuration: a job
// completion triggers a negotiation after NotifyDelay, and — with claim
// reuse — a dispatch after DispatchLatency. It is the conservative lookahead
// the parallel simulation core needs (sim.Engine.SetParallel): no epoch
// window of that width can hide a global event caused inside it.
func (c Config) Lookahead() units.Tick {
	c = c.withDefaults()
	if c.DispatchLatency < c.NotifyDelay {
		return c.DispatchLatency
	}
	return c.NotifyDelay
}

func (c Config) withDefaults() Config {
	if c.NegotiationCycle == 0 {
		c.NegotiationCycle = 10 * units.Second
	}
	if c.NotifyDelay == 0 {
		c.NotifyDelay = 2 * units.Second
	}
	if c.DispatchLatency == 0 {
		c.DispatchLatency = 1 * units.Second
	}
	if c.StallLimit == 0 {
		c.StallLimit = 5
	}
	if c.HostSlots == 0 {
		c.HostSlots = 4
	}
	return c
}

// Stats counts pool activity.
type Stats struct {
	Negotiations int
	Matches      int
	Qedits       int
	Resubmits    int
	Stalled      int // jobs failed by the stall breaker
	ClaimReuses  int // dispatches that skipped negotiation (Config.ClaimReuse)
	// NegotiationRestarts counts cycles aborted and rescheduled by an
	// injected negotiator fault (NegotiationFaults.CycleRestart).
	NegotiationRestarts int
	// CycleSkips counts negotiation cycles short-circuited by the dirty
	// tracker: nothing relevant changed since a previous cycle that matched
	// nothing, so the scan was provably a no-op and was skipped.
	CycleSkips int
}

// NegotiationFaults lets the fault layer (internal/faults) perturb the
// negotiator: TriggerDelay returns extra latency added to each negotiation
// trigger (collector update jitter), and CycleRestart is consulted at the
// top of each cycle — returning ok=true aborts the cycle and reschedules it
// after the returned delay (a negotiator crash/restart). A nil Pool.NegFaults
// disables both, costing one nil check per trigger and cycle.
type NegotiationFaults interface {
	TriggerDelay() units.Tick
	CycleRestart() (units.Tick, bool)
}

// Pool is the Condor pool: central manager plus the machine inventory.
type Pool struct {
	eng    *sim.Engine
	clu    *cluster.Cluster
	cfg    Config
	policy Policy

	machines []*Machine
	jobs     []*QueuedJob
	pending  []*QueuedJob
	inFlight int // dispatched but not yet terminal

	negScheduled bool
	nextNegAt    units.Tick
	negTimer     *sim.Timer // outstanding negotiation trigger (cancelable)
	emptyCycles  int
	makespan     units.Tick
	stats        Stats
	// offline counts machines currently marked Offline, maintained by
	// SetOffline (the mandated funnel) so finishCycle's stall accounting
	// does not rescan the whole inventory every cycle tail.
	offline int

	// matchCache memoizes classad.Match per (machine, job) pair, keyed by
	// both ads' mutation counters. It is the legacy (DisableAutoclusters)
	// cache; the autocluster path below replaces the per-job key with a
	// per-equivalence-class one. Entries carry the generation of the cycle
	// that last touched them; sweepCaches evicts cold generations once the
	// map outgrows its watermark, replacing the old per-terminal-job
	// eviction scan.
	matchCache map[matchKey]matchVal
	// candScratch is the candidates slice reused across every pending job
	// of every cycle (it was re-grown from nil per job before).
	candScratch []*Machine

	// Autocluster matchmaking (HTCondor's autoclusters): pending jobs whose
	// ads are equivalent for matchmaking purposes — identical signatures
	// over Requirements plus every attribute a machine's Requirements can
	// read from the job — share one Match evaluation per machine.
	//
	//   sigRoots  attributes rendered into each job signature: the job's
	//             own Requirements plus the union of every machine-side
	//             TARGET reference (computed once; machine Requirements are
	//             installed at NewPool and never rewritten).
	//   signer    reusable signature renderer (internal/classad).
	//   acIDs     interned signature → dense autocluster id. Ids are never
	//             reused; if the table ever outgrows acTableCap (a workload
	//             with unbounded distinct signatures) it is wholesale
	//             cleared and re-interned signatures get fresh ids, which
	//             only costs extra evaluations, never correctness.
	//   acBase    first acID of the current signature-table era. Match
	//             verdicts live in Machine.acVals indexed by acID − acBase,
	//             valid while the machine ad's version holds (the job side
	//             cannot go stale: a job ad mutation re-signs the job into
	//             the correct — possibly new — autocluster). Clearing the
	//             table advances acBase and truncates every acVals slice,
	//             so slices stay bounded by acTableCap.
	sigRoots []string
	signer   *classad.Signer
	sigBuf   []byte
	acIDs    map[string]int
	acNext   int
	acBase   int
	// acSeen stamps autocluster ids seen during the current cycle's scan
	// (value: cacheGen) so the observability gauge can report how many
	// distinct clusters the pending queue collapsed into.
	acSeen map[int]uint64

	// Dirty-cycle tracking: cacheGen counts full (non-skipped) negotiation
	// cycles and stamps cache entries for eviction; dirty is set by every
	// event that could change a future cycle's outcome (submission, qedit
	// mutation, claim, release, offline toggle); lastNoOp records that the
	// previous full cycle matched nothing, invoked no policy Select, and
	// mutated no ad. A cycle beginning with !dirty && lastNoOp would repeat
	// that no-op bit for bit, so it is skipped (see negotiate).
	cacheGen   uint64
	dirty      bool
	lastNoOp   bool
	qeditMuts  int // cumulative qedits that actually mutated an ad
	selectCall int // policy.Select invocations in the current cycle

	// Sharded negotiation state (Config.NegotiationShards; see shard.go).
	// shards is the fixed contiguous machine partition (nil when the serial
	// scan is in use) and shardRanges its public [lo, hi) view; the rest is
	// per-cycle scratch reused across cycles: jobSlots maps each pending
	// index to its cycle-local autocluster slot, cycleACs/slotJobs list the
	// distinct autoclusters in first-appearance order with a representative
	// job each, and slotOf is the dense acID−acBase → slot+1 table (entries
	// are zeroed again at cycle end, so only touched slots cost anything).
	shards      []negShard
	shardRanges [][2]int
	jobSlots    []int32
	cycleACs    []int
	slotJobs    []*QueuedJob
	slotOf      []int32

	// usage accumulates per-user device time (claim duration) for
	// fair-share ordering.
	usage map[string]units.Tick

	// recordSink, when non-nil, puts the pool in streaming record mode
	// (SetRecordSink): terminal jobs are rendered to a metrics.JobRecord,
	// handed to the sink, and dropped — p.jobs is never appended to, so
	// resident state is O(pending + in-flight) instead of O(total
	// submitted). Records() is unavailable in this mode.
	recordSink func(metrics.JobRecord)
	// Lifecycle counters. They exist in both modes (Status and the O(1)
	// Done read them), but in streaming mode they are the only job-level
	// bookkeeping that survives a terminal transition.
	submitted      int
	completedCount int
	failedCount    int
	// High-water marks of the two active-job populations — the resident
	// footprint a streaming run is bounded by.
	peakPending  int
	peakInFlight int

	// OnTerminal, if set, is invoked whenever a job reaches Completed or
	// Failed — the hook external tooling (e.g. the resource estimator
	// extension) uses to observe outcomes as they happen.
	OnTerminal func(*QueuedJob)
	// NegFaults, if set, injects negotiator perturbations (see
	// NegotiationFaults). Nil in every non-chaos run.
	NegFaults NegotiationFaults
	// Log, if set, records job lifecycle events (HTCondor's user log).
	Log *EventLog

	// Observability (SetObserver). Instrument handles are resolved once at
	// wiring time; every hot-path site pays a nil check when disabled.
	obs           *obs.View
	obsCacheHit   *obs.Counter
	obsCacheMiss  *obs.Counter
	obsCacheInv   *obs.Counter
	obsNeg        *obs.Counter
	obsMatch      *obs.Counter
	obsQedit      *obs.Counter
	obsEvalSaved  *obs.Counter
	obsCycleSkip  *obs.Counter
	obsAutoclu    *obs.Gauge
	obsCycleGap   *obs.Histogram
	lastNegAt     units.Tick
	hasNegotiated bool
	// Per-shard cycle metrics (sharded negotiation): one labeled counter
	// pair per shard, bumped serially after the scan workers join so the
	// workers themselves never touch shared instruments.
	obsShardEvals []*obs.Counter
	obsShardCands []*obs.Counter
}

// matchKey identifies one matchmaking pair for the legacy match cache.
type matchKey struct {
	m *Machine
	q *QueuedJob
}

// matchVal is a memoized Match result, valid while both ads' versions hold.
// gen is the cycle generation that last touched the entry (for eviction).
type matchVal struct {
	mv, jv uint64
	ok     bool
	gen    uint64
}

// acVal is a memoized Match result for every job in an autocluster, valid
// while the machine ad's version holds. mvp stores version+1 so the zero
// value (a freshly grown slot in Machine.acVals) is never a valid entry.
type acVal struct {
	mvp uint64
	ok  bool
}

// acTableCap bounds the signature intern table; see the acIDs field comment.
const acTableCap = 4096

// autoclusterOf returns q's autocluster id, signing the ad only when its
// version moved since the last call (the common case — an unchanged pending
// job — is two integer compares).
func (p *Pool) autoclusterOf(q *QueuedJob) int {
	v := q.Ad.Version()
	if q.acOK && q.acVer == v && q.acID >= p.acBase {
		return q.acID
	}
	p.sigBuf = p.signer.AppendSignature(p.sigBuf[:0], q.Ad, p.sigRoots)
	id, ok := p.acIDs[string(p.sigBuf)] // no-alloc map probe
	if !ok {
		if len(p.acIDs) >= acTableCap {
			// New era: ids stay monotonic so stale cached acIDs (now below
			// acBase) can never collide with fresh ones, and every
			// machine's verdict array restarts empty.
			clear(p.acIDs)
			p.acBase = p.acNext
			for _, m := range p.machines {
				m.acVals = m.acVals[:0]
			}
		}
		id = p.acNext
		p.acNext++
		p.acIDs[string(p.sigBuf)] = id
	}
	q.acID, q.acVer, q.acOK = id, v, true
	return id
}

// match is the cached equivalent of classad.Match(m.Ad, q.Ad), dispatching
// to whichever cache the configuration selects.
func (p *Pool) match(m *Machine, q *QueuedJob) bool {
	switch {
	case p.cfg.DisableMatchCache:
		// No cache, no cache counters: the observability test asserts every
		// cache series stays zero in this configuration.
		return classad.Match(m.Ad, q.Ad)
	case p.cfg.DisableAutoclusters:
		return p.matchLegacy(m, q)
	default:
		return p.matchCluster(m, q, p.autoclusterOf(q))
	}
}

// matchLegacy is the pre-autocluster per-(machine, job) cache path.
func (p *Pool) matchLegacy(m *Machine, q *QueuedJob) bool {
	k := matchKey{m, q}
	mv, jv := m.Ad.Version(), q.Ad.Version()
	if v, hit := p.matchCache[k]; hit {
		if v.mv == mv && v.jv == jv {
			if v.gen != p.cacheGen {
				v.gen = p.cacheGen
				p.matchCache[k] = v
			}
			p.obsCacheHit.Inc()
			return v.ok
		}
		p.obsCacheInv.Inc() // present but stale: an ad mutated since caching
	} else {
		p.obsCacheMiss.Inc()
	}
	ok := classad.Match(m.Ad, q.Ad)
	p.matchCache[k] = matchVal{mv: mv, jv: jv, ok: ok, gen: p.cacheGen}
	return ok
}

// matchCluster consults the autocluster cache: one Match evaluation serves
// every job whose ad signs into the same autocluster. Only the machine ad's
// version needs checking — a job-side mutation moves the job to a different
// (or fresh) autocluster id rather than invalidating in place.
func (p *Pool) matchCluster(m *Machine, q *QueuedJob, ac int) bool {
	idx := ac - p.acBase // ≥ 0: autoclusterOf re-signs ids from older eras
	for len(m.acVals) <= idx {
		m.acVals = append(m.acVals, acVal{})
	}
	mvp := m.Ad.Version() + 1
	if v := m.acVals[idx]; v.mvp != 0 {
		if v.mvp == mvp {
			p.obsCacheHit.Inc()
			p.obsEvalSaved.Inc()
			return v.ok
		}
		p.obsCacheInv.Inc()
	} else {
		p.obsCacheMiss.Inc()
	}
	ok := classad.Match(m.Ad, q.Ad)
	m.acVals[idx] = acVal{mvp: mvp, ok: ok}
	return ok
}

// cacheKeepGens is how many full cycles an untouched cache entry survives
// once its map is over the sweep watermark.
const cacheKeepGens = 4

// sweepCaches evicts match-cache entries not touched for cacheKeepGens full
// cycles, but only once a map outgrows a watermark proportional to the live
// pair population — the steady state never pays the sweep. This replaces the
// old per-terminal-job eviction scan (O(machines) deletes per completion)
// and, unlike it, also bounds entries for jobs that leave the pending set by
// matching.
func (p *Pool) sweepCaches() {
	live := len(p.pending) + p.inFlight + 1
	if limit := 64 + 4*len(p.machines)*live; len(p.matchCache) > limit {
		for k, v := range p.matchCache { //philint:ignore mapiter eviction is keyed on per-entry state only, so iteration order cannot change the surviving set
			if v.gen+cacheKeepGens <= p.cacheGen {
				delete(p.matchCache, k)
			}
		}
	}
}

// MatchCacheLen reports the total number of memoized match results across
// both caches (the legacy per-pair map plus every machine's autocluster
// verdict array), for cache-growth regression tests.
func (p *Pool) MatchCacheLen() int {
	n := len(p.matchCache)
	for _, m := range p.machines {
		n += len(m.acVals)
	}
	return n
}

// AutoclusterCount reports how many distinct job-ad signatures have been
// interned so far.
func (p *Pool) AutoclusterCount() int { return len(p.acIDs) }

// NewPool builds a pool over the cluster with the given policy.
func NewPool(eng *sim.Engine, clu *cluster.Cluster, policy Policy, cfg Config) *Pool {
	p := &Pool{eng: eng, clu: clu, cfg: cfg.withDefaults(), policy: policy,
		usage:      map[string]units.Tick{},
		matchCache: map[matchKey]matchVal{},
		acIDs:      map[string]int{},
		acSeen:     map[int]uint64{},
		signer:     classad.NewSigner(),
		dirty:      true}
	for _, unit := range clu.Units {
		m := &Machine{
			Name:      unit.SlotName,
			Unit:      unit,
			Ad:        classad.NewAd(),
			FreeMem:   unit.Device.Config().Memory,
			HostSlots: p.cfg.HostSlots,
		}
		m.Ad.SetStr(AttrName, m.Name)
		m.Ad.SetInt(AttrPhiDevices, 1)
		m.Ad.SetInt(AttrHostSlots, int64(m.HostSlots))
		m.Ad.SetInt(AttrPhiMemory, int64(unit.Device.Config().Memory))
		m.Ad.SetInt(AttrPhiThreads, int64(unit.Device.Config().HWThreads()))
		m.Ad.MustSetExpr(classad.RequirementsAttr, policy.MachineRequirements())
		m.updateAd()
		p.machines = append(p.machines, m)
	}
	// Job signatures must cover everything a machine's Requirements can read
	// from the job ad, plus the job's own Requirements. Machine Requirements
	// come from the policy at construction and are never rewritten, so the
	// root set is fixed for the pool's lifetime.
	roots := map[string]bool{classad.RequirementsAttr: true}
	for _, m := range p.machines {
		for _, ref := range m.Ad.TargetRefs(classad.RequirementsAttr) {
			roots[ref] = true
		}
	}
	for r := range roots { //philint:ignore mapiter collect then sort: the slice is sorted immediately below
		p.sigRoots = append(p.sigRoots, r)
	}
	sort.Strings(p.sigRoots)
	p.planShards()
	return p
}

// SetObserver attaches the observability layer and resolves the pool's
// instrument handles. Call before Submit; a nil observer leaves the pool
// uninstrumented (all handles nil, all emissions skipped).
func (p *Pool) SetObserver(o *obs.Observer) {
	p.obs = o.View(nil)
	p.obsCacheHit = o.Counter("condor_match_cache_hits_total")
	p.obsCacheMiss = o.Counter("condor_match_cache_misses_total")
	p.obsCacheInv = o.Counter("condor_match_cache_invalidations_total")
	p.obsNeg = o.Counter("condor_negotiations_total")
	p.obsMatch = o.Counter("condor_matches_total")
	p.obsQedit = o.Counter("condor_qedits_total")
	p.obsEvalSaved = o.Counter("condor_autocluster_evals_saved_total")
	p.obsCycleSkip = o.Counter("condor_negotiation_skips_total")
	p.obsAutoclu = o.Gauge("condor_autoclusters_pending")
	p.obsCycleGap = o.Histogram("condor_negotiation_gap_seconds",
		[]float64{1, 2, 5, 10, 20, 30, 60, 120})
	p.obsShardEvals = p.obsShardEvals[:0]
	p.obsShardCands = p.obsShardCands[:0]
	for k := range p.shards {
		id := strconv.Itoa(k)
		p.obsShardEvals = append(p.obsShardEvals,
			o.Counter("condor_shard_match_evals_total", "shard", id))
		p.obsShardCands = append(p.obsShardCands,
			o.Counter("condor_shard_candidates_total", "shard", id))
	}
}

// Machines exposes the machine inventory (fixed order).
func (p *Pool) Machines() []*Machine { return p.machines }

// Pending returns the idle jobs in FIFO order. The slice is shared; policies
// must not reorder it.
func (p *Pool) Pending() []*QueuedJob { return p.pending }

// Jobs returns every submitted job.
func (p *Pool) Jobs() []*QueuedJob { return p.jobs }

// Stats returns activity counters.
func (p *Pool) Stats() Stats { return p.stats }

// Policy returns the installed scheduling policy.
func (p *Pool) Policy() Policy { return p.policy }

// Makespan is the completion time of the last terminal job.
func (p *Pool) Makespan() units.Tick { return p.makespan }

// Config returns the (defaulted) pool configuration.
func (p *Pool) Config() Config { return p.cfg }

// Now returns the current simulated time (for policies and samplers that
// hold a pool but not its engine).
func (p *Pool) Now() units.Tick { return p.eng.Now() }

// InFlight returns the number of dispatched, not-yet-terminal jobs.
func (p *Pool) InFlight() int { return p.inFlight }

// Submit enqueues jobs at the current time (priority 0) and triggers
// negotiation.
func (p *Pool) Submit(jobs []*job.Job) { p.SubmitWithPriority(jobs, 0) }

// SubmitWithPriority enqueues jobs with the given matchmaking priority
// (Condor's JobPrio: higher is served first; FIFO within a level).
func (p *Pool) SubmitWithPriority(jobs []*job.Job, priority int) {
	p.SubmitAs("", jobs, priority)
}

// SubmitAs enqueues jobs on behalf of user, for fair-share accounting.
func (p *Pool) SubmitAs(user string, jobs []*job.Job, priority int) {
	for _, j := range jobs {
		q := &QueuedJob{Job: j, Ad: classad.NewAd(), SubmitTime: p.eng.Now(),
			Priority: priority, User: user}
		q.Ad.SetInt(AttrJobID, int64(j.ID))
		q.Ad.SetInt(AttrRequestPhiMemory, int64(j.Mem))
		q.Ad.SetInt(AttrRequestPhiThreads, int64(j.Threads))
		q.Ad.SetInt(AttrRequestPhiDevices, 1)
		q.Ad.SetInt(AttrJobPrio, int64(priority))
		p.policy.PrepareJobAd(q)
		p.submitted++
		if p.recordSink == nil {
			p.jobs = append(p.jobs, q)
		}
		p.insertPending(q)
		p.record(EventSubmit, q, "")
		if p.obs != nil {
			p.obs.Emit(p.eng.Now(), obs.LayerCondor, "submit",
				obs.F("job", q.Job.ID))
		}
	}
	p.requestNegotiation(p.cfg.NotifyDelay)
}

// insertPending keeps the pending queue ordered by (priority desc, arrival)
// so the FIFO scan of negotiate respects priorities. The insertion point is
// found by binary search — the old backward linear compare walk was O(n) per
// insert, O(n²) to build the 100k-job queues the sharded negotiator targets
// (the tail shift itself is a single memmove either way; see
// BenchmarkInsertPending and TestInsertPendingMatchesLinearScan).
func (p *Pool) insertPending(q *QueuedJob) {
	p.dirty = true
	i := sort.Search(len(p.pending), func(k int) bool {
		return p.pending[k].Priority < q.Priority
	})
	p.pending = append(p.pending, nil)
	copy(p.pending[i+1:], p.pending[i:])
	p.pending[i] = q
	if len(p.pending) > p.peakPending {
		p.peakPending = len(p.pending)
	}
}

// Qedit rewrites a pending job's Requirements, the condor_qedit integration
// point the knapsack scheduler uses to pin jobs to slots (§IV-D1).
func (p *Pool) Qedit(q *QueuedJob, requirements string) {
	p.stats.Qedits++
	p.obsQedit.Inc()
	if p.obs != nil {
		p.obs.Emit(p.eng.Now(), obs.LayerCondor, "qedit",
			obs.F("job", q.Job.ID), obs.F("requirements", requirements))
	}
	if !p.cfg.DisableAutoclusters &&
		q.qeditVer == q.Ad.Version() && q.qeditStr == requirements {
		// The ad already holds exactly this expression (MCCK re-pins the
		// same plan every steady-state cycle). Matchmaking cannot tell the
		// rewritten ad from the untouched one — the contents are identical —
		// so skip the mutation and keep the ad version, and with it the
		// match and autocluster caches, warm.
		return
	}
	if err := q.Ad.SetExpr(classad.RequirementsAttr, requirements); err != nil {
		panic(fmt.Sprintf("condor: qedit of job %d: %v", q.Job.ID, err))
	}
	q.qeditStr = requirements
	q.qeditVer = q.Ad.Version()
	p.qeditMuts++
	p.dirty = true
}

// requestNegotiation schedules a negotiation after delay, keeping only the
// earliest outstanding request. External policies add their reaction time.
// A superseded trigger is truly removed from the event heap (sim.Timer.Stop)
// rather than left to fire as a no-op: the old generation-check approach
// kept one dead closure queued per superseded request, which grew the heap
// without bound under sustained submit/qedit churn
// (TestSupersededTriggersLeaveHeap).
func (p *Pool) requestNegotiation(delay units.Tick) {
	if ext, ok := p.policy.(ExternalPolicy); ok {
		delay += ext.ExtraDelay()
	}
	if p.NegFaults != nil {
		delay += p.NegFaults.TriggerDelay()
	}
	at := p.eng.Now() + delay
	if p.negScheduled && p.nextNegAt <= at {
		return
	}
	if p.negTimer != nil {
		p.negTimer.Stop()
	}
	p.negScheduled = true
	p.nextNegAt = at
	p.negTimer = p.eng.AtTimer(at, func() {
		p.negTimer = nil
		p.negScheduled = false
		p.negotiate()
	})
}

// negotiate runs one matchmaking cycle: policy pre-hook, FIFO scan of
// pending jobs against machine ads, claims and dispatches, policy post-hook.
func (p *Pool) negotiate() {
	if p.NegFaults != nil {
		if delay, restart := p.NegFaults.CycleRestart(); restart {
			// Negotiator died at cycle start: nothing was matched, the cycle
			// re-runs after the restart delay.
			p.stats.NegotiationRestarts++
			if p.obs != nil {
				p.obs.Emit(p.eng.Now(), obs.LayerCondor, "negotiation_restart",
					obs.F("delay_ms", delay))
			}
			p.requestNegotiation(delay)
			return
		}
	}
	p.stats.Negotiations++
	p.obsNeg.Inc()
	if p.obs != nil {
		now := p.eng.Now()
		if p.hasNegotiated {
			p.obsCycleGap.Observe((now - p.lastNegAt).Seconds())
		}
		p.lastNegAt = now
		p.hasNegotiated = true
		p.obs.Emit(now, obs.LayerCondor, "negotiation_start",
			obs.F("cycle", p.stats.Negotiations),
			obs.F("pending", len(p.pending)),
			obs.F("in_flight", p.inFlight))
	}

	if !p.cfg.DisableAutoclusters && !p.cfg.DisableMatchCache &&
		!p.dirty && p.lastNoOp {
		// Nothing relevant changed since a full cycle that matched nothing,
		// called no policy Select (so no policy RNG draw can be owed), and
		// mutated no ad: re-running the scan would reproduce that no-op bit
		// for bit. Skip straight to the cycle tail, which performs exactly
		// the bookkeeping the full cycle would have (the stall counter sees
		// the same matched/inFlight/Offline values).
		p.stats.CycleSkips++
		p.obsCycleSkip.Inc()
		if p.obs != nil {
			p.obs.Emit(p.eng.Now(), obs.LayerCondor, "negotiation_skip",
				obs.F("cycle", p.stats.Negotiations),
				obs.F("pending", len(p.pending)))
		}
		p.finishCycle(0)
		return
	}

	p.cacheGen++
	qedits0 := p.qeditMuts
	p.selectCall = 0
	p.policy.PreNegotiation(p)

	if p.cfg.FairShare {
		// Least-served users first; stable, so priority and arrival order
		// survive within each user.
		sort.SliceStable(p.pending, func(i, j int) bool {
			return p.usage[p.pending[i].User] < p.usage[p.pending[j].User]
		})
	}

	var matched int
	if len(p.shards) > 0 {
		matched = p.negotiateSharded()
	} else {
		matched = p.scanSerial()
	}
	p.stats.Matches += matched

	p.policy.PostNegotiation(p)

	// The cycle itself is the last thing that could have dirtied the pool
	// before the next trigger fires; from here on, only external events
	// (submission, completion, fault, qedit) can.
	p.lastNoOp = matched == 0 && p.selectCall == 0 && p.qeditMuts == qedits0
	p.dirty = false
	p.sweepCaches()

	if p.obs != nil {
		p.obs.Emit(p.eng.Now(), obs.LayerCondor, "negotiation_end",
			obs.F("cycle", p.stats.Negotiations),
			obs.F("matched", matched),
			obs.F("pending", len(p.pending)))
	}

	p.finishCycle(matched)
}

// scanSerial is the classic single-threaded matchmaking scan: for each
// pending job in order, evaluate every machine's live ad and hand the
// matches to the policy. It remains the only path when sharding is off and
// the reference path for the cache-disabled replay configurations.
func (p *Pool) scanSerial() (matched int) {
	autoclusters := !p.cfg.DisableMatchCache && !p.cfg.DisableAutoclusters
	countClusters := autoclusters && p.obs != nil
	if countClusters {
		clear(p.acSeen)
	}
	clusters := 0
	still := p.pending[:0] // in-place filter: write index trails read index
	if cap(p.candScratch) < len(p.machines) {
		p.candScratch = make([]*Machine, 0, len(p.machines))
	}
	for _, q := range p.pending {
		ac := -1
		if autoclusters {
			ac = p.autoclusterOf(q)
			if countClusters {
				if p.acSeen[ac] != p.cacheGen {
					p.acSeen[ac] = p.cacheGen
					clusters++
				}
			}
		}
		candidates := p.candScratch[:0]
		for _, m := range p.machines {
			// A machine with no free host slot cannot accept any job,
			// whatever the ads say: the starter has nowhere to run. An
			// offline machine's startd is not advertising at all.
			if m.Offline || m.AtCapacity() {
				continue
			}
			ok := false
			switch {
			case ac >= 0:
				ok = p.matchCluster(m, q, ac)
			case p.cfg.DisableMatchCache:
				ok = classad.Match(m.Ad, q.Ad)
			default:
				ok = p.matchLegacy(m, q)
			}
			if ok {
				candidates = append(candidates, m)
			}
		}
		idx := -1
		if len(candidates) > 0 {
			p.selectCall++
			idx = p.policy.Select(p, q, candidates)
		}
		if idx < 0 || idx >= len(candidates) {
			still = append(still, q)
			continue
		}
		p.claim(q, candidates[idx])
		matched++
	}
	for i := len(still); i < len(p.pending); i++ {
		p.pending[i] = nil // drop matched-job references past the new length
	}
	p.pending = still
	if countClusters {
		p.obsAutoclu.Set(float64(clusters))
	}
	return matched
}

// finishCycle is the tail every negotiation cycle — full or skipped — runs:
// stall accounting, the stall breaker, and the periodic re-trigger.
func (p *Pool) finishCycle(matched int) {
	if matched == 0 && p.inFlight == 0 && !p.anyOffline() {
		// An empty cycle while a node is down is not evidence of an
		// unmatchable job — the repair may make it matchable again — so it
		// does not count toward the stall limit.
		p.emptyCycles++
	} else {
		p.emptyCycles = 0
	}
	if p.emptyCycles >= p.cfg.StallLimit {
		// Nothing can ever match the rest (e.g. a job larger than any
		// device): fail them rather than negotiate forever.
		for _, q := range p.pending {
			q.State = Failed
			q.EndTime = p.eng.Now()
			p.noteEnd(q.EndTime)
			p.stats.Stalled++
			p.record(EventStallAbort, q, "")
			if p.obs != nil {
				p.obs.Emit(p.eng.Now(), obs.LayerCondor, "stall_abort",
					obs.F("job", q.Job.ID))
			}
			p.retire(q)
		}
		p.pending = nil
		return
	}
	if len(p.pending) > 0 {
		p.requestNegotiation(p.cfg.NegotiationCycle)
	}
}

// anyOffline reports whether any machine is currently marked Offline, from
// the counter SetOffline maintains — finishCycle runs this on every cycle
// tail, and the previous full-inventory scan was O(machines) per cycle.
func (p *Pool) anyOffline() bool { return p.offline > 0 }

// OfflineMachines reports how many machines are currently marked Offline.
// The faults invariant checker compares it against a full scan at every
// event boundary, so any SetOffline bypass or counter drift is caught the
// moment it happens.
func (p *Pool) OfflineMachines() int { return p.offline }

// PokeNegotiation requests a negotiation cycle after the standard notify
// delay. The fault layer calls it when a repaired node comes back, so idle
// jobs do not wait out the full periodic cycle to rediscover it.
func (p *Pool) PokeNegotiation() {
	if len(p.pending) > 0 {
		p.requestNegotiation(p.cfg.NotifyDelay)
	}
}

// SetOffline marks a machine lost or repaired. The fault layer must route
// startd state changes through here rather than writing Machine.Offline
// directly, so the dirty-cycle tracker knows the machine set changed.
func (p *Pool) SetOffline(m *Machine, offline bool) {
	if m.Offline == offline {
		return
	}
	m.Offline = offline
	if offline {
		p.offline++
	} else {
		p.offline--
	}
	p.dirty = true
}

// NegotiateOnce runs one synchronous matchmaking cycle outside the engine's
// event loop, forcing a full scan (the dirty-cycle short-circuit is
// bypassed) and suppressing both the follow-up negotiation the cycle would
// normally schedule and any stall-counter accumulation. Benchmarks and tests
// use it to measure one isolated cycle against a prepared queue.
//
// The probe restores every piece of negotiator state it touches — including
// the dirty-cycle tracker (dirty, lastNoOp), which an earlier version leaked:
// the probe cycle left dirty=false and its own lastNoOp behind, so the first
// engine-driven cycle after a probe could take (or miss) the skip
// short-circuit differently from an unprobed pool
// (TestNegotiateOnceLeavesSkipStateUntouched).
func (p *Pool) NegotiateOnce() {
	dirty, noOp := p.dirty, p.lastNoOp
	scheduled, at, empty := p.negScheduled, p.nextNegAt, p.emptyCycles
	p.dirty = true
	p.negScheduled, p.nextNegAt = true, 0 // makes requestNegotiation a no-op
	p.negotiate()
	p.negScheduled, p.nextNegAt, p.emptyCycles = scheduled, at, empty
	p.dirty, p.lastNoOp = dirty, noOp
}

// claim reserves the machine's advertised resources and dispatches the job
// through the shadow/starter path.
func (p *Pool) claim(q *QueuedJob, m *Machine) {
	p.dirty = true
	m.claimGen = p.cacheGen
	q.State = Dispatched
	q.Machine = m
	m.FreeMem -= q.Job.Mem
	m.ResidentThreads += q.Job.Threads
	m.Resident = append(m.Resident, q)
	if len(m.Resident) > m.MaxResident {
		m.MaxResident = len(m.Resident)
	}
	m.updateAd()
	p.inFlight++
	if p.inFlight > p.peakInFlight {
		p.peakInFlight = p.inFlight
	}
	p.record(EventMatch, q, m.Name)
	p.obsMatch.Inc()
	if p.obs != nil {
		p.obs.Emit(p.eng.Now(), obs.LayerCondor, "match",
			obs.F("job", q.Job.ID), obs.F("machine", m.Name),
			obs.F("free_mem_mb", m.FreeMem),
			obs.F("resident", len(m.Resident)))
	}

	p.eng.After(p.cfg.DispatchLatency, func() {
		if !q.started {
			q.started = true
			q.StartTime = p.eng.Now()
		}
		q.runStart = p.eng.Now()
		p.record(EventExecute, q, m.Name)
		if p.obs != nil {
			p.obs.Emit(p.eng.Now(), obs.LayerCondor, "execute",
				obs.F("job", q.Job.ID), obs.F("machine", m.Name))
		}
		runner.Run(m.Unit, q.Job, func(r runner.Result) {
			// The completion fires on the machine's node lane; jobDone
			// mutates pool-wide state (claims, usage, records, negotiation
			// requests), so it is deferred to the cross-node context. Under
			// the serial engine Global runs it immediately — the classic
			// synchronous path.
			m.Unit.Lane.Global(func() {
				p.jobDone(q, m, r)
			})
		})
	})
}

// jobDone releases the claim and either retires or resubmits the job.
func (p *Pool) jobDone(q *QueuedJob, m *Machine, r runner.Result) {
	p.dirty = true
	p.usage[q.User] += p.eng.Now() - q.runStart
	m.FreeMem += q.Job.Mem
	m.ResidentThreads -= q.Job.Threads
	for i, x := range m.Resident {
		if x == q {
			m.Resident = append(m.Resident[:i], m.Resident[i+1:]...)
			break
		}
	}
	m.updateAd()
	p.inFlight--

	if r.Outcome == runner.Crashed {
		q.Crashes++
		p.record(EventCrash, q, m.Name)
		if p.obs != nil {
			p.obs.Emit(p.eng.Now(), obs.LayerCondor, "crash",
				obs.F("job", q.Job.ID), obs.F("machine", m.Name),
				obs.F("crashes", q.Crashes))
		}
		if q.Crashes <= p.cfg.MaxRetries {
			q.State = Idle
			p.policy.PrepareJobAd(q) // reset Requirements for a fresh match
			p.insertPending(q)
			p.stats.Resubmits++
			p.record(EventResubmit, q, "")
			if p.obs != nil {
				p.obs.Emit(p.eng.Now(), obs.LayerCondor, "resubmit",
					obs.F("job", q.Job.ID))
			}
			p.requestNegotiation(p.cfg.NotifyDelay)
			return
		}
		q.State = Failed
	} else {
		q.State = Completed
		p.record(EventTerminate, q, m.Name)
		if p.obs != nil {
			p.obs.Emit(p.eng.Now(), obs.LayerCondor, "terminate",
				obs.F("job", q.Job.ID), obs.F("machine", m.Name))
		}
	}
	q.EndTime = p.eng.Now()
	p.noteEnd(q.EndTime)
	p.retire(q)
	if p.cfg.ClaimReuse {
		p.reuseClaim(m)
	}
	if len(p.pending) > 0 {
		p.requestNegotiation(p.cfg.NotifyDelay)
	}
}

// reuseClaim hands the vacated machine to the first pending job that
// matches it, skipping the negotiation round trip (Condor claim leasing).
func (p *Pool) reuseClaim(m *Machine) {
	if m.Offline || m.AtCapacity() {
		return
	}
	for i, q := range p.pending {
		if p.match(m, q) {
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			p.stats.ClaimReuses++
			p.claim(q, m)
			return
		}
	}
}

func (p *Pool) noteEnd(t units.Tick) {
	if t > p.makespan {
		p.makespan = t
	}
}

// retire is the single funnel every terminal transition (completion, final
// failure, stall abort) passes through: it maintains the lifecycle
// counters, fires the OnTerminal hook, and in streaming mode renders the
// job to its record, hands it to the sink, and lets the job go — the only
// remaining reference is whatever the sink chose to keep.
func (p *Pool) retire(q *QueuedJob) {
	if q.State == Completed {
		p.completedCount++
	} else {
		p.failedCount++
	}
	if p.OnTerminal != nil {
		p.OnTerminal(q)
	}
	if p.recordSink != nil {
		p.recordSink(p.recordOf(q))
	}
}

// SetRecordSink switches the pool to streaming record mode: every terminal
// job is emitted to sink as a metrics.JobRecord and dropped instead of
// retained in the queue, making resident state O(active jobs). Must be
// called before the first Submit (the already-retained prefix would
// otherwise make Records and the sink disagree); Records panics afterward.
// A nil sink is rejected rather than interpreted as "switch back".
func (p *Pool) SetRecordSink(sink func(metrics.JobRecord)) {
	if sink == nil {
		panic("condor: SetRecordSink(nil)")
	}
	if p.submitted > 0 {
		panic("condor: SetRecordSink after Submit")
	}
	p.recordSink = sink
}

// RetainsJobs reports whether the pool keeps terminal jobs resident (the
// classic mode). Streaming pools return false; whole-queue consumers like
// Records and the fault-invariant checker must not be pointed at them.
func (p *Pool) RetainsJobs() bool { return p.recordSink == nil }

// PeakPending is the high-water mark of the idle queue.
func (p *Pool) PeakPending() int { return p.peakPending }

// PeakInFlight is the high-water mark of dispatched, not-yet-terminal jobs.
func (p *Pool) PeakInFlight() int { return p.peakInFlight }

// Submitted is the total number of jobs ever submitted.
func (p *Pool) Submitted() int { return p.submitted }

// Terminal is the number of jobs that reached Completed or Failed.
func (p *Pool) Terminal() int { return p.completedCount + p.failedCount }

// Done reports whether every submitted job reached a terminal state — a
// counter compare, not a queue scan, so the run loop can poll it per cycle
// without an O(total jobs) walk.
func (p *Pool) Done() bool {
	return p.completedCount+p.failedCount == p.submitted
}

// recordOf renders one terminal (or any) queued job to its metrics record.
// Records and the streaming sink share it, so the two modes cannot drift.
func (p *Pool) recordOf(q *QueuedJob) metrics.JobRecord {
	rec := metrics.JobRecord{
		ID:         q.Job.ID,
		Workload:   q.Job.Workload,
		User:       q.User,
		SubmitTime: q.SubmitTime,
		StartTime:  q.StartTime,
		EndTime:    q.EndTime,
		Completed:  q.State == Completed,
		Crashes:    q.Crashes,
		SeqWork:    q.Job.SequentialTime(),
	}
	if q.Machine != nil {
		rec.Machine = q.Machine.Name
	}
	return rec
}

// Records converts the job queue into metrics records. Unavailable in
// streaming mode, where the records went to the sink as they happened.
func (p *Pool) Records() []metrics.JobRecord {
	if p.recordSink != nil {
		panic("condor: Records on a streaming pool (records were emitted to the sink)")
	}
	recs := make([]metrics.JobRecord, 0, len(p.jobs))
	for _, q := range p.jobs {
		recs = append(recs, p.recordOf(q))
	}
	return recs
}

// Usage returns the user's accumulated device time (fair-share metric).
func (p *Pool) Usage(user string) units.Tick { return p.usage[user] }

// Status renders a condor_status-style table of the pool: one line per
// machine with its residency and advertised resources, then queue totals.
func (p *Pool) Status() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %6s %6s %10s %10s\n", "Name", "Jobs", "Slots", "FreeMem", "ResThreads")
	for _, m := range p.machines {
		fmt.Fprintf(&sb, "%-16s %6d %6d %10v %10v\n",
			m.Name, len(m.Resident), m.HostSlots, m.FreeMem, m.ResidentThreads)
	}
	// Queue totals come from the lifecycle counters, not a whole-queue
	// scan: every Idle job is in pending and every Dispatched one is in
	// flight, so the counters are exact in both record modes — and a
	// million-job streaming pool has no queue to scan anyway.
	fmt.Fprintf(&sb, "jobs: %d idle, %d running, %d completed, %d failed\n",
		len(p.pending), p.inFlight, p.completedCount, p.failedCount)
	return sb.String()
}

// MaxConcurrency returns the peak number of jobs resident on any machine.
func (p *Pool) MaxConcurrency() int {
	max := 0
	for _, m := range p.machines {
		if m.MaxResident > max {
			max = m.MaxResident
		}
	}
	return max
}
