package condor

// Sharded negotiation (Config.NegotiationShards).
//
// The serial negotiator is a FIFO scan: for each pending job, evaluate every
// machine's ad and let the policy pick among the matches. At the 10k-node /
// 100k-job scale the ROADMAP targets, that scan is the last single-threaded
// stage in the stack. The sharded negotiator splits it three ways:
//
//  1. Pre-pass (serial). Sign every pending job into its autocluster and
//     collapse the queue into cycle-local slots: jobs with equal matchmaking
//     signatures share one slot, so the scan below evaluates each (slot,
//     machine) pair once instead of each (job, machine) pair. This is the
//     same collapse the autocluster cache performs, made explicit so the
//     scan can be partitioned.
//
//  2. Scan (parallel). The machine inventory is partitioned into contiguous
//     shards at pool construction. Each shard worker — running between sim
//     event barriers via sim.Engine.Fanout, under the same discipline as
//     PR 6's lane workers — walks its machines against every slot's
//     representative job and records, in machine order, which of its
//     machines match each slot. All state a worker writes (the shard's
//     candidate lists, its tally, each machine's acVals verdict array) is
//     exclusive to that worker; everything shared (job ads, the slot table,
//     machine ads) is read-only during the scan. classad.Match is pure.
//
//  3. Commit (serial, canonical order). Walk the pending queue in the exact
//     order the serial scan would have — (priority, arrival), or the
//     fair-share order — and assemble each job's candidate list by
//     concatenating its slot's per-shard lists in shard order, which is
//     machine order. A machine claimed earlier in this commit carries the
//     cycle's claimGen stamp and is re-validated against its live ad (the
//     optimistic-claim conflict resolution); every other machine's ad is
//     bit-identical to its snapshot, so the snapshot verdict stands. The
//     policy's Select then runs with exactly the candidate list the serial
//     scan would have built, in the same call order — which keeps policy RNG
//     draws, claims, records and follow-up events bit-identical
//     (Config.NegotiationShards documents the monotonicity assumption this
//     rests on).

import (
	"phishare/internal/classad"
	"phishare/internal/obs"
)

// negShard is one contiguous partition of the machine inventory plus its
// per-cycle scan output. flat/off form a packed candidate table: the
// machines of this shard matching cycle slot s, in machine order, are
// flat[off[s]:off[s+1]].
type negShard struct {
	lo, hi int // machine index range [lo, hi)
	flat   []*Machine
	off    []int
	tally  shardTally
}

// shardTally accumulates one shard's cache statistics for a cycle. Workers
// write their own tally; the pool merges them into the shared observability
// counters after the join, in shard order.
type shardTally struct {
	hits   int64 // autocluster cache hits
	misses int64 // cold entries
	inv    int64 // stale entries (machine ad moved since caching)
	evals  int64 // full classad.Match evaluations
	cands  int64 // candidate (slot, machine) pairs recorded
}

// planShards fixes the machine partition at pool construction: K contiguous
// ranges differing in size by at most one. Sharding requires the
// autocluster snapshot, so the cache-disabled replay configurations keep
// the serial scan whatever the knob says.
func (p *Pool) planShards() {
	k := p.cfg.NegotiationShards
	if k <= 0 || p.cfg.DisableAutoclusters || p.cfg.DisableMatchCache {
		p.shardRanges = [][2]int{{0, len(p.machines)}}
		return
	}
	if k > len(p.machines) {
		k = len(p.machines)
	}
	if k < 1 {
		k = 1
	}
	base, rem := len(p.machines)/k, len(p.machines)%k
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		p.shards = append(p.shards, negShard{lo: lo, hi: hi})
		p.shardRanges = append(p.shardRanges, [2]int{lo, hi})
		lo = hi
	}
}

// ShardRanges returns the sharded negotiator's machine partition as
// [lo, hi) index pairs into Machines(), or a single full-range pair when
// the pool scans serially. The MCCK planner uses it to organize its greedy
// knapsack loop into per-shard rounds; the slice is owned by the pool.
func (p *Pool) ShardRanges() [][2]int { return p.shardRanges }

// negotiateSharded is the sharded replacement for scanSerial; see the file
// comment for the three-phase structure.
func (p *Pool) negotiateSharded() (matched int) {
	// Phase 1: serial pre-pass. All autocluster ids seen this cycle are
	// >= base (ids grow monotonically and cached ids below acBase re-sign),
	// so slotOf indexed by id−base is dense and collision-free even if the
	// signature table turns over mid-pass.
	base := p.acBase
	if cap(p.jobSlots) < len(p.pending) {
		p.jobSlots = make([]int32, len(p.pending))
	}
	jobSlots := p.jobSlots[:len(p.pending)]
	p.cycleACs = p.cycleACs[:0]
	p.slotJobs = p.slotJobs[:0]
	for i, q := range p.pending {
		ac := p.autoclusterOf(q)
		idx := ac - base
		for len(p.slotOf) <= idx {
			p.slotOf = append(p.slotOf, 0)
		}
		s := p.slotOf[idx]
		if s == 0 {
			p.cycleACs = append(p.cycleACs, ac)
			p.slotJobs = append(p.slotJobs, q)
			s = int32(len(p.cycleACs)) // slot+1; 0 means unassigned
			p.slotOf[idx] = s
		}
		jobSlots[i] = s - 1
	}

	// Phase 2: parallel per-shard scan between event barriers.
	shards := p.shards
	// Concurrency lives behind sim.Engine.Fanout — the sanctioned
	// barrier-stage worker pool — so this package stays free of host
	// concurrency primitives (the simgoroutine contract).
	p.eng.Fanout(len(shards), func(k int) {
		p.scanShard(&shards[k])
	})
	for k := range shards {
		t := &shards[k].tally
		p.obsCacheHit.Add(t.hits)
		p.obsCacheMiss.Add(t.misses)
		p.obsCacheInv.Add(t.inv)
		p.obsEvalSaved.Add(t.hits) // every hit saved one Match evaluation
		if k < len(p.obsShardEvals) {
			p.obsShardEvals[k].Add(t.evals)
			p.obsShardCands[k].Add(t.cands)
		}
	}
	p.obsAutoclu.Set(float64(len(p.cycleACs)))
	if p.obs != nil {
		now := p.eng.Now()
		for k := range shards {
			sh := &shards[k]
			p.obs.Emit(now, obs.LayerCondor, "shard_scan",
				obs.F("shard", k),
				obs.F("machines", sh.hi-sh.lo),
				obs.F("clusters", len(p.cycleACs)),
				obs.F("evals", sh.tally.evals),
				obs.F("cache_hits", sh.tally.hits),
				obs.F("candidates", sh.tally.cands))
		}
	}

	// Phase 3: serial commit in canonical job order.
	still := p.pending[:0]
	if cap(p.candScratch) < len(p.machines) {
		p.candScratch = make([]*Machine, 0, len(p.machines))
	}
	for i, q := range p.pending {
		s := jobSlots[i]
		candidates := p.candScratch[:0]
		for k := range shards {
			sh := &shards[k]
			for _, m := range sh.flat[sh.off[s]:sh.off[s+1]] {
				if m.claimGen == p.cacheGen {
					// Claimed earlier in this commit: the snapshot verdict is
					// stale, re-validate against the live ad (and the slot and
					// offline guards the scan applied at snapshot time).
					if m.Offline || m.AtCapacity() || !p.commitMatch(m, q) {
						continue
					}
				}
				candidates = append(candidates, m)
			}
		}
		idx := -1
		if len(candidates) > 0 {
			p.selectCall++
			idx = p.policy.Select(p, q, candidates)
		}
		if idx < 0 || idx >= len(candidates) {
			still = append(still, q)
			continue
		}
		p.claim(q, candidates[idx])
		matched++
	}
	for i := len(still); i < len(p.pending); i++ {
		p.pending[i] = nil // drop matched-job references past the new length
	}
	p.pending = still

	// Reset the slot table for the next cycle; only touched entries cost.
	for _, ac := range p.cycleACs {
		p.slotOf[ac-base] = 0
	}
	return matched
}

// scanShard evaluates every (cycle slot, shard machine) pair against the
// snapshot and records the matches in machine order. Runs on a Fanout
// worker: it writes only this shard's state and the shard's own machines'
// verdict arrays, and reads everything else immutably.
func (p *Pool) scanShard(sh *negShard) {
	sh.flat = sh.flat[:0]
	sh.off = sh.off[:0]
	sh.tally = shardTally{}
	machines := p.machines[sh.lo:sh.hi]
	for s, ac := range p.cycleACs {
		sh.off = append(sh.off, len(sh.flat))
		q := p.slotJobs[s]
		idx := ac - p.acBase
		for _, m := range machines {
			if m.Offline || m.AtCapacity() {
				continue
			}
			var ok bool
			if idx >= 0 {
				ok = m.shardMatch(q, idx, &sh.tally)
			} else {
				// The signature table turned over after this job signed:
				// its prior-era id has no cache row, evaluate uncached.
				ok = classad.Match(m.Ad, q.Ad)
				sh.tally.evals++
			}
			if ok {
				sh.flat = append(sh.flat, m)
			}
		}
	}
	sh.off = append(sh.off, len(sh.flat))
	sh.tally.cands = int64(len(sh.flat))
}

// shardMatch is matchCluster for the concurrent scan: identical cache
// semantics, but statistics go to the shard's private tally instead of the
// pool's shared observability counters (which workers must not touch).
func (m *Machine) shardMatch(q *QueuedJob, idx int, t *shardTally) bool {
	for len(m.acVals) <= idx {
		m.acVals = append(m.acVals, acVal{})
	}
	mvp := m.Ad.Version() + 1
	if v := m.acVals[idx]; v.mvp != 0 {
		if v.mvp == mvp {
			t.hits++
			return v.ok
		}
		t.inv++
	} else {
		t.misses++
	}
	ok := classad.Match(m.Ad, q.Ad)
	t.evals++
	m.acVals[idx] = acVal{mvp: mvp, ok: ok}
	return ok
}

// commitMatch re-evaluates a snapshot candidate against the machine's live
// (post-claim) ad during the commit phase, going through the autocluster
// cache so the fresh verdict lands where the next cycle's scan will look.
func (p *Pool) commitMatch(m *Machine, q *QueuedJob) bool {
	if q.acID >= p.acBase {
		return p.matchCluster(m, q, q.acID)
	}
	return classad.Match(m.Ad, q.Ad)
}
