package condor

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"phishare/internal/units"
)

// EventKind classifies job lifecycle events, mirroring the entries HTCondor
// writes to its user log (submit, match, execute, terminate, ...).
type EventKind int

const (
	// EventSubmit: the job entered the schedd queue.
	EventSubmit EventKind = iota
	// EventMatch: matchmaking claimed a machine for the job.
	EventMatch
	// EventExecute: the starter launched the job on its machine.
	EventExecute
	// EventTerminate: the job completed successfully.
	EventTerminate
	// EventCrash: the job's process was killed on the device.
	EventCrash
	// EventResubmit: a crashed job re-entered the queue.
	EventResubmit
	// EventStallAbort: the stall breaker failed an unmatchable job.
	EventStallAbort
)

func (k EventKind) String() string {
	switch k {
	case EventSubmit:
		return "submit"
	case EventMatch:
		return "match"
	case EventExecute:
		return "execute"
	case EventTerminate:
		return "terminate"
	case EventCrash:
		return "crash"
	case EventResubmit:
		return "resubmit"
	case EventStallAbort:
		return "stall-abort"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// EventKinds lists every kind, in declaration order.
func EventKinds() []EventKind {
	return []EventKind{EventSubmit, EventMatch, EventExecute, EventTerminate,
		EventCrash, EventResubmit, EventStallAbort}
}

// ParseEventKind inverts EventKind.String.
func ParseEventKind(s string) (EventKind, error) {
	for _, k := range EventKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("condor: unknown event kind %q", s)
}

// Event is one job lifecycle record.
type Event struct {
	At      units.Tick
	Kind    EventKind
	JobID   int
	User    string
	Machine string // empty for queue-side events
}

// EventLog collects pool events in order. Attach one via Pool.Log before
// submitting. A nil log costs nothing.
type EventLog struct {
	events []Event
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog { return &EventLog{} }

// Append adds an event to the log. The pool records its own events; this
// is for tooling that reconstructs a log from an external source (for
// example, replaying a ReadCSV export back through the invariant checker).
func (l *EventLog) Append(e Event) { l.events = append(l.events, e) }

// Events returns the recorded events in occurrence order.
func (l *EventLog) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Count returns how many events of the kind were recorded.
func (l *EventLog) Count(kind EventKind) int {
	n := 0
	for _, e := range l.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// JobHistory returns the events of one job, in order.
func (l *EventLog) JobHistory(jobID int) []Event {
	var out []Event
	for _, e := range l.events {
		if e.JobID == jobID {
			out = append(out, e)
		}
	}
	return out
}

// WriteCSV exports the log with a header row.
func (l *EventLog) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_ms", "event", "job", "user", "machine"}); err != nil {
		return err
	}
	for _, e := range l.events {
		rec := []string{
			strconv.FormatInt(int64(e.At), 10),
			e.Kind.String(),
			strconv.Itoa(e.JobID),
			e.User,
			e.Machine,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a log previously exported by WriteCSV (header row
// included) back into events.
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("condor: event log header: %w", err)
	}
	if len(header) != 5 || header[0] != "time_ms" || header[1] != "event" {
		return nil, fmt.Errorf("condor: unexpected event log header %v", header)
	}
	var events []Event
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, err
		}
		at, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("condor: event log line %d: bad time %q", line, rec[0])
		}
		kind, err := ParseEventKind(rec[1])
		if err != nil {
			return nil, fmt.Errorf("condor: event log line %d: %w", line, err)
		}
		jobID, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("condor: event log line %d: bad job id %q", line, rec[2])
		}
		events = append(events, Event{
			At: units.Tick(at), Kind: kind, JobID: jobID,
			User: rec[3], Machine: rec[4],
		})
	}
}

// record appends an event if a log is attached.
func (p *Pool) record(kind EventKind, q *QueuedJob, machine string) {
	if p.Log == nil {
		return
	}
	p.Log.events = append(p.Log.events, Event{
		At:      p.eng.Now(),
		Kind:    kind,
		JobID:   q.Job.ID,
		User:    q.User,
		Machine: machine,
	})
}
