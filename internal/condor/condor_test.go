package condor_test

import (
	"reflect"
	"strings"
	"testing"

	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/core"
	"phishare/internal/job"
	"phishare/internal/rng"
	"phishare/internal/scheduler"
	"phishare/internal/sim"
	"phishare/internal/units"
)

// mkJob builds a simple offload job: setup, k offloads with host gaps.
func mkJob(id int, mem units.MB, threads units.Threads, offloads int) *job.Job {
	j := &job.Job{
		ID: id, Name: "j", Workload: "test",
		Mem: mem, Threads: threads, ActualPeakMem: units.MB(float64(mem) * 0.9),
	}
	j.Phases = append(j.Phases, job.Phase{Kind: job.HostPhase, Duration: 1 * units.Second})
	for i := 0; i < offloads; i++ {
		j.Phases = append(j.Phases,
			job.Phase{Kind: job.OffloadPhase, Duration: 2 * units.Second, Threads: threads},
			job.Phase{Kind: job.HostPhase, Duration: 1 * units.Second})
	}
	return j
}

type testRig struct {
	eng  *sim.Engine
	clu  *cluster.Cluster
	pool *condor.Pool
}

func rig(policy condor.Policy, nodes int, useCosmic bool) *testRig {
	eng := sim.New()
	eng.MaxSteps = 10_000_000
	clu := cluster.New(eng, cluster.Config{Nodes: nodes, UseCosmic: useCosmic, Seed: 1})
	pool := condor.NewPool(eng, clu, policy, condor.Config{})
	return &testRig{eng: eng, clu: clu, pool: pool}
}

func (r *testRig) run(t *testing.T, jobs []*job.Job) {
	t.Helper()
	r.pool.Submit(jobs)
	r.eng.Run()
	if !r.pool.Done() {
		t.Fatal("pool not done after engine drained")
	}
}

func completedCount(p *condor.Pool) int {
	n := 0
	for _, q := range p.Jobs() {
		if q.State == condor.Completed {
			n++
		}
	}
	return n
}

func TestExclusiveRunsAllJobs(t *testing.T) {
	r := rig(scheduler.NewExclusive(), 2, false)
	var jobs []*job.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, mkJob(i, 1000, 240, 2))
	}
	r.run(t, jobs)
	if got := completedCount(r.pool); got != 6 {
		t.Errorf("completed %d/6", got)
	}
}

func TestExclusiveNeverSharesDevices(t *testing.T) {
	r := rig(scheduler.NewExclusive(), 2, false)
	var jobs []*job.Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, mkJob(i, 500, 60, 2))
	}
	r.run(t, jobs)
	if r.pool.MaxConcurrency() != 1 {
		t.Errorf("MC max concurrency %d, want 1 (exclusive devices)", r.pool.MaxConcurrency())
	}
}

func TestRandomPackShares(t *testing.T) {
	r := rig(scheduler.NewRandomPack(rng.New(3)), 1, true)
	var jobs []*job.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, mkJob(i, 1000, 60, 3))
	}
	r.run(t, jobs)
	if got := completedCount(r.pool); got != 6 {
		t.Errorf("completed %d/6", got)
	}
	if r.pool.MaxConcurrency() < 2 {
		t.Errorf("MCC max concurrency %d, want sharing", r.pool.MaxConcurrency())
	}
}

func TestRandomPackBlocksAtNodeOnMemory(t *testing.T) {
	// 6 x 3 GB jobs on one 8 GB device: the cluster level dispatches up to
	// the 4-slot limit, but COSMIC admits at most 2 at a time — the rest
	// wait at the node, holding their slots.
	r := rig(scheduler.NewRandomPack(rng.New(4)), 1, true)
	var jobs []*job.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, mkJob(i, 3000, 60, 2))
	}
	r.run(t, jobs)
	if got := completedCount(r.pool); got != 6 {
		t.Errorf("completed %d/6", got)
	}
	unit := r.clu.Units[0]
	if got := unit.Cosmic.Stats().MaxAdmitted; got > 2 {
		t.Errorf("device admitted %d concurrent 3GB jobs, want <= 2", got)
	}
	if r.clu.Units[0].Cosmic.Stats().AdmissionsBlocked == 0 {
		t.Error("memory-oblivious packing never blocked at the node")
	}
	if unit.Device.Stats().OOMKills != 0 {
		t.Error("declared memory oversubscribed on device")
	}
}

func TestMCCKCompletesAndShares(t *testing.T) {
	r := rig(core.New(core.Config{}), 2, true)
	var jobs []*job.Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, mkJob(i, 800, 60, 3))
	}
	r.run(t, jobs)
	if got := completedCount(r.pool); got != 12 {
		t.Errorf("completed %d/12", got)
	}
	if r.pool.MaxConcurrency() < 2 {
		t.Errorf("MCCK max concurrency %d, want sharing", r.pool.MaxConcurrency())
	}
	if r.pool.Stats().Qedits == 0 {
		t.Error("MCCK performed no qedits")
	}
}

func TestMCCKPinsRespectDesignatedSlot(t *testing.T) {
	// All jobs must run on machines they were pinned to; with the memory
	// guard this means declared memory is never oversubscribed.
	r := rig(core.New(core.Config{}), 3, true)
	var jobs []*job.Job
	for i := 0; i < 9; i++ {
		jobs = append(jobs, mkJob(i, 3000, 120, 2))
	}
	r.run(t, jobs)
	for _, q := range r.pool.Jobs() {
		if q.Machine == nil {
			t.Errorf("job %d never ran", q.Job.ID)
		}
	}
	if r.pool.MaxConcurrency() > 2 {
		t.Errorf("max concurrency %d with 3GB jobs on 8GB devices", r.pool.MaxConcurrency())
	}
}

func TestSharingBeatsExclusiveMakespan(t *testing.T) {
	// The paper's core claim at miniature scale: 16 half-width jobs on 2
	// devices finish sooner under MCC and MCCK than under MC.
	mk := func() []*job.Job {
		var jobs []*job.Job
		for i := 0; i < 16; i++ {
			jobs = append(jobs, mkJob(i, 800, 120, 3))
		}
		return jobs
	}
	run := func(p condor.Policy, cosmic bool) units.Tick {
		r := rig(p, 2, cosmic)
		r.run(t, mk())
		if got := completedCount(r.pool); got != 16 {
			t.Fatalf("%s completed %d/16", p.Name(), got)
		}
		return r.pool.Makespan()
	}
	mc := run(scheduler.NewExclusive(), false)
	mcc := run(scheduler.NewRandomPack(rng.New(5)), true)
	mcck := run(core.New(core.Config{}), true)
	if mcc >= mc {
		t.Errorf("MCC %v not better than MC %v", mcc, mc)
	}
	if mcck >= mc {
		t.Errorf("MCCK %v not better than MC %v", mcck, mc)
	}
	t.Logf("makespans: MC=%v MCC=%v MCCK=%v", mc, mcc, mcck)
}

func TestMakespanMatchesLastEndTime(t *testing.T) {
	r := rig(scheduler.NewExclusive(), 2, false)
	jobs := []*job.Job{mkJob(0, 500, 60, 1), mkJob(1, 500, 60, 2)}
	r.run(t, jobs)
	var last units.Tick
	for _, q := range r.pool.Jobs() {
		if q.EndTime > last {
			last = q.EndTime
		}
	}
	if r.pool.Makespan() != last {
		t.Errorf("Makespan %v != last end %v", r.pool.Makespan(), last)
	}
}

func TestRecords(t *testing.T) {
	r := rig(scheduler.NewExclusive(), 1, false)
	r.run(t, []*job.Job{mkJob(0, 500, 60, 1)})
	recs := r.pool.Records()
	if len(recs) != 1 {
		t.Fatalf("records: %d", len(recs))
	}
	rec := recs[0]
	if !rec.Completed || rec.Machine != "slot1@node0" {
		t.Errorf("record %+v", rec)
	}
	if rec.StartTime <= rec.SubmitTime {
		t.Errorf("no dispatch latency: start %v submit %v", rec.StartTime, rec.SubmitTime)
	}
	if rec.EndTime <= rec.StartTime {
		t.Errorf("degenerate times: %+v", rec)
	}
}

func TestUnmatchableJobStalls(t *testing.T) {
	// Under MCCK, a job larger than any device is never pinned and can
	// never match; the stall breaker must fail it rather than negotiate
	// forever.
	r := rig(core.New(core.Config{}), 1, true)
	big := mkJob(0, 9999, 60, 1)
	r.run(t, []*job.Job{big})
	q := r.pool.Jobs()[0]
	if q.State != condor.Failed {
		t.Errorf("unmatchable job state %v, want failed", q.State)
	}
	if r.pool.Stats().Stalled != 1 {
		t.Errorf("stats %+v", r.pool.Stats())
	}
}

func TestOversizedJobFailsFastUnderMCC(t *testing.T) {
	// Under memory-oblivious MCC the same oversized job is dispatched and
	// COSMIC rejects its container outright: a crash, not a hang.
	r := rig(scheduler.NewRandomPack(rng.New(6)), 1, true)
	big := mkJob(0, 9999, 60, 1)
	r.run(t, []*job.Job{big})
	q := r.pool.Jobs()[0]
	if q.State != condor.Failed || q.Crashes == 0 {
		t.Errorf("oversized job state %v crashes %d, want container-kill failure", q.State, q.Crashes)
	}
}

func TestCrashedJobResubmitted(t *testing.T) {
	// A misestimating job crashes under COSMIC containers; with retries it
	// is resubmitted and eventually fails after exhausting them.
	r := rig(scheduler.NewRandomPack(rng.New(7)), 1, true)
	r.pool = condor.NewPool(r.eng, r.clu, scheduler.NewRandomPack(rng.New(7)),
		condor.Config{MaxRetries: 2})
	liar := mkJob(0, 500, 60, 2)
	liar.ActualPeakMem = 900
	r.run(t, []*job.Job{liar})
	q := r.pool.Jobs()[0]
	if q.State != condor.Failed {
		t.Errorf("state %v, want failed after retries", q.State)
	}
	if q.Crashes != 3 {
		t.Errorf("crashes %d, want 3 (initial + 2 retries)", q.Crashes)
	}
	if r.pool.Stats().Resubmits != 2 {
		t.Errorf("resubmits %d, want 2", r.pool.Stats().Resubmits)
	}
}

func TestNegotiationCycleDelayObserved(t *testing.T) {
	// No job may start before NotifyDelay + DispatchLatency.
	r := rig(scheduler.NewExclusive(), 1, false)
	r.run(t, []*job.Job{mkJob(0, 500, 60, 1)})
	rec := r.pool.Records()[0]
	minStart := r.pool.Config().NotifyDelay + r.pool.Config().DispatchLatency
	if rec.StartTime < minStart {
		t.Errorf("start %v before negotiation+dispatch %v", rec.StartTime, minStart)
	}
}

func TestDeterministicPoolRuns(t *testing.T) {
	run := func() units.Tick {
		r := rig(scheduler.NewRandomPack(rng.New(11)), 2, true)
		var jobs []*job.Job
		for i := 0; i < 10; i++ {
			jobs = append(jobs, mkJob(i, 1500, 120, 2))
		}
		r.pool.Submit(jobs)
		r.eng.Run()
		return r.pool.Makespan()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same-seed runs differ: %v vs %v", a, b)
	}
}

func TestAgnosticOversubscribesWithoutCosmic(t *testing.T) {
	// The §III strawman on raw devices: many fat jobs on one card cause
	// crashes (OOM) — exactly what the safe policies prevent.
	eng := sim.New()
	eng.MaxSteps = 10_000_000
	clu := cluster.New(eng, cluster.Config{Nodes: 1, UseCosmic: false, Seed: 2})
	pool := condor.NewPool(eng, clu, scheduler.NewAgnostic(rng.New(8)), condor.Config{})
	var jobs []*job.Job
	for i := 0; i < 8; i++ {
		j := mkJob(i, 4000, 240, 2)
		j.ActualPeakMem = 4000
		jobs = append(jobs, j)
	}
	pool.Submit(jobs)
	eng.Run()
	crashes := 0
	for _, q := range pool.Jobs() {
		crashes += q.Crashes
	}
	if crashes == 0 {
		t.Error("agnostic policy on raw devices produced no crashes (expected OOM)")
	}
}

func TestSafePoliciesNeverCrashHonestJobs(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy condor.Policy
		cosmic bool
	}{
		{"MC", scheduler.NewExclusive(), false},
		{"MCC", scheduler.NewRandomPack(rng.New(9)), true},
		{"MCCK", core.New(core.Config{}), true},
	} {
		r := rig(tc.policy, 2, tc.cosmic)
		var jobs []*job.Job
		for i := 0; i < 20; i++ {
			jobs = append(jobs, mkJob(i, units.MB(500+i*100), 120, 2))
		}
		r.run(t, jobs)
		for _, q := range r.pool.Jobs() {
			if q.Crashes > 0 || q.State != condor.Completed {
				t.Errorf("%s: job %d state=%v crashes=%d", tc.name, q.Job.ID, q.State, q.Crashes)
			}
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	// One device; a low-priority batch is submitted first, then a
	// high-priority job. The high-priority job must start before the
	// still-pending low-priority ones.
	r := rig(scheduler.NewExclusive(), 1, false)
	var batch []*job.Job
	for i := 0; i < 4; i++ {
		batch = append(batch, mkJob(i, 500, 60, 1))
	}
	urgent := mkJob(99, 500, 60, 1)
	r.pool.Submit(batch)
	r.pool.SubmitWithPriority([]*job.Job{urgent}, 10)
	r.eng.Run()

	var urgentStart units.Tick
	starts := map[int]units.Tick{}
	for _, rec := range r.pool.Records() {
		starts[rec.ID] = rec.StartTime
		if rec.ID == 99 {
			urgentStart = rec.StartTime
		}
	}
	later := 0
	for id, s := range starts {
		if id != 99 && s > urgentStart {
			later++
		}
	}
	if later < 3 {
		t.Errorf("urgent job started at %v but only %d batch jobs started after it", urgentStart, later)
	}
}

func TestPriorityFIFOWithinLevel(t *testing.T) {
	r := rig(scheduler.NewExclusive(), 1, false)
	jobs := []*job.Job{mkJob(0, 500, 60, 1), mkJob(1, 500, 60, 1)}
	r.pool.SubmitWithPriority(jobs[:1], 5)
	r.pool.SubmitWithPriority(jobs[1:], 5)
	r.eng.Run()
	recs := r.pool.Records()
	if recs[0].StartTime > recs[1].StartTime {
		t.Error("same-priority jobs served out of submission order")
	}
}

func TestHostSlotsEnforced(t *testing.T) {
	// HostSlots=2: even with ample memory, at most 2 jobs reside per
	// machine.
	eng := sim.New()
	clu := cluster.New(eng, cluster.Config{Nodes: 1, UseCosmic: true, Seed: 1})
	pool := condor.NewPool(eng, clu, scheduler.NewRandomPack(rng.New(2)),
		condor.Config{HostSlots: 2})
	var jobs []*job.Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, mkJob(i, 200, 60, 2))
	}
	pool.Submit(jobs)
	eng.Run()
	if pool.MaxConcurrency() > 2 {
		t.Errorf("max concurrency %d with 2 host slots", pool.MaxConcurrency())
	}
}

func TestExternalPolicyDelaysNegotiation(t *testing.T) {
	// MCCK's reaction delay shifts its first dispatch relative to MCC's.
	runFirstStart := func(p condor.Policy, cosmic bool) units.Tick {
		r := rig(p, 1, cosmic)
		r.run(t, []*job.Job{mkJob(0, 500, 60, 1)})
		return r.pool.Records()[0].StartTime
	}
	mcc := runFirstStart(scheduler.NewRandomPack(rng.New(3)), true)
	mcck := runFirstStart(core.New(core.Config{}), true)
	if mcck <= mcc {
		t.Errorf("MCCK first start %v not after MCC %v (reaction delay missing)", mcck, mcc)
	}
}

func TestFairShareProtectsLightUser(t *testing.T) {
	// User "heavy" floods the queue; user "light" submits a handful just
	// after. With fair-share the light user's jobs are served long before
	// the heavy backlog drains; without, they wait at the tail.
	meanLightWait := func(fairShare bool) units.Tick {
		eng := sim.New()
		eng.MaxSteps = 10_000_000
		clu := cluster.New(eng, cluster.Config{Nodes: 1, UseCosmic: true, Seed: 1})
		pool := condor.NewPool(eng, clu, scheduler.NewRandomPack(rng.New(2)),
			condor.Config{FairShare: fairShare})
		var heavy, light []*job.Job
		for i := 0; i < 30; i++ {
			heavy = append(heavy, mkJob(i, 500, 60, 2))
		}
		for i := 100; i < 104; i++ {
			light = append(light, mkJob(i, 500, 60, 2))
		}
		pool.SubmitAs("heavy", heavy, 0)
		eng.At(5*units.Second, func() { pool.SubmitAs("light", light, 0) })
		eng.Run()
		var total units.Tick
		n := 0
		for _, rec := range pool.Records() {
			if rec.ID >= 100 {
				total += rec.WaitTime()
				n++
			}
		}
		return total / units.Tick(n)
	}
	unfair := meanLightWait(false)
	fair := meanLightWait(true)
	if fair*2 >= unfair {
		t.Errorf("fair-share light-user wait %v not well below FIFO wait %v", fair, unfair)
	}
}

func TestFairShareUsageAccounting(t *testing.T) {
	eng := sim.New()
	clu := cluster.New(eng, cluster.Config{Nodes: 1, UseCosmic: true, Seed: 1})
	pool := condor.NewPool(eng, clu, scheduler.NewRandomPack(rng.New(3)),
		condor.Config{FairShare: true})
	pool.SubmitAs("alice", []*job.Job{mkJob(0, 500, 60, 2)}, 0)
	pool.SubmitAs("bob", []*job.Job{mkJob(1, 500, 60, 1)}, 0)
	eng.Run()
	if pool.Usage("alice") <= pool.Usage("bob") {
		t.Errorf("usage accounting wrong: alice %v, bob %v (alice ran longer)",
			pool.Usage("alice"), pool.Usage("bob"))
	}
	if pool.Usage("nobody") != 0 {
		t.Error("phantom usage for unknown user")
	}
}

func TestFairShareOffPreservesFIFO(t *testing.T) {
	// Without fair-share, a later user's jobs wait behind the backlog:
	// strict FIFO across users.
	eng := sim.New()
	eng.MaxSteps = 10_000_000
	clu := cluster.New(eng, cluster.Config{Nodes: 1, UseCosmic: true, Seed: 1})
	pool := condor.NewPool(eng, clu, scheduler.NewRandomPack(rng.New(4)), condor.Config{})
	var first, second []*job.Job
	for i := 0; i < 10; i++ {
		first = append(first, mkJob(i, 500, 60, 1))
	}
	second = append(second, mkJob(100, 500, 60, 1))
	pool.SubmitAs("a", first, 0)
	pool.SubmitAs("b", second, 0)
	eng.Run()
	var bStart units.Tick
	earlierStarts := 0
	for _, rec := range pool.Records() {
		if rec.ID == 100 {
			bStart = rec.StartTime
		}
	}
	for _, rec := range pool.Records() {
		if rec.ID != 100 && rec.StartTime < bStart {
			earlierStarts++
		}
	}
	if earlierStarts < 8 {
		t.Errorf("only %d of user a's jobs started before b's (want FIFO dominance)", earlierStarts)
	}
}

func TestClaimReuseSkipsNegotiation(t *testing.T) {
	// With claim reuse, the second job starts right when the first ends
	// (plus dispatch latency) instead of waiting for a negotiation.
	run := func(reuse bool) units.Tick {
		eng := sim.New()
		clu := cluster.New(eng, cluster.Config{Nodes: 1, UseCosmic: false, Seed: 1})
		pool := condor.NewPool(eng, clu, scheduler.NewExclusive(),
			condor.Config{ClaimReuse: reuse})
		pool.Submit([]*job.Job{mkJob(0, 500, 60, 1), mkJob(1, 500, 60, 1)})
		eng.Run()
		for _, rec := range pool.Records() {
			if rec.ID == 1 {
				return rec.StartTime
			}
		}
		t.Fatal("job 1 missing")
		return 0
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Errorf("claim reuse start %v not earlier than negotiated start %v", with, without)
	}
}

func TestClaimReuseCountsAndCompletes(t *testing.T) {
	eng := sim.New()
	eng.MaxSteps = 10_000_000
	clu := cluster.New(eng, cluster.Config{Nodes: 2, UseCosmic: true, Seed: 1})
	pool := condor.NewPool(eng, clu, scheduler.NewRandomPack(rng.New(5)),
		condor.Config{ClaimReuse: true})
	var jobs []*job.Job
	for i := 0; i < 30; i++ {
		jobs = append(jobs, mkJob(i, 800, 120, 2))
	}
	pool.Submit(jobs)
	eng.Run()
	if got := completedCount(pool); got != 30 {
		t.Fatalf("completed %d/30", got)
	}
	if pool.Stats().ClaimReuses == 0 {
		t.Error("no claim reuses recorded")
	}
}

func TestClaimReuseRespectsPins(t *testing.T) {
	// Under MCCK, a vacated machine may only take jobs pinned to it.
	eng := sim.New()
	eng.MaxSteps = 10_000_000
	clu := cluster.New(eng, cluster.Config{Nodes: 2, UseCosmic: true, Seed: 1})
	pool := condor.NewPool(eng, clu, core.New(core.Config{}),
		condor.Config{ClaimReuse: true})
	var jobs []*job.Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, mkJob(i, 3000, 120, 2))
	}
	pool.Submit(jobs)
	eng.Run()
	if got := completedCount(pool); got != 20 {
		t.Fatalf("completed %d/20", got)
	}
	// The memory guard lives in the machine requirements, so reuse can
	// never overcommit declared memory.
	for _, m := range pool.Machines() {
		if m.FreeMem < 0 {
			t.Errorf("machine %s overcommitted: %v", m.Name, m.FreeMem)
		}
	}
}

func TestPoolStatus(t *testing.T) {
	r := rig(scheduler.NewRandomPack(rng.New(12)), 2, true)
	r.pool.Submit([]*job.Job{mkJob(0, 500, 60, 1), mkJob(1, 500, 60, 1)})
	r.eng.RunUntil(4 * units.Second) // mid-flight
	mid := r.pool.Status()
	for _, want := range []string{"slot1@node0", "slot1@node1", "running"} {
		if !strings.Contains(mid, want) {
			t.Errorf("status missing %q:\n%s", want, mid)
		}
	}
	r.eng.Run()
	final := r.pool.Status()
	if !strings.Contains(final, "2 completed") {
		t.Errorf("final status:\n%s", final)
	}
}

func TestEventLogLifecycle(t *testing.T) {
	r := rig(scheduler.NewRandomPack(rng.New(20)), 1, true)
	log := condor.NewEventLog()
	r.pool.Log = log
	r.run(t, []*job.Job{mkJob(0, 500, 60, 1)})
	hist := log.JobHistory(0)
	wantOrder := []condor.EventKind{
		condor.EventSubmit, condor.EventMatch, condor.EventExecute, condor.EventTerminate,
	}
	if len(hist) != len(wantOrder) {
		t.Fatalf("history %v", hist)
	}
	for i, e := range hist {
		if e.Kind != wantOrder[i] {
			t.Errorf("event %d = %v, want %v", i, e.Kind, wantOrder[i])
		}
	}
	// Times must be non-decreasing and machine recorded at match/execute.
	for i := 1; i < len(hist); i++ {
		if hist[i].At < hist[i-1].At {
			t.Error("event times regress")
		}
	}
	if hist[1].Machine == "" || hist[2].Machine == "" {
		t.Error("match/execute missing machine")
	}
}

func TestEventLogCrashPath(t *testing.T) {
	eng := sim.New()
	clu := cluster.New(eng, cluster.Config{Nodes: 1, UseCosmic: true, Seed: 1})
	pool := condor.NewPool(eng, clu, scheduler.NewRandomPack(rng.New(21)),
		condor.Config{MaxRetries: 1})
	log := condor.NewEventLog()
	pool.Log = log
	liar := mkJob(0, 500, 60, 1)
	liar.ActualPeakMem = 900
	pool.Submit([]*job.Job{liar})
	eng.Run()
	if log.Count(condor.EventCrash) != 2 {
		t.Errorf("crashes logged %d, want 2", log.Count(condor.EventCrash))
	}
	if log.Count(condor.EventResubmit) != 1 {
		t.Errorf("resubmits logged %d, want 1", log.Count(condor.EventResubmit))
	}
	if log.Count(condor.EventTerminate) != 0 {
		t.Error("terminate logged for a failed job")
	}
}

func TestEventLogCSV(t *testing.T) {
	r := rig(scheduler.NewExclusive(), 1, false)
	log := condor.NewEventLog()
	r.pool.Log = log
	r.run(t, []*job.Job{mkJob(0, 500, 60, 1)})
	var buf strings.Builder
	if err := log.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time_ms,event,job,user,machine" {
		t.Errorf("header %q", lines[0])
	}
	if len(lines) != 1+len(log.Events()) {
		t.Errorf("csv rows %d, events %d", len(lines)-1, len(log.Events()))
	}
}

func TestNilEventLogIsFree(t *testing.T) {
	r := rig(scheduler.NewExclusive(), 1, false)
	r.run(t, []*job.Job{mkJob(0, 500, 60, 1)}) // no Log attached: must not panic
}

// TestEventKindStringRoundTrip: every kind parses back from its string form,
// and unknown names are rejected.
func TestEventKindStringRoundTrip(t *testing.T) {
	for _, k := range condor.EventKinds() {
		got, err := condor.ParseEventKind(k.String())
		if err != nil {
			t.Errorf("ParseEventKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseEventKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := condor.ParseEventKind("evicted"); err == nil {
		t.Error("ParseEventKind accepted an unknown kind")
	}
}

// TestEventLogCSVRoundTrip writes a log containing every EventKind —
// including the crash/resubmit/stall-abort paths — through WriteCSV and
// reads it back with ReadCSV, expecting an identical event slice.
func TestEventLogCSVRoundTrip(t *testing.T) {
	// MCCK with a memory liar (MaxRetries 1) produces submit, match, execute,
	// crash, resubmit, and a second crash; the whale no machine can hold is
	// never pinned, so the stall breaker aborts it.
	eng := sim.New()
	clu := cluster.New(eng, cluster.Config{Nodes: 1, UseCosmic: true, Seed: 1})
	pool := condor.NewPool(eng, clu, core.New(core.Config{}),
		condor.Config{MaxRetries: 1})
	log := condor.NewEventLog()
	pool.Log = log
	liar := mkJob(0, 500, 60, 1)
	liar.ActualPeakMem = 900
	honest := mkJob(1, 400, 50, 1)
	whale := mkJob(2, 1<<20, 60, 1)
	pool.Submit([]*job.Job{liar, honest, whale})
	eng.Run()

	seen := map[condor.EventKind]bool{}
	for _, e := range log.Events() {
		seen[e.Kind] = true
	}
	for _, k := range condor.EventKinds() {
		if !seen[k] {
			t.Fatalf("workload never produced %v; round trip would not cover it", k)
		}
	}

	var buf strings.Builder
	if err := log.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := condor.ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, log.Events()) {
		t.Fatalf("round trip mismatch:\nwrote %v\nread  %v", log.Events(), got)
	}

	// ReadCSV rejects a foreign header outright.
	if _, err := condor.ReadCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("ReadCSV accepted a bad header")
	}
}

func TestUsageSingleChargeAcrossResubmit(t *testing.T) {
	// Regression: fair-share usage was accrued from the job's *first* start
	// on every completion or crash, so a crashed-and-resubmitted job charged
	// its earlier runs (and the idle re-queue gaps between them) again on
	// each subsequent run. Usage must equal the sum of the job's actual
	// execution intervals, reconstructed here from the event log.
	eng := sim.New()
	eng.MaxSteps = 10_000_000
	clu := cluster.New(eng, cluster.Config{Nodes: 1, UseCosmic: true, Seed: 1})
	pool := condor.NewPool(eng, clu, scheduler.NewRandomPack(rng.New(7)),
		condor.Config{MaxRetries: 2})
	pool.Log = condor.NewEventLog()
	liar := mkJob(0, 500, 60, 2)
	liar.ActualPeakMem = 900 // container-killed at first offload, every run
	pool.SubmitAs("alice", []*job.Job{liar}, 0)
	eng.Run()
	if !pool.Done() {
		t.Fatal("pool not done after engine drained")
	}
	q := pool.Jobs()[0]
	if q.Crashes < 2 {
		t.Fatalf("job crashed %d times; test needs at least two runs", q.Crashes)
	}

	var want units.Tick
	var lastExec units.Tick
	for _, e := range pool.Log.JobHistory(0) {
		switch e.Kind {
		case condor.EventExecute:
			lastExec = e.At
		case condor.EventCrash, condor.EventTerminate:
			want += e.At - lastExec
		}
	}
	if got := pool.Usage("alice"); got != want {
		t.Errorf("usage %v != %v summed from the job's execution intervals", got, want)
	}
}

// TestMatchCacheBoundedUnderDynamicArrivals is the cache-growth regression
// test for the generation-swept match cache and the autocluster verdict
// arrays: across a long dynamic-arrival run whose 6000 jobs all carry
// distinct ad signatures (the worst case for both caches — every job is its
// own autocluster, every pair its own legacy entry), the resident cache size
// must stay within each design's bound rather than grow with the total
// number of jobs ever processed:
//
//   - the autocluster verdict arrays are bounded by the signature-table cap
//     per machine — the run interns 6000 distinct signatures, overflowing
//     the 4096-entry table, so the era reset that enforces the cap is
//     exercised for real;
//   - the legacy per-pair map is bounded by its live-population sweep
//     watermark, far below the 24000 pairs the run presents in total.
//
// Waves are spaced so the queue drains between arrivals; a permanently
// backlogged queue would make every pair live at once and the bound
// meaningless.
func TestMatchCacheBoundedUnderDynamicArrivals(t *testing.T) {
	const (
		waves    = 250
		waveSize = 25
		nodes    = 4
	)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"autoclusters", false}, {"legacy", true}} {
		t.Run(mode.name, func(t *testing.T) {
			eng := sim.New()
			eng.MaxSteps = 100_000_000
			clu := cluster.New(eng, cluster.Config{Nodes: nodes, Seed: 1})
			// Exclusive's machine Requirements reference the job's memory
			// request, so the distinct per-job requests below yield distinct
			// signatures (RandomPack's "true" would collapse them all into
			// one autocluster).
			pool := condor.NewPool(eng, clu, scheduler.NewExclusive(),
				condor.Config{DisableAutoclusters: mode.disable})
			peak, maxLive, maxClusters := 0, 0, 0
			sample := func() {
				if n := pool.MatchCacheLen(); n > peak {
					peak = n
				}
				if n := len(pool.Pending()) + pool.InFlight() + 1; n > maxLive {
					maxLive = n
				}
				if n := pool.AutoclusterCount(); n > maxClusters {
					maxClusters = n
				}
			}
			for w := 0; w < waves; w++ {
				wave := w
				eng.After(units.Tick(wave)*50*units.Second, func() {
					jobs := make([]*job.Job, waveSize)
					for i := range jobs {
						id := wave*waveSize + i
						// A distinct memory request per job: every ad signs
						// into its own autocluster.
						jobs[i] = mkJob(id, units.MB(50+id), 16, 1)
					}
					sample()
					pool.Submit(jobs)
					sample()
				})
			}
			eng.Run()
			sample()
			if !pool.Done() {
				t.Fatal("pool not done after engine drained")
			}
			if got := completedCount(pool); got != waves*waveSize {
				t.Fatalf("completed %d/%d", got, waves*waveSize)
			}
			totalPairs := waves * waveSize * nodes
			var bound int
			if mode.disable {
				// Sweep watermark over the live population, with headroom
				// for churn between the wave-boundary samples.
				bound = 2 * (64 + 4*nodes*(maxLive+waveSize))
			} else {
				// One verdict slot per (machine, signature-table entry).
				bound = nodes*4096 + 64
				if maxClusters > 4096 {
					t.Errorf("signature table grew to %d entries: era reset not enforcing the cap", maxClusters)
				}
			}
			if peak > bound {
				t.Errorf("peak cache size %d exceeds bound %d", peak, bound)
			}
			// The proportionality claim only makes sense for the legacy map,
			// whose watermark scales with the live population; the autocluster
			// arrays are pinned to the fixed table cap instead.
			if mode.disable && peak >= totalPairs/4 {
				t.Errorf("peak cache size %d is proportional to total pairs %d: eviction not working",
					peak, totalPairs)
			}
			t.Logf("peak cache %d (bound %d, total pairs %d, max live %d, autoclusters %d)",
				peak, bound, totalPairs, maxLive, maxClusters)
		})
	}
}
