package condor_test

import (
	"fmt"
	"reflect"
	"testing"

	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/core"
	"phishare/internal/job"
	"phishare/internal/rng"
	"phishare/internal/scheduler"
	"phishare/internal/sim"
	"phishare/internal/units"
)

// unmatchableJob builds a job no machine can ever match (more coprocessor
// memory than any device has), so negotiation cycles against it are pure
// matchmaking with no queue mutation.
func unmatchableJob(id int) *job.Job {
	j := &job.Job{
		ID: id, Name: "ghost", Workload: "test",
		Mem: 100_000, Threads: 60, ActualPeakMem: 90_000,
	}
	j.Phases = []job.Phase{{Kind: job.HostPhase, Duration: units.Second}}
	return j
}

// TestSupersededTriggersLeaveHeap is the regression for the dead-closure
// leak: every submit supersedes the outstanding periodic negotiation trigger
// (its NotifyDelay beats the far-future periodic deadline), and the old
// generation-check design left each superseded trigger's closure queued
// until its original deadline — one dead heap entry per submit, unbounded
// under sustained churn. With true timer removal the event heap stays at a
// small constant regardless of how many triggers have been superseded.
func TestSupersededTriggersLeaveHeap(t *testing.T) {
	eng := sim.New()
	clu := cluster.New(eng, cluster.Config{Nodes: 1, Seed: 1})
	pool := condor.NewPool(eng, clu, scheduler.NewExclusive(), condor.Config{
		// A huge periodic cycle keeps the standing trigger far in the
		// future, so every submit's NotifyDelay trigger supersedes it.
		NegotiationCycle: 10_000 * units.Second,
		NotifyDelay:      2 * units.Second,
		StallLimit:       1 << 30,
	})
	const churn = 200
	maxPending := 0
	var submit func(i int)
	submit = func(i int) {
		pool.Submit([]*job.Job{unmatchableJob(i)})
		if n := eng.Pending(); n > maxPending {
			maxPending = n
		}
		if i+1 < churn {
			eng.After(10*units.Second, func() { submit(i + 1) })
		}
	}
	eng.At(0, func() { submit(0) })
	eng.RunUntil(units.Tick(churn+10) * 10 * units.Second)

	// Steady state holds one chained submit event, one negotiation trigger,
	// and the odd in-flight follow-up — never one entry per superseded
	// trigger. Before the fix this reached ~churn.
	const bound = 8
	if maxPending > bound {
		t.Fatalf("event heap grew to %d entries under %d superseding submits, want <= %d "+
			"(superseded negotiation triggers left dead closures queued)",
			maxPending, churn, bound)
	}
}

// TestNegotiateOnceLeavesSkipStateUntouched is the regression for the probe
// leak: NegotiateOnce restored the trigger bookkeeping but not the
// dirty-cycle tracker, so a probe cycle between engine events made the next
// engine-driven cycle take the no-op skip even though the pool had been
// dirtied — a probed pool and an unprobed pool diverged on CycleSkips.
func TestNegotiateOnceLeavesSkipStateUntouched(t *testing.T) {
	run := func(probe bool) condor.Stats {
		eng := sim.New()
		clu := cluster.New(eng, cluster.Config{Nodes: 2, Seed: 1})
		pool := condor.NewPool(eng, clu, scheduler.NewExclusive(), condor.Config{
			StallLimit: 1 << 30,
		})
		pool.Submit([]*job.Job{unmatchableJob(1)})
		// A few cycles: the first scans, the rest take the no-op skip.
		eng.RunUntil(35 * units.Second)
		// Dirty the pool without changing matchability: a machine drops off
		// and comes straight back. The next engine cycle must do a full
		// scan, probe or no probe.
		m := pool.Machines()[0]
		pool.SetOffline(m, true)
		pool.SetOffline(m, false)
		if probe {
			pool.NegotiateOnce()
		}
		eng.RunUntil(75 * units.Second)
		return pool.Stats()
	}
	plain, probed := run(false), run(true)
	if probed.Negotiations != plain.Negotiations+1 {
		t.Fatalf("probed pool ran %d negotiations, unprobed %d: probe should add exactly one",
			probed.Negotiations, plain.Negotiations)
	}
	if probed.CycleSkips != plain.CycleSkips {
		t.Fatalf("probed pool skipped %d cycles, unprobed %d: the probe perturbed the "+
			"dirty-cycle tracker", probed.CycleSkips, plain.CycleSkips)
	}
}

// TestInsertPendingMatchesLinearScan pins the binary-search pending insert
// against a reference linear-scan model: priority descending, FIFO within a
// level, whatever order priorities arrive in.
func TestInsertPendingMatchesLinearScan(t *testing.T) {
	eng := sim.New()
	clu := cluster.New(eng, cluster.Config{Nodes: 1, Seed: 1})
	pool := condor.NewPool(eng, clu, scheduler.NewExclusive(), condor.Config{})

	type entry struct{ id, pri int }
	var want []entry
	insertRef := func(e entry) {
		// The pre-binary-search insert: walk back past every strictly lower
		// priority, landing after the last entry with priority >= e.pri.
		i := len(want)
		for i > 0 && want[i-1].pri < e.pri {
			i--
		}
		want = append(want, entry{})
		copy(want[i+1:], want[i:])
		want[i] = e
	}

	r := rng.New(11).Fork("insert")
	for id := 0; id < 300; id++ {
		pri := r.Intn(8)
		pool.SubmitWithPriority([]*job.Job{unmatchableJob(id)}, pri)
		insertRef(entry{id: id, pri: pri})
	}

	got := pool.Pending()
	if len(got) != len(want) {
		t.Fatalf("pending has %d jobs, want %d", len(got), len(want))
	}
	for i, q := range got {
		if q.Job.ID != want[i].id || q.Priority != want[i].pri {
			t.Fatalf("pending[%d] = job %d pri %d, want job %d pri %d",
				i, q.Job.ID, q.Priority, want[i].id, want[i].pri)
		}
	}
}

// TestOfflineCounterTracksScan drives SetOffline through flips, repeats and
// redundant writes and checks the maintained counter against a full scan at
// every step — the O(1) replacement for finishCycle's per-cycle machine walk.
func TestOfflineCounterTracksScan(t *testing.T) {
	eng := sim.New()
	clu := cluster.New(eng, cluster.Config{Nodes: 4, Seed: 1})
	pool := condor.NewPool(eng, clu, scheduler.NewExclusive(), condor.Config{})
	machines := pool.Machines()

	check := func(step string) {
		t.Helper()
		scan := 0
		for _, m := range machines {
			if m.Offline {
				scan++
			}
		}
		if got := pool.OfflineMachines(); got != scan {
			t.Fatalf("%s: OfflineMachines() = %d, scan counts %d", step, got, scan)
		}
	}

	check("initial")
	r := rng.New(5).Fork("offline")
	for i := 0; i < 200; i++ {
		m := machines[r.Intn(len(machines))]
		// Redundant sets (same state) must be no-ops on the counter.
		pool.SetOffline(m, r.Intn(3) != 0)
		check(fmt.Sprintf("step %d", i))
	}
	for _, m := range machines {
		pool.SetOffline(m, false)
	}
	check("all restored")
	if pool.OfflineMachines() != 0 {
		t.Fatalf("counter %d after restoring every machine", pool.OfflineMachines())
	}
}

// TestShardedNegotiationBitIdentical is the acceptance test named by
// Config.NegotiationShards: across policies × seeds × shard counts, a full
// run on the sharded negotiator must be bit-for-bit identical to the serial
// scan — every job record, every activity counter. K beyond the machine
// count exercises the clamp.
func TestShardedNegotiationBitIdentical(t *testing.T) {
	policies := map[string]func() condor.Policy{
		"MC":   func() condor.Policy { return scheduler.NewExclusive() },
		"MCC":  func() condor.Policy { return scheduler.NewRandomPack(rng.New(3)) },
		"MCCK": func() condor.Policy { return core.New(core.Config{}) },
	}
	run := func(mk func() condor.Policy, seed int64, shards int) (condor.Stats, []interface{}) {
		eng := sim.New()
		eng.MaxSteps = 10_000_000
		clu := cluster.New(eng, cluster.Config{Nodes: 4, UseCosmic: true, Seed: 1})
		pool := condor.NewPool(eng, clu, mk(), condor.Config{
			MaxRetries:        2,
			NegotiationShards: shards,
		})
		pool.Submit(job.GenerateTableOneSet(40, rng.New(seed).Fork("tableI")))
		eng.Run()
		if !pool.Done() {
			t.Fatal("pool not done after engine drained")
		}
		recs := make([]interface{}, 0, len(pool.Records()))
		for _, r := range pool.Records() {
			recs = append(recs, r)
		}
		return pool.Stats(), recs
	}
	for name, mk := range policies {
		for seed := int64(1); seed <= 5; seed++ {
			wantStats, wantRecs := run(mk, seed, 0)
			for _, k := range []int{1, 3, 8} {
				gotStats, gotRecs := run(mk, seed, k)
				if gotStats != wantStats {
					t.Errorf("%s seed %d shards=%d: stats diverge:\ngot  %+v\nwant %+v",
						name, seed, k, gotStats, wantStats)
				}
				if !reflect.DeepEqual(gotRecs, wantRecs) {
					for i := range wantRecs {
						if i >= len(gotRecs) || !reflect.DeepEqual(gotRecs[i], wantRecs[i]) {
							t.Fatalf("%s seed %d shards=%d: record %d diverges:\ngot  %+v\nwant %+v",
								name, seed, k, i, gotRecs[i], wantRecs[i])
						}
					}
					t.Fatalf("%s seed %d shards=%d: record count %d != %d",
						name, seed, k, len(gotRecs), len(wantRecs))
				}
			}
		}
	}
}

// TestShardRangesPlanning pins the partition plan: contiguous, covering,
// near-even, clamped to the machine count, and collapsed to one full range
// whenever sharding is off or a cache-disabled replay forces the serial scan.
func TestShardRangesPlanning(t *testing.T) {
	plan := func(nodes int, cfg condor.Config) [][2]int {
		eng := sim.New()
		clu := cluster.New(eng, cluster.Config{Nodes: nodes, Seed: 1})
		return condor.NewPool(eng, clu, scheduler.NewExclusive(), cfg).ShardRanges()
	}
	// Serial configurations: one full range.
	for _, cfg := range []condor.Config{
		{},
		{NegotiationShards: 4, DisableAutoclusters: true},
		{NegotiationShards: 4, DisableMatchCache: true},
	} {
		r := plan(6, cfg)
		if len(r) != 1 || r[0] != [2]int{0, 6} {
			t.Fatalf("config %+v: ranges %v, want one full range", cfg, r)
		}
	}
	// Sharded: contiguous cover, sizes differing by at most one, K clamped.
	for _, tc := range []struct{ nodes, k, wantShards int }{
		{6, 1, 1}, {6, 2, 2}, {6, 4, 4}, {6, 100, 6}, {3, 8, 3},
	} {
		r := plan(tc.nodes, condor.Config{NegotiationShards: tc.k})
		if len(r) != tc.wantShards {
			t.Fatalf("nodes=%d K=%d: %d shards, want %d", tc.nodes, tc.k, len(r), tc.wantShards)
		}
		lo, minSz, maxSz := 0, tc.nodes, 0
		for _, pr := range r {
			if pr[0] != lo {
				t.Fatalf("nodes=%d K=%d: ranges %v not contiguous", tc.nodes, tc.k, r)
			}
			sz := pr[1] - pr[0]
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			lo = pr[1]
		}
		if lo != tc.nodes {
			t.Fatalf("nodes=%d K=%d: ranges %v do not cover the inventory", tc.nodes, tc.k, r)
		}
		if maxSz-minSz > 1 {
			t.Fatalf("nodes=%d K=%d: shard sizes spread %d..%d, want near-even", tc.nodes, tc.k, minSz, maxSz)
		}
	}
}
