package condor_test

import (
	"testing"

	"phishare/internal/job"
	"phishare/internal/metrics"
	"phishare/internal/rng"
	"phishare/internal/scheduler"
	"phishare/internal/units"
)

// streamRig submits jobs through a record sink and drains the engine.
func streamRig(t *testing.T, jobs []*job.Job) (*testRig, []metrics.JobRecord) {
	t.Helper()
	r := rig(scheduler.NewRandomPack(rng.New(93)), 2, true)
	var recs []metrics.JobRecord
	r.pool.SetRecordSink(func(rec metrics.JobRecord) { recs = append(recs, rec) })
	r.pool.Submit(jobs)
	r.eng.Run()
	return r, recs
}

func TestStreamingPoolEmitsAndDrops(t *testing.T) {
	var jobs []*job.Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, mkJob(i, 500, 60, 2))
	}
	r, recs := streamRig(t, jobs)

	if !r.pool.Done() {
		t.Fatal("pool not done after engine drained")
	}
	if r.pool.RetainsJobs() {
		t.Error("RetainsJobs() true on a streaming pool")
	}
	if got := r.pool.Submitted(); got != 8 {
		t.Errorf("Submitted() = %d, want 8", got)
	}
	if got := r.pool.Terminal(); got != 8 {
		t.Errorf("Terminal() = %d, want 8", got)
	}
	if len(recs) != 8 {
		t.Fatalf("sink saw %d records, want 8", len(recs))
	}
	seen := map[int]bool{}
	for _, rec := range recs {
		if !rec.Completed {
			t.Errorf("job %d record not completed: %+v", rec.ID, rec)
		}
		if seen[rec.ID] {
			t.Errorf("job %d emitted twice", rec.ID)
		}
		seen[rec.ID] = true
	}
	if r.pool.PeakPending() <= 0 || r.pool.PeakInFlight() <= 0 {
		t.Errorf("footprint marks not tracked: pending=%d inflight=%d",
			r.pool.PeakPending(), r.pool.PeakInFlight())
	}
}

func TestStreamingPoolRecordsPanics(t *testing.T) {
	r, _ := streamRig(t, []*job.Job{mkJob(0, 500, 60, 1)})
	defer func() {
		if recover() == nil {
			t.Error("Records() on a streaming pool did not panic")
		}
	}()
	r.pool.Records()
}

func TestSetRecordSinkAfterSubmitPanics(t *testing.T) {
	r := rig(scheduler.NewRandomPack(rng.New(93)), 1, true)
	r.pool.Submit([]*job.Job{mkJob(0, 500, 60, 1)})
	defer func() {
		if recover() == nil {
			t.Error("SetRecordSink after Submit did not panic")
		}
	}()
	r.pool.SetRecordSink(func(metrics.JobRecord) {})
}

func TestSetRecordSinkNilPanics(t *testing.T) {
	r := rig(scheduler.NewRandomPack(rng.New(93)), 1, true)
	defer func() {
		if recover() == nil {
			t.Error("SetRecordSink(nil) did not panic")
		}
	}()
	r.pool.SetRecordSink(nil)
}

// TestStreamingRecordsMatchRetained pins the shared renderer: the sink must
// see, job for job, the same record a retaining pool computes post-hoc.
func TestStreamingRecordsMatchRetained(t *testing.T) {
	mk := func() []*job.Job {
		var jobs []*job.Job
		for i := 0; i < 10; i++ {
			jobs = append(jobs, mkJob(i, units.MB(400+i*100), 60, 2))
		}
		return jobs
	}
	ret := rig(scheduler.NewRandomPack(rng.New(93)), 2, true)
	ret.run(t, mk())
	retained := ret.pool.Records()

	_, streamed := streamRig(t, mk())
	if len(streamed) != len(retained) {
		t.Fatalf("%d streamed records vs %d retained", len(streamed), len(retained))
	}
	byID := map[int]metrics.JobRecord{}
	for _, rec := range streamed {
		byID[rec.ID] = rec
	}
	for _, want := range retained {
		if got, ok := byID[want.ID]; !ok || got != want {
			t.Errorf("job %d: streamed %+v, retained %+v", want.ID, byID[want.ID], want)
		}
	}
}

// TestRetainedPoolCountersAgree checks the O(1) counters stay truthful on
// the classic retained path too — Done() now reads them, not the queue.
func TestRetainedPoolCountersAgree(t *testing.T) {
	r := rig(scheduler.NewRandomPack(rng.New(93)), 2, true)
	var jobs []*job.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, mkJob(i, 500, 60, 2))
	}
	r.run(t, jobs)
	if !r.pool.RetainsJobs() {
		t.Error("RetainsJobs() false without a sink")
	}
	if got := r.pool.Submitted(); got != 6 {
		t.Errorf("Submitted() = %d, want 6", got)
	}
	if got := r.pool.Terminal(); got != 6 || completedCount(r.pool) != 6 {
		t.Errorf("Terminal() = %d, queue says %d completed, want 6", got, completedCount(r.pool))
	}
}
