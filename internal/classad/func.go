package classad

import (
	"fmt"
	"math"
	"strings"
)

// Built-in functions, the useful subset of HTCondor's ClassAd function
// library. Function names are case-insensitive, like attribute names.
//
// Error handling follows the ClassAd convention: wrong arity or operand
// types yield the error value; undefined arguments generally propagate
// undefined (ifThenElse being the deliberate exception).
type builtin struct {
	name     string
	minArity int
	maxArity int // -1 for variadic
	eval     func(args []Value) Value
}

var builtins = map[string]builtin{}

func register(b builtin) { builtins[strings.ToLower(b.name)] = b }

func init() {
	register(builtin{"strcat", 0, -1, fnStrcat})
	register(builtin{"substr", 2, 3, fnSubstr})
	register(builtin{"strlen", 1, 1, fnStrlen})
	register(builtin{"toLower", 1, 1, fnToLower})
	register(builtin{"toUpper", 1, 1, fnToUpper})
	register(builtin{"int", 1, 1, fnInt})
	register(builtin{"real", 1, 1, fnReal})
	register(builtin{"string", 1, 1, fnString})
	register(builtin{"floor", 1, 1, fnFloor})
	register(builtin{"ceiling", 1, 1, fnCeiling})
	register(builtin{"round", 1, 1, fnRound})
	register(builtin{"min", 1, -1, fnMin})
	register(builtin{"max", 1, -1, fnMax})
	register(builtin{"ifThenElse", 3, 3, fnIfThenElse})
	register(builtin{"isUndefined", 1, 1, fnIsUndefined})
	register(builtin{"isError", 1, 1, fnIsError})
	register(builtin{"stringListMember", 2, 3, fnStringListMember})
}

// callExpr is a function application node.
type callExpr struct {
	name string // original spelling
	args []Expr
}

func (e callExpr) Eval(env Env) Value {
	b, ok := builtins[canonLower(e.name)]
	if !ok {
		return ErrorValue("unknown function " + e.name)
	}
	if len(e.args) < b.minArity || (b.maxArity >= 0 && len(e.args) > b.maxArity) {
		return ErrorValue(fmt.Sprintf("%s: want %d..%d arguments, got %d",
			e.name, b.minArity, b.maxArity, len(e.args)))
	}
	// ifThenElse must not evaluate the untaken branch (Condor semantics):
	// handle lazily.
	if strings.EqualFold(e.name, "ifThenElse") {
		cond := e.args[0].Eval(env)
		c, ok := cond.BoolValue()
		if !ok {
			if cond.IsError() {
				return cond
			}
			return ErrorValue("ifThenElse: non-boolean condition")
		}
		if c {
			return e.args[1].Eval(env)
		}
		return e.args[2].Eval(env)
	}
	args := make([]Value, len(e.args))
	for i, a := range e.args {
		args[i] = a.Eval(env)
	}
	return b.eval(args)
}

func (e callExpr) String() string {
	parts := make([]string, len(e.args))
	for i, a := range e.args {
		parts[i] = a.String()
	}
	return e.name + "(" + strings.Join(parts, ", ") + ")"
}

// firstBad returns the first error or undefined argument, if any.
func firstBad(args []Value) (Value, bool) {
	for _, a := range args {
		if a.IsError() {
			return a, true
		}
	}
	for _, a := range args {
		if a.IsUndefined() {
			return a, true
		}
	}
	return Value{}, false
}

func fnStrcat(args []Value) Value {
	if bad, ok := firstBad(args); ok {
		return bad
	}
	var sb strings.Builder
	for _, a := range args {
		switch a.Kind() {
		case KindString:
			s, _ := a.StringValue()
			sb.WriteString(s)
		default:
			// Numbers and booleans stringify with their literal syntax,
			// minus string quoting.
			sb.WriteString(strings.Trim(a.String(), `"`))
		}
	}
	return Str(sb.String())
}

func fnSubstr(args []Value) Value {
	if bad, ok := firstBad(args); ok {
		return bad
	}
	s, ok := args[0].StringValue()
	if !ok {
		return ErrorValue("substr: first argument must be a string")
	}
	off, ok := args[1].IntValue()
	if !ok {
		return ErrorValue("substr: offset must be an integer")
	}
	// Condor semantics: negative offset counts from the end.
	n := int64(len(s))
	if off < 0 {
		off += n
	}
	if off < 0 {
		off = 0
	}
	if off > n {
		off = n
	}
	length := n - off
	if len(args) == 3 {
		l, ok := args[2].IntValue()
		if !ok {
			return ErrorValue("substr: length must be an integer")
		}
		// Negative length leaves that many characters off the end.
		if l < 0 {
			length = n - off + l
		} else {
			length = l
		}
	}
	if length < 0 {
		length = 0
	}
	if off+length > n {
		length = n - off
	}
	return Str(s[off : off+length])
}

func fnStrlen(args []Value) Value {
	if bad, ok := firstBad(args); ok {
		return bad
	}
	s, ok := args[0].StringValue()
	if !ok {
		return ErrorValue("strlen: argument must be a string")
	}
	return Int(int64(len(s)))
}

func fnToLower(args []Value) Value {
	if bad, ok := firstBad(args); ok {
		return bad
	}
	s, ok := args[0].StringValue()
	if !ok {
		return ErrorValue("toLower: argument must be a string")
	}
	return Str(strings.ToLower(s))
}

func fnToUpper(args []Value) Value {
	if bad, ok := firstBad(args); ok {
		return bad
	}
	s, ok := args[0].StringValue()
	if !ok {
		return ErrorValue("toUpper: argument must be a string")
	}
	return Str(strings.ToUpper(s))
}

func fnInt(args []Value) Value {
	if bad, ok := firstBad(args); ok {
		return bad
	}
	switch args[0].Kind() {
	case KindInt:
		return args[0]
	case KindReal:
		f, _ := args[0].RealValue()
		return Int(int64(f)) // truncation, as in Condor
	case KindBool:
		b, _ := args[0].BoolValue()
		if b {
			return Int(1)
		}
		return Int(0)
	case KindString:
		s, _ := args[0].StringValue()
		var i int64
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &i); err != nil {
			return ErrorValue("int: cannot parse " + s)
		}
		return Int(i)
	}
	return ErrorValue("int: unsupported operand")
}

func fnReal(args []Value) Value {
	if bad, ok := firstBad(args); ok {
		return bad
	}
	switch args[0].Kind() {
	case KindReal:
		return args[0]
	case KindInt:
		i, _ := args[0].IntValue()
		return Real(float64(i))
	case KindBool:
		b, _ := args[0].BoolValue()
		if b {
			return Real(1)
		}
		return Real(0)
	case KindString:
		s, _ := args[0].StringValue()
		var f float64
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &f); err != nil {
			return ErrorValue("real: cannot parse " + s)
		}
		return Real(f)
	}
	return ErrorValue("real: unsupported operand")
}

func fnString(args []Value) Value {
	if bad, ok := firstBad(args); ok {
		return bad
	}
	if args[0].Kind() == KindString {
		return args[0]
	}
	return Str(strings.Trim(args[0].String(), `"`))
}

func numericUnary(name string, args []Value, f func(float64) float64) Value {
	if bad, ok := firstBad(args); ok {
		return bad
	}
	if args[0].Kind() == KindInt {
		return args[0] // already integral
	}
	v, ok := args[0].RealValue()
	if !ok {
		return ErrorValue(name + ": non-numeric operand")
	}
	return Int(int64(f(v)))
}

func fnFloor(args []Value) Value   { return numericUnary("floor", args, math.Floor) }
func fnCeiling(args []Value) Value { return numericUnary("ceiling", args, math.Ceil) }
func fnRound(args []Value) Value   { return numericUnary("round", args, math.Round) }

func numericFold(name string, args []Value, better func(a, b float64) bool) Value {
	if bad, ok := firstBad(args); ok {
		return bad
	}
	allInt := true
	best := 0.0
	for i, a := range args {
		v, ok := a.RealValue()
		if !ok {
			return ErrorValue(name + ": non-numeric operand")
		}
		if a.Kind() != KindInt {
			allInt = false
		}
		if i == 0 || better(v, best) {
			best = v
		}
	}
	if allInt {
		return Int(int64(best))
	}
	return Real(best)
}

func fnMin(args []Value) Value {
	return numericFold("min", args, func(a, b float64) bool { return a < b })
}

func fnMax(args []Value) Value {
	return numericFold("max", args, func(a, b float64) bool { return a > b })
}

func fnIfThenElse([]Value) Value {
	// Handled lazily in callExpr.Eval; reaching here is a bug.
	return ErrorValue("ifThenElse: internal evaluation order error")
}

func fnIsUndefined(args []Value) Value { return Bool(args[0].IsUndefined()) }
func fnIsError(args []Value) Value     { return Bool(args[0].IsError()) }

// fnStringListMember reports whether item appears in a comma-separated (or
// custom-delimited) list, compared case-insensitively like Condor's ==.
func fnStringListMember(args []Value) Value {
	if bad, ok := firstBad(args); ok {
		return bad
	}
	item, ok := args[0].StringValue()
	if !ok {
		return ErrorValue("stringListMember: item must be a string")
	}
	list, ok := args[1].StringValue()
	if !ok {
		return ErrorValue("stringListMember: list must be a string")
	}
	delims := ", "
	if len(args) == 3 {
		d, ok := args[2].StringValue()
		if !ok {
			return ErrorValue("stringListMember: delimiters must be a string")
		}
		delims = d
	}
	for _, member := range strings.FieldsFunc(list, func(r rune) bool {
		return strings.ContainsRune(delims, r)
	}) {
		if strings.EqualFold(member, item) {
			return Bool(true)
		}
	}
	return Bool(false)
}
