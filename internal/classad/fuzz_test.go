package classad

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser's robustness contract: any input either
// yields an error or an expression that (a) evaluates without panicking and
// (b) round-trips through String() to an equivalent value. Run with
// `go test -fuzz=FuzzParse ./internal/classad` for continuous fuzzing; the
// seed corpus below runs in every ordinary `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		``,
		`1 + 2 * 3`,
		`TARGET.Name == "slot1@node3"`,
		`my.a && target.b || !c`,
		`ifThenElse(x > 2, min(1, 2), strcat("a", 1))`,
		`((((1))))`,
		`"unterminated`,
		`1 / 0 == error`,
		`undefined || true`,
		`-2.5e3 % 7`,
		`stringListMember("a", "a,b;c", ";,")`,
		`a.b.c`,
		`!!!!!true`,
		`x == y == z`,
		"\"escape\\\\\\\"seq\\n\"",
		`9223372036854775807 + 1`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return // bound parser work per input
		}
		expr, err := Parse(src)
		if err != nil {
			return // rejected inputs are fine
		}
		// Accepted inputs must evaluate and round-trip without panic.
		v1 := expr.Eval(Env{})
		rendered := expr.String()
		expr2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered expression does not re-parse: %q -> %q: %v", src, rendered, err)
		}
		v2 := expr2.Eval(Env{})
		if v1.String() != v2.String() {
			t.Fatalf("round trip changed value: %q -> %q (%v vs %v)", src, rendered, v1, v2)
		}
	})
}

// FuzzMatch fuzzes matchmaking with attribute values flowing into both
// ads: Match must never panic, whatever the requirements say.
func FuzzMatch(f *testing.F) {
	f.Add(`TARGET.X > MY.Y`, int64(3), int64(4))
	f.Add(`Name == "a" && missing`, int64(0), int64(0))
	f.Add(`error || true`, int64(1), int64(2))
	f.Fuzz(func(t *testing.T, req string, x, y int64) {
		if len(req) > 1024 {
			return
		}
		machine := NewAd()
		machine.SetInt("X", x)
		machine.SetStr("Name", "a")
		if err := machine.SetExpr("Requirements", req); err != nil {
			return
		}
		jobAd := NewAd()
		jobAd.SetInt("Y", y)
		_ = Match(machine, jobAd) // must not panic
	})
}

func TestFuzzSeedsAreInteresting(t *testing.T) {
	// Sanity: at least some seeds parse and some are rejected, so the fuzz
	// contract exercises both paths.
	parsed, rejected := 0, 0
	for _, s := range []string{`1 + 2 * 3`, `"unterminated`, `a.b.c`, `!!!!!true`} {
		if _, err := Parse(s); err != nil {
			rejected++
		} else {
			parsed++
		}
	}
	if parsed == 0 || rejected == 0 {
		t.Errorf("seed mix degenerate: %d parsed, %d rejected", parsed, rejected)
	}
	_ = strings.TrimSpace("")
}
