package classad

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokReal
	tokString
	tokOp // one of the operator/punctuation strings below
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the source, for diagnostics
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of expression"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer splits a ClassAd expression into tokens.
type lexer struct {
	src string
	pos int
}

var operators = []string{
	// Longest first so that multi-character operators win.
	"==", "!=", "<=", ">=", "&&", "||",
	"<", ">", "+", "-", "*", "/", "%", "!", "(", ")", ".", ",",
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]

	switch {
	case c == '"':
		return l.lexString()
	case isDigit(c):
		return l.lexNumber()
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	}
	for _, op := range operators {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.pos += len(op)
			return token{kind: tokOp, text: op, pos: start}, nil
		}
	}
	return token{}, fmt.Errorf("classad: unexpected character %q at offset %d", c, start)
}

// lexString scans a double-quoted literal and decodes it with Go's escape
// syntax (strconv.Unquote), which is a superset of the escapes ClassAd
// submit files use and exactly matches what Value.String emits — so every
// rendered string value re-parses, control characters included.
func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '"':
			l.pos++
			decoded, err := strconv.Unquote(l.src[start:l.pos])
			if err != nil {
				return token{}, fmt.Errorf("classad: invalid string literal at offset %d: %v", start, err)
			}
			return token{kind: tokString, text: decoded, pos: start}, nil
		case '\\':
			l.pos += 2 // skip the escaped character, whatever it is
		case '\n':
			return token{}, fmt.Errorf("classad: newline in string literal at offset %d", l.pos)
		default:
			l.pos++
		}
	}
	return token{}, fmt.Errorf("classad: unterminated string starting at offset %d", start)
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	isReal := false
	if l.pos < len(l.src) && l.src[l.pos] == '.' &&
		l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
		isReal = true
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		// Exponent: e[+-]?digits
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			isReal = true
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = save // not an exponent after all (e.g. "2e" is 2 then ident e)
		}
	}
	kind := tokInt
	if isReal {
		kind = tokReal
	}
	return token{kind: kind, text: l.src[start:l.pos], pos: start}, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}
func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || isDigit(c)
}
