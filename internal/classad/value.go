// Package classad implements the subset of the HTCondor ClassAd language the
// scheduler integration needs: typed attribute lists ("ads"), an expression
// language with three-valued logic, and symmetric matchmaking between job
// and machine ads.
//
// The paper's system (§IV-D1) drives Condor entirely through ClassAds: each
// compute node advertises its Xeon Phi devices and card memory; each job
// advertises device/memory requests; and the external knapsack scheduler
// pins jobs to nodes by rewriting the job's Requirements expression to
// `Name == "<slotId>@<NodeName>"` via condor_qedit. Reproducing that
// integration faithfully — including the fact that a pinned job still flows
// through ordinary FIFO matchmaking on the next negotiation cycle — requires
// a working expression evaluator, which this package provides.
//
// Supported expressions: integer/real/string/boolean literals, attribute
// references (case-insensitive, optionally scoped with MY. or TARGET.),
// arithmetic (+ - * / %), comparisons (== != < <= > >=; string equality is
// case-insensitive as in Condor), boolean connectives (&& || !) with
// ClassAd three-valued logic, and parentheses. Undefined and Error values
// propagate per the ClassAd semantics.
package classad

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates Value variants.
type Kind int

// Value kinds.
const (
	KindUndefined Kind = iota
	KindError
	KindBool
	KindInt
	KindReal
	KindString
)

func (k Kind) String() string {
	switch k {
	case KindUndefined:
		return "undefined"
	case KindError:
		return "error"
	case KindBool:
		return "boolean"
	case KindInt:
		return "integer"
	case KindReal:
		return "real"
	case KindString:
		return "string"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a ClassAd value: one of undefined, error, boolean, integer,
// real, or string. The zero Value is Undefined.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
}

// Constructors.

// Undefined returns the undefined value.
func Undefined() Value { return Value{kind: KindUndefined} }

// ErrorValue returns the error value carrying a diagnostic message.
func ErrorValue(msg string) Value { return Value{kind: KindError, s: msg} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Real returns a real (floating-point) value.
func Real(f float64) Value { return Value{kind: KindReal, f: f} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsUndefined reports whether v is the undefined value.
func (v Value) IsUndefined() bool { return v.kind == KindUndefined }

// IsError reports whether v is the error value.
func (v Value) IsError() bool { return v.kind == KindError }

// BoolValue returns the boolean content; ok is false for non-booleans.
func (v Value) BoolValue() (b, ok bool) { return v.b, v.kind == KindBool }

// IntValue returns the integer content; ok is false for non-integers.
func (v Value) IntValue() (int64, bool) { return v.i, v.kind == KindInt }

// RealValue returns the numeric content of an integer or real value.
func (v Value) RealValue() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindReal:
		return v.f, true
	}
	return 0, false
}

// StringValue returns the string content; ok is false for non-strings.
func (v Value) StringValue() (string, bool) { return v.s, v.kind == KindString }

// String renders the value in ClassAd literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindError:
		if v.s != "" {
			return "error(" + v.s + ")"
		}
		return "error"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindReal:
		// Non-finite reals have no literal syntax; arithmetic never
		// produces them (see arith), but a caller could construct one.
		if math.IsInf(v.f, 0) || math.IsNaN(v.f) {
			return "error(non-finite real)"
		}
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		// Keep the rendering re-parseable *as a real*: a value like
		// -2500.0 would otherwise print as "-2500" and round-trip to an
		// integer, changing the semantics of type-sensitive operators
		// (integer vs real division, modulo).
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case KindString:
		return strconv.Quote(v.s)
	}
	return "error(bad kind)"
}

// isNumeric reports whether v is an integer or real.
func (v Value) isNumeric() bool { return v.kind == KindInt || v.kind == KindReal }

// arith applies a binary arithmetic operator with ClassAd promotion rules:
// int op int stays int (except /, which stays int with truncation, as in
// Condor); any real operand promotes the result to real. Undefined operands
// yield undefined; anything else that cannot be computed yields error.
func arith(op string, a, b Value) Value {
	if a.IsError() {
		return a
	}
	if b.IsError() {
		return b
	}
	if a.IsUndefined() || b.IsUndefined() {
		return Undefined()
	}
	if !a.isNumeric() || !b.isNumeric() {
		return ErrorValue(fmt.Sprintf("%s: non-numeric operand (%s, %s)", op, a.kind, b.kind))
	}
	if a.kind == KindInt && b.kind == KindInt {
		switch op {
		case "+":
			return Int(a.i + b.i)
		case "-":
			return Int(a.i - b.i)
		case "*":
			return Int(a.i * b.i)
		case "/":
			if b.i == 0 {
				return ErrorValue("division by zero")
			}
			return Int(a.i / b.i)
		case "%":
			if b.i == 0 {
				return ErrorValue("modulo by zero")
			}
			return Int(a.i % b.i)
		}
		return ErrorValue("unknown arithmetic operator " + op)
	}
	af, _ := a.RealValue()
	bf, _ := b.RealValue()
	var res float64
	switch op {
	case "+":
		res = af + bf
	case "-":
		res = af - bf
	case "*":
		res = af * bf
	case "/":
		if bf == 0 {
			return ErrorValue("division by zero")
		}
		res = af / bf
	case "%":
		return ErrorValue("modulo on real operands")
	default:
		return ErrorValue("unknown arithmetic operator " + op)
	}
	// Overflow to infinity (or NaN) is an error, not a value: non-finite
	// reals have no literal syntax and no sensible comparison semantics.
	if math.IsInf(res, 0) || math.IsNaN(res) {
		return ErrorValue("non-finite arithmetic result")
	}
	return Real(res)
}

// compare applies a comparison operator. String equality/inequality is
// case-insensitive (Condor's == on strings); ordering comparisons on strings
// use case-insensitive lexicographic order. Mixed string/number comparison
// is an error; undefined operands yield undefined.
func compare(op string, a, b Value) Value {
	if a.IsError() {
		return a
	}
	if b.IsError() {
		return b
	}
	if a.IsUndefined() || b.IsUndefined() {
		return Undefined()
	}
	switch {
	case a.isNumeric() && b.isNumeric():
		af, _ := a.RealValue()
		bf, _ := b.RealValue()
		return Bool(cmpOrd(op, cmpFloat(af, bf)))
	case a.kind == KindString && b.kind == KindString:
		return Bool(cmpOrd(op, strings.Compare(strings.ToLower(a.s), strings.ToLower(b.s))))
	case a.kind == KindBool && b.kind == KindBool:
		switch op {
		case "==":
			return Bool(a.b == b.b)
		case "!=":
			return Bool(a.b != b.b)
		}
		return ErrorValue("ordering comparison on booleans")
	}
	return ErrorValue(fmt.Sprintf("%s: mismatched operand types (%s, %s)", op, a.kind, b.kind))
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpOrd(op string, c int) bool {
	switch op {
	case "==":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

// and implements ClassAd three-valued conjunction:
// false && anything = false (even error, per strictness shortcut on the
// left; we follow the common semantics where false dominates undefined).
func and(a, b Value) Value {
	if af, ok := a.BoolValue(); ok && !af {
		return Bool(false)
	}
	if bf, ok := b.BoolValue(); ok && !bf {
		return Bool(false)
	}
	if a.IsError() {
		return a
	}
	if b.IsError() {
		return b
	}
	if a.IsUndefined() || b.IsUndefined() {
		return Undefined()
	}
	af, aok := a.BoolValue()
	bf, bok := b.BoolValue()
	if !aok || !bok {
		return ErrorValue("&&: non-boolean operand")
	}
	return Bool(af && bf)
}

// or implements ClassAd three-valued disjunction: true dominates undefined.
func or(a, b Value) Value {
	if af, ok := a.BoolValue(); ok && af {
		return Bool(true)
	}
	if bf, ok := b.BoolValue(); ok && bf {
		return Bool(true)
	}
	if a.IsError() {
		return a
	}
	if b.IsError() {
		return b
	}
	if a.IsUndefined() || b.IsUndefined() {
		return Undefined()
	}
	af, aok := a.BoolValue()
	bf, bok := b.BoolValue()
	if !aok || !bok {
		return ErrorValue("||: non-boolean operand")
	}
	return Bool(af || bf)
}

// not implements three-valued negation.
func not(a Value) Value {
	if a.IsError() || a.IsUndefined() {
		return a
	}
	if b, ok := a.BoolValue(); ok {
		return Bool(!b)
	}
	return ErrorValue("!: non-boolean operand")
}

// neg implements unary numeric negation.
func neg(a Value) Value {
	if a.IsError() || a.IsUndefined() {
		return a
	}
	switch a.kind {
	case KindInt:
		return Int(-a.i)
	case KindReal:
		return Real(-a.f)
	}
	return ErrorValue("unary -: non-numeric operand")
}
