package classad

import (
	"strings"
	"testing"
)

// evalStr parses and evaluates src with no environment.
func evalStr(t *testing.T, src string) Value {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return e.Eval(Env{})
}

func wantInt(t *testing.T, src string, want int64) {
	t.Helper()
	v := evalStr(t, src)
	got, ok := v.IntValue()
	if !ok || got != want {
		t.Errorf("eval(%q) = %v, want %d", src, v, want)
	}
}

func wantReal(t *testing.T, src string, want float64) {
	t.Helper()
	v := evalStr(t, src)
	got, ok := v.RealValue()
	if !ok || v.Kind() != KindReal || got != want {
		t.Errorf("eval(%q) = %v, want real %v", src, v, want)
	}
}

func wantBool(t *testing.T, src string, want bool) {
	t.Helper()
	v := evalStr(t, src)
	got, ok := v.BoolValue()
	if !ok || got != want {
		t.Errorf("eval(%q) = %v, want %v", src, v, want)
	}
}

func TestArithmetic(t *testing.T) {
	wantInt(t, "1 + 2", 3)
	wantInt(t, "10 - 4", 6)
	wantInt(t, "6 * 7", 42)
	wantInt(t, "7 / 2", 3) // integer division truncates
	wantInt(t, "7 % 3", 1)
	wantInt(t, "2 + 3 * 4", 14)   // precedence
	wantInt(t, "(2 + 3) * 4", 20) // parens
	wantInt(t, "-5 + 2", -3)      // unary minus
	wantInt(t, "- - 5", 5)        // nested unary
	wantReal(t, "7.0 / 2", 3.5)   // real promotion
	wantReal(t, "1 + 0.5", 1.5)
	wantReal(t, "2.5e2 / 10", 25.0) // exponent literal
}

func TestDivisionByZero(t *testing.T) {
	if v := evalStr(t, "1 / 0"); !v.IsError() {
		t.Errorf("1/0 = %v, want error", v)
	}
	if v := evalStr(t, "1 % 0"); !v.IsError() {
		t.Errorf("1%%0 = %v, want error", v)
	}
	if v := evalStr(t, "1.0 / 0"); !v.IsError() {
		t.Errorf("1.0/0 = %v, want error", v)
	}
}

func TestComparisons(t *testing.T) {
	wantBool(t, "3 < 4", true)
	wantBool(t, "3 >= 4", false)
	wantBool(t, "3 == 3.0", true) // mixed numeric
	wantBool(t, "3 != 4", true)
	wantBool(t, `"abc" == "ABC"`, true) // case-insensitive, as in Condor
	wantBool(t, `"abc" == "abd"`, false)
	wantBool(t, `"abc" < "abd"`, true)
	wantBool(t, "true == true", true)
	wantBool(t, "true != false", true)
}

func TestMixedTypeComparisonIsError(t *testing.T) {
	if v := evalStr(t, `"abc" == 3`); !v.IsError() {
		t.Errorf("string==int = %v, want error", v)
	}
	if v := evalStr(t, `true < false`); !v.IsError() {
		t.Errorf("bool ordering = %v, want error", v)
	}
}

func TestBooleanLogic(t *testing.T) {
	wantBool(t, "true && true", true)
	wantBool(t, "true && false", false)
	wantBool(t, "false || true", true)
	wantBool(t, "false || false", false)
	wantBool(t, "!true", false)
	wantBool(t, "!(1 > 2)", true)
	wantBool(t, "true || false && false", true) // && binds tighter
}

func TestThreeValuedLogic(t *testing.T) {
	// Undefined comes from referencing a missing attribute.
	wantBool(t, "missing && false", false) // false dominates undefined
	wantBool(t, "missing || true", true)   // true dominates undefined
	if v := evalStr(t, "missing && true"); !v.IsUndefined() {
		t.Errorf("undefined && true = %v, want undefined", v)
	}
	if v := evalStr(t, "missing || false"); !v.IsUndefined() {
		t.Errorf("undefined || false = %v, want undefined", v)
	}
	if v := evalStr(t, "!missing"); !v.IsUndefined() {
		t.Errorf("!undefined = %v, want undefined", v)
	}
	if v := evalStr(t, "missing + 1"); !v.IsUndefined() {
		t.Errorf("undefined + 1 = %v, want undefined", v)
	}
	if v := evalStr(t, "missing == 1"); !v.IsUndefined() {
		t.Errorf("undefined == 1 = %v, want undefined", v)
	}
}

func TestLiteralKeywords(t *testing.T) {
	wantBool(t, "TRUE", true)
	wantBool(t, "False", false)
	if v := evalStr(t, "UNDEFINED"); !v.IsUndefined() {
		t.Errorf("undefined literal = %v", v)
	}
	if v := evalStr(t, "error && true"); !v.IsError() {
		t.Errorf("error propagation = %v, want error", v)
	}
}

func TestStringEscapes(t *testing.T) {
	v := evalStr(t, `"a\"b\\c\nd"`)
	s, ok := v.StringValue()
	if !ok || s != "a\"b\\c\nd" {
		t.Errorf("escaped string = %q", s)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", `"unterminated`, "1 2", "&&", "my", "my.",
		"1 @ 2", `"bad \q escape"`, "my.()",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestAttributeResolution(t *testing.T) {
	ad := NewAd()
	ad.SetInt("Memory", 8192)
	ad.SetStr("Name", "slot1@node3")
	if v := ad.Eval("memory"); v.String() != "8192" {
		t.Errorf("case-insensitive lookup failed: %v", v)
	}
	if v := ad.Eval("nonexistent"); !v.IsUndefined() {
		t.Errorf("missing attr = %v, want undefined", v)
	}
}

func TestAttributeExprChaining(t *testing.T) {
	ad := NewAd()
	ad.SetInt("PhiMemory", 8192)
	ad.MustSetExpr("FreeMemory", "PhiMemory - 2048")
	v := ad.Eval("FreeMemory")
	if i, ok := v.IntValue(); !ok || i != 6144 {
		t.Errorf("chained attr = %v, want 6144", v)
	}
}

func TestCircularReferenceDetected(t *testing.T) {
	ad := NewAd()
	ad.MustSetExpr("A", "B + 1")
	ad.MustSetExpr("B", "A + 1")
	v := ad.Eval("A")
	if !v.IsError() {
		t.Errorf("circular reference = %v, want error", v)
	}
}

func TestScopedReferences(t *testing.T) {
	machine := NewAd()
	machine.SetInt("PhiFreeMemory", 4096)
	machine.SetStr("Name", "slot1@node2")
	job := NewAd()
	job.SetInt("RequestPhiMemory", 1000)
	job.MustSetExpr("Requirements", "TARGET.PhiFreeMemory >= MY.RequestPhiMemory")
	v := job.EvalWithTarget("Requirements", machine)
	if b, ok := v.BoolValue(); !ok || !b {
		t.Errorf("scoped requirements = %v, want true", v)
	}
}

func TestUnscopedFallsThroughToTarget(t *testing.T) {
	machine := NewAd()
	machine.SetInt("PhiFreeMemory", 512)
	job := NewAd()
	job.SetInt("RequestPhiMemory", 1000)
	// Unscoped names: RequestPhiMemory in MY, PhiFreeMemory in TARGET.
	job.MustSetExpr("Requirements", "PhiFreeMemory >= RequestPhiMemory")
	v := job.EvalWithTarget("Requirements", machine)
	if b, ok := v.BoolValue(); !ok || b {
		t.Errorf("requirements = %v, want false (512 < 1000)", v)
	}
}

func TestMatchSymmetric(t *testing.T) {
	machine := NewAd()
	machine.SetStr("Name", "slot1@node0")
	machine.SetInt("PhiDevices", 1)
	machine.SetInt("PhiFreeMemory", 8192)
	machine.MustSetExpr("Requirements", "TARGET.RequestPhiMemory <= MY.PhiFreeMemory")

	job := NewAd()
	job.SetInt("RequestPhiMemory", 1250)
	job.MustSetExpr("Requirements", "TARGET.PhiDevices >= 1")

	if !Match(machine, job) {
		t.Error("compatible ads did not match")
	}

	big := NewAd()
	big.SetInt("RequestPhiMemory", 9999)
	big.MustSetExpr("Requirements", "TARGET.PhiDevices >= 1")
	if Match(machine, big) {
		t.Error("machine accepted job exceeding free memory")
	}
}

func TestMatchMissingRequirementsAcceptsAll(t *testing.T) {
	a, b := NewAd(), NewAd()
	if !Match(a, b) {
		t.Error("empty ads should match")
	}
}

func TestMatchUndefinedRejects(t *testing.T) {
	a := NewAd()
	a.MustSetExpr("Requirements", "TARGET.NoSuchAttr == 1")
	b := NewAd()
	if Match(a, b) {
		t.Error("undefined requirements accepted a match")
	}
}

func TestQeditPinningScenario(t *testing.T) {
	// The paper's condor_qedit integration: the knapsack scheduler rewrites
	// job Requirements to pin the job to one slot name.
	job := NewAd()
	job.SetInt("RequestPhiMemory", 500)
	job.MustSetExpr("Requirements", `Name == "slot1@node4"`)

	right := NewAd()
	right.SetStr("Name", "slot1@node4")
	wrong := NewAd()
	wrong.SetStr("Name", "slot1@node5")

	if !Match(job, right) {
		t.Error("pinned job did not match its designated node")
	}
	if Match(job, wrong) {
		t.Error("pinned job matched a different node")
	}
}

func TestRank(t *testing.T) {
	job := NewAd()
	job.MustSetExpr("Rank", "TARGET.PhiFreeMemory")
	m1 := NewAd()
	m1.SetInt("PhiFreeMemory", 2048)
	m2 := NewAd()
	m2.SetInt("PhiFreeMemory", 8192)
	if Rank(job, m1) >= Rank(job, m2) {
		t.Error("rank did not prefer the machine with more free memory")
	}
	if Rank(NewAd(), m1) != 0 {
		t.Error("missing Rank should default to 0")
	}
}

func TestAdStringRoundTrips(t *testing.T) {
	ad := NewAd()
	ad.SetInt("X", 3)
	ad.MustSetExpr("Requirements", "X > 2 && Y < 5")
	s := ad.String()
	if !strings.Contains(s, "Requirements") || !strings.Contains(s, "X = 3") {
		t.Errorf("Ad.String() = %q", s)
	}
	// Every attribute's rendered expression must re-parse.
	for _, name := range ad.Names() {
		expr, _ := ad.lookup(name)
		if _, err := Parse(expr.String()); err != nil {
			t.Errorf("rendered expr %q does not re-parse: %v", expr.String(), err)
		}
	}
}

func TestExprStringRoundTripPreservesValue(t *testing.T) {
	srcs := []string{
		"1 + 2 * 3",
		"(1 + 2) * 3",
		"a && b || !c",
		`Name == "slot1@node2" && RequestPhiMemory <= 8192`,
		"-x + 4 >= 2.5",
	}
	env := Env{My: NewAd()}
	env.My.SetInt("a", 0) // force bool errors to be stable: unused
	for _, src := range srcs {
		e1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", e1.String(), err)
		}
		v1, v2 := e1.Eval(Env{}), e2.Eval(Env{})
		if v1.String() != v2.String() {
			t.Errorf("round trip of %q changed value: %v vs %v", src, v1, v2)
		}
	}
}

func TestClone(t *testing.T) {
	a := NewAd()
	a.SetInt("X", 1)
	b := a.Clone()
	b.SetInt("X", 2)
	if v, _ := a.Eval("X").IntValue(); v != 1 {
		t.Error("Clone is not independent")
	}
}

func TestDelete(t *testing.T) {
	a := NewAd()
	a.SetInt("X", 1)
	a.Delete("x")
	if a.Has("X") {
		t.Error("Delete (case-insensitive) failed")
	}
}

func TestValueStrings(t *testing.T) {
	cases := map[string]Value{
		"undefined": Undefined(),
		"true":      Bool(true),
		"42":        Int(42),
		"2.5":       Real(2.5),
		`"hi"`:      Str("hi"),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", v.Kind(), got, want)
		}
	}
}
