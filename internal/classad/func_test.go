package classad

import "testing"

func TestStrcat(t *testing.T) {
	v := evalStr(t, `strcat("slot", 1, "@", "node", 3)`)
	if s, _ := v.StringValue(); s != "slot1@node3" {
		t.Errorf("strcat = %v", v)
	}
	if v := evalStr(t, `strcat()`); v.String() != `""` {
		t.Errorf("empty strcat = %v", v)
	}
}

func TestSubstr(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`substr("abcdef", 2)`, "cdef"},
		{`substr("abcdef", 2, 2)`, "cd"},
		{`substr("abcdef", -2)`, "ef"},      // negative offset: from end
		{`substr("abcdef", 0, -2)`, "abcd"}, // negative length: trim end
		{`substr("abcdef", 10)`, ""},        // offset past end
		{`substr("abcdef", 0, 100)`, "abcdef"},
	}
	for _, c := range cases {
		v := evalStr(t, c.src)
		if s, _ := v.StringValue(); s != c.want {
			t.Errorf("%s = %v, want %q", c.src, v, c.want)
		}
	}
}

func TestStrlenAndCase(t *testing.T) {
	wantInt(t, `strlen("hello")`, 5)
	if v := evalStr(t, `toLower("AbC")`); v.String() != `"abc"` {
		t.Errorf("toLower = %v", v)
	}
	if v := evalStr(t, `toUpper("AbC")`); v.String() != `"ABC"` {
		t.Errorf("toUpper = %v", v)
	}
}

func TestConversions(t *testing.T) {
	wantInt(t, `int(3.9)`, 3) // truncation
	wantInt(t, `int("42")`, 42)
	wantInt(t, `int(true)`, 1)
	wantReal(t, `real(3)`, 3)
	wantReal(t, `real("2.5")`, 2.5)
	if v := evalStr(t, `string(42)`); v.String() != `"42"` {
		t.Errorf("string(42) = %v", v)
	}
	if v := evalStr(t, `int("nope")`); !v.IsError() {
		t.Errorf("int(nope) = %v, want error", v)
	}
}

func TestRounding(t *testing.T) {
	wantInt(t, `floor(2.9)`, 2)
	wantInt(t, `ceiling(2.1)`, 3)
	wantInt(t, `round(2.5)`, 3)
	wantInt(t, `floor(7)`, 7) // integers pass through
	wantInt(t, `floor(-2.5)`, -3)
}

func TestMinMax(t *testing.T) {
	wantInt(t, `min(3, 1, 2)`, 1)
	wantInt(t, `max(3, 1, 2)`, 3)
	wantReal(t, `min(3, 0.5)`, 0.5) // any real operand promotes
	wantInt(t, `min(4)`, 4)
}

func TestIfThenElse(t *testing.T) {
	wantInt(t, `ifThenElse(1 < 2, 10, 20)`, 10)
	wantInt(t, `ifThenElse(1 > 2, 10, 20)`, 20)
	// Lazy: the untaken branch may be an error without poisoning the result.
	wantInt(t, `ifThenElse(true, 1, 1/0)`, 1)
	if v := evalStr(t, `ifThenElse(undefined, 1, 2)`); !v.IsError() {
		t.Errorf("ifThenElse(undefined) = %v, want error", v)
	}
}

func TestIsUndefinedIsError(t *testing.T) {
	wantBool(t, `isUndefined(nosuchattr)`, true)
	wantBool(t, `isUndefined(1)`, false)
	wantBool(t, `isError(1/0)`, true)
	wantBool(t, `isError(1)`, false)
}

func TestStringListMember(t *testing.T) {
	wantBool(t, `stringListMember("KM", "KM, MC, MD")`, true)
	wantBool(t, `stringListMember("km", "KM, MC, MD")`, true) // case-insensitive
	wantBool(t, `stringListMember("BT", "KM, MC, MD")`, false)
	wantBool(t, `stringListMember("b", "a;b;c", ";")`, true)
}

func TestFunctionErrors(t *testing.T) {
	for _, src := range []string{
		`nosuchfn(1)`,
		`strlen(42)`,
		`substr(1, 2)`,
		`min("a")`,
		`strlen()`,         // arity
		`ifThenElse(1, 2)`, // arity
	} {
		if v := evalStr(t, src); !v.IsError() {
			t.Errorf("%s = %v, want error", src, v)
		}
	}
}

func TestFunctionUndefinedPropagation(t *testing.T) {
	if v := evalStr(t, `strlen(missing)`); !v.IsUndefined() {
		t.Errorf("strlen(undefined) = %v, want undefined", v)
	}
	if v := evalStr(t, `min(1, missing)`); !v.IsUndefined() {
		t.Errorf("min with undefined = %v, want undefined", v)
	}
}

func TestFunctionsCaseInsensitiveNames(t *testing.T) {
	wantInt(t, `STRLEN("ab")`, 2)
	wantInt(t, `Min(2, 1)`, 1)
}

func TestFunctionsInAds(t *testing.T) {
	// A realistic use: a machine that only accepts jobs from a named list
	// of workloads.
	machine := NewAd()
	machine.MustSetExpr("Requirements",
		`stringListMember(TARGET.WorkloadName, "KM, SG, MC")`)
	jobAd := NewAd()
	jobAd.SetStr("WorkloadName", "SG")
	if !Match(machine, jobAd) {
		t.Error("list-based requirements rejected a listed workload")
	}
	jobAd.SetStr("WorkloadName", "BT")
	if Match(machine, jobAd) {
		t.Error("list-based requirements accepted an unlisted workload")
	}
}

func TestCallStringRoundTrip(t *testing.T) {
	srcs := []string{
		`strcat("a", 1)`,
		`ifThenElse(x > 2, min(1, 2), max(3, 4))`,
		`substr("abc", 1, 1)`,
	}
	for _, src := range srcs {
		e1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", e1.String(), err)
		}
		if e1.Eval(Env{}).String() != e2.Eval(Env{}).String() {
			t.Errorf("round trip of %q changed value", src)
		}
	}
}

func TestCallParseErrors(t *testing.T) {
	for _, src := range []string{
		`min(1,`, `min(1`, `min(,1)`, `min(1,)`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}
