package classad

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a parsed ClassAd expression.
type Expr interface {
	// Eval evaluates the expression in an environment. Env is passed by
	// value: it is three words, and a pointer parameter would force a heap
	// allocation at every attribute dereference (the call is through an
	// interface, so escape analysis must assume the pointee escapes).
	Eval(env Env) Value
	// String renders the expression in parseable ClassAd syntax.
	String() string
}

// Env supplies attribute bindings during evaluation. My is the ad the
// expression belongs to; Target is the candidate ad on the other side of the
// match. An unscoped attribute reference resolves first in My, then in
// Target (HTCondor's resolution order during matchmaking).
type Env struct {
	My     *Ad
	Target *Ad
	// depth guards against circular attribute references
	// (e.g. A = B; B = A), which would otherwise recurse forever.
	depth int
}

const maxEvalDepth = 64

// --- AST node types ---

type litExpr struct{ v Value }

func (e litExpr) Eval(Env) Value { return e.v }
func (e litExpr) String() string { return e.v.String() }

// attrExpr is an attribute reference, optionally scoped ("", "my", "target").
type attrExpr struct {
	scope string // "", "my", or "target" (normalized lowercase)
	name  string // original spelling, matched case-insensitively
	canon string // canonical (interned lowercase) spelling, fixed at parse
}

func (e attrExpr) Eval(env Env) Value {
	if env.depth >= maxEvalDepth {
		return ErrorValue("attribute reference cycle involving " + e.name)
	}
	lookup := func(ad *Ad, searchOther *Ad) Value {
		if ad == nil {
			return Undefined()
		}
		expr, ok := ad.lookupCanon(e.canon)
		if !ok {
			return Undefined()
		}
		// Attributes evaluate in their owning ad's scope.
		child := Env{My: ad, Target: searchOther, depth: env.depth + 1}
		return expr.Eval(child)
	}
	switch e.scope {
	case "my":
		return lookup(env.My, env.Target)
	case "target":
		return lookup(env.Target, env.My)
	default:
		if env.My != nil {
			if _, ok := env.My.lookupCanon(e.canon); ok {
				return lookup(env.My, env.Target)
			}
		}
		if env.Target != nil {
			if _, ok := env.Target.lookupCanon(e.canon); ok {
				return lookup(env.Target, env.My)
			}
		}
		return Undefined()
	}
}

func (e attrExpr) String() string {
	switch e.scope {
	case "my":
		return "MY." + e.name
	case "target":
		return "TARGET." + e.name
	}
	return e.name
}

type unaryExpr struct {
	op string
	x  Expr
}

func (e unaryExpr) Eval(env Env) Value {
	v := e.x.Eval(env)
	switch e.op {
	case "!":
		return not(v)
	case "-":
		return neg(v)
	}
	return ErrorValue("unknown unary operator " + e.op)
}

func (e unaryExpr) String() string { return e.op + parenthesize(e.x) }

type binaryExpr struct {
	op   string
	x, y Expr
}

func (e binaryExpr) Eval(env Env) Value {
	switch e.op {
	case "&&":
		return and(e.x.Eval(env), e.y.Eval(env))
	case "||":
		return or(e.x.Eval(env), e.y.Eval(env))
	case "+", "-", "*", "/", "%":
		return arith(e.op, e.x.Eval(env), e.y.Eval(env))
	case "==", "!=", "<", "<=", ">", ">=":
		return compare(e.op, e.x.Eval(env), e.y.Eval(env))
	}
	return ErrorValue("unknown operator " + e.op)
}

func (e binaryExpr) String() string {
	return parenthesize(e.x) + " " + e.op + " " + parenthesize(e.y)
}

func parenthesize(e Expr) string {
	if _, ok := e.(binaryExpr); ok {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// --- Parser ---

// Parse parses a ClassAd expression.
func Parse(src string) (Expr, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("classad: unexpected %s after expression (offset %d)", p.tok, p.tok.pos)
	}
	return e, nil
}

// MustParse parses src and panics on error. For use with expression
// constants whose validity is guaranteed by construction.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expectOp(op string) error {
	if p.tok.kind != tokOp || p.tok.text != op {
		return fmt.Errorf("classad: expected %q, found %s (offset %d)", op, p.tok, p.tok.pos)
	}
	return p.advance()
}

func (p *parser) atOp(ops ...string) (string, bool) {
	if p.tok.kind != tokOp {
		return "", false
	}
	for _, op := range ops {
		if p.tok.text == op {
			return op, true
		}
	}
	return "", false
}

// Grammar, lowest precedence first:
//   or     := and   ( "||" and   )*
//   and    := eq    ( "&&" eq    )*
//   eq     := rel   ( ("=="|"!=") rel )*
//   rel    := add   ( ("<"|"<="|">"|">=") add )*
//   add    := mul   ( ("+"|"-") mul )*
//   mul    := unary ( ("*"|"/"|"%") unary )*
//   unary  := ("!"|"-") unary | primary
//   primary:= literal | ident ["." ident] | "(" or ")"

func (p *parser) parseBinary(next func() (Expr, error), ops ...string) (Expr, error) {
	x, err := next()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.atOp(ops...)
		if !ok {
			return x, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := next()
		if err != nil {
			return nil, err
		}
		x = binaryExpr{op: op, x: x, y: y}
	}
}

func (p *parser) parseOr() (Expr, error)  { return p.parseBinary(p.parseAnd, "||") }
func (p *parser) parseAnd() (Expr, error) { return p.parseBinary(p.parseEq, "&&") }
func (p *parser) parseEq() (Expr, error)  { return p.parseBinary(p.parseRel, "==", "!=") }
func (p *parser) parseRel() (Expr, error) { return p.parseBinary(p.parseAdd, "<", "<=", ">", ">=") }
func (p *parser) parseAdd() (Expr, error) { return p.parseBinary(p.parseMul, "+", "-") }
func (p *parser) parseMul() (Expr, error) { return p.parseBinary(p.parseUnary, "*", "/", "%") }

func (p *parser) parseUnary() (Expr, error) {
	if op, ok := p.atOp("!", "-"); ok {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: op, x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tokInt:
		i, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("classad: bad integer %q: %v", p.tok.text, err)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return litExpr{Int(i)}, nil
	case tokReal:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, fmt.Errorf("classad: bad real %q: %v", p.tok.text, err)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return litExpr{Real(f)}, nil
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return litExpr{Str(s)}, nil
	case tokIdent:
		return p.parseIdent()
	case tokOp:
		if p.tok.text == "(" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("classad: unexpected %s (offset %d)", p.tok, p.tok.pos)
}

func (p *parser) parseIdent() (Expr, error) {
	name := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, ok := p.atOp("("); ok {
		return p.parseCall(name)
	}
	switch strings.ToLower(name) {
	case "true":
		return litExpr{Bool(true)}, nil
	case "false":
		return litExpr{Bool(false)}, nil
	case "undefined":
		return litExpr{Undefined()}, nil
	case "error":
		return litExpr{ErrorValue("")}, nil
	case "my", "target":
		if _, ok := p.atOp("."); !ok {
			return nil, fmt.Errorf("classad: %s must be followed by .attribute (offset %d)", name, p.tok.pos)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent {
			return nil, fmt.Errorf("classad: expected attribute name after %s., found %s", name, p.tok)
		}
		attr := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return attrExpr{scope: strings.ToLower(name), name: attr, canon: canonLower(attr)}, nil
	}
	return attrExpr{name: name, canon: canonLower(name)}, nil
}

// parseCall parses a built-in function application: name(arg, arg, ...).
// The opening parenthesis is the current token. Unknown functions parse
// fine and evaluate to error, matching Condor's runtime resolution.
func (p *parser) parseCall(name string) (Expr, error) {
	if err := p.advance(); err != nil { // consume "("
		return nil, err
	}
	var args []Expr
	if _, ok := p.atOp(")"); !ok {
		for {
			arg, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
			if _, ok := p.atOp(","); !ok {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return callExpr{name: name, args: args}, nil
}
