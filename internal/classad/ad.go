package classad

import (
	"fmt"
	"sort"
	"strings"
)

// Ad is a ClassAd: an attribute list mapping case-insensitive names to
// expressions (literal values are stored as constant expressions). Machine
// ads describe compute nodes and their Xeon Phi devices; job ads describe
// submitted jobs and their resource requests.
type Ad struct {
	attrs map[string]attr // key: lowercase name
	// version counts mutations (Set/SetExpr/Delete). Matchmaking results
	// depend only on the two ads' contents, so a (version, version) pair
	// identifies a match result exactly; the negotiator's match cache keys
	// on it to skip re-evaluating unchanged pairs (see condor.Pool).
	version uint64
}

type attr struct {
	name string // original spelling, for rendering
	expr Expr
}

// NewAd returns an empty ad.
func NewAd() *Ad { return &Ad{attrs: map[string]attr{}} }

// Set binds name to a literal value, replacing any previous binding.
func (a *Ad) Set(name string, v Value) { a.setExpr(name, litExpr{v}) }

// SetInt, SetStr and SetBool are literal-binding conveniences.
func (a *Ad) SetInt(name string, i int64) { a.Set(name, Int(i)) }
func (a *Ad) SetStr(name, s string)       { a.Set(name, Str(s)) }
func (a *Ad) SetBool(name string, b bool) { a.Set(name, Bool(b)) }

// SetExpr parses src and binds name to the resulting expression.
func (a *Ad) SetExpr(name, src string) error {
	e, err := Parse(src)
	if err != nil {
		return fmt.Errorf("classad: attribute %s: %w", name, err)
	}
	a.setExpr(name, e)
	return nil
}

// MustSetExpr is SetExpr for expressions known valid at compile time.
func (a *Ad) MustSetExpr(name, src string) {
	if err := a.SetExpr(name, src); err != nil {
		panic(err)
	}
}

func (a *Ad) setExpr(name string, e Expr) {
	if a.attrs == nil {
		a.attrs = map[string]attr{}
	}
	a.version++
	a.attrs[canonLower(name)] = attr{name: name, expr: e}
}

// Delete removes an attribute binding if present.
func (a *Ad) Delete(name string) {
	key := canonLower(name)
	if _, ok := a.attrs[key]; ok {
		a.version++
		delete(a.attrs, key)
	}
}

// Version reports the ad's mutation counter. Two calls returning the same
// value guarantee the ad's contents did not change in between, so any value
// derived purely from the contents (e.g. a Match result) is still valid.
func (a *Ad) Version() uint64 { return a.version }

// Has reports whether the ad binds name.
func (a *Ad) Has(name string) bool {
	_, ok := a.lookup(name)
	return ok
}

func (a *Ad) lookup(name string) (Expr, bool) {
	return a.lookupCanon(canonLower(name))
}

// lookupCanon is lookup for a key already in canonical (lowercase) form —
// the evaluator's attribute dereferences pre-canonicalize at parse time so
// the hot path skips the case-folding intern table.
func (a *Ad) lookupCanon(canon string) (Expr, bool) {
	if a == nil || a.attrs == nil {
		return nil, false
	}
	at, ok := a.attrs[canon]
	if !ok {
		return nil, false
	}
	return at.expr, true
}

// Eval evaluates the named attribute in this ad's own scope (no target).
// Missing attributes evaluate to undefined.
func (a *Ad) Eval(name string) Value {
	return a.EvalWithTarget(name, nil)
}

// EvalWithTarget evaluates the named attribute with the given target ad
// available for TARGET. references. Missing attributes are undefined.
func (a *Ad) EvalWithTarget(name string, target *Ad) Value {
	expr, ok := a.lookup(name)
	if !ok {
		return Undefined()
	}
	return expr.Eval(Env{My: a, Target: target})
}

// Clone returns a deep-enough copy: expressions are immutable once parsed,
// so sharing them between the copies is safe. The clone starts at the
// original's version; the two counters advance independently afterwards
// (versions only promise "unchanged since I last looked at this ad").
func (a *Ad) Clone() *Ad {
	c := NewAd()
	for k, v := range a.attrs {
		c.attrs[k] = v
	}
	c.version = a.version
	return c
}

// Names returns the bound attribute names in sorted order.
func (a *Ad) Names() []string {
	names := make([]string, 0, len(a.attrs))
	for _, at := range a.attrs {
		names = append(names, at.name)
	}
	sort.Strings(names)
	return names
}

// String renders the ad in bracketed ClassAd syntax, attributes sorted by
// name for stable output.
func (a *Ad) String() string {
	var sb strings.Builder
	sb.WriteString("[ ")
	for i, name := range a.Names() {
		if i > 0 {
			sb.WriteString("; ")
		}
		expr, _ := a.lookup(name)
		fmt.Fprintf(&sb, "%s = %s", name, expr.String())
	}
	sb.WriteString(" ]")
	return sb.String()
}

// RequirementsAttr is the attribute consulted by matchmaking.
const RequirementsAttr = "Requirements"

// canonRequirements is RequirementsAttr in canonical form, precomputed for
// the matchmaking hot path.
const canonRequirements = "requirements"

// RankAttr orders acceptable matches (higher is better).
const RankAttr = "Rank"

// Match performs symmetric Condor matchmaking between two ads: each side's
// Requirements expression must evaluate to true with the other ad as TARGET.
// A missing Requirements attribute accepts anything (Condor inserts `true`
// when a submit file omits it). Undefined or error results reject the match.
func Match(a, b *Ad) bool {
	return requirementsHold(a, b) && requirementsHold(b, a)
}

func requirementsHold(my, target *Ad) bool {
	expr, ok := my.lookupCanon(canonRequirements)
	if !ok {
		return true
	}
	v := expr.Eval(Env{My: my, Target: target})
	b, isBool := v.BoolValue()
	return isBool && b
}

// Rank evaluates my's Rank against target. A missing or non-numeric Rank is
// 0.0, matching Condor's default.
func Rank(my, target *Ad) float64 {
	expr, ok := my.lookup(RankAttr)
	if !ok {
		return 0
	}
	v := expr.Eval(Env{My: my, Target: target})
	f, ok := v.RealValue()
	if !ok {
		return 0
	}
	return f
}
