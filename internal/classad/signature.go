package classad

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"unicode/utf8"
)

// This file supports autocluster matchmaking (condor.Pool): a canonical,
// collision-free rendering of an ad's match-relevant content, so jobs whose
// ads are equivalent for matchmaking purposes can share one Match evaluation
// per machine. Three pieces live here:
//
//   - canonLower, the allocation-free attribute-name canonicalizer the whole
//     package uses for its case-insensitive lookups (Ad.lookup previously
//     paid a strings.ToLower allocation on every probe — the single largest
//     allocation site of a full simulation run);
//   - TargetRefs, which computes the set of attributes an ad's expression
//     may read from the ad on the other side of a match;
//   - Signer, which renders a job ad's Requirements plus every
//     transitively referenced attribute into a prefix-coded byte signature.

// --- allocation-free lowercase canonicalization ---

// lowerTable is the copy-on-write intern table mapping mixed-case attribute
// spellings to their lowercase form. Attribute vocabularies are tiny and
// fixed (well-known ClassAd names plus whatever a workload generator
// invents), so the table converges after a few ads and reads are lock-free
// thereafter. Concurrent simulations (the parallel sweep drivers) share it
// safely: readers load an immutable snapshot, writers copy-and-swap.
var (
	lowerTable atomic.Pointer[map[string]string]
	lowerMu    sync.Mutex
)

// lowerTableCap bounds the intern table; a pathological caller generating
// unbounded distinct spellings degrades to per-call allocation rather than
// growing the table forever.
const lowerTableCap = 4096

// canonLower returns strings.ToLower(s) without allocating in the steady
// state: already-lowercase ASCII returns s unchanged, and known mixed-case
// spellings resolve through the intern table.
func canonLower(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= utf8.RuneSelf || ('A' <= c && c <= 'Z') {
			return lowerIntern(s)
		}
	}
	return s
}

func lowerIntern(s string) string {
	if m := lowerTable.Load(); m != nil {
		if l, ok := (*m)[s]; ok {
			return l
		}
	}
	lowerMu.Lock()
	defer lowerMu.Unlock()
	old := lowerTable.Load()
	if old != nil {
		if l, ok := (*old)[s]; ok {
			return l
		}
		if len(*old) >= lowerTableCap {
			return strings.ToLower(s)
		}
	}
	next := make(map[string]string, 16)
	if old != nil {
		for k, v := range *old { // order-insensitive copy into a fresh map
			next[k] = v
		}
	}
	l := strings.ToLower(strings.Clone(s))
	next[strings.Clone(s)] = l
	lowerTable.Store(&next)
	return l
}

// --- attribute reference walking ---

// walkRefs visits every attribute reference in e, reporting its normalized
// scope ("", "my", or "target") and lowercase name. Traversal order is the
// expression's syntactic order, so it is deterministic.
func walkRefs(e Expr, visit func(scope, name string)) {
	switch v := e.(type) {
	case attrExpr:
		visit(v.scope, canonLower(v.name))
	case unaryExpr:
		walkRefs(v.x, visit)
	case binaryExpr:
		walkRefs(v.x, visit)
		walkRefs(v.y, visit)
	case callExpr:
		for _, a := range v.args {
			walkRefs(a, visit)
		}
	}
}

// TargetRefs returns the lowercase names of every attribute that evaluating
// a's named attribute could read from the TARGET ad on the other side of a
// match, directly or through attributes of a itself (MY and unscoped
// references recurse into a's own bindings, since those expressions run in
// a's scope and may themselves mention TARGET). Unscoped references are
// included even when a binds them — MY-first resolution would shadow the
// target, so this is a superset — because a superset is always sound for
// signature grouping: it can only split equivalence classes more finely,
// never merge ads that could match differently. The result is sorted.
func (a *Ad) TargetRefs(name string) []string {
	out := map[string]bool{}
	seen := map[string]bool{}
	var visitIn func(e Expr)
	visitIn = func(e Expr) {
		walkRefs(e, func(scope, ref string) {
			if scope == "target" || scope == "" {
				out[ref] = true
			}
			if scope == "my" || scope == "" {
				if !seen[ref] {
					seen[ref] = true
					if expr, ok := a.lookup(ref); ok {
						visitIn(expr)
					}
				}
			}
		})
	}
	root := canonLower(name)
	seen[root] = true
	if expr, ok := a.lookup(root); ok {
		visitIn(expr)
	}
	names := make([]string, 0, len(out))
	for n := range out { // order-insensitive collect; sorted below
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- canonical signature rendering ---

// Signer renders match signatures on reusable buffers, so the per-job
// signature recomputation that follows a qedit is allocation-free in the
// steady state. A Signer is not safe for concurrent use; each condor.Pool
// owns one.
type Signer struct {
	seen    map[string]bool
	work    []string
	scratch []byte
}

// NewSigner returns an empty signer.
func NewSigner() *Signer {
	return &Signer{seen: map[string]bool{}}
}

// AppendSignature appends a canonical rendering of the ad's match-relevant
// content to dst and returns the extended slice. The rendering covers each
// root attribute and, transitively, every attribute an evaluation of those
// roots could read from this ad (MY and unscoped references). Two ads with
// equal signatures for the same roots are indistinguishable to Match against
// any fixed counterpart ad, because every expression either renders into the
// signature or resolves outside this ad.
//
// Each segment is prefix-coded as len(name) ":" name len(expr) ":" expr,
// with an unbound attribute rendered as length -1, so the encoding is
// injective — no choice of attribute values can make two distinct ad
// contents collide.
func (s *Signer) AppendSignature(dst []byte, ad *Ad, roots []string) []byte {
	clear(s.seen)
	s.work = s.work[:0]
	for _, r := range roots {
		s.work = append(s.work, canonLower(r))
	}
	for i := 0; i < len(s.work); i++ {
		name := s.work[i]
		if s.seen[name] {
			continue
		}
		s.seen[name] = true
		dst = strconv.AppendInt(dst, int64(len(name)), 10)
		dst = append(dst, ':')
		dst = append(dst, name...)
		expr, ok := ad.lookup(name)
		if !ok {
			dst = append(dst, "-1:"...)
			continue
		}
		s.scratch = appendExpr(s.scratch[:0], expr)
		dst = strconv.AppendInt(dst, int64(len(s.scratch)), 10)
		dst = append(dst, ':')
		dst = append(dst, s.scratch...)
		walkRefs(expr, func(scope, ref string) {
			if (scope == "" || scope == "my") && !s.seen[ref] {
				s.work = append(s.work, ref)
			}
		})
	}
	return dst
}

// appendExpr renders e in the same syntax as Expr.String, appending to dst
// without intermediate string allocations.
func appendExpr(dst []byte, e Expr) []byte {
	switch v := e.(type) {
	case litExpr:
		return appendValue(dst, v.v)
	case attrExpr:
		switch v.scope {
		case "my":
			dst = append(dst, "MY."...)
		case "target":
			dst = append(dst, "TARGET."...)
		}
		return append(dst, v.name...)
	case unaryExpr:
		dst = append(dst, v.op...)
		return appendParen(dst, v.x)
	case binaryExpr:
		dst = appendParen(dst, v.x)
		dst = append(dst, ' ')
		dst = append(dst, v.op...)
		dst = append(dst, ' ')
		return appendParen(dst, v.y)
	case callExpr:
		dst = append(dst, v.name...)
		dst = append(dst, '(')
		for i, a := range v.args {
			if i > 0 {
				dst = append(dst, ", "...)
			}
			dst = appendExpr(dst, a)
		}
		return append(dst, ')')
	}
	return append(dst, e.String()...)
}

func appendParen(dst []byte, e Expr) []byte {
	if _, ok := e.(binaryExpr); ok {
		dst = append(dst, '(')
		dst = appendExpr(dst, e)
		return append(dst, ')')
	}
	return appendExpr(dst, e)
}

// appendValue renders v exactly as Value.String, appending to dst.
func appendValue(dst []byte, v Value) []byte {
	switch v.kind {
	case KindUndefined:
		return append(dst, "undefined"...)
	case KindError:
		if v.s != "" {
			dst = append(dst, "error("...)
			dst = append(dst, v.s...)
			return append(dst, ')')
		}
		return append(dst, "error"...)
	case KindBool:
		if v.b {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case KindInt:
		return strconv.AppendInt(dst, v.i, 10)
	case KindReal:
		if math.IsInf(v.f, 0) || math.IsNaN(v.f) {
			return append(dst, "error(non-finite real)"...)
		}
		start := len(dst)
		dst = strconv.AppendFloat(dst, v.f, 'g', -1, 64)
		for _, c := range dst[start:] {
			if c == '.' || c == 'e' || c == 'E' {
				return dst
			}
		}
		return append(dst, ".0"...)
	case KindString:
		return strconv.AppendQuote(dst, v.s)
	}
	return append(dst, "error(bad kind)"...)
}
