// Package trace records device offload activity and renders the coprocessor
// usage profiles of the paper's Figs. 2–3: per-job timelines showing when
// each job occupies the Xeon Phi, how wide its offloads are, and how
// concurrent jobs interleave.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"phishare/internal/units"
)

// Interval is one offload's occupancy of a device.
type Interval struct {
	Job       string        `json:"job"`
	Start     units.Tick    `json:"start_ms"`
	End       units.Tick    `json:"end_ms"` // -1 while still running
	Threads   units.Threads `json:"threads"`
	Completed bool          `json:"completed"`
}

// Duration of the interval; zero for still-open intervals.
func (iv Interval) Duration() units.Tick {
	if iv.End < iv.Start {
		return 0
	}
	return iv.End - iv.Start
}

// Open reports whether the offload is still running (no end recorded).
func (iv Interval) Open() bool { return iv.End < 0 }

// State labels the interval: "running" while open, then "completed" or
// "aborted". This is the explicit open-end marker in CSV/JSON exports —
// consumers should not have to know that End == -1 means in flight.
func (iv Interval) State() string {
	switch {
	case iv.Open():
		return "running"
	case iv.Completed:
		return "completed"
	}
	return "aborted"
}

// MarshalJSON adds the derived state field to the export.
func (iv Interval) MarshalJSON() ([]byte, error) {
	type alias Interval // drops the method set, avoiding recursion
	return json.Marshal(struct {
		alias
		State string `json:"state"`
	}{alias(iv), iv.State()})
}

// Recorder collects offload intervals from one device. It implements
// phi.TraceSink.
type Recorder struct {
	intervals []Interval
	open      map[string]int // job name -> index of open interval
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{open: map[string]int{}}
}

// OffloadStarted implements phi.TraceSink.
func (r *Recorder) OffloadStarted(now units.Tick, jobName string, threads units.Threads) {
	if _, dup := r.open[jobName]; dup {
		panic("trace: overlapping offloads for job " + jobName)
	}
	r.open[jobName] = len(r.intervals)
	r.intervals = append(r.intervals, Interval{
		Job: jobName, Start: now, End: -1, Threads: threads,
	})
}

// OffloadEnded implements phi.TraceSink.
func (r *Recorder) OffloadEnded(now units.Tick, jobName string, completed bool) {
	idx, ok := r.open[jobName]
	if !ok {
		panic("trace: offload end without start for job " + jobName)
	}
	delete(r.open, jobName)
	r.intervals[idx].End = now
	r.intervals[idx].Completed = completed
}

// Intervals returns the recorded intervals in start order.
func (r *Recorder) Intervals() []Interval {
	out := make([]Interval, len(r.intervals))
	copy(out, r.intervals)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Jobs returns the distinct job names in first-appearance order.
func (r *Recorder) Jobs() []string {
	seen := map[string]bool{}
	var names []string
	for _, iv := range r.intervals {
		if !seen[iv.Job] {
			seen[iv.Job] = true
			names = append(names, iv.Job)
		}
	}
	return names
}

// End returns the latest interval end (0 if none closed).
func (r *Recorder) End() units.Tick {
	var end units.Tick
	for _, iv := range r.intervals {
		if iv.End > end {
			end = iv.End
		}
	}
	return end
}

// WriteCSV emits the intervals as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"job", "start_ms", "end_ms", "threads", "completed", "state"}); err != nil {
		return err
	}
	for _, iv := range r.Intervals() {
		rec := []string{
			iv.Job,
			strconv.FormatInt(int64(iv.Start), 10),
			strconv.FormatInt(int64(iv.End), 10),
			strconv.Itoa(int(iv.Threads)),
			strconv.FormatBool(iv.Completed),
			iv.State(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the intervals as a JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Intervals())
}

// Render draws an ASCII timeline like the paper's Figs. 2–3: one row per
// job, '#' where the job's offload occupies the device (full width),
// '=' for partial-width offloads, '.' where the job exists but runs on the
// host. width is the number of character cells.
func (r *Recorder) Render(width int, hwThreads units.Threads) string {
	if width <= 0 {
		width = 80
	}
	end := r.End()
	if end == 0 {
		return "(no offload activity)\n"
	}
	var sb strings.Builder
	cell := float64(end) / float64(width)
	for _, jobName := range r.Jobs() {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, iv := range r.intervals {
			if iv.Job != jobName || iv.End < 0 {
				continue
			}
			mark := byte('=')
			if iv.Threads*2 > hwThreads {
				mark = '#'
			}
			from := int(float64(iv.Start) / cell)
			to := int(float64(iv.End) / cell)
			if to >= width {
				to = width - 1
			}
			for i := from; i <= to; i++ {
				row[i] = mark
			}
		}
		fmt.Fprintf(&sb, "%-12s |%s|\n", jobName, row)
	}
	fmt.Fprintf(&sb, "%-12s  0%*s\n", "", width-1, end)
	fmt.Fprintf(&sb, "('#' offload >50%% of threads, '=' partial offload, '.' host/idle)\n")
	return sb.String()
}

// BusyThreadIntegral returns the integral of occupied threads over time in
// thread-seconds: a concurrency summary for closed intervals.
func (r *Recorder) BusyThreadIntegral() float64 {
	var total float64
	for _, iv := range r.intervals {
		if iv.End >= iv.Start {
			total += float64(iv.Threads) * iv.Duration().Seconds()
		}
	}
	return total
}

// Timeline bins average occupied threads over [0, end) into n buckets.
// Open intervals are ignored. Useful for rendering cluster activity over a
// run (see Sparkline).
func (r *Recorder) Timeline(n int, end units.Tick) []float64 {
	if n <= 0 || end <= 0 {
		return nil
	}
	out := make([]float64, n)
	width := float64(end) / float64(n)
	for _, iv := range r.intervals {
		if iv.End < iv.Start {
			continue
		}
		lo, hi := float64(iv.Start), float64(iv.End)
		if hi > float64(end) {
			hi = float64(end)
		}
		first := int(lo / width)
		last := int(hi / width)
		if last >= n {
			last = n - 1
		}
		for b := first; b <= last; b++ {
			bLo, bHi := float64(b)*width, float64(b+1)*width
			overlap := min64(hi, bHi) - max64(lo, bLo)
			if overlap > 0 {
				out[b] += float64(iv.Threads) * overlap / width
			}
		}
	}
	return out
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Sparkline renders values as a Unicode bar chart scaled to max (values
// above max clamp to the tallest bar). Empty input yields an empty string.
func Sparkline(vals []float64, max float64) string {
	if len(vals) == 0 || max <= 0 {
		return ""
	}
	levels := []rune(" ▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for _, v := range vals {
		idx := int(v / max * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}
