package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"phishare/internal/units"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	r.OffloadStarted(0, "J1", 240)
	r.OffloadEnded(1000, "J1", true)
	r.OffloadStarted(1500, "J2", 120)
	r.OffloadEnded(2500, "J2", true)
	ivs := r.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("intervals %d", len(ivs))
	}
	if ivs[0].Job != "J1" || ivs[0].Duration() != 1000 {
		t.Errorf("first interval %+v", ivs[0])
	}
	if r.End() != 2500 {
		t.Errorf("End = %v", r.End())
	}
	if jobs := r.Jobs(); len(jobs) != 2 || jobs[0] != "J1" || jobs[1] != "J2" {
		t.Errorf("Jobs = %v", jobs)
	}
}

func TestInterleavedJobsTracked(t *testing.T) {
	r := NewRecorder()
	r.OffloadStarted(0, "A", 120)
	r.OffloadStarted(500, "B", 120)
	r.OffloadEnded(1000, "A", true)
	r.OffloadEnded(1500, "B", true)
	ivs := r.Intervals()
	if ivs[0].Job != "A" || ivs[1].Job != "B" {
		t.Errorf("intervals %v", ivs)
	}
	if ivs[1].Start != 500 || ivs[1].End != 1500 {
		t.Errorf("B interval %+v", ivs[1])
	}
}

func TestAbortedIntervalMarked(t *testing.T) {
	r := NewRecorder()
	r.OffloadStarted(0, "A", 60)
	r.OffloadEnded(200, "A", false)
	if r.Intervals()[0].Completed {
		t.Error("aborted interval marked completed")
	}
}

func TestOverlappingSameJobPanics(t *testing.T) {
	r := NewRecorder()
	r.OffloadStarted(0, "A", 60)
	defer func() {
		if recover() == nil {
			t.Error("no panic on overlapping offloads")
		}
	}()
	r.OffloadStarted(10, "A", 60)
}

func TestEndWithoutStartPanics(t *testing.T) {
	r := NewRecorder()
	defer func() {
		if recover() == nil {
			t.Error("no panic on end without start")
		}
	}()
	r.OffloadEnded(10, "A", true)
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.OffloadStarted(0, "A", 240)
	r.OffloadEnded(1000, "A", true)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines: %v", lines)
	}
	if lines[0] != "job,start_ms,end_ms,threads,completed,state" {
		t.Errorf("header %q", lines[0])
	}
	if lines[1] != "A,0,1000,240,true,completed" {
		t.Errorf("row %q", lines[1])
	}
}

// TestExportOpenInterval: an in-flight offload exports with End == -1 and an
// explicit "running" marker in both CSV and JSON, and an aborted one is
// labelled "aborted".
func TestExportOpenInterval(t *testing.T) {
	r := NewRecorder()
	r.OffloadStarted(0, "done", 240)
	r.OffloadEnded(1000, "done", true)
	r.OffloadStarted(500, "dead", 60)
	r.OffloadEnded(800, "dead", false)
	r.OffloadStarted(2000, "flying", 120)

	var csvBuf bytes.Buffer
	if err := r.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines: %v", lines)
	}
	if lines[2] != "dead,500,800,60,false,aborted" {
		t.Errorf("aborted row %q", lines[2])
	}
	if lines[3] != "flying,2000,-1,120,false,running" {
		t.Errorf("open row %q", lines[3])
	}

	var jsonBuf bytes.Buffer
	if err := r.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var out []struct {
		Job   string `json:"job"`
		End   int64  `json:"end_ms"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &out); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	want := map[string]string{"done": "completed", "dead": "aborted", "flying": "running"}
	for _, iv := range out {
		if iv.State != want[iv.Job] {
			t.Errorf("%s state %q, want %q", iv.Job, iv.State, want[iv.Job])
		}
	}
	if out[2].End != -1 {
		t.Errorf("open interval end %d, want -1", out[2].End)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRecorder()
	r.OffloadStarted(0, "A", 240)
	r.OffloadEnded(1000, "A", true)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []Interval
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	if len(out) != 1 || out[0].Job != "A" || out[0].Threads != 240 {
		t.Errorf("round trip %+v", out)
	}
}

func TestRenderShape(t *testing.T) {
	r := NewRecorder()
	r.OffloadStarted(0, "J1", 240)
	r.OffloadEnded(500, "J1", true)
	r.OffloadStarted(500, "J2", 120)
	r.OffloadEnded(1000, "J2", true)
	out := r.Render(40, 240)
	if !strings.Contains(out, "J1") || !strings.Contains(out, "J2") {
		t.Fatalf("render missing jobs:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("full-width offload not marked with #")
	}
	if !strings.Contains(out, "=") {
		t.Error("partial offload not marked with =")
	}
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[0], "J1") {
		t.Errorf("row order wrong:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	r := NewRecorder()
	if out := r.Render(40, 240); !strings.Contains(out, "no offload activity") {
		t.Errorf("empty render: %q", out)
	}
}

func TestBusyThreadIntegral(t *testing.T) {
	r := NewRecorder()
	r.OffloadStarted(0, "A", 240)
	r.OffloadEnded(units.Tick(2*units.Second), "A", true)
	r.OffloadStarted(0, "B", 60)
	r.OffloadEnded(units.Tick(1*units.Second), "B", true)
	want := 240*2.0 + 60*1.0
	if got := r.BusyThreadIntegral(); got != want {
		t.Errorf("integral = %v, want %v", got, want)
	}
}

func TestDurationOpenInterval(t *testing.T) {
	iv := Interval{Start: 100, End: -1}
	if iv.Duration() != 0 {
		t.Errorf("open interval duration %v", iv.Duration())
	}
}

func TestTimeline(t *testing.T) {
	r := NewRecorder()
	// 240 threads for the first half, 120 for the second.
	r.OffloadStarted(0, "A", 240)
	r.OffloadEnded(1000, "A", true)
	r.OffloadStarted(1000, "B", 120)
	r.OffloadEnded(2000, "B", true)
	tl := r.Timeline(4, 2000)
	want := []float64{240, 240, 120, 120}
	for i := range want {
		if diff := tl[i] - want[i]; diff > 0.01 || diff < -0.01 {
			t.Errorf("bucket %d = %v, want %v", i, tl[i], want[i])
		}
	}
}

func TestTimelinePartialOverlap(t *testing.T) {
	r := NewRecorder()
	// 100 threads over [0, 500) in a 1000-wide bucket: average 50.
	r.OffloadStarted(0, "A", 100)
	r.OffloadEnded(500, "A", true)
	tl := r.Timeline(1, 1000)
	if diff := tl[0] - 50; diff > 0.01 || diff < -0.01 {
		t.Errorf("bucket = %v, want 50", tl[0])
	}
}

func TestTimelineDegenerate(t *testing.T) {
	r := NewRecorder()
	if r.Timeline(0, 100) != nil || r.Timeline(4, 0) != nil {
		t.Error("degenerate timeline not nil")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 120, 240}, 240)
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline %q", s)
	}
	runes := []rune(s)
	if runes[0] != ' ' || runes[2] != '█' {
		t.Errorf("sparkline extremes %q", s)
	}
	if Sparkline(nil, 240) != "" || Sparkline([]float64{1}, 0) != "" {
		t.Error("degenerate sparkline not empty")
	}
}

func TestSparklineClamps(t *testing.T) {
	s := []rune(Sparkline([]float64{500, -5}, 240))
	if s[0] != '█' || s[1] != ' ' {
		t.Errorf("clamping wrong: %q", string(s))
	}
}

func TestWriteSVG(t *testing.T) {
	r := NewRecorder()
	r.OffloadStarted(0, "J1", 240)
	r.OffloadEnded(3000, "J1", true)
	r.OffloadStarted(1000, "J2", 120)
	r.OffloadEnded(2000, "J2", false) // aborted
	var buf bytes.Buffer
	if err := r.WriteSVG(&buf, 240); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "J1", "J2", "#d62728", "<title>"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<rect") < 3 { // background + 2 bars
		t.Errorf("SVG rect count too low:\n%s", out)
	}
}

// TestWriteSVGOpenInterval: a mid-run snapshot with an in-flight offload
// renders the open bar (dashed, to the chart edge) instead of dropping it.
func TestWriteSVGOpenInterval(t *testing.T) {
	r := NewRecorder()
	r.OffloadStarted(0, "closed", 240)
	r.OffloadEnded(3000, "closed", true)
	r.OffloadStarted(4000, "inflight", 120) // still running, past the last close
	var buf bytes.Buffer
	if err := r.WriteSVG(&buf, 240); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"inflight", "still running", `stroke-dasharray`} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<rect") < 3 { // background + closed bar + open bar
		t.Errorf("open interval dropped:\n%s", out)
	}
	// The axis must stretch to cover the open interval's start.
	if !strings.Contains(out, "4.0 s") && !strings.Contains(out, "(2 jobs, 4.0 s)") {
		t.Errorf("axis does not cover open interval:\n%s", out)
	}

	// Open-only recorder: must still render, not emit the empty placeholder.
	r2 := NewRecorder()
	r2.OffloadStarted(0, "solo", 60)
	var buf2 bytes.Buffer
	if err := r2.WriteSVG(&buf2, 240); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.String(), "no offload activity") {
		t.Error("open-only recorder rendered as empty")
	}
	if !strings.Contains(buf2.String(), "solo") {
		t.Error("open-only bar missing")
	}
}

func TestWriteSVGEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRecorder().WriteSVG(&buf, 240); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no offload activity") {
		t.Errorf("empty SVG: %q", buf.String())
	}
}

func TestSVGEscapesJobNames(t *testing.T) {
	r := NewRecorder()
	r.OffloadStarted(0, `evil<>&"job`, 60)
	r.OffloadEnded(100, `evil<>&"job`, true)
	var buf bytes.Buffer
	if err := r.WriteSVG(&buf, 240); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "evil<>") {
		t.Error("job name not escaped in SVG")
	}
}
