package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"phishare/internal/units"
)

// WriteSVG renders the recorded offload intervals as a self-contained SVG
// Gantt chart: one row per job, a bar per offload, bar height proportional
// to thread width. The visual analogue of the paper's Figs. 2–3, viewable
// in any browser.
func (r *Recorder) WriteSVG(w io.Writer, hwThreads units.Threads) error {
	const (
		width     = 900
		rowHeight = 28
		barMax    = 22 // tallest bar, for a full-width offload
		leftPad   = 110
		topPad    = 30
		bottomPad = 30
	)
	jobs := r.Jobs()
	// The axis must cover open intervals too: a snapshot mid-run has bars
	// with no end yet, which render to the right edge of the chart.
	end := r.End()
	for _, iv := range r.intervals {
		if iv.Open() && iv.Start > end {
			end = iv.Start
		}
	}
	if len(jobs) == 0 {
		_, err := fmt.Fprint(w, emptySVG)
		return err
	}
	if end == 0 {
		end = units.Second // only open intervals at t=0: nominal axis span
	}
	rows := map[string]int{}
	for i, name := range jobs {
		rows[name] = i
	}
	height := topPad + rowHeight*len(jobs) + bottomPad
	scale := float64(width-leftPad-10) / float64(end)

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="%d" y="18" font-size="13">Coprocessor offload timeline (%d jobs, %.1f s)</text>`+"\n",
		leftPad, len(jobs), end.Seconds())

	// Row guides and labels.
	for i, name := range jobs {
		y := topPad + i*rowHeight
		fmt.Fprintf(&sb, `<text x="5" y="%d">%s</text>`+"\n", y+barMax-6, escapeXML(name))
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#eee"/>`+"\n",
			leftPad, y+barMax, width-10, y+barMax)
	}

	// Bars, deterministic order.
	ivs := r.Intervals()
	sort.SliceStable(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	for _, iv := range ivs {
		row := rows[iv.Job]
		frac := float64(iv.Threads) / float64(hwThreads)
		if frac > 1 {
			frac = 1
		}
		h := int(frac * barMax)
		if h < 3 {
			h = 3
		}
		x := leftPad + int(float64(iv.Start)*scale)
		y := topPad + row*rowHeight + (barMax - h)
		if iv.Open() {
			// Still-running offload: bar runs to the chart edge, drawn
			// half-transparent with a dashed outline so a mid-run snapshot
			// is visually distinct from a closed bar.
			bw := width - 10 - x
			if bw < 1 {
				bw = 1
			}
			fmt.Fprintf(&sb,
				`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="0.45" stroke="%s" stroke-dasharray="4,3"><title>%s: %v threads, started %.2fs (still running)</title></rect>`+"\n",
				x, y, bw, h, colorFor(row), colorFor(row), escapeXML(iv.Job), iv.Threads, iv.Start.Seconds())
			continue
		}
		bw := int(float64(iv.Duration()) * scale)
		if bw < 1 {
			bw = 1
		}
		fill := colorFor(row)
		if !iv.Completed {
			fill = "#d62728" // aborted offloads in red
		}
		fmt.Fprintf(&sb,
			`<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>%s: %v threads, %.2fs-%.2fs</title></rect>`+"\n",
			x, y, bw, h, fill, escapeXML(iv.Job), iv.Threads, iv.Start.Seconds(), iv.End.Seconds())
	}

	// Time axis.
	axisY := topPad + rowHeight*len(jobs) + 8
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#444"/>`+"\n", leftPad, axisY, width-10, axisY)
	for i := 0; i <= 6; i++ {
		t := float64(end) * float64(i) / 6
		x := leftPad + int(t*scale)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle" fill="#444">%.0fs</text>`+"\n",
			x, axisY+14, units.Tick(t).Seconds())
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

const emptySVG = `<svg xmlns="http://www.w3.org/2000/svg" width="300" height="40"><text x="10" y="25">no offload activity</text></svg>` + "\n"

// colorFor cycles a small colorblind-safe palette by row.
func colorFor(row int) string {
	palette := []string{"#1f77b4", "#2ca02c", "#9467bd", "#8c564b", "#e377c2", "#17becf", "#bcbd22", "#7f7f7f"}
	return palette[row%len(palette)]
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
