package cluster

import (
	"testing"

	"phishare/internal/job"
	"phishare/internal/phi"
	"phishare/internal/sim"
	"phishare/internal/units"
)

func TestNewDefaults(t *testing.T) {
	eng := sim.New()
	c := New(eng, Config{})
	if len(c.Nodes) != 8 {
		t.Errorf("default nodes = %d, want 8", len(c.Nodes))
	}
	if c.DeviceCount() != 8 {
		t.Errorf("default devices = %d, want 8", c.DeviceCount())
	}
	if c.Units[0].Cosmic != nil {
		t.Error("default cluster has COSMIC enabled")
	}
	if c.Units[0].Device.Config().Memory != units.GB(8) {
		t.Errorf("device memory = %v, want 8GB", c.Units[0].Device.Config().Memory)
	}
}

func TestSlotNaming(t *testing.T) {
	eng := sim.New()
	c := New(eng, Config{Nodes: 2, DevicesPerNode: 2})
	want := []string{"slot1@node0", "slot2@node0", "slot1@node1", "slot2@node1"}
	if len(c.Units) != 4 {
		t.Fatalf("units = %d", len(c.Units))
	}
	for i, u := range c.Units {
		if u.SlotName != want[i] {
			t.Errorf("unit %d slot = %q, want %q", i, u.SlotName, want[i])
		}
	}
	if c.Units[2].NodeName != "node1" {
		t.Errorf("NodeName = %q", c.Units[2].NodeName)
	}
}

func TestUseCosmicInstallsManagers(t *testing.T) {
	eng := sim.New()
	c := New(eng, Config{Nodes: 2, UseCosmic: true})
	for _, u := range c.Units {
		if u.Cosmic == nil {
			t.Fatal("COSMIC missing")
		}
		if !u.Device.Affinitized {
			t.Error("device not affinitized under COSMIC")
		}
	}
}

func testJob(id int) *job.Job {
	return &job.Job{
		ID: id, Name: "t", Workload: "t",
		Mem: 500, Threads: 120, ActualPeakMem: 450,
		Phases: []job.Phase{{Kind: job.OffloadPhase, Duration: 1000, Threads: 120}},
	}
}

func TestUnitDelegationCosmic(t *testing.T) {
	eng := sim.New()
	c := New(eng, Config{Nodes: 1, UseCosmic: true})
	u := c.Units[0]
	p := u.Attach(testJob(1))
	var end units.Tick
	u.Offload(p, 120, 2000, func(o phi.OffloadOutcome) {
		if o != phi.OffloadCompleted {
			t.Errorf("outcome %v", o)
		}
		end = eng.Now()
	})
	eng.Run()
	if end != 2000 {
		t.Errorf("offload end %v", end)
	}
	u.Detach(p)
	if u.Device.ProcessCount() != 0 {
		t.Error("detach did not release process")
	}
}

func TestUnitDelegationRaw(t *testing.T) {
	eng := sim.New()
	c := New(eng, Config{Nodes: 1})
	u := c.Units[0]
	// Raw mode: two 240-wide offloads overlap and slow down (no COSMIC).
	p1 := u.Attach(testJob(1))
	p2 := u.Attach(testJob(2))
	var e1 units.Tick
	u.Offload(p1, 240, 2000, func(phi.OffloadOutcome) { e1 = eng.Now() })
	u.Offload(p2, 240, 2000, func(phi.OffloadOutcome) {})
	eng.Run()
	if e1 != 4000 {
		t.Errorf("raw overlapping offload ended at %v, want 4000 (2x slowdown)", e1)
	}
}

func TestAvgCoreUtilization(t *testing.T) {
	eng := sim.New()
	c := New(eng, Config{Nodes: 2, UseCosmic: true})
	// One device fully busy for 1000 of 2000 ticks, the other idle:
	// device utils are 0.5 and 0 -> average 0.25.
	u := c.Units[0]
	p := u.Attach(testJob(1))
	u.Offload(p, 240, 1000, func(phi.OffloadOutcome) {})
	eng.Run()
	got := c.AvgCoreUtilization(2000)
	if got != 0.25 {
		t.Errorf("AvgCoreUtilization = %v, want 0.25", got)
	}
}

func TestAvgCoreUtilizationEmpty(t *testing.T) {
	eng := sim.New()
	c := New(eng, Config{Nodes: 1})
	if c.AvgCoreUtilization(0) != 0 {
		t.Error("zero-end utilization not 0")
	}
}

func TestUtilsLength(t *testing.T) {
	eng := sim.New()
	c := New(eng, Config{Nodes: 3, DevicesPerNode: 2})
	if len(c.Utils()) != 6 {
		t.Errorf("Utils() = %d, want 6", len(c.Utils()))
	}
}

func TestDeterministicDeviceSeeds(t *testing.T) {
	// Same cluster seed => same OOM behaviour; exercised indirectly by
	// checking the per-device rng forks differ between slots but repeat
	// across constructions (smoke test via device IDs).
	engA, engB := sim.New(), sim.New()
	a := New(engA, Config{Nodes: 2, Seed: 5})
	b := New(engB, Config{Nodes: 2, Seed: 5})
	for i := range a.Units {
		if a.Units[i].SlotName != b.Units[i].SlotName {
			t.Fatal("unit ordering not deterministic")
		}
	}
}

func TestDevicesOnOneNodeShareLink(t *testing.T) {
	eng := sim.New()
	c := New(eng, Config{Nodes: 2, DevicesPerNode: 2})
	if c.Units[0].Link != c.Units[1].Link {
		t.Error("devices on one node have different links")
	}
	if c.Units[0].Link == c.Units[2].Link {
		t.Error("devices on different nodes share a link")
	}
	if c.Nodes[0].Link == nil {
		t.Error("node link missing")
	}
}

func TestLinkBandwidthConfigurable(t *testing.T) {
	eng := sim.New()
	c := New(eng, Config{Nodes: 1, LinkBandwidthMBps: 1000})
	var end units.Tick
	c.Units[0].Link.Transfer(500, func() { end = eng.Now() })
	eng.Run()
	if end != 500 { // 500 MB at 1 MB/ms
		t.Errorf("transfer at custom bandwidth ended at %v, want 500", end)
	}
}
