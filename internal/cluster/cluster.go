// Package cluster assembles the simulated Xeon Phi compute cluster: nodes,
// the coprocessor devices inside them, and the optional per-device COSMIC
// managers. It is the hardware inventory the Condor layer advertises and
// the schedulers pack.
//
// The paper's testbed is 8 nodes with one 8 GB Xeon Phi each (§V); the
// footprint experiments shrink the node count, and the Config supports
// multiple devices per node for the general formulation of §IV-B
// ("N identical compute servers each having D Xeon Phi coprocessors").
package cluster

import (
	"fmt"

	"phishare/internal/cosmic"
	"phishare/internal/job"
	"phishare/internal/metrics"
	"phishare/internal/phi"
	"phishare/internal/rng"
	"phishare/internal/sim"
	"phishare/internal/units"
)

// Config describes a cluster.
type Config struct {
	// Nodes is the number of compute servers (paper default: 8).
	Nodes int
	// DevicesPerNode is D in the paper's formulation (paper testbed: 1).
	DevicesPerNode int
	// Device is the coprocessor model (default: the 5110P).
	Device phi.Config
	// NodeDevices, when non-empty, makes the pool heterogeneous: node n's
	// devices use NodeDevices[n % len(NodeDevices)] instead of Device —
	// mixed coprocessor generations with per-node memory/thread asymmetry.
	// The modulo lets a short class list (e.g. workload.HeterogeneousPool
	// output for a sampled prefix) tile a larger pool deterministically.
	NodeDevices []phi.Config
	// UseCosmic installs a COSMIC manager on every device. Without it the
	// devices run raw MPSS semantics (the MC baseline's node level — and
	// the oversubscription ablation's, when paired with a sharing policy).
	UseCosmic bool
	// CosmicBypass selects first-fit offload dispatch instead of COSMIC's
	// default strict arrival order (the dispatch-discipline ablation).
	CosmicBypass bool
	// LinkBandwidthMBps is each node's PCIe bandwidth to its coprocessors,
	// shared by all its devices' DMA transfers. Default 6000 (gen2 x16).
	LinkBandwidthMBps float64
	// Seed drives device-level randomness (OOM victim selection).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.DevicesPerNode == 0 {
		c.DevicesPerNode = 1
	}
	if c.Device == (phi.Config{}) {
		c.Device = phi.DefaultConfig()
	}
	if c.LinkBandwidthMBps == 0 {
		c.LinkBandwidthMBps = phi.DefaultLinkBandwidthMBps
	}
	return c
}

// DeviceUnit is one schedulable coprocessor: the device plus its optional
// COSMIC manager and its utilization tracker. Its SlotName is the Condor
// slot identity the knapsack scheduler pins jobs to ("slotI@nodeJ").
type DeviceUnit struct {
	SlotName string
	NodeName string
	Device   *phi.Device
	Cosmic   *cosmic.Manager // nil in raw MPSS mode
	Util     *metrics.CoreUtilization
	// Link is the node's PCIe interconnect, shared with the node's other
	// devices.
	Link *phi.Link
	// Lane is the node's event lane: every event this unit's device, COSMIC
	// manager, link or starter-side runner schedules is declared
	// node-confined through it, which is what lets the parallel simulation
	// core execute nodes concurrently between cross-node events.
	Lane *sim.Lane
}

// Attach admits a job immediately, through COSMIC when present (bypassing
// its memory admission; see Admit).
func (u *DeviceUnit) Attach(j *job.Job) *phi.Process {
	if u.Cosmic != nil {
		return u.Cosmic.Attach(j)
	}
	return u.Device.Attach(j)
}

// Admit requests admission for a job. Under COSMIC, the job waits until its
// declared memory fits the device (node-level memory admission, §V's "COSMIC
// prevents them from oversubscribing memory"); ready fires when it is
// attached. Raw MPSS has no admission control: ready fires immediately.
func (u *DeviceUnit) Admit(j *job.Job, ready func(*phi.Process)) {
	if u.Cosmic != nil {
		u.Cosmic.Admit(j, ready)
		return
	}
	ready(u.Device.Attach(j))
}

// Offload runs an offload, through COSMIC's admission control when present;
// raw devices start it immediately (§II-B: MPSS schedules offloads with no
// regard for oversubscription).
func (u *DeviceUnit) Offload(p *phi.Process, threads units.Threads, work units.Tick, done func(phi.OffloadOutcome)) {
	if u.Cosmic != nil {
		u.Cosmic.Offload(p, threads, work, done)
		return
	}
	u.Device.StartOffload(p, threads, work, done)
}

// Detach removes a job's process.
func (u *DeviceUnit) Detach(p *phi.Process) {
	if u.Cosmic != nil {
		u.Cosmic.Detach(p)
		return
	}
	u.Device.Detach(p)
}

// Fail injects a whole-device failure: every resident process dies with
// reason, and attaches are rejected until Repair. The COSMIC manager (when
// present) is immediately recovered so queued work for dead processes is
// flushed rather than stranded. Returns the number of processes evicted.
func (u *DeviceUnit) Fail(reason phi.KillReason) int {
	n := u.Device.Fail(reason)
	if u.Cosmic != nil {
		u.Cosmic.Recover()
	}
	return n
}

// Repair brings a failed device back into service and re-runs COSMIC
// admission for anything that queued up while it was down.
func (u *DeviceUnit) Repair() {
	u.Device.Repair()
	if u.Cosmic != nil {
		u.Cosmic.Recover()
	}
}

// Node is one compute server.
type Node struct {
	Name    string
	Devices []*DeviceUnit
	// Link is the server's PCIe interconnect to its coprocessors.
	Link *phi.Link
}

// Cluster is the full machine inventory.
type Cluster struct {
	Nodes []*Node
	// Units flattens every device in node-major order; schedulers iterate
	// this for the paper's "for each Xeon Phi device D in cluster" loops.
	Units []*DeviceUnit

	cfg Config
}

// New builds a cluster on the given engine.
func New(eng *sim.Engine, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 0 || cfg.DevicesPerNode < 0 {
		panic(fmt.Sprintf("cluster: negative size %+v", cfg))
	}
	root := rng.New(cfg.Seed).Fork("cluster")
	c := &Cluster{cfg: cfg}
	for n := 0; n < cfg.Nodes; n++ {
		lane := eng.NodeLane(n)
		node := &Node{
			Name: fmt.Sprintf("node%d", n),
			Link: phi.NewLink(lane, cfg.LinkBandwidthMBps),
		}
		devCfg := cfg.Device
		if len(cfg.NodeDevices) > 0 {
			devCfg = cfg.NodeDevices[n%len(cfg.NodeDevices)]
		}
		for d := 0; d < cfg.DevicesPerNode; d++ {
			slot := fmt.Sprintf("slot%d@%s", d+1, node.Name)
			util := metrics.NewCoreUtilization(devCfg.Cores)
			dev := phi.NewDevice(lane, slot, devCfg, root.Fork(slot), util)
			unit := &DeviceUnit{
				SlotName: slot,
				NodeName: node.Name,
				Device:   dev,
				Util:     util,
				Link:     node.Link,
				Lane:     lane,
			}
			if cfg.UseCosmic {
				unit.Cosmic = cosmic.New(lane, dev)
				unit.Cosmic.Bypass = cfg.CosmicBypass
			}
			node.Devices = append(node.Devices, unit)
			c.Units = append(c.Units, unit)
		}
		c.Nodes = append(c.Nodes, node)
	}
	return c
}

// Config returns the (defaulted) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// DeviceCount is the total number of coprocessors.
func (c *Cluster) DeviceCount() int { return len(c.Units) }

// Utils collects the per-device utilization trackers.
func (c *Cluster) Utils() []*metrics.CoreUtilization {
	us := make([]*metrics.CoreUtilization, len(c.Units))
	for i, u := range c.Units {
		us[i] = u.Util
	}
	return us
}

// AvgCoreUtilization is the mean per-device core utilization over [0, end]:
// the paper's cluster-wide "average core utilization" metric (§III).
func (c *Cluster) AvgCoreUtilization(end units.Tick) float64 {
	if len(c.Units) == 0 || end <= 0 {
		return 0
	}
	total := 0.0
	for _, u := range c.Units {
		total += u.Util.Utilization(end)
	}
	return total / float64(len(c.Units))
}
