package job

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"phishare/internal/rng"
)

func TestJSONRoundTrip(t *testing.T) {
	jobs := GenerateTableOneSet(50, rng.New(9))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(jobs) {
		t.Fatalf("loaded %d of %d", len(loaded), len(jobs))
	}
	for i := range jobs {
		if !reflect.DeepEqual(jobs[i], loaded[i]) {
			t.Fatalf("job %d changed in round trip:\n%+v\nvs\n%+v", i, jobs[i], loaded[i])
		}
	}
}

func TestJSONEmptySet(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil || len(loaded) != 0 {
		t.Fatalf("empty round trip: %v, %v", loaded, err)
	}
}

func TestReadJSONRejects(t *testing.T) {
	cases := map[string]string{
		"garbage":        "not json",
		"wrong version":  `{"version": 99, "jobs": []}`,
		"unknown field":  `{"version": 1, "jobs": [], "extra": 1}`,
		"bad phase kind": `{"version": 1, "jobs": [{"id":1,"name":"x","workload":"w","mem_mb":100,"threads":60,"actual_peak_mb":90,"phases":[{"kind":"warp","duration_ms":10}]}]}`,
		"invalid job":    `{"version": 1, "jobs": [{"id":1,"name":"x","workload":"w","mem_mb":0,"threads":60,"actual_peak_mb":90,"phases":[{"kind":"host","duration_ms":10}]}]}`,
		"duplicate ids":  `{"version": 1, "jobs": [{"id":1,"name":"x","workload":"w","mem_mb":10,"threads":60,"actual_peak_mb":9,"phases":[{"kind":"host","duration_ms":10}]},{"id":1,"name":"y","workload":"w","mem_mb":10,"threads":60,"actual_peak_mb":9,"phases":[{"kind":"host","duration_ms":10}]}]}`,
	}
	for name, src := range cases {
		if _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestJSONPreservesSimulationBehaviour(t *testing.T) {
	// The real test of fidelity: a loaded set must simulate identically.
	jobs := GenerateTableOneSet(20, rng.New(10))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if TotalSequentialTime(jobs) != TotalSequentialTime(loaded) {
		t.Error("sequential time changed through serialization")
	}
	for i := range jobs {
		if jobs[i].OffloadTime() != loaded[i].OffloadTime() {
			t.Errorf("job %d offload time changed", i)
		}
	}
}

func TestStreamWriterMatchesWriteJSON(t *testing.T) {
	jobs := GenerateTableOneSet(25, rng.New(77).Fork("tableI"))

	var batch bytes.Buffer
	if err := WriteJSON(&batch, jobs); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	sw, err := NewStreamWriter(&stream)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := sw.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if sw.Count() != len(jobs) {
		t.Errorf("Count() = %d, want %d", sw.Count(), len(jobs))
	}
	if batch.String() != stream.String() {
		t.Errorf("stream output diverges from WriteJSON:\nbatch:\n%s\nstream:\n%s",
			batch.String(), stream.String())
	}

	got, err := ReadJSON(&stream)
	if err != nil {
		t.Fatalf("stream output not loadable: %v", err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("roundtrip lost jobs: %d of %d", len(got), len(jobs))
	}
}

func TestStreamWriterEmptySet(t *testing.T) {
	var batch, stream bytes.Buffer
	if err := WriteJSON(&batch, nil); err != nil {
		t.Fatal(err)
	}
	sw, err := NewStreamWriter(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if batch.String() != stream.String() {
		t.Errorf("empty-set output diverges:\nbatch: %q\nstream: %q", batch.String(), stream.String())
	}
	if _, err := ReadJSON(&stream); err != nil {
		t.Errorf("empty stream set not loadable: %v", err)
	}
}
