package job

import (
	"testing"

	"phishare/internal/rng"
	"phishare/internal/units"
)

func validJob() *Job {
	return &Job{
		ID: 1, Name: "t#1", Workload: "t",
		Mem: 500, Threads: 120, ActualPeakMem: 450,
		Phases: []Phase{
			{Kind: HostPhase, Duration: 1000},
			{Kind: OffloadPhase, Duration: 2000, Threads: 120},
			{Kind: HostPhase, Duration: 500},
			{Kind: OffloadPhase, Duration: 1000, Threads: 60},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validJob().Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Job){
		"zero memory":             func(j *Job) { j.Mem = 0 },
		"zero threads":            func(j *Job) { j.Threads = 0 },
		"no phases":               func(j *Job) { j.Phases = nil },
		"zero-duration phase":     func(j *Job) { j.Phases[0].Duration = 0 },
		"host phase with threads": func(j *Job) { j.Phases[0].Threads = 10 },
		"offload with no threads": func(j *Job) { j.Phases[1].Threads = 0 },
		"offload above declared":  func(j *Job) { j.Phases[1].Threads = 240 },
		"invalid phase kind":      func(j *Job) { j.Phases[0].Kind = PhaseKind(9) },
	}
	for name, mutate := range cases {
		j := validJob()
		mutate(j)
		if err := j.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid job", name)
		}
	}
}

func TestSequentialAndOffloadTime(t *testing.T) {
	j := validJob()
	if got := j.SequentialTime(); got != 4500 {
		t.Errorf("SequentialTime = %v, want 4500", got)
	}
	if got := j.OffloadTime(); got != 3000 {
		t.Errorf("OffloadTime = %v, want 3000", got)
	}
	if got := j.OffloadDutyCycle(); got != 3000.0/4500.0 {
		t.Errorf("OffloadDutyCycle = %v", got)
	}
}

func TestOffloadDutyCycleEmptyJob(t *testing.T) {
	j := &Job{}
	if got := j.OffloadDutyCycle(); got != 0 {
		t.Errorf("empty job duty cycle = %v, want 0", got)
	}
}

func TestMaxOffloadThreads(t *testing.T) {
	j := validJob()
	if got := j.MaxOffloadThreads(); got != 120 {
		t.Errorf("MaxOffloadThreads = %v, want 120", got)
	}
}

func TestTableOneMatchesPaper(t *testing.T) {
	// Table I thread counts and memory ranges must match the paper exactly.
	want := map[string]struct {
		threads units.Threads
		lo, hi  units.MB
	}{
		"KM": {60, 300, 1250},
		"MC": {180, 400, 650},
		"MD": {180, 300, 750},
		"SG": {60, 500, 3400},
		"BT": {240, 300, 1250},
		"SP": {180, 300, 1850},
		"LU": {180, 400, 1250},
	}
	templates := TableOne()
	if len(templates) != 7 {
		t.Fatalf("TableOne has %d templates, want 7", len(templates))
	}
	for _, tpl := range templates {
		w, ok := want[tpl.Name]
		if !ok {
			t.Errorf("unexpected template %q", tpl.Name)
			continue
		}
		if tpl.Threads != w.threads || tpl.MemLo != w.lo || tpl.MemHi != w.hi {
			t.Errorf("%s = (%v, %v-%v), want (%v, %v-%v)",
				tpl.Name, tpl.Threads, tpl.MemLo, tpl.MemHi, w.threads, w.lo, w.hi)
		}
	}
}

func TestTemplateByName(t *testing.T) {
	if tpl, ok := TemplateByName("BT"); !ok || tpl.Threads != 240 {
		t.Errorf("TemplateByName(BT) = %+v, %v", tpl, ok)
	}
	if _, ok := TemplateByName("nope"); ok {
		t.Error("TemplateByName accepted an unknown name")
	}
}

func TestInstantiateProducesValidJobs(t *testing.T) {
	r := rng.New(1)
	for _, tpl := range TableOne() {
		for i := 0; i < 50; i++ {
			j := tpl.Instantiate(i, r, 0)
			if err := j.Validate(); err != nil {
				t.Fatalf("%s instance invalid: %v", tpl.Name, err)
			}
			if j.Mem < tpl.MemLo || j.Mem > tpl.MemHi {
				t.Errorf("%s memory %v outside Table I range", j.Name, j.Mem)
			}
			if j.Threads != tpl.Threads {
				t.Errorf("%s declared threads %v, want %v", j.Name, j.Threads, tpl.Threads)
			}
			if j.ActualPeakMem > j.Mem {
				t.Errorf("honest instance %s has actual %v > declared %v", j.Name, j.ActualPeakMem, j.Mem)
			}
		}
	}
}

func TestInstantiateMisestimate(t *testing.T) {
	r := rng.New(2)
	tpl, _ := TemplateByName("KM")
	over := 0
	for i := 0; i < 500; i++ {
		j := tpl.Instantiate(i, r, 1.0) // always misestimate
		if j.ActualPeakMem > j.Mem {
			over++
		}
	}
	if over != 500 {
		t.Errorf("misestimateProb=1 produced %d/500 overshoots", over)
	}
}

func TestGenerateTableOneSet(t *testing.T) {
	r := rng.New(3)
	jobs := GenerateTableOneSet(1000, r)
	if len(jobs) != 1000 {
		t.Fatalf("generated %d jobs", len(jobs))
	}
	if err := ValidateAll(jobs); err != nil {
		t.Fatalf("job set invalid: %v", err)
	}
	// All seven workloads should appear with roughly uniform frequency.
	counts := map[string]int{}
	for _, j := range jobs {
		counts[j.Workload]++
	}
	if len(counts) != 7 {
		t.Errorf("only %d workloads present: %v", len(counts), counts)
	}
	for name, c := range counts {
		if c < 80 || c > 220 {
			t.Errorf("workload %s count %d far from uniform (expect ~143)", name, c)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a := GenerateTableOneSet(50, rng.New(7))
	b := GenerateTableOneSet(50, rng.New(7))
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Mem != b[i].Mem ||
			a[i].SequentialTime() != b[i].SequentialTime() {
			t.Fatalf("generation not deterministic at job %d", i)
		}
	}
}

func TestCalibrationSequentialTimeScale(t *testing.T) {
	// The Table II calibration: 1000 jobs, 8 nodes, exclusive devices =>
	// makespan ≈ total sequential time / 8 ≈ 3568 s. So mean sequential
	// time should be in the 20–40 s band.
	jobs := GenerateTableOneSet(1000, rng.New(11))
	mean := job_meanSeqSeconds(jobs)
	if mean < 20 || mean > 40 {
		t.Errorf("mean sequential time %.1f s outside calibration band [20, 40]", mean)
	}
}

func job_meanSeqSeconds(jobs []*Job) float64 {
	var total units.Tick
	for _, j := range jobs {
		total += j.SequentialTime()
	}
	return total.Seconds() / float64(len(jobs))
}

func TestCalibrationExclusiveUtilization(t *testing.T) {
	// §III: under exclusive allocation, average core utilization ~50%
	// (38–63% across mixes). Analytically, a dedicated device's core
	// utilization for one job is duty-cycle-weighted core occupancy.
	jobs := GenerateTableOneSet(2000, rng.New(13))
	var weighted, total float64
	for _, j := range jobs {
		var busyCoreTicks float64
		for _, p := range j.Phases {
			if p.Kind == OffloadPhase {
				busyCoreTicks += float64(p.Duration) * float64(p.Threads.Cores()) / 60.0
			}
		}
		weighted += busyCoreTicks
		total += float64(j.SequentialTime())
	}
	util := weighted / total
	if util < 0.38 || util < 0.40 || util > 0.63 {
		t.Errorf("analytic exclusive-mode utilization %.2f outside the paper's 0.38-0.63 band", util)
	}
}

func TestValidateAllDuplicateIDs(t *testing.T) {
	a, b := validJob(), validJob()
	if err := ValidateAll([]*Job{a, b}); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestTotalSequentialTime(t *testing.T) {
	a, b := validJob(), validJob()
	b.ID = 2
	if got := TotalSequentialTime([]*Job{a, b}); got != 9000 {
		t.Errorf("TotalSequentialTime = %v, want 9000", got)
	}
}

func TestPhaseKindString(t *testing.T) {
	if HostPhase.String() != "host" || OffloadPhase.String() != "offload" {
		t.Error("PhaseKind strings wrong")
	}
}

func TestMakespanLowerBound(t *testing.T) {
	a, b := validJob(), validJob() // 4500 each
	b.ID = 2
	jobs := []*Job{a, b}
	// 2 devices: total/2 = 4500 = critical path.
	if got := MakespanLowerBound(jobs, 2); got != 4500 {
		t.Errorf("bound(2) = %v, want 4500", got)
	}
	// 1 device: total = 9000 dominates.
	if got := MakespanLowerBound(jobs, 1); got != 9000 {
		t.Errorf("bound(1) = %v, want 9000", got)
	}
	// Many devices: critical path dominates.
	if got := MakespanLowerBound(jobs, 10); got != 4500 {
		t.Errorf("bound(10) = %v, want 4500", got)
	}
	if MakespanLowerBound(nil, 2) != 0 || MakespanLowerBound(jobs, 0) != 0 {
		t.Error("degenerate bounds not 0")
	}
}
