// Package job models Xeon Phi offload jobs: host-launched processes that
// alternate between host computation and offloaded kernels on the
// coprocessor (paper §II-A, Figs. 2–3).
//
// A Job carries the two pieces of information the paper's scheduler requires
// the user to declare (§IV-B) — a maximum coprocessor memory requirement and
// a maximum thread requirement — plus the phase profile that the simulator
// executes. The profile is *not* visible to any scheduler (the paper
// explicitly assumes job execution times are unknown); only the device
// simulator consumes it.
package job

import (
	"errors"
	"fmt"

	"phishare/internal/units"
)

// PhaseKind discriminates the two phase types of an offload job.
type PhaseKind int

const (
	// HostPhase runs on the host CPU; the coprocessor is idle for this job.
	HostPhase PhaseKind = iota
	// OffloadPhase runs a kernel on the coprocessor, occupying Threads
	// hardware threads for the phase duration.
	OffloadPhase
)

func (k PhaseKind) String() string {
	switch k {
	case HostPhase:
		return "host"
	case OffloadPhase:
		return "offload"
	}
	return fmt.Sprintf("PhaseKind(%d)", int(k))
}

// Phase is one segment of a job's execution profile.
type Phase struct {
	Kind     PhaseKind
	Duration units.Tick
	// Threads is the number of coprocessor hardware threads the offload
	// occupies; zero for host phases. Offloads within one job may use fewer
	// threads than the job's declared maximum (paper §III: "offloads do not
	// always use all 60 cores all the time").
	Threads units.Threads
	// TransferIn and TransferOut are the offload's DMA payload sizes (the
	// pragma's in/out clauses, Fig. 1), moved across the node's shared
	// PCIe link before and after the kernel. Zero — the default, and the
	// Table I calibration's choice — folds transfer time into Duration;
	// explicit sizes expose transfer contention between co-resident jobs
	// (ablation A5). Host phases must leave both zero.
	TransferIn, TransferOut units.MB
}

// Job is a schedulable Xeon Phi offload job.
type Job struct {
	// ID is unique within a job set.
	ID int
	// Name identifies the instance, e.g. "KM#17" or "syn-normal#3".
	Name string
	// Workload is the generating template's name ("KM", "MC", ... or
	// "synthetic").
	Workload string

	// Mem is the user-declared maximum coprocessor memory requirement.
	// The knapsack treats it as the item weight; COSMIC enforces it as a
	// container limit.
	Mem units.MB
	// Threads is the user-declared maximum thread requirement, used by the
	// knapsack value function (Eq. 1).
	Threads units.Threads

	// ActualPeakMem is the true peak device memory the job touches. It is
	// normally <= Mem; a job whose user underestimated (ActualPeakMem > Mem)
	// is killed by COSMIC's memory container, and in raw MPSS mode can
	// trigger the device OOM killer (paper §II-C, §IV-D2).
	ActualPeakMem units.MB

	// Phases is the execution profile, hidden from schedulers.
	Phases []Phase
}

// Validate checks internal consistency of the job description.
func (j *Job) Validate() error {
	if j.Mem <= 0 {
		return fmt.Errorf("job %s: non-positive declared memory %v", j.Name, j.Mem)
	}
	if j.Threads <= 0 {
		return fmt.Errorf("job %s: non-positive declared threads %v", j.Name, j.Threads)
	}
	if len(j.Phases) == 0 {
		return errors.New("job " + j.Name + ": empty phase profile")
	}
	for i, p := range j.Phases {
		if p.Duration <= 0 {
			return fmt.Errorf("job %s: phase %d has non-positive duration %v", j.Name, i, p.Duration)
		}
		if p.TransferIn < 0 || p.TransferOut < 0 {
			return fmt.Errorf("job %s: phase %d has negative transfer size", j.Name, i)
		}
		switch p.Kind {
		case HostPhase:
			if p.Threads != 0 {
				return fmt.Errorf("job %s: host phase %d requests %v threads", j.Name, i, p.Threads)
			}
			if p.TransferIn != 0 || p.TransferOut != 0 {
				return fmt.Errorf("job %s: host phase %d declares transfers", j.Name, i)
			}
		case OffloadPhase:
			if p.Threads <= 0 {
				return fmt.Errorf("job %s: offload phase %d requests no threads", j.Name, i)
			}
			if p.Threads > j.Threads {
				return fmt.Errorf("job %s: offload phase %d requests %v threads, above declared max %v",
					j.Name, i, p.Threads, j.Threads)
			}
		default:
			return fmt.Errorf("job %s: phase %d has invalid kind %v", j.Name, i, p.Kind)
		}
	}
	return nil
}

// SequentialTime is the job's run time when it has the coprocessor to
// itself: the sum of all phase durations.
func (j *Job) SequentialTime() units.Tick {
	var total units.Tick
	for _, p := range j.Phases {
		total += p.Duration
	}
	return total
}

// OffloadTime is the total time spent in offload phases.
func (j *Job) OffloadTime() units.Tick {
	var total units.Tick
	for _, p := range j.Phases {
		if p.Kind == OffloadPhase {
			total += p.Duration
		}
	}
	return total
}

// OffloadDutyCycle is the fraction of the sequential run time spent
// offloading, in [0, 1]. The sharing opportunity quantified in §III comes
// from this being well below 1 and from offloads using fewer than 240
// threads.
func (j *Job) OffloadDutyCycle() float64 {
	seq := j.SequentialTime()
	if seq == 0 {
		return 0
	}
	return float64(j.OffloadTime()) / float64(seq)
}

// MaxOffloadThreads is the widest offload phase in the profile.
func (j *Job) MaxOffloadThreads() units.Threads {
	var max units.Threads
	for _, p := range j.Phases {
		if p.Kind == OffloadPhase && p.Threads > max {
			max = p.Threads
		}
	}
	return max
}

// String summarizes the job for logs.
func (j *Job) String() string {
	return fmt.Sprintf("%s(mem=%v threads=%v seq=%v duty=%.2f)",
		j.Name, j.Mem, j.Threads, j.SequentialTime(), j.OffloadDutyCycle())
}

// TotalSequentialTime sums SequentialTime over a job set: the serialized
// lower bound used in makespan sanity checks.
func TotalSequentialTime(jobs []*Job) units.Tick {
	var total units.Tick
	for _, j := range jobs {
		total += j.SequentialTime()
	}
	return total
}

// MakespanLowerBound returns the classical makespan lower bound for
// *exclusive* (one job per device) scheduling: the larger of the total
// sequential work divided by the device count and the critical path (the
// longest single job). The MC baseline can never beat it. Sharing
// schedulers can — overlapping one job's host phases with another's
// offloads compresses the per-device serial sum, which is precisely the
// paper's thesis — so reports print it as the line sharing must cross,
// not as a universal floor. (Only the critical-path term binds every
// schedule.)
func MakespanLowerBound(jobs []*Job, devices int) units.Tick {
	if devices <= 0 || len(jobs) == 0 {
		return 0
	}
	var total, longest units.Tick
	for _, j := range jobs {
		s := j.SequentialTime()
		total += s
		if s > longest {
			longest = s
		}
	}
	if avg := total / units.Tick(devices); avg > longest {
		return avg
	}
	return longest
}

// ValidateAll validates every job and checks ID uniqueness.
func ValidateAll(jobs []*Job) error {
	seen := map[int]bool{}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("duplicate job ID %d (%s)", j.ID, j.Name)
		}
		seen[j.ID] = true
	}
	return nil
}
