package job

import (
	"fmt"

	"phishare/internal/rng"
	"phishare/internal/units"
)

// Template generates instances of one of the paper's Table I workloads.
//
// Table I fixes each application's thread request and memory-request range;
// the phase-profile parameters (offload count, offload/host durations) are
// our calibration of the missing execution profiles, chosen so that the
// §III motivation numbers reproduce: exclusive-mode core utilization around
// 50% for the real mix, and sequential job times that put the 1000-job
// 8-node MC makespan at the paper's ~3500 s scale (Table II).
type Template struct {
	Name        string
	Description string

	Threads units.Threads // declared (and widest-offload) thread request
	MemLo   units.MB      // memory request range across instances (Table I)
	MemHi   units.MB

	// Phase profile calibration. An instance has:
	//   setup host phase, then NumOffloads × (offload, host gap),
	// with the trailing host gap serving as teardown.
	NumOffloadsLo, NumOffloadsHi int
	OffloadLo, OffloadHi         units.Tick // single offload duration range
	HostGapLo, HostGapHi         units.Tick // host time between offloads
	SetupLo, SetupHi             units.Tick // initial host phase

	// NarrowOffloadFrac is the probability that an individual offload uses
	// half the declared threads — §III's second underutilization source
	// ("a job may not use all 60 cores for all its offloads").
	NarrowOffloadFrac float64
}

// TableOne returns the seven Xeon Phi workloads of the paper's Table I.
//
//	Name | Threads | Memory       | Description
//	KM   |  60     | 300–1250 MB  | K-means (Lloyd), 4M pts/3 dims/32 means
//	MC   | 180     | 400–650 MB   | Monte Carlo, N=32M paths, T=1000
//	MD   | 180     | 300–750 MB   | Molecular dynamics, 25000 particles
//	SG   |  60     | 500–3400 MB  | SGEMM chain, 8K×8K, 10 iterations
//	BT   | 240     | 300–1250 MB  | NPB BT (CFD, block tri-diagonal)
//	SP   | 180     | 300–1850 MB  | NPB SP (CFD, scalar penta-diagonal)
//	LU   | 180     | 400–1250 MB  | NPB LU (CFD, Gauss-Seidel)
func TableOne() []Template {
	s := units.Second
	return []Template{
		{
			Name: "KM", Description: "K-means clustering (Lloyd), 4M points/3 dims/32 means",
			Threads: 60, MemLo: 300, MemHi: 1250,
			NumOffloadsLo: 8, NumOffloadsHi: 12,
			OffloadLo: 1200 * units.Millisecond, OffloadHi: 1700 * units.Millisecond,
			HostGapLo: 600 * units.Millisecond, HostGapHi: 900 * units.Millisecond,
			SetupLo: 1 * s, SetupHi: 2 * s,
			NarrowOffloadFrac: 0.2,
		},
		{
			Name: "MC", Description: "Monte Carlo simulation, N=32M paths, T=1000 steps",
			Threads: 180, MemLo: 400, MemHi: 650,
			NumOffloadsLo: 4, NumOffloadsHi: 6,
			OffloadLo: 3500 * units.Millisecond, OffloadHi: 5 * s,
			HostGapLo: 1 * s, HostGapHi: 2 * s,
			SetupLo: 1 * s, SetupHi: 2 * s,
			NarrowOffloadFrac: 0.1,
		},
		{
			Name: "MD", Description: "Molecular dynamics, 25000 particles, 5 time steps",
			Threads: 180, MemLo: 300, MemHi: 750,
			NumOffloadsLo: 5, NumOffloadsHi: 5, // one offload per time step
			OffloadLo: 2500 * units.Millisecond, OffloadHi: 3500 * units.Millisecond,
			HostGapLo: 1200 * units.Millisecond, HostGapHi: 2 * s,
			SetupLo: 1 * s, SetupHi: 2 * s,
			NarrowOffloadFrac: 0.15,
		},
		{
			Name: "SG", Description: "SGEMM chain, 8K x 8K matrices, 10 iterations",
			Threads: 60, MemLo: 500, MemHi: 3400,
			NumOffloadsLo: 10, NumOffloadsHi: 10,
			OffloadLo: 2 * s, OffloadHi: 3 * s,
			HostGapLo: 400 * units.Millisecond, HostGapHi: 800 * units.Millisecond,
			SetupLo: 1500 * units.Millisecond, SetupHi: 3 * s, // large transfers
			NarrowOffloadFrac: 0.1,
		},
		{
			Name: "BT", Description: "NPB BT: CFD block tri-diagonal solver, 162^3 grid",
			Threads: 240, MemLo: 300, MemHi: 1250,
			NumOffloadsLo: 8, NumOffloadsHi: 10,
			OffloadLo: 2500 * units.Millisecond, OffloadHi: 3500 * units.Millisecond,
			HostGapLo: 500 * units.Millisecond, HostGapHi: 1 * s,
			SetupLo: 1 * s, SetupHi: 2 * s,
			NarrowOffloadFrac: 0.1,
		},
		{
			Name: "SP", Description: "NPB SP: CFD scalar penta-diagonal solver, 162^3 grid",
			Threads: 180, MemLo: 300, MemHi: 1850,
			NumOffloadsLo: 7, NumOffloadsHi: 9,
			OffloadLo: 2 * s, OffloadHi: 3 * s,
			HostGapLo: 800 * units.Millisecond, HostGapHi: 1500 * units.Millisecond,
			SetupLo: 1 * s, SetupHi: 2 * s,
			NarrowOffloadFrac: 0.15,
		},
		{
			Name: "LU", Description: "NPB LU: CFD lower-upper Gauss-Seidel solver, 162^3 grid",
			Threads: 180, MemLo: 400, MemHi: 1250,
			NumOffloadsLo: 6, NumOffloadsHi: 8,
			OffloadLo: 2 * s, OffloadHi: 3 * s,
			HostGapLo: 1 * s, HostGapHi: 1800 * units.Millisecond,
			SetupLo: 1 * s, SetupHi: 2 * s,
			NarrowOffloadFrac: 0.15,
		},
	}
}

// TemplateByName finds a Table I template.
func TemplateByName(name string) (Template, bool) {
	for _, t := range TableOne() {
		if t.Name == name {
			return t, true
		}
	}
	return Template{}, false
}

// Instantiate draws one job instance from the template.
//
// misestimateProb is the probability that the user underestimated the job's
// memory (ActualPeakMem > Mem), the failure COSMIC's memory containers
// guard against; pass 0 for the paper's main experiments, where requests
// are honest.
func (t Template) Instantiate(id int, r *rng.Source, misestimateProb float64) *Job {
	j := &Job{
		ID:       id,
		Name:     fmt.Sprintf("%s#%d", t.Name, id),
		Workload: t.Name,
		Mem:      units.MB(r.UniformInt(int(t.MemLo), int(t.MemHi))),
		Threads:  t.Threads,
	}
	j.ActualPeakMem = units.MB(float64(j.Mem) * r.Uniform(0.85, 1.0))
	if misestimateProb > 0 && r.Float64() < misestimateProb {
		j.ActualPeakMem = units.MB(float64(j.Mem) * r.Uniform(1.05, 1.5))
	}

	k := r.UniformInt(t.NumOffloadsLo, t.NumOffloadsHi)
	j.Phases = append(j.Phases, Phase{
		Kind:     HostPhase,
		Duration: units.Tick(r.UniformInt(int(t.SetupLo), int(t.SetupHi))),
	})
	for i := 0; i < k; i++ {
		th := t.Threads
		if r.Float64() < t.NarrowOffloadFrac {
			th = (t.Threads/2/4 + 1) * 4 // roughly half, core-aligned
		}
		j.Phases = append(j.Phases, Phase{
			Kind:     OffloadPhase,
			Duration: units.Tick(r.UniformInt(int(t.OffloadLo), int(t.OffloadHi))),
			Threads:  th,
		})
		j.Phases = append(j.Phases, Phase{
			Kind:     HostPhase,
			Duration: units.Tick(r.UniformInt(int(t.HostGapLo), int(t.HostGapHi))),
		})
	}
	return j
}

// GenerateTableOneSet draws n job instances uniformly across the seven
// Table I workloads, reproducing the paper's "1000 independent job
// instances" sets (§III, §V-A). Jobs are returned in submission order.
func GenerateTableOneSet(n int, r *rng.Source) []*Job {
	templates := TableOne()
	jobs := make([]*Job, n)
	for i := range jobs {
		t := templates[r.Intn(len(templates))]
		jobs[i] = t.Instantiate(i, r, 0)
	}
	return jobs
}
