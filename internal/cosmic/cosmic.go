// Package cosmic reimplements the node-level behaviour of COSMIC [6], the
// Xeon Phi middleware the paper layers its cluster scheduler on (§IV-D2).
//
// COSMIC is a transparent add-on to MPSS that makes coprocessor sharing
// safe within one compute node. Exactly the three behaviours the paper
// relies on are implemented:
//
//  1. Offload scheduling: an offload is dispatched to the device only when
//     enough free hardware threads exist, so thread oversubscription never
//     happens. Waiting offloads are served in arrival order: a wide offload
//     at the head blocks later ones even if they would fit, which preserves
//     fairness and prevents starvation of wide offloads (a 240-thread
//     offload would otherwise wait forever behind a stream of narrow ones).
//     The head-of-line idleness this causes on width-incompatible job mixes
//     is precisely the cost the knapsack scheduler avoids by packing
//     complementary thread widths. Setting Bypass selects a work-conserving
//     first-fit scan instead (the dispatch-discipline ablation).
//
//  2. Core affinitization: dispatched offloads are pinned to disjoint
//     cores, so two 120-thread offloads use all 60 cores rather than
//     fighting over the same 30 (the device's Affinitized accounting).
//
//  3. Memory containers: a job whose actual memory exceeds its declared
//     limit is killed at the moment of violation, protecting the other
//     tenants from a user's underestimate.
//
// COSMIC also performs node-level memory admission: a job is admitted to
// the device only when its declared memory fits alongside the declared
// memory of the jobs already admitted. This is how "COSMIC prevents them
// from oversubscribing memory" for the MCC configuration (§V), whose
// cluster level packs jobs to nodes *arbitrarily*: a job that lands on a
// full device waits at the node — holding its Condor slot — until memory
// frees. The knapsack scheduler's placements always fit, so under MCCK
// admission never blocks; the blocked-slot waste is precisely the gap
// between random and sharing-aware packing.
package cosmic

import (
	"fmt"

	"phishare/internal/job"
	"phishare/internal/obs"
	"phishare/internal/phi"
	"phishare/internal/sim"
	"phishare/internal/units"
)

// Stats aggregates manager activity.
type Stats struct {
	OffloadsDispatched int
	OffloadsQueued     int // offloads that had to wait at least once
	ContainerKills     int
	MaxQueueLen        int
	// TotalQueueWait accumulates time offloads spent waiting for threads;
	// the serialization cost visible in Fig. 2's time-multiplexed case.
	TotalQueueWait units.Tick
	// AdmissionsBlocked counts jobs that arrived at a device without room
	// for their declared memory and had to wait (holding their host slot).
	AdmissionsBlocked int
	// TotalAdmitWait accumulates that waiting time.
	TotalAdmitWait units.Tick
	// MaxAdmitted is the peak number of concurrently admitted jobs.
	MaxAdmitted int
}

// request is one offload waiting for thread capacity.
type request struct {
	proc     *phi.Process
	threads  units.Threads
	work     units.Tick
	done     func(phi.OffloadOutcome)
	enqueued units.Tick
	waited   bool
}

// admitReq is one job waiting for node-level memory admission.
type admitReq struct {
	j       *job.Job
	ready   func(*phi.Process)
	arrived units.Tick
}

// Manager is the COSMIC instance guarding one coprocessor.
type Manager struct {
	eng    *sim.Lane
	dev    *phi.Device
	queue  []*request
	admitQ []*admitReq
	// admitted holds the live admitted processes in admission order.
	// It was a pointer-keyed map (philint:mapiter's live instance); the
	// only iteration was an order-insensitive integer sum, but a slice
	// keeps every present and future traversal deterministic by
	// construction instead of by adjudication.
	admitted []*phi.Process
	stats    Stats

	// reqFree recycles request structs: one is taken per Offload and
	// returned (zeroed) the moment it leaves the system — dispatched, or
	// aborted because its owner died — so a long run allocates only as many
	// requests as its peak queue depth. pumpScratch is pump's double buffer:
	// the surviving queue is rebuilt into it and the buffers swap roles, so
	// the rebuild allocates nothing.
	reqFree     []*request
	pumpScratch []*request

	// Bypass enables first-fit scanning of the wait queue: narrow offloads
	// may overtake a blocked wide one. Default false (strict arrival
	// order); see the package comment.
	Bypass bool

	// Observability (SetObserver); nil handles no-op when disabled. The
	// View buffers epoch-context emissions in the node lane's shard so
	// instrumented runs stay parallel (see obs.View).
	obs           *obs.View
	obsDev        any // device ID pre-boxed once so hot emit sites skip the per-event string-header allocation
	obsQDepth     *obs.Gauge
	obsAdmitDepth *obs.Gauge
	obsDispatched *obs.Counter
	obsWaited     *obs.Counter
	obsKills      *obs.Counter
	obsBlocked    *obs.Counter
	obsHolWait    *obs.Histogram
	obsAdmitWait  *obs.Histogram
}

// New wraps dev with a COSMIC manager and enables affinitized core
// accounting on it.
func New(eng *sim.Lane, dev *phi.Device) *Manager {
	dev.Affinitized = true
	return &Manager{eng: eng, dev: dev}
}

// Device exposes the managed coprocessor.
func (m *Manager) Device() *phi.Device { return m.dev }

// SetObserver attaches the observability layer; series are labelled with
// the managed device's ID. A nil observer disables instrumentation.
func (m *Manager) SetObserver(o *obs.Observer) {
	m.obs = o.View(m.eng)
	dev := m.dev.ID
	m.obsDev = dev
	m.obsQDepth = o.Gauge("cosmic_offload_queue_depth", "device", dev)
	m.obsAdmitDepth = o.Gauge("cosmic_admit_queue_depth", "device", dev)
	m.obsDispatched = o.Counter("cosmic_offloads_dispatched_total", "device", dev)
	m.obsWaited = o.Counter("cosmic_offloads_waited_total", "device", dev)
	m.obsKills = o.Counter("cosmic_container_kills_total", "device", dev)
	m.obsBlocked = o.Counter("cosmic_admissions_blocked_total", "device", dev)
	waitBounds := []float64{0.5, 1, 2, 5, 10, 30, 60, 120, 300}
	m.obsHolWait = o.Histogram("cosmic_offload_wait_seconds", waitBounds, "device", dev)
	m.obsAdmitWait = o.Histogram("cosmic_admit_wait_seconds", waitBounds, "device", dev)
}

// noteDepth refreshes the queue-depth gauges; called wherever either queue
// mutates.
func (m *Manager) noteDepth() {
	m.obsQDepth.Set(float64(len(m.queue)))
	m.obsAdmitDepth.Set(float64(len(m.admitQ)))
}

// Stats returns activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// QueueLen is the number of offloads waiting for thread capacity.
func (m *Manager) QueueLen() int { return len(m.queue) }

// Attach admits a job to the device under a memory container, bypassing
// memory admission (for callers that have already reserved capacity, and
// for tests). If the job's committed memory already exceeds its declared
// limit at admission, it is killed immediately (the process is returned
// dead, with the kill notification delivered asynchronously).
func (m *Manager) Attach(j *job.Job) *phi.Process {
	p := m.dev.Attach(j)
	m.admitted = append(m.admitted, p)
	m.noteAdmitted()
	m.enforceContainer(p, p.Usage())
	return p
}

// Admit requests node-level memory admission for j: ready is called (with
// the attached process) once the job's declared memory fits alongside the
// already-admitted jobs' declared memory. Jobs that fit immediately are
// admitted synchronously; others wait in arrival order.
func (m *Manager) Admit(j *job.Job, ready func(*phi.Process)) {
	if j.Mem > m.dev.Config().Memory {
		// The declared limit exceeds physical device memory: the container
		// cannot be created at all. Fail the job immediately rather than
		// let it wait for capacity that can never exist. The reject must not
		// attach first — even a transient commit of the doomed job's memory
		// could push the device over and OOM-kill an innocent co-resident.
		m.stats.ContainerKills++
		m.obsKills.Inc()
		if m.obs != nil {
			m.obs.Emit(m.eng.Now(), obs.LayerCosmic, "container_kill",
				obs.F("device", m.obsDev), obs.F("job", j.ID),
				obs.F("declared_mb", j.Mem), obs.F("device_mb", m.dev.Config().Memory))
		}
		ready(m.dev.FailAttach(j, phi.KillContainer))
		return
	}
	if len(m.admitQ) == 0 && j.Mem <= m.DeclaredFree() {
		ready(m.Attach(j))
		return
	}
	m.stats.AdmissionsBlocked++
	m.obsBlocked.Inc()
	m.admitQ = append(m.admitQ, &admitReq{j: j, ready: ready, arrived: m.eng.Now()})
	if m.obs != nil {
		m.obs.Emit(m.eng.Now(), obs.LayerCosmic, "admit_blocked",
			obs.F("device", m.obsDev), obs.F("job", j.ID),
			obs.F("declared_mb", j.Mem), obs.F("declared_free_mb", m.DeclaredFree()),
			obs.F("admit_queue", len(m.admitQ)))
	}
	m.noteDepth()
}

// DeclaredFree is the device memory not reserved by admitted live jobs.
func (m *Manager) DeclaredFree() units.MB {
	free := m.dev.Config().Memory
	live := m.admitted[:0]
	for _, p := range m.admitted {
		if !p.Alive() {
			continue // purge: process died outside our paths
		}
		live = append(live, p)
		free -= p.Job.Mem
	}
	// Clear the purged tail so dead processes do not leak through the
	// shared backing array.
	for i := len(live); i < len(m.admitted); i++ {
		m.admitted[i] = nil
	}
	m.admitted = live
	return free
}

// AdmitQueueLen is the number of jobs waiting for memory admission.
func (m *Manager) AdmitQueueLen() int { return len(m.admitQ) }

func (m *Manager) noteAdmitted() {
	if n := len(m.admitted); n > m.stats.MaxAdmitted {
		m.stats.MaxAdmitted = n
	}
}

// dropAdmitted removes p from the admitted list, preserving the order of
// the remaining processes.
func (m *Manager) dropAdmitted(p *phi.Process) {
	for i, q := range m.admitted {
		if q == p {
			copy(m.admitted[i:], m.admitted[i+1:])
			m.admitted[len(m.admitted)-1] = nil // release the vacated tail slot
			m.admitted = m.admitted[:len(m.admitted)-1]
			return
		}
	}
}

// pumpAdmits admits waiting jobs in arrival order while memory lasts.
func (m *Manager) pumpAdmits() {
	for len(m.admitQ) > 0 {
		head := m.admitQ[0]
		if head.j.Mem > m.DeclaredFree() {
			return
		}
		m.admitQ = m.admitQ[1:]
		wait := m.eng.Now() - head.arrived
		m.stats.TotalAdmitWait += wait
		m.obsAdmitWait.Observe(wait.Seconds())
		if m.obs != nil {
			m.obs.Emit(m.eng.Now(), obs.LayerCosmic, "admitted",
				obs.F("device", m.obsDev), obs.F("job", head.j.ID),
				obs.F("wait_ms", wait))
		}
		m.noteDepth()
		head.ready(m.Attach(head.j))
	}
}

// Detach releases a job's process and any queued offloads, and re-runs
// memory admission with the freed capacity.
func (m *Manager) Detach(p *phi.Process) {
	m.dev.Detach(p)
	m.dropAdmitted(p)
	// Dead-process requests are dropped lazily by pump, but flushing now
	// frees capacity bookkeeping sooner.
	m.pump()
	m.pumpAdmits()
}

// Recover re-runs dispatch and memory admission after an externally caused
// process death (a whole-device failure or an injected offload fault). The
// host-side runner only detaches on successful completion, so without this
// nudge the capacity freed by a mass kill stays stranded until the next
// natural completion — possibly forever, if the kill emptied the device.
func (m *Manager) Recover() {
	m.pump()
	m.pumpAdmits()
}

// Offload submits an offload for p. It dispatches immediately when the
// device has enough free hardware threads; otherwise it queues. done fires
// exactly once: OffloadCompleted on success, OffloadAborted if the process
// dies first.
//
// An offload wider than the device's hardware thread count can never be
// scheduled without oversubscription and indicates a workload/device
// mismatch; it panics.
func (m *Manager) Offload(p *phi.Process, threads units.Threads, work units.Tick, done func(phi.OffloadOutcome)) {
	if threads > m.dev.Config().HWThreads() {
		panic(fmt.Sprintf("cosmic: offload of %v exceeds device hardware threads %v",
			threads, m.dev.Config().HWThreads()))
	}
	if !p.Alive() {
		m.eng.After(0, func() { done(phi.OffloadAborted) })
		return
	}
	// The offload is about to commit the job's peak memory; the container
	// check belongs here, before the device would commit it. A job whose
	// user underestimated memory therefore dies at its first offload — the
	// container catching the oversized allocation — not at submission.
	if !m.enforceContainer(p, p.Job.ActualPeakMem) {
		m.eng.After(0, func() { done(phi.OffloadAborted) })
		return
	}
	req := m.newRequest()
	*req = request{proc: p, threads: threads, work: work, done: done, enqueued: m.eng.Now()}
	m.queue = append(m.queue, req)
	m.pump()
	// Record queue depth only after the pump: an offload that dispatches
	// immediately on an idle device never waited, so it must not count
	// toward the peak.
	if len(m.queue) > m.stats.MaxQueueLen {
		m.stats.MaxQueueLen = len(m.queue)
	}
	if !dispatched(req, m.queue) {
		req.waited = true
		m.stats.OffloadsQueued++
		m.obsWaited.Inc()
		if m.obs != nil {
			m.obs.Emit(m.eng.Now(), obs.LayerCosmic, "offload_waited",
				obs.F("device", m.obsDev), obs.F("job", p.Job.ID),
				obs.F("threads", threads), obs.F("queue", len(m.queue)))
		}
	}
}

func dispatched(req *request, queue []*request) bool {
	for _, q := range queue {
		if q == req {
			return false
		}
	}
	return true
}

// newRequest takes a request from the free list, or allocates one.
func (m *Manager) newRequest() *request {
	if n := len(m.reqFree); n > 0 {
		req := m.reqFree[n-1]
		m.reqFree[n-1] = nil
		m.reqFree = m.reqFree[:n-1]
		return req
	}
	return &request{}
}

// freeRequest zeroes req (dropping its proc/done references) and returns it
// to the free list. Callers must have captured anything they still need —
// the Offload path's dispatched() check only compares the pointer, which
// stays valid; no new request can be taken from the list before that check
// runs, because the intervening code path allocates none.
func (m *Manager) freeRequest(req *request) {
	*req = request{}
	m.reqFree = append(m.reqFree, req)
}

// enforceContainer kills p if committing wouldCommit MB would exceed the
// job's declared limit — COSMIC's Linux-container memory cap tripping on
// the allocation. Returns false if the process was (or already is) dead.
func (m *Manager) enforceContainer(p *phi.Process, wouldCommit units.MB) bool {
	if !p.Alive() {
		return false
	}
	if wouldCommit > p.Job.Mem {
		m.stats.ContainerKills++
		m.obsKills.Inc()
		if m.obs != nil {
			m.obs.Emit(m.eng.Now(), obs.LayerCosmic, "container_kill",
				obs.F("device", m.obsDev), obs.F("job", p.Job.ID),
				obs.F("declared_mb", p.Job.Mem), obs.F("would_commit_mb", wouldCommit))
		}
		m.dev.Kill(p, phi.KillContainer)
		m.dropAdmitted(p)
		m.pump()
		m.pumpAdmits()
		return false
	}
	return true
}

// pump dispatches queued offloads while capacity lasts, in arrival order
// (or first-fit when Bypass is set). Requests whose owner died are dropped
// wherever they sit — they consume no threads.
func (m *Manager) pump() {
	free := m.dev.FreeHWThreads()
	remaining := m.pumpScratch[:0]
	blocked := false
	for _, req := range m.queue {
		switch {
		case !req.proc.Alive():
			// Owner died while queued: abort its offload.
			done := req.done
			m.eng.After(0, func() { done(phi.OffloadAborted) })
			m.freeRequest(req)
		case (!blocked || m.Bypass) && req.threads <= free:
			free -= req.threads
			m.dispatch(req)
		default:
			blocked = true
			remaining = append(remaining, req)
		}
	}
	// Swap buffers: the old queue (its surviving entries now in remaining)
	// becomes the next pump's scratch.
	m.pumpScratch = m.queue[:0]
	m.queue = remaining
	m.noteDepth()
}

func (m *Manager) dispatch(req *request) {
	m.stats.OffloadsDispatched++
	wait := m.eng.Now() - req.enqueued
	m.stats.TotalQueueWait += wait
	m.obsDispatched.Inc()
	m.obsHolWait.Observe(wait.Seconds())
	if m.obs != nil && req.waited {
		m.obs.Emit(m.eng.Now(), obs.LayerCosmic, "offload_dispatched",
			obs.F("device", m.obsDev), obs.F("job", req.proc.Job.ID),
			obs.F("threads", req.threads), obs.F("wait_ms", wait))
	}
	done := req.done
	m.dev.StartOffload(req.proc, req.threads, req.work, func(o phi.OffloadOutcome) {
		done(o)
		// Completion frees threads: try to dispatch waiters. Re-running
		// memory admission here also recovers capacity stranded by any
		// process death that bypassed Detach (e.g. a device OOM kill).
		m.pump()
		m.pumpAdmits()
	})
	m.freeRequest(req)
}
