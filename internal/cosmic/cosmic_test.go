package cosmic

import (
	"testing"

	"phishare/internal/job"
	"phishare/internal/phi"
	"phishare/internal/rng"
	"phishare/internal/sim"
	"phishare/internal/units"
)

func mkJob(id int, mem, actual units.MB, threads units.Threads) *job.Job {
	return &job.Job{
		ID: id, Name: "j", Workload: "test",
		Mem: mem, Threads: threads, ActualPeakMem: actual,
		Phases: []job.Phase{{Kind: job.OffloadPhase, Duration: 1000, Threads: threads}},
	}
}

func newMgr(eng *sim.Engine) *Manager {
	dev := phi.NewDevice(eng.NodeLane(0), "node0/mic0", phi.BareConfig(), rng.New(1), nil)
	return New(eng.NodeLane(0), dev)
}

func TestNewEnablesAffinitization(t *testing.T) {
	eng := sim.New()
	m := newMgr(eng)
	if !m.Device().Affinitized {
		t.Error("COSMIC did not enable affinitized core accounting")
	}
}

func TestOffloadDispatchesWhenCapacityFree(t *testing.T) {
	eng := sim.New()
	m := newMgr(eng)
	p := m.Attach(mkJob(1, 500, 450, 120))
	var end units.Tick
	m.Offload(p, 120, 3000, func(o phi.OffloadOutcome) {
		if o != phi.OffloadCompleted {
			t.Errorf("outcome %v", o)
		}
		end = eng.Now()
	})
	eng.Run()
	if end != 3000 {
		t.Errorf("offload ended at %v, want 3000", end)
	}
	if s := m.Stats(); s.OffloadsDispatched != 1 || s.OffloadsQueued != 0 {
		t.Errorf("stats %+v", s)
	}
}

func TestSerializationPreventsOversubscription(t *testing.T) {
	// Fig. 2: two 240-thread offloads cannot overlap; the second waits.
	eng := sim.New()
	m := newMgr(eng)
	p1 := m.Attach(mkJob(1, 500, 450, 240))
	p2 := m.Attach(mkJob(2, 500, 450, 240))
	var e1, e2 units.Tick
	m.Offload(p1, 240, 2000, func(phi.OffloadOutcome) { e1 = eng.Now() })
	m.Offload(p2, 240, 2000, func(phi.OffloadOutcome) { e2 = eng.Now() })
	if m.Device().RunningThreads() > 240 {
		t.Fatalf("device oversubscribed: %v threads", m.Device().RunningThreads())
	}
	eng.Run()
	if e1 != 2000 {
		t.Errorf("first offload ended at %v, want 2000", e1)
	}
	if e2 != 4000 {
		t.Errorf("second offload ended at %v, want 4000 (serialized)", e2)
	}
	if s := m.Stats(); s.OffloadsQueued != 1 || s.TotalQueueWait != 2000 {
		t.Errorf("stats %+v, want 1 queued with 2000 wait", s)
	}
}

func TestPartialOffloadsOverlap(t *testing.T) {
	// Fig. 3: two 120-thread offloads overlap without oversubscription and
	// both finish at full speed.
	eng := sim.New()
	m := newMgr(eng)
	var ends []units.Tick
	for i := 0; i < 2; i++ {
		p := m.Attach(mkJob(i, 500, 450, 120))
		m.Offload(p, 120, 3000, func(phi.OffloadOutcome) { ends = append(ends, eng.Now()) })
	}
	eng.Run()
	for _, e := range ends {
		if e != 3000 {
			t.Errorf("overlapping offload ended at %v, want 3000", e)
		}
	}
}

func TestFIFOHeadOfLineBlocks(t *testing.T) {
	// Running 180; queue [120-wide, 60-narrow]. Strict arrival order: the
	// 60 must NOT overtake the blocked 120 even though it would fit —
	// fairness over work conservation (see package comment).
	eng := sim.New()
	m := newMgr(eng)
	pBig := m.Attach(mkJob(1, 500, 450, 180))
	pMid := m.Attach(mkJob(2, 500, 450, 120))
	pSmall := m.Attach(mkJob(3, 500, 450, 60))
	var midEnd, smallEnd units.Tick
	m.Offload(pBig, 180, 5000, func(phi.OffloadOutcome) {})
	m.Offload(pMid, 120, 1000, func(phi.OffloadOutcome) { midEnd = eng.Now() })
	m.Offload(pSmall, 60, 1000, func(phi.OffloadOutcome) { smallEnd = eng.Now() })
	eng.Run()
	if midEnd != 6000 {
		t.Errorf("mid offload ended at %v, want 6000 (after the 180 frees)", midEnd)
	}
	if smallEnd != 6000 {
		t.Errorf("narrow offload ended at %v, want 6000 (dispatched alongside the 120)", smallEnd)
	}
}

func TestBypassLetsNarrowOffloadPass(t *testing.T) {
	// Same scenario with Bypass: the 60 slips past the blocked 120.
	eng := sim.New()
	m := newMgr(eng)
	m.Bypass = true
	pBig := m.Attach(mkJob(1, 500, 450, 180))
	pMid := m.Attach(mkJob(2, 500, 450, 120))
	pSmall := m.Attach(mkJob(3, 500, 450, 60))
	var midEnd, smallEnd units.Tick
	m.Offload(pBig, 180, 5000, func(phi.OffloadOutcome) {})
	m.Offload(pMid, 120, 1000, func(phi.OffloadOutcome) { midEnd = eng.Now() })
	m.Offload(pSmall, 60, 1000, func(phi.OffloadOutcome) { smallEnd = eng.Now() })
	eng.Run()
	if smallEnd != 1000 {
		t.Errorf("narrow offload ended at %v, want 1000 (first-fit bypass)", smallEnd)
	}
	if midEnd != 6000 {
		t.Errorf("mid offload ended at %v, want 6000 (after the 180 frees)", midEnd)
	}
}

func TestFIFOPreventsWideOffloadStarvation(t *testing.T) {
	// A 240-wide offload behind a stream of 60-wide ones: under FIFO it
	// runs as soon as the residents drain, rather than being leapfrogged
	// forever.
	eng := sim.New()
	m := newMgr(eng)
	for i := 0; i < 4; i++ {
		p := m.Attach(mkJob(i, 100, 90, 60))
		m.Offload(p, 60, 2000, func(phi.OffloadOutcome) {})
	}
	pWide := m.Attach(mkJob(10, 500, 450, 240))
	var wideEnd units.Tick
	m.Offload(pWide, 240, 1000, func(phi.OffloadOutcome) { wideEnd = eng.Now() })
	// More narrow offloads arriving behind the wide one.
	for i := 20; i < 24; i++ {
		p := m.Attach(mkJob(i, 100, 90, 60))
		m.Offload(p, 60, 2000, func(phi.OffloadOutcome) {})
	}
	eng.Run()
	if wideEnd != 3000 {
		t.Errorf("wide offload ended at %v, want 3000 (right after residents drain)", wideEnd)
	}
}

func TestContainerKillsMisestimatingJobAtFirstOffload(t *testing.T) {
	eng := sim.New()
	m := newMgr(eng)
	j := mkJob(1, 500, 800, 60) // actual 800 > declared 500
	p := m.Attach(j)
	if !p.Alive() {
		t.Fatal("job killed at attach; container should trip at first offload")
	}
	var killed phi.KillReason = -1
	p.OnKill = func(r phi.KillReason) { killed = r }
	var outcome phi.OffloadOutcome = -1
	m.Offload(p, 60, 1000, func(o phi.OffloadOutcome) { outcome = o })
	eng.Run()
	if killed != phi.KillContainer {
		t.Errorf("kill reason %v, want container", killed)
	}
	if outcome != phi.OffloadAborted {
		t.Errorf("offload outcome %v, want aborted", outcome)
	}
	if m.Stats().ContainerKills != 1 {
		t.Errorf("stats %+v", m.Stats())
	}
}

func TestContainerKillsAtAttachWhenInitialCommitExceeds(t *testing.T) {
	// Initial commit is 30% of actual; actual = 4x declared trips at attach.
	eng := sim.New()
	m := newMgr(eng)
	j := mkJob(1, 100, 400, 60)
	p := m.Attach(j)
	if p.Alive() {
		t.Error("grossly misestimating job survived attach")
	}
	eng.Run()
}

func TestContainerProtectsOtherTenants(t *testing.T) {
	// An honest job sharing the device with a misestimating one must
	// complete untouched — the whole point of the containers (§IV-D2).
	eng := sim.New()
	m := newMgr(eng)
	honest := m.Attach(mkJob(1, 4000, 3800, 60))
	liar := m.Attach(mkJob(2, 500, 6000, 60))
	var honestOutcome phi.OffloadOutcome = -1
	m.Offload(honest, 60, 1000, func(o phi.OffloadOutcome) { honestOutcome = o })
	m.Offload(liar, 60, 1000, func(phi.OffloadOutcome) {})
	eng.Run()
	if honestOutcome != phi.OffloadCompleted {
		t.Errorf("honest job outcome %v, want completed", honestOutcome)
	}
	if m.Device().Stats().OOMKills != 0 {
		t.Error("device OOM killer fired despite container protection")
	}
}

func TestOffloadForDeadProcessAborts(t *testing.T) {
	eng := sim.New()
	m := newMgr(eng)
	p := m.Attach(mkJob(1, 500, 450, 60))
	m.Detach(p)
	var outcome phi.OffloadOutcome = -1
	m.Offload(p, 60, 1000, func(o phi.OffloadOutcome) { outcome = o })
	eng.Run()
	if outcome != phi.OffloadAborted {
		t.Errorf("outcome %v, want aborted", outcome)
	}
}

func TestQueuedOffloadAbortsWhenOwnerDies(t *testing.T) {
	eng := sim.New()
	m := newMgr(eng)
	p1 := m.Attach(mkJob(1, 500, 450, 240))
	p2 := m.Attach(mkJob(2, 500, 450, 240))
	m.Offload(p1, 240, 5000, func(phi.OffloadOutcome) {})
	var outcome phi.OffloadOutcome = -1
	m.Offload(p2, 240, 1000, func(o phi.OffloadOutcome) { outcome = o })
	eng.At(1000, func() { m.Detach(p2) })
	eng.Run()
	if outcome != phi.OffloadAborted {
		t.Errorf("queued offload outcome %v, want aborted after owner death", outcome)
	}
}

func TestTooWideOffloadPanics(t *testing.T) {
	eng := sim.New()
	m := newMgr(eng)
	j := mkJob(1, 500, 450, 240)
	j.Threads = 300 // bypass normal validation to hit the guard
	p := m.Attach(j)
	defer func() {
		if recover() == nil {
			t.Error("offload wider than hardware did not panic")
		}
	}()
	m.Offload(p, 300, 1000, func(phi.OffloadOutcome) {})
}

func TestManyJobsNeverOversubscribe(t *testing.T) {
	// Stress: 30 jobs with mixed widths; the device must never exceed 240
	// in-flight threads at any event boundary.
	eng := sim.New()
	m := newMgr(eng)
	widths := []units.Threads{60, 120, 180, 240}
	oversub := false
	check := func() {
		if m.Device().RunningThreads() > 240 {
			oversub = true
		}
	}
	for i := 0; i < 30; i++ {
		w := widths[i%len(widths)]
		p := m.Attach(mkJob(i, 100, 90, w))
		i := i
		m.Offload(p, w, units.Tick(500+100*i), func(phi.OffloadOutcome) { check() })
	}
	for tick := units.Tick(0); tick < 20000; tick += 500 {
		eng.At(tick, check)
	}
	eng.Run()
	if oversub {
		t.Error("device oversubscribed under COSMIC")
	}
	if got := m.Device().Stats().OffloadsCompleted; got != 30 {
		t.Errorf("%d offloads completed, want 30", got)
	}
}

func TestMaxQueueLenTracked(t *testing.T) {
	eng := sim.New()
	m := newMgr(eng)
	for i := 0; i < 4; i++ {
		p := m.Attach(mkJob(i, 100, 90, 240))
		m.Offload(p, 240, 1000, func(phi.OffloadOutcome) {})
	}
	eng.Run()
	if m.Stats().MaxQueueLen != 3 {
		t.Errorf("MaxQueueLen = %d, want 3", m.Stats().MaxQueueLen)
	}
}

func TestAdmissionFIFOOrder(t *testing.T) {
	// Admission is strict FIFO: a small job queued behind a blocked big
	// one waits for it (no admission leapfrogging — mirrors the offload
	// queue's fairness rationale).
	eng := sim.New()
	m := newMgr(eng)
	resident := m.Attach(mkJob(0, 6000, 5400, 60))
	var order []int
	m.Admit(mkJob(1, 5000, 4500, 60), func(p *phi.Process) { order = append(order, 1) })
	m.Admit(mkJob(2, 1000, 900, 60), func(p *phi.Process) { order = append(order, 2) })
	if len(order) != 0 {
		t.Fatalf("admissions happened with the device full: %v", order)
	}
	if m.AdmitQueueLen() != 2 {
		t.Fatalf("admit queue %d", m.AdmitQueueLen())
	}
	m.Detach(resident)
	eng.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("admission order %v, want [1 2]", order)
	}
}

func TestDeclaredFreeAccounting(t *testing.T) {
	eng := sim.New()
	m := newMgr(eng)
	if m.DeclaredFree() != 8192 {
		t.Fatalf("fresh DeclaredFree %v", m.DeclaredFree())
	}
	p := m.Attach(mkJob(1, 3000, 2700, 60))
	if m.DeclaredFree() != 5192 {
		t.Errorf("DeclaredFree after attach %v", m.DeclaredFree())
	}
	m.Detach(p)
	if m.DeclaredFree() != 8192 {
		t.Errorf("DeclaredFree after detach %v", m.DeclaredFree())
	}
}

func TestOversizedAdmitDoesNotDisturbTenants(t *testing.T) {
	// Regression: the oversized fail-fast path used to attach the doomed
	// job before killing it. The transient 30% initial commit could push
	// the device past physical memory and OOM-kill an innocent co-resident.
	// The reject must never touch device memory.
	eng := sim.New()
	m := newMgr(eng)
	honest := m.Attach(mkJob(1, 7000, 6300, 60))
	var honestOutcome phi.OffloadOutcome = -1
	m.Offload(honest, 60, 1000, func(o phi.OffloadOutcome) { honestOutcome = o })

	var killed phi.KillReason = -1
	m.Admit(mkJob(2, 9000, 9000, 60), func(p *phi.Process) {
		if p.Alive() {
			t.Error("oversized job admitted alive")
		}
		p.OnKill = func(r phi.KillReason) { killed = r }
	})
	eng.Run()

	if honestOutcome != phi.OffloadCompleted {
		t.Errorf("honest tenant outcome %v, want completed", honestOutcome)
	}
	if n := m.Device().Stats().OOMKills; n != 0 {
		t.Errorf("device OOM killer fired %d times during an oversized reject", n)
	}
	if killed != phi.KillContainer {
		t.Errorf("oversized job kill reason %v, want container", killed)
	}
	if m.Stats().ContainerKills != 1 {
		t.Errorf("stats %+v, want 1 container kill", m.Stats())
	}
}

func TestMaxQueueLenIgnoresImmediateDispatch(t *testing.T) {
	// Regression: MaxQueueLen was bumped before pump ran, so an offload
	// that dispatched immediately on an idle device counted as having
	// queued. A never-contended device must report a zero peak.
	eng := sim.New()
	m := newMgr(eng)
	p := m.Attach(mkJob(1, 500, 450, 240))
	m.Offload(p, 240, 1000, func(phi.OffloadOutcome) {})
	eng.Run()
	if n := m.Stats().MaxQueueLen; n != 0 {
		t.Errorf("MaxQueueLen = %d after an uncontended offload, want 0", n)
	}
}

// TestDeclaredFreePurgeIsOrderDeterministic pins the determinism contract
// on the admitted-set bookkeeping — the philint:mapiter "live instance"
// adjudicated in this package. The set used to be a pointer-keyed map
// whose only traversal (DeclaredFree) summed integer MB while purging the
// dead, so the map's randomized order was not observable; it is now an
// admission-ordered slice, making every current and future traversal
// deterministic by construction rather than by adjudication. This test
// pins the purge, the accounting, and the preserved admission order.
func TestDeclaredFreePurgeIsOrderDeterministic(t *testing.T) {
	eng := sim.New()
	m := newMgr(eng)
	var procs []*phi.Process
	for i := 0; i < 6; i++ {
		procs = append(procs, m.Attach(mkJob(i, 1000, 900, 60)))
	}
	// Kill three jobs behind the manager's back, as a device failure or
	// OOM would: DeclaredFree must purge them lazily.
	for _, i := range []int{1, 3, 4} {
		m.Device().Kill(procs[i], phi.KillDeviceFailure)
	}
	want := units.MB(8192 - 3*1000)
	if got := m.DeclaredFree(); got != want {
		t.Errorf("DeclaredFree after kills = %v, want %v", got, want)
	}
	// The purge ran and the survivors kept admission order.
	wantIDs := []int{0, 2, 5}
	if len(m.admitted) != len(wantIDs) {
		t.Fatalf("admitted %d processes after purge, want %d", len(m.admitted), len(wantIDs))
	}
	for i, id := range wantIDs {
		if m.admitted[i].Job.ID != id {
			t.Errorf("admitted[%d] = job %d, want %d (admission order lost)", i, m.admitted[i].Job.ID, id)
		}
	}
	// Repeated calls are stable.
	if got := m.DeclaredFree(); got != want {
		t.Errorf("DeclaredFree on repeat = %v, want %v", got, want)
	}
	// Detaching from the middle preserves the order of the rest.
	m.Detach(procs[2])
	if len(m.admitted) != 2 || m.admitted[0].Job.ID != 0 || m.admitted[1].Job.ID != 5 {
		t.Errorf("admission order after mid-detach: got %d processes", len(m.admitted))
	}
}
