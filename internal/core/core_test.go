package core_test

import (
	"testing"

	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/core"
	"phishare/internal/job"
	"phishare/internal/knapsack"
	"phishare/internal/sim"
	"phishare/internal/units"
)

func mkJob(id int, mem units.MB, threads units.Threads) *job.Job {
	return &job.Job{
		ID: id, Name: "j", Workload: "test",
		Mem: mem, Threads: threads, ActualPeakMem: units.MB(float64(mem) * 0.9),
		Phases: []job.Phase{
			{Kind: job.HostPhase, Duration: units.Second},
			{Kind: job.OffloadPhase, Duration: 2 * units.Second, Threads: threads},
		},
	}
}

// planRig builds a pool with jobs submitted and a first negotiation already
// run, so the scheduler has a plan. It returns the pool and scheduler
// before the plan is applied.
func planRig(t *testing.T, cfg core.Config, nodes int, jobs []*job.Job) (*sim.Engine, *condor.Pool, *core.Scheduler) {
	t.Helper()
	eng := sim.New()
	eng.MaxSteps = 10_000_000
	clu := cluster.New(eng, cluster.Config{Nodes: nodes, UseCosmic: true, Seed: 1})
	s := core.New(cfg)
	pool := condor.NewPool(eng, clu, s, condor.Config{})
	pool.Submit(jobs)
	return eng, pool, s
}

func TestValueFunctions(t *testing.T) {
	if core.Eq1(120, 240) != 750 {
		t.Errorf("Eq1(120) = %d, want 750", core.Eq1(120, 240))
	}
	if core.Linear(120, 240) != 500 {
		t.Errorf("Linear(120) = %d, want 500", core.Linear(120, 240))
	}
	if core.Linear(300, 240) != 0 || core.Linear(-5, 240) != knapsack.Eq1Scale {
		t.Error("Linear clamping wrong")
	}
	if core.Unit(240, 240) != knapsack.Eq1Scale || core.Unit(0, 240) != knapsack.Eq1Scale {
		t.Error("Unit should ignore threads")
	}
}

func TestLinearPanicsOnZeroT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Linear with T=0 did not panic")
		}
	}()
	core.Linear(60, 0)
}

func TestJobsUnmatchableUntilPinned(t *testing.T) {
	// Before any negotiation, MCCK jobs have Requirements=false and match
	// nothing; the first cycle computes the plan, qedits, and matches the
	// pinned jobs in one pass (§IV-D1: the qedits trigger the cycle).
	jobs := []*job.Job{mkJob(0, 500, 60), mkJob(1, 500, 60)}
	eng, pool, s := planRig(t, core.Config{}, 1, jobs)
	// Run just past the first negotiation (NotifyDelay 2 s + reaction 1 s).
	eng.RunUntil(4 * units.Second)
	if got := pool.Stats().Matches; got != 2 {
		t.Errorf("matches after first cycle = %d, want 2", got)
	}
	if s.PlannedCount() != 2 {
		t.Errorf("planned %d jobs, want 2", s.PlannedCount())
	}
	if pool.Stats().Qedits < 2 {
		t.Errorf("qedits = %d, want >= 2", pool.Stats().Qedits)
	}
	eng.Run()
	if !pool.Done() {
		t.Fatal("pool not done")
	}
	for _, q := range pool.Jobs() {
		if q.State != condor.Completed {
			t.Errorf("job %d state %v", q.Job.ID, q.State)
		}
	}
}

func TestConcurrencyPacking(t *testing.T) {
	// One device, thread budget 240: four 60-thread jobs should all be
	// planned onto it in one round (value-maximal and count-maximal).
	jobs := []*job.Job{
		mkJob(0, 500, 60), mkJob(1, 500, 60), mkJob(2, 500, 60), mkJob(3, 500, 60),
	}
	eng, pool, s := planRig(t, core.Config{}, 1, jobs)
	eng.RunUntil(3 * units.Second)
	if s.PlannedCount() != 4 {
		t.Errorf("planned %d, want all 4 small jobs on one device", s.PlannedCount())
	}
	eng.Run()
	if pool.MaxConcurrency() != 4 {
		t.Errorf("max concurrency %d, want 4", pool.MaxConcurrency())
	}
}

func TestPrefersLowThreadJobs(t *testing.T) {
	// Two devices; jobs: 2x240-thread and 4x60-thread, all 2 GB. The
	// knapsack should group the low-thread jobs (high value) on one device
	// rather than mixing them under the 240-thread budget with big jobs.
	jobs := []*job.Job{
		mkJob(0, 2000, 240), mkJob(1, 2000, 240),
		mkJob(2, 2000, 60), mkJob(3, 2000, 60), mkJob(4, 2000, 60), mkJob(5, 2000, 60),
	}
	eng, pool, _ := planRig(t, core.Config{}, 2, jobs)
	eng.Run()
	if !pool.Done() {
		t.Fatal("not done")
	}
	// First planning round: device 1 gets the best 2-D set. With 8 GB
	// memory and 240 threads, that is the four 60-thread jobs
	// (value 4*938 >> any mix). Verify via placement of jobs 2-5.
	firstDevice := ""
	together := 0
	for _, q := range pool.Jobs() {
		if q.Job.ID >= 2 {
			if firstDevice == "" {
				firstDevice = q.Machine.Name
			}
			if q.Machine.Name == firstDevice {
				together++
			}
		}
	}
	if together != 4 {
		t.Errorf("low-thread jobs split across devices (%d together), want 4 on one", together)
	}
}

func TestFillStagePacksValueZeroJobs(t *testing.T) {
	// High-resource skew: all jobs 240 threads (Eq.1 value 0), 2 GB. The
	// 2-D stage picks one (240-thread budget); the fill stage must add
	// more up to memory, so concurrency exceeds 1.
	var jobs []*job.Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, mkJob(i, 2000, 240))
	}
	eng, pool, _ := planRig(t, core.Config{}, 1, jobs)
	eng.Run()
	if pool.MaxConcurrency() < 2 {
		t.Errorf("max concurrency %d: fill stage did not pack value-zero jobs", pool.MaxConcurrency())
	}
	if pool.MaxConcurrency() > 4 {
		t.Errorf("max concurrency %d exceeds 8GB/2GB memory bound", pool.MaxConcurrency())
	}
}

func TestDisableFill(t *testing.T) {
	var jobs []*job.Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, mkJob(i, 2000, 240))
	}
	eng, pool, _ := planRig(t, core.Config{DisableFill: true}, 1, jobs)
	eng.Run()
	if pool.MaxConcurrency() != 1 {
		t.Errorf("max concurrency %d with fill disabled, want 1", pool.MaxConcurrency())
	}
}

func TestWindowLimitsPlanning(t *testing.T) {
	var jobs []*job.Job
	for i := 0; i < 10; i++ {
		jobs = append(jobs, mkJob(i, 100, 24))
	}
	eng, _, s := planRig(t, core.Config{Window: 3}, 1, jobs)
	eng.RunUntil(3 * units.Second)
	if s.PlannedCount() != 3 {
		t.Errorf("planned %d with window 3", s.PlannedCount())
	}
	eng.Run()
}

func TestMemoryGuardRejectsStalePins(t *testing.T) {
	// Force staleness: plan is computed, then the machine's memory is
	// consumed before the pin applies. The machine-side guard must reject
	// the match and the job must eventually run anyway.
	jobs := []*job.Job{
		mkJob(0, 5000, 60),
		mkJob(1, 5000, 60),
	}
	eng, pool, _ := planRig(t, core.Config{}, 1, jobs)
	eng.Run()
	if !pool.Done() {
		t.Fatal("not done")
	}
	for _, q := range pool.Jobs() {
		if q.State != condor.Completed {
			t.Errorf("job %d state %v", q.Job.ID, q.State)
		}
	}
	// Both 5 GB jobs cannot share an 8 GB device.
	if pool.MaxConcurrency() != 1 {
		t.Errorf("max concurrency %d for two 5GB jobs", pool.MaxConcurrency())
	}
}

func TestGreedyFillsDevicesInOrder(t *testing.T) {
	// Fig. 4 is greedy per device: with 2 devices and 2 small jobs, both
	// fit the first device's knapsack; the second stays empty initially.
	jobs := []*job.Job{mkJob(0, 500, 60), mkJob(1, 500, 60)}
	eng, pool, _ := planRig(t, core.Config{}, 2, jobs)
	eng.Run()
	first, second := pool.Machines()[0], pool.Machines()[1]
	if first.MaxResident != 2 || second.MaxResident != 0 {
		t.Errorf("resident peaks: %d, %d; want greedy 2, 0", first.MaxResident, second.MaxResident)
	}
}

func TestRepacksOnCompletion(t *testing.T) {
	// More jobs than fit at once: completions must free capacity that
	// later cycles re-pack until everything runs.
	var jobs []*job.Job
	for i := 0; i < 30; i++ {
		jobs = append(jobs, mkJob(i, 3000, 120))
	}
	eng, pool, _ := planRig(t, core.Config{}, 2, jobs)
	eng.Run()
	if !pool.Done() {
		t.Fatal("not done")
	}
	for _, q := range pool.Jobs() {
		if q.State != condor.Completed {
			t.Fatalf("job %d state %v", q.Job.ID, q.State)
		}
	}
}

func TestThreadBudgetAccountsResidents(t *testing.T) {
	// Device already hosting 180 resident threads: the 2-D stage has a 60
	// budget, so a 120-thread job must come from the fill stage or wait —
	// while a 60-thread job fits the budget. Verify both eventually run
	// and nothing breaks.
	jobs := []*job.Job{
		mkJob(0, 1000, 180), // first round resident
		mkJob(1, 1000, 120),
		mkJob(2, 1000, 60),
	}
	eng, pool, _ := planRig(t, core.Config{}, 1, jobs)
	eng.Run()
	for _, q := range pool.Jobs() {
		if q.State != condor.Completed {
			t.Errorf("job %d state %v", q.Job.ID, q.State)
		}
	}
}

func TestAlternateValueFunctionsStillComplete(t *testing.T) {
	for name, vf := range map[string]core.ValueFunc{
		"linear": core.Linear,
		"unit":   core.Unit,
	} {
		var jobs []*job.Job
		for i := 0; i < 10; i++ {
			jobs = append(jobs, mkJob(i, 1000, units.Threads(60*(1+i%4))))
		}
		eng, pool, _ := planRig(t, core.Config{Value: vf}, 2, jobs)
		eng.Run()
		for _, q := range pool.Jobs() {
			if q.State != condor.Completed {
				t.Errorf("%s: job %d state %v", name, q.Job.ID, q.State)
			}
		}
	}
}

func TestDisableThreadDim(t *testing.T) {
	// Memory-only packing: three 240-thread 1GB jobs all land on one
	// device in the first plan (no thread dimension to stop them).
	jobs := []*job.Job{mkJob(0, 1000, 240), mkJob(1, 1000, 240), mkJob(2, 1000, 240)}
	eng, pool, s := planRig(t, core.Config{DisableThreadDim: true, DisableFill: true}, 1, jobs)
	eng.RunUntil(3 * units.Second)
	if s.PlannedCount() != 3 {
		t.Errorf("planned %d with thread dim disabled, want 3", s.PlannedCount())
	}
	eng.Run()
	if !pool.Done() {
		t.Fatal("not done")
	}
}
