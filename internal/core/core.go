// Package core implements the paper's primary contribution: the
// coprocessor-sharing-aware knapsack cluster scheduler ("MCCK" when stacked
// on MPSS + Condor + COSMIC).
//
// The scheduler treats every Xeon Phi as a 0-1 knapsack (capacity: the
// device's free declared memory; item weight: a job's declared memory;
// item value: Eq. 1, v = 1 - (t/240)^2) and packs pending jobs to maximize
// total value — and thereby job concurrency — under the device's thread
// budget (§IV-C). At the cluster level it is greedy: devices are packed one
// after another (Fig. 4), and every completion frees capacity that the next
// cycle re-packs.
//
// Integration follows §IV-D1: the scheduler is an external add-on that
// (1) reads the pending queue and collector state, (2) computes a job→slot
// plan with the greedy per-device knapsack loop of Fig. 4, and (3) rewrites
// each planned job's Requirements to `Name == "<slot>@<node>"` via
// condor_qedit in one batch. The changed requirements trigger the next
// negotiation cycle ("we must wait for Condor's next negotiation cycle
// which is triggered when the Condor collector obtains the changed job
// requirements"); the module's reaction time is modeled as an extra delay
// on every negotiation trigger (condor.ExternalPolicy), which is the small
// integration overhead the paper observes in Fig. 8's high-skew case.
package core

import (
	"fmt"

	"phishare/internal/condor"
	"phishare/internal/knapsack"
	"phishare/internal/obs"
	"phishare/internal/units"
)

// ValueFunc maps a job's declared threads (and the device's hardware thread
// count) to a scaled integer value. The default is Eq. 1; alternatives
// exist for the value-function ablation.
type ValueFunc func(t, T units.Threads) int64

// Eq1 is the paper's value function, v = 1 - (t/T)^2 (scaled).
func Eq1(t, T units.Threads) int64 { return knapsack.Eq1Value(t, T) }

// Linear is the ablation value v = 1 - t/T (scaled like Eq1).
func Linear(t, T units.Threads) int64 {
	if T <= 0 {
		panic("core: non-positive hardware thread count")
	}
	if t < 0 {
		t = 0
	}
	if t > T {
		t = T
	}
	return int64((1 - float64(t)/float64(T)) * knapsack.Eq1Scale)
}

// Unit is the ablation value that ignores threads entirely (v = 1 for every
// job): packing degenerates to maximizing job count under memory alone.
func Unit(_, _ units.Threads) int64 { return knapsack.Eq1Scale }

// Config tunes the scheduler.
type Config struct {
	// MemGranularity is the knapsack DP's memory quantum (paper: 50 MB).
	MemGranularity units.MB
	// ThreadGranularity is the thread-dimension quantum (default 4, one
	// core's worth).
	ThreadGranularity units.Threads
	// Window bounds how many pending jobs (FIFO prefix) enter one planning
	// round. Besides keeping the DP near-linear per the paper's complexity
	// argument, a moderate window limits how far the value-greedy packing
	// can defer high-thread jobs: an unbounded window drains every
	// low-thread job first and leaves a poorly-overlapping all-wide tail.
	// Default 64.
	Window int
	// Value is the job value function; nil means Eq. 1.
	Value ValueFunc
	// DisableThreadDim drops the thread dimension from the DP (memory-only
	// packing) — the "no thread awareness" ablation.
	DisableThreadDim bool
	// DisableFill skips the fill stage that packs remaining free memory
	// with value-zero jobs once the thread budget is exhausted (§IV-C's
	// "not a hard limit" clause; see Scheduler docs). With the fill
	// disabled, thread-saturated devices take no extra tenants.
	DisableFill bool
	// ReactionDelay is the external module's latency between a collector
	// update and its qedits landing (condor.ExternalPolicy). Default 1 s.
	ReactionDelay units.Tick
	// FillThreadOvercommit bounds the fill stage: the device's total
	// declared resident threads may reach at most this multiple of its
	// hardware threads. Sets beyond the hardware limit carry zero value
	// (§IV-C) but are still worth packing for time-multiplexed sharing
	// (Fig. 2) — up to the point where resident-set contention (see
	// phi.Config.SpinContention) erodes the concurrency gain. Default 2.0:
	// a device accepts up to two full-width jobs' worth of surplus threads.
	FillThreadOvercommit float64
	// ReferenceSolver routes every knapsack through the unoptimized
	// reference DP (knapsack.SolveReference) instead of the scheduler's
	// reusable Solver. It exists purely for determinism validation: the two
	// paths must produce bit-identical plans, which the regression test in
	// internal/experiments asserts by running the full stack both ways.
	// It also disables the per-round solve memo (see DisableRoundMemo).
	ReferenceSolver bool
	// DisableRoundMemo turns off the knapsack solve memo that returns a
	// cached Result when an identical instance (same capacities,
	// granularities, and item multiset) recurs across planning rounds — as
	// it does every steady-state cycle in which no job started or finished.
	// The memo key captures the entire instance, so memoized and recomputed
	// plans are bit-identical; the flag exists for the equivalence
	// regression and the chaos swarm's diff mode.
	DisableRoundMemo bool
}

func (c Config) withDefaults() Config {
	if c.MemGranularity == 0 {
		c.MemGranularity = 50
	}
	if c.ThreadGranularity == 0 {
		c.ThreadGranularity = 4
	}
	if c.Window == 0 {
		c.Window = 64
	}
	if c.Value == nil {
		c.Value = Eq1
	}
	if c.ReactionDelay == 0 {
		c.ReactionDelay = units.Second
	}
	if c.FillThreadOvercommit == 0 { //philint:ignore floateq zero-value config sentinel, exact by construction
		c.FillThreadOvercommit = 2.0
	}
	return c
}

// Scheduler is the MCCK condor.Policy.
//
// Planning per device is two-stage:
//
//  1. The 2-D knapsack maximizes (Σ Eq.1 value, job count) under the
//     device's free memory and remaining thread budget. This is the
//     concurrency-maximizing core of §IV-C: sets that would oversubscribe
//     threads are excluded, which is the DP-state equivalent of the paper
//     zeroing their value.
//
//  2. A fill stage packs leftover free memory with as many of the remaining
//     jobs as fit, ignoring threads. The paper notes the thread limit "is
//     not a hard limit" — exceeding it merely zeroes value — and its Fig. 4
//     loop keeps packing freed memory while jobs remain; COSMIC then
//     time-multiplexes the surplus offloads safely (the Fig. 2 case). This
//     stage is what keeps MCCK competitive with MCC's random packing under
//     the high-resource-skew distribution, where every set has value zero.
type Scheduler struct {
	cfg Config
	// solver carries the knapsack DP buffers across every packDevice call
	// of every planning round: the greedy per-device loop of Fig. 4 solves
	// up to two knapsacks per device per negotiation cycle, and reusing one
	// solver makes that inner loop allocation-free.
	solver *knapsack.Solver
	// lastPlanned counts the jobs pinned by the most recent planning round
	// (instrumentation).
	lastPlanned int
	// lastFast records whether the most recent solve (memoized or not) was
	// satisfied by the solver's fast path. packDevice reads it instead of
	// solver.TookFastPath(), which is stale after a memo hit.
	lastFast bool

	// memo caches solve results keyed by the full knapsack instance —
	// capacities, granularities, and every item's (mem, threads, value) in
	// order. Successive negotiation cycles with an unchanged cluster state
	// pose byte-identical instances, so the steady state costs one map
	// probe per device instead of a DP. memoKey is the reusable key
	// scratch; probing with map[string(memoKey)] does not allocate.
	memo    map[string]memoEntry
	memoKey []byte

	// Planning-round scratch, reused across cycles so steady-state planning
	// is allocation-free: the candidate window, the plan map (cleared per
	// round), and packDevice's item/selection buffers.
	remScratch    []*condor.QueuedJob
	planScratch   map[*condor.QueuedJob]string
	itemScratch   []knapsack.Item
	chosenScratch []bool
	pickedScratch []*condor.QueuedJob
	restItems     []knapsack.Item
	restJobs      []*condor.QueuedJob

	// Observability (SetObserver); nil handles no-op when disabled.
	obs         *obs.View
	obsRounds   *obs.Counter
	obsPlanned  *obs.Counter
	obsDeferred *obs.Counter
	obsDP       *obs.Counter
	obsFast     *obs.Counter
	obsMemoHit  *obs.Counter
	obsMemoMiss *obs.Counter
}

// memoEntry is a cached solve: the Result (whose Selected slice is owned by
// the memo and treated as read-only by every caller) plus whether the
// original solve took the solver's fast path.
type memoEntry struct {
	res  knapsack.Result
	fast bool
}

// memoCap bounds the solve memo; a workload that keeps generating fresh
// instances wholesale-clears it rather than growing without bound.
const memoCap = 4096

// New returns an MCCK scheduler.
func New(cfg Config) *Scheduler {
	return &Scheduler{cfg: cfg.withDefaults(), solver: knapsack.NewSolver(),
		memo:        map[string]memoEntry{},
		planScratch: map[*condor.QueuedJob]string{}}
}

// SetObserver attaches the observability layer and resolves the scheduler's
// instrument handles. A nil observer disables instrumentation.
func (s *Scheduler) SetObserver(o *obs.Observer) {
	s.obs = o.View(nil)
	s.obsRounds = o.Counter("core_plan_rounds_total")
	s.obsPlanned = o.Counter("core_jobs_planned_total")
	s.obsDeferred = o.Counter("core_jobs_deferred_total")
	s.obsDP = o.Counter("core_knapsack_dp_solves_total")
	s.obsFast = o.Counter("core_knapsack_fastpath_solves_total")
	s.obsMemoHit = o.Counter("core_round_memo_hits_total")
	s.obsMemoMiss = o.Counter("core_round_memo_misses_total")
}

// solve dispatches one knapsack instance to the reusable solver, or to the
// reference DP when the determinism harness asks for it. Unless disabled,
// identical instances are answered from the round memo: the key encodes the
// complete instance, so a hit returns exactly what re-solving would.
func (s *Scheduler) solve(cfg knapsack.Config, items []knapsack.Item) knapsack.Result {
	if s.cfg.ReferenceSolver {
		// The reference path always runs the full DP, unmemoized.
		s.obsDP.Inc()
		s.lastFast = false
		return knapsack.SolveReference(cfg, items)
	}
	if s.cfg.DisableRoundMemo {
		res := s.solver.Solve(cfg, items)
		s.lastFast = s.solver.TookFastPath()
		s.noteSolveKind()
		return res
	}
	k := s.memoKey[:0]
	k = appendInt(k, int64(cfg.MemCapacity))
	k = appendInt(k, int64(cfg.MemGranularity))
	k = appendInt(k, int64(cfg.ThreadCapacity))
	k = appendInt(k, int64(cfg.ThreadGranularity))
	for _, it := range items {
		k = appendInt(k, int64(it.Mem))
		k = appendInt(k, int64(it.Threads))
		k = appendInt(k, it.Value)
	}
	s.memoKey = k
	if e, ok := s.memo[string(k)]; ok { // no-alloc map probe
		s.obsMemoHit.Inc()
		s.lastFast = e.fast
		s.noteSolveKind()
		return e.res
	}
	s.obsMemoMiss.Inc()
	res := s.solver.Solve(cfg, items)
	s.lastFast = s.solver.TookFastPath()
	s.noteSolveKind()
	if len(s.memo) >= memoCap {
		clear(s.memo)
	}
	s.memo[string(k)] = memoEntry{res: res, fast: s.lastFast}
	return res
}

// noteSolveKind counts the solve against the DP or fast-path series (memo
// hits count as whichever kind the original solve was, so the two series
// still sum to the number of instances posed).
func (s *Scheduler) noteSolveKind() {
	if s.lastFast {
		s.obsFast.Inc()
	} else {
		s.obsDP.Inc()
	}
}

// appendInt appends a fixed-width big-endian encoding of v, keeping the memo
// key injective (variable-width encodings could make distinct instances
// collide).
func appendInt(dst []byte, v int64) []byte {
	u := uint64(v)
	return append(dst, byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// Name implements condor.Policy.
func (*Scheduler) Name() string { return "MCCK" }

// ExtraDelay implements condor.ExternalPolicy: the add-on module's
// reaction time between collector updates and its batched qedits.
func (s *Scheduler) ExtraDelay() units.Tick { return s.cfg.ReactionDelay }

// MachineRequirements implements condor.Policy: same node-side memory guard
// as MCC — the knapsack plan already respects it, but a stale plan (capacity
// consumed since planning) must be rejected by the machine rather than
// oversubscribe declared memory.
func (*Scheduler) MachineRequirements() string {
	return "TARGET." + condor.AttrRequestPhiMemory + " <= MY." + condor.AttrPhiFreeMemory
}

// PrepareJobAd implements condor.Policy: jobs are unmatchable until the
// external scheduler pins them.
func (*Scheduler) PrepareJobAd(q *condor.QueuedJob) {
	q.Ad.MustSetExpr("Requirements", "false")
}

// PreNegotiation implements condor.Policy: compute the plan with the greedy
// per-device knapsack loop of Fig. 4 and apply it as one batch of qedits
// (§IV-D1: "we submit the edited job requirements in a batch"), so the
// cycle that was triggered by the collector update dispatches the plan.
func (s *Scheduler) PreNegotiation(p *condor.Pool) {
	plan := s.computePlan(p)
	s.lastPlanned = len(plan)
	if len(plan) == 0 {
		return
	}
	for _, q := range p.Pending() {
		if slot, ok := plan[q]; ok {
			p.Qedit(q, pinExpr(slot))
		} else if q.Ad.Eval("Requirements").String() != "false" {
			// Previously pinned but no longer planned (its slot filled up
			// or a better mix exists): unpin so it cannot land stale.
			p.Qedit(q, "false")
		}
	}
}

// pinExpr builds the §IV-D1 requirement rewrite:
// Name == "<slotId>@<NodeName>".
func pinExpr(slot string) string {
	return fmt.Sprintf("TARGET.%s == %q", condor.AttrName, slot)
}

// Select implements condor.Policy: a pinned job matches exactly its
// designated slot; take it.
func (*Scheduler) Select(_ *condor.Pool, _ *condor.QueuedJob, _ []*condor.Machine) int { return 0 }

// PostNegotiation implements condor.Policy (no-op; planning happens in
// PreNegotiation so qedits land in the cycle that follows the triggering
// collector update).
func (*Scheduler) PostNegotiation(*condor.Pool) {}

// computePlan runs the greedy per-device knapsack loop of Fig. 4 over the
// pending queue and the machines' free capacity.
func (s *Scheduler) computePlan(p *condor.Pool) map[*condor.QueuedJob]string {
	pending := p.Pending()
	if len(pending) == 0 {
		return nil
	}
	window := pending
	if len(window) > s.cfg.Window {
		window = window[:s.cfg.Window]
	}
	remaining := append(s.remScratch[:0], window...)
	s.remScratch = remaining

	clear(s.planScratch)
	plan := s.planScratch
	// The greedy per-device loop of Fig. 4 runs in per-shard rounds: the
	// machine ranges come from the pool's sharded-negotiation partition (a
	// single full range on an unsharded pool), so the plan's device order —
	// and therefore the plan itself — is identical either way, while the
	// per-shard observability below shows how the pinned load spreads over
	// the partition the scan phase will walk concurrently.
	machines := p.Machines()
	ranges := p.ShardRanges()
	for ri, r := range ranges {
		before := len(plan)
		for _, m := range machines[r[0]:r[1]] {
			if len(remaining) == 0 {
				break
			}
			picked := s.packDevice(p, m, remaining)
			if len(picked) == 0 {
				continue
			}
			for _, q := range picked {
				plan[q] = m.Name
			}
			// In-place filter: drop the jobs this device took (picked is
			// always a subset of remaining, so a plan lookup identifies them).
			rest := remaining[:0]
			for _, q := range remaining {
				if _, ok := plan[q]; !ok {
					rest = append(rest, q)
				}
			}
			remaining = rest
		}
		if s.obs != nil && len(ranges) > 1 {
			s.obs.Emit(p.Now(), obs.LayerCore, "plan_shard",
				obs.F("shard", ri),
				obs.F("machines", r[1]-r[0]),
				obs.F("planned", len(plan)-before),
				obs.F("remaining", len(remaining)))
		}
	}
	s.obsRounds.Inc()
	s.obsPlanned.Add(int64(len(plan)))
	s.obsDeferred.Add(int64(len(window) - len(plan)))
	if s.obs != nil {
		s.obs.Emit(p.Now(), obs.LayerCore, "plan_round",
			obs.F("pending", len(pending)),
			obs.F("window", len(window)),
			obs.F("planned", len(plan)),
			obs.F("deferred", len(window)-len(plan)))
	}
	return plan
}

// packDevice packs one device's knapsack from the candidate jobs.

func (s *Scheduler) packDevice(p *condor.Pool, m *condor.Machine, candidates []*condor.QueuedJob) []*condor.QueuedJob {
	if m.Offline {
		// A lost node must not receive plan pins: the pinned jobs would sit
		// unmatchable until it comes back (the negotiator skips it too).
		return nil
	}
	memBudget := m.FreeMem
	slotBudget := m.FreeSlots()
	if memBudget <= 0 || slotBudget <= 0 {
		return nil
	}
	hw := units.Threads(m.Unit.Device.Config().HWThreads())
	threadBudget := hw - m.ResidentThreads
	if threadBudget < 0 {
		threadBudget = 0
	}

	scale := knapsack.CountBonusScale(len(candidates))
	items := s.itemScratch[:0]
	for _, q := range candidates {
		items = append(items, knapsack.Item{
			Mem:     q.Job.Mem,
			Threads: q.Job.Threads,
			Value:   s.cfg.Value(q.Job.Threads, hw)*scale + 1,
		})
	}
	s.itemScratch = items

	picked := s.pickedScratch[:0]
	if cap(s.chosenScratch) < len(candidates) {
		s.chosenScratch = make([]bool, len(candidates))
	}
	chosen := s.chosenScratch[:len(candidates)]
	for i := range chosen {
		chosen[i] = false
	}
	var stage1Value int64
	stage1Fast := false

	// Stage 1: the concurrency-maximizing 2-D knapsack.
	if threadBudget > 0 || s.cfg.DisableThreadDim {
		cfg := knapsack.Config{
			MemCapacity:       memBudget,
			MemGranularity:    s.cfg.MemGranularity,
			ThreadGranularity: s.cfg.ThreadGranularity,
		}
		if !s.cfg.DisableThreadDim {
			cfg.ThreadCapacity = threadBudget
		}
		res := s.solve(cfg, items)
		stage1Value = res.Value
		stage1Fast = !s.cfg.ReferenceSolver && s.lastFast
		for _, idx := range res.Selected {
			chosen[idx] = true
			picked = append(picked, candidates[idx])
		}
		memBudget -= res.Mem
	}
	stage1Count := len(picked)

	// Stage 2: fill remaining memory with leftover jobs using the paper's
	// 1-D memory knapsack (Eq. 1 values, count tie-break). Thread pressure
	// beyond the hardware limit carries no value but is safe — COSMIC
	// time-multiplexes the surplus offloads (the Fig. 2 case) — and the
	// value ordering keeps refills preferring low-thread jobs, which is
	// what lets the next completion's knapsack still find complementary
	// widths.
	if !s.cfg.DisableFill && memBudget > 0 {
		// The fill's thread budget is what remains under the overcommit
		// ceiling after residents and stage-1 picks.
		ceiling := units.Threads(s.cfg.FillThreadOvercommit * float64(hw))
		fillThreads := ceiling - m.ResidentThreads
		for _, q := range picked {
			fillThreads -= q.Job.Threads
		}
		restItems := s.restItems[:0]
		restJobs := s.restJobs[:0]
		for i, q := range candidates {
			if !chosen[i] {
				restItems = append(restItems, items[i])
				restJobs = append(restJobs, q)
			}
		}
		s.restItems, s.restJobs = restItems, restJobs
		if len(restItems) > 0 && fillThreads > 0 {
			res := s.solve(knapsack.Config{
				MemCapacity:       memBudget,
				MemGranularity:    s.cfg.MemGranularity,
				ThreadCapacity:    fillThreads,
				ThreadGranularity: s.cfg.ThreadGranularity,
			}, restItems)
			for _, idx := range res.Selected {
				picked = append(picked, restJobs[idx])
			}
		}
	}
	// The machine's free host slots bound how many jobs it can accept;
	// stage-1 (value-maximal) picks take precedence over fill picks.
	if len(picked) > slotBudget {
		picked = picked[:slotBudget]
	}
	s.pickedScratch = picked
	if s.obs != nil {
		ids := make([]int, len(picked))
		for i, q := range picked {
			ids[i] = q.Job.ID
		}
		s.obs.Emit(p.Now(), obs.LayerCore, "knapsack",
			obs.F("device", m.Name),
			obs.F("candidates", len(candidates)),
			obs.F("mem_budget_mb", m.FreeMem),
			obs.F("thread_budget", threadBudget),
			obs.F("stage1_value", stage1Value),
			obs.F("stage1_fastpath", stage1Fast),
			obs.F("fill", len(picked)-min(stage1Count, len(picked))),
			obs.F("picked_jobs", ids))
	}
	return picked
}

// PlannedCount reports how many jobs the most recent planning round pinned
// (for tests and instrumentation).
func (s *Scheduler) PlannedCount() int { return s.lastPlanned }
