// Package experiments defines one driver per table and figure in the
// paper's evaluation (§III motivation, Table II, Table III, Figs. 7–10)
// plus the ablations called out in DESIGN.md. Each driver builds fresh
// simulation state from a seed, so every artifact is exactly reproducible.
package experiments

import (
	"fmt"
	"runtime"

	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/core"
	"phishare/internal/faults"
	"phishare/internal/job"
	"phishare/internal/metrics"
	"phishare/internal/obs"
	"phishare/internal/phi"
	"phishare/internal/rng"
	"phishare/internal/scheduler"
	"phishare/internal/sim"
	"phishare/internal/units"
	"phishare/internal/workload"
)

// Policy names accepted by RunConfig.
const (
	PolicyMC       = "MC"
	PolicyMCC      = "MCC"
	PolicyMCCK     = "MCCK"
	PolicyAgnostic = "Agnostic"
)

// Policies lists the paper's three compared configurations in Table II
// order.
func Policies() []string { return []string{PolicyMC, PolicyMCC, PolicyMCCK} }

// RunConfig describes one simulation run.
type RunConfig struct {
	// Policy is one of the Policy* constants.
	Policy string
	// Nodes is the cluster size; DevicesPerNode defaults to 1 (the paper's
	// testbed).
	Nodes          int
	DevicesPerNode int
	// Jobs is the workload, submitted at t=0.
	Jobs []*job.Job
	// Source, when non-nil, replaces Jobs: arrivals are pulled lazily and
	// submitted (per-tenant, via SubmitAs) by a single self-rearming
	// generator timer at their arrival times, so neither the job set nor
	// its submit events are ever materialized in bulk. Exactly one of Jobs
	// and Source must be set.
	Source workload.Source
	// Seed drives scheduler and device randomness (workload randomness is
	// baked into Jobs by its generator).
	Seed int64
	// Condor tunes the pool mechanics; zero values take defaults.
	Condor condor.Config
	// NodeDevices makes the pool heterogeneous (see
	// cluster.Config.NodeDevices); empty keeps the homogeneous default.
	NodeDevices []phi.Config
	// Core tunes the MCCK scheduler; ignored by other policies.
	Core core.Config
	// ForceCosmic overrides the per-policy COSMIC default: MC and Agnostic
	// run raw MPSS, MCC and MCCK run with COSMIC. (The oversubscription
	// ablation pairs sharing policies with raw devices.)
	ForceCosmic *bool
	// CosmicBypass selects first-fit offload dispatch (ablation A4).
	CosmicBypass bool
	// LinkBandwidthMBps overrides the per-node PCIe bandwidth (ablation
	// A5); 0 takes the 6 GB/s default.
	LinkBandwidthMBps float64
	// MaxSteps bounds the event count as a runaway guard; 0 means 500M.
	MaxSteps uint64
	// Trace, if non-nil, observes every device's offload lifecycle (job
	// names are unique within a run, so one recorder can serve the whole
	// cluster for CSV/JSON export).
	Trace phi.TraceSink
	// Stream switches the run to emit-and-drop record processing: terminal
	// job records are folded into online aggregates (Result.Stream) the
	// moment they happen and then released, so resident memory is O(active
	// jobs) instead of O(total jobs). Retained mode computes the same
	// aggregates post-hoc from the full record set — bit-identically, the
	// equivalence the streaming tests enforce.
	Stream bool
	// MemProbeEvery, when positive, samples the live heap
	// (runtime.ReadMemStats after a forced GC) every that-many terminal
	// records plus once at run end, recording the high-water mark in
	// Result.Stream.PeakHeapBytes. Purely observational.
	MemProbeEvery int
	// RecordSink, if non-nil, receives the full per-job record stream of
	// the run (pool.Records(); in streaming mode, the emitted records in
	// completion order). Determinism harnesses use it to compare entire
	// outcome streams, not just aggregate metrics. Note that pointing it at
	// a streaming run reintroduces the O(total jobs) retention Stream
	// exists to avoid — small-cell equivalence tests only.
	RecordSink *[]metrics.JobRecord
	// Obs, if non-nil, attaches the observability layer to every component
	// (pool, policy, devices, COSMIC managers) and runs the time-series
	// sampler for the whole simulation. Outcome-neutral by construction;
	// TestObservabilityPreservesOutcomes proves it.
	Obs *obs.Observer
	// EventLog, if non-nil, receives the pool's job lifecycle events
	// (HTCondor's user log; see condor.EventLog).
	EventLog *condor.EventLog
	// Chaos, if non-nil, wires the fault-injection and invariant layer into
	// the run (see faults.Harness). A harness with a zero Profile and
	// Check=false is equivalent to nil; with Check=true but no faults the
	// run's outcomes stay bit-identical to an unchecked run
	// (TestChaosDisabledPreservesOutcomes).
	Chaos *faults.Harness
	// Parallel overrides the parallel simulation core's on-by-default
	// choice; nil means parallel. Observability sinks no longer force a
	// serial run: lane-affine Views buffer epoch emissions per lane and the
	// canonical walk drains them in (time, seq) order, so instrumented
	// parallel output is bit-identical to serial
	// (TestObsParallelOutputBitIdentical); only wall-clock changes.
	Parallel *bool
	// Workers caps the parallel worker count; 0 means GOMAXPROCS.
	Workers int
}

// usesParallel resolves the parallel-execution choice.
func (c RunConfig) usesParallel() bool {
	if c.Parallel == nil {
		return true
	}
	return *c.Parallel
}

// usesCosmic resolves the node middleware choice.
func (c RunConfig) usesCosmic() bool {
	if c.ForceCosmic != nil {
		return *c.ForceCosmic
	}
	switch c.Policy {
	case PolicyMCC, PolicyMCCK:
		return true
	}
	return false
}

// buildPolicy constructs the condor.Policy for the run.
func (c RunConfig) buildPolicy() condor.Policy {
	r := rng.New(c.Seed).Fork("policy-" + c.Policy)
	switch c.Policy {
	case PolicyMC:
		return scheduler.NewExclusive()
	case PolicyMCC:
		return scheduler.NewRandomPack(r)
	case PolicyMCCK:
		return core.New(c.Core)
	case PolicyAgnostic:
		return scheduler.NewAgnostic(r)
	}
	panic(fmt.Sprintf("experiments: unknown policy %q", c.Policy))
}

// Result summarizes one run.
type Result struct {
	Policy         string
	Nodes          int
	JobCount       int
	Makespan       units.Tick
	Utilization    float64 // mean core utilization over the makespan
	MaxConcurrency int
	Summary        metrics.Summary
	PoolStats      condor.Stats
	// Stream holds the scale-era online aggregates (per-tenant fairness,
	// stretch, footprint high-water marks). Populated in both record modes
	// — retained runs derive it from the same records post-hoc — so a
	// streaming run and its retained twin are directly comparable.
	Stream metrics.StreamStats
	// Parallel reports whether the run executed on the parallel core;
	// Epochs is its window count (0 for serial). Regression tests use the
	// pair to assert that attaching sinks no longer disables parallelism.
	Parallel bool
	Epochs   uint64
}

// Run executes one simulation and returns its measurements.
func Run(cfg RunConfig) Result {
	if cfg.Nodes <= 0 {
		panic("experiments: Nodes must be positive")
	}
	if len(cfg.Jobs) == 0 && cfg.Source == nil {
		panic("experiments: empty job set")
	}
	if len(cfg.Jobs) > 0 && cfg.Source != nil {
		panic("experiments: both Jobs and Source set")
	}
	eng := sim.New()
	eng.MaxSteps = cfg.MaxSteps
	if eng.MaxSteps == 0 {
		eng.MaxSteps = 500_000_000
	}
	if cfg.usesParallel() {
		eng.SetParallel(cfg.Workers, cfg.Condor.Lookahead())
	}
	clu := cluster.New(eng, cluster.Config{
		Nodes:             cfg.Nodes,
		DevicesPerNode:    cfg.DevicesPerNode,
		NodeDevices:       cfg.NodeDevices,
		UseCosmic:         cfg.usesCosmic(),
		CosmicBypass:      cfg.CosmicBypass,
		LinkBandwidthMBps: cfg.LinkBandwidthMBps,
		Seed:              cfg.Seed,
	})
	if cfg.Trace != nil {
		for _, u := range clu.Units {
			u.Device.Trace = cfg.Trace
		}
	}
	pol := cfg.buildPolicy()
	pool := condor.NewPool(eng, clu, pol, cfg.Condor)
	pool.Log = cfg.EventLog
	// The online aggregate. In streaming mode the pool's record sink feeds
	// it as jobs retire; in retained mode the post-run record walk does.
	// Either way the same Add calls run over the same records, which is
	// what makes the two modes bit-identical.
	var agg metrics.Aggregate
	if cfg.Stream {
		pool.SetRecordSink(func(r metrics.JobRecord) {
			agg.Add(r)
			if cfg.RecordSink != nil {
				*cfg.RecordSink = append(*cfg.RecordSink, r)
			}
		})
	}
	var probe *memProbe
	if cfg.MemProbeEvery > 0 {
		probe = &memProbe{every: cfg.MemProbeEvery}
		// Installed before Chaos.Wire, which chains any existing hook.
		pool.OnTerminal = func(*condor.QueuedJob) { probe.note() }
	}
	if cfg.Obs != nil {
		wireObservability(cfg.Obs, eng, pool, pol, clu)
	}
	if cfg.Chaos != nil {
		cfg.Chaos.Obs = cfg.Obs
		cfg.Chaos.Wire(eng, clu, pool)
	}
	jobCount := len(cfg.Jobs)
	if cfg.Source != nil {
		jobCount = cfg.Source.Len()
		startPump(eng, pool, cfg.Source)
	} else {
		pool.Submit(cfg.Jobs)
	}
	eng.Run()
	if !pool.Done() {
		panic("experiments: engine drained with jobs outstanding")
	}

	makespan := pool.Makespan()
	if !cfg.Stream {
		records := pool.Records()
		if cfg.RecordSink != nil {
			*cfg.RecordSink = records
		}
		for _, r := range records {
			agg.Add(r)
		}
	}
	summary := agg.Summary(clu.Utils(), makespan)
	summary.MaxConcurrency = pool.MaxConcurrency()
	stream := agg.Stats(clu.Utils(), makespan)
	stream.Summary = summary
	stream.PeakPending = pool.PeakPending()
	stream.PeakInFlight = pool.PeakInFlight()
	if probe != nil {
		probe.sample()
		stream.PeakHeapBytes = probe.peak
	}
	return Result{
		Policy:         cfg.Policy,
		Nodes:          cfg.Nodes,
		JobCount:       jobCount,
		Makespan:       makespan,
		Utilization:    summary.AvgUtilization,
		MaxConcurrency: summary.MaxConcurrency,
		Summary:        summary,
		PoolStats:      pool.Stats(),
		Stream:         stream,
		Parallel:       eng.Parallel(),
		Epochs:         eng.Epochs(),
	}
}

// startPump wires a Source into the pool through one self-rearming
// generator event: at each firing it submits every arrival due now and
// re-arms itself for the next arrival time. Exactly one generator event is
// resident in the heap at any moment — versus one pre-scheduled submit
// event per job, the O(total jobs) heap the streaming engine retires.
func startPump(eng *sim.Engine, pool *condor.Pool, src workload.Source) {
	next, ok := src.Next()
	if !ok {
		panic("experiments: empty source")
	}
	var buf [1]*job.Job
	var pump func()
	pump = func() {
		now := eng.Now()
		for ok && next.At <= now {
			buf[0] = next.Job
			pool.SubmitAs(next.Tenant, buf[:], 0)
			next, ok = src.Next()
		}
		if ok {
			eng.At(next.At, pump)
		}
	}
	eng.At(next.At, pump)
}

// memProbe tracks the live-heap high-water mark. note is cheap (an integer
// countdown) except every `every`-th call, when it forces a GC and reads
// MemStats so the sample reflects live data rather than collector timing.
// Observational only: nothing in the simulation reads it.
type memProbe struct {
	every int
	n     int
	peak  uint64
}

func (m *memProbe) note() {
	m.n++
	if m.n%m.every != 0 {
		return
	}
	m.sample()
}

func (m *memProbe) sample() {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > m.peak {
		m.peak = ms.HeapAlloc
	}
}

// Footprint finds the smallest cluster size (in [1, maxNodes]) whose
// makespan under cfg's policy does not exceed target — the paper's
// footprint metric: "the cluster size required to achieve the same makespan
// as the baseline on an 8-node cluster" (Table II/III). Returns (0, false)
// if even maxNodes misses the target.
func Footprint(cfg RunConfig, target units.Tick, maxNodes int) (int, bool) {
	for n := 1; n <= maxNodes; n++ {
		c := cfg
		c.Nodes = n
		if Run(c).Makespan <= target {
			return n, true
		}
	}
	return 0, false
}
