package experiments

import (
	"os"
	"sort"
	"strconv"
	"testing"

	"phishare/internal/condor"
	"phishare/internal/faults"
	"phishare/internal/metrics"
	"phishare/internal/units"
	"phishare/internal/workload"
)

// streamCellSource builds the small diurnal cell the equivalence tests run:
// bursty day-curve arrivals from a skewed three-tenant population. Each
// call returns a fresh single-pass stream; identical (seed) → identical
// stream.
func streamCellSource(seed int64, n int) workload.Source {
	return workload.NewDiurnal(workload.DiurnalConfig{
		N:          n,
		Seed:       seed,
		Day:        10 * units.Minute,
		Horizon:    10 * units.Minute,
		BurstCount: 2,
		Tenants:    3,
	})
}

// TestStreamingAggregatesMatchRetained is the streaming engine's oracle
// gate: across MC/MCC/MCCK × seeds × clean/faulted × serial/parallel, an
// emit-and-drop run's online aggregates — Summary, fairness, stretch,
// footprint marks — must be bit-identical to the retained run's post-hoc
// computation, and the record streams themselves must match record for
// record (modulo order: streaming emits at completion, retention at
// submission).
func TestStreamingAggregatesMatchRetained(t *testing.T) {
	seeds := 5
	if testing.Short() {
		seeds = 2
	}
	light, _ := faults.ProfileByName("light")
	for _, policy := range Policies() {
		for s := 0; s < seeds; s++ {
			seed := int64(100 + s)
			for _, faulted := range []bool{false, true} {
				for _, parallel := range []bool{false, true} {
					par := parallel
					cell := func(stream bool) (Result, []metrics.JobRecord) {
						cfg := RunConfig{
							Policy:   policy,
							Nodes:    3,
							Source:   streamCellSource(seed, 60),
							Seed:     seed,
							Condor:   condor.Config{MaxRetries: 4},
							Stream:   stream,
							Parallel: &par,
						}
						if faulted {
							cfg.Chaos = &faults.Harness{Profile: light, Seed: seed}
						}
						var records []metrics.JobRecord
						cfg.RecordSink = &records
						return Run(cfg), records
					}
					retained, retRecs := cell(false)
					streamed, strRecs := cell(true)

					label := func() string {
						mode := "clean"
						if faulted {
							mode = "faulted"
						}
						core := "serial"
						if parallel {
							core = "parallel"
						}
						return policy + "/" + mode + "/" + core
					}
					if streamed.Summary != retained.Summary {
						t.Errorf("%s seed=%d: streaming summary %+v != retained %+v",
							label(), seed, streamed.Summary, retained.Summary)
					}
					if streamed.Stream != retained.Stream {
						t.Errorf("%s seed=%d: streaming aggregates %+v != retained %+v",
							label(), seed, streamed.Stream, retained.Stream)
					}
					if streamed.Makespan != retained.Makespan ||
						streamed.Utilization != retained.Utilization ||
						streamed.MaxConcurrency != retained.MaxConcurrency {
						t.Errorf("%s seed=%d: headline metrics diverge: %+v vs %+v",
							label(), seed, streamed, retained)
					}
					sortRecords(retRecs)
					sortRecords(strRecs)
					if len(retRecs) != len(strRecs) {
						t.Fatalf("%s seed=%d: %d retained records, %d streamed",
							label(), seed, len(retRecs), len(strRecs))
					}
					for i := range retRecs {
						if retRecs[i] != strRecs[i] {
							t.Errorf("%s seed=%d: record %d: retained %+v != streamed %+v",
								label(), seed, i, retRecs[i], strRecs[i])
							break
						}
					}
				}
			}
		}
	}
}

func sortRecords(recs []metrics.JobRecord) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
}

// TestSourcePumpMatchesPrescheduled pins the generator-timer submission
// path against the classic batch path it replaces: a FromSlice source
// (every arrival at t=0) must produce the same outcomes, record for
// record, as handing the identical slice to RunConfig.Jobs.
func TestSourcePumpMatchesPrescheduled(t *testing.T) {
	opts := Options{Seed: 7, Nodes: 4, RealJobs: 120}.Defaults()
	for _, policy := range Policies() {
		jobs := opts.realJobSet()
		var batchRecs, pumpRecs []metrics.JobRecord
		batch := Run(RunConfig{Policy: policy, Nodes: opts.Nodes, Jobs: jobs,
			Seed: opts.Seed, RecordSink: &batchRecs})
		pump := Run(RunConfig{Policy: policy, Nodes: opts.Nodes,
			Source: workload.FromSlice(opts.realJobSet()),
			Seed:   opts.Seed, RecordSink: &pumpRecs})
		if batch.Summary != pump.Summary || batch.Makespan != pump.Makespan {
			t.Errorf("%s: pump outcome %+v != batch %+v", policy, pump.Summary, batch.Summary)
		}
		sortRecords(batchRecs)
		sortRecords(pumpRecs)
		if len(batchRecs) != len(pumpRecs) {
			t.Fatalf("%s: %d batch records, %d pump", policy, len(batchRecs), len(pumpRecs))
		}
		for i := range batchRecs {
			if batchRecs[i] != pumpRecs[i] {
				t.Errorf("%s: record %d: batch %+v != pump %+v",
					policy, i, batchRecs[i], pumpRecs[i])
				break
			}
		}
	}
}

// TestStreamChaosSwarm is the streaming leg of the `make chaos` gate: every
// faulted diurnal cell replays in streaming mode and its aggregates must
// match the checked retained run bit for bit. Sweep width honors
// STREAM_CHAOS_SEEDS and shrinks under -short.
func TestStreamChaosSwarm(t *testing.T) {
	seeds := 10
	if env := os.Getenv("STREAM_CHAOS_SEEDS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("bad STREAM_CHAOS_SEEDS=%q", env)
		}
		seeds = n
	} else if testing.Short() {
		seeds = 3
	}
	failures := StreamChaosSwarm(StreamChaosConfig{Seeds: seeds, Logf: t.Logf})
	for _, f := range failures {
		t.Errorf("%s\n  replay: go run ./cmd/phichaos -stream -seeds 1 -seed0 %d -profiles %s -policies %s",
			f, f.Seed, f.Profile, f.Policy)
	}
}

// TestMillionJobBoundedMemory is the scaled-down BenchmarkMillionJob
// residency proof: a 10×-larger streaming day must not grow the live-heap
// high-water mark beyond 2× the small run's — the O(active jobs) bound,
// since tenfold total jobs leave the active population (arrival rate ×
// service time) roughly unchanged relative to the fixed cluster baseline.
func TestMillionJobBoundedMemory(t *testing.T) {
	if raceEnabled {
		t.Skip("heap probing under the race detector measures the detector, not the engine")
	}
	small, big := 20_000, 200_000
	if testing.Short() {
		small, big = 2_000, 20_000
	}
	peak := func(n int) uint64 {
		res := Run(RunConfig{
			Policy: PolicyMCC,
			Nodes:  200,
			Source: workload.NewDiurnal(workload.DiurnalConfig{
				N:          n,
				Seed:       23,
				BurstCount: 6,
				Tenants:    100,
			}),
			NodeDevices:   workload.HeterogeneousPool(23, 200, nil),
			Seed:          23,
			Stream:        true,
			MemProbeEvery: n / 16,
		})
		if res.Summary.Completed == 0 {
			t.Fatalf("n=%d: no jobs completed: %+v", n, res.Summary)
		}
		if res.Stream.PeakHeapBytes == 0 {
			t.Fatalf("n=%d: memory probe recorded nothing", n)
		}
		return res.Stream.PeakHeapBytes
	}
	smallPeak := peak(small)
	bigPeak := peak(big)
	t.Logf("peak heap: %d jobs → %d B, %d jobs → %d B (ratio %.2f)",
		small, smallPeak, big, bigPeak, float64(bigPeak)/float64(smallPeak))
	if bigPeak > 2*smallPeak {
		t.Errorf("peak heap grew superlinearly with job count: %d B at %d jobs vs %d B at %d jobs (> 2x)",
			bigPeak, big, smallPeak, small)
	}
}
