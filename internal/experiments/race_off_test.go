//go:build !race

package experiments

// raceEnabled is false without the race detector; see race_on_test.go.
const raceEnabled = false
