package experiments

import (
	"crypto/sha256"
	"testing"

	"phishare/internal/job"
	"phishare/internal/obs"
	"phishare/internal/rng"
)

// TestBigCellStreamingTrace traces a 1,000-node / 100,000-job cell — the
// BenchmarkBigCell configuration — end to end through a streaming
// emit-and-drop sink, in serial and 4-worker parallel mode, and asserts:
//
//  1. Bounded memory: the sink's serialization buffer high-water mark stays
//     at a single event's size, and the per-lane shard buffers never held
//     more than one window's emissions, no matter that the full stream is
//     millions of events.
//  2. Bit-identity at scale: the streamed JSONL (compared by digest — the
//     point of streaming is that neither run retains the events), the
//     Prometheus metrics snapshot, and the sampled time series are
//     byte-identical between serial and parallel execution, with parallel
//     mode genuinely active.
//
// Skipped under -race (see race_on_test.go) and -short; plain `go test`
// runs it.
func TestBigCellStreamingTrace(t *testing.T) {
	if raceEnabled {
		t.Skip("full-scale cell is too slow under the race detector; small-cell tests cover these paths")
	}
	if testing.Short() {
		t.Skip("full-scale cell skipped in -short mode")
	}

	jobs := job.GenerateTableOneSet(100_000, rng.New(17).Fork("tableI"))

	type outcome struct {
		traceSum  [32]byte
		metrics   [32]byte
		series    [32]byte
		events    int64
		highWater int
		shardHigh int
		res       Result
	}
	run := func(parallel bool) outcome {
		o := obs.New()
		h := sha256.New()
		sink := o.StreamEvents(h)
		res := Run(RunConfig{
			Policy:   PolicyMCC,
			Nodes:    1000,
			Jobs:     jobs,
			Seed:     17,
			Obs:      o,
			Parallel: &parallel,
			Workers:  4,
		})
		if sink.Err() != nil {
			t.Fatalf("stream sink write error: %v", sink.Err())
		}
		var out outcome
		h.Sum(out.traceSum[:0])
		mh := sha256.New()
		if err := o.WriteMetrics(mh); err != nil {
			t.Fatal(err)
		}
		mh.Sum(out.metrics[:0])
		sh := sha256.New()
		if err := o.WriteSeriesCSV(sh); err != nil {
			t.Fatal(err)
		}
		sh.Sum(out.series[:0])
		out.events = sink.Events()
		out.highWater = sink.HighWater()
		out.shardHigh = o.ShardHighWater()
		out.res = res
		return out
	}

	serial := run(false)
	parallel := run(true)

	if !parallel.res.Parallel || parallel.res.Epochs == 0 {
		t.Fatalf("parallel run inactive: parallel=%v epochs=%d",
			parallel.res.Parallel, parallel.res.Epochs)
	}
	if serial.res.Makespan != parallel.res.Makespan {
		t.Fatalf("makespan differs: serial %v, parallel %v",
			serial.res.Makespan, parallel.res.Makespan)
	}

	// Full trace, bounded memory. The stream must dwarf the resident
	// buffers: >100k jobs each emit several lifecycle events, while the
	// sink never holds more than one serialized event (well under 4 KiB)
	// and no lane shard ever held more than one epoch window's events.
	if serial.events < 500_000 {
		t.Errorf("streamed only %d events; expected the full lifecycle stream", serial.events)
	}
	if serial.events != parallel.events {
		t.Errorf("event counts differ: serial %d, parallel %d", serial.events, parallel.events)
	}
	for _, o := range []struct {
		name string
		out  outcome
	}{{"serial", serial}, {"parallel", parallel}} {
		if o.out.highWater > 4096 {
			t.Errorf("%s: sink buffer high-water mark %d bytes; streaming must stay at one-event size",
				o.name, o.out.highWater)
		}
	}
	if parallel.shardHigh == 0 {
		t.Error("parallel run never buffered in a lane shard; epoch emissions took the wrong path")
	}
	if parallel.shardHigh > 100_000 {
		t.Errorf("lane shard high-water mark %d events; shards must drain every window", parallel.shardHigh)
	}

	// Bit-identity at scale.
	if serial.traceSum != parallel.traceSum {
		t.Error("streamed trace digests differ between serial and parallel runs")
	}
	if serial.metrics != parallel.metrics {
		t.Error("metrics snapshots differ between serial and parallel runs")
	}
	if serial.series != parallel.series {
		t.Error("sampled series differ between serial and parallel runs")
	}
}
