package experiments

import (
	"fmt"
	"io"
	"strings"

	"phishare/internal/units"
	"phishare/internal/workload"
)

// Report renders experiment results as the text tables the paper prints.
// All drivers write to an io.Writer so cmd/phibench can tee them into
// EXPERIMENTS.md-style reports.

// WriteMotivation renders E1.
func WriteMotivation(w io.Writer, r MotivationResult) {
	fmt.Fprintf(w, "== E1: Motivation (Sec. III) — exclusive-policy core utilization ==\n")
	fmt.Fprintf(w, "real Table I mix:  %5.1f%%   (paper: ~50%%, \"38%%\" cluster average in abstract)\n", r.Real*100)
	for _, d := range sortedDists(r) {
		fmt.Fprintf(w, "synthetic %-10s %5.1f%%\n", d+":", r.Synthetic[distByName(d)]*100)
	}
	fmt.Fprintf(w, "(paper synthetic range: 38%%-63%%)\n\n")
}

// WriteTable2 renders E2.
func WriteTable2(w io.Writer, r Table2Result) {
	fmt.Fprintf(w, "== E2: Table II — makespan and footprint (%d jobs, %d nodes) ==\n", r.Jobs, r.Nodes)
	fmt.Fprintf(w, "%-6s %10s %10s %10s %10s\n", "config", "makespan", "reduction", "footprint", "fp-reduc")
	for _, row := range r.Rows {
		if row.Policy == PolicyMC {
			fmt.Fprintf(w, "%-6s %9.0fs %10s %10s %10s\n", row.Policy, row.Makespan.Seconds(), "-", "-", "-")
			continue
		}
		fp := "n/a"
		fpr := "n/a"
		if row.Footprint > 0 {
			fp = fmt.Sprintf("%d", row.Footprint)
			fpr = fmt.Sprintf("%.1f%%", row.FootprintReduction*100)
		}
		fmt.Fprintf(w, "%-6s %9.0fs %9.1f%% %10s %10s\n",
			row.Policy, row.Makespan.Seconds(), row.Reduction*100, fp, fpr)
	}
	fmt.Fprintf(w, "exclusive-scheduling bound (total work / devices): %.0fs — sharing beats it\n", r.LowerBound.Seconds())
	fmt.Fprintf(w, "(paper: MC 3568s; MCC 2611s/27%%, footprint 6/25%%; MCCK 2183s/39%%, footprint 5/37.5%%)\n\n")
}

// WriteFig7 renders E3 as ASCII histograms.
func WriteFig7(w io.Writer, r Fig7Result) {
	fmt.Fprintf(w, "== E3: Fig. 7 — synthetic resource distributions ==\n")
	for _, h := range r.Histograms {
		fmt.Fprintf(w, "%-10s (mean level %.2f)\n", h.Dist, h.MeanLevel())
		max := 1
		for _, c := range h.Bins {
			if c > max {
				max = c
			}
		}
		for i, c := range h.Bins {
			bar := strings.Repeat("#", c*40/max)
			fmt.Fprintf(w, "  %4.1f-%4.1f |%-40s| %d\n", h.Edges[i], h.Edges[i+1], bar, c)
		}
	}
	fmt.Fprintln(w)
}

// WriteFig8 renders E4.
func WriteFig8(w io.Writer, r Fig8Result) {
	fmt.Fprintf(w, "== E4: Fig. 8 — makespan by resource distribution (%d jobs, %d nodes) ==\n", r.Jobs, r.Nodes)
	fmt.Fprintf(w, "%-10s %9s %9s %9s %10s %10s\n", "dist", "MC", "MCC", "MCCK", "MCC-red", "MCCK-red")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %8.0fs %8.0fs %8.0fs %9.1f%% %9.1f%%\n",
			row.Dist, row.MC.Seconds(), row.MCC.Seconds(), row.MCCK.Seconds(),
			reduction(row.MC, row.MCC)*100, reduction(row.MC, row.MCCK)*100)
	}
	fmt.Fprintf(w, "(paper shape: big gains for uniform/normal/low-skew; smallest gain for high-skew)\n\n")
}

// WriteFig9 renders E5.
func WriteFig9(w io.Writer, r Fig9Result) {
	fmt.Fprintf(w, "== E5: Fig. 9 — makespan vs cluster size (%d jobs) ==\n", r.Jobs)
	for _, s := range r.Series {
		fmt.Fprintf(w, "%s:\n", s.Dist)
		fmt.Fprintf(w, "  %-6s %9s %9s %9s\n", "nodes", "MC", "MCC", "MCCK")
		for i, n := range s.Sizes {
			fmt.Fprintf(w, "  %-6d %8.0fs %8.0fs %8.0fs\n",
				n, s.MC[i].Seconds(), s.MCC[i].Seconds(), s.MCCK[i].Seconds())
		}
	}
	fmt.Fprintf(w, "(paper shape: sharing gains shrink for tiny clusters at high job pressure;\n")
	fmt.Fprintf(w, " MCCK's margin over MCC grows with cluster size)\n\n")
}

// WriteTable3 renders E6.
func WriteTable3(w io.Writer, r Table3Result) {
	fmt.Fprintf(w, "== E6: Table III — footprint by distribution (reference %d nodes) ==\n", r.Nodes)
	fmt.Fprintf(w, "%-10s %4s %12s %12s\n", "dist", "MC", "MCC", "MCCK")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %4d %5d (%4.1f%%) %5d (%4.1f%%)\n",
			row.Dist, row.MC,
			row.MCC, fpReduction(r.Nodes, row.MCC)*100,
			row.MCCK, fpReduction(r.Nodes, row.MCCK)*100)
	}
	fmt.Fprintf(w, "(paper: uniform 6/5, normal 6/5, low-skew 4/3, high-skew 6/6)\n\n")
}

// WriteFig10 renders E7.
func WriteFig10(w io.Writer, r Fig10Result) {
	fmt.Fprintf(w, "== E7: Fig. 10 — constant job pressure (normal dist, 200 jobs/node) ==\n")
	fmt.Fprintf(w, "%-6s %6s %9s %9s %9s %10s %10s\n", "nodes", "jobs", "MC", "MCC", "MCCK", "K-vs-MC", "K-vs-MCC")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-6d %6d %8.0fs %8.0fs %8.0fs %9.1f%% %9.1f%%\n",
			p.Nodes, p.Jobs, p.MC.Seconds(), p.MCC.Seconds(), p.MCCK.Seconds(),
			reduction(p.MC, p.MCCK)*100, reduction(p.MCC, p.MCCK)*100)
	}
	fmt.Fprintf(w, "(paper at 8 nodes: MCCK ~40%% over MC, ~11%% over MCC)\n\n")
}

// WriteFig23 renders E8 timelines.
func WriteFig23(w io.Writer, r Fig23Result) {
	fmt.Fprintf(w, "== E8: Figs. 2-3 — offload overlap on a shared coprocessor ==\n")
	fmt.Fprintf(w, "Fig. 2 (two 240-thread jobs; offloads serialize, host gaps interleave):\n")
	fmt.Fprint(w, r.Maximal.Render(72, 240))
	fmt.Fprintf(w, "concurrent makespan %.0fs vs sequential %.0fs\n\n",
		r.MaximalMakespan.Seconds(), r.MaximalSequential.Seconds())
	fmt.Fprintf(w, "Fig. 3 (two 120-thread jobs; offloads overlap freely):\n")
	fmt.Fprint(w, r.Partial.Render(72, 240))
	fmt.Fprintf(w, "concurrent makespan %.0fs vs sequential %.0fs\n\n",
		r.PartialMakespan.Seconds(), r.PartialSequential.Seconds())
}

// WriteAblation renders a generic ablation row list.
func WriteAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "== %s ==\n", title)
	for _, r := range rows {
		if r.Reduction != 0 {
			fmt.Fprintf(w, "%-22s %8.0fs  (%.1f%% vs MC)\n", r.Name, r.Makespan.Seconds(), r.Reduction*100)
		} else {
			fmt.Fprintf(w, "%-22s %8.0fs\n", r.Name, r.Makespan.Seconds())
		}
	}
	fmt.Fprintln(w)
}

// WriteOversub renders A2.
func WriteOversub(w io.Writer, rows []OversubRow) {
	fmt.Fprintf(w, "== A2: oversubscription harm (Sec. II-C / III) ==\n")
	fmt.Fprintf(w, "%-24s %10s %8s %7s\n", "stack", "makespan", "crashes", "failed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %9.0fs %8d %7d\n", r.Name, r.Makespan.Seconds(), r.Crashes, r.Failed)
	}
	fmt.Fprintln(w)
}

// WriteCycles renders A3.
func WriteCycles(w io.Writer, rows []CycleRow) {
	fmt.Fprintf(w, "== A3: negotiation-cycle sensitivity (MCCK, normal dist) ==\n")
	for _, r := range rows {
		fmt.Fprintf(w, "cycle %-5v -> makespan %8.0fs\n", r.Cycle, r.Makespan.Seconds())
	}
	fmt.Fprintln(w)
}

func reduction(base, m units.Tick) float64 {
	if base <= 0 {
		return 0
	}
	return 1 - float64(m)/float64(base)
}

func fpReduction(ref, fp int) float64 {
	if fp <= 0 {
		return 0
	}
	return 1 - float64(fp)/float64(ref)
}

func sortedDists(r MotivationResult) []string {
	out := make([]string, 0, len(r.Synthetic))
	for _, d := range distOrder() {
		if _, ok := r.Synthetic[d]; ok {
			out = append(out, d.String())
		}
	}
	return out
}

func distOrder() []workload.Distribution { return workload.Distributions() }

func distByName(s string) workload.Distribution {
	d, err := workload.ParseDistribution(s)
	if err != nil {
		panic(err)
	}
	return d
}

// WriteTransfer renders A5.
func WriteTransfer(w io.Writer, rows []TransferRow) {
	fmt.Fprintf(w, "== A5: PCIe transfer contention (SGEMM-like jobs with explicit DMA) ==\n")
	fmt.Fprintf(w, "%-6s %12s %10s\n", "config", "link MB/s", "makespan")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %12.0f %9.0fs\n", r.Policy, r.BandwidthMBps, r.Makespan.Seconds())
	}
	fmt.Fprintf(w, "(sharing multiplexes concurrent DMA over the node link; a starved link\n")
	fmt.Fprintf(w, " erodes the sharing advantage — a dimension outside the paper's knapsack)\n\n")
}
