package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"phishare/internal/condor"
	"phishare/internal/job"
	"phishare/internal/metrics"
	"phishare/internal/obs"
	"phishare/internal/rng"
	"phishare/internal/units"
)

// TestObservabilityPreservesOutcomes is the observability analogue of
// TestOptimizedPathsPreserveOutcomes: the full MCCK Table-II stack with
// every layer instrumented (metrics, trace events, condor event log, and
// the time-series sampler ticking on the shared engine) must produce
// bit-identical job records, makespans, and footprints vs a bare run.
// Instrumentation that changes a simulated outcome is never acceptable.
// Runs in both serial and 4-worker parallel modes: the lane-affine Views
// must be outcome-neutral in epoch context too.
func TestObservabilityPreservesOutcomes(t *testing.T) {
	for _, mode := range []struct {
		name     string
		parallel bool
	}{{"serial", false}, {"parallel4", true}} {
		t.Run(mode.name, func(t *testing.T) {
			parallel := mode.parallel
			for _, seed := range []int64{3, 11} {
				jobs := job.GenerateTableOneSet(90, rng.New(seed))
				run := func(instrumented bool) (Result, []metrics.JobRecord, *obs.Observer) {
					var recs []metrics.JobRecord
					cfg := RunConfig{
						Policy:     PolicyMCCK,
						Nodes:      3,
						Jobs:       jobs,
						Seed:       seed,
						RecordSink: &recs,
						Parallel:   &parallel,
						Workers:    4,
					}
					var o *obs.Observer
					if instrumented {
						o = obs.New()
						cfg.Obs = o
						cfg.EventLog = condor.NewEventLog()
					}
					res := Run(cfg)
					return res, recs, o
				}
				bare, bareRecs, _ := run(false)
				inst, instRecs, o := run(true)

				if inst.Parallel != mode.parallel {
					t.Fatalf("seed %d: instrumented run parallel = %v, want %v",
						seed, inst.Parallel, mode.parallel)
				}
				if bare.Makespan != inst.Makespan {
					t.Fatalf("seed %d: instrumentation changed makespan: %v -> %v",
						seed, bare.Makespan, inst.Makespan)
				}
				if !reflect.DeepEqual(bareRecs, instRecs) {
					for i := range bareRecs {
						if i < len(instRecs) && bareRecs[i] != instRecs[i] {
							t.Errorf("seed %d: record %d differs:\nbare:         %+v\ninstrumented: %+v",
								seed, i, bareRecs[i], instRecs[i])
							break
						}
					}
					t.Fatalf("seed %d: instrumented record stream (%d) != bare (%d)",
						seed, len(instRecs), len(bareRecs))
				}
				if !reflect.DeepEqual(bare.Summary, inst.Summary) {
					t.Fatalf("seed %d: summaries differ:\nbare:         %+v\ninstrumented: %+v",
						seed, bare.Summary, inst.Summary)
				}

				// Footprint runs a sweep of full simulations; instrument every
				// one of them (sharing one observer across the sweep is fine —
				// outcomes must not care).
				target := bare.Makespan * 2
				fpCfg := RunConfig{
					Policy: PolicyMCCK, Nodes: 1, Jobs: jobs, Seed: seed,
					Parallel: &parallel, Workers: 4,
				}
				bareFP, bareOK := Footprint(fpCfg, target, 3)
				instFPCfg := fpCfg
				instFPCfg.Obs = obs.New()
				instFP, instOK := Footprint(instFPCfg, target, 3)
				if bareFP != instFP || bareOK != instOK {
					t.Fatalf("seed %d: instrumentation changed footprint: (%d,%v) -> (%d,%v)",
						seed, bareFP, bareOK, instFP, instOK)
				}

				// Sanity: the instrumented run actually observed all four layers.
				for _, layer := range []string{obs.LayerCondor, obs.LayerCore, obs.LayerCosmic, obs.LayerPhi} {
					if o.Trace.Count(layer, "") == 0 {
						t.Errorf("seed %d: no trace events from layer %q", seed, layer)
					}
				}
				if o.Sampler().Samples() == 0 {
					t.Errorf("seed %d: sampler recorded nothing", seed)
				}
			}
		})
	}
}

// TestParallelStaysEnabledWithSinks is the regression fence for the PR that
// removed the parallel auto-off: attaching observability sinks (Obs, Trace,
// EventLog) must neither panic nor silently fall back to serial execution.
func TestParallelStaysEnabledWithSinks(t *testing.T) {
	jobs := job.GenerateTableOneSet(90, rng.New(3))
	o := obs.New()
	res := Run(RunConfig{
		Policy:   PolicyMCCK,
		Nodes:    4,
		Jobs:     jobs,
		Seed:     3,
		Obs:      o,
		EventLog: condor.NewEventLog(),
		Workers:  4,
		// Parallel left nil: the default must be parallel even with sinks.
	})
	if !res.Parallel {
		t.Fatal("run with Obs attached fell back to serial execution")
	}
	if res.Epochs == 0 {
		t.Fatal("parallel run with Obs attached executed zero epoch windows")
	}
	if o.Trace.Len() == 0 {
		t.Fatal("parallel instrumented run recorded no trace events")
	}

	// Forcing Parallel=true with sinks used to panic; it must simply run.
	force := true
	res = Run(RunConfig{
		Policy:   PolicyMCCK,
		Nodes:    4,
		Jobs:     jobs,
		Seed:     3,
		Obs:      obs.New(),
		Parallel: &force,
		Workers:  4,
	})
	if !res.Parallel || res.Epochs == 0 {
		t.Fatalf("forced parallel instrumented run: parallel=%v epochs=%d",
			res.Parallel, res.Epochs)
	}
}

// TestObsParallelOutputBitIdentical diffs the complete observability output
// of an instrumented serial run against an instrumented 4-worker parallel
// run: Prometheus metrics snapshot, JSONL trace stream, and sampled time
// series must match byte for byte. This is the tentpole contract of the
// lane-sharded collection path — the canonical walk drains per-lane buffers
// in (time, seq) order, so parallel emission order is indistinguishable
// from serial.
func TestObsParallelOutputBitIdentical(t *testing.T) {
	artifacts := func(parallel bool) (metricsText, eventsText, seriesText string, res Result) {
		jobs := job.GenerateTableOneSet(120, rng.New(7))
		o := obs.New()
		res = Run(RunConfig{
			Policy:   PolicyMCCK,
			Nodes:    4,
			Jobs:     jobs,
			Seed:     7,
			Obs:      o,
			Parallel: &parallel,
			Workers:  4,
		})
		var m, e, s bytes.Buffer
		if err := o.WriteMetrics(&m); err != nil {
			t.Fatal(err)
		}
		if err := o.WriteEvents(&e); err != nil {
			t.Fatal(err)
		}
		if err := o.WriteSeriesCSV(&s); err != nil {
			t.Fatal(err)
		}
		return m.String(), e.String(), s.String(), res
	}

	sm, se, ss, sres := artifacts(false)
	pm, pe, ps, pres := artifacts(true)

	if !pres.Parallel || pres.Epochs == 0 {
		t.Fatalf("parallel run did not execute epochs: parallel=%v epochs=%d",
			pres.Parallel, pres.Epochs)
	}
	if sres.Makespan != pres.Makespan {
		t.Fatalf("makespan differs: serial %v, parallel %v", sres.Makespan, pres.Makespan)
	}
	if se == "" || !strings.Contains(se, `"layer":"phi"`) {
		t.Fatal("serial trace stream is empty or missing phi events")
	}
	if sm != pm {
		t.Errorf("metrics snapshots differ (serial %d bytes, parallel %d bytes)", len(sm), len(pm))
	}
	if se != pe {
		line := 0
		sl, pl := strings.Split(se, "\n"), strings.Split(pe, "\n")
		for line < len(sl) && line < len(pl) && sl[line] == pl[line] {
			line++
		}
		get := func(v []string) string {
			if line < len(v) {
				return v[line]
			}
			return "<eof>"
		}
		t.Errorf("trace streams diverge at line %d:\nserial:   %s\nparallel: %s",
			line, get(sl), get(pl))
	}
	if ss != ps {
		t.Errorf("series CSVs differ (serial %d bytes, parallel %d bytes)", len(ss), len(ps))
	}
}

// TestMatchCacheObservable asserts the PR 1 match cache is visible through
// the registry: a Table-II-style MCCK run must record cache hits, and with
// DisableMatchCache set every cache series must stay zero.
func TestMatchCacheObservable(t *testing.T) {
	jobs := job.GenerateTableOneSet(90, rng.New(5))
	run := func(noCache bool) *obs.Observer {
		o := obs.New()
		Run(RunConfig{
			Policy: PolicyMCCK,
			Nodes:  3,
			Jobs:   jobs,
			Seed:   5,
			Condor: condor.Config{DisableMatchCache: noCache},
			Obs:    o,
		})
		return o
	}

	cached := run(false)
	hits := cached.Reg.CounterValue("condor_match_cache_hits_total")
	misses := cached.Reg.CounterValue("condor_match_cache_misses_total")
	if hits == 0 {
		t.Error("cached run recorded zero match-cache hits")
	}
	if misses == 0 {
		t.Error("cached run recorded zero match-cache misses (first lookups must miss)")
	}

	uncached := run(true)
	for _, name := range []string{
		"condor_match_cache_hits_total",
		"condor_match_cache_misses_total",
		"condor_match_cache_invalidations_total",
	} {
		if v := uncached.Reg.CounterValue(name); v != 0 {
			t.Errorf("DisableMatchCache run recorded %s = %d, want 0", name, v)
		}
	}
	// The rest of the instrumentation still works without the cache.
	if uncached.Reg.CounterValue("condor_negotiations_total") == 0 {
		t.Error("uncached run recorded zero negotiations")
	}
}

// TestInstrumentedRunArtifacts drives every exporter off one instrumented
// MCCK run and validates the formats end to end: parseable JSONL covering
// all four layers, a well-formed Prometheus snapshot, aligned CSV time
// series, and a dashboard page.
func TestInstrumentedRunArtifacts(t *testing.T) {
	o := obs.New()
	o.SampleInterval = 2 * units.Second
	elog := condor.NewEventLog()
	Run(RunConfig{
		Policy:   PolicyMCCK,
		Nodes:    2,
		Jobs:     job.GenerateTableOneSet(60, rng.New(9)),
		Seed:     9,
		Obs:      o,
		EventLog: elog,
	})

	// JSONL: every line parses; all four layers appear.
	var events bytes.Buffer
	if err := o.WriteEvents(&events); err != nil {
		t.Fatal(err)
	}
	layers := map[string]int{}
	lines := strings.Split(strings.TrimRight(events.String(), "\n"), "\n")
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("event line %d not valid JSON: %v\n%s", i, err, ln)
		}
		layers[m["layer"].(string)]++
		if _, ok := m["time_ms"].(float64); !ok {
			t.Fatalf("event line %d missing time_ms: %s", i, ln)
		}
	}
	for _, l := range []string{"condor", "core", "cosmic", "phi"} {
		if layers[l] == 0 {
			t.Errorf("JSONL stream has no %s events", l)
		}
	}

	// Prometheus: TYPE lines and series for every layer's families.
	var prom bytes.Buffer
	if err := o.WriteMetrics(&prom); err != nil {
		t.Fatal(err)
	}
	ptext := prom.String()
	for _, want := range []string{
		"# TYPE condor_matches_total counter",
		"# TYPE core_plan_rounds_total counter",
		"# TYPE cosmic_offloads_dispatched_total counter",
		"# TYPE phi_offloads_started_total counter",
		"# TYPE phi_speed_factor histogram",
		"phi_speed_factor_bucket{device=",
		`le="+Inf"`,
	} {
		if !strings.Contains(ptext, want) {
			t.Errorf("prometheus snapshot missing %q", want)
		}
	}
	for i, ln := range strings.Split(strings.TrimRight(ptext, "\n"), "\n") {
		if strings.HasPrefix(ln, "#") {
			continue
		}
		if !strings.Contains(ln, " ") {
			t.Fatalf("prometheus line %d malformed: %q", i, ln)
		}
	}

	// Time-series CSV: rectangular, starts with time_ms.
	var series bytes.Buffer
	if err := o.WriteSeriesCSV(&series); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&series).ReadAll()
	if err != nil {
		t.Fatalf("series CSV unparseable: %v", err)
	}
	if len(recs) < 3 || recs[0][0] != "time_ms" {
		t.Fatalf("series CSV shape: %d rows, header %v", len(recs), recs[0])
	}

	// Dashboard renders and references the sampled series.
	var dash bytes.Buffer
	if err := o.WriteDashboard(&dash, "phisched run"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!DOCTYPE html>", "phi_busy_cores", "condor_matches_total", "<svg"} {
		if !strings.Contains(dash.String(), want) {
			t.Errorf("dashboard missing %q", want)
		}
	}

	// The condor user log captured the same run.
	if elog.Count(condor.EventSubmit) != 60 {
		t.Errorf("event log submits = %d, want 60", elog.Count(condor.EventSubmit))
	}
	if elog.Count(condor.EventTerminate) == 0 {
		t.Error("event log has no terminations")
	}
}

// TestSpanPipelineEndToEnd runs an instrumented cluster and checks the full
// analysis pipeline that cmd/phisched exports: a live SpanBuilder consuming
// the canonical stream assembles one span per job and agrees with the
// retained trace, the critical path ends exactly at the measured makespan,
// and the Perfetto export is valid Chrome trace-event JSON.
func TestSpanPipelineEndToEnd(t *testing.T) {
	o := obs.New()
	live := obs.NewSpanBuilder()
	o.Trace.AddConsumer(live)
	res := Run(RunConfig{
		Policy: PolicyMCCK,
		Nodes:  3,
		Jobs:   job.GenerateTableOneSet(80, rng.New(13)),
		Seed:   13,
		Obs:    o,
	})

	spans := live.Spans()
	if len(spans) != 80 {
		t.Fatalf("got %d spans, want one per job", len(spans))
	}
	post := obs.SpansFromTrace(o.Trace)
	if len(post) != len(spans) {
		t.Fatalf("live (%d) and post-hoc (%d) span counts differ", len(spans), len(post))
	}
	completed := 0
	for i, s := range spans {
		p := post[i]
		if s.Job != p.Job || s.End != p.End || s.Outcome != p.Outcome {
			t.Fatalf("span %d: live %+v vs post-hoc %+v", i, *s, *p)
		}
		if s.Outcome == "completed" {
			completed++
			last := s.Attempts[len(s.Attempts)-1]
			if last.Open || last.End != s.End || last.Machine == "" {
				t.Fatalf("completed span %d has broken final attempt: %+v", s.Job, *last)
			}
			if len(last.Offloads) == 0 {
				t.Fatalf("completed span %d has no offloads", s.Job)
			}
		}
	}
	if completed != int(res.Summary.Completed) {
		t.Fatalf("completed spans %d, run reports %d", completed, res.Summary.Completed)
	}

	// Critical path must terminate at the run's makespan and attribute a
	// meaningful share of it.
	cp := obs.AnalyzeCriticalPath(spans)
	if cp == nil {
		t.Fatal("no critical path")
	}
	if cp.Makespan != res.Makespan {
		t.Fatalf("critical path makespan %v, run makespan %v", cp.Makespan, res.Makespan)
	}
	if cp.Covered <= 0 || cp.Covered > cp.Makespan {
		t.Fatalf("covered %v outside (0, %v]", cp.Covered, cp.Makespan)
	}
	var kindSum units.Tick
	for _, sh := range cp.ByKind {
		kindSum += sh.Total
	}
	if kindSum != cp.Covered {
		t.Fatalf("phase shares sum to %v, covered %v", kindSum, cp.Covered)
	}
	var report bytes.Buffer
	if err := cp.WriteText(&report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "where did the makespan go?") {
		t.Fatal("report missing attribution header")
	}

	// Perfetto export parses as JSON and carries events for every node.
	var pf bytes.Buffer
	if err := obs.WriteChromeTrace(&pf, spans); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(pf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto export not valid JSON: %v", err)
	}
	evs, _ := doc["traceEvents"].([]any)
	if len(evs) < 80 {
		t.Fatalf("perfetto export has %d events for an 80-job run", len(evs))
	}

	// The dashboard grew the makespan panel.
	var dash bytes.Buffer
	if err := o.WriteDashboard(&dash, "span test"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dash.String(), "Where did the makespan go?") {
		t.Fatal("dashboard missing makespan attribution panel")
	}
}
