package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"phishare/internal/condor"
	"phishare/internal/job"
	"phishare/internal/metrics"
	"phishare/internal/obs"
	"phishare/internal/rng"
	"phishare/internal/units"
)

// TestObservabilityPreservesOutcomes is the observability analogue of
// TestOptimizedPathsPreserveOutcomes: the full MCCK Table-II stack with
// every layer instrumented (metrics, trace events, condor event log, and
// the time-series sampler ticking on the shared engine) must produce
// bit-identical job records, makespans, and footprints vs a bare run.
// Instrumentation that changes a simulated outcome is never acceptable.
func TestObservabilityPreservesOutcomes(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		jobs := job.GenerateTableOneSet(90, rng.New(seed))
		run := func(instrumented bool) (Result, []metrics.JobRecord, *obs.Observer) {
			var recs []metrics.JobRecord
			cfg := RunConfig{
				Policy:     PolicyMCCK,
				Nodes:      3,
				Jobs:       jobs,
				Seed:       seed,
				RecordSink: &recs,
			}
			var o *obs.Observer
			if instrumented {
				o = obs.New()
				cfg.Obs = o
				cfg.EventLog = condor.NewEventLog()
			}
			res := Run(cfg)
			return res, recs, o
		}
		bare, bareRecs, _ := run(false)
		inst, instRecs, o := run(true)

		if bare.Makespan != inst.Makespan {
			t.Fatalf("seed %d: instrumentation changed makespan: %v -> %v",
				seed, bare.Makespan, inst.Makespan)
		}
		if !reflect.DeepEqual(bareRecs, instRecs) {
			for i := range bareRecs {
				if i < len(instRecs) && bareRecs[i] != instRecs[i] {
					t.Errorf("seed %d: record %d differs:\nbare:         %+v\ninstrumented: %+v",
						seed, i, bareRecs[i], instRecs[i])
					break
				}
			}
			t.Fatalf("seed %d: instrumented record stream (%d) != bare (%d)",
				seed, len(instRecs), len(bareRecs))
		}
		if !reflect.DeepEqual(bare.Summary, inst.Summary) {
			t.Fatalf("seed %d: summaries differ:\nbare:         %+v\ninstrumented: %+v",
				seed, bare.Summary, inst.Summary)
		}

		// Footprint runs a sweep of full simulations; instrument every one of
		// them (sharing one observer across the sweep is fine — outcomes must
		// not care).
		target := bare.Makespan * 2
		fpCfg := RunConfig{Policy: PolicyMCCK, Nodes: 1, Jobs: jobs, Seed: seed}
		bareFP, bareOK := Footprint(fpCfg, target, 3)
		instFPCfg := fpCfg
		instFPCfg.Obs = obs.New()
		instFP, instOK := Footprint(instFPCfg, target, 3)
		if bareFP != instFP || bareOK != instOK {
			t.Fatalf("seed %d: instrumentation changed footprint: (%d,%v) -> (%d,%v)",
				seed, bareFP, bareOK, instFP, instOK)
		}

		// Sanity: the instrumented run actually observed all four layers.
		for _, layer := range []string{obs.LayerCondor, obs.LayerCore, obs.LayerCosmic, obs.LayerPhi} {
			if o.Trace.Count(layer, "") == 0 {
				t.Errorf("seed %d: no trace events from layer %q", seed, layer)
			}
		}
		if o.Sampler().Samples() == 0 {
			t.Errorf("seed %d: sampler recorded nothing", seed)
		}
	}
}

// TestMatchCacheObservable asserts the PR 1 match cache is visible through
// the registry: a Table-II-style MCCK run must record cache hits, and with
// DisableMatchCache set every cache series must stay zero.
func TestMatchCacheObservable(t *testing.T) {
	jobs := job.GenerateTableOneSet(90, rng.New(5))
	run := func(noCache bool) *obs.Observer {
		o := obs.New()
		Run(RunConfig{
			Policy: PolicyMCCK,
			Nodes:  3,
			Jobs:   jobs,
			Seed:   5,
			Condor: condor.Config{DisableMatchCache: noCache},
			Obs:    o,
		})
		return o
	}

	cached := run(false)
	hits := cached.Reg.CounterValue("condor_match_cache_hits_total")
	misses := cached.Reg.CounterValue("condor_match_cache_misses_total")
	if hits == 0 {
		t.Error("cached run recorded zero match-cache hits")
	}
	if misses == 0 {
		t.Error("cached run recorded zero match-cache misses (first lookups must miss)")
	}

	uncached := run(true)
	for _, name := range []string{
		"condor_match_cache_hits_total",
		"condor_match_cache_misses_total",
		"condor_match_cache_invalidations_total",
	} {
		if v := uncached.Reg.CounterValue(name); v != 0 {
			t.Errorf("DisableMatchCache run recorded %s = %d, want 0", name, v)
		}
	}
	// The rest of the instrumentation still works without the cache.
	if uncached.Reg.CounterValue("condor_negotiations_total") == 0 {
		t.Error("uncached run recorded zero negotiations")
	}
}

// TestInstrumentedRunArtifacts drives every exporter off one instrumented
// MCCK run and validates the formats end to end: parseable JSONL covering
// all four layers, a well-formed Prometheus snapshot, aligned CSV time
// series, and a dashboard page.
func TestInstrumentedRunArtifacts(t *testing.T) {
	o := obs.New()
	o.SampleInterval = 2 * units.Second
	elog := condor.NewEventLog()
	Run(RunConfig{
		Policy:   PolicyMCCK,
		Nodes:    2,
		Jobs:     job.GenerateTableOneSet(60, rng.New(9)),
		Seed:     9,
		Obs:      o,
		EventLog: elog,
	})

	// JSONL: every line parses; all four layers appear.
	var events bytes.Buffer
	if err := o.WriteEvents(&events); err != nil {
		t.Fatal(err)
	}
	layers := map[string]int{}
	lines := strings.Split(strings.TrimRight(events.String(), "\n"), "\n")
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("event line %d not valid JSON: %v\n%s", i, err, ln)
		}
		layers[m["layer"].(string)]++
		if _, ok := m["time_ms"].(float64); !ok {
			t.Fatalf("event line %d missing time_ms: %s", i, ln)
		}
	}
	for _, l := range []string{"condor", "core", "cosmic", "phi"} {
		if layers[l] == 0 {
			t.Errorf("JSONL stream has no %s events", l)
		}
	}

	// Prometheus: TYPE lines and series for every layer's families.
	var prom bytes.Buffer
	if err := o.WriteMetrics(&prom); err != nil {
		t.Fatal(err)
	}
	ptext := prom.String()
	for _, want := range []string{
		"# TYPE condor_matches_total counter",
		"# TYPE core_plan_rounds_total counter",
		"# TYPE cosmic_offloads_dispatched_total counter",
		"# TYPE phi_offloads_started_total counter",
		"# TYPE phi_speed_factor histogram",
		"phi_speed_factor_bucket{device=",
		`le="+Inf"`,
	} {
		if !strings.Contains(ptext, want) {
			t.Errorf("prometheus snapshot missing %q", want)
		}
	}
	for i, ln := range strings.Split(strings.TrimRight(ptext, "\n"), "\n") {
		if strings.HasPrefix(ln, "#") {
			continue
		}
		if !strings.Contains(ln, " ") {
			t.Fatalf("prometheus line %d malformed: %q", i, ln)
		}
	}

	// Time-series CSV: rectangular, starts with time_ms.
	var series bytes.Buffer
	if err := o.WriteSeriesCSV(&series); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&series).ReadAll()
	if err != nil {
		t.Fatalf("series CSV unparseable: %v", err)
	}
	if len(recs) < 3 || recs[0][0] != "time_ms" {
		t.Fatalf("series CSV shape: %d rows, header %v", len(recs), recs[0])
	}

	// Dashboard renders and references the sampled series.
	var dash bytes.Buffer
	if err := o.WriteDashboard(&dash, "phisched run"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!DOCTYPE html>", "phi_busy_cores", "condor_matches_total", "<svg"} {
		if !strings.Contains(dash.String(), want) {
			t.Errorf("dashboard missing %q", want)
		}
	}

	// The condor user log captured the same run.
	if elog.Count(condor.EventSubmit) != 60 {
		t.Errorf("event log submits = %d, want 60", elog.Count(condor.EventSubmit))
	}
	if elog.Count(condor.EventTerminate) == 0 {
		t.Error("event log has no terminations")
	}
}
