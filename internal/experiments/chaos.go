package experiments

import (
	"fmt"
	"reflect"

	"phishare/internal/condor"
	"phishare/internal/core"
	"phishare/internal/faults"
	"phishare/internal/job"
	"phishare/internal/metrics"
	"phishare/internal/rng"
)

// ChaosConfig describes one invariant swarm: Seeds consecutive seeds
// starting at Seed0, each run through every policy × fault profile under
// the invariant checker. The (seed, profile, policy) triple printed for a
// failure is a complete reproduction recipe given the same ChaosConfig
// workload parameters (Jobs, Nodes, Retries) — ChaosRun replays one triple.
type ChaosConfig struct {
	// Seeds is the number of seeds swept (default 50).
	Seeds int
	// Seed0 is the first seed (default 1).
	Seed0 int64
	// Policies to sweep (default MC, MCC, MCCK).
	Policies []string
	// Profiles to sweep (default the built-in light and heavy profiles).
	Profiles []faults.Profile
	// Jobs is the Table I workload size per run (default 18).
	Jobs int
	// Nodes is the cluster size per run (default 3: small enough that
	// faults bite, large enough that the cluster can route around them).
	Nodes int
	// Retries is the crash retry budget (default 4; chaos runs need
	// headroom for injected crashes, or every fault cascades into a
	// Failed job and nothing exercises the resubmit path).
	Retries int
	// DiffReference makes every cell run five times — once on the
	// optimized fast paths (parallel lanes included), once with
	// autoclusters, the match cache, round memoization and the sparse
	// knapsack solver all force-disabled, once with the parallel
	// simulation core forced off, and once each with the negotiator
	// sharded at K=1 and K=4 — and diffs the runs' summary metrics and
	// full per-job record streams bit for bit. Any divergence is reported
	// as a violation: under fault injection the caches see invalidation
	// orders — and the parallel core sees barrier/window shapes, and the
	// sharded commit sees claim-conflict orders — that the clean-path
	// equivalence tests never produce, so this is the adversarial version
	// of those guarantees.
	DiffReference bool
	// Logf, if non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Seeds == 0 {
		c.Seeds = 50
	}
	if c.Seed0 == 0 {
		c.Seed0 = 1
	}
	if len(c.Policies) == 0 {
		c.Policies = Policies()
	}
	if len(c.Profiles) == 0 {
		c.Profiles = faults.Profiles()
	}
	if c.Jobs == 0 {
		c.Jobs = 18
	}
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.Retries == 0 {
		c.Retries = 4
	}
	return c
}

// ChaosFailure is one failed run of the swarm.
type ChaosFailure struct {
	Seed       int64
	Profile    string
	Policy     string
	Violations []string
	// Panic carries a recovered run panic (e.g. a drained engine with jobs
	// outstanding), which the swarm reports as a failure rather than dying.
	Panic string
}

func (f ChaosFailure) String() string {
	s := fmt.Sprintf("FAIL seed=%d profile=%s policy=%s", f.Seed, f.Profile, f.Policy)
	if f.Panic != "" {
		s += fmt.Sprintf("\n  panic: %s", f.Panic)
	}
	for _, v := range f.Violations {
		s += "\n  " + v
	}
	return s
}

// ChaosRun executes one (seed, profile, policy) cell under the invariant
// checker and returns its violations (nil when clean). With
// c.DiffReference set it also replays the cell on the reference scheduler
// paths and with the parallel core force-disabled, and reports any outcome
// divergence. Panics propagate to the caller.
func ChaosRun(c ChaosConfig, seed int64, prof faults.Profile, policy string) []string {
	c = c.withDefaults()
	res, records, violations := chaosCell(c, seed, prof, policy, false, false, 0)
	if !c.DiffReference {
		return violations
	}
	refRes, refRecords, refViolations := chaosCell(c, seed, prof, policy, true, false, 0)
	violations = append(violations, refViolations...)
	violations = append(violations, diffOutcomes("reference", res, records, refRes, refRecords)...)
	serRes, serRecords, serViolations := chaosCell(c, seed, prof, policy, false, true, 0)
	violations = append(violations, serViolations...)
	violations = append(violations, diffOutcomes("parallel-off replay", res, records, serRes, serRecords)...)
	for _, k := range []int{1, 4} {
		shRes, shRecords, shViolations := chaosCell(c, seed, prof, policy, false, false, k)
		violations = append(violations, shViolations...)
		violations = append(violations,
			diffOutcomes(fmt.Sprintf("sharded(K=%d) replay", k), res, records, shRes, shRecords)...)
	}
	return violations
}

// chaosCell runs one swarm cell under a fresh fault harness — on the
// optimized configuration, the reference-path configuration, (serial) the
// optimized configuration with the parallel simulation core forced off, or
// (shards > 0) with the negotiator sharded K ways — and returns the run
// outcome plus the harness's invariant violations. Every configuration sees
// the identical injection schedule: the injector is driven purely by
// (profile, seed).
func chaosCell(c ChaosConfig, seed int64, prof faults.Profile, policy string, reference, serial bool, shards int) (Result, []metrics.JobRecord, []string) {
	h := &faults.Harness{Profile: prof, Seed: seed, Check: true}
	cfg := RunConfig{
		Policy: policy,
		Nodes:  c.Nodes,
		Jobs:   job.GenerateTableOneSet(c.Jobs, rng.New(seed).Fork("tableI")),
		Seed:   seed,
		Condor: condor.Config{MaxRetries: c.Retries},
		Chaos:  h,
	}
	if reference {
		cfg.Condor.DisableMatchCache = true
		cfg.Condor.DisableAutoclusters = true
		cfg.Core = core.Config{ReferenceSolver: true, DisableRoundMemo: true}
	}
	if serial {
		off := false
		cfg.Parallel = &off
	}
	if shards > 0 {
		cfg.Condor.NegotiationShards = shards
	}
	var records []metrics.JobRecord
	cfg.RecordSink = &records
	res := Run(cfg)
	violations := h.Finish()
	label := ""
	switch {
	case reference:
		label = "reference path: "
	case serial:
		label = "parallel-off replay: "
	case shards > 0:
		label = fmt.Sprintf("sharded(K=%d) replay: ", shards)
	}
	if label != "" {
		for i, v := range violations {
			violations[i] = label + v
		}
	}
	return res, records, violations
}

// diffOutcomes compares an optimized run against a replay (reference paths
// or parallel-off) and describes every observable divergence. The record
// streams must match bit for bit — same jobs, same states, same timestamps,
// same placements.
func diffOutcomes(label string, res Result, records []metrics.JobRecord, refRes Result, refRecords []metrics.JobRecord) []string {
	var diffs []string
	if res.Makespan != refRes.Makespan {
		diffs = append(diffs, fmt.Sprintf("diff: makespan %v != %s %v", res.Makespan, label, refRes.Makespan))
	}
	if res.Utilization != refRes.Utilization {
		diffs = append(diffs, fmt.Sprintf("diff: utilization %v != %s %v", res.Utilization, label, refRes.Utilization))
	}
	if res.MaxConcurrency != refRes.MaxConcurrency {
		diffs = append(diffs, fmt.Sprintf("diff: max concurrency %d != %s %d", res.MaxConcurrency, label, refRes.MaxConcurrency))
	}
	if res.Summary != refRes.Summary {
		diffs = append(diffs, fmt.Sprintf("diff: summary %+v != %s %+v", res.Summary, label, refRes.Summary))
	}
	if len(records) != len(refRecords) {
		return append(diffs, fmt.Sprintf("diff: %d job records != %s %d", len(records), label, len(refRecords)))
	}
	for i := range records {
		if !reflect.DeepEqual(records[i], refRecords[i]) {
			diffs = append(diffs, fmt.Sprintf("diff: record %d: %+v != %s %+v", i, records[i], label, refRecords[i]))
			break // the first divergence is the reproduction recipe; the rest is noise
		}
	}
	return diffs
}

// ChaosSwarm sweeps the full seed × profile × policy grid and returns every
// failure. Runs are sequential and deterministic: the same config always
// produces the same failures in the same order.
func ChaosSwarm(c ChaosConfig) []ChaosFailure {
	c = c.withDefaults()
	logf := c.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var failures []ChaosFailure
	runs := 0
	for i := 0; i < c.Seeds; i++ {
		seed := c.Seed0 + int64(i)
		for _, prof := range c.Profiles {
			for _, policy := range c.Policies {
				runs++
				violations, panicMsg := chaosRunSafe(c, seed, prof, policy)
				if len(violations) > 0 || panicMsg != "" {
					f := ChaosFailure{Seed: seed, Profile: prof.Name, Policy: policy,
						Violations: violations, Panic: panicMsg}
					failures = append(failures, f)
					logf("%s", f)
				}
			}
		}
		if (i+1)%10 == 0 {
			logf("chaos: %d/%d seeds swept, %d runs, %d failures",
				i+1, c.Seeds, runs, len(failures))
		}
	}
	logf("chaos: done — %d runs, %d failures", runs, len(failures))
	return failures
}

// chaosRunSafe is ChaosRun with panic capture, so one broken cell fails its
// triple instead of killing the whole swarm.
func chaosRunSafe(c ChaosConfig, seed int64, prof faults.Profile, policy string) (violations []string, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprint(r)
		}
	}()
	return ChaosRun(c, seed, prof, policy), ""
}
