package experiments

import (
	"fmt"
	"io"

	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/estimator"
	"phishare/internal/job"
	"phishare/internal/sim"
	"phishare/internal/units"
)

// E10 — automatic resource estimation. The paper requires users to declare
// each job's maximum memory and thread needs and notes the assumption
// "could be relaxed with tools that automatically estimate jobs' resource
// requirements" (§IV-B). This extension builds that tool and measures what
// it recovers:
//
//   - oracle:       users declare真 requirements (the paper's setting);
//   - conservative: nobody declares anything, every job is assumed to need
//     a whole device — sharing collapses to the exclusive policy;
//   - estimated:    jobs start conservative; an external estimator daemon
//     observes completions per workload class, learns each class's peak
//     memory and thread width, and rewrites the declarations of still-
//     pending jobs (condor_qedit again) so later instances share.
//
// Container kills from underestimates feed the true peak back and the job
// is resubmitted with a corrected declaration.

// EstimationRow is one declaration regime's outcome under MCCK.
type EstimationRow struct {
	Name           string
	Makespan       units.Tick
	Reduction      float64 // vs the conservative regime
	Crashes        int
	KnownClasses   int
	MaxConcurrency int
}

// Estimation runs E10 on the Table I mix with the MCCK stack.
func Estimation(o Options) []EstimationRow {
	o = o.Defaults()
	jobs := o.realJobSet()

	conservative := runEstimation(o, jobs, nil)
	oracle := Run(RunConfig{Policy: PolicyMCCK, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()})
	est := estimator.New(estimator.Config{})
	estimated := runEstimation(o, jobs, est)

	rows := []EstimationRow{
		{
			Name:           "conservative (no declarations)",
			Makespan:       conservative.makespan,
			Crashes:        conservative.crashes,
			MaxConcurrency: conservative.maxConcurrency,
		},
		{
			Name:           "estimated (learned online)",
			Makespan:       estimated.makespan,
			Reduction:      1 - float64(estimated.makespan)/float64(conservative.makespan),
			Crashes:        estimated.crashes,
			KnownClasses:   est.Stats().Known,
			MaxConcurrency: estimated.maxConcurrency,
		},
		{
			Name:           "oracle (paper's user declarations)",
			Makespan:       oracle.Makespan,
			Reduction:      1 - float64(oracle.Makespan)/float64(conservative.makespan),
			Crashes:        oracle.Summary.Crashes,
			MaxConcurrency: oracle.MaxConcurrency,
		},
	}
	return rows
}

type estimationOutcome struct {
	makespan       units.Tick
	crashes        int
	maxConcurrency int
}

// runEstimation runs the MCCK stack over annotated copies of jobs. A nil
// estimator means permanently conservative declarations; otherwise an
// estimator daemon re-annotates pending jobs every few seconds and failed
// (container-killed) jobs are resubmitted with corrected declarations.
func runEstimation(o Options, jobs []*job.Job, est *estimator.Estimator) estimationOutcome {
	eng := sim.New()
	eng.MaxSteps = 500_000_000
	clu := cluster.New(eng, cluster.Config{Nodes: o.Nodes, UseCosmic: true, Seed: o.Seed})
	cfg := RunConfig{Policy: PolicyMCCK, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()}
	pool := condor.NewPool(eng, clu, cfg.buildPolicy(), cfg.Condor)

	conservative := estimator.New(estimator.Config{})
	annotate := func(j *job.Job) *job.Job {
		if est != nil {
			return est.Annotate(j)
		}
		return conservative.Annotate(j)
	}

	// Annotated copy -> original, for observation and resubmission.
	original := map[int]*job.Job{}
	attempts := map[int]int{}
	crashes := 0
	outstanding := len(jobs)

	var submit func(orig *job.Job)
	submit = func(orig *job.Job) {
		cp := annotate(orig)
		original[cp.ID] = orig
		pool.Submit([]*job.Job{cp})
	}

	pool.OnTerminal = func(q *condor.QueuedJob) {
		orig := original[q.Job.ID]
		if q.State == condor.Completed {
			if est != nil {
				est.ObserveCompletion(orig.Workload, orig.ActualPeakMem, orig.MaxOffloadThreads())
			}
			outstanding--
			return
		}
		// Failed: under the conservative regime this cannot happen (whole-
		// device declarations always cover the peak); under estimation it
		// is an underestimate caught by the container.
		crashes += q.Crashes
		if est != nil {
			est.ObserveViolation(orig.Workload, orig.ActualPeakMem)
		}
		attempts[orig.ID]++
		if attempts[orig.ID] < 5 {
			submit(orig)
			return
		}
		outstanding--
	}

	for _, j := range jobs {
		submit(j)
	}

	if est != nil {
		// The estimator daemon: every few seconds, refresh the declared
		// requirements of still-pending jobs from the latest class models
		// (a condor_qedit of RequestPhiMemory/RequestPhiThreads).
		const daemonPeriod = 5 * units.Second
		var daemon func()
		daemon = func() {
			for _, q := range pool.Pending() {
				orig := original[q.Job.ID]
				mem, threads, known := est.Estimate(orig.Workload)
				if !known {
					continue
				}
				q.Job.Mem = mem
				q.Job.Threads = threads
				q.Ad.SetInt(condor.AttrRequestPhiMemory, int64(mem))
				q.Ad.SetInt(condor.AttrRequestPhiThreads, int64(threads))
			}
			if outstanding > 0 {
				eng.After(daemonPeriod, daemon)
			}
		}
		eng.After(daemonPeriod, daemon)
	}

	eng.Run()
	if outstanding != 0 {
		panic(fmt.Sprintf("experiments: estimation run left %d jobs outstanding", outstanding))
	}
	return estimationOutcome{
		makespan:       pool.Makespan(),
		crashes:        crashes,
		maxConcurrency: pool.MaxConcurrency(),
	}
}

// WriteEstimation renders E10.
func WriteEstimation(w io.Writer, rows []EstimationRow) {
	fmt.Fprintf(w, "== E10: automatic resource estimation (Table I mix, MCCK stack) ==\n")
	fmt.Fprintf(w, "%-34s %10s %10s %8s %7s %8s\n", "declarations", "makespan", "vs-conserv", "crashes", "known", "maxconc")
	for _, r := range rows {
		red := "-"
		if r.Reduction != 0 {
			red = fmt.Sprintf("%.1f%%", r.Reduction*100)
		}
		known := "-"
		if r.KnownClasses > 0 {
			known = fmt.Sprintf("%d", r.KnownClasses)
		}
		fmt.Fprintf(w, "%-34s %9.0fs %10s %8d %7s %8d\n",
			r.Name, r.Makespan.Seconds(), red, r.Crashes, known, r.MaxConcurrency)
	}
	fmt.Fprintf(w, "(the estimator recovers most of the sharing the paper obtains from user\n")
	fmt.Fprintf(w, " declarations, without requiring any — §IV-B's anticipated relaxation)\n\n")
}
