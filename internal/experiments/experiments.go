package experiments

import (
	"fmt"
	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/core"

	"phishare/internal/job"
	"phishare/internal/phi"
	"phishare/internal/rng"
	"phishare/internal/runner"
	"phishare/internal/sim"
	"phishare/internal/trace"
	"phishare/internal/units"
	"phishare/internal/workload"
)

// Options shared by the experiment drivers.
type Options struct {
	// Seed makes every artifact reproducible. Default 42.
	Seed int64
	// Nodes is the reference cluster size (paper: 8).
	Nodes int
	// RealJobs is the Table I instance count (paper: 1000).
	RealJobs int
	// SyntheticJobs is the per-distribution synthetic count (paper: 400).
	SyntheticJobs int
	// Shards sets condor.Config.NegotiationShards for every run a driver
	// launches (cmd/phibench -shards). 0 keeps the serial scan. Sharded and
	// serial negotiation are bit-identical by contract, so this knob changes
	// wall-clock only — never a table or figure.
	Shards int
}

// Defaults fills zero fields with the paper's values.
func (o Options) Defaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Nodes == 0 {
		o.Nodes = 8
	}
	if o.RealJobs == 0 {
		o.RealJobs = 1000
	}
	if o.SyntheticJobs == 0 {
		o.SyntheticJobs = 400
	}
	return o
}

// condorCfg seeds a run's pool configuration with the driver-level knobs.
func (o Options) condorCfg() condor.Config {
	return condor.Config{NegotiationShards: o.Shards}
}

// realJobSet draws the Table I workload.
func (o Options) realJobSet() []*job.Job {
	return job.GenerateTableOneSet(o.RealJobs, rng.New(o.Seed).Fork("tableI"))
}

func (o Options) syntheticJobSet(d workload.Distribution) []*job.Job {
	return workload.Generate(workload.Config{Dist: d, N: o.SyntheticJobs, Seed: o.Seed})
}

// --- E1: §III motivation ---

// MotivationResult reproduces the §III utilization measurements: average
// core utilization under the exclusive policy for the real job mix (paper:
// ~50%, 38% in the abstract's phrasing) and for the synthetic distributions
// (paper: 38%–63%).
type MotivationResult struct {
	Real      float64
	Synthetic map[workload.Distribution]float64
}

// Motivation runs E1.
func Motivation(o Options) MotivationResult {
	o = o.Defaults()
	res := MotivationResult{Synthetic: map[workload.Distribution]float64{}}
	res.Real = Run(RunConfig{
		Policy: PolicyMC, Nodes: o.Nodes, Jobs: o.realJobSet(), Seed: o.Seed,
		Condor: o.condorCfg(),
	}).Utilization
	for _, d := range workload.Distributions() {
		res.Synthetic[d] = Run(RunConfig{
			Policy: PolicyMC, Nodes: o.Nodes, Jobs: o.syntheticJobSet(d), Seed: o.Seed,
			Condor: o.condorCfg(),
		}).Utilization
	}
	return res
}

// --- E2: Table II ---

// Table2Row is one configuration's makespan and footprint entry.
type Table2Row struct {
	Policy             string
	Makespan           units.Tick
	Reduction          float64 // vs MC
	Footprint          int     // cluster size matching MC@Nodes makespan (0 for MC)
	FootprintReduction float64
}

// Table2Result reproduces Table II.
type Table2Result struct {
	Nodes int
	Jobs  int
	// LowerBound is the analytic makespan floor (job.MakespanLowerBound):
	// no schedule can beat it, so it contextualizes how much headroom the
	// sharing schedulers leave.
	LowerBound units.Tick
	Rows       []Table2Row // MC, MCC, MCCK
}

// Table2 runs E2: 1000 real jobs on the reference cluster under the three
// configurations, plus the footprint search for the sharing ones.
func Table2(o Options) Table2Result {
	o = o.Defaults()
	jobs := o.realJobSet()
	out := Table2Result{Nodes: o.Nodes, Jobs: len(jobs)}

	out.LowerBound = job.MakespanLowerBound(jobs, o.Nodes)
	base := Run(RunConfig{Policy: PolicyMC, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()})
	out.Rows = append(out.Rows, Table2Row{Policy: PolicyMC, Makespan: base.Makespan})

	for _, p := range []string{PolicyMCC, PolicyMCCK} {
		r := Run(RunConfig{Policy: p, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()})
		fp, ok := Footprint(RunConfig{Policy: p, Jobs: jobs, Seed: o.Seed, Nodes: 1, Condor: o.condorCfg()}, base.Makespan, o.Nodes)
		row := Table2Row{
			Policy:    p,
			Makespan:  r.Makespan,
			Reduction: 1 - float64(r.Makespan)/float64(base.Makespan),
		}
		if ok {
			row.Footprint = fp
			row.FootprintReduction = 1 - float64(fp)/float64(o.Nodes)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// --- E3: Fig. 7 ---

// Fig7Result is the four resource-distribution histograms.
type Fig7Result struct {
	Histograms []workload.Histogram
}

// Fig7 runs E3: generate each synthetic job set and bin its resource
// levels.
func Fig7(o Options) Fig7Result {
	o = o.Defaults()
	var out Fig7Result
	for _, d := range workload.Distributions() {
		cfg := workload.Config{Dist: d, N: o.SyntheticJobs, Seed: o.Seed}
		jobs := workload.Generate(cfg)
		out.Histograms = append(out.Histograms, workload.BuildHistogram(d, jobs, cfg, 10))
	}
	return out
}

// --- E4: Fig. 8 ---

// Fig8Row is one distribution's makespans under the three configurations.
type Fig8Row struct {
	Dist          workload.Distribution
	MC, MCC, MCCK units.Tick
}

// Fig8Result reproduces Fig. 8 (makespan sensitivity to job resource
// distribution).
type Fig8Result struct {
	Nodes int
	Jobs  int
	Rows  []Fig8Row
}

// Fig8 runs E4.
func Fig8(o Options) Fig8Result {
	o = o.Defaults()
	out := Fig8Result{Nodes: o.Nodes, Jobs: o.SyntheticJobs}
	for _, d := range workload.Distributions() {
		jobs := o.syntheticJobSet(d)
		row := Fig8Row{Dist: d}
		row.MC = Run(RunConfig{Policy: PolicyMC, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()}).Makespan
		row.MCC = Run(RunConfig{Policy: PolicyMCC, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()}).Makespan
		row.MCCK = Run(RunConfig{Policy: PolicyMCCK, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()}).Makespan
		out.Rows = append(out.Rows, row)
	}
	return out
}

// --- E5: Fig. 9 ---

// Fig9Series is one distribution's makespan-vs-cluster-size curves.
type Fig9Series struct {
	Dist  workload.Distribution
	Sizes []int
	MC    []units.Tick
	MCC   []units.Tick
	MCCK  []units.Tick
}

// Fig9Result reproduces Fig. 9 (effect of cluster size, 400 jobs fixed).
type Fig9Result struct {
	Jobs   int
	Series []Fig9Series
}

// Fig9 runs E5: cluster sizes 2..Nodes for each distribution and policy.
// The 4 distributions × 7 sizes × 3 policies grid is embarrassingly
// parallel; cells run concurrently via parmap.
func Fig9(o Options) Fig9Result {
	o = o.Defaults()
	dists := workload.Distributions()
	jobSets := make([][]*job.Job, len(dists))
	for i, d := range dists {
		jobSets[i] = o.syntheticJobSet(d)
	}
	var sizes []int
	for n := 2; n <= o.Nodes; n++ {
		sizes = append(sizes, n)
	}
	type cell struct{ mc, mcc, mcck units.Tick }
	cells := parmap(len(dists)*len(sizes), func(idx int) cell {
		jobs := jobSets[idx/len(sizes)]
		n := sizes[idx%len(sizes)]
		return cell{
			mc:   Run(RunConfig{Policy: PolicyMC, Nodes: n, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()}).Makespan,
			mcc:  Run(RunConfig{Policy: PolicyMCC, Nodes: n, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()}).Makespan,
			mcck: Run(RunConfig{Policy: PolicyMCCK, Nodes: n, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()}).Makespan,
		}
	})

	out := Fig9Result{Jobs: o.SyntheticJobs}
	for di, d := range dists {
		s := Fig9Series{Dist: d}
		for si, n := range sizes {
			c := cells[di*len(sizes)+si]
			s.Sizes = append(s.Sizes, n)
			s.MC = append(s.MC, c.mc)
			s.MCC = append(s.MCC, c.mcc)
			s.MCCK = append(s.MCCK, c.mcck)
		}
		out.Series = append(out.Series, s)
	}
	return out
}

// --- E6: Table III ---

// Table3Row is one distribution's footprints.
type Table3Row struct {
	Dist workload.Distribution
	MC   int // always the reference size
	MCC  int
	MCCK int
}

// Table3Result reproduces Table III (footprint by distribution).
type Table3Result struct {
	Nodes int
	Rows  []Table3Row
}

// Table3 runs E6: per distribution, the smallest cluster whose MCC/MCCK
// makespan matches MC on the reference cluster. The four distributions'
// searches are independent and run concurrently.
func Table3(o Options) Table3Result {
	o = o.Defaults()
	dists := workload.Distributions()
	rows := parmap(len(dists), func(i int) Table3Row {
		d := dists[i]
		jobs := o.syntheticJobSet(d)
		base := Run(RunConfig{Policy: PolicyMC, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()}).Makespan
		row := Table3Row{Dist: d, MC: o.Nodes}
		if fp, ok := Footprint(RunConfig{Policy: PolicyMCC, Jobs: jobs, Seed: o.Seed, Nodes: 1, Condor: o.condorCfg()}, base, o.Nodes); ok {
			row.MCC = fp
		}
		if fp, ok := Footprint(RunConfig{Policy: PolicyMCCK, Jobs: jobs, Seed: o.Seed, Nodes: 1, Condor: o.condorCfg()}, base, o.Nodes); ok {
			row.MCCK = fp
		}
		return row
	})
	return Table3Result{Nodes: o.Nodes, Rows: rows}
}

// --- E7: Fig. 10 ---

// Fig10Point is one cluster size at constant job pressure.
type Fig10Point struct {
	Nodes         int
	Jobs          int
	MC, MCC, MCCK units.Tick
}

// Fig10Result reproduces Fig. 10: makespan under constant job pressure
// (jobs scale with cluster size; normal distribution).
type Fig10Result struct {
	Points []Fig10Point
}

// Fig10 runs E7: nodes 2,4,6,8 with 200 jobs per node (400→1600), normal
// resource distribution.
func Fig10(o Options) Fig10Result {
	o = o.Defaults()
	var out Fig10Result
	perNode := o.SyntheticJobs / 2 // 400 jobs at 2 nodes = 200/node
	for n := 2; n <= o.Nodes; n += 2 {
		jobs := workload.Generate(workload.Config{
			Dist: workload.Normal, N: perNode * n, Seed: o.Seed,
		})
		pt := Fig10Point{Nodes: n, Jobs: len(jobs)}
		pt.MC = Run(RunConfig{Policy: PolicyMC, Nodes: n, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()}).Makespan
		pt.MCC = Run(RunConfig{Policy: PolicyMCC, Nodes: n, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()}).Makespan
		pt.MCCK = Run(RunConfig{Policy: PolicyMCCK, Nodes: n, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()}).Makespan
		out.Points = append(out.Points, pt)
	}
	return out
}

// --- E8: Figs. 2–3 ---

// Fig23Result holds the two offload-overlap timelines.
type Fig23Result struct {
	// Maximal is the Fig. 2 case: two jobs whose offloads each use all 240
	// threads; sharing interleaves host gaps but offloads serialize.
	Maximal           *trace.Recorder
	MaximalMakespan   units.Tick
	MaximalSequential units.Tick
	// Partial is the Fig. 3 case: two 120-thread jobs whose offloads
	// overlap freely.
	Partial           *trace.Recorder
	PartialMakespan   units.Tick
	PartialSequential units.Tick
}

// fig23Job builds the illustrative two-offload/three-offload jobs of
// Figs. 2–3.
func fig23Job(id int, name string, threads units.Threads, offloads int) *job.Job {
	j := &job.Job{
		ID: id, Name: name, Workload: "fig23",
		Mem: 1000, Threads: threads, ActualPeakMem: 900,
	}
	j.Phases = append(j.Phases, job.Phase{Kind: job.HostPhase, Duration: 2 * units.Second})
	for i := 0; i < offloads; i++ {
		j.Phases = append(j.Phases,
			job.Phase{Kind: job.OffloadPhase, Duration: 3 * units.Second, Threads: threads},
			job.Phase{Kind: job.HostPhase, Duration: 2 * units.Second})
	}
	return j
}

// Fig23 runs E8: each pair shares one COSMIC-managed device; the recorder
// captures the resulting usage profile.
func Fig23(o Options) Fig23Result {
	o = o.Defaults()
	run := func(threads units.Threads) (*trace.Recorder, units.Tick, units.Tick) {
		eng := sim.New()
		clu := cluster.New(eng, cluster.Config{Nodes: 1, UseCosmic: true, Seed: o.Seed})
		rec := trace.NewRecorder()
		clu.Units[0].Device.Trace = rec
		j1 := fig23Job(1, "J1", threads, 2)
		j2 := fig23Job(2, "J2", threads, 3)
		var makespan units.Tick
		for _, j := range []*job.Job{j1, j2} {
			runner.Run(clu.Units[0], j, func(runner.Result) {
				if eng.Now() > makespan {
					makespan = eng.Now()
				}
			})
		}
		eng.Run()
		return rec, makespan, j1.SequentialTime() + j2.SequentialTime()
	}
	var out Fig23Result
	out.Maximal, out.MaximalMakespan, out.MaximalSequential = run(240)
	out.Partial, out.PartialMakespan, out.PartialSequential = run(120)
	return out
}

// --- A1: value-function ablation ---

// AblationRow is one variant's makespan.
type AblationRow struct {
	Name      string
	Makespan  units.Tick
	Reduction float64 // vs the first row's baseline context (set by driver)
}

// AblationValueFunction compares the Eq. 1 value against the linear and
// unit values, memory-only packing, and no-fill packing, on the real mix.
func AblationValueFunction(o Options) []AblationRow {
	o = o.Defaults()
	jobs := o.realJobSet()
	base := Run(RunConfig{Policy: PolicyMC, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()}).Makespan
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"eq1 (paper)", core.Config{}},
		{"linear value", core.Config{Value: core.Linear}},
		{"unit value", core.Config{Value: core.Unit}},
		{"no thread dim", core.Config{DisableThreadDim: true}},
		{"no fill stage", core.Config{DisableFill: true}},
	}
	rows := []AblationRow{{Name: "MC baseline", Makespan: base}}
	for _, v := range variants {
		m := Run(RunConfig{Policy: PolicyMCCK, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed, Core: v.cfg, Condor: o.condorCfg()}).Makespan
		rows = append(rows, AblationRow{
			Name:      "MCCK " + v.name,
			Makespan:  m,
			Reduction: 1 - float64(m)/float64(base),
		})
	}
	return rows
}

// --- A2: oversubscription ablation ---

// OversubRow summarizes one stack's behaviour under oversubscription-prone
// conditions.
type OversubRow struct {
	Name     string
	Makespan units.Tick
	Crashes  int
	Failed   int
}

// AblationOversubscription reproduces the §II-C / §III hazard: the same job
// mix run through (a) a Phi-agnostic Condor on raw MPSS devices, where jobs
// oversubscribe memory and threads freely, and (b) the COSMIC-protected MCC
// stack. Jobs get a retry budget so the agnostic stack's crashes inflate
// its makespan rather than just its failure count.
func AblationOversubscription(o Options) []OversubRow {
	o = o.Defaults()
	jobs := o.realJobSet()
	// A Phi-agnostic Condor advertises one slot per host core (16 on the
	// paper's 2x8-core servers): nothing ties slot count to the single
	// coprocessor, so up to 16 jobs pile onto one card — the §III setup.
	raw := Run(RunConfig{
		Policy: PolicyAgnostic, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed,
		Condor: condor.Config{MaxRetries: 5, HostSlots: 16, NegotiationShards: o.Shards},
	})
	safe := Run(RunConfig{
		Policy: PolicyMCC, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed,
		Condor: condor.Config{MaxRetries: 5, NegotiationShards: o.Shards},
	})
	return []OversubRow{
		{Name: "Agnostic + raw MPSS", Makespan: raw.Makespan, Crashes: raw.Summary.Crashes, Failed: raw.Summary.Failed},
		{Name: "MCC (COSMIC-protected)", Makespan: safe.Makespan, Crashes: safe.Summary.Crashes, Failed: safe.Summary.Failed},
	}
}

// --- A3: negotiation-cycle ablation ---

// CycleRow is one negotiation-cycle setting's MCCK makespan.
type CycleRow struct {
	Cycle    units.Tick
	Makespan units.Tick
}

// AblationNegotiationCycle sweeps the Condor negotiation cycle for MCCK on
// the normal distribution — the integration overhead that produces Fig. 8's
// high-skew dip grows with the cycle.
func AblationNegotiationCycle(o Options) []CycleRow {
	o = o.Defaults()
	jobs := o.syntheticJobSet(workload.Normal)
	var rows []CycleRow
	for _, c := range []units.Tick{5 * units.Second, 10 * units.Second, 30 * units.Second, 60 * units.Second} {
		m := Run(RunConfig{
			Policy: PolicyMCCK, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed,
			Condor: condor.Config{NegotiationCycle: c, NotifyDelay: c / 5, NegotiationShards: o.Shards},
		}).Makespan
		rows = append(rows, CycleRow{Cycle: c, Makespan: m})
	}
	return rows
}

// --- A6: claim reuse ---

// AblationClaimReuse quantifies the scheduling-path overhead the paper's
// add-on design pays: with HTCondor-style claim leasing (a vacated machine
// immediately takes the next matching pending job, skipping negotiation),
// every stack speeds up; the gap between the two modes is the negotiation
// latency embedded in each configuration's makespan.
func AblationClaimReuse(o Options) []AblationRow {
	o = o.Defaults()
	jobs := o.realJobSet()
	var rows []AblationRow
	for _, p := range Policies() {
		for _, reuse := range []bool{false, true} {
			name := p + " negotiated"
			if reuse {
				name = p + " claim-reuse"
			}
			m := Run(RunConfig{
				Policy: p, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed,
				Condor: condor.Config{ClaimReuse: reuse, NegotiationShards: o.Shards},
			}).Makespan
			rows = append(rows, AblationRow{Name: name, Makespan: m})
		}
	}
	return rows
}

// --- A5: PCIe transfer contention ---

// TransferRow is one (policy, link bandwidth) point of the transfer
// ablation.
type TransferRow struct {
	Policy        string
	BandwidthMBps float64
	Makespan      units.Tick
}

// transferHeavyJob builds an SGEMM-like job with explicit DMA payloads:
// each offload moves two 8K×8K single-precision operands in (512 MB) and
// the product out (256 MB) across the node link — Fig. 1's in/out clauses
// made explicit rather than folded into the offload duration.
func transferHeavyJob(id int, r *rng.Source) *job.Job {
	j := &job.Job{
		ID:       id,
		Name:     fmt.Sprintf("sgx#%d", id),
		Workload: "sgemm-xfer",
		Mem:      2048,
		Threads:  60,
	}
	j.ActualPeakMem = units.MB(float64(j.Mem) * r.Uniform(0.85, 1.0))
	j.Phases = append(j.Phases, job.Phase{Kind: job.HostPhase, Duration: units.Second})
	k := r.UniformInt(6, 10)
	for i := 0; i < k; i++ {
		j.Phases = append(j.Phases,
			job.Phase{
				Kind: job.OffloadPhase, Duration: 2 * units.Second, Threads: 60,
				TransferIn: 512, TransferOut: 256,
			},
			job.Phase{Kind: job.HostPhase, Duration: 500 * units.Millisecond})
	}
	return j
}

// AblationTransferContention runs A5: a transfer-heavy workload across the
// three stacks at full (6 GB/s) and constrained (1.5 GB/s) node links.
// Sharing multiplies concurrent DMA, so a starved link erodes the sharing
// stacks' advantage — a resource dimension the paper's knapsack does not
// model.
func AblationTransferContention(o Options) []TransferRow {
	o = o.Defaults()
	r := rng.New(o.Seed).Fork("transfer-ablation")
	n := o.SyntheticJobs / 2
	if n < 50 {
		n = 50
	}
	jobs := make([]*job.Job, n)
	for i := range jobs {
		jobs[i] = transferHeavyJob(i, r)
	}
	var rows []TransferRow
	for _, bw := range []float64{phi.DefaultLinkBandwidthMBps, 1500} {
		for _, p := range Policies() {
			m := Run(RunConfig{
				Policy: p, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed,
				LinkBandwidthMBps: bw, Condor: o.condorCfg(),
			}).Makespan
			rows = append(rows, TransferRow{Policy: p, BandwidthMBps: bw, Makespan: m})
		}
	}
	return rows
}

// --- A4: dispatch-discipline ablation ---

// AblationDispatchDiscipline compares COSMIC's strict arrival-order offload
// dispatch against the work-conserving first-fit bypass, under MCC and
// MCCK on the real mix.
func AblationDispatchDiscipline(o Options) []AblationRow {
	o = o.Defaults()
	jobs := o.realJobSet()
	var rows []AblationRow
	for _, p := range []string{PolicyMCC, PolicyMCCK} {
		for _, bypass := range []bool{false, true} {
			name := p + " fifo"
			if bypass {
				name = p + " first-fit"
			}
			m := Run(RunConfig{
				Policy: p, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed, CosmicBypass: bypass,
				Condor: o.condorCfg(),
			}).Makespan
			rows = append(rows, AblationRow{Name: name, Makespan: m})
		}
	}
	return rows
}
