package experiments

import (
	"fmt"
	"io"

	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/job"
	"phishare/internal/metrics"
	"phishare/internal/rng"
	"phishare/internal/sim"
	"phishare/internal/units"
	"phishare/internal/workload"
)

// E9 — dynamic arrivals. The paper's scheduler is static ("applies to a set
// of jobs waiting to execute... the set could represent a snapshot in a
// dynamic scenario") and its Limitations section notes the approach "can
// also be used in a dynamic context, but that is outside the scope of this
// work". This extension exercises exactly that: jobs arrive as a Poisson
// process and the schedulers run continuously on the evolving queue. With
// arrivals, the interesting metric shifts from makespan to response time —
// how long a job waits plus runs — at a given offered load.

// DynamicConfig parameterizes the arrival experiment.
type DynamicConfig struct {
	// Loads are the offered loads to sweep, each as a fraction of the
	// MC-stack service capacity (jobs' mean sequential time / devices).
	// Values above ~1 saturate the exclusive baseline. Default
	// {0.5, 0.8, 1.1, 1.4}: the sweep exposes the crossover where sharing
	// starts to pay — at light load a dedicated device answers fastest; as
	// the queue builds, the sharing stacks' extra throughput wins.
	Loads []float64
	// Jobs is the number of arrivals to simulate per load. Default
	// SyntheticJobs.
	Jobs int
}

// DynamicRow is one (load, policy) point.
type DynamicRow struct {
	Load         float64
	Policy       string
	MeanResponse units.Tick // completion − arrival
	P95Response  units.Tick
	MeanWait     units.Tick // first dispatch − arrival
	Utilization  float64
	Completed    int
}

// Dynamic runs E9: per load, the same Poisson arrival sequence (identical
// jobs and arrival times) through MC, MCC and MCCK.
func Dynamic(o Options, dc DynamicConfig) []DynamicRow {
	o = o.Defaults()
	if len(dc.Loads) == 0 {
		dc.Loads = []float64{0.5, 0.8, 1.1, 1.4}
	}
	if dc.Jobs == 0 {
		dc.Jobs = o.SyntheticJobs
	}

	jobs := workload.Generate(workload.Config{Dist: workload.Normal, N: dc.Jobs, Seed: o.Seed})
	// Offered load λ·E[S] = Load·devices, with E[S] the mean sequential
	// service time: the exclusive stack's capacity is one job per device.
	meanService := float64(job.TotalSequentialTime(jobs)) / float64(len(jobs))

	var rows []DynamicRow
	for _, load := range dc.Loads {
		if load <= 0 {
			panic("experiments: non-positive load")
		}
		meanGap := meanService / (load * float64(o.Nodes))
		arrivals := make([]units.Tick, len(jobs))
		ar := rng.New(o.Seed).Fork("arrivals")
		t := 0.0
		for i := range arrivals {
			arrivals[i] = units.Tick(t)
			t += ar.Exp(meanGap)
		}
		for _, policy := range Policies() {
			row := runDynamic(o, policy, jobs, arrivals)
			row.Load = load
			rows = append(rows, row)
		}
	}
	return rows
}

func runDynamic(o Options, policy string, jobs []*job.Job, arrivals []units.Tick) DynamicRow {
	cfg := RunConfig{Policy: policy, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed, Condor: o.condorCfg()}
	eng := sim.New()
	eng.MaxSteps = 500_000_000
	clu := cluster.New(eng, cluster.Config{
		Nodes:     o.Nodes,
		UseCosmic: cfg.usesCosmic(),
		Seed:      o.Seed,
	})
	pool := condor.NewPool(eng, clu, cfg.buildPolicy(), cfg.Condor)
	for i, j := range jobs {
		j := j
		eng.At(arrivals[i], func() { pool.Submit([]*job.Job{j}) })
	}
	eng.Run()
	if !pool.Done() {
		panic("experiments: dynamic run left jobs outstanding")
	}

	recs := pool.Records()
	responses := make([]units.Tick, 0, len(recs))
	var respSum, waitSum int64
	completed := 0
	for _, r := range recs {
		if !r.Completed {
			continue
		}
		completed++
		resp := r.EndTime - r.SubmitTime
		responses = append(responses, resp)
		respSum += int64(resp)
		waitSum += int64(r.WaitTime())
	}
	row := DynamicRow{Policy: policy, Completed: completed}
	if completed > 0 {
		row.MeanResponse = units.Tick(respSum / int64(completed))
		row.MeanWait = units.Tick(waitSum / int64(completed))
		row.P95Response = metrics.Percentile(responses, 95)
	}
	row.Utilization = clu.AvgCoreUtilization(pool.Makespan())
	return row
}

// WriteDynamic renders E9.
func WriteDynamic(w io.Writer, rows []DynamicRow) {
	fmt.Fprintf(w, "== E9: dynamic Poisson arrivals (normal dist; extension of the static formulation) ==\n")
	fmt.Fprintf(w, "%-6s %-6s %12s %12s %10s %6s %10s\n", "load", "config", "mean resp", "p95 resp", "mean wait", "done", "util")
	lastLoad := -1.0
	for _, r := range rows {
		if r.Load != lastLoad && lastLoad >= 0 {
			fmt.Fprintln(w)
		}
		lastLoad = r.Load
		fmt.Fprintf(w, "%-6.2f %-6s %11.1fs %11.1fs %9.1fs %6d %9.1f%%\n",
			r.Load, r.Policy, r.MeanResponse.Seconds(), r.P95Response.Seconds(),
			r.MeanWait.Seconds(), r.Completed, r.Utilization*100)
	}
	fmt.Fprintf(w, "(at light load a dedicated device answers fastest; past MC's saturation\n")
	fmt.Fprintf(w, " point the sharing stacks' extra throughput takes over — the dynamic\n")
	fmt.Fprintf(w, " scenario the paper's Limitations section anticipates)\n\n")
}
