package experiments

import (
	"runtime"
	"sync"
)

// parmap evaluates fn(0..n-1) concurrently on up to GOMAXPROCS workers and
// returns the results in index order. Each simulation owns its engine,
// cluster and RNG streams, so runs are embarrassingly parallel and the
// output is bit-identical to a sequential loop — only wall-clock changes.
// The sweep experiments (Fig. 9's 84 runs, Table III's footprint searches)
// use it to exploit the host's cores.
func parmap[T any](n int, fn func(int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
