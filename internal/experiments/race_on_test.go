//go:build race

package experiments

// raceEnabled gates the full-scale streaming trace test: the 1,000-node /
// 100k-job cell is tier-1 coverage under plain `go test` but would dominate
// the -race suite's wall clock, and the small-cell bit-identity tests
// already exercise every code path under the race detector.
const raceEnabled = true
