package experiments

import (
	"fmt"
	"io"
	"math"

	"phishare/internal/units"
)

// Multi-seed robustness: the paper reports single runs; a reproduction
// should show its headline numbers are not seed artifacts. Table2Multi
// re-draws the Table I workload under several seeds and reports the
// mean ± standard deviation of each configuration's makespan reduction.

// SeedStats summarizes one policy across seeds.
type SeedStats struct {
	Policy        string
	MeanMakespan  units.Tick
	StdMakespan   units.Tick
	MeanReduction float64 // vs MC, per-seed then averaged (0 for MC)
	StdReduction  float64
	Seeds         int
}

// Table2Multi runs the Table II comparison across the given seeds
// (default 1..5) and aggregates. Runs execute concurrently.
func Table2Multi(o Options, seeds []int64) []SeedStats {
	o = o.Defaults()
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	type trial struct {
		makespans map[string]units.Tick
	}
	trials := parmap(len(seeds), func(i int) trial {
		opts := o
		opts.Seed = seeds[i]
		jobs := opts.realJobSet()
		t := trial{makespans: map[string]units.Tick{}}
		for _, p := range Policies() {
			t.makespans[p] = Run(RunConfig{
				Policy: p, Nodes: opts.Nodes, Jobs: jobs, Seed: opts.Seed,
				Condor: opts.condorCfg(),
			}).Makespan
		}
		return t
	})

	var out []SeedStats
	for _, p := range Policies() {
		var ms, reds []float64
		for _, t := range trials {
			ms = append(ms, float64(t.makespans[p]))
			if p != PolicyMC {
				reds = append(reds, 1-float64(t.makespans[p])/float64(t.makespans[PolicyMC]))
			}
		}
		mMean, mStd := meanStd(ms)
		rMean, rStd := meanStd(reds)
		out = append(out, SeedStats{
			Policy:        p,
			MeanMakespan:  units.Tick(mMean),
			StdMakespan:   units.Tick(mStd),
			MeanReduction: rMean,
			StdReduction:  rStd,
			Seeds:         len(seeds),
		})
	}
	return out
}

// meanStd returns the mean and (population) standard deviation.
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// WriteTable2Multi renders the multi-seed aggregation.
func WriteTable2Multi(w io.Writer, stats []SeedStats) {
	if len(stats) == 0 {
		return
	}
	fmt.Fprintf(w, "== Table II across %d workload seeds (mean ± std) ==\n", stats[0].Seeds)
	fmt.Fprintf(w, "%-6s %18s %16s\n", "config", "makespan", "reduction")
	for _, s := range stats {
		red := "-"
		if s.Policy != PolicyMC {
			red = fmt.Sprintf("%.1f%% ± %.1f%%", s.MeanReduction*100, s.StdReduction*100)
		}
		fmt.Fprintf(w, "%-6s %9.0fs ± %4.0fs %16s\n",
			s.Policy, s.MeanMakespan.Seconds(), s.StdMakespan.Seconds(), red)
	}
	fmt.Fprintf(w, "(paper single-run: MCC 27%%, MCCK 39%%)\n\n")
}
