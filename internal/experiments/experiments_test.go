package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"phishare/internal/condor"
	"phishare/internal/core"
	"phishare/internal/faults"
	"phishare/internal/job"
	"phishare/internal/metrics"
	"phishare/internal/rng"
	"phishare/internal/units"
	"phishare/internal/workload"
)

// small keeps the drivers fast in unit tests; the full-scale parameters run
// in the benchmarks and cmd/phibench.
func small() Options {
	return Options{Seed: 42, Nodes: 4, RealJobs: 200, SyntheticJobs: 120}
}

func TestRunBasics(t *testing.T) {
	jobs := job.GenerateTableOneSet(50, rng.New(1))
	res := Run(RunConfig{Policy: PolicyMC, Nodes: 2, Jobs: jobs, Seed: 1})
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	if res.Summary.Completed != 50 {
		t.Fatalf("completed %d/50", res.Summary.Completed)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization %v", res.Utilization)
	}
	if res.MaxConcurrency != 1 {
		t.Fatalf("MC concurrency %d", res.MaxConcurrency)
	}
}

func TestRunPanicsOnBadConfig(t *testing.T) {
	for name, cfg := range map[string]RunConfig{
		"no nodes":   {Policy: PolicyMC, Jobs: job.GenerateTableOneSet(1, rng.New(1))},
		"no jobs":    {Policy: PolicyMC, Nodes: 1},
		"bad policy": {Policy: "nope", Nodes: 1, Jobs: job.GenerateTableOneSet(1, rng.New(1))},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			Run(cfg)
		}()
	}
}

func TestRunDeterministic(t *testing.T) {
	jobs := job.GenerateTableOneSet(60, rng.New(2))
	a := Run(RunConfig{Policy: PolicyMCCK, Nodes: 2, Jobs: jobs, Seed: 7})
	b := Run(RunConfig{Policy: PolicyMCCK, Nodes: 2, Jobs: jobs, Seed: 7})
	if a.Makespan != b.Makespan || a.Utilization != b.Utilization {
		t.Errorf("same-seed runs differ: %+v vs %+v", a, b)
	}
}

func TestMotivationShape(t *testing.T) {
	r := Motivation(small())
	if r.Real < 0.30 || r.Real > 0.65 {
		t.Errorf("real-mix exclusive utilization %.2f outside the paper band", r.Real)
	}
	for d, u := range r.Synthetic {
		if u < 0.15 || u > 0.80 {
			t.Errorf("%v exclusive utilization %.2f implausible", d, u)
		}
	}
	// Low-skew jobs use few cores; high-skew many: utilization must order.
	if r.Synthetic[workload.LowSkew] >= r.Synthetic[workload.HighSkew] {
		t.Errorf("low-skew util %.2f not below high-skew %.2f",
			r.Synthetic[workload.LowSkew], r.Synthetic[workload.HighSkew])
	}
}

func TestTable2Shape(t *testing.T) {
	r := Table2(small())
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	mc, mcc, mcck := r.Rows[0], r.Rows[1], r.Rows[2]
	if mcc.Makespan >= mc.Makespan {
		t.Errorf("MCC %v not better than MC %v", mcc.Makespan, mc.Makespan)
	}
	if mcck.Makespan >= mcc.Makespan {
		t.Errorf("MCCK %v not better than MCC %v (paper's headline ordering)", mcck.Makespan, mcc.Makespan)
	}
	if mcck.Reduction < 0.25 {
		t.Errorf("MCCK reduction %.2f below the paper's scale", mcck.Reduction)
	}
	if mcc.Footprint == 0 || mcck.Footprint == 0 {
		t.Error("footprint search failed")
	}
	if mcck.Footprint > mcc.Footprint {
		t.Errorf("MCCK footprint %d worse than MCC %d", mcck.Footprint, mcc.Footprint)
	}
	if mcck.Footprint >= r.Nodes {
		t.Errorf("MCCK footprint %d shows no reduction from %d", mcck.Footprint, r.Nodes)
	}
}

func TestFig7Shape(t *testing.T) {
	r := Fig7(small())
	if len(r.Histograms) != 4 {
		t.Fatalf("histograms %d", len(r.Histograms))
	}
	var lo, n, hi float64
	for _, h := range r.Histograms {
		switch h.Dist {
		case workload.LowSkew:
			lo = h.MeanLevel()
		case workload.Normal:
			n = h.MeanLevel()
		case workload.HighSkew:
			hi = h.MeanLevel()
		}
	}
	if !(lo < n && n < hi) {
		t.Errorf("mean levels out of order: %v %v %v", lo, n, hi)
	}
}

func TestFig8Shape(t *testing.T) {
	r := Fig8(small())
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	var highSkewGain float64
	minOtherGain := 1.0
	for _, row := range r.Rows {
		if row.MCC >= row.MC || row.MCCK >= row.MC {
			t.Errorf("%v: sharing did not beat MC (%v/%v vs %v)", row.Dist, row.MCC, row.MCCK, row.MC)
		}
		gain := reduction(row.MC, row.MCCK)
		if row.Dist == workload.HighSkew {
			highSkewGain = gain
		} else if gain < minOtherGain {
			minOtherGain = gain
		}
	}
	if highSkewGain >= minOtherGain {
		t.Errorf("high-skew gain %.2f not the smallest (others >= %.2f)", highSkewGain, minOtherGain)
	}
}

func TestFig9Shape(t *testing.T) {
	o := small()
	o.SyntheticJobs = 80
	r := Fig9(o)
	for _, s := range r.Series {
		for i := 1; i < len(s.Sizes); i++ {
			if s.MC[i] > s.MC[i-1] {
				t.Errorf("%v: MC makespan grew with cluster size (%v -> %v)", s.Dist, s.MC[i-1], s.MC[i])
			}
		}
		// At the largest size, sharing beats MC.
		last := len(s.Sizes) - 1
		if s.MCCK[last] >= s.MC[last] {
			t.Errorf("%v: MCCK not better than MC at %d nodes", s.Dist, s.Sizes[last])
		}
	}
}

func TestTable3Shape(t *testing.T) {
	r := Table3(small())
	for _, row := range r.Rows {
		if row.MCC == 0 || row.MCCK == 0 {
			t.Errorf("%v: footprint search failed (%d, %d)", row.Dist, row.MCC, row.MCCK)
			continue
		}
		if row.MCCK > row.MCC {
			t.Errorf("%v: MCCK footprint %d worse than MCC %d", row.Dist, row.MCCK, row.MCC)
		}
		if row.MCC > r.Nodes {
			t.Errorf("%v: MCC footprint %d exceeds reference", row.Dist, row.MCC)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	o := small()
	o.SyntheticJobs = 80 // 40 jobs per node
	r := Fig10(o)
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range r.Points {
		if p.MCCK >= p.MC {
			t.Errorf("%d nodes: MCCK %v not better than MC %v at constant pressure", p.Nodes, p.MCCK, p.MC)
		}
	}
	last := r.Points[len(r.Points)-1]
	if got := reduction(last.MC, last.MCCK); got < 0.2 {
		t.Errorf("MCCK-vs-MC at max size = %.2f, want the paper's ~0.4 scale", got)
	}
}

func TestFig23Shape(t *testing.T) {
	r := Fig23(small())
	// Both sharing cases beat sequential execution.
	if r.MaximalMakespan >= r.MaximalSequential {
		t.Errorf("maximal: concurrent %v not better than sequential %v", r.MaximalMakespan, r.MaximalSequential)
	}
	if r.PartialMakespan >= r.PartialSequential {
		t.Errorf("partial: concurrent %v not better than sequential %v", r.PartialMakespan, r.PartialSequential)
	}
	// Partial-width jobs overlap better than maximal-width ones
	// (Fig. 3's point): bigger relative saving.
	maxSave := 1 - float64(r.MaximalMakespan)/float64(r.MaximalSequential)
	parSave := 1 - float64(r.PartialMakespan)/float64(r.PartialSequential)
	if parSave <= maxSave {
		t.Errorf("partial saving %.2f not better than maximal %.2f", parSave, maxSave)
	}
	// The maximal case must never oversubscribe: no overlapping intervals
	// with combined threads > 240.
	ivs := r.Maximal.Intervals()
	for i := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			if ivs[i].End > ivs[j].Start && ivs[j].End > ivs[i].Start &&
				ivs[i].Threads+ivs[j].Threads > 240 {
				t.Errorf("oversubscribed overlap: %+v and %+v", ivs[i], ivs[j])
			}
		}
	}
}

func TestAblationValueFunction(t *testing.T) {
	o := small()
	rows := AblationValueFunction(o)
	if len(rows) != 6 {
		t.Fatalf("rows %d", len(rows))
	}
	base := rows[0].Makespan
	for _, r := range rows[1:] {
		if r.Makespan >= base {
			t.Errorf("%s: %v not better than MC %v", r.Name, r.Makespan, base)
		}
	}
}

func TestAblationOversubscription(t *testing.T) {
	rows := AblationOversubscription(small())
	raw, safe := rows[0], rows[1]
	if raw.Crashes == 0 {
		t.Error("agnostic raw stack produced no crashes")
	}
	if safe.Crashes != 0 {
		t.Errorf("COSMIC-protected stack crashed %d times", safe.Crashes)
	}
	if safe.Failed != 0 {
		t.Errorf("COSMIC-protected stack failed %d jobs", safe.Failed)
	}
}

func TestAblationNegotiationCycle(t *testing.T) {
	o := small()
	o.SyntheticJobs = 80
	rows := AblationNegotiationCycle(o)
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	// Longer cycles cannot help; the longest must be no better than the
	// shortest.
	if rows[len(rows)-1].Makespan < rows[0].Makespan {
		t.Errorf("60s cycle %v beat 5s cycle %v", rows[len(rows)-1].Makespan, rows[0].Makespan)
	}
}

func TestAblationDispatchDiscipline(t *testing.T) {
	o := small()
	o.RealJobs = 120
	rows := AblationDispatchDiscipline(o)
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Makespan <= 0 {
			t.Errorf("%s: empty makespan", r.Name)
		}
	}
}

func TestFootprintMonotoneTarget(t *testing.T) {
	jobs := job.GenerateTableOneSet(80, rng.New(3))
	base := Run(RunConfig{Policy: PolicyMC, Nodes: 4, Jobs: jobs, Seed: 3}).Makespan
	fp, ok := Footprint(RunConfig{Policy: PolicyMCCK, Jobs: jobs, Seed: 3, Nodes: 1}, base, 4)
	if !ok {
		t.Fatal("footprint not found even at reference size")
	}
	if fp < 1 || fp > 4 {
		t.Fatalf("footprint %d out of range", fp)
	}
	// An impossible target finds nothing.
	if _, ok := Footprint(RunConfig{Policy: PolicyMCCK, Jobs: jobs, Seed: 3, Nodes: 1}, units.Tick(1), 4); ok {
		t.Error("impossible footprint target satisfied")
	}
}

func TestReportsRender(t *testing.T) {
	o := small()
	o.RealJobs = 60
	o.SyntheticJobs = 60
	var buf bytes.Buffer
	WriteMotivation(&buf, Motivation(o))
	WriteTable2(&buf, Table2(o))
	WriteFig7(&buf, Fig7(o))
	WriteFig8(&buf, Fig8(o))
	WriteTable3(&buf, Table3(o))
	WriteFig23(&buf, Fig23(o))
	WriteAblation(&buf, "A1", AblationValueFunction(o))
	WriteOversub(&buf, AblationOversubscription(o))
	WriteDynamic(&buf, Dynamic(o, DynamicConfig{Loads: []float64{0.8}, Jobs: 40}))
	WriteEstimation(&buf, Estimation(Options{Seed: o.Seed, Nodes: o.Nodes, RealJobs: 60}))
	WriteTransfer(&buf, []TransferRow{{Policy: "MC", BandwidthMBps: 6000, Makespan: 100}})
	WriteCycles(&buf, []CycleRow{{Cycle: 100, Makespan: 100}})
	WriteTable2Multi(&buf, Table2Multi(Options{Seed: 1, Nodes: o.Nodes, RealJobs: 60}, []int64{1, 2}))
	out := buf.String()
	for _, want := range []string{"E1", "Table II", "Fig. 7", "Fig. 8", "Table III", "Figs. 2-3",
		"A1", "A2", "E9", "E10", "A5", "A3", "workload seeds"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "%!") {
		t.Errorf("format verb error in report:\n%s", out)
	}
}

func TestDynamicShape(t *testing.T) {
	o := small()
	rows := Dynamic(o, DynamicConfig{Loads: []float64{0.5, 1.4}, Jobs: 100})
	if len(rows) != 6 {
		t.Fatalf("rows %d", len(rows))
	}
	get := func(load float64, policy string) DynamicRow {
		for _, r := range rows {
			if r.Load == load && r.Policy == policy {
				return r
			}
		}
		t.Fatalf("missing row %v/%s", load, policy)
		return DynamicRow{}
	}
	for _, r := range rows {
		if r.Completed != 100 {
			t.Errorf("%s@%v completed %d/100", r.Policy, r.Load, r.Completed)
		}
		if r.MeanResponse <= 0 || r.P95Response < r.MeanResponse {
			t.Errorf("%s@%v response stats inconsistent: %+v", r.Policy, r.Load, r)
		}
	}
	// Past the exclusive stack's saturation point, sharing must respond
	// faster.
	if get(1.4, PolicyMCC).MeanResponse >= get(1.4, PolicyMC).MeanResponse {
		t.Errorf("overloaded MCC response %v not below MC %v",
			get(1.4, PolicyMCC).MeanResponse, get(1.4, PolicyMC).MeanResponse)
	}
	if get(1.4, PolicyMCCK).MeanResponse >= get(1.4, PolicyMC).MeanResponse {
		t.Errorf("overloaded MCCK response %v not below MC %v",
			get(1.4, PolicyMCCK).MeanResponse, get(1.4, PolicyMC).MeanResponse)
	}
	// Higher load cannot shrink MC's response time.
	if get(1.4, PolicyMC).MeanResponse < get(0.5, PolicyMC).MeanResponse {
		t.Error("MC response improved under higher load")
	}
}

func TestDynamicDeterministic(t *testing.T) {
	o := small()
	a := Dynamic(o, DynamicConfig{Loads: []float64{0.8}, Jobs: 50})
	b := Dynamic(o, DynamicConfig{Loads: []float64{0.8}, Jobs: 50})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dynamic runs differ: %+v vs %+v", a[i], b[i])
		}
	}
}

func TestDynamicPanicsOnBadLoad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative load accepted")
		}
	}()
	Dynamic(small(), DynamicConfig{Loads: []float64{-1}})
}

func TestEstimationShape(t *testing.T) {
	o := small()
	o.RealJobs = 150
	rows := Estimation(o)
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	conservative, estimated, oracle := rows[0], rows[1], rows[2]
	// Conservative declarations collapse sharing: exactly one job per
	// device, no crashes.
	if conservative.MaxConcurrency != 1 {
		t.Errorf("conservative max concurrency %d, want 1", conservative.MaxConcurrency)
	}
	if conservative.Crashes != 0 {
		t.Errorf("conservative regime crashed %d times", conservative.Crashes)
	}
	// The estimator must recover sharing: better than conservative, with
	// concurrency above 1, approaching the oracle.
	if estimated.Makespan >= conservative.Makespan {
		t.Errorf("estimated %v not better than conservative %v",
			estimated.Makespan, conservative.Makespan)
	}
	if estimated.MaxConcurrency < 2 {
		t.Errorf("estimated max concurrency %d, want sharing", estimated.MaxConcurrency)
	}
	if oracle.Makespan > estimated.Makespan {
		t.Errorf("oracle %v worse than estimated %v (oracle declarations are tighter)",
			oracle.Makespan, estimated.Makespan)
	}
	// The estimator should recover most of the oracle's gain.
	gap := float64(estimated.Makespan-oracle.Makespan) / float64(oracle.Makespan)
	if gap > 0.35 {
		t.Errorf("estimated trails oracle by %.0f%%, want within 35%%", gap*100)
	}
	if estimated.KnownClasses != 7 {
		t.Errorf("known classes %d, want all 7 Table I workloads", estimated.KnownClasses)
	}
}

func TestEstimationDeterministic(t *testing.T) {
	o := small()
	o.RealJobs = 80
	a := Estimation(o)
	b := Estimation(o)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("estimation runs differ: %+v vs %+v", a[i], b[i])
		}
	}
}

func TestAblationTransferContention(t *testing.T) {
	o := small()
	o.SyntheticJobs = 100 // 50 transfer-heavy jobs
	rows := AblationTransferContention(o)
	if len(rows) != 6 {
		t.Fatalf("rows %d", len(rows))
	}
	get := func(policy string, bw float64) units.Tick {
		for _, r := range rows {
			if r.Policy == policy && r.BandwidthMBps == bw {
				return r.Makespan
			}
		}
		t.Fatalf("missing %s@%v", policy, bw)
		return 0
	}
	// A starved link slows every stack, but hurts the sharing stacks more
	// in absolute terms (they multiplex more concurrent DMA).
	for _, p := range Policies() {
		if get(p, 1500) < get(p, 6000) {
			t.Errorf("%s: faster on a slower link", p)
		}
	}
	mcSlowdown := float64(get(PolicyMC, 1500)) / float64(get(PolicyMC, 6000))
	mcckSlowdown := float64(get(PolicyMCCK, 1500)) / float64(get(PolicyMCCK, 6000))
	if mcckSlowdown < mcSlowdown {
		t.Errorf("link starvation hurt MC (%.2fx) more than MCCK (%.2fx)", mcSlowdown, mcckSlowdown)
	}
	// At full bandwidth, sharing still wins on transfer-heavy jobs.
	if get(PolicyMCCK, 6000) >= get(PolicyMC, 6000) {
		t.Error("MCCK lost to MC on transfer-heavy jobs at full bandwidth")
	}
}

func TestAblationClaimReuse(t *testing.T) {
	o := small()
	o.RealJobs = 120
	rows := AblationClaimReuse(o)
	if len(rows) != 6 {
		t.Fatalf("rows %d", len(rows))
	}
	// MC has no placement decision to lose: reuse strictly removes
	// negotiation latency and must help.
	if rows[1].Makespan >= rows[0].Makespan {
		t.Errorf("MC claim-reuse %v not faster than negotiated %v",
			rows[1].Makespan, rows[0].Makespan)
	}
	// For the sharing stacks, eager local reuse trades placement quality
	// for latency; it must stay within 10% either way, never collapse.
	for i := 2; i < len(rows); i += 2 {
		negotiated, reused := rows[i], rows[i+1]
		ratio := float64(reused.Makespan) / float64(negotiated.Makespan)
		if ratio > 1.10 || ratio < 0.5 {
			t.Errorf("%s/%s ratio %.2f out of the plausible band",
				reused.Name, negotiated.Name, ratio)
		}
	}
}

func TestParmapOrderAndCoverage(t *testing.T) {
	out := parmap(100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("parmap[%d] = %d", i, v)
		}
	}
	if parmap(0, func(int) int { return 1 }) != nil {
		t.Error("parmap(0) not nil")
	}
	if got := parmap(1, func(int) string { return "x" }); len(got) != 1 || got[0] != "x" {
		t.Errorf("parmap(1) = %v", got)
	}
}

func TestParallelSweepsDeterministic(t *testing.T) {
	// Parallel execution must not change results: two Fig9 runs agree, and
	// sequential cells (via direct Run) match the parallel grid.
	o := small()
	o.SyntheticJobs = 60
	a := Fig9(o)
	b := Fig9(o)
	for i := range a.Series {
		for j := range a.Series[i].Sizes {
			if a.Series[i].MCCK[j] != b.Series[i].MCCK[j] {
				t.Fatalf("parallel Fig9 nondeterministic at %d/%d", i, j)
			}
		}
	}
	jobs := o.syntheticJobSet(a.Series[0].Dist)
	direct := Run(RunConfig{Policy: PolicyMCCK, Nodes: a.Series[0].Sizes[0], Jobs: jobs, Seed: o.Seed}).Makespan
	if direct != a.Series[0].MCCK[0] {
		t.Errorf("parallel cell %v != sequential run %v", a.Series[0].MCCK[0], direct)
	}
}

// TestOptimizedPathsPreserveOutcomes is the regression gate for the hot-path
// optimizations (reusable knapsack solver, negotiator match cache, pooled sim
// events): the full MCCK stack must produce bit-for-bit identical per-job
// record streams whether it runs through the optimized paths or the
// unoptimized reference paths, and repeated optimized runs must agree with
// each other. Any divergence means an optimization changed a scheduling
// decision, which is never acceptable here.
func TestOptimizedPathsPreserveOutcomes(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		jobs := job.GenerateTableOneSet(90, rng.New(seed))
		run := func(refSolver, noCache bool) (Result, []metrics.JobRecord) {
			var recs []metrics.JobRecord
			res := Run(RunConfig{
				Policy:     PolicyMCCK,
				Nodes:      3,
				Jobs:       jobs,
				Seed:       seed,
				Core:       core.Config{ReferenceSolver: refSolver},
				Condor:     condor.Config{DisableMatchCache: noCache},
				RecordSink: &recs,
			})
			return res, recs
		}
		opt1, recs1 := run(false, false)
		opt2, recs2 := run(false, false)
		ref, recsRef := run(true, true)

		if opt1.Makespan != opt2.Makespan || !reflect.DeepEqual(recs1, recs2) {
			t.Fatalf("seed %d: repeated optimized runs diverge (%v vs %v)",
				seed, opt1.Makespan, opt2.Makespan)
		}
		if opt1.Makespan != ref.Makespan {
			t.Errorf("seed %d: optimized makespan %v != reference %v",
				seed, opt1.Makespan, ref.Makespan)
		}
		if !reflect.DeepEqual(recs1, recsRef) {
			for i := range recs1 {
				if i < len(recsRef) && recs1[i] != recsRef[i] {
					t.Errorf("seed %d: record %d differs:\noptimized: %+v\nreference: %+v",
						seed, i, recs1[i], recsRef[i])
					break
				}
			}
			t.Fatalf("seed %d: optimized record stream (%d records) != reference (%d records)",
				seed, len(recs1), len(recsRef))
		}
	}
}

func TestTable2MultiShape(t *testing.T) {
	o := small()
	o.RealJobs = 150
	stats := Table2Multi(o, []int64{1, 2, 3})
	if len(stats) != 3 {
		t.Fatalf("stats %d", len(stats))
	}
	var mcck SeedStats
	for _, s := range stats {
		if s.Seeds != 3 {
			t.Errorf("%s seeds %d", s.Policy, s.Seeds)
		}
		if s.MeanMakespan <= 0 {
			t.Errorf("%s mean makespan %v", s.Policy, s.MeanMakespan)
		}
		if s.Policy == PolicyMCCK {
			mcck = s
		}
	}
	if mcck.MeanReduction < 0.25 || mcck.MeanReduction > 0.55 {
		t.Errorf("MCCK mean reduction %.2f off the paper's scale", mcck.MeanReduction)
	}
	// A calibrated, non-degenerate model should be stable across seeds.
	if mcck.StdReduction > 0.08 {
		t.Errorf("MCCK reduction std %.3f too noisy", mcck.StdReduction)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || s != 2 {
		t.Errorf("meanStd = %v, %v (want 5, 2)", m, s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Errorf("empty meanStd = %v, %v", m, s)
	}
}

// TestReferencePathOutcomeEquivalence is the acceptance gate for the
// autocluster + sparse-solver generation of optimizations: across seeds ×
// policies × fault regimes, a run with every optimization enabled must be
// bit-for-bit identical — job record stream, makespan, summary, utilization,
// concurrency — to the same run with every optimization forced onto its
// reference path (legacy per-pair matchmaking, no match cache, reference
// dense knapsack, no round memo). Faulted cells run under the light chaos
// profile with invariant checking, so the equivalence also covers the
// dirty-cycle bookkeeping that fault transitions exercise.
func TestReferencePathOutcomeEquivalence(t *testing.T) {
	type outcome struct {
		makespan       units.Tick
		utilization    float64
		maxConcurrency int
		summary        metrics.Summary
		records        []metrics.JobRecord
	}
	cell := func(policy string, seed int64, faulted, reference, serial bool, shards int) outcome {
		jobs := job.GenerateTableOneSet(60, rng.New(seed).Fork("tableI"))
		cfg := RunConfig{Policy: policy, Nodes: 3, Jobs: jobs, Seed: seed}
		var recs []metrics.JobRecord
		cfg.RecordSink = &recs
		if reference {
			cfg.Condor = condor.Config{DisableMatchCache: true, DisableAutoclusters: true}
			cfg.Core = core.Config{ReferenceSolver: true, DisableRoundMemo: true}
		}
		if serial {
			off := false
			cfg.Parallel = &off
		}
		cfg.Condor.NegotiationShards = shards
		var h *faults.Harness
		if faulted {
			h = &faults.Harness{Profile: faults.LightProfile(), Seed: seed, Check: true}
			cfg.Chaos = h
		}
		res := Run(cfg)
		if h != nil {
			if violations := h.Finish(); len(violations) > 0 {
				t.Fatalf("%s seed %d (reference=%v): invariant violations: %v",
					policy, seed, reference, violations)
			}
		}
		return outcome{res.Makespan, res.Utilization, res.MaxConcurrency, res.Summary, recs}
	}
	compare := func(policy string, seed int64, faulted bool, label string, got, want outcome) {
		t.Helper()
		if got.makespan != want.makespan || got.utilization != want.utilization ||
			got.maxConcurrency != want.maxConcurrency || got.summary != want.summary {
			t.Errorf("%s seed %d faulted=%v (%s): aggregates diverge:\ngot  %+v\nwant %+v",
				policy, seed, faulted, label, got.summary, want.summary)
		}
		if !reflect.DeepEqual(got.records, want.records) {
			for i := range got.records {
				if i < len(want.records) && got.records[i] != want.records[i] {
					t.Errorf("%s seed %d faulted=%v (%s): record %d differs:\ngot  %+v\nwant %+v",
						policy, seed, faulted, label, i, got.records[i], want.records[i])
					break
				}
			}
			t.Fatalf("%s seed %d faulted=%v (%s): record stream diverges (%d vs %d records)",
				policy, seed, faulted, label, len(got.records), len(want.records))
		}
	}
	for _, policy := range []string{PolicyMC, PolicyMCC, PolicyMCCK} {
		for seed := int64(1); seed <= 10; seed++ {
			for _, faulted := range []bool{false, true} {
				// opt runs with parallel lanes auto-enabled; ref forces every
				// scheduler optimization onto its reference path (also
				// parallel); ser is the optimized configuration with the
				// parallel core forced off; sh1/sh4 run the sharded
				// negotiator at K=1 and K=4. All five must be bit-identical.
				opt := cell(policy, seed, faulted, false, false, 0)
				ref := cell(policy, seed, faulted, true, false, 0)
				ser := cell(policy, seed, faulted, false, true, 0)
				compare(policy, seed, faulted, "reference path", opt, ref)
				compare(policy, seed, faulted, "serial engine", opt, ser)
				for _, k := range []int{1, 4} {
					sh := cell(policy, seed, faulted, false, false, k)
					compare(policy, seed, faulted, fmt.Sprintf("sharded K=%d", k), opt, sh)
				}
			}
		}
	}
	// Footprint (the paper's cluster-size-for-equal-makespan metric) runs a
	// search over cluster sizes, so spot-check it on a couple of cells
	// rather than the full grid.
	for _, seed := range []int64{1, 2} {
		jobs := job.GenerateTableOneSet(60, rng.New(seed).Fork("tableI"))
		base := Run(RunConfig{Policy: PolicyMC, Nodes: 3, Jobs: jobs, Seed: seed})
		optFP, optOK := Footprint(RunConfig{Policy: PolicyMCCK, Nodes: 3, Jobs: jobs, Seed: seed},
			base.Makespan, 6)
		refFP, refOK := Footprint(RunConfig{
			Policy: PolicyMCCK, Nodes: 3, Jobs: jobs, Seed: seed,
			Condor: condor.Config{DisableMatchCache: true, DisableAutoclusters: true},
			Core:   core.Config{ReferenceSolver: true, DisableRoundMemo: true},
		}, base.Makespan, 6)
		if optFP != refFP || optOK != refOK {
			t.Errorf("seed %d: footprint diverges: optimized (%d, %v) vs reference (%d, %v)",
				seed, optFP, optOK, refFP, refOK)
		}
	}
}
