package experiments

import (
	"os"
	"reflect"
	"strconv"
	"testing"

	"phishare/internal/condor"
	"phishare/internal/faults"
	"phishare/internal/job"
	"phishare/internal/metrics"
	"phishare/internal/rng"
)

// TestChaosDisabledPreservesOutcomes is the fault layer's analogue of
// TestObservabilityPreservesOutcomes: a harness with the invariant checker
// armed but no fault profile must leave every policy's job records and
// makespan bit-identical to a bare run. The checker hooks (AfterStep,
// OnTerminal chaining, an attached event log) observe without perturbing.
func TestChaosDisabledPreservesOutcomes(t *testing.T) {
	const seed = 11
	jobs := job.GenerateTableOneSet(90, rng.New(seed))
	for _, policy := range Policies() {
		run := func(h *faults.Harness) (Result, []metrics.JobRecord) {
			var recs []metrics.JobRecord
			res := Run(RunConfig{
				Policy:     policy,
				Nodes:      3,
				Jobs:       jobs,
				Seed:       seed,
				RecordSink: &recs,
				Chaos:      h,
			})
			return res, recs
		}
		bare, bareRecs := run(nil)
		h := &faults.Harness{Check: true, Seed: seed}
		checked, checkedRecs := run(h)

		if v := h.Finish(); len(v) != 0 {
			t.Fatalf("%s: invariant violations in a fault-free run:\n%v", policy, v)
		}
		if bare.Makespan != checked.Makespan {
			t.Fatalf("%s: checker changed makespan: %v -> %v",
				policy, bare.Makespan, checked.Makespan)
		}
		if !reflect.DeepEqual(bareRecs, checkedRecs) {
			for i := range bareRecs {
				if i < len(checkedRecs) && bareRecs[i] != checkedRecs[i] {
					t.Errorf("%s: record %d differs:\nbare:    %+v\nchecked: %+v",
						policy, i, bareRecs[i], checkedRecs[i])
					break
				}
			}
			t.Fatalf("%s: checked record stream (%d) != bare (%d)",
				policy, len(checkedRecs), len(bareRecs))
		}
		if s := h.InjectorStats(); s != (faults.Stats{}) {
			t.Fatalf("%s: zero profile injected faults: %+v", policy, s)
		}
	}
}

// TestChaosInjectsFaults asserts the swarm's profiles actually bite: a
// heavy-profile run must record device failures and evictions, and still
// satisfy every invariant.
func TestChaosInjectsFaults(t *testing.T) {
	h := &faults.Harness{Profile: faults.HeavyProfile(), Seed: 3, Check: true}
	Run(RunConfig{
		Policy: PolicyMCC,
		Nodes:  3,
		Jobs:   job.GenerateTableOneSet(18, rng.New(3)),
		Seed:   3,
		Condor: condor.Config{MaxRetries: 4},
		Chaos:  h,
	})
	if v := h.Finish(); len(v) != 0 {
		t.Fatalf("invariant violations under the heavy profile:\n%v", v)
	}
	s := h.InjectorStats()
	if s.DeviceFailures == 0 && s.NodeLosses == 0 {
		t.Errorf("heavy profile injected no device/node failures: %+v", s)
	}
	if s.Repairs == 0 {
		t.Errorf("heavy profile repaired nothing: %+v", s)
	}
}

// TestInvariantSwarm is the `make chaos` gate: a full seed × policy ×
// profile sweep under the invariant checker must come back clean. The
// sweep width honors CHAOS_SEEDS (default 50, the acceptance floor) and
// shrinks under -short; a failure prints the reproducible
// (seed, profile, policy) triple.
func TestInvariantSwarm(t *testing.T) {
	seeds := 50
	if env := os.Getenv("CHAOS_SEEDS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("bad CHAOS_SEEDS=%q", env)
		}
		seeds = n
	} else if testing.Short() {
		seeds = 10
	}
	cfg := ChaosConfig{Seeds: seeds, Logf: t.Logf}
	failures := ChaosSwarm(cfg)
	for _, f := range failures {
		t.Errorf("%s\n  replay: go run ./cmd/phichaos -seeds 1 -seed0 %d -profiles %s -policies %s",
			f, f.Seed, f.Profile, f.Policy)
	}
}

// TestChaosDiffSwarm is the reference-diff half of the `make chaos` gate:
// a seed sweep where every cell replays with autoclusters, the match
// cache, round memoization and the sparse knapsack solver force-disabled,
// and again with the parallel simulation core forced off, and every run's
// job-record stream must agree bit for bit. Each cell costs three full
// runs (the reference solver is the expensive dense DP), so the sweep is
// narrower than TestInvariantSwarm's.
func TestChaosDiffSwarm(t *testing.T) {
	seeds := 10
	if env := os.Getenv("CHAOS_DIFF_SEEDS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("bad CHAOS_DIFF_SEEDS=%q", env)
		}
		seeds = n
	} else if testing.Short() {
		seeds = 3
	}
	cfg := ChaosConfig{Seeds: seeds, DiffReference: true, Logf: t.Logf}
	failures := ChaosSwarm(cfg)
	for _, f := range failures {
		t.Errorf("%s\n  replay: go run ./cmd/phichaos -diff -seeds 1 -seed0 %d -profiles %s -policies %s",
			f, f.Seed, f.Profile, f.Policy)
	}
}

// TestChaosRunReplaysSingleCell pins the replay path the swarm's failure
// message advertises: one (seed, profile, policy) cell runs standalone and
// deterministically.
func TestChaosRunReplaysSingleCell(t *testing.T) {
	cfg := ChaosConfig{}
	a := ChaosRun(cfg, 1, faults.HeavyProfile(), PolicyMCCK)
	b := ChaosRun(cfg, 1, faults.HeavyProfile(), PolicyMCCK)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("replayed cell diverged:\nfirst:  %v\nsecond: %v", a, b)
	}
}
