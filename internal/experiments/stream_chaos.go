package experiments

import (
	"fmt"

	"phishare/internal/condor"
	"phishare/internal/faults"
	"phishare/internal/units"
	"phishare/internal/workload"
)

// Streaming chaos: the adversarial half of the streaming-equivalence
// guarantee. The clean-path equivalence tests prove that emit-and-drop
// record processing computes the same aggregates as the retained oracle;
// this leg re-proves it under fault injection, where crash/resubmit churn,
// stall aborts and node loss produce the terminal-transition orders the
// clean runs never see.
//
// The two runs of a cell cannot share an invariant checker — the checker
// audits the retained queue a streaming pool doesn't have — so the retained
// run carries it (Check=true) and the streaming run goes bare. That is
// sound because the injector is driven purely by (profile, seed), and
// TestChaosDisabledPreservesOutcomes already pins the checker itself to be
// outcome-neutral.

// StreamChaosConfig describes a streaming-vs-retained chaos sweep over a
// small faulted diurnal cell.
type StreamChaosConfig struct {
	// Seeds is the number of consecutive seeds swept (default 10).
	Seeds int
	// Seed0 is the first seed (default 1).
	Seed0 int64
	// Policies to sweep (default MC, MCC, MCCK).
	Policies []string
	// Profiles to sweep (default light and heavy).
	Profiles []faults.Profile
	// Jobs per cell (default 60), arriving over Horizon.
	Jobs int
	// Nodes per cell (default 3).
	Nodes int
	// Retries is the crash retry budget (default 4, as in ChaosConfig).
	Retries int
	// Horizon is the diurnal window the arrivals spread over (default 10
	// simulated minutes — one compressed "day" so the rate curve and a
	// couple of bursts are actually exercised).
	Horizon units.Tick
	// Tenants is the tenant population (default 3, so the per-tenant
	// fairness aggregates have something to disagree about).
	Tenants int
	// Logf, if non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c StreamChaosConfig) withDefaults() StreamChaosConfig {
	if c.Seeds == 0 {
		c.Seeds = 10
	}
	if c.Seed0 == 0 {
		c.Seed0 = 1
	}
	if len(c.Policies) == 0 {
		c.Policies = Policies()
	}
	if len(c.Profiles) == 0 {
		c.Profiles = faults.Profiles()
	}
	if c.Jobs == 0 {
		c.Jobs = 60
	}
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.Retries == 0 {
		c.Retries = 4
	}
	if c.Horizon == 0 {
		c.Horizon = 10 * units.Minute
	}
	if c.Tenants == 0 {
		c.Tenants = 3
	}
	return c
}

// source builds one cell's diurnal arrival stream. Called once per run —
// sources are single-pass — with identical output for identical (c, seed).
func (c StreamChaosConfig) source(seed int64) workload.Source {
	return workload.NewDiurnal(workload.DiurnalConfig{
		N:          c.Jobs,
		Seed:       seed,
		Day:        c.Horizon,
		Horizon:    c.Horizon,
		BurstCount: 2,
		Tenants:    c.Tenants,
	})
}

// StreamChaosCell runs one (seed, profile, policy) faulted diurnal cell
// twice — retained under the invariant checker, then streaming — and
// returns the checker's violations plus any divergence between the two
// runs' aggregates. Nil means the cell is clean and the modes agree.
func StreamChaosCell(c StreamChaosConfig, seed int64, prof faults.Profile, policy string) []string {
	c = c.withDefaults()
	run := func(stream bool) (Result, []string) {
		h := &faults.Harness{Profile: prof, Seed: seed, Check: !stream}
		res := Run(RunConfig{
			Policy: policy,
			Nodes:  c.Nodes,
			Source: c.source(seed),
			Seed:   seed,
			Condor: condor.Config{MaxRetries: c.Retries},
			Chaos:  h,
			Stream: stream,
		})
		return res, h.Finish()
	}
	retained, violations := run(false)
	streamed, _ := run(true)

	if streamed.Makespan != retained.Makespan {
		violations = append(violations, fmt.Sprintf(
			"diff: streaming makespan %v != retained %v", streamed.Makespan, retained.Makespan))
	}
	if streamed.Utilization != retained.Utilization {
		violations = append(violations, fmt.Sprintf(
			"diff: streaming utilization %v != retained %v", streamed.Utilization, retained.Utilization))
	}
	if streamed.Summary != retained.Summary {
		violations = append(violations, fmt.Sprintf(
			"diff: streaming summary %+v != retained %+v", streamed.Summary, retained.Summary))
	}
	if streamed.Stream != retained.Stream {
		violations = append(violations, fmt.Sprintf(
			"diff: streaming aggregates %+v != retained %+v", streamed.Stream, retained.Stream))
	}
	return violations
}

// StreamChaosSwarm sweeps the seed × profile × policy grid through
// StreamChaosCell and returns every failure, panics included, mirroring
// ChaosSwarm's reporting shape.
func StreamChaosSwarm(c StreamChaosConfig) []ChaosFailure {
	c = c.withDefaults()
	logf := c.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var failures []ChaosFailure
	runs := 0
	for i := 0; i < c.Seeds; i++ {
		seed := c.Seed0 + int64(i)
		for _, prof := range c.Profiles {
			for _, policy := range c.Policies {
				runs++
				violations, panicMsg := streamChaosCellSafe(c, seed, prof, policy)
				if len(violations) > 0 || panicMsg != "" {
					f := ChaosFailure{Seed: seed, Profile: prof.Name, Policy: policy,
						Violations: violations, Panic: panicMsg}
					failures = append(failures, f)
					logf("%s", f)
				}
			}
		}
	}
	logf("stream-chaos: done — %d runs, %d failures", runs, len(failures))
	return failures
}

func streamChaosCellSafe(c StreamChaosConfig, seed int64, prof faults.Profile, policy string) (violations []string, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprint(r)
		}
	}()
	return StreamChaosCell(c, seed, prof, policy), ""
}
