package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/core"
	"phishare/internal/obs"
	"phishare/internal/sim"
)

// wireObservability attaches one Observer to every layer of a freshly built
// stack and registers the per-device sampler probes. Called by Run before
// submission, so every event of the run is captured.
//
// The wiring is read-only with respect to simulation state: SetObserver
// resolves instrument handles, and the sampler's probes only read snapshots.
// The sampler's tick events share the engine's sequence counter with the
// simulation's own events, but (time, seq) is a total order and seq is
// monotonic in scheduling order, so the relative order of every
// pre-existing event pair — and therefore every simulated outcome — is
// unchanged (TestObservabilityPreservesOutcomes asserts this end to end).
func wireObservability(o *obs.Observer, eng *sim.Engine, pool *condor.Pool, pol condor.Policy, clu *cluster.Cluster) {
	pool.SetObserver(o)
	if s, ok := pol.(*core.Scheduler); ok {
		s.SetObserver(o)
	}
	for _, u := range clu.Units {
		u.Device.SetObserver(o)
		if u.Cosmic != nil {
			u.Cosmic.SetObserver(o)
		}
	}

	smp := o.BindSampler(eng)
	smp.Probe("condor_pending_jobs", func() float64 {
		return float64(len(pool.Pending()))
	})
	smp.Probe("condor_in_flight_jobs", func() float64 {
		return float64(pool.InFlight())
	})
	for _, u := range clu.Units {
		dev := u.Device
		id := dev.ID
		smp.Probe(obs.SeriesName("phi_busy_cores", "device", id), func() float64 {
			return float64(dev.Snapshot().BusyCores)
		})
		smp.Probe(obs.SeriesName("phi_running_threads", "device", id), func() float64 {
			return float64(dev.RunningThreads())
		})
		smp.Probe(obs.SeriesName("phi_committed_mb", "device", id), func() float64 {
			return float64(dev.CommittedMemory())
		})
		smp.Probe(obs.SeriesName("phi_warm_threads", "device", id), func() float64 {
			return float64(dev.Snapshot().WarmThreads)
		})
		smp.Probe(obs.SeriesName("phi_speed_factor", "device", id), func() float64 {
			return dev.Speed()
		})
		if cm := u.Cosmic; cm != nil {
			smp.Probe(obs.SeriesName("cosmic_offload_queue_depth", "device", id), func() float64 {
				return float64(cm.QueueLen())
			})
			smp.Probe(obs.SeriesName("cosmic_admit_queue_depth", "device", id), func() float64 {
				return float64(cm.AdmitQueueLen())
			})
		}
	}
	smp.Start()
}

// DumpObserved runs the Table II configuration once per policy with full
// instrumentation and writes each run's artifacts into dir:
// <policy>.prom (metrics snapshot), <policy>.events.jsonl (trace stream),
// <policy>.series.csv (sampled time series), <policy>.html (dashboard).
// Returns the per-policy Results in Policies() order.
func DumpObserved(o Options, dir string) ([]Result, error) {
	o = o.Defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	jobs := o.realJobSet()
	var results []Result
	for _, p := range Policies() {
		ob := obs.New()
		res := Run(RunConfig{Policy: p, Nodes: o.Nodes, Jobs: jobs, Seed: o.Seed, Obs: ob, Condor: o.condorCfg()})
		results = append(results, res)
		title := fmt.Sprintf("%s: %d jobs on %d nodes, seed %d", p, len(jobs), o.Nodes, o.Seed)
		for _, art := range []struct {
			suffix string
			write  func(io.Writer) error
		}{
			{".prom", ob.WriteMetrics},
			{".events.jsonl", ob.WriteEvents},
			{".series.csv", ob.WriteSeriesCSV},
			{".html", func(w io.Writer) error { return ob.WriteDashboard(w, title) }},
		} {
			path := filepath.Join(dir, p+art.suffix)
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			if err := art.write(f); err != nil {
				f.Close()
				return nil, fmt.Errorf("write %s: %w", path, err)
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
		}
	}
	return results, nil
}
