// Package rng provides the deterministic random distributions used by the
// workload generators and the MCC random-packing baseline.
//
// Every experiment in the paper is a controlled run over a fixed job set; to
// make each table and figure exactly reproducible, all randomness flows
// through a Source seeded from the experiment configuration. The package
// wraps math/rand (the v1 API, which has a stable algorithm across Go
// releases) and adds the truncated/skewed normal draws used to build the
// Fig. 7 resource distributions.
package rng

import (
	"fmt"
	"math"
	"math/rand"
)

// Source is a deterministic stream of random values.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed. Equal seeds yield equal streams.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child stream identified by name. Child streams
// let one experiment seed produce decoupled randomness for, e.g., workload
// generation and scheduler tie-breaking, so adding draws to one does not
// perturb the other.
func (s *Source) Fork(name string) *Source {
	h := int64(14695981039346656037 & 0x7fffffffffffffff) // FNV offset basis, masked positive
	for i := 0; i < len(name); i++ {
		h ^= int64(name[i])
		h *= 1099511628211 // FNV prime
		h &= 0x7fffffffffffffff
	}
	return New(h ^ s.r.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// UniformInt returns a uniform integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (s *Source) UniformInt(lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("rng: UniformInt range [%d, %d] is empty", lo, hi))
	}
	return lo + s.r.Intn(hi-lo+1)
}

// Normal returns a normal draw with the given mean and standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// TruncNormal returns a normal draw with the given mean and standard
// deviation, truncated by resampling to [lo, hi]. It panics if hi < lo.
// Resampling (rather than clamping) keeps the interior shape of the
// distribution intact, which matters for the Fig. 7 skew experiments:
// clamping would pile probability mass onto the endpoints and exaggerate
// the number of maximal-resource jobs.
func (s *Source) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("rng: TruncNormal range [%g, %g] is empty", lo, hi))
	}
	if stddev <= 0 {
		return math.Min(hi, math.Max(lo, mean))
	}
	for i := 0; i < 1024; i++ {
		v := s.Normal(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	// The acceptance region is astronomically unlikely to be missed 1024
	// times unless mean is far outside [lo, hi]; fall back to clamping.
	return math.Min(hi, math.Max(lo, mean))
}

// Exp returns an exponential draw with the given mean. Used for jitter on
// job phase durations.
func (s *Source) Exp(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle permutes a slice in place using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Pick returns a uniformly random element index weighted by weights.
// Weights must be non-negative with a positive sum; it panics otherwise.
func (s *Source) Pick(weights []float64) int {
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("rng: Pick weight[%d] = %g is invalid", i, w))
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Pick weights sum to zero")
	}
	x := s.Uniform(0, total)
	for i, w := range weights {
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1 // floating-point slack lands on the last bucket
}
