package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds matched %d/100 draws", same)
	}
}

func TestForkIndependence(t *testing.T) {
	// Forks with different names from identically-seeded parents must differ;
	// forks with the same name must agree.
	p1, p2 := New(7), New(7)
	a := p1.Fork("workload")
	b := p2.Fork("workload")
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-name forks diverged at draw %d", i)
		}
	}
	p3, p4 := New(7), New(7)
	c := p3.Fork("workload")
	d := p4.Fork("scheduler")
	same := 0
	for i := 0; i < 100; i++ {
		if c.Float64() == d.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different-name forks matched %d/100 draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestUniformIntRange(t *testing.T) {
	s := New(4)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.UniformInt(3, 6)
		if v < 3 || v > 6 {
			t.Fatalf("UniformInt(3,6) = %d out of range", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 6; v++ {
		if !seen[v] {
			t.Errorf("UniformInt never produced %d in 1000 draws", v)
		}
	}
}

func TestUniformIntSingleton(t *testing.T) {
	s := New(5)
	if v := s.UniformInt(9, 9); v != 9 {
		t.Errorf("UniformInt(9,9) = %d, want 9", v)
	}
}

func TestUniformIntPanicsOnEmptyRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UniformInt(5,4) did not panic")
		}
	}()
	New(1).UniformInt(5, 4)
}

func TestTruncNormalBounds(t *testing.T) {
	s := New(6)
	for i := 0; i < 5000; i++ {
		v := s.TruncNormal(0.5, 0.2, 0, 1)
		if v < 0 || v > 1 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestTruncNormalMean(t *testing.T) {
	s := New(7)
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		sum += s.TruncNormal(0.5, 0.15, 0, 1)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("TruncNormal mean = %v, want ~0.5", mean)
	}
}

func TestTruncNormalSkewShiftsMass(t *testing.T) {
	// The low-skew distribution (mean shifted one stddev down) must put
	// more mass in the lower half than the symmetric one.
	s := New(8)
	lowBelow, normBelow := 0, 0
	n := 10000
	for i := 0; i < n; i++ {
		if s.TruncNormal(0.35, 0.15, 0, 1) < 0.5 {
			lowBelow++
		}
		if s.TruncNormal(0.5, 0.15, 0, 1) < 0.5 {
			normBelow++
		}
	}
	if lowBelow <= normBelow {
		t.Errorf("low-skew mass below 0.5 (%d) not greater than normal (%d)", lowBelow, normBelow)
	}
}

func TestTruncNormalDegenerateStddev(t *testing.T) {
	s := New(9)
	if v := s.TruncNormal(0.7, 0, 0, 1); v != 0.7 {
		t.Errorf("TruncNormal with stddev 0 = %v, want 0.7", v)
	}
	if v := s.TruncNormal(5, 0, 0, 1); v != 1 {
		t.Errorf("TruncNormal clamps out-of-range mean: got %v, want 1", v)
	}
}

func TestTruncNormalFarMeanClamps(t *testing.T) {
	s := New(10)
	v := s.TruncNormal(100, 0.001, 0, 1)
	if v != 1 {
		t.Errorf("TruncNormal with unreachable mean = %v, want clamp to 1", v)
	}
}

func TestExpPositiveWithMean(t *testing.T) {
	s := New(11)
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		v := s.Exp(2.0)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-2.0) > 0.1 {
		t.Errorf("Exp mean = %v, want ~2.0", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm(20) invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestPickRespectsWeights(t *testing.T) {
	s := New(13)
	counts := [3]int{}
	n := 30000
	for i := 0; i < n; i++ {
		counts[s.Pick([]float64{1, 2, 1})]++
	}
	// Expect roughly 25% / 50% / 25%.
	if f := float64(counts[1]) / float64(n); math.Abs(f-0.5) > 0.02 {
		t.Errorf("Pick middle weight frequency = %v, want ~0.5", f)
	}
}

func TestPickZeroWeightNeverChosen(t *testing.T) {
	s := New(14)
	for i := 0; i < 1000; i++ {
		if s.Pick([]float64{1, 0, 1}) == 1 {
			t.Fatal("Pick chose zero-weight bucket")
		}
	}
}

func TestPickPanicsOnAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pick with zero weights did not panic")
		}
	}()
	New(1).Pick([]float64{0, 0})
}

func TestPickPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pick with negative weight did not panic")
		}
	}()
	New(1).Pick([]float64{1, -1})
}

func TestShuffle(t *testing.T) {
	s := New(15)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 10)
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("Shuffle lost element %d", i)
		}
	}
}
