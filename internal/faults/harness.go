package faults

import (
	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/obs"
	"phishare/internal/sim"
)

// Harness bundles the fault layer's wiring for one run: an optional
// Injector (Profile) and an optional invariant Checker (Check). The zero
// Harness wires nothing; experiments.RunConfig.Chaos carries one into a run.
type Harness struct {
	// Profile selects the injected faults; the zero profile injects none.
	Profile Profile
	// Seed drives the injector's random draws. Keep it equal to the run
	// seed so a failing (seed, profile, policy) triple is self-contained.
	Seed int64
	// Check installs the invariant checker on the engine's AfterStep hook.
	Check bool
	// Obs, if non-nil, receives fault trace events (layer "faults").
	// experiments.Run copies its RunConfig.Obs here.
	Obs *obs.Observer

	inj *Injector
	chk *Checker
}

// Wire installs the harness on a freshly assembled stack, before job
// submission. With Check set it attaches the checker to eng.AfterStep,
// chains the pool's OnTerminal for exactly-once accounting, and ensures an
// event log exists for the terminal reconciliation checks. With an enabled
// Profile it builds and starts the Injector. All of the checker's additions
// are outcome-neutral; only the injected faults themselves perturb the run.
func (h *Harness) Wire(eng *sim.Engine, clu *cluster.Cluster, pool *condor.Pool) {
	if h.Check {
		h.chk = NewChecker(eng, clu, pool)
		eng.AfterStep = h.chk.Check
		if pool.Log == nil {
			pool.Log = condor.NewEventLog()
		}
		prev := pool.OnTerminal
		pool.OnTerminal = func(q *condor.QueuedJob) {
			h.chk.NoteTerminal(q)
			if prev != nil {
				prev(q)
			}
		}
	}
	if h.Profile.Enabled() {
		h.inj = NewInjector(eng, clu, pool, h.Profile, h.Seed, h.Obs)
		h.inj.Start()
	}
}

// Finish runs the terminal invariant checks and returns every recorded
// violation (nil when clean, or when the harness ran without Check).
func (h *Harness) Finish() []string {
	if h.chk == nil {
		return nil
	}
	return h.chk.Finish()
}

// Violations returns what the checker has recorded so far.
func (h *Harness) Violations() []string {
	if h.chk == nil {
		return nil
	}
	return h.chk.Violations()
}

// InjectorStats returns the injection counters (zero without a profile).
func (h *Harness) InjectorStats() Stats {
	if h.inj == nil {
		return Stats{}
	}
	return h.inj.Stats()
}
