package faults

import (
	"strings"
	"testing"

	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/job"
	"phishare/internal/rng"
	"phishare/internal/scheduler"
	"phishare/internal/sim"
	"phishare/internal/units"
)

// mkJob builds an honest job: one host second, then one long offload.
func mkJob(id int, mem units.MB, threads units.Threads, offload units.Tick) *job.Job {
	return &job.Job{
		ID: id, Name: "j", Workload: "test",
		Mem: mem, Threads: threads, ActualPeakMem: units.MB(float64(mem) * 0.9),
		Phases: []job.Phase{
			{Kind: job.HostPhase, Duration: 1 * units.Second},
			{Kind: job.OffloadPhase, Duration: offload, Threads: threads},
		},
	}
}

type rig struct {
	eng  *sim.Engine
	clu  *cluster.Cluster
	pool *condor.Pool
}

func newRig(nodes, retries int) *rig {
	eng := sim.New()
	eng.MaxSteps = 10_000_000
	clu := cluster.New(eng, cluster.Config{Nodes: nodes, UseCosmic: true, Seed: 1})
	pool := condor.NewPool(eng, clu, scheduler.NewRandomPack(rng.New(5)),
		condor.Config{MaxRetries: retries})
	return &rig{eng: eng, clu: clu, pool: pool}
}

// TestScriptedDeviceFailureLifecycle injects an exactly-timed device failure
// under a running job and asserts the complete crash/resubmit event
// sequence: Submit → Match → Execute → Crash → Resubmit (repeated while the
// device is down) → Match → Execute → Terminate, with the invariant checker
// clean throughout.
func TestScriptedDeviceFailureLifecycle(t *testing.T) {
	r := newRig(1, 5)
	h := &Harness{
		Profile: Profile{
			Name: "scripted",
			Script: []DeviceFault{
				{Slot: "slot1@node0", At: 5 * units.Second, Repair: 10 * units.Second},
			},
		},
		Seed:  1,
		Check: true,
	}
	h.Wire(r.eng, r.clu, r.pool)
	r.pool.Submit([]*job.Job{mkJob(0, 500, 60, 20*units.Second)})
	r.eng.Run()

	if !r.pool.Done() {
		t.Fatal("pool not done after engine drained")
	}
	if v := h.Finish(); len(v) != 0 {
		t.Fatalf("invariant violations under scripted failure:\n%v", v)
	}
	q := r.pool.Jobs()[0]
	if q.State != condor.Completed {
		t.Fatalf("job state %v, want completed after device repair", q.State)
	}
	if q.Crashes == 0 {
		t.Fatal("job never crashed: the scripted failure missed it")
	}
	if s := h.InjectorStats(); s.DeviceFailures != 1 || s.Repairs != 1 || s.Evictions != 1 {
		t.Errorf("injector stats %+v, want 1 failure, 1 repair, 1 eviction", s)
	}

	// The full lifecycle: the first run is cut down by the failure, every
	// retry while the device is down dies on arrival, the run after the
	// repair completes.
	var kinds []condor.EventKind
	for _, e := range r.pool.Log.JobHistory(0) {
		kinds = append(kinds, e.Kind)
	}
	want := []condor.EventKind{condor.EventSubmit}
	for i := 0; i < q.Crashes; i++ {
		want = append(want, condor.EventMatch, condor.EventExecute,
			condor.EventCrash, condor.EventResubmit)
	}
	want = append(want, condor.EventMatch, condor.EventExecute, condor.EventTerminate)
	if len(kinds) != len(want) {
		t.Fatalf("event sequence %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (full: %v)", i, kinds[i], want[i], kinds)
		}
	}
	// The first crash lands exactly at the scripted failure time.
	for _, e := range r.pool.Log.JobHistory(0) {
		if e.Kind == condor.EventCrash {
			if e.At != 5*units.Second {
				t.Errorf("first crash at %v, want %v", e.At, 5*units.Second)
			}
			break
		}
	}
}

// TestMTBFInjectionRunsClean drives a stochastic device-failure process
// over a small workload and asserts faults actually fired, repairs landed,
// and every invariant held to the end.
func TestMTBFInjectionRunsClean(t *testing.T) {
	r := newRig(2, 8)
	h := &Harness{
		Profile: Profile{
			Name:         "aggressive",
			DeviceMTBF:   8 * units.Second,
			DeviceRepair: 3 * units.Second,
		},
		Seed:  7,
		Check: true,
	}
	h.Wire(r.eng, r.clu, r.pool)
	var jobs []*job.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, mkJob(i, 500, 60, 10*units.Second))
	}
	r.pool.Submit(jobs)
	r.eng.Run()

	if !r.pool.Done() {
		t.Fatal("pool not done after engine drained")
	}
	if v := h.Finish(); len(v) != 0 {
		t.Fatalf("invariant violations under MTBF injection:\n%v", v)
	}
	s := h.InjectorStats()
	if s.DeviceFailures == 0 {
		t.Error("no device failures injected despite an 8s MTBF")
	}
	if s.Repairs != s.DeviceFailures {
		t.Errorf("repairs %d != failures %d (a repair chain was dropped)",
			s.Repairs, s.DeviceFailures)
	}
}

// TestCheckerCatchesCorruption corrupts machine bookkeeping mid-run and
// asserts the per-event checker flags it — proof the swarm's green runs
// mean something.
func TestCheckerCatchesCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(p *condor.Pool)
	}{
		{"negative free memory", func(p *condor.Pool) {
			p.Machines()[0].FreeMem = -5
		}},
		{"negative resident threads", func(p *condor.Pool) {
			p.Machines()[0].ResidentThreads = -1
		}},
		{"phantom resident job", func(p *condor.Pool) {
			m := p.Machines()[0]
			m.Resident = append(m.Resident, &condor.QueuedJob{Job: mkJob(99, 100, 10, units.Second)})
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(1, 0)
			h := &Harness{Check: true}
			h.Wire(r.eng, r.clu, r.pool)
			r.eng.After(2500, func() { tc.corrupt(r.pool) })
			r.pool.Submit([]*job.Job{mkJob(0, 500, 60, 5*units.Second)})
			r.eng.Run()
			if len(h.Violations()) == 0 {
				t.Error("checker missed the corruption")
			}
		})
	}
}

// TestProfilePresets pins the built-in profiles' enablement and lookup.
func TestProfilePresets(t *testing.T) {
	if (Profile{}).Enabled() {
		t.Error("zero profile reports enabled")
	}
	for _, name := range []string{"light", "heavy"} {
		p, ok := ProfileByName(name)
		if !ok || !p.Enabled() || p.Name != name {
			t.Errorf("ProfileByName(%q) = %+v, %v", name, p, ok)
		}
	}
	if p, ok := ProfileByName("none"); !ok || p.Enabled() {
		t.Errorf("ProfileByName(none) = %+v, %v, want disabled profile", p, ok)
	}
	if _, ok := ProfileByName("bogus"); ok {
		t.Error("ProfileByName accepted an unknown name")
	}
	if len(Profiles()) < 2 {
		t.Errorf("Profiles() = %d entries, want at least light and heavy", len(Profiles()))
	}
}

// TestZeroHarnessWiresNothing: a harness with no profile and no checker
// must leave the stack untouched.
func TestZeroHarnessWiresNothing(t *testing.T) {
	r := newRig(1, 0)
	h := &Harness{}
	h.Wire(r.eng, r.clu, r.pool)
	if r.eng.AfterStep != nil {
		t.Error("zero harness installed an AfterStep hook")
	}
	if r.pool.NegFaults != nil {
		t.Error("zero harness installed a negotiation fault hook")
	}
	if h.Finish() != nil || h.Violations() != nil {
		t.Error("zero harness reported violations")
	}
	if h.InjectorStats() != (Stats{}) {
		t.Error("zero harness counted injections")
	}
}

// TestUsageViolationOrderIsDeterministic is the regression test for the
// philint:mapiter true positive in Checker.checkUsage. Violations land in
// the capped c.violations slice, so the iteration order over the user set
// is observable: with the old `for u := range users` map loop, which
// user's fair-share mismatch was recorded first (and which fell past the
// cap) flipped run to run. The fix iterates the users in sorted order.
// Each repetition rebuilds the checker; twelve repetitions would catch
// the old map-order behaviour with probability 1 - 2^-12.
func TestUsageViolationOrderIsDeterministic(t *testing.T) {
	// A completed two-user run...
	r := newRig(2, 0)
	r.pool.Log = condor.NewEventLog()
	r.pool.SubmitAs("walt", []*job.Job{mkJob(0, 500, 60, 2*units.Second)}, 0)
	r.pool.SubmitAs("ada", []*job.Job{mkJob(1, 500, 60, 2*units.Second)}, 0)
	r.eng.Run()
	for _, u := range []string{"walt", "ada"} {
		if r.pool.Usage(u) == 0 {
			t.Fatalf("user %q accrued no usage; rig did not run", u)
		}
	}

	// ...replayed against a doctored log that stretches every execution
	// interval, so the reconstructed usage disagrees with the pool's
	// accumulator for BOTH users at once.
	doctored := condor.NewEventLog()
	for _, e := range r.pool.Log.Events() {
		if e.Kind == condor.EventTerminate || e.Kind == condor.EventCrash {
			e.At += units.Second
		}
		doctored.Append(e)
	}
	r.pool.Log = doctored

	for i := 0; i < 12; i++ {
		c := NewChecker(r.eng, r.clu, r.pool)
		c.checkUsage()
		v := c.Violations()
		if len(v) != 2 {
			t.Fatalf("iteration %d: %d violations, want 2: %q", i, len(v), v)
		}
		if !strings.Contains(v[0], `user "ada"`) || !strings.Contains(v[1], `user "walt"`) {
			t.Fatalf("iteration %d: violations out of sorted user order: %q", i, v)
		}
	}
}
