// Package faults is the deterministic fault-injection and invariant layer.
//
// The paper's whole argument rests on failure behaviour — §II-C's "two jobs
// fit now but crash later" OOM hazard and the crash/resubmit churn of the MC
// baseline — yet a simulator's failure paths are exactly the code its happy
// paths never exercise. This package attacks that from both sides:
//
//   - An Injector perturbs a running simulation with seeded, reproducible
//     faults: whole-device failures with repair delays, mid-run node losses
//     that evict every resident job back into the Condor queue, transient
//     offload faults that kill one running process, and negotiator
//     jitter/restart. Every draw flows through rng.Source forks, so a
//     failing (seed, profile, policy) triple replays bit-for-bit.
//
//   - A Checker (invariants.go) audits conservation laws after every
//     simulation event and at termination: resources never go negative,
//     bookkeeping sums match reality, no job is lost or duplicated, every
//     terminal callback fires exactly once, and fair-share usage equals the
//     sum of actual execution intervals reconstructed from the event log.
//
// Both default off. A Harness (harness.go) with a zero Profile and
// Check=false wires nothing; with Check=true but no faults, the checker
// observes without perturbing — runs stay bit-identical to bare runs
// (TestChaosDisabledPreservesOutcomes). cmd/phichaos sweeps seeds ×
// policies × profiles under the checker as a simulator fuzzer.
package faults

import (
	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/obs"
	"phishare/internal/phi"
	"phishare/internal/rng"
	"phishare/internal/sim"
	"phishare/internal/units"
)

// DeviceFault is one scripted device failure, for tests that need an exact
// failure time rather than an MTBF process. Repair > 0 restores the device
// that long after the failure; Repair == 0 leaves it down for good (jobs
// matched onto it crash until their retry budget runs out — the machine
// stays advertised, as a wedged-but-present startd would).
type DeviceFault struct {
	Slot   string // cluster.DeviceUnit.SlotName, e.g. "slot1@node0"
	At     units.Tick
	Repair units.Tick
}

// Profile selects which faults an Injector generates and at what rates.
// The zero Profile injects nothing.
type Profile struct {
	Name string

	// DeviceMTBF is the per-device mean time between whole-device failures
	// (card resets); 0 disables them. Each failure kills every resident
	// process with KillDeviceFailure and rejects attaches until the repair,
	// DeviceRepair later.
	DeviceMTBF   units.Tick
	DeviceRepair units.Tick

	// NodeMTBF is the per-node mean time between node losses; 0 disables
	// them. A node loss fails every device on the node and takes its
	// machines out of matchmaking (Machine.Offline) until the repair,
	// NodeRepair later.
	NodeMTBF   units.Tick
	NodeRepair units.Tick

	// OffloadFaultMTBF is the per-device mean time between transient offload
	// faults; 0 disables them. Each fault kills one uniformly chosen process
	// with a running offload (COI transport error, kernel fault).
	OffloadFaultMTBF units.Tick

	// NegotiationJitter, when > 0, adds an Exp(NegotiationJitter) delay to
	// every negotiation trigger (collector update propagation noise).
	NegotiationJitter units.Tick
	// NegotiationRestartProb is the probability that a negotiation cycle
	// aborts at its start and reruns NegotiationRestartDelay later (a
	// negotiator crash/restart). Must be < 1.
	NegotiationRestartProb  float64
	NegotiationRestartDelay units.Tick

	// Horizon, when > 0, stops fault generation after this time; repairs
	// for already-injected faults still land. 0 means faults continue until
	// every job is terminal.
	Horizon units.Tick

	// Script adds exactly-timed device failures on top of (or instead of)
	// the stochastic processes above.
	Script []DeviceFault
}

// Enabled reports whether the profile injects anything at all.
func (p Profile) Enabled() bool {
	return p.DeviceMTBF > 0 || p.NodeMTBF > 0 || p.OffloadFaultMTBF > 0 ||
		p.NegotiationJitter > 0 || p.NegotiationRestartProb > 0 || len(p.Script) > 0
}

// perturbsNegotiation reports whether the pool's NegFaults hook is needed.
func (p Profile) perturbsNegotiation() bool {
	return p.NegotiationJitter > 0 || p.NegotiationRestartProb > 0
}

// withDefaults fills repair delays so no stochastic fault is permanent.
func (p Profile) withDefaults() Profile {
	if p.DeviceMTBF > 0 && p.DeviceRepair == 0 {
		p.DeviceRepair = 30 * units.Second
	}
	if p.NodeMTBF > 0 && p.NodeRepair == 0 {
		p.NodeRepair = 60 * units.Second
	}
	if p.NegotiationRestartProb > 0 && p.NegotiationRestartDelay == 0 {
		p.NegotiationRestartDelay = 5 * units.Second
	}
	return p
}

// LightProfile is occasional single-device trouble: device failures every
// ~10 min of simulated time per device, quick repairs, mild trigger jitter.
func LightProfile() Profile {
	return Profile{
		Name:              "light",
		DeviceMTBF:        10 * units.Minute,
		DeviceRepair:      20 * units.Second,
		NegotiationJitter: 500 * units.Millisecond,
	}
}

// HeavyProfile piles everything on: frequent device failures, node losses,
// transient offload faults, and a flaky negotiator.
func HeavyProfile() Profile {
	return Profile{
		Name:                    "heavy",
		DeviceMTBF:              3 * units.Minute,
		DeviceRepair:            15 * units.Second,
		NodeMTBF:                8 * units.Minute,
		NodeRepair:              45 * units.Second,
		OffloadFaultMTBF:        4 * units.Minute,
		NegotiationJitter:       1 * units.Second,
		NegotiationRestartProb:  0.15,
		NegotiationRestartDelay: 3 * units.Second,
	}
}

// Profiles returns the built-in profiles by name, in sweep order.
func Profiles() []Profile { return []Profile{LightProfile(), HeavyProfile()} }

// ProfileByName resolves a built-in profile. "none" and "" yield the zero
// profile; unknown names return ok=false.
func ProfileByName(name string) (Profile, bool) {
	switch name {
	case "", "none":
		return Profile{Name: "none"}, true
	case "light":
		return LightProfile(), true
	case "heavy":
		return HeavyProfile(), true
	}
	return Profile{}, false
}

// Stats counts injected faults.
type Stats struct {
	DeviceFailures   int
	NodeLosses       int
	Repairs          int
	OffloadKills     int
	Evictions        int // processes killed by device failures and node losses
	JitteredTriggers int
	Restarts         int
}

// Injector drives one run's fault processes. Create via NewInjector, then
// Start before job submission.
type Injector struct {
	prof Profile
	eng  *sim.Engine
	clu  *cluster.Cluster
	pool *condor.Pool
	o    *obs.View

	root    *rng.Source
	negRand *rng.Source
	stats   Stats

	// machineOf maps each device unit to its pool machine, for node loss.
	machineOf map[*cluster.DeviceUnit]*condor.Machine
}

// NewInjector builds an injector over a freshly assembled stack. seed is
// decoupled from the run's own randomness by forking a dedicated stream, so
// enabling faults never perturbs workload or policy draws directly (only
// through the faults themselves). o may be nil.
func NewInjector(eng *sim.Engine, clu *cluster.Cluster, pool *condor.Pool, prof Profile, seed int64, o *obs.Observer) *Injector {
	root := rng.New(seed).Fork("faults")
	inj := &Injector{
		prof:      prof.withDefaults(),
		eng:       eng,
		clu:       clu,
		pool:      pool,
		o:         o.View(nil),
		root:      root,
		negRand:   root.Fork("negotiation"),
		machineOf: map[*cluster.DeviceUnit]*condor.Machine{},
	}
	for _, m := range pool.Machines() {
		inj.machineOf[m.Unit] = m
	}
	return inj
}

// Stats returns the injection counters.
func (inj *Injector) Stats() Stats { return inj.stats }

// Start schedules every fault process the profile enables. Call once,
// before eng.Run; the negotiation hook is installed here too.
func (inj *Injector) Start() {
	if inj.prof.perturbsNegotiation() {
		inj.pool.NegFaults = inj
	}
	for _, u := range inj.clu.Units {
		if inj.prof.DeviceMTBF > 0 {
			inj.scheduleDeviceFault(u, inj.root.Fork("devfail-"+u.SlotName))
		}
		if inj.prof.OffloadFaultMTBF > 0 {
			inj.scheduleOffloadFault(u, inj.root.Fork("offfault-"+u.SlotName))
		}
	}
	if inj.prof.NodeMTBF > 0 {
		for _, n := range inj.clu.Nodes {
			inj.scheduleNodeLoss(n, inj.root.Fork("nodeloss-"+n.Name))
		}
	}
	for _, f := range inj.prof.Script {
		inj.scheduleScripted(f)
	}
}

// expired reports whether fault generation should stop: every job terminal,
// or past the profile horizon.
func (inj *Injector) expired() bool {
	if inj.pool.Done() {
		return true
	}
	return inj.prof.Horizon > 0 && inj.eng.Now() >= inj.prof.Horizon
}

// next draws the interval to the next event of an MTBF process, always at
// least one tick so a tiny mean cannot wedge the engine at one instant.
func next(r *rng.Source, mtbf units.Tick) units.Tick {
	d := units.Tick(r.Exp(float64(mtbf)))
	if d < 1 {
		d = 1
	}
	return d
}

// scheduleDeviceFault runs one device's failure/repair renewal process.
func (inj *Injector) scheduleDeviceFault(u *cluster.DeviceUnit, r *rng.Source) {
	inj.eng.After(next(r, inj.prof.DeviceMTBF), func() {
		if inj.expired() {
			return
		}
		if u.Device.Down() {
			// Already down (overlapping node loss): skip this renewal.
			inj.scheduleDeviceFault(u, r)
			return
		}
		inj.failDevice(u, "device_fail")
		inj.stats.DeviceFailures++
		inj.eng.After(inj.prof.DeviceRepair, func() {
			inj.repairDevice(u, "device_repair")
			inj.scheduleDeviceFault(u, r)
		})
	})
}

// scheduleNodeLoss runs one node's loss/repair renewal process: all devices
// fail and all of the node's machines leave matchmaking until the repair.
func (inj *Injector) scheduleNodeLoss(n *cluster.Node, r *rng.Source) {
	inj.eng.After(next(r, inj.prof.NodeMTBF), func() {
		if inj.expired() {
			return
		}
		inj.stats.NodeLosses++
		if inj.o != nil {
			inj.o.Emit(inj.eng.Now(), obs.LayerFaults, "node_loss", obs.F("node", n.Name))
		}
		for _, u := range n.Devices {
			if m := inj.machineOf[u]; m != nil {
				inj.pool.SetOffline(m, true)
			}
			if !u.Device.Down() {
				inj.failDevice(u, "device_fail")
			}
		}
		inj.eng.After(inj.prof.NodeRepair, func() {
			if inj.o != nil {
				inj.o.Emit(inj.eng.Now(), obs.LayerFaults, "node_repair", obs.F("node", n.Name))
			}
			for _, u := range n.Devices {
				if m := inj.machineOf[u]; m != nil {
					inj.pool.SetOffline(m, false)
				}
				inj.repairDevice(u, "device_repair")
			}
			inj.pool.PokeNegotiation()
			inj.scheduleNodeLoss(n, r)
		})
	})
}

// scheduleOffloadFault runs one device's transient-fault renewal process:
// each event kills one uniformly chosen process with a running offload.
func (inj *Injector) scheduleOffloadFault(u *cluster.DeviceUnit, r *rng.Source) {
	inj.eng.After(next(r, inj.prof.OffloadFaultMTBF), func() {
		if inj.expired() {
			return
		}
		if victims := u.Device.RunningProcs(); len(victims) > 0 {
			victim := victims[r.Intn(len(victims))]
			inj.stats.OffloadKills++
			if inj.o != nil {
				inj.o.Emit(inj.eng.Now(), obs.LayerFaults, "offload_fault",
					obs.F("device", u.SlotName), obs.F("job", victim.Job.ID))
			}
			u.Device.Kill(victim, phi.KillOffloadFault)
			if u.Cosmic != nil {
				u.Cosmic.Recover()
			}
		}
		inj.scheduleOffloadFault(u, r)
	})
}

// scheduleScripted injects one exactly-timed device failure.
func (inj *Injector) scheduleScripted(f DeviceFault) {
	u := inj.unitBySlot(f.Slot)
	inj.eng.At(f.At, func() {
		inj.failDevice(u, "device_fail")
		inj.stats.DeviceFailures++
		if f.Repair > 0 {
			inj.eng.After(f.Repair, func() {
				inj.repairDevice(u, "device_repair")
			})
		}
	})
}

func (inj *Injector) unitBySlot(slot string) *cluster.DeviceUnit {
	for _, u := range inj.clu.Units {
		if u.SlotName == slot {
			return u
		}
	}
	panic("faults: no device unit named " + slot)
}

func (inj *Injector) failDevice(u *cluster.DeviceUnit, kind string) {
	evicted := u.Fail(phi.KillDeviceFailure)
	inj.stats.Evictions += evicted
	if inj.o != nil {
		inj.o.Emit(inj.eng.Now(), obs.LayerFaults, kind,
			obs.F("device", u.SlotName), obs.F("evicted", evicted))
	}
}

func (inj *Injector) repairDevice(u *cluster.DeviceUnit, kind string) {
	u.Repair()
	inj.stats.Repairs++
	if inj.o != nil {
		inj.o.Emit(inj.eng.Now(), obs.LayerFaults, kind, obs.F("device", u.SlotName))
	}
	inj.pool.PokeNegotiation()
}

// TriggerDelay implements condor.NegotiationFaults: exponential jitter on
// every negotiation trigger.
func (inj *Injector) TriggerDelay() units.Tick {
	if inj.prof.NegotiationJitter <= 0 {
		return 0
	}
	inj.stats.JitteredTriggers++
	return units.Tick(inj.negRand.Exp(float64(inj.prof.NegotiationJitter)))
}

// CycleRestart implements condor.NegotiationFaults: with probability
// NegotiationRestartProb the cycle aborts and reruns after the restart
// delay. Independent draws, so a run cannot restart forever; once every job
// is terminal the fault stops firing so the engine can drain.
func (inj *Injector) CycleRestart() (units.Tick, bool) {
	if inj.prof.NegotiationRestartProb <= 0 || inj.pool.Done() {
		return 0, false
	}
	if inj.negRand.Float64() >= inj.prof.NegotiationRestartProb {
		return 0, false
	}
	inj.stats.Restarts++
	return inj.prof.NegotiationRestartDelay, true
}
