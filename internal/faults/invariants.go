package faults

import (
	"fmt"
	"sort"
	"strings"

	"phishare/internal/cluster"
	"phishare/internal/condor"
	"phishare/internal/sim"
	"phishare/internal/units"
)

// maxViolations caps how many violations one run records; a single broken
// invariant tends to fail on every subsequent event, and the first few
// messages carry all the diagnostic value.
const maxViolations = 20

// Checker audits the stack's conservation laws. Install its Check method as
// the engine's AfterStep hook so it runs at every event boundary, and call
// Finish once the engine drains for the terminal checks. The checker only
// reads component state (plus the lazy dead-process purge inside
// cosmic.DeclaredFree, which is outcome-neutral by construction), so a
// checked run's outcomes are bit-identical to an unchecked one.
type Checker struct {
	eng  *sim.Engine
	clu  *cluster.Cluster
	pool *condor.Pool

	violations []string
	total      int

	// memGuarded records whether the policy's machine-side Requirements
	// reference PhiFreeMemory. Only a memory-guarded negotiator (MC, MCCK)
	// promises FreeMem never goes negative; MCC's cluster layer is
	// deliberately memory-oblivious — its FreeMem is an unguarded ledger and
	// the memory law is enforced by COSMIC at the node (checkDevices).
	memGuarded bool

	// terminalCount verifies that OnTerminal — the "done" callback external
	// tooling depends on — fires exactly once per job. Keyed by job ID;
	// wired by Harness through the pool's OnTerminal chain.
	terminalCount map[int]int
}

// NewChecker builds a checker over an assembled stack. Wire Check into
// eng.AfterStep and NoteTerminal into the pool's OnTerminal chain.
//
// The checker's per-event sweeps (checkPool, Finish) reconcile against the
// pool's retained job queue, so it cannot audit a streaming pool — whose
// terminal jobs are gone by design. That combination is refused here, at
// wiring time, rather than silently passing vacuous checks over an empty
// queue. Streaming chaos runs instead diff their aggregates against a
// checked retained twin (experiments.StreamChaosCell).
func NewChecker(eng *sim.Engine, clu *cluster.Cluster, pool *condor.Pool) *Checker {
	if !pool.RetainsJobs() {
		panic("faults: invariant checker requires a job-retaining pool; streaming pools drop the queue it audits")
	}
	return &Checker{
		eng: eng, clu: clu, pool: pool,
		memGuarded:    strings.Contains(pool.Policy().MachineRequirements(), condor.AttrPhiFreeMemory),
		terminalCount: map[int]int{},
	}
}

// Violations returns the recorded violations (capped; Total gives the real
// count).
func (c *Checker) Violations() []string { return c.violations }

// Total is the number of violations detected, including ones dropped by the
// cap.
func (c *Checker) Total() int { return c.total }

func (c *Checker) fail(format string, args ...any) {
	c.total++
	if len(c.violations) < maxViolations {
		msg := fmt.Sprintf(format, args...)
		c.violations = append(c.violations, fmt.Sprintf("t=%v: %s", c.eng.Now(), msg))
	}
}

// NoteTerminal records one OnTerminal delivery for exactly-once accounting.
func (c *Checker) NoteTerminal(q *condor.QueuedJob) {
	c.terminalCount[q.Job.ID]++
}

// Check runs the per-event structural invariants. It is the engine
// AfterStep hook: cheap enough to run after every event (a few short loops
// over machines, jobs and resident processes).
func (c *Checker) Check() {
	c.checkMachines()
	c.checkPool()
	c.checkDevices()
}

// checkMachines verifies each machine's claim bookkeeping against the
// resident set it implies, and the pool's offline counter against a full
// scan (finishCycle trusts the counter; SetOffline is its only writer, so
// drift here means a bypass wrote Machine.Offline directly).
func (c *Checker) checkMachines() {
	offline := 0
	for _, m := range c.pool.Machines() {
		if m.Offline {
			offline++
		}
	}
	if got := c.pool.OfflineMachines(); got != offline {
		c.fail("pool: offline counter %d != %d machines marked offline", got, offline)
	}
	for _, m := range c.pool.Machines() {
		if c.memGuarded && m.FreeMem < 0 {
			var ids []int
			for _, q := range m.Resident {
				ids = append(ids, q.Job.ID)
			}
			c.fail("machine %s: FreeMem negative (%v) under a memory-guarded negotiator, residents %v",
				m.Name, m.FreeMem, ids)
		}
		if m.ResidentThreads < 0 {
			c.fail("machine %s: ResidentThreads negative (%v)", m.Name, m.ResidentThreads)
		}
		if len(m.Resident) > m.HostSlots {
			c.fail("machine %s: %d resident jobs exceed %d host slots",
				m.Name, len(m.Resident), m.HostSlots)
		}
		var mem units.MB
		var thr units.Threads
		for _, q := range m.Resident {
			mem += q.Job.Mem
			thr += q.Job.Threads
			if q.State != condor.Dispatched {
				c.fail("machine %s: resident job %d in state %v", m.Name, q.Job.ID, q.State)
			}
		}
		total := m.Unit.Device.Config().Memory
		if m.FreeMem != total-mem {
			c.fail("machine %s: FreeMem %v != memory %v - resident declared %v",
				m.Name, m.FreeMem, total, mem)
		}
		if m.ResidentThreads != thr {
			c.fail("machine %s: ResidentThreads %v != resident declared %v",
				m.Name, m.ResidentThreads, thr)
		}
	}
}

// checkPool verifies job-state conservation: no job lost, duplicated, or
// double-counted between the pending queue and the in-flight counter.
func (c *Checker) checkPool() {
	idle, dispatched := 0, 0
	for _, q := range c.pool.Jobs() {
		switch q.State {
		case condor.Idle:
			idle++
		case condor.Dispatched:
			dispatched++
		}
	}
	if inFlight := c.pool.InFlight(); inFlight != dispatched {
		c.fail("pool: inFlight %d != %d jobs in Dispatched state", inFlight, dispatched)
	}
	pending := c.pool.Pending()
	if len(pending) != idle {
		c.fail("pool: pending queue has %d jobs, %d jobs in Idle state", len(pending), idle)
	}
	seen := map[int]bool{}
	for _, q := range pending {
		if q.State != condor.Idle {
			c.fail("pool: pending job %d in state %v", q.Job.ID, q.State)
		}
		if seen[q.Job.ID] {
			c.fail("pool: job %d queued twice", q.Job.ID)
		}
		seen[q.Job.ID] = true
	}
}

// checkDevices verifies device- and COSMIC-level resource sanity.
func (c *Checker) checkDevices() {
	for _, u := range c.clu.Units {
		cfg := u.Device.Config()
		if cm := u.Device.CommittedMemory(); cm > cfg.Memory {
			c.fail("device %s: committed %v exceeds device memory %v (OOM killer slept)",
				u.SlotName, cm, cfg.Memory)
		}
		if u.Cosmic == nil {
			continue // raw MPSS oversubscribes threads by design
		}
		if rt := u.Device.RunningThreads(); rt > cfg.HWThreads() {
			c.fail("device %s: running threads %v exceed hardware threads %v under COSMIC",
				u.SlotName, rt, cfg.HWThreads())
		}
		if free := u.Cosmic.DeclaredFree(); free < 0 {
			c.fail("device %s: COSMIC declared-free memory negative (%v)", u.SlotName, free)
		}
	}
}

// Finish runs the terminal checks after the engine drains and returns every
// recorded violation. Event-log checks are skipped when no log is attached.
func (c *Checker) Finish() []string {
	for _, q := range c.pool.Jobs() {
		if q.State != condor.Completed && q.State != condor.Failed {
			c.fail("job %d never reached a terminal state (%v)", q.Job.ID, q.State)
		}
		if n := c.terminalCount[q.Job.ID]; n != 1 {
			c.fail("job %d: OnTerminal fired %d times, want exactly once", q.Job.ID, n)
		}
	}
	for _, m := range c.pool.Machines() {
		if len(m.Resident) != 0 {
			c.fail("machine %s: %d jobs still resident after drain", m.Name, len(m.Resident))
		}
	}
	if n := c.pool.InFlight(); n != 0 {
		c.fail("pool: inFlight %d after drain", n)
	}
	if c.pool.Log != nil {
		c.checkEventLog()
		c.checkUsage()
	}
	return c.violations
}

// checkEventLog verifies each job's lifecycle sequence: one submit, every
// match followed by exactly one execute, at most one terminate, and the
// executions conserved — every execution ends in exactly one crash or
// terminate, except a final run cut short by a stall abort.
func (c *Checker) checkEventLog() {
	type tally struct{ submits, matches, executes, terminates, crashes, resubmits, aborts int }
	counts := map[int]*tally{}
	for _, e := range c.pool.Log.Events() {
		t := counts[e.JobID]
		if t == nil {
			t = &tally{}
			counts[e.JobID] = t
		}
		switch e.Kind {
		case condor.EventSubmit:
			t.submits++
		case condor.EventMatch:
			t.matches++
		case condor.EventExecute:
			t.executes++
		case condor.EventTerminate:
			t.terminates++
		case condor.EventCrash:
			t.crashes++
		case condor.EventResubmit:
			t.resubmits++
		case condor.EventStallAbort:
			t.aborts++
		}
	}
	for _, q := range c.pool.Jobs() {
		id := q.Job.ID
		t := counts[id]
		if t == nil {
			c.fail("job %d: no events logged", id)
			continue
		}
		if t.submits != 1 {
			c.fail("job %d: %d submit events, want 1", id, t.submits)
		}
		if t.matches != t.executes {
			c.fail("job %d: %d matches but %d executions", id, t.matches, t.executes)
		}
		if t.terminates > 1 {
			c.fail("job %d: terminated %d times", id, t.terminates)
		}
		if t.aborts > 1 {
			c.fail("job %d: stall-aborted %d times", id, t.aborts)
		}
		if t.executes != t.crashes+t.terminates {
			c.fail("job %d: %d executions but %d crashes + %d terminations (run lost or duplicated)",
				id, t.executes, t.crashes, t.terminates)
		}
		if t.crashes != q.Crashes {
			c.fail("job %d: %d crash events but Crashes=%d", id, t.crashes, q.Crashes)
		}
		if q.State == condor.Completed && t.terminates != 1 {
			c.fail("job %d: completed with %d terminate events", id, t.terminates)
		}
	}
}

// checkUsage reconstructs per-user device time from the event log — the sum
// of every job's Execute→Crash/Terminate intervals — and compares it with
// the pool's fair-share accumulator. This is the invariant the
// crash/resubmit double-count bug broke: accruing from the job's *first*
// start charged earlier runs (and idle re-queue gaps) again on each crash.
func (c *Checker) checkUsage() {
	lastExec := map[int]units.Tick{}
	want := map[string]units.Tick{}
	for _, e := range c.pool.Log.Events() {
		switch e.Kind {
		case condor.EventExecute:
			lastExec[e.JobID] = e.At
		case condor.EventCrash, condor.EventTerminate:
			want[e.User] += e.At - lastExec[e.JobID]
		}
	}
	// Check users in sorted order: violations land in c.violations, so a
	// map-order iteration here would make the recorded (and capped) report
	// nondeterministic whenever more than one user mismatches — the
	// philint:mapiter hazard, caught by the analyzer on this very loop.
	users := map[string]bool{}
	for _, q := range c.pool.Jobs() {
		users[q.User] = true
	}
	names := make([]string, 0, len(users))
	for u := range users {
		names = append(names, u)
	}
	sort.Strings(names)
	for _, u := range names {
		if got := c.pool.Usage(u); got != want[u] {
			c.fail("user %q: fair-share usage %v != %v summed from execution intervals",
				u, got, want[u])
		}
	}
}
