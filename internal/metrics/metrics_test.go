package metrics

import (
	"testing"

	"phishare/internal/units"
)

func TestCoreUtilizationBasic(t *testing.T) {
	u := NewCoreUtilization(60)
	u.Record(0, 30)   // 30 cores busy from 0
	u.Record(1000, 0) // idle from 1000
	// Over [0, 2000]: 30*1000 busy-core-ticks of 60*2000 capacity = 0.25.
	if got := u.Utilization(2000); got != 0.25 {
		t.Errorf("Utilization = %v, want 0.25", got)
	}
	if got := u.BusyCoreSeconds(2000); got != 30 {
		t.Errorf("BusyCoreSeconds = %v, want 30", got)
	}
}

func TestCoreUtilizationOpenTail(t *testing.T) {
	// The device stays busy past the last sample; Utilization extends the
	// final level to end.
	u := NewCoreUtilization(60)
	u.Record(0, 60)
	if got := u.Utilization(5000); got != 1.0 {
		t.Errorf("Utilization = %v, want 1.0", got)
	}
}

func TestCoreUtilizationMultipleLevels(t *testing.T) {
	u := NewCoreUtilization(10)
	u.Record(0, 10)
	u.Record(100, 5)
	u.Record(300, 0)
	// busy: 10*100 + 5*200 = 2000 over 10*400 = 4000 -> 0.5
	if got := u.Utilization(400); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
}

func TestCoreUtilizationZeroEnd(t *testing.T) {
	u := NewCoreUtilization(10)
	if got := u.Utilization(0); got != 0 {
		t.Errorf("Utilization(0) = %v", got)
	}
}

func TestCoreUtilizationPanics(t *testing.T) {
	u := NewCoreUtilization(10)
	u.Record(100, 5)
	for name, fn := range map[string]func(){
		"backwards time":  func() { u.Record(50, 1) },
		"negative busy":   func() { u.Record(200, -1) },
		"busy over cores": func() { u.Record(200, 11) },
		"zero cores":      func() { NewCoreUtilization(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSummarize(t *testing.T) {
	records := []JobRecord{
		{ID: 0, SubmitTime: 0, StartTime: 100, EndTime: 1100, Completed: true},
		{ID: 1, SubmitTime: 0, StartTime: 300, EndTime: 2300, Completed: true},
		{ID: 2, SubmitTime: 0, StartTime: 500, EndTime: 900, Completed: false, Crashes: 2},
	}
	u := NewCoreUtilization(60)
	u.Record(0, 30)
	s := Summarize(records, []*CoreUtilization{u}, 2300)
	if s.Jobs != 3 || s.Completed != 2 || s.Failed != 1 || s.Crashes != 2 {
		t.Errorf("summary %+v", s)
	}
	if s.MeanWait != 300 {
		t.Errorf("MeanWait = %v, want 300", s.MeanWait)
	}
	if s.AvgUtilization != 0.5 {
		t.Errorf("AvgUtilization = %v, want 0.5", s.AvgUtilization)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, nil, 0)
	if s.Jobs != 0 || s.MeanWait != 0 || s.AvgUtilization != 0 {
		t.Errorf("empty summary %+v", s)
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(3568*units.Second, 2183*units.Second); got < 0.38 || got > 0.40 {
		t.Errorf("Reduction = %v, want ~0.39 (the paper's Table II)", got)
	}
	if Reduction(0, 100) != 0 {
		t.Error("Reduction with zero baseline should be 0")
	}
	if Reduction(100, 100) != 0 {
		t.Error("Reduction of equal values should be 0")
	}
	if Reduction(100, 150) >= 0 {
		t.Error("regression should be negative")
	}
}

func TestPercentile(t *testing.T) {
	ds := []units.Tick{50, 10, 30, 20, 40}
	if got := Percentile(ds, 0); got != 10 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(ds, 100); got != 50 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(ds, 50); got != 30 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	// Input must not be mutated.
	if ds[0] != 50 {
		t.Error("Percentile mutated its input")
	}
}

func TestJobRecordWaitTime(t *testing.T) {
	r := JobRecord{SubmitTime: 100, StartTime: 350}
	if r.WaitTime() != 250 {
		t.Errorf("WaitTime = %v", r.WaitTime())
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); got != 1 {
		t.Errorf("equal allocations index = %v, want 1", got)
	}
	// One user hogging everything among n: index = 1/n.
	if got := JainIndex([]float64{4, 0, 0, 0}); got != 0.25 {
		t.Errorf("monopolized index = %v, want 0.25", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Error("degenerate Jain index not 0")
	}
	mid := JainIndex([]float64{3, 1})
	if mid <= 0.25 || mid >= 1 {
		t.Errorf("skewed index %v out of (0.25, 1)", mid)
	}
}
