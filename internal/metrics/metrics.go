// Package metrics implements the measurements reported in the paper's
// evaluation: core-utilization integrals (the §III motivation numbers),
// makespan, and per-job-set summaries.
package metrics

import (
	"fmt"
	"sort"

	"phishare/internal/units"
)

// CoreUtilization integrates a device's busy-core count over time. It
// implements phi.UtilSink: the device reports every change in its busy-core
// count and the tracker accumulates the piecewise-constant integral,
// reproducing the paper's per-core activity monitoring ("we monitored the
// activity of each processing core").
type CoreUtilization struct {
	cores         int
	lastTime      units.Tick
	lastBusy      int
	busyCoreTicks int64
}

// NewCoreUtilization tracks a device with the given core count.
func NewCoreUtilization(cores int) *CoreUtilization {
	if cores <= 0 {
		panic(fmt.Sprintf("metrics: non-positive core count %d", cores))
	}
	return &CoreUtilization{cores: cores}
}

// Record notes that from time now onward, busy cores are busy. Times must
// be non-decreasing.
func (u *CoreUtilization) Record(now units.Tick, busy int) {
	if now < u.lastTime {
		panic(fmt.Sprintf("metrics: time went backwards: %v < %v", now, u.lastTime))
	}
	if busy < 0 || busy > u.cores {
		panic(fmt.Sprintf("metrics: busy=%d outside [0, %d]", busy, u.cores))
	}
	u.busyCoreTicks += int64(u.lastBusy) * int64(now-u.lastTime)
	u.lastTime = now
	u.lastBusy = busy
}

// BusyCoreSeconds returns the integral of busy cores up to end, in
// core-seconds.
func (u *CoreUtilization) BusyCoreSeconds(end units.Tick) float64 {
	total := u.busyCoreTicks
	if end > u.lastTime {
		total += int64(u.lastBusy) * int64(end-u.lastTime)
	}
	return float64(total) / float64(units.Second)
}

// Utilization returns the average fraction of cores busy over [0, end].
func (u *CoreUtilization) Utilization(end units.Tick) float64 {
	if end <= 0 {
		return 0
	}
	return u.BusyCoreSeconds(end) / (float64(u.cores) * end.Seconds())
}

// JobRecord captures one job's cluster-level lifecycle for summaries.
type JobRecord struct {
	ID         int
	Workload   string
	User       string // submitting tenant ("" = anonymous single user)
	SubmitTime units.Tick
	StartTime  units.Tick // first dispatch
	EndTime    units.Tick // completion (or final failure)
	Completed  bool
	Crashes    int // kill events before (or instead of) completion
	Machine    string
	// SeqWork is the job's inherent sequential running time (sum of its
	// phase durations) — the denominator of stretch and the weight of
	// per-tenant delivered work.
	SeqWork units.Tick
}

// WaitTime is how long the job sat before first starting.
func (r JobRecord) WaitTime() units.Tick { return r.StartTime - r.SubmitTime }

// Summary aggregates one simulation run.
type Summary struct {
	Makespan       units.Tick
	Jobs           int
	Completed      int
	Failed         int
	Crashes        int
	AvgUtilization float64 // mean core utilization across devices over the makespan
	MeanWait       units.Tick
	MeanTurnaround units.Tick
	MaxConcurrency int // peak jobs resident on any single device (reported by caller)
}

// Summarize builds a Summary from job records and device utilizations.
// makespan should be the completion time of the last job. It is a thin
// wrapper over the streaming Aggregate, so the retained and emit-and-drop
// paths are bit-identical by construction, not by parallel maintenance.
func Summarize(records []JobRecord, utils []*CoreUtilization, makespan units.Tick) Summary {
	var a Aggregate
	for _, r := range records {
		a.Add(r)
	}
	return a.Summary(utils, makespan)
}

// Reduction returns the fractional improvement of measured over baseline,
// e.g. Reduction(3568, 2183) = 0.39 — the paper's "makespan reduction
// compared to MC" columns.
func Reduction(baseline, measured units.Tick) float64 {
	if baseline <= 0 {
		return 0
	}
	return 1 - float64(measured)/float64(baseline)
}

// JainIndex computes Jain's fairness index over per-entity allocations:
// (Σx)² / (n·Σx²), in (0, 1] with 1 meaning perfectly equal. The standard
// fairness summary for the multi-user scheduling comparisons discussed in
// the paper's related work. Returns 0 for empty or all-zero input.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Percentile returns the p-th percentile (0-100) of the given durations
// using nearest-rank. It returns 0 for an empty slice.
func Percentile(ds []units.Tick, p float64) units.Tick {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]units.Tick, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
