// Streaming run aggregation: the O(1)-per-record half of the million-job
// pipeline. An Aggregate consumes terminal JobRecords one at a time and
// keeps only integer tallies (global and per-tenant), so a run can drop
// each record the moment it is folded in. All accumulation is int64
// addition and max — commutative and associative — and every float appears
// only in the finalization step, which walks tenants in sorted-name order;
// consequently feeding the same multiset of records in any order yields
// bit-identical results, which is what lets the retained post-hoc path
// (Summarize) and the emit-and-drop path share one oracle.
package metrics

import (
	"sort"

	"phishare/internal/units"
)

// tenantTally is one tenant's integer accumulators. Turnaround and
// sequential work are summed over completed jobs only, so stretch and
// fairness measure delivered service, not abandoned attempts.
type tenantTally struct {
	jobs, completed, failed, crashes int
	doneTurn, doneSeq                int64
}

// Aggregate folds JobRecords into run-level tallies online.
// The zero value is ready to use.
type Aggregate struct {
	jobs, completed, failed, crashes int
	wait, turn                       int64 // all jobs (Summary means)
	doneTurn, doneSeq                int64 // completed jobs (stretch)
	lastEnd                          units.Tick
	firstSubmit                      units.Tick
	tenants                          map[string]*tenantTally
}

// Add folds one terminal record in. Order-independent: any permutation of
// the same records yields a bit-identical Aggregate.
func (a *Aggregate) Add(r JobRecord) {
	if a.jobs == 0 || r.SubmitTime < a.firstSubmit {
		a.firstSubmit = r.SubmitTime
	}
	a.jobs++
	a.crashes += r.Crashes
	a.wait += int64(r.WaitTime())
	turn := int64(r.EndTime - r.SubmitTime)
	a.turn += turn
	if r.EndTime > a.lastEnd {
		a.lastEnd = r.EndTime
	}
	if r.Completed {
		a.completed++
		a.doneTurn += turn
		a.doneSeq += int64(r.SeqWork)
	} else {
		a.failed++
	}
	if a.tenants == nil {
		a.tenants = make(map[string]*tenantTally)
	}
	t := a.tenants[r.User]
	if t == nil {
		t = &tenantTally{}
		a.tenants[r.User] = t
	}
	t.jobs++
	t.crashes += r.Crashes
	if r.Completed {
		t.completed++
		t.doneTurn += turn
		t.doneSeq += int64(r.SeqWork)
	} else {
		t.failed++
	}
}

// Jobs is the number of records folded in so far.
func (a *Aggregate) Jobs() int { return a.jobs }

// LastEnd is the latest EndTime seen so far — the record-level makespan.
func (a *Aggregate) LastEnd() units.Tick { return a.lastEnd }

// Summary finalizes the paper's per-run summary. Identical inputs produce
// output bit-identical to Summarize over the corresponding record slice —
// Summarize is implemented on top of Add.
func (a *Aggregate) Summary(utils []*CoreUtilization, makespan units.Tick) Summary {
	s := Summary{
		Makespan:  makespan,
		Jobs:      a.jobs,
		Completed: a.completed,
		Failed:    a.failed,
		Crashes:   a.crashes,
	}
	if a.jobs > 0 {
		s.MeanWait = units.Tick(a.wait / int64(a.jobs))
		s.MeanTurnaround = units.Tick(a.turn / int64(a.jobs))
	}
	if len(utils) > 0 && makespan > 0 {
		total := 0.0
		for _, u := range utils {
			total += u.Utilization(makespan)
		}
		s.AvgUtilization = total / float64(len(utils))
	}
	return s
}

// TenantStat is one tenant's delivered-service summary.
type TenantStat struct {
	User      string
	Jobs      int
	Completed int
	Failed    int
	Crashes   int
	// Work is the tenant's delivered sequential work (Σ SeqWork over its
	// completed jobs) — the allocation fairness is judged on.
	Work units.Tick
	// Turnaround is Σ(EndTime − SubmitTime) over its completed jobs.
	Turnaround units.Tick
}

// StreamStats is the full online summary of a streaming run: the Summary
// plus the scale-era metrics (per-tenant fairness, stretch, footprint).
type StreamStats struct {
	Summary Summary
	// Tenants is the number of distinct submitting users seen.
	Tenants int
	// Fairness is Jain's index over per-tenant delivered sequential work —
	// 1 when every tenant got an equal share of the cluster's service.
	Fairness float64
	// Stretch is the work-weighted mean stretch of completed jobs:
	// Σ turnaround / Σ sequential work. 1 would mean every job ran as if
	// alone on infinitely many devices; queueing and sharing push it up.
	// (The per-sum ratio, unlike a mean of per-job ratios, is independent
	// of record arrival order — the bit-identity contract demands that.)
	Stretch float64
	// FirstSubmit and LastEnd bound the observed record activity.
	FirstSubmit, LastEnd units.Tick
	// PeakPending and PeakInFlight are the pool's high-water marks —
	// the O(active) footprint the streaming engine is bounded by. Filled
	// by the runner from pool counters; zero when unavailable.
	PeakPending, PeakInFlight int
	// PeakHeapBytes is the largest live heap observed by the runner's
	// memory probe (0 when probing is off).
	PeakHeapBytes uint64
}

// PerTenant returns every tenant's stat, sorted by user name.
func (a *Aggregate) PerTenant() []TenantStat {
	out := make([]TenantStat, 0, len(a.tenants))
	for user, t := range a.tenants {
		out = append(out, TenantStat{
			User:       user,
			Jobs:       t.jobs,
			Completed:  t.completed,
			Failed:     t.failed,
			Crashes:    t.crashes,
			Work:       units.Tick(t.doneSeq),
			Turnaround: units.Tick(t.doneTurn),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// Stats finalizes the streaming summary. Like Summary, bit-identical for
// the same record multiset regardless of arrival order: the tenant walk is
// name-sorted and every tally is an integer.
func (a *Aggregate) Stats(utils []*CoreUtilization, makespan units.Tick) StreamStats {
	st := StreamStats{
		Summary:     a.Summary(utils, makespan),
		Tenants:     len(a.tenants),
		FirstSubmit: a.firstSubmit,
		LastEnd:     a.lastEnd,
	}
	work := make([]float64, 0, len(a.tenants))
	for _, t := range a.PerTenant() {
		work = append(work, float64(t.Work))
	}
	st.Fairness = JainIndex(work)
	if a.doneSeq > 0 {
		st.Stretch = float64(a.doneTurn) / float64(a.doneSeq)
	}
	return st
}
