// Package estimator learns jobs' coprocessor resource requirements from
// observed executions.
//
// The paper assumes users declare each job's maximum Xeon Phi memory and
// thread requirement, noting that "this could be relaxed with tools that
// automatically estimate jobs' resource requirements. However that is
// outside the scope of this paper" (§IV-B). This package is that tool: it
// groups jobs by workload class, starts each class with conservative
// whole-device declarations (safe but unshareable), records the peaks
// observed when instances finish, and once a class has enough samples
// replaces the conservative declaration with the observed maximum plus a
// safety margin.
//
// Underestimates are self-correcting: if a job is killed by COSMIC's memory
// container because the estimate was too low, the kill report (which
// carries the true peak) feeds back into the class model, and the job's
// retry runs with a corrected declaration.
package estimator

import (
	"fmt"
	"sort"
	"sync"

	"phishare/internal/job"
	"phishare/internal/units"
)

// Config tunes the estimator.
type Config struct {
	// MinSamples is how many completed instances a class needs before its
	// estimate replaces the conservative declaration. Default 3.
	MinSamples int
	// MemMargin multiplies the observed peak memory. Default 1.2.
	MemMargin float64
	// ConservativeMem and ConservativeThreads are the declarations used
	// while a class is unknown: effectively a whole device, which is always
	// safe — exactly the exclusive policy the paper's clusters already
	// imply for unknown jobs. The default is 7.8 GB rather than the full
	// 8 GB because the card's memory also holds its Linux kernel and
	// daemons (§II-A), so no user process can own all of it.
	ConservativeMem     units.MB
	ConservativeThreads units.Threads
}

func (c Config) withDefaults() Config {
	if c.MinSamples == 0 {
		c.MinSamples = 3
	}
	if c.MemMargin == 0 { //philint:ignore floateq zero-value config sentinel, exact by construction
		c.MemMargin = 1.2
	}
	if c.ConservativeMem == 0 {
		c.ConservativeMem = 7988 // 7.8 GiB: device memory minus OS headroom
	}
	if c.ConservativeThreads == 0 {
		c.ConservativeThreads = 240
	}
	return c
}

// classModel accumulates observations for one workload class.
type classModel struct {
	samples    int
	violations int
	maxMem     units.MB
	maxThreads units.Threads
}

// Estimator is safe for concurrent use (the simulator is single-threaded,
// but the estimator is a reusable library component).
type Estimator struct {
	mu      sync.Mutex
	cfg     Config
	classes map[string]*classModel
}

// New returns an estimator with the given configuration.
func New(cfg Config) *Estimator {
	return &Estimator{cfg: cfg.withDefaults(), classes: map[string]*classModel{}}
}

// ObserveCompletion records a successfully finished instance's measured
// peaks (in the simulator, the job's true peak memory and widest offload).
func (e *Estimator) ObserveCompletion(class string, peakMem units.MB, threads units.Threads) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.class(class)
	m.samples++
	if peakMem > m.maxMem {
		m.maxMem = peakMem
	}
	if threads > m.maxThreads {
		m.maxThreads = threads
	}
}

// ObserveViolation records a container kill: the estimate was below the
// job's true peak. The true peak (reported by the container) raises the
// class ceiling immediately, and the violation counts as a sample so the
// class does not oscillate back.
func (e *Estimator) ObserveViolation(class string, truePeak units.MB) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.class(class)
	m.violations++
	m.samples++
	if truePeak > m.maxMem {
		m.maxMem = truePeak
	}
}

func (e *Estimator) class(name string) *classModel {
	m, ok := e.classes[name]
	if !ok {
		m = &classModel{}
		e.classes[name] = m
	}
	return m
}

// Estimate returns the declaration to use for a new instance of class:
// the margined observed peak once MinSamples instances have been seen, the
// conservative whole-device declaration before that. known reports which
// case applied.
func (e *Estimator) Estimate(class string) (mem units.MB, threads units.Threads, known bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, ok := e.classes[class]
	if !ok || m.samples < e.cfg.MinSamples {
		return e.cfg.ConservativeMem, e.cfg.ConservativeThreads, false
	}
	mem = units.MB(float64(m.maxMem) * e.cfg.MemMargin)
	if mem > e.cfg.ConservativeMem {
		mem = e.cfg.ConservativeMem
	}
	// Threads need no margin: the widest offload is bounded by the class's
	// parallelization, which does not vary with input the way memory does.
	threads = m.maxThreads
	if threads <= 0 || threads > e.cfg.ConservativeThreads {
		threads = e.cfg.ConservativeThreads
	}
	return mem, threads, true
}

// Annotate returns a copy of j whose declared requirements come from the
// estimator. The copy shares the (immutable) phase profile.
func (e *Estimator) Annotate(j *job.Job) *job.Job {
	mem, threads, _ := e.Estimate(j.Workload)
	cp := *j
	cp.Mem = mem
	cp.Threads = threads
	return &cp
}

// Stats summarizes the estimator's state for reporting.
type Stats struct {
	Classes    int
	Known      int // classes past MinSamples
	Violations int
}

// Stats returns current aggregate state.
func (e *Estimator) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Stats{Classes: len(e.classes)}
	for _, m := range e.classes {
		if m.samples >= e.cfg.MinSamples {
			s.Known++
		}
		s.Violations += m.violations
	}
	return s
}

// Describe renders per-class state, sorted by class name.
func (e *Estimator) Describe() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.classes))
	for name := range e.classes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for _, name := range names {
		m := e.classes[name]
		out += fmt.Sprintf("%-12s samples=%d maxMem=%v maxThreads=%v violations=%d\n",
			name, m.samples, m.maxMem, m.maxThreads, m.violations)
	}
	return out
}
