package estimator

import (
	"strings"
	"testing"

	"phishare/internal/job"
)

func TestUnknownClassIsConservative(t *testing.T) {
	e := New(Config{})
	mem, th, known := e.Estimate("KM")
	if known {
		t.Error("fresh class reported known")
	}
	if mem != 7988 || th != 240 {
		t.Errorf("conservative estimate = %v/%v, want whole-device defaults", mem, th)
	}
}

func TestEstimateAfterMinSamples(t *testing.T) {
	e := New(Config{MinSamples: 3, MemMargin: 1.2})
	e.ObserveCompletion("KM", 1000, 60)
	e.ObserveCompletion("KM", 800, 60)
	if _, _, known := e.Estimate("KM"); known {
		t.Error("known after 2 of 3 samples")
	}
	e.ObserveCompletion("KM", 900, 60)
	mem, th, known := e.Estimate("KM")
	if !known {
		t.Fatal("not known after 3 samples")
	}
	if mem != 1200 { // max 1000 * 1.2
		t.Errorf("mem estimate %v, want 1200", mem)
	}
	if th != 60 {
		t.Errorf("thread estimate %v, want 60", th)
	}
}

func TestEstimateCapsAtConservative(t *testing.T) {
	e := New(Config{MinSamples: 1})
	e.ObserveCompletion("SG", 7500, 240)
	mem, th, _ := e.Estimate("SG")
	if mem > 7988 {
		t.Errorf("estimate %v above the conservative ceiling", mem)
	}
	if th != 240 {
		t.Errorf("thread estimate %v", th)
	}
}

func TestViolationRaisesCeiling(t *testing.T) {
	e := New(Config{MinSamples: 2, MemMargin: 1.1})
	e.ObserveCompletion("MD", 500, 180)
	e.ObserveCompletion("MD", 520, 180)
	mem, _, _ := e.Estimate("MD")
	if mem != 572 { // 520 * 1.1
		t.Fatalf("pre-violation estimate %v", mem)
	}
	e.ObserveViolation("MD", 800)
	mem, _, known := e.Estimate("MD")
	if !known || mem != 880 { // 800 * 1.1
		t.Errorf("post-violation estimate %v (known=%v), want 880", mem, known)
	}
	if e.Stats().Violations != 1 {
		t.Errorf("stats %+v", e.Stats())
	}
}

func TestAnnotateCopiesJob(t *testing.T) {
	e := New(Config{MinSamples: 1})
	e.ObserveCompletion("KM", 600, 60)
	orig := &job.Job{
		ID: 1, Name: "KM#1", Workload: "KM",
		Mem: 9999, Threads: 999, ActualPeakMem: 580,
		Phases: []job.Phase{{Kind: job.OffloadPhase, Duration: 100, Threads: 60}},
	}
	cp := e.Annotate(orig)
	if cp.Mem != 720 || cp.Threads != 60 {
		t.Errorf("annotated job %v/%v", cp.Mem, cp.Threads)
	}
	if orig.Mem != 9999 {
		t.Error("Annotate mutated the original")
	}
	if cp.ActualPeakMem != orig.ActualPeakMem || len(cp.Phases) != len(orig.Phases) {
		t.Error("Annotate lost job content")
	}
}

func TestClassesIndependent(t *testing.T) {
	e := New(Config{MinSamples: 1})
	e.ObserveCompletion("KM", 600, 60)
	if _, _, known := e.Estimate("BT"); known {
		t.Error("observing KM made BT known")
	}
}

func TestStatsAndDescribe(t *testing.T) {
	e := New(Config{MinSamples: 1})
	e.ObserveCompletion("KM", 600, 60)
	e.ObserveViolation("BT", 2000)
	s := e.Stats()
	if s.Classes != 2 || s.Known != 2 || s.Violations != 1 {
		t.Errorf("stats %+v", s)
	}
	d := e.Describe()
	if !strings.Contains(d, "KM") || !strings.Contains(d, "BT") {
		t.Errorf("describe missing classes:\n%s", d)
	}
}

func TestZeroThreadObservationFallsBack(t *testing.T) {
	e := New(Config{MinSamples: 1})
	e.ObserveViolation("X", 100) // violation only: no thread observation
	_, th, known := e.Estimate("X")
	if !known {
		t.Fatal("not known")
	}
	if th != 240 {
		t.Errorf("thread estimate with no observation = %v, want conservative 240", th)
	}
}
