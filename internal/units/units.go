// Package units defines the scalar quantities shared by every layer of the
// simulator: simulated time (Tick), coprocessor memory (MB), and hardware
// thread counts. Keeping them as distinct named types catches unit-mixing
// bugs at compile time (e.g. passing a memory amount where a duration is
// expected) and gives every quantity a single formatting rule.
package units

import (
	"fmt"
	"math"
	"time"
)

// Tick is a point in (or span of) simulated time, in milliseconds.
//
// The discrete-event engine advances a Tick clock; all durations in job phase
// templates, negotiation cycles and dispatch latencies are Ticks. Results are
// usually reported in seconds (the paper's makespan unit) via Seconds.
type Tick int64

// Common durations.
const (
	Millisecond Tick = 1
	Second      Tick = 1000 * Millisecond
	Minute      Tick = 60 * Second
	Hour        Tick = 60 * Minute
)

// Seconds converts t to floating-point seconds.
func (t Tick) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t to a time.Duration (for display only; the simulator
// never consults wall-clock time).
func (t Tick) Duration() time.Duration { return time.Duration(t) * time.Millisecond }

// String formats the tick as a duration, e.g. "2.5s".
func (t Tick) String() string { return t.Duration().String() }

// FromSeconds converts floating-point seconds to the nearest Tick,
// rounding half away from zero.
func FromSeconds(s float64) Tick { return Tick(math.Round(s * float64(Second))) }

// MB is an amount of coprocessor memory in mebibytes.
//
// The Xeon Phi 5110P used in the paper has 8 GB (8192 MB) of device memory;
// job requirements in Table I range from 300 MB to 3400 MB.
type MB int

// GB returns n gibibytes as MB.
func GB(n int) MB { return MB(n) * 1024 }

// String formats the amount, preferring GB for round multiples.
func (m MB) String() string {
	if m >= 1024 && m%1024 == 0 {
		return fmt.Sprintf("%dGB", int(m)/1024)
	}
	return fmt.Sprintf("%dMB", int(m))
}

// Threads is a count of Xeon Phi hardware threads. A 60-core device exposes
// 240 hardware threads (4 per core).
type Threads int

// Cores returns the number of physical cores needed to host t threads under
// COSMIC-style affinitization (4 threads per core, rounded up).
func (t Threads) Cores() int {
	if t <= 0 {
		return 0
	}
	return (int(t) + 3) / 4
}

// String formats the thread count.
func (t Threads) String() string { return fmt.Sprintf("%dT", int(t)) }
