package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTickSeconds(t *testing.T) {
	cases := []struct {
		tick Tick
		want float64
	}{
		{0, 0},
		{Second, 1},
		{2500 * Millisecond, 2.5},
		{Minute, 60},
		{Hour, 3600},
		{-Second, -1},
	}
	for _, c := range cases {
		if got := c.tick.Seconds(); got != c.want {
			t.Errorf("Tick(%d).Seconds() = %v, want %v", c.tick, got, c.want)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(ms int32) bool {
		tk := Tick(ms)
		return FromSeconds(tk.Seconds()) == tk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromSecondsRounds(t *testing.T) {
	if got := FromSeconds(0.0014); got != 1 {
		t.Errorf("FromSeconds(0.0014) = %d, want 1", got)
	}
	if got := FromSeconds(1.5); got != 1500 {
		t.Errorf("FromSeconds(1.5) = %d, want 1500", got)
	}
}

func TestTickDuration(t *testing.T) {
	if got := (2 * Second).Duration(); got != 2*time.Second {
		t.Errorf("Duration = %v, want 2s", got)
	}
}

func TestTickString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.5s" {
		t.Errorf("String = %q, want 1.5s", got)
	}
}

func TestGB(t *testing.T) {
	if GB(8) != 8192 {
		t.Errorf("GB(8) = %d, want 8192", GB(8))
	}
	if GB(0) != 0 {
		t.Errorf("GB(0) = %d, want 0", GB(0))
	}
}

func TestMBString(t *testing.T) {
	cases := []struct {
		m    MB
		want string
	}{
		{300, "300MB"},
		{1024, "1GB"},
		{8192, "8GB"},
		{1500, "1500MB"},
		{0, "0MB"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("MB(%d).String() = %q, want %q", c.m, got, c.want)
		}
	}
}

func TestThreadsCores(t *testing.T) {
	cases := []struct {
		th   Threads
		want int
	}{
		{0, 0},
		{-4, 0},
		{1, 1},
		{4, 1},
		{5, 2},
		{60, 15},
		{120, 30},
		{180, 45},
		{240, 60},
		{241, 61},
	}
	for _, c := range cases {
		if got := c.th.Cores(); got != c.want {
			t.Errorf("Threads(%d).Cores() = %d, want %d", c.th, got, c.want)
		}
	}
}

func TestThreadsCoresProperty(t *testing.T) {
	// cores*4 always covers the thread count, and (cores-1)*4 never does.
	f := func(n uint16) bool {
		th := Threads(n % 1024)
		c := th.Cores()
		if th <= 0 {
			return c == 0
		}
		return c*4 >= int(th) && (c-1)*4 < int(th)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThreadsString(t *testing.T) {
	if got := Threads(240).String(); got != "240T" {
		t.Errorf("String = %q, want 240T", got)
	}
}
