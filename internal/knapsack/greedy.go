package knapsack

import "sort"

// SolveGreedy solves the same instance with the classical value-density
// heuristic: items sorted by value per memory unit, taken greedily while
// they fit. It runs in O(n log n) against the DP's O(n·w·t) and is the
// natural comparison point for the paper's complexity discussion (§IV-C
// argues the DP is already near-linear at 50 MB granularity, so the exact
// solution is affordable; BenchmarkKnapsackGreedyVsDP quantifies both
// sides).
//
// The greedy solution is always feasible but can be arbitrarily far from
// optimal on adversarial instances; TestGreedyNeverBeatsDP pins the
// invariant that the DP dominates it.
func SolveGreedy(cfg Config, items []Item) Result {
	cfg = cfg.withDefaults()
	for i, it := range items {
		if it.Value < 0 {
			panic("knapsack: negative value in greedy solve")
		}
		if it.Mem <= 0 {
			panic("knapsack: non-positive memory in greedy solve")
		}
		_ = i
	}
	if cfg.MemCapacity <= 0 || len(items) == 0 {
		return Result{}
	}

	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		// Compare value densities v/m without division: va*mb > vb*ma.
		da := ia.Value * int64(ib.Mem)
		db := ib.Value * int64(ia.Mem)
		if da != db {
			return da > db
		}
		return ia.Mem < ib.Mem // tie-break: smaller item first
	})

	// Track remaining capacity at the DP's granularity so greedy and DP
	// solve the identical rounded instance — including the DP's conservative
	// rule that a capacity which rounds down to zero units admits nothing
	// (even zero-weight items).
	memLeft := int(cfg.MemCapacity / cfg.MemGranularity)
	threadsLeft := -1
	if cfg.ThreadCapacity > 0 {
		threadsLeft = int(cfg.ThreadCapacity / cfg.ThreadGranularity)
	}
	if memLeft == 0 || threadsLeft == 0 {
		return Result{}
	}

	var res Result
	for _, idx := range order {
		it := items[idx]
		w := ceilDiv(int(it.Mem), int(cfg.MemGranularity))
		tw := 0
		if threadsLeft >= 0 {
			th := int(it.Threads)
			if th < 0 {
				th = 0
			}
			tw = ceilDiv(th, int(cfg.ThreadGranularity))
		}
		if w > memLeft || (threadsLeft >= 0 && tw > threadsLeft) {
			continue
		}
		memLeft -= w
		if threadsLeft >= 0 {
			threadsLeft -= tw
		}
		res.Selected = append(res.Selected, idx)
		res.Value += it.Value
		res.Mem += it.Mem
		res.Threads += it.Threads
	}
	sort.Ints(res.Selected)
	return res
}
