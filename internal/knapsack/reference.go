package knapsack

// This file preserves the original, allocation-per-call dynamic programs as
// the reference semantics for the optimized Solver. The Solver must agree
// with these bit-for-bit — same Value, same Selected set, same tie-breaks —
// on every instance; the differential tests in solver_test.go and the
// determinism regression in internal/experiments enforce it. Keep this code
// boring and obviously correct; optimize only in solver paths.

// SolveReference solves the instance with the unoptimized reference DP.
// It is exported so higher layers (core.Config.ReferenceSolver) can run the
// whole scheduler stack through the pre-optimization path when validating
// that the optimized Solver changes no simulated outcome.
func SolveReference(cfg Config, items []Item) Result {
	cfg = cfg.withDefaults()
	validate(items)
	if cfg.MemCapacity <= 0 || len(items) == 0 {
		return Result{}
	}
	if cfg.ThreadCapacity > 0 {
		return referenceSolve2D(cfg, items)
	}
	return referenceSolve1D(cfg, items)
}

// referenceSolve1D is the paper's O(n·w) dynamic program over memory units.
func referenceSolve1D(cfg Config, items []Item) Result {
	W := int(cfg.MemCapacity / cfg.MemGranularity) // capacity rounded down: conservative
	if W == 0 {
		return Result{}
	}
	weights := make([]int, len(items))
	for i, it := range items {
		weights[i] = ceilDiv(int(it.Mem), int(cfg.MemGranularity))
	}

	// dp[m] = best value using a prefix of items with memory budget m.
	// take[i] is the DP row of "item i taken at budget m" decisions.
	dp := make([]int64, W+1)
	take := make([][]bool, len(items))
	for i, it := range items {
		w := weights[i]
		row := make([]bool, W+1)
		take[i] = row
		if w > W {
			continue
		}
		for m := W; m >= w; m-- {
			if cand := dp[m-w] + it.Value; cand > dp[m] {
				dp[m] = cand
				row[m] = true
			}
		}
	}

	res := Result{Value: dp[W]}
	m := W
	for i := len(items) - 1; i >= 0; i-- {
		if take[i][m] {
			res.Selected = append(res.Selected, i)
			res.Mem += items[i].Mem
			res.Threads += items[i].Threads
			m -= weights[i]
		}
	}
	reverse(res.Selected)
	return res
}

// referenceSolve2D bounds both memory and total threads:
// dp[m][t] = best value with memory budget m and thread budget t.
func referenceSolve2D(cfg Config, items []Item) Result {
	W := int(cfg.MemCapacity / cfg.MemGranularity)
	T := int(cfg.ThreadCapacity / cfg.ThreadGranularity) // rounded down: conservative
	if W == 0 || T == 0 {
		return Result{}
	}
	weights := make([]int, len(items))
	tweights := make([]int, len(items))
	for i, it := range items {
		weights[i] = ceilDiv(int(it.Mem), int(cfg.MemGranularity))
		th := int(it.Threads)
		if th < 0 {
			th = 0
		}
		tweights[i] = ceilDiv(th, int(cfg.ThreadGranularity))
	}

	cols := T + 1
	dp := make([]int64, (W+1)*cols) // dp[m*cols+t]
	take := make([][]bool, len(items))
	for i, it := range items {
		w, tw := weights[i], tweights[i]
		row := make([]bool, (W+1)*cols)
		take[i] = row
		if w > W || tw > T {
			continue
		}
		for m := W; m >= w; m-- {
			base := m * cols
			prev := (m - w) * cols
			for t := T; t >= tw; t-- {
				if cand := dp[prev+t-tw] + it.Value; cand > dp[base+t] {
					dp[base+t] = cand
					row[base+t] = true
				}
			}
		}
	}

	res := Result{Value: dp[W*cols+T]}
	m, t := W, T
	for i := len(items) - 1; i >= 0; i-- {
		if take[i][m*cols+t] {
			res.Selected = append(res.Selected, i)
			res.Mem += items[i].Mem
			res.Threads += items[i].Threads
			m -= weights[i]
			t -= tweights[i]
		}
	}
	reverse(res.Selected)
	return res
}
