// Package knapsack implements the 0-1 knapsack solvers at the heart of the
// sharing-aware scheduler (paper §IV-C).
//
// Each Xeon Phi coprocessor is modeled as a knapsack whose capacity is the
// device's (free) physical memory; the items are pending jobs weighted by
// their declared memory requirement. The value of a job decreases with its
// thread request (Eq. 1: v = 1 - (t/240)^2) so that maximizing knapsack value
// packs many low-thread jobs together, maximizing concurrency.
//
// Two dynamic programs are provided, selected by Config:
//
//   - a classic 1-D dynamic program over memory, as described in the paper's
//     complexity analysis (O(n·w) with w = capacity/granularity, e.g.
//     8 GB / 50 MB = 164 memory units);
//   - a 2-D dynamic program over (memory, threads) that additionally bounds
//     the total thread request of the selected set. The paper expresses the
//     thread bound by zeroing the value of oversubscribed sets; bounding the
//     DP state is the standard equivalent formulation and avoids enumerating
//     sets at all.
//
// The production entry point is Solver, which reuses its DP buffers across
// calls so that a scheduler solving thousands of knapsacks per run does not
// allocate per solve; the package-level Solve draws Solvers from a pool for
// one-off callers. SolveReference is the original per-call-allocating
// implementation, kept verbatim as the correctness oracle: Solver must
// produce bit-for-bit identical results (see TestSolverMatchesReference),
// because any divergence would change simulated scheduling outcomes.
//
// Values are non-negative scaled integers. Callers that want the paper's
// "as many jobs as possible" tie-break add a small per-item bonus via
// CountBonus so that among equal-value sets the larger one wins.
package knapsack

import (
	"fmt"
	"sort"
	"sync"

	"phishare/internal/units"
)

// Item is one candidate job for a knapsack.
type Item struct {
	Mem     units.MB      // declared coprocessor memory requirement (weight)
	Threads units.Threads // declared thread requirement
	Value   int64         // non-negative scaled value
}

// Config describes one knapsack instance.
type Config struct {
	// MemCapacity is the knapsack capacity: the device memory (or the freed
	// portion of it, for the incremental knapsacks of Fig. 4).
	MemCapacity units.MB
	// MemGranularity is the memory quantum of the DP. The paper uses 50 MB.
	// Item weights are rounded *up* to the granularity, so a solution is
	// always feasible at byte resolution. Defaults to 50 MB if zero.
	MemGranularity units.MB
	// ThreadCapacity bounds the total threads of the selected set. Zero (or
	// negative) disables the thread dimension and yields the 1-D solver.
	ThreadCapacity units.Threads
	// ThreadGranularity is the thread quantum of the 2-D DP. Item thread
	// requests are rounded up, the capacity is rounded down, keeping
	// solutions conservative. Defaults to 4 (one Xeon Phi core's worth).
	ThreadGranularity units.Threads
}

func (c Config) withDefaults() Config {
	if c.MemGranularity <= 0 {
		c.MemGranularity = 50
	}
	if c.ThreadGranularity <= 0 {
		c.ThreadGranularity = 4
	}
	return c
}

// Result is a solved knapsack.
type Result struct {
	Selected []int         // indices into the item slice, ascending
	Value    int64         // total value of the selected set
	Mem      units.MB      // total declared memory of the selected set
	Threads  units.Threads // total declared threads of the selected set
}

// Eq1Scale is the integer scale applied to the paper's Eq. 1 value, which
// lies in [0, 1]. With scale 1000, value resolution is 0.001.
const Eq1Scale = 1000

// Eq1Value computes the paper's Eq. 1 job value, scaled to an integer:
//
//	v = round((1 - (t/T)^2) · Eq1Scale)
//
// T is the device hardware thread count (240 for the Xeon Phi 5110P).
// Requests above T (which COSMIC would refuse to run concurrently with
// anything) clamp to value 0; non-positive T panics.
func Eq1Value(t, T units.Threads) int64 {
	if T <= 0 {
		panic(fmt.Sprintf("knapsack: non-positive hardware thread count %d", T))
	}
	if t < 0 {
		t = 0
	}
	if t > T {
		t = T
	}
	frac := float64(t) / float64(T)
	return int64((1-frac*frac)*Eq1Scale + 0.5)
}

// CountBonus returns the per-item bonus that implements the paper's
// "pack as many jobs as possible" objective as a tie-break under the Eq. 1
// value: each item is worth an extra 1 while true value differences are
// scaled by maxItems+1, so a 0.001 difference in total Eq. 1 value always
// dominates any difference in set size.
//
// Callers combine: item.Value = Eq1Value(t, T)*CountBonusScale(maxItems) + 1.
func CountBonusScale(maxItems int) int64 {
	return int64(maxItems) + 1
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// validate rejects malformed items. Items with negative Value or
// non-positive Mem panic: a zero-memory job would let the DP pack infinitely
// many copies of nothing, which is always a caller bug in this system (every
// real offload job reserves device memory).
func validate(items []Item) {
	for i, it := range items {
		if it.Value < 0 {
			panic(fmt.Sprintf("knapsack: item %d has negative value %d", i, it.Value))
		}
		if it.Mem <= 0 {
			panic(fmt.Sprintf("knapsack: item %d has non-positive memory %v", i, it.Mem))
		}
	}
}

// solverPool recycles Solvers for the convenience Solve entry point, so that
// one-shot callers still amortize the DP buffers across calls.
var solverPool = sync.Pool{New: func() any { return NewSolver() }}

// Solve solves the knapsack instance and returns the best item set.
//
// The objective is maximum total Value subject to the memory capacity and
// (when ThreadCapacity > 0) the thread capacity. Items whose individual
// weight exceeds a capacity are never selected.
//
// Solve is a thin wrapper over a pooled Solver; hot loops that solve many
// instances back to back (the scheduler's greedy per-device loop) should
// hold their own Solver instead.
func Solve(cfg Config, items []Item) Result {
	s := solverPool.Get().(*Solver)
	res := s.Solve(cfg, items)
	solverPool.Put(s)
	return res
}

// Solver owns grow-only buffers that are reused across calls, so a planning
// round of many knapsacks allocates only its Result slices. A Solver is not
// safe for concurrent use; each simulation (goroutine) holds its own.
//
// The Solver is bit-for-bit equivalent to SolveReference: same Value, same
// Selected indices, same tie-breaks. Instead of the reference's dense
// (memory × threads) value matrix it maintains the sparse set of
// Pareto-optimal DP states — the reachable (mem, threads) footprints that
// are not dominated by a cheaper-or-equal footprint of at-least-equal value.
// Every decision the reference makes is a strict `>` comparison between two
// corner values dp(a, b) = max{value : footprint ≤ (a, b)}, and a corner
// query is answered exactly by the frontier, so the sparse solver reproduces
// the reference's selections and tie-breaks identically (see
// TestSolverMatchesReference). On scheduler workloads the frontier stays
// tiny — Eq. 1 values are near-uniform, so almost every state is dominated —
// turning the O(n·W·T) dense sweep into a few hundred state merges.
//
// Two outcome-preserving shortcuts ride on top:
//
//   - if every feasible item fits together, the DP is skipped outright and
//     the positive-value items are selected directly (the common tail-of-run
//     case: a near-empty queue against a near-empty device);
//   - zero-value items are skipped (a strict `>` improvement test can never
//     take them; the reference leaves their take rows false too).
type Solver struct {
	cur      []state // current Pareto frontier, sorted by (mem, threads)
	shift    []state // scratch: frontier shifted by the item being merged
	merged   []state // scratch: cur ∪ shift before dominance pruning
	stair    []state // scratch: (threads, value) staircase for pruning
	hist     []state // concatenated pre-item frontier snapshots
	histOff  []int   // 2 ints per item: snapshot offset/len (-1 len: skipped)
	weights  []int
	tweights []int
	// fast records whether the most recent Solve took the all-fits fast
	// path. Kept on the Solver (not in Result) so Result stays bit-for-bit
	// comparable against SolveReference's.
	fast bool
}

// state is one Pareto-optimal DP state: the best value v over subsets whose
// rounded footprint is exactly (m memory units, t thread units). The empty
// subset (0, 0, 0) is always present and never dominated.
type state struct {
	m, t int
	v    int64
}

// NewSolver returns an empty Solver; buffers grow on first use.
func NewSolver() *Solver { return &Solver{} }

// TookFastPath reports whether the most recent Solve skipped the DP via the
// all-fits fast path (observability; see internal/obs).
func (s *Solver) TookFastPath() bool { return s.fast }

// Solve solves one instance, reusing the Solver's buffers.
func (s *Solver) Solve(cfg Config, items []Item) Result {
	cfg = cfg.withDefaults()
	validate(items)
	s.fast = false
	if cfg.MemCapacity <= 0 || len(items) == 0 {
		return Result{}
	}
	if cfg.ThreadCapacity > 0 {
		return s.solve2D(cfg, items)
	}
	return s.solve1D(cfg, items)
}

// growInts returns an *uninitialized* slice of length n (callers overwrite
// every element).
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// solve1D solves the paper's memory-only knapsack (no thread dimension).
func (s *Solver) solve1D(cfg Config, items []Item) Result {
	W := int(cfg.MemCapacity / cfg.MemGranularity) // capacity rounded down: conservative
	if W == 0 {
		return Result{}
	}
	n := len(items)
	s.weights = growInts(s.weights, n)
	sumW := 0
	for i, it := range items {
		w := ceilDiv(int(it.Mem), int(cfg.MemGranularity))
		s.weights[i] = w
		if w > W {
			continue
		}
		sumW += w
	}
	if sumW <= W {
		// Every feasible item fits together: no packing decision to make.
		s.fast = true
		return takeAllFeasible(items, s.weights, nil, W, 0)
	}
	// With tweights nil every thread weight is 0 and the thread budget 0 is
	// never binding, so the sparse core degenerates to the 1-D recurrence.
	return s.solveSparse(items, s.weights, nil, W, 0)
}

// solve2D bounds both memory and total threads:
// dp[m][t] = best value with memory budget m and thread budget t.
func (s *Solver) solve2D(cfg Config, items []Item) Result {
	W := int(cfg.MemCapacity / cfg.MemGranularity)
	T := int(cfg.ThreadCapacity / cfg.ThreadGranularity) // rounded down: conservative
	if W == 0 || T == 0 {
		return Result{}
	}
	n := len(items)
	s.weights = growInts(s.weights, n)
	s.tweights = growInts(s.tweights, n)
	sumW, sumT := 0, 0
	for i, it := range items {
		w := ceilDiv(int(it.Mem), int(cfg.MemGranularity))
		th := int(it.Threads)
		if th < 0 {
			th = 0
		}
		tw := ceilDiv(th, int(cfg.ThreadGranularity))
		s.weights[i] = w
		s.tweights[i] = tw
		if w > W || tw > T {
			continue
		}
		sumW += w
		sumT += tw
	}
	if sumW <= W && sumT <= T {
		s.fast = true
		return takeAllFeasible(items, s.weights, s.tweights, W, T)
	}
	return s.solveSparse(items, s.weights, s.tweights, W, T)
}

// solveSparse runs the Pareto-frontier DP and reconstructs the selection.
//
// Equivalence with the reference's dense in-place sweep: during the
// reference's descending sweep for item i, both cells it reads still hold
// the previous item's values, so its take bit at (m, t) is set iff
//
//	dp_{i-1}(m−w, t−tw) + v  >  dp_{i-1}(m, t)
//
// where dp_{i-1}(a, b) is the best value over subsets of items[0..i-1] with
// footprint ≤ (a, b) — a corner query the frontier answers exactly (dropping
// dominated states can never change a corner maximum, and states above
// (W, T) can never be selected). The reconstruction below replays the
// reference's descending walk from (W, T) evaluating that inequality
// directly against the frontier snapshot taken before item i was merged.
func (s *Solver) solveSparse(items []Item, weights, tweights []int, W, T int) Result {
	n := len(items)
	s.histOff = growInts(s.histOff, 2*n)
	hist := s.hist[:0]
	cur := append(s.cur[:0], state{})
	for i, it := range items {
		w, tw := weights[i], 0
		if tweights != nil {
			tw = tweights[i]
		}
		if w > W || tw > T || it.Value == 0 {
			s.histOff[2*i+1] = -1
			continue
		}
		s.histOff[2*i] = len(hist)
		s.histOff[2*i+1] = len(cur)
		hist = append(hist, cur...)
		cur = s.mergeItem(cur, w, tw, it.Value, W, T)
	}
	s.hist = hist
	s.cur = cur

	var best int64
	for _, st := range cur {
		if st.v > best {
			best = st.v
		}
	}
	res := Result{Value: best}
	m, t := W, T
	for i := n - 1; i >= 0; i-- {
		plen := s.histOff[2*i+1]
		if plen < 0 {
			continue
		}
		w, tw := weights[i], 0
		if tweights != nil {
			tw = tweights[i]
		}
		if m < w || t < tw {
			continue
		}
		off := s.histOff[2*i]
		prev := hist[off : off+plen]
		if corner(prev, m-w, t-tw)+items[i].Value > corner(prev, m, t) {
			res.Selected = append(res.Selected, i)
			res.Mem += items[i].Mem
			res.Threads += items[i].Threads
			m -= w
			t -= tw
		}
	}
	reverse(res.Selected)
	return res
}

// corner returns dp(a, b) = max{v : state (m, t, v) in P with m ≤ a, t ≤ b}.
// P always contains the empty subset, so the maximum is at least 0.
func corner(P []state, a, b int) int64 {
	var best int64
	for _, st := range P {
		if st.m <= a && st.t <= b && st.v > best {
			best = st.v
		}
	}
	return best
}

// mergeItem folds one item into the frontier: cur ∪ (cur + item), clipped to
// the budgets and pruned to the non-dominated states. cur must be sorted by
// (m, t); the result reuses cur's storage (callers have already snapshotted
// it) and preserves the invariant.
func (s *Solver) mergeItem(cur []state, w, tw int, v int64, W, T int) []state {
	shift := s.shift[:0]
	for _, st := range cur {
		if st.m+w <= W && st.t+tw <= T {
			shift = append(shift, state{st.m + w, st.t + tw, st.v + v})
		}
	}
	s.shift = shift

	// Merge the two frontiers ordered by (m asc, t asc, v desc) so that at
	// equal footprint the better value is seen first by the pruning pass.
	merged := s.merged[:0]
	i, j := 0, 0
	for i < len(cur) && j < len(shift) {
		if stateLess(cur[i], shift[j]) {
			merged = append(merged, cur[i])
			i++
		} else {
			merged = append(merged, shift[j])
			j++
		}
	}
	merged = append(merged, cur[i:]...)
	merged = append(merged, shift[j:]...)
	s.merged = merged

	// Dominance pruning. Walking in (m, t, -v) order, every previously kept
	// state has m ≤ the candidate's, so domination reduces to a (t, v) query
	// over the kept set: is there a kept state with t ≤ cand.t and v ≥
	// cand.v? The staircase holds that set's (t, v) Pareto view — t and v
	// both strictly increasing — so the rightmost entry with t ≤ cand.t
	// carries the best value at-or-under cand.t.
	stair := s.stair[:0]
	out := cur[:0]
	for _, c := range merged {
		kk := sort.Search(len(stair), func(x int) bool { return stair[x].t >= c.t })
		last := kk - 1
		if kk < len(stair) && stair[kk].t == c.t {
			last = kk
		}
		if last >= 0 && stair[last].v >= c.v {
			continue // dominated (or an exact duplicate)
		}
		out = append(out, c)
		// Insert (c.t, c.v): entries with t ≥ c.t and v ≤ c.v are now
		// dominated; with v ascending they form a prefix of stair[kk:].
		drop := kk
		for drop < len(stair) && stair[drop].v <= c.v {
			drop++
		}
		switch {
		case drop == kk: // pure insertion
			stair = append(stair, state{})
			copy(stair[kk+1:], stair[kk:])
		case drop > kk+1: // replace the run with the one new entry
			stair = append(stair[:kk+1], stair[drop:]...)
		}
		stair[kk] = state{t: c.t, v: c.v}
	}
	s.stair = stair
	return out
}

// stateLess orders states by (m asc, t asc, v desc).
func stateLess(a, b state) bool {
	if a.m != b.m {
		return a.m < b.m
	}
	if a.t != b.t {
		return a.t < b.t
	}
	return a.v > b.v
}

// takeAllFeasible implements the all-fits fast path: select every
// individually feasible item with positive value, in index order.
// tweights may be nil for the 1-D solver (no thread dimension).
func takeAllFeasible(items []Item, weights, tweights []int, W, T int) Result {
	var res Result
	for i, it := range items {
		if weights[i] > W {
			continue
		}
		if tweights != nil && tweights[i] > T {
			continue
		}
		if it.Value <= 0 {
			continue
		}
		res.Selected = append(res.Selected, i)
		res.Value += it.Value
		res.Mem += it.Mem
		res.Threads += it.Threads
	}
	return res
}

func reverse(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// MaxCount solves the memory-only knapsack that maximizes the *number* of
// selected items (every item worth 1). The greedy cluster loop uses it as
// the degenerate objective when every candidate has Eq. 1 value zero — the
// high-resource-skew regime, where concurrency still helps via offload
// time-multiplexing (paper Fig. 2) even though no value distinguishes jobs.
func MaxCount(cfg Config, items []Item) Result {
	unit := make([]Item, len(items))
	for i, it := range items {
		unit[i] = Item{Mem: it.Mem, Threads: it.Threads, Value: 1}
	}
	cfg.ThreadCapacity = 0 // memory-only
	res := Solve(cfg, unit)
	// Recompute aggregate value as count for clarity.
	res.Value = int64(len(res.Selected))
	return res
}
