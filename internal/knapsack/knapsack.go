// Package knapsack implements the 0-1 knapsack solvers at the heart of the
// sharing-aware scheduler (paper §IV-C).
//
// Each Xeon Phi coprocessor is modeled as a knapsack whose capacity is the
// device's (free) physical memory; the items are pending jobs weighted by
// their declared memory requirement. The value of a job decreases with its
// thread request (Eq. 1: v = 1 - (t/240)^2) so that maximizing knapsack value
// packs many low-thread jobs together, maximizing concurrency.
//
// Two dynamic programs are provided, selected by Config:
//
//   - a classic 1-D dynamic program over memory, as described in the paper's
//     complexity analysis (O(n·w) with w = capacity/granularity, e.g.
//     8 GB / 50 MB = 164 memory units);
//   - a 2-D dynamic program over (memory, threads) that additionally bounds
//     the total thread request of the selected set. The paper expresses the
//     thread bound by zeroing the value of oversubscribed sets; bounding the
//     DP state is the standard equivalent formulation and avoids enumerating
//     sets at all.
//
// The production entry point is Solver, which reuses its DP buffers across
// calls so that a scheduler solving thousands of knapsacks per run does not
// allocate per solve; the package-level Solve draws Solvers from a pool for
// one-off callers. SolveReference is the original per-call-allocating
// implementation, kept verbatim as the correctness oracle: Solver must
// produce bit-for-bit identical results (see TestSolverMatchesReference),
// because any divergence would change simulated scheduling outcomes.
//
// Values are non-negative scaled integers. Callers that want the paper's
// "as many jobs as possible" tie-break add a small per-item bonus via
// CountBonus so that among equal-value sets the larger one wins.
package knapsack

import (
	"fmt"
	"sync"

	"phishare/internal/units"
)

// Item is one candidate job for a knapsack.
type Item struct {
	Mem     units.MB      // declared coprocessor memory requirement (weight)
	Threads units.Threads // declared thread requirement
	Value   int64         // non-negative scaled value
}

// Config describes one knapsack instance.
type Config struct {
	// MemCapacity is the knapsack capacity: the device memory (or the freed
	// portion of it, for the incremental knapsacks of Fig. 4).
	MemCapacity units.MB
	// MemGranularity is the memory quantum of the DP. The paper uses 50 MB.
	// Item weights are rounded *up* to the granularity, so a solution is
	// always feasible at byte resolution. Defaults to 50 MB if zero.
	MemGranularity units.MB
	// ThreadCapacity bounds the total threads of the selected set. Zero (or
	// negative) disables the thread dimension and yields the 1-D solver.
	ThreadCapacity units.Threads
	// ThreadGranularity is the thread quantum of the 2-D DP. Item thread
	// requests are rounded up, the capacity is rounded down, keeping
	// solutions conservative. Defaults to 4 (one Xeon Phi core's worth).
	ThreadGranularity units.Threads
}

func (c Config) withDefaults() Config {
	if c.MemGranularity <= 0 {
		c.MemGranularity = 50
	}
	if c.ThreadGranularity <= 0 {
		c.ThreadGranularity = 4
	}
	return c
}

// Result is a solved knapsack.
type Result struct {
	Selected []int         // indices into the item slice, ascending
	Value    int64         // total value of the selected set
	Mem      units.MB      // total declared memory of the selected set
	Threads  units.Threads // total declared threads of the selected set
}

// Eq1Scale is the integer scale applied to the paper's Eq. 1 value, which
// lies in [0, 1]. With scale 1000, value resolution is 0.001.
const Eq1Scale = 1000

// Eq1Value computes the paper's Eq. 1 job value, scaled to an integer:
//
//	v = round((1 - (t/T)^2) · Eq1Scale)
//
// T is the device hardware thread count (240 for the Xeon Phi 5110P).
// Requests above T (which COSMIC would refuse to run concurrently with
// anything) clamp to value 0; non-positive T panics.
func Eq1Value(t, T units.Threads) int64 {
	if T <= 0 {
		panic(fmt.Sprintf("knapsack: non-positive hardware thread count %d", T))
	}
	if t < 0 {
		t = 0
	}
	if t > T {
		t = T
	}
	frac := float64(t) / float64(T)
	return int64((1-frac*frac)*Eq1Scale + 0.5)
}

// CountBonus returns the per-item bonus that implements the paper's
// "pack as many jobs as possible" objective as a tie-break under the Eq. 1
// value: each item is worth an extra 1 while true value differences are
// scaled by maxItems+1, so a 0.001 difference in total Eq. 1 value always
// dominates any difference in set size.
//
// Callers combine: item.Value = Eq1Value(t, T)*CountBonusScale(maxItems) + 1.
func CountBonusScale(maxItems int) int64 {
	return int64(maxItems) + 1
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// validate rejects malformed items. Items with negative Value or
// non-positive Mem panic: a zero-memory job would let the DP pack infinitely
// many copies of nothing, which is always a caller bug in this system (every
// real offload job reserves device memory).
func validate(items []Item) {
	for i, it := range items {
		if it.Value < 0 {
			panic(fmt.Sprintf("knapsack: item %d has negative value %d", i, it.Value))
		}
		if it.Mem <= 0 {
			panic(fmt.Sprintf("knapsack: item %d has non-positive memory %v", i, it.Mem))
		}
	}
}

// solverPool recycles Solvers for the convenience Solve entry point, so that
// one-shot callers still amortize the DP buffers across calls.
var solverPool = sync.Pool{New: func() any { return NewSolver() }}

// Solve solves the knapsack instance and returns the best item set.
//
// The objective is maximum total Value subject to the memory capacity and
// (when ThreadCapacity > 0) the thread capacity. Items whose individual
// weight exceeds a capacity are never selected.
//
// Solve is a thin wrapper over a pooled Solver; hot loops that solve many
// instances back to back (the scheduler's greedy per-device loop) should
// hold their own Solver instead.
func Solve(cfg Config, items []Item) Result {
	s := solverPool.Get().(*Solver)
	res := s.Solve(cfg, items)
	solverPool.Put(s)
	return res
}

// Solver owns grow-only DP buffers that are reused across calls, so a
// planning round of many knapsacks allocates only its Result slices. A
// Solver is not safe for concurrent use; each simulation (goroutine) holds
// its own.
//
// The Solver is bit-for-bit equivalent to SolveReference: same Value, same
// Selected indices, same tie-breaks. The optimizations are therefore limited
// to representation and provably outcome-preserving pruning:
//
//   - the take matrix is a bitset (one bit per DP state per item) instead of
//     one bool slice per item;
//   - budgets are capped at the total weight of individually feasible items
//     (DP states beyond that sum are constant, so they are never
//     materialized; reconstruction starts at the capped corner);
//   - if every feasible item fits together, the DP is skipped outright and
//     the positive-value items are selected directly (the common tail-of-run
//     case: a near-empty queue against a near-empty device);
//   - zero-value items are skipped in the DP sweep (a strict `>` improvement
//     test can never take them; the reference leaves their rows false too).
type Solver struct {
	dp       []int64
	take     []uint64
	weights  []int
	tweights []int
	// fast records whether the most recent Solve took the all-fits fast
	// path. Kept on the Solver (not in Result) so Result stays bit-for-bit
	// comparable against SolveReference's.
	fast bool
}

// NewSolver returns an empty Solver; buffers grow on first use.
func NewSolver() *Solver { return &Solver{} }

// TookFastPath reports whether the most recent Solve skipped the DP via the
// all-fits fast path (observability; see internal/obs).
func (s *Solver) TookFastPath() bool { return s.fast }

// Solve solves one instance, reusing the Solver's buffers.
func (s *Solver) Solve(cfg Config, items []Item) Result {
	cfg = cfg.withDefaults()
	validate(items)
	s.fast = false
	if cfg.MemCapacity <= 0 || len(items) == 0 {
		return Result{}
	}
	if cfg.ThreadCapacity > 0 {
		return s.solve2D(cfg, items)
	}
	return s.solve1D(cfg, items)
}

// growInt64 returns a zeroed slice of length n backed by buf when possible.
func growInt64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

func growUint64(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// growInts returns an *uninitialized* slice of length n (callers overwrite
// every element).
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// solve1D is the paper's O(n·w) dynamic program over memory units, on
// reused buffers with a bitset take matrix.
func (s *Solver) solve1D(cfg Config, items []Item) Result {
	W := int(cfg.MemCapacity / cfg.MemGranularity) // capacity rounded down: conservative
	if W == 0 {
		return Result{}
	}
	n := len(items)
	s.weights = growInts(s.weights, n)
	sumW := 0
	for i, it := range items {
		w := ceilDiv(int(it.Mem), int(cfg.MemGranularity))
		s.weights[i] = w
		if w > W {
			continue
		}
		sumW += w
	}
	if sumW <= W {
		// Every feasible item fits together: no packing decision to make.
		s.fast = true
		return takeAllFeasible(items, s.weights, nil, W, 0)
	}
	// States beyond the total feasible weight are constant; never
	// materialize them (sumW > W here, so this is a no-op for 1-D, kept for
	// symmetry with solve2D).
	Wc := W

	states := Wc + 1
	stride := (states + 63) >> 6
	s.dp = growInt64(s.dp, states)
	s.take = growUint64(s.take, n*stride)
	dp, take := s.dp, s.take
	for i, it := range items {
		w := s.weights[i]
		if w > Wc || it.Value == 0 {
			continue
		}
		base := i * stride
		for m := Wc; m >= w; m-- {
			if cand := dp[m-w] + it.Value; cand > dp[m] {
				dp[m] = cand
				take[base+(m>>6)] |= 1 << (uint(m) & 63)
			}
		}
	}

	res := Result{Value: dp[Wc]}
	m := Wc
	for i := n - 1; i >= 0; i-- {
		if take[i*stride+(m>>6)]&(1<<(uint(m)&63)) != 0 {
			res.Selected = append(res.Selected, i)
			res.Mem += items[i].Mem
			res.Threads += items[i].Threads
			m -= s.weights[i]
		}
	}
	reverse(res.Selected)
	return res
}

// solve2D bounds both memory and total threads:
// dp[m][t] = best value with memory budget m and thread budget t.
func (s *Solver) solve2D(cfg Config, items []Item) Result {
	W := int(cfg.MemCapacity / cfg.MemGranularity)
	T := int(cfg.ThreadCapacity / cfg.ThreadGranularity) // rounded down: conservative
	if W == 0 || T == 0 {
		return Result{}
	}
	n := len(items)
	s.weights = growInts(s.weights, n)
	s.tweights = growInts(s.tweights, n)
	sumW, sumT := 0, 0
	for i, it := range items {
		w := ceilDiv(int(it.Mem), int(cfg.MemGranularity))
		th := int(it.Threads)
		if th < 0 {
			th = 0
		}
		tw := ceilDiv(th, int(cfg.ThreadGranularity))
		s.weights[i] = w
		s.tweights[i] = tw
		if w > W || tw > T {
			continue
		}
		sumW += w
		sumT += tw
	}
	if sumW <= W && sumT <= T {
		s.fast = true
		return takeAllFeasible(items, s.weights, s.tweights, W, T)
	}
	// DP states beyond the total feasible weight are constant; cap the
	// budget axes there and reconstruct from the capped corner.
	Wc, Tc := W, T
	if sumW < Wc {
		Wc = sumW
	}
	if sumT < Tc {
		Tc = sumT
	}

	cols := Tc + 1
	states := (Wc + 1) * cols
	stride := (states + 63) >> 6
	s.dp = growInt64(s.dp, states)
	s.take = growUint64(s.take, n*stride)
	dp, take := s.dp, s.take
	for i, it := range items {
		w, tw := s.weights[i], s.tweights[i]
		if w > Wc || tw > Tc || it.Value == 0 {
			continue
		}
		rowBase := i * stride
		v := it.Value
		for m := Wc; m >= w; m-- {
			base := m * cols
			prev := (m-w)*cols - tw
			for t := Tc; t >= tw; t-- {
				if cand := dp[prev+t] + v; cand > dp[base+t] {
					dp[base+t] = cand
					st := base + t
					take[rowBase+(st>>6)] |= 1 << (uint(st) & 63)
				}
			}
		}
	}

	res := Result{Value: dp[Wc*cols+Tc]}
	m, t := Wc, Tc
	for i := n - 1; i >= 0; i-- {
		st := m*cols + t
		if take[i*stride+(st>>6)]&(1<<(uint(st)&63)) != 0 {
			res.Selected = append(res.Selected, i)
			res.Mem += items[i].Mem
			res.Threads += items[i].Threads
			m -= s.weights[i]
			t -= s.tweights[i]
		}
	}
	reverse(res.Selected)
	return res
}

// takeAllFeasible implements the all-fits fast path: select every
// individually feasible item with positive value, in index order.
// tweights may be nil for the 1-D solver (no thread dimension).
func takeAllFeasible(items []Item, weights, tweights []int, W, T int) Result {
	var res Result
	for i, it := range items {
		if weights[i] > W {
			continue
		}
		if tweights != nil && tweights[i] > T {
			continue
		}
		if it.Value <= 0 {
			continue
		}
		res.Selected = append(res.Selected, i)
		res.Value += it.Value
		res.Mem += it.Mem
		res.Threads += it.Threads
	}
	return res
}

func reverse(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// MaxCount solves the memory-only knapsack that maximizes the *number* of
// selected items (every item worth 1). The greedy cluster loop uses it as
// the degenerate objective when every candidate has Eq. 1 value zero — the
// high-resource-skew regime, where concurrency still helps via offload
// time-multiplexing (paper Fig. 2) even though no value distinguishes jobs.
func MaxCount(cfg Config, items []Item) Result {
	unit := make([]Item, len(items))
	for i, it := range items {
		unit[i] = Item{Mem: it.Mem, Threads: it.Threads, Value: 1}
	}
	cfg.ThreadCapacity = 0 // memory-only
	res := Solve(cfg, unit)
	// Recompute aggregate value as count for clarity.
	res.Value = int64(len(res.Selected))
	return res
}
