// Package knapsack implements the 0-1 knapsack solvers at the heart of the
// sharing-aware scheduler (paper §IV-C).
//
// Each Xeon Phi coprocessor is modeled as a knapsack whose capacity is the
// device's (free) physical memory; the items are pending jobs weighted by
// their declared memory requirement. The value of a job decreases with its
// thread request (Eq. 1: v = 1 - (t/240)^2) so that maximizing knapsack value
// packs many low-thread jobs together, maximizing concurrency.
//
// Two solvers are provided:
//
//   - a classic 1-D dynamic program over memory, as described in the paper's
//     complexity analysis (O(n·w) with w = capacity/granularity, e.g.
//     8 GB / 50 MB = 164 memory units);
//   - a 2-D dynamic program over (memory, threads) that additionally bounds
//     the total thread request of the selected set. The paper expresses the
//     thread bound by zeroing the value of oversubscribed sets; bounding the
//     DP state is the standard equivalent formulation and avoids enumerating
//     sets at all.
//
// Values are non-negative scaled integers. Callers that want the paper's
// "as many jobs as possible" tie-break add a small per-item bonus via
// CountBonus so that among equal-value sets the larger one wins.
package knapsack

import (
	"fmt"

	"phishare/internal/units"
)

// Item is one candidate job for a knapsack.
type Item struct {
	Mem     units.MB      // declared coprocessor memory requirement (weight)
	Threads units.Threads // declared thread requirement
	Value   int64         // non-negative scaled value
}

// Config describes one knapsack instance.
type Config struct {
	// MemCapacity is the knapsack capacity: the device memory (or the freed
	// portion of it, for the incremental knapsacks of Fig. 4).
	MemCapacity units.MB
	// MemGranularity is the memory quantum of the DP. The paper uses 50 MB.
	// Item weights are rounded *up* to the granularity, so a solution is
	// always feasible at byte resolution. Defaults to 50 MB if zero.
	MemGranularity units.MB
	// ThreadCapacity bounds the total threads of the selected set. Zero (or
	// negative) disables the thread dimension and yields the 1-D solver.
	ThreadCapacity units.Threads
	// ThreadGranularity is the thread quantum of the 2-D DP. Item thread
	// requests are rounded up, the capacity is rounded down, keeping
	// solutions conservative. Defaults to 4 (one Xeon Phi core's worth).
	ThreadGranularity units.Threads
}

func (c Config) withDefaults() Config {
	if c.MemGranularity <= 0 {
		c.MemGranularity = 50
	}
	if c.ThreadGranularity <= 0 {
		c.ThreadGranularity = 4
	}
	return c
}

// Result is a solved knapsack.
type Result struct {
	Selected []int         // indices into the item slice, ascending
	Value    int64         // total value of the selected set
	Mem      units.MB      // total declared memory of the selected set
	Threads  units.Threads // total declared threads of the selected set
}

// Eq1Scale is the integer scale applied to the paper's Eq. 1 value, which
// lies in [0, 1]. With scale 1000, value resolution is 0.001.
const Eq1Scale = 1000

// Eq1Value computes the paper's Eq. 1 job value, scaled to an integer:
//
//	v = round((1 - (t/T)^2) · Eq1Scale)
//
// T is the device hardware thread count (240 for the Xeon Phi 5110P).
// Requests above T (which COSMIC would refuse to run concurrently with
// anything) clamp to value 0; non-positive T panics.
func Eq1Value(t, T units.Threads) int64 {
	if T <= 0 {
		panic(fmt.Sprintf("knapsack: non-positive hardware thread count %d", T))
	}
	if t < 0 {
		t = 0
	}
	if t > T {
		t = T
	}
	frac := float64(t) / float64(T)
	return int64((1-frac*frac)*Eq1Scale + 0.5)
}

// CountBonus returns the per-item bonus that implements the paper's
// "pack as many jobs as possible" objective as a tie-break under the Eq. 1
// value: each item is worth an extra 1 while true value differences are
// scaled by maxItems+1, so a 0.001 difference in total Eq. 1 value always
// dominates any difference in set size.
//
// Callers combine: item.Value = Eq1Value(t, T)*CountBonusScale(maxItems) + 1.
func CountBonusScale(maxItems int) int64 {
	return int64(maxItems) + 1
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Solve solves the knapsack instance and returns the best item set.
//
// The objective is maximum total Value subject to the memory capacity and
// (when ThreadCapacity > 0) the thread capacity. Items whose individual
// weight exceeds a capacity are never selected. Items with negative Value
// or non-positive Mem are rejected with a panic: a zero-memory job would let
// the DP pack infinitely many copies of nothing, which is always a caller
// bug in this system (every real offload job reserves device memory).
func Solve(cfg Config, items []Item) Result {
	cfg = cfg.withDefaults()
	for i, it := range items {
		if it.Value < 0 {
			panic(fmt.Sprintf("knapsack: item %d has negative value %d", i, it.Value))
		}
		if it.Mem <= 0 {
			panic(fmt.Sprintf("knapsack: item %d has non-positive memory %v", i, it.Mem))
		}
	}
	if cfg.MemCapacity <= 0 || len(items) == 0 {
		return Result{}
	}
	if cfg.ThreadCapacity > 0 {
		return solve2D(cfg, items)
	}
	return solve1D(cfg, items)
}

// solve1D is the paper's O(n·w) dynamic program over memory units.
func solve1D(cfg Config, items []Item) Result {
	W := int(cfg.MemCapacity / cfg.MemGranularity) // capacity rounded down: conservative
	if W == 0 {
		return Result{}
	}
	weights := make([]int, len(items))
	for i, it := range items {
		weights[i] = ceilDiv(int(it.Mem), int(cfg.MemGranularity))
	}

	// dp[m] = best value using a prefix of items with memory budget m.
	// take[i] is the DP row of "item i taken at budget m" decisions.
	dp := make([]int64, W+1)
	take := make([][]bool, len(items))
	for i, it := range items {
		w := weights[i]
		row := make([]bool, W+1)
		take[i] = row
		if w > W {
			continue
		}
		for m := W; m >= w; m-- {
			if cand := dp[m-w] + it.Value; cand > dp[m] {
				dp[m] = cand
				row[m] = true
			}
		}
	}

	return reconstruct1D(items, weights, take, W, dp[W])
}

func reconstruct1D(items []Item, weights []int, take [][]bool, W int, best int64) Result {
	res := Result{Value: best}
	m := W
	for i := len(items) - 1; i >= 0; i-- {
		if take[i][m] {
			res.Selected = append(res.Selected, i)
			res.Mem += items[i].Mem
			res.Threads += items[i].Threads
			m -= weights[i]
		}
	}
	reverse(res.Selected)
	return res
}

// solve2D bounds both memory and total threads:
// dp[m][t] = best value with memory budget m and thread budget t.
func solve2D(cfg Config, items []Item) Result {
	W := int(cfg.MemCapacity / cfg.MemGranularity)
	T := int(cfg.ThreadCapacity / cfg.ThreadGranularity) // rounded down: conservative
	if W == 0 || T == 0 {
		return Result{}
	}
	weights := make([]int, len(items))
	tweights := make([]int, len(items))
	for i, it := range items {
		weights[i] = ceilDiv(int(it.Mem), int(cfg.MemGranularity))
		th := int(it.Threads)
		if th < 0 {
			th = 0
		}
		tweights[i] = ceilDiv(th, int(cfg.ThreadGranularity))
	}

	cols := T + 1
	dp := make([]int64, (W+1)*cols) // dp[m*cols+t]
	take := make([][]bool, len(items))
	for i, it := range items {
		w, tw := weights[i], tweights[i]
		row := make([]bool, (W+1)*cols)
		take[i] = row
		if w > W || tw > T {
			continue
		}
		for m := W; m >= w; m-- {
			base := m * cols
			prev := (m - w) * cols
			for t := T; t >= tw; t-- {
				if cand := dp[prev+t-tw] + it.Value; cand > dp[base+t] {
					dp[base+t] = cand
					row[base+t] = true
				}
			}
		}
	}

	res := Result{Value: dp[W*cols+T]}
	m, t := W, T
	for i := len(items) - 1; i >= 0; i-- {
		if take[i][m*cols+t] {
			res.Selected = append(res.Selected, i)
			res.Mem += items[i].Mem
			res.Threads += items[i].Threads
			m -= weights[i]
			t -= tweights[i]
		}
	}
	reverse(res.Selected)
	return res
}

func reverse(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// MaxCount solves the memory-only knapsack that maximizes the *number* of
// selected items (every item worth 1). The greedy cluster loop uses it as
// the degenerate objective when every candidate has Eq. 1 value zero — the
// high-resource-skew regime, where concurrency still helps via offload
// time-multiplexing (paper Fig. 2) even though no value distinguishes jobs.
func MaxCount(cfg Config, items []Item) Result {
	unit := make([]Item, len(items))
	for i, it := range items {
		unit[i] = Item{Mem: it.Mem, Threads: it.Threads, Value: 1}
	}
	cfg.ThreadCapacity = 0 // memory-only
	res := Solve(cfg, unit)
	// Recompute aggregate value as count for clarity.
	res.Value = int64(len(res.Selected))
	return res
}
