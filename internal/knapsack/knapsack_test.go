package knapsack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"phishare/internal/units"
)

func TestEq1Value(t *testing.T) {
	cases := []struct {
		threads units.Threads
		want    int64
	}{
		{0, 1000},
		{60, 938},  // 1 - (60/240)^2 = 0.9375
		{120, 750}, // 1 - 0.25
		{180, 438}, // 1 - 0.5625
		{240, 0},
		{300, 0},    // clamps above T
		{-10, 1000}, // clamps below 0
	}
	for _, c := range cases {
		if got := Eq1Value(c.threads, 240); got != c.want {
			t.Errorf("Eq1Value(%d, 240) = %d, want %d", c.threads, got, c.want)
		}
	}
}

func TestEq1ValueMonotone(t *testing.T) {
	prev := Eq1Value(0, 240)
	for th := units.Threads(1); th <= 240; th++ {
		v := Eq1Value(th, 240)
		if v > prev {
			t.Fatalf("Eq1Value not non-increasing at %d: %d > %d", th, v, prev)
		}
		prev = v
	}
}

func TestEq1ValuePanicsOnZeroT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eq1Value with T=0 did not panic")
		}
	}()
	Eq1Value(60, 0)
}

func TestSolveEmpty(t *testing.T) {
	res := Solve(Config{MemCapacity: 8192}, nil)
	if len(res.Selected) != 0 || res.Value != 0 {
		t.Errorf("empty solve = %+v", res)
	}
}

func TestSolveZeroCapacity(t *testing.T) {
	res := Solve(Config{MemCapacity: 0}, []Item{{Mem: 100, Value: 5}})
	if len(res.Selected) != 0 {
		t.Errorf("zero-capacity solve selected %v", res.Selected)
	}
}

func TestSolveSingleItemFits(t *testing.T) {
	res := Solve(Config{MemCapacity: 500}, []Item{{Mem: 300, Threads: 60, Value: 7}})
	if len(res.Selected) != 1 || res.Selected[0] != 0 {
		t.Fatalf("selected %v, want [0]", res.Selected)
	}
	if res.Value != 7 || res.Mem != 300 || res.Threads != 60 {
		t.Errorf("result %+v", res)
	}
}

func TestSolveSingleItemTooBig(t *testing.T) {
	res := Solve(Config{MemCapacity: 200}, []Item{{Mem: 300, Value: 7}})
	if len(res.Selected) != 0 {
		t.Errorf("oversized item selected: %v", res.Selected)
	}
}

func TestSolvePrefersHigherValue(t *testing.T) {
	// Capacity for only one of the two.
	items := []Item{
		{Mem: 600, Value: 3},
		{Mem: 600, Value: 9},
	}
	res := Solve(Config{MemCapacity: 1000}, items)
	if len(res.Selected) != 1 || res.Selected[0] != 1 {
		t.Errorf("selected %v, want [1]", res.Selected)
	}
}

func TestSolvePicksComboOverSingle(t *testing.T) {
	items := []Item{
		{Mem: 1000, Value: 10},
		{Mem: 500, Value: 6},
		{Mem: 500, Value: 6},
	}
	res := Solve(Config{MemCapacity: 1000}, items)
	if res.Value != 12 || len(res.Selected) != 2 {
		t.Errorf("result %+v, want the two small items (value 12)", res)
	}
}

func TestMemGranularityRoundsWeightsUp(t *testing.T) {
	// Two 260 MB items round to 300 MB each at 50 MB granularity, so only
	// one fits in 550 MB even though 2*260 = 520 <= 550.
	items := []Item{{Mem: 260, Value: 1}, {Mem: 260, Value: 1}}
	res := Solve(Config{MemCapacity: 550, MemGranularity: 50}, items)
	if len(res.Selected) != 1 {
		t.Errorf("selected %d items, want 1 (conservative rounding)", len(res.Selected))
	}
}

func TestThreadCapacityEnforced(t *testing.T) {
	// Three 120-thread jobs, plenty of memory: only two fit 240 threads.
	items := []Item{
		{Mem: 100, Threads: 120, Value: 5},
		{Mem: 100, Threads: 120, Value: 5},
		{Mem: 100, Threads: 120, Value: 5},
	}
	res := Solve(Config{MemCapacity: 8192, ThreadCapacity: 240}, items)
	if len(res.Selected) != 2 {
		t.Errorf("selected %d items, want 2 under 240-thread cap", len(res.Selected))
	}
	if res.Threads != 240 {
		t.Errorf("total threads %d, want 240", res.Threads)
	}
}

func TestThreadCapacityZeroMeans1D(t *testing.T) {
	items := []Item{
		{Mem: 100, Threads: 240, Value: 1},
		{Mem: 100, Threads: 240, Value: 1},
	}
	res := Solve(Config{MemCapacity: 8192}, items)
	if len(res.Selected) != 2 {
		t.Errorf("1-D solve selected %d, want both items regardless of threads", len(res.Selected))
	}
}

func TestSolve2DPrefersManySmallJobs(t *testing.T) {
	// The Eq.1-valued mix from the paper: low-thread jobs should win.
	mk := func(mem units.MB, th units.Threads) Item {
		return Item{Mem: mem, Threads: th, Value: Eq1Value(th, 240)*CountBonusScale(8) + 1}
	}
	items := []Item{
		mk(2000, 240), // big CFD job
		mk(500, 60),   // K-means-like
		mk(500, 60),
		mk(600, 120),
		mk(700, 180),
	}
	res := Solve(Config{MemCapacity: 4096, ThreadCapacity: 240}, items)
	// Best concurrency: the two 60-thread jobs plus the 120-thread job
	// (threads 240, huge value); the 240-thread job should never appear.
	for _, idx := range res.Selected {
		if idx == 0 {
			t.Errorf("240-thread job selected alongside others: %v", res.Selected)
		}
	}
	if len(res.Selected) < 3 {
		t.Errorf("selected %v, want at least the three low-thread jobs", res.Selected)
	}
}

func TestCountBonusBreaksTies(t *testing.T) {
	// Same total Eq.1 value: one 120-thread job (750) vs unattainable —
	// instead compare two sets of equal value where one has more items.
	scale := CountBonusScale(4)
	items := []Item{
		{Mem: 1000, Threads: 0, Value: 1000*scale + 1}, // one job of value 1000
		{Mem: 500, Threads: 0, Value: 500*scale + 1},   // two jobs of value 500 each
		{Mem: 500, Threads: 0, Value: 500*scale + 1},
	}
	res := Solve(Config{MemCapacity: 1000}, items)
	if len(res.Selected) != 2 {
		t.Errorf("selected %v, want the two-item set on count tie-break", res.Selected)
	}
}

func TestSelectedAscending(t *testing.T) {
	items := []Item{
		{Mem: 100, Value: 1}, {Mem: 100, Value: 1}, {Mem: 100, Value: 1},
	}
	res := Solve(Config{MemCapacity: 8192}, items)
	for i := 1; i < len(res.Selected); i++ {
		if res.Selected[i] <= res.Selected[i-1] {
			t.Fatalf("Selected not ascending: %v", res.Selected)
		}
	}
}

func TestMaxCount(t *testing.T) {
	items := []Item{
		{Mem: 3000, Threads: 240, Value: 0},
		{Mem: 1000, Threads: 240, Value: 0},
		{Mem: 1000, Threads: 240, Value: 0},
		{Mem: 1000, Threads: 240, Value: 0},
	}
	res := MaxCount(Config{MemCapacity: 3200}, items)
	if len(res.Selected) != 3 || res.Value != 3 {
		t.Errorf("MaxCount = %+v, want the three 1000 MB jobs", res)
	}
}

func TestPanicsOnNegativeValue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative value did not panic")
		}
	}()
	Solve(Config{MemCapacity: 100}, []Item{{Mem: 50, Value: -1}})
}

func TestPanicsOnZeroMem(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-memory item did not panic")
		}
	}()
	Solve(Config{MemCapacity: 100}, []Item{{Mem: 0, Value: 1}})
}

// bruteForce enumerates all subsets (n <= ~16) under the same rounded-weight
// model as the DP and returns the best achievable value.
func bruteForce(cfg Config, items []Item) int64 {
	cfg = cfg.withDefaults()
	W := int(cfg.MemCapacity / cfg.MemGranularity)
	T := 1 << 62
	if cfg.ThreadCapacity > 0 {
		T = int(cfg.ThreadCapacity / cfg.ThreadGranularity)
	}
	var best int64
	n := len(items)
	for mask := 0; mask < 1<<n; mask++ {
		var v int64
		w, th := 0, 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += items[i].Value
				w += ceilDiv(int(items[i].Mem), int(cfg.MemGranularity))
				th += ceilDiv(int(items[i].Threads), int(cfg.ThreadGranularity))
			}
		}
		if w <= W && th <= T && v > best {
			best = v
		}
	}
	return best
}

func TestSolveMatchesBruteForce1D(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(10)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Mem:   units.MB(50 + r.Intn(2000)),
				Value: int64(r.Intn(1000)),
			}
		}
		cfg := Config{MemCapacity: units.MB(500 + r.Intn(6000))}
		got := Solve(cfg, items)
		want := bruteForce(cfg, items)
		if got.Value != want {
			t.Fatalf("trial %d: Solve value %d != brute force %d (cfg %+v items %+v)",
				trial, got.Value, want, cfg, items)
		}
	}
}

func TestSolveMatchesBruteForce2D(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	for trial := 0; trial < 150; trial++ {
		n := 1 + r.Intn(9)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Mem:     units.MB(50 + r.Intn(2000)),
				Threads: units.Threads(4 * (1 + r.Intn(60))),
				Value:   int64(r.Intn(1000)),
			}
		}
		cfg := Config{
			MemCapacity:    units.MB(500 + r.Intn(6000)),
			ThreadCapacity: 240,
		}
		got := Solve(cfg, items)
		want := bruteForce(cfg, items)
		if got.Value != want {
			t.Fatalf("trial %d: Solve value %d != brute force %d (cfg %+v items %+v)",
				trial, got.Value, want, cfg, items)
		}
	}
}

// TestSolutionFeasibility is a property test: whatever the inputs, the
// selected set respects both capacities and the reported totals.
func TestSolutionFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Mem:     units.MB(1 + r.Intn(4000)),
				Threads: units.Threads(r.Intn(241)),
				Value:   int64(r.Intn(100000)),
			}
		}
		cfg := Config{
			MemCapacity:    units.MB(1 + r.Intn(8192)),
			ThreadCapacity: units.Threads(r.Intn(300)),
		}
		res := Solve(cfg, items)
		var mem units.MB
		var th units.Threads
		var val int64
		for _, idx := range res.Selected {
			mem += items[idx].Mem
			th += items[idx].Threads
			val += items[idx].Value
		}
		if mem != res.Mem || th != res.Threads || val != res.Value {
			return false
		}
		if mem > cfg.MemCapacity {
			return false
		}
		// Thread feasibility at granularity resolution.
		if cfg.ThreadCapacity > 0 && th > cfg.ThreadCapacity {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLargeInstanceRuns(t *testing.T) {
	// 1000 jobs on a full device: must complete quickly (near-linear in n,
	// per the paper's complexity argument).
	items := make([]Item, 1000)
	r := rand.New(rand.NewSource(7))
	for i := range items {
		th := units.Threads(60 * (1 + r.Intn(4)))
		items[i] = Item{
			Mem:     units.MB(300 + r.Intn(3100)),
			Threads: th,
			Value:   Eq1Value(th, 240)*CountBonusScale(1000) + 1,
		}
	}
	res := Solve(Config{MemCapacity: 8192, ThreadCapacity: 240}, items)
	if len(res.Selected) == 0 {
		t.Error("large instance selected nothing")
	}
	if res.Mem > 8192 || res.Threads > 240 {
		t.Errorf("infeasible large solution: %+v", res)
	}
}
