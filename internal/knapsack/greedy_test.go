package knapsack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"phishare/internal/units"
)

func TestGreedyBasics(t *testing.T) {
	items := []Item{
		{Mem: 1000, Value: 10},
		{Mem: 500, Value: 6},
		{Mem: 500, Value: 6},
	}
	res := SolveGreedy(Config{MemCapacity: 1000}, items)
	// Density: 6/500 > 10/1000, so greedy takes both small items.
	if res.Value != 12 || len(res.Selected) != 2 {
		t.Errorf("greedy result %+v", res)
	}
}

func TestGreedyRespectsThreadCap(t *testing.T) {
	items := []Item{
		{Mem: 100, Threads: 120, Value: 5},
		{Mem: 100, Threads: 120, Value: 5},
		{Mem: 100, Threads: 120, Value: 5},
	}
	res := SolveGreedy(Config{MemCapacity: 8192, ThreadCapacity: 240}, items)
	if len(res.Selected) != 2 || res.Threads != 240 {
		t.Errorf("greedy thread cap violated: %+v", res)
	}
}

func TestGreedyEmpty(t *testing.T) {
	if res := SolveGreedy(Config{MemCapacity: 100}, nil); len(res.Selected) != 0 {
		t.Errorf("greedy on empty = %+v", res)
	}
}

func TestGreedySuboptimalCase(t *testing.T) {
	// The classic greedy trap: one dense small item blocks the optimal
	// big item. Capacity 1000: greedy takes the 100 MB/value-3 item
	// (density 0.03) before the 1000 MB/value-20 item (density 0.02),
	// then the big one no longer fits. The DP gets 20.
	items := []Item{
		{Mem: 100, Value: 3},
		{Mem: 1000, Value: 20},
	}
	cfg := Config{MemCapacity: 1000}
	g := SolveGreedy(cfg, items)
	d := Solve(cfg, items)
	if g.Value != 3 {
		t.Errorf("greedy value %d, expected the trap (3)", g.Value)
	}
	if d.Value != 20 {
		t.Errorf("DP value %d, want 20", d.Value)
	}
}

// TestGreedyNeverBeatsDP is the dominance property: on the identical
// rounded instance, the exact DP's value is always >= the heuristic's.
func TestGreedyNeverBeatsDP(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(24)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Mem:     units.MB(50 + r.Intn(3000)),
				Threads: units.Threads(r.Intn(241)),
				Value:   int64(r.Intn(2000)),
			}
		}
		cfg := Config{
			MemCapacity:    units.MB(500 + r.Intn(7700)),
			ThreadCapacity: units.Threads(r.Intn(300)),
		}
		g := SolveGreedy(cfg, items)
		d := Solve(cfg, items)
		return d.Value >= g.Value
	}
	// Seeded so a failure reproduces: the default quick source is
	// time-seeded, which once let a rounding mismatch (thread capacity
	// rounding to zero units) flake in and out of CI.
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestGreedyFeasibility: greedy solutions respect both capacities.
func TestGreedyFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Mem:     units.MB(1 + r.Intn(4000)),
				Threads: units.Threads(r.Intn(241)),
				Value:   int64(r.Intn(1000)),
			}
		}
		cfg := Config{
			MemCapacity:    units.MB(1 + r.Intn(8192)),
			ThreadCapacity: 240,
		}
		res := SolveGreedy(cfg, items)
		var mem units.MB
		var th units.Threads
		for _, idx := range res.Selected {
			mem += items[idx].Mem
			th += items[idx].Threads
		}
		return mem == res.Mem && th == res.Threads &&
			mem <= cfg.MemCapacity && th <= cfg.ThreadCapacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGreedyQualityOnTypicalMix(t *testing.T) {
	// Quantifies why the paper insists on the exact DP. On the 1-D
	// memory-only instance (the fill stage's problem), density greedy is
	// nearly optimal. But on the 2-D instance — where the thread budget,
	// invisible to memory-density ordering, is the scarce resource — the
	// heuristic collapses: it burns the 240-thread budget on poorly chosen
	// widths and can lose more than half the achievable value.
	r := rand.New(rand.NewSource(5))
	worst2D, worst1D := 1.0, 1.0
	for trial := 0; trial < 50; trial++ {
		items := make([]Item, 30)
		for i := range items {
			th := units.Threads(60 * (1 + r.Intn(4)))
			items[i] = Item{
				Mem:     units.MB(300 + r.Intn(3100)),
				Threads: th,
				Value:   Eq1Value(th, 240)*CountBonusScale(30) + 1,
			}
		}
		for _, dim := range []Config{
			{MemCapacity: 8192, ThreadCapacity: 240},
			{MemCapacity: 8192},
		} {
			g := SolveGreedy(dim, items)
			d := Solve(dim, items)
			if d.Value == 0 {
				continue
			}
			ratio := float64(g.Value) / float64(d.Value)
			if dim.ThreadCapacity > 0 {
				if ratio < worst2D {
					worst2D = ratio
				}
			} else if ratio < worst1D {
				worst1D = ratio
			}
		}
	}
	if worst1D < 0.9 {
		t.Errorf("1-D greedy worst-case quality %.2f, want >= 0.9", worst1D)
	}
	if worst2D < 0.2 {
		t.Errorf("2-D greedy quality %.2f below sanity floor", worst2D)
	}
	if worst2D > 0.85 {
		t.Errorf("2-D greedy quality %.2f unexpectedly high — the DP's edge vanished", worst2D)
	}
}

func TestGreedyPanicsOnBadItems(t *testing.T) {
	for name, items := range map[string][]Item{
		"negative value": {{Mem: 10, Value: -1}},
		"zero memory":    {{Mem: 0, Value: 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			SolveGreedy(Config{MemCapacity: 100}, items)
		}()
	}
}
