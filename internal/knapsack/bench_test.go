package knapsack

import (
	"testing"

	"phishare/internal/units"
)

// benchItems builds a deterministic scheduler-shaped instance: Eq. 1 values
// with the count-bonus tie-break, memory and thread requests spread across
// the Table I ranges.
func benchItems(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		th := units.Threads(16 + (i*53)%224)
		items[i] = Item{
			Mem:     units.MB(200 + (i*97)%1800),
			Threads: th,
			Value:   Eq1Value(th, 240)*CountBonusScale(n) + 1,
		}
	}
	return items
}

// BenchmarkSolve2D measures one full (memory × threads) solve past the
// all-fits fast path — the unit of work of every MCC/MCCK planning round.
func BenchmarkSolve2D(b *testing.B) {
	cfg := Config{MemCapacity: 8000, ThreadCapacity: 480}
	items := benchItems(48)
	s := NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(cfg, items)
	}
}

// BenchmarkSolve2DReference is the dense reference DP on the same instance,
// kept as the denominator for the sparse solver's speedup.
func BenchmarkSolve2DReference(b *testing.B) {
	cfg := Config{MemCapacity: 8000, ThreadCapacity: 480}
	items := benchItems(48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveReference(cfg, items)
	}
}
