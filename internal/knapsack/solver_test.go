package knapsack

import (
	"math/rand"
	"reflect"
	"testing"

	"phishare/internal/units"
)

// randomInstance draws one knapsack instance covering the regimes the
// scheduler produces: sparse and dense queues, wide and narrow items,
// individually infeasible items, zero values, 1-D and 2-D configurations.
func randomInstance(r *rand.Rand) (Config, []Item) {
	cfg := Config{
		MemCapacity:    units.MB(1 + r.Intn(10000)),
		MemGranularity: units.MB(1 + r.Intn(100)),
	}
	if r.Intn(4) > 0 { // 2-D three quarters of the time
		cfg.ThreadCapacity = units.Threads(1 + r.Intn(300))
		cfg.ThreadGranularity = units.Threads(1 + r.Intn(8))
	}
	n := r.Intn(24)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Mem:     units.MB(1 + r.Intn(4000)),
			Threads: units.Threads(r.Intn(320) - 4), // occasionally negative
			Value:   int64(r.Intn(2000)),            // includes zero
		}
		if r.Intn(10) == 0 {
			items[i].Value = 0
		}
	}
	return cfg, items
}

// TestSolverMatchesReference is the differential property test: on ~1k
// seeded random instances the optimized Solver must agree with the reference
// DP bit-for-bit — same value, same selected index set (which pins the
// deterministic tie-breaks), same aggregate memory and threads.
func TestSolverMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(1337))
	s := NewSolver() // one solver across all instances: exercises buffer reuse
	for i := 0; i < 1200; i++ {
		cfg, items := randomInstance(r)
		want := SolveReference(cfg, items)
		got := s.Solve(cfg, items)
		if got.Value != want.Value || got.Mem != want.Mem || got.Threads != want.Threads ||
			!reflect.DeepEqual(got.Selected, want.Selected) {
			t.Fatalf("instance %d (cfg %+v, %d items):\n solver    %+v\n reference %+v",
				i, cfg, len(items), got, want)
		}
		// The pooled convenience wrapper must agree too.
		if viaPool := Solve(cfg, items); !reflect.DeepEqual(viaPool, got) {
			t.Fatalf("instance %d: pooled Solve %+v != solver %+v", i, viaPool, got)
		}
	}
}

// TestSolverMatchesReferenceAdversarial targets the sparse frontier solver's
// hard regimes, where dominance pruning is least effective or ties are
// everywhere: duplicated items, near-equal values (maximal tie-breaking),
// large all-distinct random values (maximal frontier growth), and tight
// capacities where the budgets bind on both axes.
func TestSolverMatchesReferenceAdversarial(t *testing.T) {
	r := rand.New(rand.NewSource(99991))
	s := NewSolver()
	check := func(name string, cfg Config, items []Item) {
		t.Helper()
		want := SolveReference(cfg, items)
		got := s.Solve(cfg, items)
		if got.Value != want.Value || got.Mem != want.Mem || got.Threads != want.Threads ||
			!reflect.DeepEqual(got.Selected, want.Selected) {
			t.Fatalf("%s (cfg %+v, %d items):\n solver    %+v\n reference %+v",
				name, cfg, len(items), got, want)
		}
	}
	for round := 0; round < 60; round++ {
		cfg := Config{
			MemCapacity:       units.MB(200 + r.Intn(1800)),
			MemGranularity:    units.MB(25 + r.Intn(50)),
			ThreadCapacity:    units.Threads(8 + r.Intn(120)),
			ThreadGranularity: units.Threads(1 + r.Intn(4)),
		}
		// Duplicates: few distinct shapes repeated many times. Identical
		// items make every prefix value reachable many ways, so the
		// reconstruction's index-order tie-break does all the work.
		proto := make([]Item, 1+r.Intn(4))
		for i := range proto {
			proto[i] = Item{
				Mem:     units.MB(1 + r.Intn(800)),
				Threads: units.Threads(r.Intn(64)),
				Value:   int64(r.Intn(4)), // tiny range: constant ties, zeros
			}
		}
		var dup []Item
		for i := 0; i < 24; i++ {
			dup = append(dup, proto[r.Intn(len(proto))])
		}
		check("duplicates", cfg, dup)

		// Distinct large values: nothing dominates, the frontier grows as
		// large as the instance allows.
		distinct := make([]Item, 16+r.Intn(16))
		for i := range distinct {
			distinct[i] = Item{
				Mem:     units.MB(1 + r.Intn(600)),
				Threads: units.Threads(r.Intn(48)),
				Value:   int64(1+r.Intn(1<<30)) << uint(r.Intn(20)),
			}
		}
		check("distinct-values", cfg, distinct)

		// Tight budgets: every item is a large fraction of capacity, so both
		// axes bind and most subsets are infeasible.
		tight := make([]Item, 12)
		for i := range tight {
			tight[i] = Item{
				Mem:     cfg.MemCapacity/2 + units.MB(r.Intn(int(cfg.MemCapacity))),
				Threads: cfg.ThreadCapacity/2 + units.Threads(r.Intn(int(cfg.ThreadCapacity))),
				Value:   int64(1 + r.Intn(100)),
			}
		}
		check("tight-budgets", cfg, tight)

		// 1-D versions of the same regimes.
		cfg1 := Config{MemCapacity: cfg.MemCapacity, MemGranularity: cfg.MemGranularity}
		check("duplicates-1d", cfg1, dup)
		check("distinct-values-1d", cfg1, distinct)
	}
}

// TestSolverSelectionFeasible checks the solution invariants the scheduler
// relies on: selections are ascending, within capacity, and deduplicated.
func TestSolverSelectionFeasible(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	s := NewSolver()
	for i := 0; i < 400; i++ {
		cfg, items := randomInstance(r)
		res := s.Solve(cfg, items)
		d := cfg.withDefaults()
		var mem units.MB
		var th units.Threads
		seen := map[int]bool{}
		prev := -1
		for _, idx := range res.Selected {
			if idx <= prev {
				t.Fatalf("instance %d: selection not ascending: %v", i, res.Selected)
			}
			prev = idx
			if seen[idx] {
				t.Fatalf("instance %d: duplicate index %d", i, idx)
			}
			seen[idx] = true
			mem += units.MB(ceilDiv(int(items[idx].Mem), int(d.MemGranularity))) * d.MemGranularity
			if items[idx].Threads > 0 {
				th += items[idx].Threads
			}
		}
		if mem > 0 && units.MB(ceilDiv(int(mem), int(d.MemGranularity)))*d.MemGranularity >
			(d.MemCapacity/d.MemGranularity)*d.MemGranularity {
			t.Fatalf("instance %d: rounded memory %v exceeds capacity %v", i, mem, d.MemCapacity)
		}
	}
}

// TestSolverAllFitsFastPath pins the fast path explicitly: a small queue on
// a big device selects exactly the positive-value feasible items.
func TestSolverAllFitsFastPath(t *testing.T) {
	cfg := Config{MemCapacity: 8192, ThreadCapacity: 240}
	items := []Item{
		{Mem: 100, Threads: 16, Value: 10},
		{Mem: 200, Threads: 8, Value: 0},    // zero value: never taken
		{Mem: 9000, Threads: 16, Value: 99}, // infeasible memory
		{Mem: 300, Threads: 400, Value: 42}, // infeasible threads
		{Mem: 150, Threads: 4, Value: 7},
	}
	got := NewSolver().Solve(cfg, items)
	want := SolveReference(cfg, items)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fast path diverged: %+v vs %+v", got, want)
	}
	if len(got.Selected) != 2 || got.Selected[0] != 0 || got.Selected[1] != 4 {
		t.Fatalf("fast path selection %v, want [0 4]", got.Selected)
	}
}

// TestSolverReuseDoesNotLeakState runs a big instance then a tiny one and
// back: stale buffer contents must never influence a later solve.
func TestSolverReuseDoesNotLeakState(t *testing.T) {
	s := NewSolver()
	big := make([]Item, 64)
	for i := range big {
		big[i] = Item{Mem: units.MB(200 + 37*i), Threads: units.Threads(4 * i), Value: int64(50 + i)}
	}
	cfgBig := Config{MemCapacity: 8192, ThreadCapacity: 240}
	cfgTiny := Config{MemCapacity: 600, ThreadCapacity: 16}
	tiny := []Item{{Mem: 500, Threads: 8, Value: 3}, {Mem: 400, Threads: 8, Value: 2}}
	for round := 0; round < 3; round++ {
		if got, want := s.Solve(cfgBig, big), SolveReference(cfgBig, big); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d big: %+v vs %+v", round, got, want)
		}
		if got, want := s.Solve(cfgTiny, tiny), SolveReference(cfgTiny, tiny); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d tiny: %+v vs %+v", round, got, want)
		}
	}
}
