package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one directory's worth of parsed non-test Go files.
type Package struct {
	Fset *token.FileSet
	// Dir is the package directory on disk.
	Dir string
	// Rel is the directory relative to the module root ("." for the root
	// package); AppliesTo scoping keys off it.
	Rel string
	// Files holds the parsed files, sorted by file name.
	Files []*ast.File
	// Lines maps each parsed file name to its source lines, so directive
	// handling can tell a trailing comment from a standalone one.
	Lines map[string][]string

	index *Index
}

// Index returns the package's heuristic type index, built on first use.
func (p *Package) Index() *Index {
	if p.index == nil {
		p.index = BuildIndex(p.Files)
	}
	return p.index
}

// LoadDir parses every non-test .go file directly in dir into a Package
// with the given module-relative path. Directories with no Go files yield
// a nil package.
func LoadDir(fset *token.FileSet, dir, rel string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	pkg := &Package{Fset: fset, Dir: dir, Rel: rel, Lines: map[string][]string{}}
	for _, name := range names {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Lines[path] = strings.Split(string(src), "\n")
	}
	return pkg, nil
}

// skipDirs are directory names never descended into: fixtures, VCS state,
// and the runnable documentation under examples/ (demo mains outside the
// determinism contract — they drive the simulation, they are not part of
// it).
var skipDirs = map[string]bool{
	".git":     true,
	"testdata": true,
	"examples": true,
	"vendor":   true,
}

// LoadModule walks the module rooted at root and parses every package
// whose module-relative directory matches one of the patterns. Patterns
// follow the go tool's shape: "./..." (everything), "./dir/..." (a
// subtree), or "./dir" (one directory). Nil patterns mean "./...".
func LoadModule(root string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel != "." && (skipDirs[d.Name()] || strings.HasPrefix(d.Name(), ".") || strings.HasPrefix(d.Name(), "_")) {
			return filepath.SkipDir
		}
		if !matchesAny(rel, patterns) {
			return nil
		}
		pkg, err := LoadDir(fset, path, filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// A pattern that selects no packages is a caller mistake (a typo'd
	// path in the lint gate would otherwise pass vacuously).
	for _, p := range patterns {
		matched := false
		for _, pkg := range pkgs {
			if matchesAny(pkg.Rel, []string{p}) {
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", p)
		}
	}
	return pkgs, nil
}

// MatchesPattern reports whether the module-relative directory rel is
// selected by the go-tool-shaped pattern ("./...", "./dir/...", "./dir").
// cmd/philint uses it to scope reporting after a whole-module analysis.
func MatchesPattern(rel, pattern string) bool { return matchesAny(rel, []string{pattern}) }

// matchesAny reports whether the module-relative directory rel is selected
// by any pattern.
func matchesAny(rel string, patterns []string) bool {
	rel = filepath.ToSlash(rel)
	for _, p := range patterns {
		p = strings.TrimPrefix(filepath.ToSlash(p), "./")
		switch {
		case p == "..." || p == "":
			return true
		case strings.HasSuffix(p, "/..."):
			base := strings.TrimSuffix(p, "/...")
			if rel == base || strings.HasPrefix(rel, base+"/") {
				return true
			}
		case rel == p:
			return true
		}
	}
	return false
}

// FindModuleRoot walks upward from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("philint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
