package analysis

// DetTaint is the whole-program determinism rule: banned nondeterminism
// sources — math/rand outside internal/rng, wall-clock reads, and
// order-sensitive map iteration — are flagged anywhere *reachable from a
// sim-path entry point*, through any call chain, across package
// boundaries. It closes the helper-function escape hatch the per-file
// rules have: detrand/wallclock/mapiter see one file at a time, so a
// banned construct tucked into a helper package that sim-path code calls
// into was structurally invisible to them.
//
// The rule deliberately does not duplicate the per-file suite. A source
// the per-file rules already report in scope is skipped here (one finding
// per construct). What dettaint adds:
//
//   - order-sensitive map ranges in packages OUTSIDE the mapiter scope
//     (classad, obs, knapsack, estimator, runner, …) that sim-path code
//     transitively calls — per-file mapiter cannot see them, reachability
//     can;
//   - rand/wall-clock sites whose per-file finding was suppressed with a
//     context justification ("harness timing, not sim state") but that ARE
//     reachable from a sim-path entry — the suppression's premise is
//     exactly what reachability disproves. A suppressed mapiter site is
//     NOT re-flagged: its review ("order-insensitive in fact") is about
//     the loop's content, which reachability does not undermine.
//
// Each finding is attributed to both the offending site (primary position)
// and the call site inside the sim-path entry that starts a shortest chain
// (entry position); an ignore directive at either location suppresses it.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetTaint is the whole-program banned-nondeterminism-source rule.
var DetTaint = &WholeAnalyzer{
	Name: "dettaint",
	Doc: "flag banned nondeterminism sources (math/rand, wall-clock reads, " +
		"order-sensitive map iteration) transitively reachable from sim-path " +
		"entry points, across function and package boundaries",
	Run: runDetTaint,
}

// taintSource is one banned construct found anywhere in the module.
type taintSource struct {
	fn   *FuncInfo
	pos  token.Pos
	desc string
	// v1rule names the per-file rule that owns this hazard class.
	v1rule string
	// v1covered reports whether that per-file rule is in scope at the
	// source's package, i.e. whether the per-file suite would report it.
	v1covered bool
}

func runDetTaint(p *ModulePass) {
	var roots []*FuncInfo
	for _, fi := range p.Mod.Funcs {
		if SimPath(fi.Pkg.Rel) {
			roots = append(roots, fi)
		}
	}
	if len(roots) == 0 {
		return
	}
	reach := p.Graph.ReachableFrom(roots)

	for _, fi := range p.Mod.Funcs {
		if !reach.Reaches(fi) {
			continue
		}
		for _, src := range taintSources(p, fi) {
			if src.v1covered {
				if !p.SuppressedAt(src.v1rule, src.pos) {
					// The per-file rule reports this site; one finding per
					// construct.
					continue
				}
				if src.v1rule == MapIter.Name {
					// A suppressed mapiter site was reviewed as
					// order-insensitive in fact; reachability does not
					// invalidate that.
					continue
				}
			}
			chain := reach.Chain(fi)
			entryPos := src.pos
			if len(chain) > 1 && chain[0].Pos.IsValid() {
				entryPos = chain[0].Pos
			}
			suffix := ""
			if src.v1covered {
				suffix = " (site-local suppression reviewed it as outside the sim path; this chain is the sim path)"
			}
			p.Report(Finding{
				Pos:     p.Position(src.pos),
				Rule:    "dettaint",
				Message: "banned nondeterminism source on the sim path: " + chainString(chain, src.desc) + suffix,
				Entry:   p.Position(entryPos),
			})
		}
	}
}

// taintSources scans one declared function (function literals included) for
// banned constructs.
func taintSources(p *ModulePass, fi *FuncInfo) []taintSource {
	var out []taintSource

	// Call-shaped sources come from the call graph's external-call table.
	for _, ext := range p.Graph.External[fi] {
		pkg := ext.Fn.Pkg()
		if pkg == nil {
			continue
		}
		switch {
		case isRandPath(pkg.Path()):
			if fi.Pkg.Rel == "internal/rng" {
				continue // the sanctioned wrapper
			}
			out = append(out, taintSource{
				fn:     fi,
				pos:    ext.Pos,
				desc:   "rand." + ext.Fn.Name() + " (unseeded math/rand)",
				v1rule: DetRand.Name,
				// detrand is module-wide outside internal/rng.
				v1covered: DetRand.AppliesTo(fi.Pkg.Rel),
			})
		case pkg.Path() == "time" && wallClockIdents[ext.Fn.Name()]:
			out = append(out, taintSource{
				fn:        fi,
				pos:       ext.Pos,
				desc:      "time." + ext.Fn.Name() + " (wall clock)",
				v1rule:    WallClock.Name,
				v1covered: true, // wallclock is module-wide
			})
		}
	}

	// Map-range sources need the statement tail for the collect-then-sort
	// idiom, so walk statement lists rather than bare nodes.
	info := p.Mod.Info
	check := func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			rs, ok := unlabel(stmt).(*ast.RangeStmt)
			if !ok {
				continue
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				continue
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				continue
			}
			if orderInsensitive(rs.Body.List, rs) || collectedAndSorted(rs, stmts[i+1:]) {
				continue
			}
			out = append(out, taintSource{
				fn:        fi,
				pos:       rs.Pos(),
				desc:      "order-sensitive range over map " + exprString(rs.X),
				v1rule:    MapIter.Name,
				v1covered: SimPath(fi.Pkg.Rel),
			})
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			check(s.List)
		case *ast.CaseClause:
			check(s.Body)
		case *ast.CommClause:
			check(s.Body)
		}
		return true
	})

	sortSources(out)
	return out
}

func unlabel(stmt ast.Stmt) ast.Stmt {
	for {
		ls, ok := stmt.(*ast.LabeledStmt)
		if !ok {
			return stmt
		}
		stmt = ls.Stmt
	}
}

func sortSources(srcs []taintSource) {
	// Stable report order inside one function: by position.
	for i := 1; i < len(srcs); i++ {
		for j := i; j > 0 && srcs[j].pos < srcs[j-1].pos; j-- {
			srcs[j], srcs[j-1] = srcs[j-1], srcs[j]
		}
	}
}
