package analysis

import (
	"go/ast"
	"go/token"
)

// FloatEq flags == and != between floating-point expressions in the value
// and packing packages (scheduler, knapsack, core, estimator).
//
// The knapsack's Eq. 1 job values are integer-scaled precisely so that
// the DP never compares floats; a float equality sneaking back into a
// value comparison makes "equal value" depend on rounding of the
// expression tree — two mathematically equal scores can differ in the
// last ulp depending on evaluation order, flipping tie adjudication and
// with it the packing. Compare integer-scaled values, or use an explicit
// epsilon when a float comparison is genuinely intended.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= between floating-point expressions in value/packing " +
		"packages; use integer-scaled values or an explicit epsilon",
	AppliesTo: func(rel string) bool {
		switch rel {
		case "internal/scheduler", "internal/knapsack", "internal/core", "internal/estimator":
			return true
		}
		return false
	},
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		walkFuncs(pass, file, func(env *Env, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if env.IsFloat(be.X) || env.IsFloat(be.Y) {
					pass.Reportf("floateq", be.OpPos,
						"floating-point %s comparison (%s %s %s); compare integer-scaled values or use an epsilon",
						be.Op, exprString(be.X), be.Op, exprString(be.Y))
				}
				return true
			})
		})
	}
}
