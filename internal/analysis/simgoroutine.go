package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
)

// SimGoroutine forbids host concurrency in sim-path component packages:
// goroutines, channel operations and types, select statements, and the
// sync/sync⁄atomic primitives. Simulated concurrency is the event engine's
// job — components express "these things happen independently" by
// scheduling events on their node's lane, and the parallel simulation core
// (internal/sim/parallel.go) decides what actually runs on which OS thread.
// A component that spawns its own goroutine or rendezvouses through a
// channel reintroduces host-scheduler nondeterminism that the canonical
// barrier merge cannot serialize, and a component that reaches for a mutex
// is defending against concurrency the lane contract says cannot exist.
//
// The rule covers every sim-path package except internal/sim itself, which
// is the one place the worker fork/join legitimately lives. A genuinely
// engine-adjacent site elsewhere carries a per-line
// //philint:ignore simgoroutine <reason> directive so each use is
// individually reviewed.
var SimGoroutine = &Analyzer{
	Name: "simgoroutine",
	Doc: "forbid goroutines, channels, select, and sync primitives in sim-path " +
		"packages; concurrency belongs to the engine's lanes and parallel executor",
	AppliesTo: func(rel string) bool { return SimPath(rel) && rel != "internal/sim" },
	Run:       runSimGoroutine,
}

func runSimGoroutine(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		// Selector-based detection for the sync and sync/atomic packages,
		// keyed on this file's import names (mirrors the wallclock rule).
		syncNames := map[string]string{}
		for _, imp := range file.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path != "sync" && path != "sync/atomic" {
				continue
			}
			name := path
			if path == "sync/atomic" {
				name = "atomic"
			}
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name != "_" && name != "." {
				syncNames[name] = path
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.GoStmt:
				pass.Reportf("simgoroutine", v.Pos(),
					"go statement spawns a host goroutine; schedule an event on the component's lane instead")
			case *ast.SendStmt:
				pass.Reportf("simgoroutine", v.Pos(),
					"channel send synchronizes through the host scheduler; pass results via scheduled callbacks")
			case *ast.UnaryExpr:
				if v.Op == token.ARROW {
					pass.Reportf("simgoroutine", v.Pos(),
						"channel receive blocks on the host scheduler; pass results via scheduled callbacks")
				}
			case *ast.SelectStmt:
				pass.Reportf("simgoroutine", v.Pos(),
					"select races host goroutines; event ordering must come from the engine's (time, seq) queue")
			case *ast.ChanType:
				pass.Reportf("simgoroutine", v.Pos(),
					"channel type in a sim-path component; simulated hand-offs are scheduled events, not channels")
			case *ast.SelectorExpr:
				if id, ok := v.X.(*ast.Ident); ok {
					if path, hit := syncNames[id.Name]; hit {
						pass.Reportf("simgoroutine", v.Pos(),
							"%s.%s guards against host concurrency the lane contract forbids; sim-path state is single-threaded per lane",
							pkgBase(path), v.Sel.Name)
					}
				}
			}
			return true
		})
	}
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
