package fixture

type cand struct {
	value float64
}

// flaggedValueTie adjudicates a packing tie with float equality: two
// mathematically equal scores can differ in the last ulp depending on
// evaluation order, flipping the tie.
func flaggedValueTie(a, b cand) bool {
	return a.value == b.value
}

// flaggedLiteral compares against a float literal.
func flaggedLiteral(x float64) bool {
	return x != 0.5
}

// flaggedDerived compares arithmetic over floats.
func flaggedDerived(used, capacity float64) bool {
	return used/capacity == 1.0
}
