package fixture

// cleanScaled compares integer-scaled values — the knapsack's Eq. 1
// convention.
func cleanScaled(a, b int64) bool {
	return a == b
}

// cleanEpsilon brackets the difference instead of comparing exactly.
func cleanEpsilon(x, y float64) bool {
	const eps = 1e-9
	d := x - y
	return d < eps && d > -eps
}

// cleanOrdering uses ordering comparisons, which floateq leaves alone.
func cleanOrdering(x, y float64) bool {
	return x < y
}
