// Package shardapp exercises the shardsafe ownership model: one scan that
// verifies cleanly through the full owned-derivation chain (index → element
// → owned-bounds slice → masked callee), and workers that race on pool and
// package state in every way the rule must catch.
package shardapp

import "phishare/internal/sim"

type tally struct {
	n int
}

type shard struct {
	lo, hi int
	vals   []int
	t      tally
}

// Pool is the shared aggregate the workers partition.
type Pool struct {
	eng    *sim.Engine
	shards []shard
	table  []int
	total  int
	last   int
}

// GoodScan is the sanctioned pattern: worker k touches only shards[k] and
// the table partition bounded by it, through a helper whose receiver stays
// shared but whose written parameters are owned. Zero findings.
func (p *Pool) GoodScan() {
	shards := p.shards
	p.eng.Fanout(len(shards), func(k int) {
		p.fill(&shards[k], k)
	})
}

// fill writes only through sh (owned at both call sites' masks) and the
// table partition sliced by sh's bounds.
func (p *Pool) fill(sh *shard, k int) {
	sh.vals = append(sh.vals, k)
	sh.t.n++
	part := p.table[sh.lo:sh.hi]
	for i := range part {
		part[i] = k
	}
}

// BadScan races twice: a direct write to receiver state in the worker, and
// the same write one call deeper where the receiver mask is shared.
func (p *Pool) BadScan() {
	p.eng.Fanout(len(p.shards), func(k int) {
		p.total += k
		p.bump()
	})
}

func (p *Pool) bump() {
	p.total++
}

// Queue hands Fanout an opaque worker: nothing to verify, so it is flagged
// at the argument.
func (p *Pool) Queue(w func(int)) {
	p.eng.Fanout(2, w)
}

var hits int

// LaneGood writes node-owned (receiver) state from a lane callback: the
// lane partition owns it by construction, so this is clean.
func (p *Pool) LaneGood(l *sim.Lane) {
	l.At(5, func() {
		p.last = 7
	})
}

// LaneBad writes package-level state, directly and through a helper: lanes
// run concurrently, so both are flagged.
func (p *Pool) LaneBad(l *sim.Lane) {
	l.At(9, func() {
		hits++
		tick()
	})
}

func tick() {
	hits++
}

// CapturedScan races through a captured local: every worker increments the
// same enclosing-frame accumulator. The worker's own local and the
// owned-index write into the captured table stay clean.
func (p *Pool) CapturedScan() int {
	total := 0
	sums := make([]int, len(p.shards))
	p.eng.Fanout(len(p.shards), func(k int) {
		local := 0
		local++
		total += local
		sums[k] = local
	})
	return total
}

// BadScanTwin repeats BadScan's transitive race from a second Fanout entry:
// the bump violation must be attributed here too, so an ignore directive
// covering BadScan's entry cannot silently cover this one.
func (p *Pool) BadScanTwin() {
	p.eng.Fanout(len(p.shards), func(k int) {
		p.bump()
	})
}
