// Package sim is a minimal stand-in for the event engine: just enough
// surface for shardsafe to recognize Fanout workers and lane callbacks by
// their full method names.
package sim

// Engine is the stand-in event engine.
type Engine struct {
	workers int
}

// Fanout runs fn(k) for every shard index k. The real engine runs the
// calls on a worker pool between event barriers; the stub keeps the
// signature and the sequential meaning.
func (e *Engine) Fanout(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Lane is the stand-in per-node event lane.
type Lane struct {
	id int
}

// At schedules fn at tick t on this lane.
func (l *Lane) At(t int64, fn func()) {
	fn()
}
