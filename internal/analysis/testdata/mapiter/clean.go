package fixture

import "sort"

type tally struct {
	counts map[string]int
}

// cleanSum is pure commutative accumulation; order cannot show.
func (t *tally) cleanSum() int {
	total := 0
	for _, n := range t.counts {
		total += n
	}
	return total
}

// cleanPurge deletes dead entries from the ranged map and sums the rest —
// the DeclaredFree shape.
func (t *tally) cleanPurge(dead func(string) bool) int {
	total := 0
	for k, n := range t.counts {
		if dead(k) {
			delete(t.counts, k)
			continue
		}
		total += n
	}
	return total
}

// cleanCollectSort collects the keys and sorts them before anything
// consumes the slice.
func (t *tally) cleanCollectSort() []string {
	keys := make([]string, 0, len(t.counts))
	for k := range t.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// cleanKeyedWrite writes each iteration to a slot named by the loop key;
// every order lands the same final state.
func cleanKeyedWrite(in map[string]int, out map[string]int) {
	for k, v := range in {
		out[k] = v * 2
	}
}
