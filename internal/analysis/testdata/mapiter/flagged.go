package fixture

type sched struct {
	waiting map[int]string
}

// flaggedKill issues kills straight out of map iteration: the kill order
// — and with it every downstream recover/resubmit interleaving — changes
// run to run.
func (s *sched) flaggedKill(kill func(int)) {
	for id := range s.waiting {
		kill(id)
	}
}

// flaggedCollect appends in map order and never sorts, so the produced
// slice is a different permutation each run.
func flaggedCollect(byUser map[string]int) []string {
	var names []string
	for u := range byUser {
		names = append(names, u)
	}
	return names
}

// flaggedFirst returns an arbitrary element: a nondeterministic pick.
func flaggedFirst(pool map[string]int) string {
	for k := range pool {
		return k
	}
	return ""
}
