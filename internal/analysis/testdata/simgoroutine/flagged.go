package fixture

import (
	"sync"
	"sync/atomic"
)

type racyDevice struct {
	mu      sync.Mutex
	done    chan struct{}
	counter int64
}

func (d *racyDevice) start(work func()) {
	go work()
}

func (d *racyDevice) signal() {
	d.done <- struct{}{}
}

func (d *racyDevice) wait() {
	<-d.done
}

func (d *racyDevice) pick(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func (d *racyDevice) bump() {
	d.mu.Lock()
	atomic.AddInt64(&d.counter, 1)
	d.mu.Unlock()
}
