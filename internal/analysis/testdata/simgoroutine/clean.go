package fixture

// laneish mimics the sanctioned shape: concurrency-free component code that
// expresses independent activity by scheduling callbacks. Nothing here
// touches goroutines, channels, or sync.
type laneish struct {
	pending []func()
}

func (l *laneish) after(fn func()) { l.pending = append(l.pending, fn) }

func (l *laneish) pump() {
	for len(l.pending) > 0 {
		fn := l.pending[0]
		l.pending = l.pending[1:]
		fn()
	}
}

// arrowFreeOps proves the operators the rule must NOT confuse with channel
// ops: pointer derefs, unary minus/not, and shifts are all legal.
func arrowFreeOps(p *int, x int) int {
	v := *p
	v = -v
	v = v << 2
	if !(v == x) {
		v++
	}
	return v
}
