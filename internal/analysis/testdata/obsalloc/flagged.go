package fixture

import "fmt"

// flaggedUnguarded builds the field slice on every call, including runs
// where c.obs is nil: the allocation the disabled path must not pay.
func flaggedUnguarded(c *component, now int64, job int) {
	c.obs.Emit(now, "phi", "oom_kill", f("job", job))
}

// flaggedWrongGuard nil-checks a different receiver than the one emitting.
func flaggedWrongGuard(c *component, now int64, job int) {
	if c.obs != nil {
		c.host.obs.Emit(now, "cosmic", "admitted", f("job", job))
	}
}

// flaggedDisjunction: an || condition does not prove the receiver non-nil
// on every path into the body.
func flaggedDisjunction(c *component, now int64, job int, force bool) {
	if c.obs != nil || force {
		c.obs.Emit(now, "condor", "match", f("job", job))
	}
}

// flaggedSprintf allocates a formatted string in an unguarded emission —
// flagged alongside the slice finding, and alone even at fixed arity.
func flaggedSprintf(c *component, now int64, job int) {
	c.obs.Emit(now, "condor", "match", f("name", fmt.Sprintf("job-%d", job)))
	c.obs.Emit(now, "condor", fmt.Sprint("match"))
}
