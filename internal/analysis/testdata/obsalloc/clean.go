package fixture

import "fmt"

// view stands in for *obs.View: a nil-safe emitter whose variadic field
// slice is built by the caller.
type view struct{}

func (*view) Emit(at int64, layer, kind string, fields ...any) {}

type field struct {
	k string
	v any
}

func f(k string, v any) field { return field{k, v} }

type component struct {
	obs  *view
	host struct{ obs *view }
}

// cleanGuarded wraps every field-carrying emission in its receiver's nil
// guard, so the disabled path never builds the slice.
func cleanGuarded(c *component, now int64, job int) {
	if c.obs != nil {
		c.obs.Emit(now, "phi", "oom_kill", f("job", job))
	}
	if c.obs != nil && job > 0 {
		c.obs.Emit(now, "phi", "offload_start", f("job", job), f("threads", 4))
	}
	if c.host.obs != nil {
		c.host.obs.Emit(now, "cosmic", "admitted", f("job", job))
	}
}

// cleanFieldless carries no fields: the fixed (at, layer, kind) triple
// allocates nothing, so no guard is required.
func cleanFieldless(v *view, now int64) {
	v.Emit(now, "condor", "negotiation_start")
}

// cleanFormatting formats only under the guard.
func cleanFormatting(c *component, now int64, job int) {
	if c.obs != nil {
		c.obs.Emit(now, "condor", "match", f("name", fmt.Sprintf("job-%d", job)))
	}
}
