// Package cgzoo is the callee side of the call-graph fixture: an interface
// with two implementations, three same-signature functions of which only two
// are ever taken as values, and direct plus mutual recursion.
package cgzoo

// Animal is dispatched through an interface by the app package.
type Animal interface{ Speak() string }

// Dog implements Animal with a value receiver.
type Dog struct{}

// Speak implements Animal.
func (Dog) Speak() string { return "woof" }

// Cat implements Animal with a pointer receiver.
type Cat struct{ hungry bool }

// Speak implements Animal.
func (c *Cat) Speak() string {
	if c.hungry {
		return "MEOW"
	}
	return "meow"
}

// Transform and Triple share a signature and are both taken as values by
// the app package; Unreferenced has the same signature but its value is
// never taken, so a function-typed call must not resolve to it.
func Transform(n int) int { return n + 1 }

// Triple is the second address-taken candidate.
func Triple(n int) int { return 3 * n }

// Unreferenced must stay outside every function-value candidate set.
func Unreferenced(n int) int { return n * 5 }

// Rec is directly recursive.
func Rec(n int) int {
	if n <= 0 {
		return 0
	}
	return Rec(n - 1)
}

// MutualA and MutualB recurse through each other.
func MutualA(n int) int {
	if n <= 0 {
		return 0
	}
	return MutualB(n - 1)
}

// MutualB is the other half of the cycle.
func MutualB(n int) int { return MutualA(n) }
