// Package cgapp is the caller side of the call-graph fixture: interface
// dispatch, calls through function-typed fields and variables, a method
// value, and recursion entry points.
package cgapp

import "phishare/internal/cgzoo"

// holder carries a function-typed field; calls through it must resolve to
// every address-taken function with a matching signature.
type holder struct{ f func(int) int }

// CallIface dispatches through the interface: the graph must edge to every
// implementation (Dog.Speak and (*Cat).Speak).
func CallIface(a cgzoo.Animal) string { return a.Speak() }

// CallField takes Transform's value into a field and Triple's into a local,
// then calls through the field: both become candidates, Unreferenced does
// not.
func CallField() int {
	h := holder{f: cgzoo.Transform}
	g := cgzoo.Triple
	_ = g
	return h.f(2)
}

// CallMethodValue calls through a bound method value: only Dog.Speak is
// taken as a value anywhere, so the dynamic call resolves to it alone.
func CallMethodValue(d cgzoo.Dog) string {
	mv := d.Speak
	return mv()
}

// CallRec enters both recursion shapes; reachability must close over the
// cycles without diverging.
func CallRec() int { return cgzoo.Rec(3) + cgzoo.MutualA(2) }

// UseCallback passes Transform's value into RunCallback: the taker edge
// charges Transform here, the one place that provably chose it.
func UseCallback() int { return RunCallback(cgzoo.Transform) }

// RunCallback calls through its function-typed parameter: no candidate
// edges and no unresolved site — coverage lives at each value origin.
func RunCallback(f func(int) int) int { return f(1) }

// LitLocal binds a local only to a function literal: the literal body is
// attributed here, so the dynamic call adds no edges and no unresolved.
func LitLocal() int {
	double := func(n int) int { return 2 * n }
	return double(21)
}

// CallStranger calls through a function value whose signature no module
// function is ever taken at: the site must be recorded as unresolved.
func CallStranger(tbl map[string]func() float64) float64 { return tbl["x"]() }

// Alien is satisfied by no module type.
type Alien interface{ Mutate() }

// CallAlien dispatches through an interface with zero module
// implementations: the site must be recorded as unresolved, not modeled as
// effect-free.
func CallAlien(a Alien) { a.Mutate() }
