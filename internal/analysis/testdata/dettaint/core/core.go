// Package core is the sim-path entry side of the dettaint fixture. It
// contains no banned construct itself — everything it is charged with
// arrives through call chains into internal/estimator, which the per-file
// rules cannot connect to the sim path.
package core

import "phishare/internal/estimator"

// Plan carries per-job weights keyed by job name.
type Plan struct {
	Weights map[string]float64
}

// Schedule is a sim-path entry point. The order-sensitive map range it
// reaches is two hops away (Blend → mix), and the wall-clock read it
// reaches carries a site-local suppression that reachability disproves.
func Schedule(p *Plan) float64 {
	score := estimator.Blend(p.Weights)
	return score + estimator.Stamp()
}

// ScheduleQuiet reaches a second order-sensitive range, but the entry call
// site carries a dettaint directive: a transitive finding is suppressible
// at its entry attribution, not only at the offending site.
func ScheduleQuiet(p *Plan) float64 {
	return estimator.Decay(p.Weights) //philint:ignore dettaint replay fixture: weights map is a singleton here
}
