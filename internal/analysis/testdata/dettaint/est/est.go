// Package estimator is the helper side of the dettaint fixture: a
// non-sim-path package (mapiter does not apply here) holding the banned
// constructs that sim-path code reaches transitively.
package estimator

import "time"

// Blend is the one-hop helper; the banned range is one hop further down.
func Blend(w map[string]float64) float64 {
	return mix(w)
}

// mix folds the weights with an order-sensitive accumulator: the result
// depends on Go's randomized map iteration order. Per-file mapiter is out
// of scope in this package; only reachability from core.Schedule sees it.
func mix(w map[string]float64) float64 {
	total := 0.0
	for _, v := range w {
		total = total*0.5 + v
	}
	return total
}

// Decay is the second order-sensitive fold, reached only from the entry
// whose call site suppresses the finding.
func Decay(w map[string]float64) float64 {
	acc := 1.0
	for _, v := range w {
		acc = acc/2 + v
	}
	return acc
}

// Stamp reads the wall clock. The per-file wallclock finding is suppressed
// with a context justification — which dettaint re-flags, because the
// chain from core.Schedule proves this IS on the sim path.
func Stamp() float64 {
	return float64(time.Now().UnixNano()) //philint:ignore wallclock harness-side profiling, not sim state
}
