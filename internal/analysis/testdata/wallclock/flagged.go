package fixture

import "time"

// flaggedTiming reads the host clock three ways; a simulated component
// must take all of these from the sim.Engine.
func flaggedTiming(work func()) time.Duration {
	start := time.Now()
	work()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}

// flaggedTimer waits on a host timer.
func flaggedTimer(stop chan struct{}) {
	select {
	case <-time.After(time.Second):
	case <-stop:
	}
}
