package fixture

import "time"

// tick is a pure quantity: time.Duration and the unit constants denote
// amounts of time, not reads of the clock, and stay legal everywhere.
const tick = 50 * time.Millisecond

func cleanDurations(d time.Duration) time.Duration {
	return d + tick
}
