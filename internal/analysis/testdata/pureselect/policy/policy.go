// Package scheduler defines the Policy interface whose Select
// implementations pureselect discovers by CHA: Random's only effect is
// drawing from the deterministic stream (exempt), Sticky memoizes on its
// receiver (flagged).
package scheduler

import "phishare/internal/rng"

// Policy picks one candidate index.
type Policy interface {
	Select(cands []int) int
}

// Random consults the deterministic stream: allowed by the rng exemption.
type Random struct {
	src *rng.Source
}

// Select draws one candidate uniformly from the stream.
func (r *Random) Select(cands []int) int {
	return cands[int(r.src.Uint64()%uint64(len(cands)))]
}

// Sticky memoizes its last pick on the receiver: observably impure, two
// calls with the same arguments can differ.
type Sticky struct {
	last int
}

// Select returns the first candidate and remembers it.
func (s *Sticky) Select(cands []int) int {
	if len(cands) > 0 {
		s.last = cands[0]
	}
	return s.last
}

var traced int

// Looper reaches the trace↔chase cycle at trace, the member that writes
// package state.
type Looper struct{}

// Select enters the cycle at the impure member.
func (Looper) Select(cands []int) int { return trace(len(cands)) }

// Chaser reaches the same cycle at chase. Its Select is analyzed after
// Looper's, so a memoized-while-incomplete summary for chase (computed
// while trace was still in progress on the stack) would hide the write
// from this target.
type Chaser struct{}

// Select enters the cycle at the pure member.
func (Chaser) Select(cands []int) int { return chase(len(cands)) }

func trace(n int) int {
	traced++
	if n <= 0 {
		return 0
	}
	return chase(n - 1)
}

func chase(n int) int {
	if n <= 0 {
		return 0
	}
	return trace(n - 1)
}
