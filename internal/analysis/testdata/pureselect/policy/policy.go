// Package scheduler defines the Policy interface whose Select
// implementations pureselect discovers by CHA: Random's only effect is
// drawing from the deterministic stream (exempt), Sticky memoizes on its
// receiver (flagged).
package scheduler

import "phishare/internal/rng"

// Policy picks one candidate index.
type Policy interface {
	Select(cands []int) int
}

// Random consults the deterministic stream: allowed by the rng exemption.
type Random struct {
	src *rng.Source
}

// Select draws one candidate uniformly from the stream.
func (r *Random) Select(cands []int) int {
	return cands[int(r.src.Uint64()%uint64(len(cands)))]
}

// Sticky memoizes its last pick on the receiver: observably impure, two
// calls with the same arguments can differ.
type Sticky struct {
	last int
}

// Select returns the first candidate and remembers it.
func (s *Sticky) Select(cands []int) int {
	if len(cands) > 0 {
		s.last = cands[0]
	}
	return s.last
}
