// Package rng is the deterministic-stream stub: advancing the stream is a
// receiver write originating in internal/rng, the one effect Select
// implementations are allowed.
package rng

// Source is a stand-in deterministic stream.
type Source struct {
	state uint64
}

// Uint64 advances the stream and returns the next value.
func (s *Source) Uint64() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}
