// Package classad is the matcher stub: Match carries the strict purity
// contract (no exemptions), and the fixture makes it observably impure
// through a package-level counter.
package classad

// Ad is a bag of integer attributes.
type Ad struct {
	attrs map[string]int
}

var matched int

// Match reports whether a's total dominates b's. The counter write is the
// flagged impurity; the fold in score is order-insensitive and clean.
func Match(a, b *Ad) bool {
	matched++
	return score(a) >= score(b)
}

func score(a *Ad) int {
	total := 0
	for _, v := range a.attrs {
		total += v
	}
	return total
}
