package fixture

import "time"

type reg struct {
	entries map[string]int
}

// suppressedTrailing: the trailing directive silences the wallclock
// finding on its own line — the next clock read still fires.
func suppressedTrailing() time.Duration {
	a := time.Now() //philint:ignore wallclock reviewed: harness timing fixture
	b := time.Now()
	return b.Sub(a)
}

// wrongRule: the directive names mapiter, so the wallclock finding on the
// line below must survive — a suppression silences exactly its rule.
func wrongRule() {
	//philint:ignore mapiter wrong rule on purpose
	time.Sleep(time.Millisecond)
}

// suppressedStandalone: a directive on its own line covers the line below.
func suppressedStandalone(r *reg, kill func(string)) {
	//philint:ignore mapiter reviewed: kill order asserted by the caller
	for k := range r.entries {
		kill(k)
	}
}

// malformed directives are findings themselves, and suppress nothing.
func malformed() {
	time.Sleep(time.Millisecond) //philint:ignore
}

func unknownRule() {
	time.Sleep(time.Millisecond) //philint:ignore nosuchrule some reason
}

func noReason() {
	time.Sleep(time.Millisecond) //philint:ignore wallclock
}
