package fixture

// A blank import still runs the package's init and hides the dependency
// from call-site review; the import line itself is the finding.
import _ "math/rand"
