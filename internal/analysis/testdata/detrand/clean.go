package fixture

// source mimics the sanctioned internal/rng.Source surface: all
// randomness a clean package sees arrives pre-seeded through a value like
// this, never from math/rand.
type source interface {
	Intn(n int) int
	Float64() float64
}

func cleanDraws(src source) int {
	n := src.Intn(10)
	if src.Float64() < 0.5 {
		n++
	}
	return n
}
