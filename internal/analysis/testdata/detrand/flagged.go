package fixture

import (
	"math/rand"
)

// flaggedDraws reaches for math/rand directly: process-lifetime global
// state that breaks (seed, profile, policy) replay.
func flaggedDraws() int {
	n := rand.Intn(10)
	if rand.Float64() < 0.5 {
		n++
	}
	return n
}

// flaggedSource builds a private source; still out of contract, because
// the seed does not flow from the experiment configuration.
func flaggedSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
