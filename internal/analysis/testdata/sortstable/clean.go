package fixture

import "sort"

type rjob struct {
	value int64
	id    int
}

// cleanChained carries its tiebreak inside a single chained expression.
func cleanChained(jobs []rjob) {
	sort.Slice(jobs, func(i, j int) bool {
		return jobs[i].value > jobs[j].value ||
			(jobs[i].value == jobs[j].value && jobs[i].id < jobs[j].id)
	})
}

// cleanIfChain is the idiomatic multi-key comparator: compare the key,
// fall through to a total-order tiebreak.
func cleanIfChain(jobs []rjob) {
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].value != jobs[j].value {
			return jobs[i].value > jobs[j].value
		}
		return jobs[i].id < jobs[j].id
	})
}

// cleanWholeElement compares the elements themselves; equal elements are
// interchangeable, so instability cannot show.
func cleanWholeElement(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// cleanStable is already stable; ties keep insertion order.
func cleanStable(jobs []rjob) {
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].value > jobs[j].value })
}
