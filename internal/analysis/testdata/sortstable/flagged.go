package fixture

import "sort"

type qjob struct {
	value   int64
	arrival int64
}

// flaggedSingleKey sorts by one key with unstable sort.Slice: jobs with
// equal value land in pivot-dependent order.
func flaggedSingleKey(jobs []qjob) {
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].value > jobs[j].value })
}

// flaggedOpaque passes a named comparator the analyzer cannot see into.
func flaggedOpaque(jobs []qjob, less func(i, j int) bool) {
	sort.Slice(jobs, less)
}

// flaggedComplex hides the comparison behind a helper call.
func flaggedComplex(jobs []qjob) {
	sort.Slice(jobs, func(i, j int) bool { return rank(jobs[i]) < rank(jobs[j]) })
}

func rank(q qjob) int64 { return q.value*2 + q.arrival }
