package analysis

// Whole-program analyzer plumbing. The per-file Analyzers see one parsed
// package at a time; WholeAnalyzers see the type-checked module and its
// call graph, so their findings can cross function and package boundaries.
// A transitive finding is attributed to two locations — the offending site
// (primary position) and the sim-path entry whose call chain reaches it —
// and an ignore directive at either location suppresses it.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// WholeAnalyzer is one named rule over the type-checked module.
type WholeAnalyzer struct {
	// Name is the rule identifier used in findings and ignore directives.
	Name string
	// Doc is a one-paragraph description of what the rule enforces and why.
	Doc string
	// Run inspects the module and reports findings through the pass.
	Run func(*ModulePass)
}

// ModulePass carries the typed module, its call graph, and the directive
// table through one whole-analyzer run.
type ModulePass struct {
	Mod   *Module
	Graph *Graph

	dirs     []directive
	findings *[]Finding
}

// Position resolves a token.Pos against the module's FileSet.
func (p *ModulePass) Position(pos token.Pos) token.Position {
	return p.Mod.Fset.Position(pos)
}

// Report records a finding.
func (p *ModulePass) Report(f Finding) { *p.findings = append(*p.findings, f) }

// Reportf records a finding at pos with no entry attribution.
func (p *ModulePass) Reportf(rule string, pos token.Pos, format string, args ...any) {
	p.Report(Finding{
		Pos:     p.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// SuppressedAt reports whether an ignore directive for rule covers pos —
// the hook dettaint uses to decide whether a per-file rule already
// sanctioned a source site, and whether that sanction extends to the sim
// path (it does for content-reviewed rules like mapiter, it does not for
// context-reviewed ones like wallclock).
func (p *ModulePass) SuppressedAt(rule string, pos token.Pos) bool {
	position := p.Position(pos)
	for _, d := range p.dirs {
		if d.rule == rule && d.file == position.Filename && d.line == position.Line {
			return true
		}
	}
	return false
}

// WholeAnalyzers returns the whole-program suite in stable (report) order.
func WholeAnalyzers() []*WholeAnalyzer {
	return []*WholeAnalyzer{
		DetTaint,
		ShardSafe,
		PureSelect,
	}
}

// AllRuleNames returns every rule name accepted by ignore directives:
// per-file rules, whole-program rules, and the pseudo-rule for malformed
// directives is excluded (it cannot be suppressed).
func AllRuleNames() map[string]bool {
	names := AnalyzerNames()
	for _, wa := range WholeAnalyzers() {
		names[wa.Name] = true
	}
	return names
}

// LintAll is the full gate behind cmd/philint: the per-file suite with
// package scoping, then the whole-program suite over the type-checked
// module, with suppression applied across both (a whole-program finding is
// suppressed by a directive at its primary position or at its entry
// attribution). Per-file rules never require type information, so a module
// that fails to type-check still gets per-file findings plus one "philint"
// finding describing the type error.
func LintAll(pkgs []*Package, analyzers []*Analyzer, whole []*WholeAnalyzer) []Finding {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, wa := range whole {
		known[wa.Name] = true
	}

	var out []Finding
	var raw []Finding
	var dirs []directive
	for _, pkg := range pkgs {
		pass := &Pass{Fset: pkg.Fset, Pkg: pkg, Index: pkg.Index(), findings: &raw}
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Rel) {
				continue
			}
			a.Run(pass)
		}
		pkgDirs, malformed := directives(pkg, known)
		out = append(out, malformed...)
		dirs = append(dirs, pkgDirs...)
	}

	if len(whole) > 0 && len(pkgs) > 0 {
		mod, err := TypeCheck(pkgs)
		if err != nil {
			raw = append(raw, Finding{
				Pos:     token.Position{Filename: "(module)"},
				Rule:    "philint",
				Message: fmt.Sprintf("whole-program rules skipped: %v", err),
			})
		} else {
			graph := BuildGraph(mod)
			mp := &ModulePass{Mod: mod, Graph: graph, dirs: dirs, findings: &raw}
			for _, wa := range whole {
				wa.Run(mp)
			}
		}
	}

	for _, f := range raw {
		if !suppressed(f, dirs) {
			out = append(out, f)
		}
	}
	sortFindings(out)
	return out
}

// funcDisplayName renders a function for messages: "core.Schedule",
// "condor.(*Pool).negotiateSharded".
func funcDisplayName(fi *FuncInfo) string {
	base := fi.Pkg.Rel
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	if base == "." || base == "" {
		base = ModulePath
	}
	if fi.Decl.Recv != nil && len(fi.Decl.Recv.List) > 0 {
		recv := recvTypeExpr(fi)
		return base + ".(" + recv + ")." + fi.Fn.Name()
	}
	return base + "." + fi.Fn.Name()
}

// recvTypeExpr renders the receiver type as written ("*Pool", "Dog").
func recvTypeExpr(fi *FuncInfo) string {
	t := fi.Decl.Recv.List[0].Type
	return typeExprString(t)
}

// recvTypeName renders the receiver's bare type name ("Pool", "Dog").
func recvTypeName(fi *FuncInfo) string {
	return strings.TrimPrefix(recvTypeExpr(fi), "*")
}

func typeExprString(t ast.Expr) string {
	switch v := t.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.StarExpr:
		return "*" + typeExprString(v.X)
	case *ast.IndexExpr:
		return typeExprString(v.X)
	case *ast.IndexListExpr:
		return typeExprString(v.X)
	case *ast.ParenExpr:
		return typeExprString(v.X)
	}
	return "?"
}

// chainString renders a call chain for a finding message:
// "core.Schedule → helper.Pick → time.Now". The final element is the
// description of the source, supplied by the caller.
func chainString(chain []ChainLink, source string) string {
	var sb strings.Builder
	for _, link := range chain {
		sb.WriteString(funcDisplayName(link.Fn))
		sb.WriteString(" → ")
	}
	sb.WriteString(source)
	return sb.String()
}
