// Package analysis implements philint, the project's determinism-and-
// simulation-hygiene analyzer suite.
//
// Every correctness claim this reproduction makes — bit-identical
// MC/MCC/MCCK outcomes across the optimized paths, outcome-neutral
// observability, replayable (seed, profile, policy) chaos triples — rests
// on the simulation being deterministic. philint turns that contract from
// a convention into a machine-checked CI gate: five analyzers walk the
// module's ASTs (stdlib go/parser + go/ast only, so go.mod stays
// dependency-free) and flag the source-level constructs that silently
// break replayability.
//
// The analyzers are deliberately heuristic: without full type checking
// they resolve types from package-local declarations (see Index), which
// covers every hazard class this codebase exhibits while keeping the
// tool a sub-second `go run`. A construct the analyzers cannot prove
// safe is flagged; a reviewed-and-legitimate site is annotated in place:
//
//	start := time.Now() //philint:ignore wallclock harness timing, not sim state
//
// The directive suppresses exactly one rule on its own line (or, when
// written on a line by itself, on the line below) and must carry a
// reason. Unknown rules and missing reasons are themselves findings, so
// suppressions cannot rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position. Whole-program
// findings additionally carry the sim-path entry the violation is reachable
// from: the primary position is the offending site, Entry the call site
// inside the entry function that starts the chain. An ignore directive at
// either location suppresses the finding.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
	// Entry is the secondary attribution of a transitive finding (zero
	// Filename when the finding is purely local).
	Entry token.Position
}

// String renders the finding in the canonical file:line: rule: message
// form emitted by cmd/philint and matched by the golden tests.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Pass carries one package's parsed state through one analyzer run.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *Package
	Index *Index

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(rule string, pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:     p.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named rule over a parsed package.
type Analyzer struct {
	// Name is the rule identifier used in findings and ignore directives.
	Name string
	// Doc is a one-paragraph description of what the rule enforces and why.
	Doc string
	// AppliesTo reports whether the rule is enforced in the package at the
	// given module-relative directory (e.g. "internal/cosmic",
	// "cmd/phibench", "." for the module root). The scoping encodes the
	// determinism contract: some rules are module-wide, others bind only
	// the sim-path packages.
	AppliesTo func(rel string) bool
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// simPathPackages are the packages whose code runs under simulated time
// and must be bit-reproducible: everything between the event engine and
// the experiment drivers. cmd tools and offline packages (workload
// generation, metrics aggregation, reporting) sit outside the list but
// are still covered by the module-wide rules.
var simPathPackages = map[string]bool{
	"internal/sim":       true,
	"internal/phi":       true,
	"internal/cosmic":    true,
	"internal/condor":    true,
	"internal/core":      true,
	"internal/cluster":   true,
	"internal/faults":    true,
	"internal/scheduler": true,
}

// SimPath reports whether rel is one of the sim-path packages.
func SimPath(rel string) bool { return simPathPackages[rel] }

// allPackages is the AppliesTo for module-wide rules.
func allPackages(string) bool { return true }

// Analyzers returns the full suite in stable (report) order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetRand,
		WallClock,
		MapIter,
		FloatEq,
		SortStable,
		SimGoroutine,
		ObsAlloc,
	}
}

// AnalyzerNames returns the rule names accepted by ignore directives.
func AnalyzerNames() map[string]bool {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// RunPackage applies one analyzer to one package, ignoring AppliesTo and
// suppression directives. It is the primitive the golden tests drive.
func RunPackage(a *Analyzer, pkg *Package) []Finding {
	var findings []Finding
	pass := &Pass{Fset: pkg.Fset, Pkg: pkg, Index: pkg.Index(), findings: &findings}
	a.Run(pass)
	sortFindings(findings)
	return findings
}

// Lint runs the whole suite over the packages with package scoping and
// suppression applied: the entry point behind cmd/philint. Malformed
// directives surface as findings under the pseudo-rule "philint".
func Lint(pkgs []*Package, analyzers []*Analyzer) []Finding {
	// The directive rule namespace is global: a //philint:ignore naming a
	// whole-program rule is well-formed even on a per-file-only run.
	known := AllRuleNames()
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		var findings []Finding
		pass := &Pass{Fset: pkg.Fset, Pkg: pkg, Index: pkg.Index(), findings: &findings}
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Rel) {
				continue
			}
			a.Run(pass)
		}
		dirs, malformed := directives(pkg, known)
		out = append(out, malformed...)
		for _, f := range findings {
			if !suppressed(f, dirs) {
				out = append(out, f)
			}
		}
	}
	sortFindings(out)
	return out
}

// directive is one parsed //philint:ignore comment.
type directive struct {
	file string
	line int
	rule string
}

const ignorePrefix = "philint:ignore"

// directives extracts the ignore directives from a package's comments and
// reports malformed ones (unknown rule, missing reason) as findings.
func directives(pkg *Package, known map[string]bool) ([]directive, []Finding) {
	var dirs []directive
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				switch {
				case len(fields) == 0:
					bad = append(bad, Finding{Pos: pos, Rule: "philint",
						Message: "ignore directive names no rule (want //philint:ignore <rule> <reason>)"})
				case !known[fields[0]]:
					bad = append(bad, Finding{Pos: pos, Rule: "philint",
						Message: fmt.Sprintf("ignore directive names unknown rule %q", fields[0])})
				case len(fields) < 2:
					bad = append(bad, Finding{Pos: pos, Rule: "philint",
						Message: fmt.Sprintf("ignore directive for %q gives no reason", fields[0])})
				default:
					// A trailing directive covers its own line; a
					// standalone one (nothing but whitespace before it)
					// covers the line below.
					line := pos.Line
					if isStandalone(pkg, pos) {
						line++
					}
					dirs = append(dirs, directive{file: pos.Filename, line: line, rule: fields[0]})
				}
			}
		}
	}
	return dirs, bad
}

// isStandalone reports whether only whitespace precedes the comment on
// its source line.
func isStandalone(pkg *Package, pos token.Position) bool {
	lines, ok := pkg.Lines[pos.Filename]
	if !ok || pos.Line-1 >= len(lines) || pos.Column < 1 {
		return false
	}
	line := lines[pos.Line-1]
	if pos.Column-1 > len(line) {
		return false
	}
	return strings.TrimSpace(line[:pos.Column-1]) == ""
}

// suppressed reports whether a directive covers the finding: same rule,
// same file, same (resolved) line — at the primary position, or, for a
// transitive finding, at its entry attribution.
func suppressed(f Finding, dirs []directive) bool {
	for _, d := range dirs {
		if d.rule != f.Rule {
			continue
		}
		if d.file == f.Pos.Filename && d.line == f.Pos.Line {
			return true
		}
		if f.Entry.Filename != "" && d.file == f.Entry.Filename && d.line == f.Entry.Line {
			return true
		}
	}
	return false
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// walkFuncs calls fn for every function or method body in the file,
// with the function's heuristic variable environment prebuilt. Function
// literals are visited inline by the statement scanners, not separately.
func walkFuncs(pass *Pass, file *ast.File, fn func(env *Env, body *ast.BlockStmt)) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn(pass.Index.FuncEnv(fd), fd.Body)
	}
}
