package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runWhole drives one whole-program analyzer over a fixture module with no
// suppression directives, the primitive behind the rule goldens.
func runWhole(mod *Module, wa *WholeAnalyzer) []Finding {
	var findings []Finding
	mp := &ModulePass{Mod: mod, Graph: BuildGraph(mod), findings: &findings}
	wa.Run(mp)
	sortFindings(findings)
	return findings
}

// renderEntries renders findings like render, plus the entry attribution
// whole-program findings carry.
func renderEntries(findings []Finding) string {
	var sb strings.Builder
	for _, f := range findings {
		f.Pos.Filename = filepath.Base(f.Pos.Filename)
		sb.WriteString(f.String())
		if f.Entry.Filename != "" {
			fmt.Fprintf(&sb, " [entry %s:%d]", filepath.Base(f.Entry.Filename), f.Entry.Line)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func compareGolden(t *testing.T, goldenPath, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestDetTaintWholeProgram is the acceptance fixture for the typed engine:
// the banned constructs sit two hops from the sim-path entry, through a
// helper in another package. The per-file suite passes the fixture clean;
// the whole-program gate reports them with chain and entry attribution.
func TestDetTaintWholeProgram(t *testing.T) {
	dir := filepath.Join("testdata", "dettaint")
	_, pkgs := loadFixtureModule(t, dir)

	// The old per-file suite is structurally blind here: mapiter is out of
	// scope in internal/estimator, and the wallclock site carries a local
	// suppression.
	if v1 := Lint(pkgs, Analyzers()); len(v1) != 0 {
		t.Fatalf("per-file suite should pass this fixture clean, got:\n%s", render(v1))
	}

	got := renderEntries(LintAll(pkgs, Analyzers(), WholeAnalyzers()))
	compareGolden(t, filepath.Join(dir, "expect.txt"), got)

	// The structural claims behind the golden, so a regenerated golden
	// cannot quietly weaken them.
	for _, wantFrag := range []string{
		// Two hops through another package, with the full chain spelled out.
		"core.Schedule → estimator.Blend → estimator.mix → order-sensitive range over map w",
		// The suppressed wall-clock read is re-flagged: reachability
		// disproves the suppression's "not sim state" premise.
		"core.Schedule → estimator.Stamp → time.Now (wall clock)",
		"this chain is the sim path",
	} {
		if !strings.Contains(got, wantFrag) {
			t.Errorf("missing expected finding %q in:\n%s", wantFrag, got)
		}
	}
	if strings.Contains(got, "Decay") {
		t.Errorf("dettaint directive at the entry call site failed to suppress the Decay chain:\n%s", got)
	}

	// Without directives the Decay chain IS reported, attributed to the
	// entry call site inside ScheduleQuiet — proving the suppression above
	// acted through the entry attribution, not by missing the finding.
	mod, err := TypeCheck(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	raw := renderEntries(runWhole(mod, DetTaint))
	if !strings.Contains(raw, "estimator.Decay") || !strings.Contains(raw, "[entry core.go:26]") {
		t.Errorf("raw dettaint should report the Decay chain with entry at core.go:26, got:\n%s", raw)
	}
}

// TestShardSafeWholeProgram pins the ownership model: the sanctioned
// owned-derivation chain verifies with zero findings, and every racing
// shape — direct, transitive through a shared-mask callee, opaque worker,
// lane writes to package state — is reported at its site with the Fanout
// or lane call as entry.
func TestShardSafeWholeProgram(t *testing.T) {
	dir := filepath.Join("testdata", "shardsafe")
	mod, _ := loadFixtureModule(t, dir)

	findings := runWhole(mod, ShardSafe)
	got := renderEntries(findings)
	compareGolden(t, filepath.Join(dir, "expect.txt"), got)

	for _, f := range findings {
		if f.Rule != "shardsafe" {
			t.Errorf("foreign rule %q in shardsafe run", f.Rule)
		}
	}
	// GoodScan+fill (app.go:31-47) and LaneGood (app.go:72-76) are the
	// clean half of the fixture: any finding on their lines is a precision
	// regression in the provenance model.
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		var ln int
		if _, err := fmt.Sscanf(line, "app.go:%d:", &ln); err != nil {
			continue
		}
		if (ln >= 31 && ln <= 47) || (ln >= 72 && ln <= 76) {
			t.Errorf("finding on clean fixture line: %s", line)
		}
	}
	for _, wantFrag := range []string{
		"Fanout worker writes p.total",             // direct receiver write in BadScan
		"concurrent shard workers would race",      // ...with the race explanation
		"pass the Fanout worker as a func literal", // opaque worker in Queue
		"lane callback writes package-level hits",  // direct global write in LaneBad
		"lanes run concurrently",                   // transitive write via tick
		// CapturedScan: a captured enclosing-frame local is one variable
		// shared by every worker, not frame-local.
		"Fanout worker writes total (captured enclosing-function state",
	} {
		if !strings.Contains(got, wantFrag) {
			t.Errorf("missing expected finding %q in:\n%s", wantFrag, got)
		}
	}
	// CapturedScan's clean half: the worker's own local and the owned-index
	// write into the captured table must stay unflagged.
	for _, cleanFrag := range []string{"writes local", "sums"} {
		if strings.Contains(got, cleanFrag) {
			t.Errorf("finding on clean CapturedScan construct %q:\n%s", cleanFrag, got)
		}
	}
	// bump's receiver write is reached from BadScan's entry AND
	// BadScanTwin's: both attributions must survive, or an ignore at one
	// entry would silently cover the other.
	if n := strings.Count(got, "app.go:59: shardsafe: Fanout worker writes p.total"); n != 2 {
		t.Errorf("bump violation attributed to %d entries, want 2 (BadScan and BadScanTwin):\n%s", n, got)
	}
}

// TestPureSelectWholeProgram pins the purity contract: classad.Match is
// strict (the counter write is flagged), Select implementations are
// discovered through the interface, and the internal/rng exemption admits
// the deterministic stream draw while receiver memoization stays flagged.
func TestPureSelectWholeProgram(t *testing.T) {
	dir := filepath.Join("testdata", "pureselect")
	mod, _ := loadFixtureModule(t, dir)

	findings := runWhole(mod, PureSelect)
	got := renderEntries(findings)
	compareGolden(t, filepath.Join(dir, "expect.txt"), got)

	if !strings.Contains(got, "classad.Match must be observably pure") {
		t.Errorf("Match's counter write not flagged:\n%s", got)
	}
	if !strings.Contains(got, "Sticky") {
		t.Errorf("Sticky.Select's receiver memoization not flagged:\n%s", got)
	}
	if strings.Contains(got, "Random") {
		t.Errorf("Random.Select's rng draw should be exempt:\n%s", got)
	}
	// The trace↔chase cycle: Looper.Select enters at the impure member,
	// Chaser.Select at the pure one, and Looper is analyzed first. Both
	// must flag the write — a summary for chase memoized mid-cycle (while
	// trace was still on the stack) would hide it from Chaser.
	if !strings.Contains(got, "Looper") {
		t.Errorf("Looper.Select's transitive package write not flagged:\n%s", got)
	}
	if !strings.Contains(got, "Chaser") {
		t.Errorf("Chaser.Select must see the full cycle summary (stale partial memo?):\n%s", got)
	}
}
