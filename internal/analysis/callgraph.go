package analysis

// Package-level call graph over the type-checked module. The graph is the
// substrate of the whole-program rules: dettaint walks it forward from the
// sim-path entry points, pureselect folds effect summaries along its edges,
// and shardsafe follows static edges out of Fanout closures.
//
// Resolution is deliberately conservative (a missed edge would be an
// unsound hole, a spurious edge only costs review):
//
//   - direct calls and concrete method calls produce exactly one edge;
//   - a call through an interface method produces one edge per module type
//     implementing the interface (class-hierarchy analysis);
//   - a call through a function-typed value (field, variable, parameter)
//     produces one edge per module function whose value is taken somewhere
//     in the module and whose signature matches.
//
// Function literals are not graph nodes: their bodies belong to the
// enclosing declared function, which is where a reviewer would look.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// EdgeKind says how a call site was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call or a concrete-receiver method call.
	EdgeStatic EdgeKind = iota
	// EdgeIface is one CHA target of an interface method call.
	EdgeIface
	// EdgeFunc is one address-taken candidate of a call through a
	// function-typed value.
	EdgeFunc
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeIface:
		return "iface"
	case EdgeFunc:
		return "func-value"
	}
	return "?"
}

// Edge is one resolved call: the target and the call position.
type Edge struct {
	To   *FuncInfo
	Pos  token.Pos
	Kind EdgeKind
}

// ExtCall is a call whose target is outside the module (standard library):
// the rules inspect these for banned packages and I/O.
type ExtCall struct {
	Fn  *types.Func
	Pos token.Pos
}

// Graph is the module call graph.
type Graph struct {
	Mod *Module
	// Edges lists each declared function's resolved outgoing calls in
	// source order.
	Edges map[*FuncInfo][]Edge
	// External lists each function's calls into non-module code.
	External map[*FuncInfo][]ExtCall
	// Unresolved records dynamic call sites with zero module candidates:
	// calls through function-typed values no address-taken module function
	// matches (externally produced callbacks), and calls through interface
	// methods no module type implements (values produced outside the
	// module). Conservative rules treat them as unanalyzable.
	Unresolved map[*FuncInfo][]token.Pos

	// addrTaken maps module functions whose value escapes a direct call
	// position (assigned, passed, stored) — the candidate set for EdgeFunc.
	addrTaken map[*types.Func]bool
	// impls caches CHA lookups per (interface, method name).
	implCache map[implKey][]*FuncInfo
	// named lists every defined (non-interface) type in the module.
	named []*types.Named
}

type implKey struct {
	iface *types.Interface
	name  string
}

// BuildGraph constructs the call graph for a type-checked module.
func BuildGraph(mod *Module) *Graph {
	g := &Graph{
		Mod:        mod,
		Edges:      map[*FuncInfo][]Edge{},
		External:   map[*FuncInfo][]ExtCall{},
		Unresolved: map[*FuncInfo][]token.Pos{},
		addrTaken:  map[*types.Func]bool{},
		implCache:  map[implKey][]*FuncInfo{},
	}
	g.collectNamed()
	g.collectAddressTaken()
	for _, fi := range mod.Funcs {
		g.addCalls(fi)
		g.addTakerEdges(fi)
	}
	return g
}

// addTakerEdges adds an edge from fi to every module function whose VALUE
// fi takes (passes as an argument, stores in a field, binds to a variable).
// The taken function can then run wherever the value flows — including
// through function-typed parameters, which addCalls deliberately does not
// resolve by signature — so its effects and reachability are charged to the
// taker, the one place that provably chose it.
func (g *Graph) addTakerEdges(fi *FuncInfo) {
	info := g.Mod.Info
	callee := map[ast.Expr]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			markCallee(callee, call.Fun)
		}
		return true
	})
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		var obj types.Object
		var pos token.Pos
		switch e := n.(type) {
		case *ast.Ident:
			if callee[ast.Expr(e)] {
				return true
			}
			obj = info.Uses[e]
			pos = e.Pos()
		case *ast.SelectorExpr:
			if callee[ast.Expr(e)] {
				return true
			}
			obj = info.Uses[e.Sel]
			pos = e.Sel.Pos()
		default:
			return true
		}
		if fn, ok := obj.(*types.Func); ok {
			if target, inModule := g.Mod.FuncOf[fn]; inModule {
				g.Edges[fi] = append(g.Edges[fi], Edge{To: target, Pos: pos, Kind: EdgeFunc})
			}
		}
		return true
	})
}

// collectNamed gathers every defined type in the module for CHA.
func (g *Graph) collectNamed() {
	for _, path := range sortedKeys(g.Mod.TPkg) {
		scope := g.Mod.TPkg[path].Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				if !types.IsInterface(named) {
					g.named = append(g.named, named)
				}
			}
		}
	}
}

// markCallee records every sub-expression of a call's Fun that names the
// callee — the selector, its Sel ident, and the base of a generic
// instantiation — so the address-taken walks can skip them. (ast.Inspect
// descends into a selector's children, so excluding only the outer
// expression would still count the Sel ident as a taken reference.)
func markCallee(set map[ast.Expr]bool, fun ast.Expr) {
	fun = ast.Unparen(fun)
	set[fun] = true
	switch e := fun.(type) {
	case *ast.SelectorExpr:
		set[ast.Expr(e.Sel)] = true
	case *ast.IndexExpr:
		markCallee(set, e.X)
	case *ast.IndexListExpr:
		markCallee(set, e.X)
	}
}

// collectAddressTaken marks every module function referenced outside the
// callee position of a call: those are the functions a function-typed value
// can hold.
func (g *Graph) collectAddressTaken() {
	for _, pkg := range g.Mod.Pkgs {
		for _, file := range pkg.Files {
			// First collect the expressions that ARE direct callee positions.
			callee := map[ast.Expr]bool{}
			ast.Inspect(file, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					markCallee(callee, call.Fun)
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				var obj types.Object
				switch e := n.(type) {
				case *ast.Ident:
					if callee[ast.Expr(e)] {
						return true
					}
					obj = g.Mod.Info.Uses[e]
				case *ast.SelectorExpr:
					if callee[ast.Expr(e)] {
						return true
					}
					obj = g.Mod.Info.Uses[e.Sel]
				default:
					return true
				}
				if fn, ok := obj.(*types.Func); ok {
					if _, inModule := g.Mod.FuncOf[fn]; inModule {
						g.addrTaken[fn] = true
					}
				}
				return true
			})
		}
	}
}

// addCalls resolves every call expression lexically inside fi's declaration
// (function literals included) into edges.
func (g *Graph) addCalls(fi *FuncInfo) {
	info := g.Mod.Info
	litOnly, paramFn := funcValueBindings(info, fi)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)

		// Conversions and builtin calls are not calls for our purposes.
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return true
		}
		switch callee := calleeObject(info, fun).(type) {
		case *types.Builtin:
			return true
		case *types.Func:
			sig, _ := callee.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				// Interface method call: fan out to every implementation.
				iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
				impls := g.Implementations(iface, callee.Name())
				if len(impls) == 0 {
					// No module type satisfies the interface, so the value
					// behind it was produced outside the module and the
					// dynamic target is unanalyzable — record the site so
					// the conservative rules treat it like any other
					// dynamic call, not as effect-free.
					g.Unresolved[fi] = append(g.Unresolved[fi], call.Lparen)
					return true
				}
				for _, impl := range impls {
					g.Edges[fi] = append(g.Edges[fi], Edge{To: impl, Pos: call.Lparen, Kind: EdgeIface})
				}
				return true
			}
			if target, ok := g.Mod.FuncOf[callee]; ok {
				g.Edges[fi] = append(g.Edges[fi], Edge{To: target, Pos: call.Lparen, Kind: EdgeStatic})
			} else {
				g.External[fi] = append(g.External[fi], ExtCall{Fn: callee, Pos: call.Lparen})
			}
			return true
		case nil:
			// A call through a function-typed value.
			if id, ok := fun.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if litOnly[obj] {
						// A local bound only to function literals: the
						// literal bodies are lexically inside fi, so their
						// calls and writes are already attributed here.
						// Candidate matching would only add spurious edges.
						return true
					}
					if paramFn[obj] {
						// A call through a function-typed parameter is
						// covered at each VALUE ORIGIN, not here: a module
						// function flowing in produced a taker edge where
						// its value was taken, a literal's effects belong to
						// its defining function, and an external function
						// (math.Floor) has no module effects. Matching
						// candidates by signature here would wire every
						// taken function of this shape into every such
						// caller.
						return true
					}
				}
			}
			tv, ok := info.Types[fun]
			if !ok {
				return true
			}
			sig, ok := tv.Type.Underlying().(*types.Signature)
			if !ok {
				return true
			}
			matched := false
			for _, cand := range g.funcValueCandidates(sig) {
				g.Edges[fi] = append(g.Edges[fi], Edge{To: cand, Pos: call.Lparen, Kind: EdgeFunc})
				matched = true
			}
			if !matched {
				g.Unresolved[fi] = append(g.Unresolved[fi], call.Lparen)
			}
			return true
		}
		return true
	})
}

// funcValueBindings classifies fi's function-typed objects for call
// resolution: litOnly holds locals only ever bound to function literals
// inside this body (calls through them are covered inline); paramFn holds
// the parameters of the declaration and of every nested literal.
func funcValueBindings(info *types.Info, fi *FuncInfo) (litOnly, paramFn map[types.Object]bool) {
	litBound := map[types.Object]bool{}
	otherBound := map[types.Object]bool{}
	paramFn = map[types.Object]bool{}

	addParams := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					paramFn[obj] = true
				}
			}
		}
	}
	addParams(fi.Decl.Type.Params)

	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, isLit := ast.Unparen(rhs).(*ast.FuncLit); isLit {
			litBound[obj] = true
		} else {
			otherBound[obj] = true
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			addParams(s.Type.Params)
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					bind(s.Lhs[i], s.Rhs[i])
				}
			} else {
				for _, lhs := range s.Lhs {
					bind(lhs, s.Rhs[0]) // multi-value: never a literal
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) {
					bind(name, s.Values[i])
				}
			}
		}
		return true
	})

	litOnly = map[types.Object]bool{}
	for obj := range litBound {
		if !otherBound[obj] {
			litOnly[obj] = true
		}
	}
	return litOnly, paramFn
}

// calleeObject resolves the object a call's Fun expression names, or nil
// when the callee is a computed function value.
func calleeObject(info *types.Info, fun ast.Expr) types.Object {
	switch e := fun.(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			switch obj.(type) {
			case *types.Func, *types.Builtin:
				return obj
			}
		}
	case *ast.SelectorExpr:
		if obj := info.Uses[e.Sel]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	case *ast.IndexExpr:
		// Instantiated generic function: resolve the underlying ident.
		return calleeObject(info, ast.Unparen(e.X))
	case *ast.IndexListExpr:
		return calleeObject(info, ast.Unparen(e.X))
	}
	return nil
}

// Implementations returns the module functions implementing the named method
// of the interface, across every defined type in the module (value and
// pointer receivers alike), in deterministic order.
func (g *Graph) Implementations(iface *types.Interface, method string) []*FuncInfo {
	if iface == nil {
		return nil
	}
	key := implKey{iface: iface, name: method}
	if cached, ok := g.implCache[key]; ok {
		return cached
	}
	var out []*FuncInfo
	for _, named := range g.named {
		var recv types.Type = named
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), method)
		if fn, ok := obj.(*types.Func); ok {
			if fi, ok := g.Mod.FuncOf[fn]; ok {
				out = append(out, fi)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	g.implCache[key] = out
	return out
}

// funcValueCandidates returns the address-taken module functions whose
// (receiver-stripped) signature matches sig, in deterministic order.
func (g *Graph) funcValueCandidates(sig *types.Signature) []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range g.Mod.Funcs {
		if !g.addrTaken[fi.Fn] {
			continue
		}
		cand, _ := fi.Fn.Type().(*types.Signature)
		if cand == nil {
			continue
		}
		if cand.Recv() != nil {
			// A method's value (m.F) has the receiver bound: compare the
			// remaining signature.
			cand = types.NewSignatureType(nil, nil, nil, cand.Params(), cand.Results(), cand.Variadic())
		}
		if types.Identical(cand, sig) {
			out = append(out, fi)
		}
	}
	return out
}

// chainStep records how the BFS first reached a function.
type chainStep struct {
	from *FuncInfo
	pos  token.Pos // call site inside from
}

// Reachability is the result of a multi-root BFS: for every function
// reachable from the root set, the predecessor step on a shortest chain.
type Reachability struct {
	g *Graph
	// First maps each reached function to the step that discovered it;
	// roots map to a zero step.
	first map[*FuncInfo]chainStep
	roots map[*FuncInfo]bool
}

// ReachableFrom runs a deterministic breadth-first search from the given
// roots over every edge kind.
func (g *Graph) ReachableFrom(roots []*FuncInfo) *Reachability {
	r := &Reachability{
		g:     g,
		first: map[*FuncInfo]chainStep{},
		roots: map[*FuncInfo]bool{},
	}
	ordered := append([]*FuncInfo(nil), roots...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Decl.Pos() < ordered[j].Decl.Pos() })
	var queue []*FuncInfo
	for _, root := range ordered {
		if !r.roots[root] {
			r.roots[root] = true
			r.first[root] = chainStep{}
			queue = append(queue, root)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.Edges[cur] {
			if _, seen := r.first[e.To]; seen {
				continue
			}
			r.first[e.To] = chainStep{from: cur, pos: e.Pos}
			queue = append(queue, e.To)
		}
	}
	return r
}

// Reaches reports whether fn is reachable from the root set.
func (r *Reachability) Reaches(fn *FuncInfo) bool {
	_, ok := r.first[fn]
	return ok
}

// Funcs returns every reachable function in deterministic order.
func (r *Reachability) Funcs() []*FuncInfo {
	out := make([]*FuncInfo, 0, len(r.first))
	for fi := range r.first {
		out = append(out, fi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// Chain reconstructs a shortest call chain root → … → fn. The first element
// is a sim-path (root) function; each element carries the call position
// inside the PREVIOUS element that advances the chain (the root's pos is
// the call site inside the root).
type ChainLink struct {
	Fn  *FuncInfo
	Pos token.Pos // call site inside Fn toward the next link; NoPos on the last
}

// Chain returns the shortest discovered chain ending at fn, or nil if fn is
// unreachable.
func (r *Reachability) Chain(fn *FuncInfo) []ChainLink {
	if !r.Reaches(fn) {
		return nil
	}
	var rev []ChainLink
	cur := fn
	var nextPos token.Pos = token.NoPos
	for {
		rev = append(rev, ChainLink{Fn: cur, Pos: nextPos})
		step := r.first[cur]
		if step.from == nil {
			break
		}
		nextPos = step.pos
		cur = step.from
	}
	out := make([]ChainLink, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

func sortedKeys[M map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
