package analysis

// PureSelect is the whole-program purity rule for the two function families
// whose contracts demand observable purity:
//
//   - classad.Match: evaluated concurrently by the sharded negotiator's scan
//     workers (internal/condor/shard.go), so any observable effect — an
//     escaping write, I/O, a nondeterminism source — is a data race or a
//     replay divergence waiting to happen. Match is held strictly pure.
//
//   - every implementation of a module interface with a Select method (the
//     Policy family): the sharded negotiator's equivalence proof rests on
//     Select being a function of (arguments, policy RNG stream) alone, so
//     the serial commit phase replays the exact serial decision sequence.
//     Select implementations may draw from internal/rng — the seeded stream
//     IS part of their replayed input, and its state advance is canonical —
//     so effects originating in internal/rng are exempt. Everything else
//     (receiver counters, package state, I/O) is flagged.
//
// Effects are computed transitively over the call graph via per-function
// effect summaries (effects.go): a helper three calls down that writes a
// package-level cache taints every Select that reaches it. Findings carry
// the offending site as the primary position and the target function's
// declaration as the entry attribution, so one reviewed directive on the
// declaration can sanction a function-wide exception.

import (
	"go/types"
	"sort"
)

// PureSelect is the whole-program purity rule.
var PureSelect = &WholeAnalyzer{
	Name: "pureselect",
	Doc: "require classad.Match and every Policy-style Select implementation " +
		"to be observably pure (no escaping writes, I/O, or nondeterminism " +
		"sources, transitively); Select may draw from internal/rng",
	Run: runPureSelect,
}

// pureTarget is one function held to the purity contract.
type pureTarget struct {
	fi *FuncInfo
	// exemptRNG: effects originating in internal/rng are sanctioned
	// (the Policy RNG stream).
	exemptRNG bool
	// why names the contract in the finding message.
	why string
}

func runPureSelect(p *ModulePass) {
	ef := newEffects(p.Mod, p.Graph)

	var targets []pureTarget
	seen := map[*FuncInfo]bool{}
	add := func(t pureTarget) {
		if !seen[t.fi] {
			seen[t.fi] = true
			targets = append(targets, t)
		}
	}

	for _, fi := range p.Mod.Funcs {
		if fi.Fn.FullName() == ModulePath+"/internal/classad.Match" {
			add(pureTarget{fi: fi, why: "classad.Match runs concurrently on shard workers"})
		}
	}
	for _, fi := range selectImpls(p.Graph) {
		add(pureTarget{fi: fi, exemptRNG: true,
			why: "policy Select must replay from (arguments, policy RNG) alone"})
	}
	sort.Slice(targets, func(i, j int) bool {
		return targets[i].fi.Decl.Pos() < targets[j].fi.Decl.Pos()
	})

	for _, t := range targets {
		entry := p.Position(t.fi.Decl.Name.Pos())
		for _, e := range ef.of(t.fi) {
			if t.exemptRNG && e.originRel == "internal/rng" {
				continue
			}
			p.Report(Finding{
				Pos:     p.Position(e.pos),
				Rule:    "pureselect",
				Message: funcDisplayName(t.fi) + " must be observably pure (" + t.why + ") but " + e.desc,
				Entry:   entry,
			})
		}
	}
}

// selectImpls returns every module function implementing the Select method
// of any module interface that declares one, deduplicated, in declaration
// order.
func selectImpls(g *Graph) []*FuncInfo {
	var out []*FuncInfo
	have := map[*FuncInfo]bool{}
	for _, path := range sortedKeys(g.Mod.TPkg) {
		scope := g.Mod.TPkg[path].Scope()
		for _, name := range scope.Names() {
			iface := namedInterface(scope.Lookup(name))
			if iface == nil || !interfaceHasMethod(iface, "Select") {
				continue
			}
			for _, fi := range g.Implementations(iface, "Select") {
				if !have[fi] {
					have[fi] = true
					out = append(out, fi)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// namedInterface returns the interface type a TypeName defines, or nil.
func namedInterface(obj types.Object) *types.Interface {
	tn, ok := obj.(*types.TypeName)
	if !ok || tn.IsAlias() {
		return nil
	}
	iface, _ := tn.Type().Underlying().(*types.Interface)
	return iface
}

// interfaceHasMethod reports whether the interface declares (or embeds) a
// method with the given name.
func interfaceHasMethod(iface *types.Interface, name string) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == name {
			return true
		}
	}
	return false
}
