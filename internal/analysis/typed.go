package analysis

// Typed module loading: the whole-program rules (dettaint, shardsafe,
// pureselect) need resolved types and cross-package call targets, which the
// per-file heuristic Index cannot provide. TypeCheck runs the stdlib
// go/types checker over every parsed package in dependency order, chaining
// to go/importer for the standard library, so go.mod stays dependency-free.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// ModulePath is the import-path prefix of this module's packages, matching
// the module directive in go.mod. Fixture modules reuse it so rules keyed
// on well-known paths (phishare/internal/sim.Engine.Fanout, classad.Match)
// resolve against stub packages in tests.
const ModulePath = "phishare"

// ImportPath returns the import path of a loaded package.
func ImportPath(pkg *Package) string {
	if pkg.Rel == "." {
		return ModulePath
	}
	return ModulePath + "/" + pkg.Rel
}

// Module is the fully type-checked program: every loaded package, one merged
// types.Info, and the declared-function table the call graph builds on.
type Module struct {
	Fset *token.FileSet
	// Pkgs holds the packages in dependency-first (topological) order.
	Pkgs []*Package
	// TPkg maps import path to the checked package.
	TPkg map[string]*types.Package
	// PkgOf maps import path back to the loaded source package.
	PkgOf map[string]*Package
	// Info is shared across all packages (one FileSet, disjoint ASTs).
	Info *types.Info
	// Funcs lists every function or method declared with a body in the
	// module, in deterministic (position) order.
	Funcs []*FuncInfo
	// FuncOf maps the types object of a declared function to its info.
	FuncOf map[*types.Func]*FuncInfo
}

// FuncInfo ties a declared function's types object to its syntax and its
// package. Function literals are not separate entries: their bodies are
// attributed to the enclosing declared function by the body walkers.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Rel returns the module-relative directory of the declaring package.
func (fi *FuncInfo) Rel() string { return fi.Pkg.Rel }

// TypeCheck type-checks the given packages as one module. Imports of other
// module packages resolve within the set; standard-library imports resolve
// through go/importer (export data when available, source otherwise). Any
// type error fails the whole run: the analyzers' soundness claims are
// conditional on a well-typed program.
func TypeCheck(pkgs []*Package) (*Module, error) {
	mod := &Module{
		TPkg:   map[string]*types.Package{},
		PkgOf:  map[string]*Package{},
		FuncOf: map[*types.Func]*FuncInfo{},
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		},
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		if p.Fset == nil {
			return nil, fmt.Errorf("typecheck: package %s has no FileSet", p.Rel)
		}
		if mod.Fset == nil {
			mod.Fset = p.Fset
		} else if mod.Fset != p.Fset {
			return nil, fmt.Errorf("typecheck: packages share no FileSet (load them together)")
		}
		byPath[ImportPath(p)] = p
	}

	imp := &moduleImporter{mod: mod, byPath: byPath}
	order, err := topoOrder(pkgs, byPath)
	if err != nil {
		return nil, err
	}
	for _, p := range order {
		cfg := types.Config{Importer: imp}
		tp, err := cfg.Check(ImportPath(p), mod.Fset, p.Files, mod.Info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", p.Rel, err)
		}
		mod.Pkgs = append(mod.Pkgs, p)
		mod.TPkg[ImportPath(p)] = tp
		mod.PkgOf[ImportPath(p)] = p
	}

	for _, p := range mod.Pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := mod.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Fn: fn, Decl: fd, Pkg: p}
				mod.Funcs = append(mod.Funcs, fi)
				mod.FuncOf[fn] = fi
			}
		}
	}
	sort.Slice(mod.Funcs, func(i, j int) bool {
		return mod.Funcs[i].Decl.Pos() < mod.Funcs[j].Decl.Pos()
	})
	return mod, nil
}

// moduleImporter resolves module-internal imports from the checked set and
// delegates everything else to the standard library importers. The export
// -data importer is tried first (fast); the source importer is the fallback
// for toolchains or sandboxes without export data on disk.
type moduleImporter struct {
	mod    *Module
	byPath map[string]*Package

	std    types.Importer
	source types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == ModulePath || strings.HasPrefix(path, ModulePath+"/") {
		if tp, ok := m.mod.TPkg[path]; ok {
			return tp, nil
		}
		if _, ok := m.byPath[path]; ok {
			return nil, fmt.Errorf("import cycle or out-of-order check of %s", path)
		}
		return nil, fmt.Errorf("module package %s not loaded (fixture module missing a package?)", path)
	}
	if m.std == nil {
		m.std = importer.Default()
	}
	if tp, err := m.std.Import(path); err == nil {
		return tp, nil
	}
	if m.source == nil {
		m.source = importer.ForCompiler(m.mod.Fset, "source", nil)
	}
	return m.source.Import(path)
}

// topoOrder sorts packages dependency-first, following only module-internal
// import edges. Cycles are impossible in a compiling module, but a malformed
// fixture gets a real error instead of a hang.
func topoOrder(pkgs []*Package, byPath map[string]*Package) ([]*Package, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[*Package]int{}
	var order []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch color[p] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("typecheck: import cycle through %s", p.Rel)
		}
		color[p] = grey
		for _, dep := range moduleImports(p) {
			if d, ok := byPath[dep]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		color[p] = black
		order = append(order, p)
		return nil
	}
	// Deterministic root order: Load* already sorts files; sort packages by Rel.
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Rel < sorted[j].Rel })
	for _, p := range sorted {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImports lists p's module-internal import paths, sorted.
func moduleImports(p *Package) []string {
	seen := map[string]bool{}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == ModulePath || strings.HasPrefix(path, ModulePath+"/") {
				seen[path] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for path := range seen {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}
