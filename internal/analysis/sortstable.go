package analysis

import (
	"go/ast"
	"go/token"
)

// SortStable flags sort.Slice calls whose comparator can produce ties in
// scheduling and ordering paths.
//
// sort.Slice is unstable: elements comparing equal land in an order that
// depends on the pdqsort pivot choices, which in turn depend on the input
// permutation. A single-key comparator over job values or arrival times
// therefore makes "which of two equal-priority jobs goes first" an
// accident of history — exactly the kind of hidden state the replayable
// chaos triples forbid. Use sort.SliceStable, or extend the comparator
// with a total-order tiebreak (job ID, name).
//
// Comparators the analyzer can prove tie-free are not flagged: a direct
// whole-element comparison `s[i] < s[j]` (equal elements are
// interchangeable), and chained comparators (`… || …` / `… && …`), which
// are taken as already carrying a tiebreak.
var SortStable = &Analyzer{
	Name: "sortstable",
	Doc: "flag sort.Slice with potentially tie-producing comparators in " +
		"scheduling paths; use sort.SliceStable or a total-order tiebreak",
	AppliesTo: func(rel string) bool { return SimPath(rel) || rel == "internal/knapsack" },
	Run:       runSortStable,
}

func runSortStable(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Slice" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "sort" {
				return true
			}
			cmp, ok := call.Args[1].(*ast.FuncLit)
			if !ok {
				pass.Reportf("sortstable", call.Pos(),
					"sort.Slice with an opaque comparator; use sort.SliceStable or prove the order total")
				return true
			}
			if reason, tieProne := comparatorTieProne(call.Args[0], cmp); tieProne {
				pass.Reportf("sortstable", call.Pos(),
					"sort.Slice comparator %s; use sort.SliceStable or add a total-order tiebreak",
					reason)
			}
			return true
		})
	}
}

// comparatorTieProne inspects the comparator body. It returns tieProne =
// false only for shapes that provably cannot reorder distinct equal-key
// elements (or that visibly carry their own tiebreak).
func comparatorTieProne(slice ast.Expr, cmp *ast.FuncLit) (string, bool) {
	if len(cmp.Body.List) != 1 {
		if isIfChainComparator(cmp.Body.List) {
			// The idiomatic multi-key comparator: one or more
			// `if key_i != key_j { return … }` stages falling through to a
			// final tiebreak return.
			return "", false
		}
		return "has a multi-statement body the analyzer cannot prove tie-free", true
	}
	ret, ok := cmp.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return "has a multi-statement body the analyzer cannot prove tie-free", true
	}
	expr := ret.Results[0]
	if be, ok := expr.(*ast.BinaryExpr); ok {
		switch be.Op {
		case token.LAND, token.LOR:
			// A chained comparator is taken as carrying its own tiebreak.
			return "", false
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			if wholeElementCompare(slice, cmp, be) {
				// s[i] < s[j]: equal elements are identical values, so any
				// relative order of ties is indistinguishable.
				return "", false
			}
			return "compares a single key (" + exprString(be.X) + " vs " + exprString(be.Y) + "), which can tie", true
		}
	}
	return "is not a comparison the analyzer recognizes as tie-free", true
}

// isIfChainComparator recognizes the fall-through multi-key shape: every
// statement but the last is an if whose body immediately returns, and the
// last statement is the tiebreak return.
func isIfChainComparator(stmts []ast.Stmt) bool {
	for i, stmt := range stmts {
		if i == len(stmts)-1 {
			_, ok := stmt.(*ast.ReturnStmt)
			return ok
		}
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || ifs.Else != nil || len(ifs.Body.List) != 1 {
			return false
		}
		if _, ok := ifs.Body.List[0].(*ast.ReturnStmt); !ok {
			return false
		}
	}
	return false
}

// wholeElementCompare reports whether the comparison is s[i] OP s[j] (in
// either parameter order) over the sorted slice itself.
func wholeElementCompare(slice ast.Expr, cmp *ast.FuncLit, be *ast.BinaryExpr) bool {
	params := cmp.Type.Params
	var names []string
	for _, f := range params.List {
		for _, n := range f.Names {
			names = append(names, n.Name)
		}
	}
	if len(names) != 2 {
		return false
	}
	s := exprString(slice)
	x, y := exprString(be.X), exprString(be.Y)
	return (x == s+"["+names[0]+"]" && y == s+"["+names[1]+"]") ||
		(x == s+"["+names[1]+"]" && y == s+"["+names[0]+"]")
}
