package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
)

// ObsAlloc enforces the zero-alloc-when-disabled observability contract at
// instrumentation call-sites. A trace emission like
//
//	v.Emit(now, "phi", "oom_kill", obs.F("job", id))
//
// builds its variadic []Field slice (and boxes the field values) BEFORE the
// call, so even though View.Emit is nil-safe, an unguarded call-site pays
// the allocation on every run — including uninstrumented production sweeps
// where the observer is nil. The contract is that disabled instrumentation
// costs one pointer-nil branch and nothing else, which holds only when the
// emission is wrapped in its receiver's nil guard:
//
//	if v != nil {
//		v.Emit(now, "phi", "oom_kill", obs.F("job", id))
//	}
//
// The rule flags, in sim-path packages:
//
//   - Emit calls carrying field arguments (more than the fixed time/layer/
//     kind triple) whose receiver is not nil-checked by an enclosing if —
//     the variadic slice would allocate on the disabled path;
//   - fmt.Sprint/Sprintf/Sprintln anywhere in an unguarded Emit call's
//     arguments — string formatting allocates regardless of arity.
//
// Guard detection is textual, matching the suite's no-type-checker design:
// an enclosing `if x != nil { ... }` (including `&&` conjunctions) guards
// every Emit whose receiver prints as x. Disjunctions (`||`) guarantee
// nothing and do not count. Nil-safe metric handles (Counter.Inc,
// Histogram.Observe) are method calls on non-variadic receivers and stay
// unflagged: they allocate nothing when disabled.
var ObsAlloc = &Analyzer{
	Name: "obsalloc",
	Doc: "instrumentation call-sites must not allocate when observability is " +
		"disabled; wrap field-carrying Emit calls in their receiver's nil guard",
	AppliesTo: SimPath,
	Run:       runObsAlloc,
}

// emitFixedArgs is the arity of an Emit call with no fields: (at, layer,
// kind). Anything beyond it materializes a variadic []Field.
const emitFixedArgs = 3

func runObsAlloc(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		fmtName := "fmt"
		for _, imp := range file.Imports {
			if path, _ := strconv.Unquote(imp.Path.Value); path == "fmt" && imp.Name != nil {
				fmtName = imp.Name.Name
			}
		}

		// Pass 1: collect the body ranges guarded by a receiver nil-check.
		type guardRange struct {
			recv     string
			from, to token.Pos
		}
		var guards []guardRange
		ast.Inspect(file, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			for _, recv := range nilCheckedExprs(ifs.Cond) {
				guards = append(guards, guardRange{recv, ifs.Body.Pos(), ifs.Body.End()})
			}
			return true
		})
		guarded := func(recv string, pos token.Pos) bool {
			for _, g := range guards {
				if g.recv == recv && g.from <= pos && pos < g.to {
					return true
				}
			}
			return false
		}

		// Pass 2: check the Emit call-sites.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Emit" {
				return true
			}
			recv := exprText(sel.X)
			if recv == "" || guarded(recv, call.Pos()) {
				return true
			}
			if len(call.Args) > emitFixedArgs {
				pass.Reportf("obsalloc", call.Pos(),
					"%s.Emit builds its field slice even when observability is off; wrap the call in `if %s != nil`",
					recv, recv)
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					c, ok := a.(*ast.CallExpr)
					if !ok {
						return true
					}
					if s, ok := c.Fun.(*ast.SelectorExpr); ok {
						if id, ok := s.X.(*ast.Ident); ok && id.Name == fmtName &&
							(s.Sel.Name == "Sprintf" || s.Sel.Name == "Sprint" || s.Sel.Name == "Sprintln") {
							pass.Reportf("obsalloc", c.Pos(),
								"%s.%s allocates inside an unguarded %s.Emit; format under `if %s != nil` only",
								fmtName, s.Sel.Name, recv, recv)
						}
					}
					return true
				})
			}
			return true
		})
	}
}

// nilCheckedExprs extracts the expressions an if-condition proves non-nil:
// `x != nil` and `nil != x` terms reachable through `&&` conjunctions.
// `||` branches prove nothing (either side may be skipped) and parenthesized
// conditions unwrap transparently.
func nilCheckedExprs(cond ast.Expr) []string {
	switch v := cond.(type) {
	case *ast.ParenExpr:
		return nilCheckedExprs(v.X)
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			return append(nilCheckedExprs(v.X), nilCheckedExprs(v.Y)...)
		case token.NEQ:
			if isNilIdent(v.Y) {
				if t := exprText(v.X); t != "" {
					return []string{t}
				}
			}
			if isNilIdent(v.X) {
				if t := exprText(v.Y); t != "" {
					return []string{t}
				}
			}
		}
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// exprText renders an identifier or selector chain ("v", "p.obs",
// "m.host.obs") for textual guard matching; anything else (a call result,
// an index expression) yields "" and is never considered guarded or
// guardable.
func exprText(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		if x := exprText(v.X); x != "" {
			return x + "." + v.Sel.Name
		}
	}
	return ""
}
