package analysis

import (
	"go/ast"
	"strconv"
)

// WallClock forbids reading the host's clock. Simulated components must
// take time from the sim.Engine's virtual clock; a time.Now in a
// scheduling path makes outcomes depend on host speed and load, which is
// exactly the nondeterminism the replayable chaos triples and the
// bit-identical policy comparisons cannot tolerate.
//
// The rule is module-wide: sim-path packages must never need an
// exemption, while wall-clock-legitimate sites (the phibench timing
// harness reporting how long the *experiment driver* took) carry a
// per-line //philint:ignore wallclock annotation instead of a package
// exemption, so each use is individually reviewed.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock reads (time.Now, time.Since, timers, sleeps); " +
		"simulation code takes time from the sim.Engine clock",
	AppliesTo: allPackages,
	Run:       runWallClock,
}

// wallClockIdents are the time-package identifiers that observe or wait on
// the host clock. Pure-value identifiers (time.Duration, time.Millisecond)
// stay legal: they denote quantities, not clock reads.
var wallClockIdents = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

func runWallClock(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		timeName := ""
		for _, imp := range file.Imports {
			if path, _ := strconv.Unquote(imp.Path.Value); path == "time" {
				timeName = "time"
				if imp.Name != nil {
					timeName = imp.Name.Name
				}
			}
		}
		if timeName == "" || timeName == "_" || timeName == "." {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName && wallClockIdents[sel.Sel.Name] {
				pass.Reportf("wallclock", sel.Pos(),
					"%s.%s reads the wall clock; simulation state must advance on the sim.Engine clock",
					timeName, sel.Sel.Name)
			}
			return true
		})
	}
}
