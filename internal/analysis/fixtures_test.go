package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixtureModule loads a multi-package fixture: dir contains one
// subdirectory per package plus a packages.txt manifest mapping each
// subdirectory to the module-relative path it plays, e.g.
//
//	entry internal/core
//	helper internal/helperlib
//
// The fixture packages import each other under phishare/<rel>, exactly like
// real module packages, and the whole set is type-checked as a module.
func loadFixtureModule(t *testing.T, dir string) (*Module, []*Package) {
	t.Helper()
	manifest, err := os.ReadFile(filepath.Join(dir, "packages.txt"))
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, line := range strings.Split(string(manifest), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 2 {
			t.Fatalf("fixture %s: malformed manifest line %q", dir, line)
		}
		sub, rel := fields[0], fields[1]
		pkg, err := LoadDir(fset, filepath.Join(dir, sub), rel)
		if err != nil {
			t.Fatalf("fixture %s/%s: %v", dir, sub, err)
		}
		if pkg == nil {
			t.Fatalf("fixture %s/%s: no Go files", dir, sub)
		}
		pkgs = append(pkgs, pkg)
	}
	mod, err := TypeCheck(pkgs)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	return mod, pkgs
}

// fixtureFunc finds a declared function by package rel and name; methods are
// addressed as "Type.Method" or "(*Type).Method"-style via their Name only
// when unambiguous, or "Recv.Name" otherwise.
func fixtureFunc(t *testing.T, mod *Module, rel, name string) *FuncInfo {
	t.Helper()
	var found *FuncInfo
	for _, fi := range mod.Funcs {
		if fi.Pkg.Rel != rel {
			continue
		}
		n := fi.Fn.Name()
		if fi.Decl.Recv != nil && len(fi.Decl.Recv.List) > 0 {
			n = recvTypeName(fi) + "." + n
		}
		if n == name || fi.Fn.Name() == name {
			if found != nil {
				t.Fatalf("fixtureFunc: %s %s is ambiguous", rel, name)
			}
			found = fi
		}
	}
	if found == nil {
		t.Fatalf("fixtureFunc: no function %s in %s", name, rel)
	}
	return found
}
