package analysis

// ShardSafe is the whole-program shard-ownership rule. sim.Engine.Fanout is
// the module's only sanctioned intra-event concurrency primitive: N workers
// run one closure between event barriers, and the determinism/race contract
// (DESIGN.md, internal/condor/shard.go) is that worker k writes only state
// it owns — its own locals and values derived from the shard index k.
//
// The rule verifies that contract structurally. For each Fanout call site it
// takes the worker closure, marks the index parameter as shard-OWNED, and
// propagates ownership through the closure's provenance environment:
//
//   - indexing any table by an owned value yields owned state
//     (shards[k], tab[sh.lo]);
//   - slicing a shared table with owned bounds yields the shard's own
//     partition (p.machines[sh.lo:sh.hi]);
//   - ranging over an owned collection yields owned elements.
//
// Writes whose root is neither worker-local nor owned are flagged —
// including writes to locals of the enclosing function captured by the
// worker closure, which are one variable shared by every worker — as are
// I/O calls, stdlib calls that may write through shared pointer arguments,
// and dynamic calls no module function matches. Module
// calls are followed transitively — including interface dispatch and
// function-value candidates — re-deriving ownership for the callee from the
// provenance of the arguments at each call site, so a helper that writes
// its receiver is fine when the receiver is the worker's shard and a race
// when it is the shared pool. Callees in internal/sim itself are exempt:
// the engine's own barrier machinery is the sanctioned primitive.
//
// The same machinery checks lane-affine callbacks (sim.Lane.At / After /
// AtTimer / AfterTimer) with a weaker contract: lane callbacks own their
// node's state by construction (the lane partition), so only writes to
// package-level variables and raw I/O are flagged — transitively, except
// for effects originating inside internal/obs or internal/sim, whose
// cross-lane buffers are the flush-ordered observability boundary PR 7
// audited.
//
// Findings are attributed to the offending site (primary position) and the
// Fanout/lane call site (entry position); an ignore directive at either
// suppresses.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardSafe is the whole-program Fanout/lane ownership rule.
var ShardSafe = &WholeAnalyzer{
	Name: "shardsafe",
	Doc: "closures passed to sim.Engine.Fanout may write only shard-owned " +
		"state (locals and values derived from the shard index), " +
		"transitively through every call; lane callbacks may not touch " +
		"package-level state or perform I/O",
	Run: runShardSafe,
}

const fanoutFullName = "(*" + ModulePath + "/internal/sim.Engine).Fanout"

// laneSchedFullNames are the Lane scheduling methods whose callbacks run on
// lane workers.
var laneSchedFullNames = map[string]bool{
	"(*" + ModulePath + "/internal/sim.Lane).At":         true,
	"(*" + ModulePath + "/internal/sim.Lane).After":      true,
	"(*" + ModulePath + "/internal/sim.Lane).AtTimer":    true,
	"(*" + ModulePath + "/internal/sim.Lane).AfterTimer": true,
}

func runShardSafe(p *ModulePass) {
	sc := &shardChecker{
		p:        p,
		ef:       newEffects(p.Mod, p.Graph),
		visiting: map[shardVisitKey]bool{},
		reported: map[shardReportKey]bool{},
		edgesAt:  map[*FuncInfo]map[token.Pos][]Edge{},
		extAt:    map[*FuncInfo]map[token.Pos][]ExtCall{},
		unresAt:  map[*FuncInfo]map[token.Pos]bool{},
	}
	for _, fi := range p.Mod.Funcs {
		if fi.Pkg.Rel == "internal/sim" {
			continue // the engine schedules on itself freely
		}
		seenPos := map[token.Pos]bool{}
		for _, edge := range p.Graph.Edges[fi] {
			if seenPos[edge.Pos] {
				continue
			}
			full := edge.To.Fn.FullName()
			switch {
			case full == fanoutFullName:
				seenPos[edge.Pos] = true
				sc.checkFanoutSite(fi, edge.Pos)
			case laneSchedFullNames[full]:
				seenPos[edge.Pos] = true
				sc.checkLaneSite(fi, edge.Pos)
			}
		}
	}
}

// shardVisitKey memoizes transitive callee checks per ownership mask (bit 0
// is the receiver, bit 1+i parameter i) and per entry site, so a violating
// callee reached from a second Fanout/lane entry is re-reported there — an
// ignore directive at one entry must not cover the other.
type shardVisitKey struct {
	fi    *FuncInfo
	mask  uint64
	entry token.Pos
}

type shardReportKey struct {
	pos   token.Pos
	entry token.Pos
}

type shardChecker struct {
	p  *ModulePass
	ef *effects

	visiting map[shardVisitKey]bool
	reported map[shardReportKey]bool

	edgesAt map[*FuncInfo]map[token.Pos][]Edge
	extAt   map[*FuncInfo]map[token.Pos][]ExtCall
	unresAt map[*FuncInfo]map[token.Pos]bool
}

func (sc *shardChecker) report(pos, entry token.Pos, msg string) {
	key := shardReportKey{pos: pos, entry: entry}
	if sc.reported[key] {
		return
	}
	sc.reported[key] = true
	sc.p.Report(Finding{
		Pos:     sc.p.Position(pos),
		Rule:    "shardsafe",
		Message: msg,
		Entry:   sc.p.Position(entry),
	})
}

// siteMaps lazily indexes fi's edges, external calls, and unresolved call
// sites by position.
func (sc *shardChecker) siteMaps(fi *FuncInfo) (map[token.Pos][]Edge, map[token.Pos][]ExtCall, map[token.Pos]bool) {
	if m, ok := sc.edgesAt[fi]; ok {
		return m, sc.extAt[fi], sc.unresAt[fi]
	}
	edges := map[token.Pos][]Edge{}
	for _, e := range sc.p.Graph.Edges[fi] {
		edges[e.Pos] = append(edges[e.Pos], e)
	}
	exts := map[token.Pos][]ExtCall{}
	for _, e := range sc.p.Graph.External[fi] {
		exts[e.Pos] = append(exts[e.Pos], e)
	}
	unres := map[token.Pos]bool{}
	for _, pos := range sc.p.Graph.Unresolved[fi] {
		unres[pos] = true
	}
	sc.edgesAt[fi] = edges
	sc.extAt[fi] = exts
	sc.unresAt[fi] = unres
	return edges, exts, unres
}

// checkFanoutSite verifies the worker closure at one Fanout call.
func (sc *shardChecker) checkFanoutSite(fi *FuncInfo, pos token.Pos) {
	call := sc.ef.callSites(fi)[pos]
	if call == nil || len(call.Args) < 2 {
		return
	}
	entry := call.Lparen
	worker := ast.Unparen(call.Args[1])
	lit, ok := worker.(*ast.FuncLit)
	if !ok {
		sc.report(worker.Pos(), entry,
			"pass the Fanout worker as a func literal at the call site so its shard writes can be verified")
		return
	}
	overrides := map[types.Object]provVal{}
	if params := lit.Type.Params; params != nil && len(params.List) > 0 && len(params.List[0].Names) > 0 {
		if obj := sc.p.Mod.Info.Defs[params.List[0].Names[0]]; obj != nil {
			overrides[obj] = provVal{kind: pOwned}
		}
	}
	env := buildProvEnv(sc.p.Mod, fi, overrides)
	// Locals of the enclosing function captured by the worker are ONE
	// variable shared by every shard worker: demote them from frame-local
	// to captured so their writes are flagged.
	env.restrictToLiteral(lit)
	sc.checkRegion(fi, env, lit.Body, entry)
}

// checkRegion flags shared writes, I/O, and unanalyzable calls inside one
// AST region of fi (a closure body or a whole callee body), recursing into
// module callees with re-derived ownership.
func (sc *shardChecker) checkRegion(fi *FuncInfo, env *provEnv, region ast.Node, entry token.Pos) {
	for _, w := range writesIn(region) {
		val := env.writeProv(w)
		if val.isShared() {
			sc.report(w.pos, entry,
				"Fanout worker writes "+exprString(w.target)+" ("+val.kind.String()+
					" state, not shard-owned): concurrent shard workers would race")
		}
	}
	_, exts, unres := sc.siteMaps(fi)
	calls := map[token.Pos]*ast.CallExpr{}
	ast.Inspect(region, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pos := call.Lparen
		calls[pos] = call
		for _, ext := range exts[pos] {
			if isIOFunc(ext.Fn) {
				sc.report(pos, entry, "Fanout worker calls "+extDisplayName(ext.Fn)+" (I/O is not shard-safe)")
			}
		}
		if len(exts[pos]) > 0 {
			for _, arg := range externalPointerArgs(sc.p.Mod, call) {
				val := env.provOf(arg)
				if val.isShared() {
					sc.report(pos, entry,
						"Fanout worker passes "+exprString(arg)+" ("+val.kind.String()+
							" state) to a standard-library call that may write through it")
				}
			}
		}
		if unres[pos] {
			sc.report(pos, entry,
				"Fanout worker calls a dynamic callee (function value or interface) no module function matches; its writes cannot be verified")
		}
		return true
	})
	// Follow every edge anchored inside the region: calls (mask derived from
	// the call-site arguments) and taker edges (a function value taken here
	// can run on this worker; nothing is provably owned for it).
	for _, edge := range regionEdges(sc.p.Graph, fi, region) {
		if edge.To.Pkg.Rel == "internal/sim" {
			continue // the engine's own machinery is the sanctioned primitive
		}
		var mask uint64
		if call := calls[edge.Pos]; call != nil {
			mask = sc.callMask(env, call, edge)
		}
		sc.checkCallee(edge.To, mask, entry)
	}
}

// regionEdges returns fi's outgoing edges anchored within the region span.
func regionEdges(g *Graph, fi *FuncInfo, region ast.Node) []Edge {
	var out []Edge
	for _, e := range g.Edges[fi] {
		if e.Pos >= region.Pos() && e.Pos < region.End() {
			out = append(out, e)
		}
	}
	return out
}

// callMask derives the callee's ownership mask from the provenance of the
// call-site arguments: a receiver or parameter fed something local or owned
// is safe for the callee to write through.
func (sc *shardChecker) callMask(env *provEnv, call *ast.CallExpr, edge Edge) uint64 {
	sig, _ := edge.To.Fn.Type().(*types.Signature)
	if sig == nil || edge.Kind == EdgeFunc {
		// A call through a function value loses the receiver binding;
		// nothing is provably owned.
		return 0
	}
	var mask uint64
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if !env.provOf(sel.X).isShared() {
				mask |= 1
			}
		}
	}
	np := sig.Params().Len()
	for i := 0; i < np && i < 62; i++ {
		owned := false
		if sig.Variadic() && i == np-1 {
			owned = true
			for j := i; j < len(call.Args); j++ {
				if env.provOf(call.Args[j]).isShared() {
					owned = false
					break
				}
			}
		} else if i < len(call.Args) {
			owned = !env.provOf(call.Args[i]).isShared()
		}
		if owned {
			mask |= 1 << uint(i+1)
		}
	}
	return mask
}

// checkCallee verifies a transitively-reached function under the given
// ownership mask.
func (sc *shardChecker) checkCallee(fi *FuncInfo, mask uint64, entry token.Pos) {
	key := shardVisitKey{fi: fi, mask: mask, entry: entry}
	if sc.visiting[key] {
		return
	}
	sc.visiting[key] = true

	overrides := map[types.Object]provVal{}
	sig, _ := fi.Fn.Type().(*types.Signature)
	if sig != nil {
		if recv := sig.Recv(); recv != nil && mask&1 != 0 {
			overrides[recv] = provVal{kind: pOwned}
		}
		for i := 0; i < sig.Params().Len() && i < 62; i++ {
			if mask&(1<<uint(i+1)) != 0 {
				overrides[sig.Params().At(i)] = provVal{kind: pOwned}
			}
		}
	}
	env := buildProvEnv(sc.p.Mod, fi, overrides)
	sc.checkRegion(fi, env, fi.Decl.Body, entry)
}

// checkLaneSite verifies a lane callback: no package-level writes, no I/O,
// directly or transitively (effects originating in internal/obs and
// internal/sim are the sanctioned observability/engine boundary).
func (sc *shardChecker) checkLaneSite(fi *FuncInfo, pos token.Pos) {
	call := sc.ef.callSites(fi)[pos]
	if call == nil || len(call.Args) < 2 {
		return
	}
	entry := call.Lparen
	lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	if !ok {
		return // named callbacks are covered when their package is analyzed
	}
	env := buildProvEnv(sc.p.Mod, fi, nil)
	for _, w := range writesIn(lit.Body) {
		if env.writeProv(w).kind == pGlobal {
			sc.report(w.pos, entry,
				"lane callback writes package-level "+exprString(w.target)+
					": lanes run concurrently, only lane-owned (node) state is safe")
		}
	}
	_, exts, _ := sc.siteMaps(fi)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, ext := range exts[call.Lparen] {
			if isIOFunc(ext.Fn) {
				sc.report(call.Lparen, entry, "lane callback calls "+extDisplayName(ext.Fn)+" (I/O is not lane-safe)")
			}
		}
		return true
	})
	for _, edge := range regionEdges(sc.p.Graph, fi, lit.Body) {
		if edge.To.Pkg.Rel == "internal/sim" {
			continue
		}
		for _, e := range sc.ef.of(edge.To) {
			if e.originRel == "internal/obs" || e.originRel == "internal/sim" {
				continue
			}
			switch {
			case e.kind == effIO:
				sc.report(e.pos, entry, "lane callback transitively performs I/O: "+e.desc)
			case e.kind == effWriteShared && e.via.kind == pGlobal:
				sc.report(e.pos, entry, "lane callback transitively "+e.desc+": lanes run concurrently")
			}
		}
	}
}
