package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// DetRand forbids math/rand outside internal/rng, the sanctioned wrapper.
//
// Every random draw in the simulation must flow through an rng.Source
// seeded from the experiment configuration: that is what makes a
// (seed, profile, policy) triple replayable and every table in the paper
// reproducible. A bare rand.Intn — or worse, an unseeded global source —
// injects process-lifetime state into the run and silently breaks
// bit-identical replay.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid math/rand (and math/rand/v2) outside internal/rng; " +
		"all randomness must flow through a seeded rng.Source",
	AppliesTo: func(rel string) bool { return rel != "internal/rng" },
	Run:       runDetRand,
}

func runDetRand(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		names := randImports(file)
		if len(names) > 0 {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && names[id.Name] {
					pass.Reportf("detrand", sel.Pos(),
						"%s.%s uses math/rand directly; draw from an internal/rng.Source seeded by the experiment config",
						id.Name, sel.Sel.Name)
				}
				return true
			})
		}
		// Blank and dot imports have no reviewable call sites (init-time
		// side effects, or names merged into the file scope); the import
		// line itself is the finding.
		for _, imp := range file.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if !isRandPath(path) {
				continue
			}
			if imp.Name != nil && (imp.Name.Name == "_" || imp.Name.Name == ".") {
				pass.Reportf("detrand", imp.Pos(),
					"%s import of %s outside internal/rng; use a seeded rng.Source", imp.Name.Name, path)
			}
		}
	}
}

// randImports maps the local names under which the file imports
// math/rand or math/rand/v2.
func randImports(file *ast.File) map[string]bool {
	names := map[string]bool{}
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !isRandPath(path) {
			continue
		}
		name := "rand"
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			// Dot imports hide call sites; report the import itself below
			// by leaving it out of the usable-name set.
			continue
		}
		names[name] = true
	}
	return names
}

func isRandPath(path string) bool {
	return path == "math/rand" || strings.HasPrefix(path, "math/rand/")
}
