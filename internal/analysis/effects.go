package analysis

// Effect summaries and provenance classification: the dataflow substrate of
// pureselect and shardsafe.
//
// Provenance answers "whose memory does this expression reach?" for an
// lvalue or argument inside one function: the function's own locals
// (including locally allocated heap), its receiver, one of its parameters,
// package-level state, a Fanout-shard-owned value, or unknown. The
// classification is heuristic in the direction the rules need: anything not
// provably local/owned is treated as shared, so a hole costs a review, not
// a missed race.
//
// Effect summaries lift provenance across calls: each function gets the set
// of observable effects it can perform — writes that escape its own frame
// (classified by which caller-visible root they reach), I/O, banned
// nondeterminism calls, and unanalyzable dynamic calls — folded transitively
// over the call graph. A callee's write-through-parameter becomes an effect
// of the caller only if the caller passed something non-local in that
// position, which is what lets strings.Builder-style local mutation stay
// invisible while a write into a captured pool escapes.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// prov classifies what an expression's value can reach.
type prov uint8

const (
	// pLocal: the function's own frame or heap it allocated itself.
	pLocal prov = iota
	// pOwned: derived from the Fanout shard index (shardsafe only).
	pOwned
	// pCaptured: a local of the enclosing function captured by a worker
	// closure — one variable shared by every shard worker (shardsafe only).
	pCaptured
	// pRecv: reaches the receiver.
	pRecv
	// pParam: reaches parameter provVal.param.
	pParam
	// pGlobal: reaches package-level state.
	pGlobal
	// pUnknown: anything the heuristics cannot place (call results, …);
	// treated as shared.
	pUnknown
)

func (p prov) String() string {
	switch p {
	case pLocal:
		return "local"
	case pOwned:
		return "shard-owned"
	case pCaptured:
		return "captured enclosing-function"
	case pRecv:
		return "receiver"
	case pParam:
		return "parameter"
	case pGlobal:
		return "package-level"
	}
	return "shared"
}

// provVal is a provenance value; param is meaningful for pParam.
type provVal struct {
	kind  prov
	param int
}

func localVal() provVal { return provVal{kind: pLocal} }

// isShared reports whether writing through this provenance escapes the
// function's own frame (owned counts as not shared: the shard ownership
// discipline makes it race-free).
func (v provVal) isShared() bool {
	switch v.kind {
	case pLocal, pOwned:
		return false
	}
	return true
}

// provEnv is the provenance environment of one declared function: bindings
// for receiver, parameters, and locals whose initializer makes their
// provenance evident. Function literals share the enclosing environment
// (object identity keeps bindings unambiguous); analyzers may overlay
// additional bindings (the Fanout index parameter, owned callee params).
type provEnv struct {
	mod  *Module
	fi   *FuncInfo
	vals map[types.Object]provVal

	// litLo/litHi, when valid, delimit the span of a worker func literal
	// (shardsafe Fanout workers): locals declared OUTSIDE the span are
	// captured enclosing-frame state — one variable shared by every shard
	// worker — not frame-local.
	litLo, litHi token.Pos
}

// restrictToLiteral marks the worker-literal span and re-derives local
// bindings under the capture boundary, so a variable bound inside the
// literal from captured state (a ranged element, an alias) inherits the
// captured classification. rebind keeps the worse value, so this only
// demotes.
func (env *provEnv) restrictToLiteral(lit *ast.FuncLit) {
	env.litLo, env.litHi = lit.Pos(), lit.End()
	for sweep := 0; sweep < 2; sweep++ {
		env.bindLocals(env.fi.Decl.Body)
	}
}

// capturedLocal reports whether obj is declared outside the worker-literal
// span (meaningful only after restrictToLiteral).
func (env *provEnv) capturedLocal(obj types.Object) bool {
	if !env.litLo.IsValid() {
		return false
	}
	return obj.Pos() < env.litLo || obj.Pos() >= env.litHi
}

// buildProvEnv constructs the environment with the given overrides applied
// after parameter/receiver initialization. Local bindings are inferred in
// two sweeps so forward references settle.
func buildProvEnv(mod *Module, fi *FuncInfo, overrides map[types.Object]provVal) *provEnv {
	env := &provEnv{mod: mod, fi: fi, vals: map[types.Object]provVal{}}
	sig, _ := fi.Fn.Type().(*types.Signature)
	if sig != nil {
		if recv := sig.Recv(); recv != nil {
			env.vals[recv] = provVal{kind: pRecv}
		}
		for i := 0; i < sig.Params().Len(); i++ {
			env.vals[sig.Params().At(i)] = provVal{kind: pParam, param: i}
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if v := sig.Results().At(i); v.Name() != "" {
				env.vals[v] = localVal()
			}
		}
	}
	for obj, val := range overrides {
		env.vals[obj] = val
	}
	// Literal parameters default to pUnknown (values arrive from whoever
	// invokes the literal) unless overridden; bind them before the local
	// sweeps so closure bodies resolve.
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		for _, field := range fl.Type.Params.List {
			for _, name := range field.Names {
				if obj := mod.Info.Defs[name]; obj != nil {
					if _, bound := env.vals[obj]; !bound {
						env.vals[obj] = provVal{kind: pUnknown}
					}
				}
			}
		}
		return true
	})
	for sweep := 0; sweep < 2; sweep++ {
		env.bindLocals(fi.Decl.Body)
	}
	return env
}

// bindLocals records provenance for local variables bound by :=, var, and
// range statements. Rebinding keeps the worse (more shared) value so a
// variable that ever held shared state stays shared.
func (env *provEnv) bindLocals(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := env.mod.Info.Defs[id]
				if obj == nil && s.Tok == token.ASSIGN {
					obj = env.mod.Info.Uses[id]
				}
				if obj == nil || !env.isLocalObj(obj) {
					continue
				}
				env.rebind(obj, env.provOf(s.Rhs[i]))
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := env.mod.Info.Defs[name]
					if obj == nil {
						continue
					}
					if i < len(vs.Values) {
						env.rebind(obj, env.provOf(vs.Values[i]))
					} else {
						env.rebind(obj, localVal())
					}
				}
			}
		case *ast.RangeStmt:
			elem := env.provOf(s.X)
			if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
				if obj := env.mod.Info.Defs[id]; obj != nil {
					// Keys are values (ints, strings, map keys): local.
					env.rebind(obj, localVal())
				}
			}
			if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
				if obj := env.mod.Info.Defs[id]; obj != nil {
					// Elements inherit the collection's provenance: a
					// pointer ranged out of an owned slice is owned, out of
					// a shared one shared.
					env.rebind(obj, elem)
				}
			}
		}
		return true
	})
}

// rebind records val for obj, keeping the worse of the two on conflict.
func (env *provEnv) rebind(obj types.Object, val provVal) {
	cur, ok := env.vals[obj]
	if !ok {
		env.vals[obj] = val
		return
	}
	if provRank(val.kind) > provRank(cur.kind) {
		env.vals[obj] = val
	}
}

// provRank orders provenance by "badness" for rebinding: once shared,
// always shared; owned loses to shared but beats local.
func provRank(p prov) int {
	switch p {
	case pLocal:
		return 0
	case pOwned:
		return 1
	case pCaptured, pRecv, pParam:
		return 2
	case pUnknown:
		return 3
	case pGlobal:
		return 4
	}
	return 3
}

// isLocalObj reports whether obj is function-local (not a package-level
// var), so assignments to it update the environment rather than count as
// global writes.
func (env *provEnv) isLocalObj(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.Pkg() == nil {
		return true
	}
	return v.Parent() != v.Pkg().Scope()
}

// provOf classifies an expression.
func (env *provEnv) provOf(e ast.Expr) provVal {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := env.mod.Info.Uses[v]
		if obj == nil {
			obj = env.mod.Info.Defs[v]
		}
		if obj == nil {
			return provVal{kind: pUnknown}
		}
		if val, ok := env.vals[obj]; ok {
			if val.kind == pLocal && env.capturedLocal(obj) {
				return provVal{kind: pCaptured}
			}
			return val
		}
		if !env.isLocalObj(obj) {
			if _, isVar := obj.(*types.Var); isVar {
				return provVal{kind: pGlobal}
			}
			return localVal() // consts, types, funcs
		}
		if env.capturedLocal(obj) {
			return provVal{kind: pCaptured}
		}
		return localVal()
	case *ast.SelectorExpr:
		// Qualified package references (pkg.Var) root at the package.
		if id, ok := v.X.(*ast.Ident); ok {
			if _, isPkg := env.mod.Info.Uses[id].(*types.PkgName); isPkg {
				if _, isVar := env.mod.Info.Uses[v.Sel].(*types.Var); isVar {
					return provVal{kind: pGlobal}
				}
				return localVal()
			}
		}
		return env.provOf(v.X)
	case *ast.IndexExpr:
		if env.containsOwned(v.Index) {
			// Indexing any table by the shard index yields shard-owned
			// state: the Fanout ownership convention.
			return provVal{kind: pOwned}
		}
		return env.provOf(v.X)
	case *ast.SliceExpr:
		if v.Low != nil && v.High != nil &&
			env.provOf(v.Low).kind == pOwned && env.provOf(v.High).kind == pOwned {
			// Slicing a shared table by owned bounds yields the shard's
			// partition: owned.
			return provVal{kind: pOwned}
		}
		return env.provOf(v.X)
	case *ast.StarExpr:
		return env.provOf(v.X)
	case *ast.TypeAssertExpr:
		return env.provOf(v.X)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return env.provOf(v.X)
		}
		return localVal()
	case *ast.CompositeLit, *ast.BasicLit, *ast.FuncLit, *ast.BinaryExpr:
		return localVal()
	case *ast.CallExpr:
		fun := ast.Unparen(v.Fun)
		if tv, ok := env.mod.Info.Types[fun]; ok && tv.IsType() && len(v.Args) == 1 {
			return env.provOf(v.Args[0]) // conversion
		}
		if id, ok := fun.(*ast.Ident); ok {
			if _, isBuiltin := env.mod.Info.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "make", "new", "len", "cap", "min", "max":
					return localVal()
				case "append":
					if len(v.Args) > 0 {
						return env.provOf(v.Args[0])
					}
				}
			}
		}
		return provVal{kind: pUnknown}
	}
	return provVal{kind: pUnknown}
}

// writeProv classifies a write. Assigning to a bare identifier rebinds the
// variable — frame-local for locals, parameters, and named results whatever
// value they hold — while any path expression (selector, index, star) or a
// through-write reaches the value's memory and takes the value's
// provenance.
func (env *provEnv) writeProv(w write) provVal {
	if !w.through {
		if id, ok := ast.Unparen(w.target).(*ast.Ident); ok {
			obj := env.mod.Info.Uses[id]
			if obj == nil {
				obj = env.mod.Info.Defs[id]
			}
			if obj != nil && env.isLocalObj(obj) {
				if env.capturedLocal(obj) {
					return provVal{kind: pCaptured}
				}
				return localVal()
			}
			return provVal{kind: pGlobal}
		}
	}
	return env.provOf(w.target)
}

// containsOwned reports whether any identifier inside e carries pOwned
// provenance (e.g. the Fanout index, or sh.lo with sh owned).
func (env *provEnv) containsOwned(e ast.Expr) bool {
	owned := false
	ast.Inspect(e, func(n ast.Node) bool {
		if owned {
			return false
		}
		if sub, ok := n.(ast.Expr); ok {
			switch sub.(type) {
			case *ast.Ident, *ast.SelectorExpr:
				if env.provOf(sub).kind == pOwned {
					owned = true
					return false
				}
			}
		}
		return true
	})
	return owned
}

// write is one store instruction: the written lvalue and its position.
// through marks writes that go THROUGH the value (delete/copy/append
// mutating a backing array) rather than rebinding the variable: a bare
// local ident is a frame-local rebind for `x = e` but a heap write for
// `copy(x, e)`.
type write struct {
	target  ast.Expr
	pos     token.Pos
	through bool
}

// writesIn collects every write in the subtree: assignment targets (:=
// bindings excluded — fresh locals), ++/--, and the mutating builtins
// (delete, copy, append's first argument).
func writesIn(node ast.Node) []write {
	var out []write
	ast.Inspect(node, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				out = append(out, write{target: lhs, pos: lhs.Pos()})
			}
		case *ast.IncDecStmt:
			out = append(out, write{target: s.X, pos: s.X.Pos()})
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok {
				switch id.Name {
				case "delete", "copy", "append":
					// append may mutate the backing array of its first
					// argument in place when capacity suffices.
					if len(s.Args) > 0 {
						out = append(out, write{target: s.Args[0], pos: s.Args[0].Pos(), through: true})
					}
				}
			}
		}
		return true
	})
	return out
}

// effKind classifies one observable effect.
type effKind uint8

const (
	// effWriteShared is a write that escapes the function's frame; via
	// says which caller-visible root it reaches.
	effWriteShared effKind = iota
	// effIO is an input/output call (fmt printing, os, log, …).
	effIO
	// effBanned is a banned nondeterminism call (math/rand, wall clock).
	effBanned
	// effDynamic is a call through a function value no module function
	// matches: unanalyzable, treated as arbitrary effects.
	effDynamic
)

// effect is one observable effect attributed to its originating site.
type effect struct {
	kind effKind
	pos  token.Pos
	desc string
	// via classifies the escape root in the CURRENT function's frame
	// (meaningful for effWriteShared).
	via provVal
	// originRel is the module-relative package where the effect originates
	// (the rng exemption keys on it).
	originRel string
}

// effectKey dedupes effects during folding.
type effectKey struct {
	kind  effKind
	pos   token.Pos
	via   prov
	param int
}

// effects computes and memoizes per-function effect summaries over the
// call graph.
type effects struct {
	mod   *Module
	graph *Graph
	memo  map[*FuncInfo][]effect
	// stackPos maps each in-progress frame to its depth on the computation
	// stack, so a recursion cut can say how far up the cycle reaches.
	stackPos map[*FuncInfo]int
	depth    int
	// calls maps each call site (Lparen) to its expression, per function.
	calls map[*FuncInfo]map[token.Pos]*ast.CallExpr
}

func newEffects(mod *Module, graph *Graph) *effects {
	return &effects{
		mod:      mod,
		graph:    graph,
		memo:     map[*FuncInfo][]effect{},
		stackPos: map[*FuncInfo]int{},
		calls:    map[*FuncInfo]map[token.Pos]*ast.CallExpr{},
	}
}

// callSites indexes fi's call expressions by Lparen.
func (ef *effects) callSites(fi *FuncInfo) map[token.Pos]*ast.CallExpr {
	if m, ok := ef.calls[fi]; ok {
		return m
	}
	m := map[token.Pos]*ast.CallExpr{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			m[call.Lparen] = call
		}
		return true
	})
	ef.calls[fi] = m
	return m
}

// of returns fi's transitive effect summary.
func (ef *effects) of(fi *FuncInfo) []effect {
	out, _ := ef.summarize(fi)
	return out
}

// noCut is the "no recursion cut happened" sentinel depth.
const noCut = int(^uint(0) >> 1)

// summarize computes fi's transitive summary and the lowest stack depth any
// recursion cut inside it reached (noCut if none). Recursion is cut at the
// in-progress frame: a cycle's fixed point adds no effect beyond the union
// of its members' local effects, which one unrolling collects — but only
// the cycle's ENTRY frame sees the whole unrolling. Frames reached mid-cycle
// have partial summaries (missing the effects of everything above the cut),
// so only a frame no cut reaches from below is memoized; interior members
// are recomputed from a clean stack when a later caller needs them.
func (ef *effects) summarize(fi *FuncInfo) ([]effect, int) {
	if cached, ok := ef.memo[fi]; ok {
		return cached, noCut
	}
	if pos, ok := ef.stackPos[fi]; ok {
		return nil, pos
	}
	myDepth := ef.depth
	ef.stackPos[fi] = myDepth
	ef.depth++
	defer func() {
		delete(ef.stackPos, fi)
		ef.depth--
	}()
	low := noCut

	env := buildProvEnv(ef.mod, fi, nil)
	seen := map[effectKey]bool{}
	var out []effect
	add := func(e effect) {
		key := effectKey{kind: e.kind, pos: e.pos, via: e.via.kind, param: e.via.param}
		if !seen[key] {
			seen[key] = true
			out = append(out, e)
		}
	}

	// Local writes that escape the frame.
	for _, w := range writesIn(fi.Decl.Body) {
		val := env.writeProv(w)
		if !val.isShared() {
			continue
		}
		add(effect{
			kind:      effWriteShared,
			pos:       w.pos,
			desc:      "writes " + exprString(w.target) + " (" + val.kind.String() + " state)",
			via:       val,
			originRel: fi.Pkg.Rel,
		})
	}

	// External (standard-library) calls: I/O, banned sources, and
	// writes through pointer-shaped arguments.
	sites := ef.callSites(fi)
	for _, ext := range ef.graph.External[fi] {
		name := extDisplayName(ext.Fn)
		switch {
		case isIOFunc(ext.Fn):
			add(effect{kind: effIO, pos: ext.Pos, desc: "calls " + name + " (I/O)", originRel: fi.Pkg.Rel})
		case isBannedFunc(ext.Fn) && fi.Pkg.Rel != "internal/rng":
			add(effect{kind: effBanned, pos: ext.Pos, desc: "calls " + name + " (banned nondeterminism source)", originRel: fi.Pkg.Rel})
		}
		call := sites[ext.Pos]
		if call == nil {
			continue
		}
		for _, arg := range externalPointerArgs(ef.mod, call) {
			val := env.provOf(arg)
			if !val.isShared() {
				continue
			}
			add(effect{
				kind:      effWriteShared,
				pos:       ext.Pos,
				desc:      name + " may write through " + exprString(arg) + " (" + val.kind.String() + " state)",
				via:       val,
				originRel: fi.Pkg.Rel,
			})
		}
	}

	// Builtin print/println are I/O but never reach the call graph.
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := ef.mod.Info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "print" || id.Name == "println") {
				add(effect{kind: effIO, pos: call.Lparen, desc: "calls builtin " + id.Name + " (I/O)", originRel: fi.Pkg.Rel})
			}
		}
		return true
	})

	// Unanalyzable dynamic calls.
	for _, pos := range ef.graph.Unresolved[fi] {
		add(effect{kind: effDynamic, pos: pos, desc: "calls a dynamic callee (function value or interface) no module function matches", originRel: fi.Pkg.Rel})
	}

	// Fold callee summaries through each call site.
	for _, edge := range ef.graph.Edges[fi] {
		ces, cl := ef.summarize(edge.To)
		if cl < low {
			low = cl
		}
		for _, ce := range ces {
			switch ce.kind {
			case effIO, effBanned, effDynamic:
				add(ce)
			case effWriteShared:
				mapped, keep := ef.mapCalleeWrite(env, fi, edge, ce)
				if keep {
					add(mapped)
				}
			}
		}
	}

	if low >= myDepth {
		// No cycle reaches above this frame: fi is outside every cycle, or
		// is the entry of each cycle that cut back to it, so the unrolling
		// above collected the members' union and the summary is complete.
		ef.memo[fi] = out
		low = noCut
	}
	return out, low
}

// mapCalleeWrite translates a callee's escaping write into the caller's
// frame through the call-site arguments: a write through the callee's
// receiver/parameter escapes the caller only if the caller passed something
// non-local there.
func (ef *effects) mapCalleeWrite(env *provEnv, fi *FuncInfo, edge Edge, ce effect) (effect, bool) {
	switch ce.via.kind {
	case pGlobal, pUnknown:
		return ce, true
	}
	if edge.Kind == EdgeFunc {
		// Calls through function values lose the receiver binding; stay
		// conservative.
		ce.via = provVal{kind: pUnknown}
		return ce, true
	}
	call := ef.callSites(fi)[edge.Pos]
	if call == nil {
		ce.via = provVal{kind: pUnknown}
		return ce, true
	}
	arg := callArgExpr(ef.mod, call, edge.To, ce.via)
	if arg == nil {
		ce.via = provVal{kind: pUnknown}
		return ce, true
	}
	val := env.provOf(arg)
	if !val.isShared() {
		return effect{}, false
	}
	ce.via = val
	return ce, true
}

// callArgExpr finds the caller expression feeding the callee's receiver or
// i'th parameter at this call site.
func callArgExpr(mod *Module, call *ast.CallExpr, callee *FuncInfo, via provVal) ast.Expr {
	sig, _ := callee.Fn.Type().(*types.Signature)
	if via.kind == pRecv {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	idx := via.param
	if sig != nil && sig.Variadic() && idx >= sig.Params().Len()-1 {
		idx = sig.Params().Len() - 1
	}
	// Method expressions (T.M)(recv, args…) shift everything by one; they
	// resolve as static funcs with a receiver but a plain Fun. Detect by
	// argument count.
	if sig != nil && sig.Recv() != nil {
		if _, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); !isSel && len(call.Args) == sig.Params().Len()+1 {
			idx++
		}
	}
	if idx >= 0 && idx < len(call.Args) {
		return call.Args[idx]
	}
	return nil
}

// externalPointerArgs returns the call's arguments (receiver included)
// whose types let the callee write through them: pointers, slices, and
// maps. Interfaces are excluded — the overwhelmingly common stdlib
// interface arguments (fmt verbs) read, and flagging them would drown the
// signal.
func externalPointerArgs(mod *Module, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	consider := func(e ast.Expr) {
		t := mod.Info.TypeOf(e)
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
			out = append(out, e)
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Method receiver, unless X is just a package qualifier.
		if id, isIdent := sel.X.(*ast.Ident); !isIdent {
			consider(sel.X)
		} else if _, isPkg := mod.Info.Uses[id].(*types.PkgName); !isPkg {
			consider(sel.X)
		}
	}
	for _, arg := range call.Args {
		consider(arg)
	}
	return out
}

// extDisplayName renders an external function for messages: "time.Now",
// "(*strings.Builder).WriteString".
func extDisplayName(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return p.Name() })
		return "(" + recv + ")." + fn.Name()
	}
	return pkg.Name() + "." + fn.Name()
}

// isIOFunc reports whether the external function performs I/O.
func isIOFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "os", "log", "net", "net/http", "syscall", "io/ioutil":
		return true
	case "fmt":
		name := fn.Name()
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
			strings.HasPrefix(name, "Scan") || strings.HasPrefix(name, "Fscan")
	case "io":
		switch fn.Name() {
		case "Copy", "CopyN", "CopyBuffer", "WriteString", "ReadAll", "ReadFull", "Pipe":
			return true
		}
	}
	return false
}

// isBannedFunc reports whether the external function is a banned
// nondeterminism source (math/rand, wall-clock reads).
func isBannedFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if isRandPath(pkg.Path()) {
		return true
	}
	return pkg.Path() == "time" && wallClockIdents[fn.Name()]
}
